package memsim

import (
	"testing"
	"testing/quick"

	"grouphash/internal/cache"
)

func small(t *testing.T) *Memory {
	t.Helper()
	return New(Config{Size: 1 << 20, Seed: 1, Geoms: cache.SmallGeometry()})
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := small(t)
	m.Write8(128, 77)
	if got := m.Read8(128); got != 77 {
		t.Fatalf("Read8 = %d", got)
	}
	buf := []byte("hello, nvm!")
	m.Write(1000, buf)
	out := make([]byte, len(buf))
	m.Read(1000, out)
	if string(out) != string(buf) {
		t.Fatalf("Read = %q", out)
	}
}

func TestAllocAlignmentAndExhaustion(t *testing.T) {
	m := New(Config{Size: 1 << 12, Seed: 1, Geoms: cache.SmallGeometry()})
	a := m.Alloc(10, 8)
	b := m.Alloc(10, 64)
	if a%8 != 0 || b%64 != 0 {
		t.Fatalf("misaligned allocations: %d, %d", a, b)
	}
	if b < a+10 {
		t.Fatal("allocations overlap")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected out-of-space panic")
			}
		}()
		m.Alloc(1<<13, 8)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected bad-alignment panic")
			}
		}()
		m.Alloc(8, 3)
	}()
}

func TestClockAdvancesMoreOnMiss(t *testing.T) {
	m := small(t)
	t0 := m.Clock()
	m.Read8(0) // cold: memory latency
	coldCost := m.Clock() - t0
	t1 := m.Clock()
	m.Read8(8) // same line: L1 hit
	warmCost := m.Clock() - t1
	if coldCost <= warmCost {
		t.Fatalf("cold %v <= warm %v", coldCost, warmCost)
	}
	lat := m.Latency()
	if coldCost != lat.MemRead {
		t.Fatalf("cold cost = %v, want MemRead %v", coldCost, lat.MemRead)
	}
	if warmCost != lat.L1Hit {
		t.Fatalf("warm cost = %v, want L1Hit %v", warmCost, lat.L1Hit)
	}
}

func TestFlushChargesWritePenaltyOnlyWhenDirty(t *testing.T) {
	m := small(t)
	lat := m.Latency()

	m.Write8(0, 1)
	t0 := m.Clock()
	m.Flush(0)
	dirtyCost := m.Clock() - t0
	if dirtyCost != lat.FlushBase+lat.NVMWriteExtra {
		t.Fatalf("dirty flush cost = %v, want %v", dirtyCost, lat.FlushBase+lat.NVMWriteExtra)
	}

	m.Read8(64) // clean resident line
	t1 := m.Clock()
	m.Flush(64)
	cleanCost := m.Clock() - t1
	if cleanCost != lat.FlushBase {
		t.Fatalf("clean flush cost = %v, want %v", cleanCost, lat.FlushBase)
	}
}

func TestFlushInvalidatesCausingLaterMiss(t *testing.T) {
	m := small(t)
	m.Write8(0, 1)
	m.Persist(0, 8)
	c0 := m.Counters()
	m.Read8(0)
	c1 := m.Counters()
	if d := c1.Sub(c0); d.L3Misses != 1 {
		t.Fatalf("post-flush read had %d L3 misses, want 1", d.L3Misses)
	}
}

func TestPersistMakesDataDurable(t *testing.T) {
	m := small(t)
	m.Write8(0, 42)
	m.Persist(0, 8)
	m.Write8(8, 43) // never persisted
	m.Crash(0.0)    // nothing un-persisted survives
	if got := m.Read8(0); got != 42 {
		t.Fatalf("persisted word lost: %d", got)
	}
	if got := m.Read8(8); got != 0 {
		t.Fatalf("un-persisted word survived a 0-probability crash: %d", got)
	}
}

func TestEvictionPersistsSilently(t *testing.T) {
	// One-line cache: writing two lines evicts the first, which must
	// persist without an explicit flush.
	m := New(Config{Size: 1 << 16, Seed: 1, Geoms: []cache.Geometry{
		{Name: "L1", Capacity: cache.LineSize, Ways: 1},
	}, DisablePrefetch: true})
	m.Write8(0, 7)
	m.Write8(cache.LineSize, 8) // evicts line 0
	if got := m.Region().PersistedLoad8(0); got != 7 {
		t.Fatalf("evicted word not persisted: %d", got)
	}
	if m.Counters().NVM.WordsEvicted != 1 {
		t.Fatalf("WordsEvicted = %d, want 1", m.Counters().NVM.WordsEvicted)
	}
}

func TestPersistCoversMultipleLines(t *testing.T) {
	m := small(t)
	m.Write(60, make([]byte, 16)) // straddles lines 0 and 1
	c0 := m.Counters()
	m.Persist(60, 16)
	d := m.Counters().Sub(c0)
	if d.Flushes != 2 {
		t.Fatalf("Flushes = %d, want 2 (two lines)", d.Flushes)
	}
	if d.Fences != 1 {
		t.Fatalf("Fences = %d, want 1", d.Fences)
	}
}

func TestCountersSub(t *testing.T) {
	m := small(t)
	c0 := m.Counters()
	m.Write8(0, 1)
	m.Persist(0, 8)
	m.Read8(512)
	d := m.Counters().Sub(c0)
	if d.Accesses != 2 || d.Flushes != 1 || d.Fences != 1 {
		t.Fatalf("delta = %+v", d)
	}
	if d.ClockNs <= 0 {
		t.Fatal("clock did not advance")
	}
	if d.NVM.Stores != 1 || d.NVM.WordsPersisted != 1 {
		t.Fatalf("NVM delta = %+v", d.NVM)
	}
}

func TestDropCachesKeepsData(t *testing.T) {
	m := small(t)
	m.Write8(0, 99)
	m.DropCaches()
	if got := m.Read8(0); got != 99 {
		t.Fatalf("data lost on DropCaches: %d", got)
	}
	// The dirty write must have been written back (persisted) by the
	// drop, so even a crash now keeps it.
	m.Crash(0.0)
	if got := m.Read8(0); got != 99 {
		t.Fatalf("DropCaches did not write back: %d", got)
	}
}

func TestCleanShutdownPersistsEverything(t *testing.T) {
	m := small(t)
	for i := uint64(0); i < 100; i++ {
		m.Write8(i*8, i)
	}
	m.CleanShutdown()
	m.Crash(0.0)
	for i := uint64(0); i < 100; i++ {
		if m.Read8(i*8) != i {
			t.Fatalf("word %d lost after clean shutdown", i)
		}
	}
}

// Property: after Persist(addr, n), a crash never loses that range.
func TestQuickPersistIsDurable(t *testing.T) {
	f := func(writes []uint16, seed int64) bool {
		m := New(Config{Size: 1 << 16, Seed: seed, Geoms: cache.SmallGeometry()})
		expect := make(map[uint64]uint64)
		for n, w := range writes {
			addr := (uint64(w) % 4096) &^ 7
			val := uint64(n + 1)
			m.Write8(addr, val)
			if n%2 == 0 {
				m.Persist(addr, 8)
				expect[addr] = val
			} else {
				delete(expect, addr) // later unpersisted write may tear
			}
		}
		m.Crash(0.5)
		for addr, val := range expect {
			if m.Read8(addr) != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
