// Package memsim glues the NVM region model (internal/nvm) and the CPU
// cache simulator (internal/cache) into the single Memory front-end that
// every hash-table implementation in this repository is written against.
//
// All loads and stores issued through a Memory:
//
//   - are routed through the simulated cache hierarchy, producing the
//     hit/miss stream behind the paper's L3-miss figures;
//   - advance a simulated clock according to a configurable latency
//     model (cache-level hit latencies, NVM read latency, the paper's
//     300 ns extra NVM write latency charged per flushed dirty line,
//     and fence cost) — this clock is the "request latency" the paper
//     reports;
//   - keep the nvm.Region's persistence bookkeeping in sync with the
//     cache contents, so that a simulated crash exposes exactly the
//     states a real write-back cache over NVM could expose.
//
// The package also provides a trivial bump allocator so that a table and
// its write-ahead log can share one persistent region, as they would
// share one PMFS mapping in the paper's setup.
package memsim

import (
	"fmt"

	"grouphash/internal/cache"
	"grouphash/internal/nvm"
)

// LatencyModel holds the timing parameters of the simulated machine, in
// nanoseconds. The defaults (DefaultLatency) follow the paper's Table 2
// setup: NVM read latency comparable to DRAM, and writes penalised by an
// extra 300 ns charged when a dirty cacheline is flushed — the paper's
// own emulation method ("we only emulate NVM's slower writes ... by
// adding extra latency after a clflush instruction").
type LatencyModel struct {
	L1Hit   float64 // load/store serviced by L1
	L2Hit   float64 // serviced by L2
	L3Hit   float64 // serviced by L3
	MemRead float64 // line fill from NVM (read latency ~ DRAM)

	FlushBase     float64 // cost of executing clflush itself
	NVMWriteExtra float64 // extra write latency per flushed dirty line (paper: 300)
	Fence         float64 // cost of mfence
}

// DefaultLatency returns the latency model used throughout the
// reproduction. Hit latencies approximate a 2 GHz Sandy Bridge Xeon.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		L1Hit:         1.5,
		L2Hit:         6,
		L3Hit:         16,
		MemRead:       85,
		FlushBase:     40,
		NVMWriteExtra: 300,
		Fence:         8,
	}
}

// Counters is a snapshot of the cumulative event counters of a Memory.
// Subtracting two snapshots yields per-phase or per-operation costs.
type Counters struct {
	ClockNs  float64 // simulated time
	Accesses uint64  // demand loads+stores (per cacheline touched)
	L1Misses uint64
	L2Misses uint64
	L3Misses uint64 // the paper's cache-efficiency metric
	Flushes  uint64 // clflush instructions executed
	Fences   uint64 // mfence instructions executed
	NVM      nvm.Stats
}

// Sub returns c - o field-wise.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		ClockNs:  c.ClockNs - o.ClockNs,
		Accesses: c.Accesses - o.Accesses,
		L1Misses: c.L1Misses - o.L1Misses,
		L2Misses: c.L2Misses - o.L2Misses,
		L3Misses: c.L3Misses - o.L3Misses,
		Flushes:  c.Flushes - o.Flushes,
		Fences:   c.Fences - o.Fences,
		NVM: nvm.Stats{
			Stores:         c.NVM.Stores - o.NVM.Stores,
			BytesStored:    c.NVM.BytesStored - o.NVM.BytesStored,
			WordsDirtied:   c.NVM.WordsDirtied - o.NVM.WordsDirtied,
			WordsPersisted: c.NVM.WordsPersisted - o.NVM.WordsPersisted,
			WordsEvicted:   c.NVM.WordsEvicted - o.NVM.WordsEvicted,
			AtomicStores:   c.NVM.AtomicStores - o.NVM.AtomicStores,
		},
	}
}

// Memory is the persistent-memory system handed to the hash tables.
// It is not safe for concurrent use; concurrent table variants serialise
// access with their own locking.
type Memory struct {
	region *nvm.Region
	hier   *cache.Hierarchy
	lat    LatencyModel

	clock    float64
	accesses uint64
	flushes  uint64
	fences   uint64

	// Stream detector for the modelled next-line prefetcher.
	prefetch bool
	lastLine uint64
	hasLast  bool

	// Shadow-crash scheduling (see ScheduleShadowCrash).
	crashAt       uint64
	crashSurvival float64
	crashArmed    bool
	shadow        []byte

	next uint64 // bump-allocation watermark
}

// Config assembles the pieces of a simulated machine.
type Config struct {
	Size    uint64           // region size in bytes
	Seed    int64            // crash-injection seed
	Geoms   []cache.Geometry // nil means cache.PaperGeometry()
	Latency *LatencyModel    // nil means DefaultLatency()
	// DisablePrefetch turns off the modelled L2 streamer prefetcher.
	// Real Xeons prefetch the next line of a sequential access stream;
	// the group-sharing cache argument of the paper (contiguous
	// collision cells are cheap to scan) depends on it, so it is on by
	// default. Ablation benches switch it off.
	DisablePrefetch bool
}

// New builds a Memory over a fresh region.
func New(cfg Config) *Memory {
	geoms := cfg.Geoms
	if geoms == nil {
		geoms = cache.PaperGeometry()
	}
	lat := DefaultLatency()
	if cfg.Latency != nil {
		lat = *cfg.Latency
	}
	return &Memory{
		region:   nvm.NewRegion(cfg.Size, cfg.Seed),
		hier:     cache.NewHierarchy(geoms),
		lat:      lat,
		prefetch: !cfg.DisablePrefetch,
	}
}

// Region exposes the underlying NVM region (verification tooling only;
// going around the cache model invalidates latency accounting).
func (m *Memory) Region() *nvm.Region { return m.region }

// Hierarchy exposes the cache model (statistics and tests).
func (m *Memory) Hierarchy() *cache.Hierarchy { return m.hier }

// Latency returns the active latency model.
func (m *Memory) Latency() LatencyModel { return m.lat }

// Size returns the region size in bytes.
func (m *Memory) Size() uint64 { return m.region.Size() }

// Alloc reserves size bytes aligned to align (a power of two) from the
// region using a bump allocator and returns the offset. It panics when
// the region is exhausted — allocation failures are programming errors
// in experiment sizing, not runtime conditions.
func (m *Memory) Alloc(size, align uint64) uint64 {
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("memsim: alignment %d is not a power of two", align))
	}
	addr := (m.next + align - 1) &^ (align - 1)
	if addr+size > m.region.Size() || addr+size < addr {
		panic(fmt.Sprintf("memsim: out of space allocating %d bytes (used %d of %d)", size, m.next, m.region.Size()))
	}
	m.next = addr + size
	return addr
}

// Allocated returns the current bump watermark.
func (m *Memory) Allocated() uint64 { return m.next }

// SetAllocated restores the bump watermark when a persisted image is
// reloaded (the image's structures already occupy [0, next)).
func (m *Memory) SetAllocated(next uint64) {
	if next > m.region.Size() {
		panic(fmt.Sprintf("memsim: watermark %d beyond region of %d bytes", next, m.region.Size()))
	}
	m.next = next
}

// access charges one demand access to the line containing addr and
// settles any write-backs that fall out of the LLC.
func (m *Memory) access(addr uint64, write bool) {
	m.accesses++
	if m.crashArmed && m.accesses >= m.crashAt && m.shadow == nil {
		m.shadow = m.region.SnapshotPersisted(m.crashSurvival)
	}
	lvl, writebacks := m.hier.Access(addr, write)
	switch lvl {
	case cache.L1:
		m.clock += m.lat.L1Hit
	case cache.L2:
		m.clock += m.lat.L2Hit
	case cache.L3:
		m.clock += m.lat.L3Hit
	default:
		m.clock += m.lat.MemRead
	}
	m.drain(writebacks)

	// Next-line prefetcher: every demand miss pulls the following line
	// into L2 in the background, and an ascending line-to-line stride
	// keeps the stream running. This is what makes the contiguous
	// group scan cheap, as the paper argues ("a single memory access
	// can prefetch the following cells"), while path hashing's level
	// jumps get no benefit.
	if m.prefetch {
		line := addr >> cache.LineShift
		sequential := m.hasLast && line == m.lastLine+1
		if lvl == cache.Memory || sequential {
			next := (line + 1) << cache.LineShift
			if next+cache.LineSize <= m.region.Size() {
				m.drain(m.hier.Prefetch(next))
			}
		}
		m.lastLine = line
		m.hasLast = true
	}
}

// drain writes back dirty lines that left the hierarchy. Background
// traffic: persists silently, no latency charged to the requesting
// operation (the memory controller drains it asynchronously).
func (m *Memory) drain(writebacks []uint64) {
	for _, line := range writebacks {
		m.region.Evict(line<<cache.LineShift, cache.LineSize)
	}
}

// accessRange charges one demand access per cacheline covered by
// [addr, addr+n).
func (m *Memory) accessRange(addr, n uint64, write bool) {
	if n == 0 {
		return
	}
	first := addr >> cache.LineShift
	last := (addr + n - 1) >> cache.LineShift
	for line := first; line <= last; line++ {
		m.access(line<<cache.LineShift, write)
	}
}

// Read8 loads the aligned 8-byte word at addr.
func (m *Memory) Read8(addr uint64) uint64 {
	m.access(addr, false)
	return m.region.Load8(addr)
}

// Write8 stores an aligned 8-byte word. Durable only after Persist.
func (m *Memory) Write8(addr, val uint64) {
	m.region.Store8(addr, val)
	m.access(addr, true)
}

// AtomicWrite8 stores an aligned 8-byte word with failure atomicity —
// the commit primitive of the paper's consistency protocol.
func (m *Memory) AtomicWrite8(addr, val uint64) {
	m.region.AtomicStore8(addr, val)
	m.access(addr, true)
}

// Read copies len(buf) bytes from addr.
func (m *Memory) Read(addr uint64, buf []byte) {
	m.accessRange(addr, uint64(len(buf)), false)
	m.region.Load(addr, buf)
}

// Write stores buf at addr. The write tears at 8-byte boundaries on a
// crash and is durable only after Persist.
func (m *Memory) Write(addr uint64, buf []byte) {
	m.region.Store(addr, buf)
	m.accessRange(addr, uint64(len(buf)), true)
}

// Flush executes clflush on the line containing addr: the line is
// invalidated in every cache level and, if dirty, its words become
// durable. The paper's extra NVM write latency is charged here.
func (m *Memory) Flush(addr uint64) {
	m.flushes++
	line := addr &^ uint64(cache.LineSize-1)
	_, dirty := m.hier.Flush(line)
	m.clock += m.lat.FlushBase
	if dirty {
		m.clock += m.lat.NVMWriteExtra
	}
	m.region.PersistRange(line, cache.LineSize)
}

// Fence executes mfence, ordering preceding flushes before subsequent
// stores. In this model flushes complete synchronously, so Fence only
// charges time and counts the instruction.
func (m *Memory) Fence() {
	m.fences++
	m.clock += m.lat.Fence
}

// Persist makes [addr, addr+n) durable: clflush every covered line,
// then mfence — the paper's "persist" primitive (§3.3).
func (m *Memory) Persist(addr, n uint64) {
	if n == 0 {
		return
	}
	first := addr &^ uint64(cache.LineSize-1)
	last := (addr + n - 1) &^ uint64(cache.LineSize-1)
	for line := first; line <= last; line += cache.LineSize {
		m.Flush(line)
	}
	m.Fence()
}

// Clock returns the simulated time in nanoseconds.
func (m *Memory) Clock() float64 { return m.clock }

// Counters snapshots all cumulative counters.
func (m *Memory) Counters() Counters {
	ls := m.hier.Levels()
	c := Counters{
		ClockNs:  m.clock,
		Accesses: m.accesses,
		Flushes:  m.flushes,
		Fences:   m.fences,
		NVM:      m.region.Stats(),
	}
	if len(ls) > 0 {
		c.L1Misses = ls[0].Stats().Misses
	}
	if len(ls) > 1 {
		c.L2Misses = ls[1].Stats().Misses
	}
	if len(ls) > 2 {
		c.L3Misses = ls[2].Stats().Misses
	}
	return c
}

// Crash simulates a power failure: the cache hierarchy's contents are
// lost, and each un-persisted dirty word independently survives with
// probability survivalProb (see nvm.Region.Crash). After Crash the
// volatile image equals the legal post-failure NVM image; recovery code
// can run against the same Memory.
func (m *Memory) Crash(survivalProb float64) nvm.CrashOutcome {
	m.hier.InvalidateAll()
	m.hasLast = false
	return m.region.Crash(survivalProb)
}

// ScheduleShadowCrash arms a crash at an exact memory-event index:
// when the cumulative access counter reaches afterAccesses, a legal
// post-failure image is captured (each then-dirty word independently
// survives with probability survivalProb). The running operation
// continues unharmed; calling AdoptShadowCrash afterwards replaces the
// region with the captured image, completing the crash. This is how
// the crash-point tests cut operations at EVERY internal step without
// needing to unwind Go control flow mid-call.
func (m *Memory) ScheduleShadowCrash(afterAccesses uint64, survivalProb float64) {
	m.crashAt = afterAccesses
	m.crashSurvival = survivalProb
	m.crashArmed = true
	m.shadow = nil
}

// AdoptShadowCrash completes a scheduled shadow crash: the region is
// replaced by the image captured at the trigger point and the caches
// are invalidated. It reports whether a trigger had fired; false means
// the access counter never reached the scheduled point (no crash).
func (m *Memory) AdoptShadowCrash() bool {
	m.crashArmed = false
	if m.shadow == nil {
		return false
	}
	m.region.Restore(m.shadow)
	m.shadow = nil
	m.hier.InvalidateAll()
	m.hasLast = false
	return true
}

// CleanShutdown writes back every dirty line and persists everything,
// modelling an orderly stop.
func (m *Memory) CleanShutdown() {
	for _, line := range m.hier.FlushAll() {
		m.region.Evict(line<<cache.LineShift, cache.LineSize)
	}
	m.region.PersistAll()
}

// DropCaches invalidates the cache hierarchy after writing dirty lines
// back, modelling a cold cache without losing persistence state. Used
// between experiment phases so each phase starts from a comparable
// state.
func (m *Memory) DropCaches() {
	for _, line := range m.hier.FlushAll() {
		m.region.Evict(line<<cache.LineShift, cache.LineSize)
	}
}
