package memsim

import (
	"testing"

	"grouphash/internal/cache"
)

func TestShadowCrashCapturesExactPoint(t *testing.T) {
	m := New(Config{Size: 1 << 16, Seed: 1, Geoms: cache.SmallGeometry()})
	m.Write8(0, 1)
	m.Persist(0, 8)
	// Trigger on the NEXT access; survival 0 rolls back everything
	// dirty at that moment.
	m.ScheduleShadowCrash(m.Counters().Accesses+1, 0)
	m.Write8(8, 2)  // the access that fires the trigger: word 8 dirty
	m.Write8(16, 3) // after the trigger: not part of the image
	m.Persist(8, 16)
	if !m.AdoptShadowCrash() {
		t.Fatal("trigger did not fire")
	}
	if m.Read8(0) != 1 {
		t.Fatal("persisted pre-crash word lost")
	}
	if m.Read8(8) != 0 {
		t.Fatalf("word dirty at the trigger survived survival=0: %d", m.Read8(8))
	}
	if m.Read8(16) != 0 {
		t.Fatal("post-trigger write leaked into the crash image")
	}
	if m.Region().DirtyWords() != 0 {
		t.Fatal("adopted image must be fully persisted")
	}
}

func TestShadowCrashSurvivalOne(t *testing.T) {
	m := New(Config{Size: 1 << 16, Seed: 2, Geoms: cache.SmallGeometry()})
	m.ScheduleShadowCrash(m.Counters().Accesses+2, 1)
	m.Write8(0, 7)
	m.Write8(8, 8)
	if !m.AdoptShadowCrash() {
		t.Fatal("trigger did not fire")
	}
	if m.Read8(0) != 7 || m.Read8(8) != 8 {
		t.Fatal("survival=1 must keep all dirty words written before the trigger")
	}
}

func TestShadowCrashNeverTriggered(t *testing.T) {
	m := New(Config{Size: 1 << 16, Seed: 3, Geoms: cache.SmallGeometry()})
	m.Write8(0, 1)
	m.ScheduleShadowCrash(m.Counters().Accesses+1000, 0.5)
	m.Write8(8, 2)
	if m.AdoptShadowCrash() {
		t.Fatal("trigger fired before its scheduled event")
	}
	// State untouched by a non-firing schedule.
	if m.Read8(0) != 1 || m.Read8(8) != 2 {
		t.Fatal("non-firing schedule disturbed state")
	}
}

func TestShadowCrashRearm(t *testing.T) {
	m := New(Config{Size: 1 << 16, Seed: 4, Geoms: cache.SmallGeometry()})
	m.ScheduleShadowCrash(m.Counters().Accesses+1, 1)
	m.Write8(0, 1)
	if !m.AdoptShadowCrash() {
		t.Fatal("first trigger")
	}
	// Re-arm and fire again.
	m.ScheduleShadowCrash(m.Counters().Accesses+1, 0)
	m.Write8(8, 2)
	if !m.AdoptShadowCrash() {
		t.Fatal("second trigger")
	}
	if m.Read8(8) != 0 {
		t.Fatal("second crash did not roll back")
	}
}

func TestPrefetcherServesSequentialScan(t *testing.T) {
	run := func(disable bool) uint64 {
		m := New(Config{Size: 1 << 20, Seed: 5, DisablePrefetch: disable})
		// Sequential read of 64 lines, twice the L1's reach.
		for addr := uint64(0); addr < 64*cache.LineSize; addr += 8 {
			m.Read8(addr)
		}
		return m.Counters().L3Misses
	}
	with := run(false)
	without := run(true)
	if with >= without {
		t.Fatalf("prefetcher did not reduce misses: %d vs %d", with, without)
	}
	// Without prefetch every line misses; with it, only the stream
	// head should.
	if without != 64 {
		t.Fatalf("prefetch-off misses = %d, want 64", without)
	}
	if with > 8 {
		t.Fatalf("prefetch-on misses = %d, want a small head", with)
	}
}

func TestPrefetcherDoesNotCrossRegionEnd(t *testing.T) {
	m := New(Config{Size: 2 * cache.LineSize, Seed: 6})
	// Access the last line twice: the next-line prefetch would be out
	// of range and must be suppressed, not panic.
	m.Read8(cache.LineSize)
	m.Read8(cache.LineSize + 8)
	m.Read8(0)
	m.Read8(8)
}

func TestSetAllocatedValidation(t *testing.T) {
	m := New(Config{Size: 1 << 12, Seed: 7, Geoms: cache.SmallGeometry()})
	m.SetAllocated(64)
	if m.Allocated() != 64 {
		t.Fatal("watermark not set")
	}
	if a := m.Alloc(8, 8); a < 64 {
		t.Fatal("allocation ignored restored watermark")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range watermark")
		}
	}()
	m.SetAllocated(1 << 20)
}
