package pathhash

import (
	"math/rand"
	"testing"

	"grouphash/internal/cache"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/native"
)

func simMem(seed int64) *memsim.Memory {
	return memsim.New(memsim.Config{Size: 8 << 20, Seed: seed, Geoms: cache.SmallGeometry()})
}

func TestLevelSizing(t *testing.T) {
	mem := native.New(4 << 20)
	tab := New(mem, Options{Cells: 1024, Levels: 4})
	if tab.Levels() != 4 {
		t.Fatalf("levels = %d", tab.Levels())
	}
	want := uint64(1024 + 512 + 256 + 128)
	if tab.Capacity() != want {
		t.Fatalf("capacity = %d, want %d", tab.Capacity(), want)
	}
}

func TestLevelsClampedToTreeHeight(t *testing.T) {
	mem := native.New(1 << 20)
	tab := New(mem, Options{Cells: 8, Levels: 20})
	if tab.Levels() != 4 { // 8, 4, 2, 1
		t.Fatalf("levels = %d, want 4", tab.Levels())
	}
}

func TestDefaultLevels(t *testing.T) {
	mem := native.New(64 << 20)
	tab := New(mem, Options{Cells: 1 << 20})
	if tab.Levels() != DefaultLevels {
		t.Fatalf("levels = %d, want %d", tab.Levels(), DefaultLevels)
	}
}

func TestBasicOps(t *testing.T) {
	for _, logged := range []bool{false, true} {
		mem := simMem(3)
		tab := New(mem, Options{Cells: 1024, Levels: 8, Logged: logged, Seed: 1})
		wantName := "path"
		if logged {
			wantName = "path-L"
		}
		if tab.Name() != wantName {
			t.Fatalf("Name = %q", tab.Name())
		}
		for i := uint64(1); i <= 900; i++ {
			if err := tab.Insert(layout.Key{Lo: i}, i*7); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
		}
		if tab.Len() != 900 {
			t.Fatalf("Len = %d", tab.Len())
		}
		for i := uint64(1); i <= 900; i++ {
			if v, ok := tab.Lookup(layout.Key{Lo: i}); !ok || v != i*7 {
				t.Fatalf("lookup %d = (%d, %v)", i, v, ok)
			}
		}
		if _, ok := tab.Lookup(layout.Key{Lo: 123456}); ok {
			t.Fatal("phantom key")
		}
		for i := uint64(1); i <= 900; i += 2 {
			if !tab.Delete(layout.Key{Lo: i}) {
				t.Fatalf("delete %d", i)
			}
		}
		for i := uint64(1); i <= 900; i++ {
			_, ok := tab.Lookup(layout.Key{Lo: i})
			if want := i%2 == 0; ok != want {
				t.Fatalf("key %d presence %v, want %v", i, ok, want)
			}
		}
	}
}

func TestPositionSharing(t *testing.T) {
	// Two top-level positions that are tree siblings share their
	// level-1 cell: position p at level d is p>>d.
	mem := native.New(1 << 20)
	tab := New(mem, Options{Cells: 16, Levels: 3, Seed: 1})
	c0, i0 := tab.pathCell(6, 1)
	c1, i1 := tab.pathCell(7, 1)
	if c0.Base != c1.Base || i0 != i1 {
		t.Fatal("siblings 6 and 7 do not share their level-1 parent")
	}
	c2, i2 := tab.pathCell(5, 1)
	if i2 == i0 {
		t.Fatal("non-siblings share a parent")
	}
	_ = c2
}

func TestPathOverflowReturnsFull(t *testing.T) {
	// A 1-level table degenerates to plain 2-choice hashing: both root
	// cells occupied means full for that key.
	mem := native.New(1 << 20)
	tab := New(mem, Options{Cells: 4, Levels: 1, Seed: 1})
	var err error
	for i := uint64(1); i < 100; i++ {
		if err = tab.Insert(layout.Key{Lo: i}, i); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("tiny table never filled")
	}
}

func TestHigherLoadFactorThanGroupHashing(t *testing.T) {
	// The paper's Figure 7: path hashing reaches ~95% utilisation.
	mem := native.New(32 << 20)
	tab := New(mem, Options{Cells: 4096, Levels: 12, Seed: 5})
	var inserted uint64
	for i := uint64(1); ; i++ {
		if err := tab.Insert(layout.Key{Lo: i}, i); err != nil {
			break
		}
		inserted++
	}
	lf := float64(inserted) / float64(tab.Capacity())
	if lf < 0.90 {
		t.Fatalf("path hashing utilisation = %.3f, expected > 0.90", lf)
	}
}

func TestOracleFuzz(t *testing.T) {
	mem := native.New(32 << 20)
	tab := New(mem, Options{Cells: 2048, Levels: 10, Seed: 13})
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(29))
	for op := 0; op < 30000; op++ {
		key := uint64(rng.Intn(1500)) + 1
		k := layout.Key{Lo: key}
		switch rng.Intn(3) {
		case 0:
			if _, exists := oracle[key]; !exists {
				if err := tab.Insert(k, key*3); err == nil {
					oracle[key] = key * 3
				}
			}
		case 1:
			v, ok := tab.Lookup(k)
			ov, ook := oracle[key]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("op %d: lookup(%d) = (%d,%v), oracle (%d,%v)", op, key, v, ok, ov, ook)
			}
		case 2:
			ok := tab.Delete(k)
			if _, ook := oracle[key]; ok != ook {
				t.Fatalf("op %d: delete(%d) = %v, oracle %v", op, key, ok, ook)
			}
			delete(oracle, key)
		}
	}
	if tab.Len() != uint64(len(oracle)) {
		t.Fatalf("Len = %d, oracle %d", tab.Len(), len(oracle))
	}
}

func TestLoggedRecoveryRollsBack(t *testing.T) {
	mem := simMem(51)
	tab := New(mem, Options{Cells: 256, Levels: 6, Logged: true, Seed: 2})
	for i := uint64(1); i <= 80; i++ {
		tab.Insert(layout.Key{Lo: i}, i)
	}
	mem.CleanShutdown()

	// Half-finished mutation of a top-level cell.
	c := tab.levels[0]
	meta, k, v := c.Snapshot(9)
	tab.log.LogCell(c.Addr(9), meta, k, v)
	c.WritePayload(9, layout.Key{Lo: 31337}, 1)
	c.PersistPayload(9)
	c.CommitOccupied(9, layout.Key{Lo: 31337})
	mem.Crash(0.5)

	rep, err := tab.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.UndoneOps != 1 {
		t.Fatalf("UndoneOps = %d", rep.UndoneOps)
	}
	for i := uint64(1); i <= 80; i++ {
		if got, ok := tab.Lookup(layout.Key{Lo: i}); !ok || got != i {
			t.Fatalf("key %d after rollback: (%d, %v)", i, got, ok)
		}
	}
	if _, ok := tab.Lookup(layout.Key{Lo: 31337}); ok {
		t.Fatal("garbage visible after rollback")
	}
	if tab.Len() != 80 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestRecoveryScrubsTornInsert(t *testing.T) {
	mem := simMem(52)
	tab := New(mem, Options{Cells: 256, Levels: 6, Seed: 3})
	for i := uint64(1); i <= 50; i++ {
		tab.Insert(layout.Key{Lo: i}, i)
	}
	mem.CleanShutdown()
	var c = tab.levels[2]
	var victim uint64
	found := false
	for i := uint64(0); i < c.N; i++ {
		if !c.Occupied(i) {
			victim, found = i, true
			break
		}
	}
	if !found {
		t.Skip("level 2 unexpectedly full")
	}
	c.WritePayload(victim, layout.Key{Lo: 4040}, 4)
	mem.Crash(0.5)
	if _, err := tab.Recover(); err != nil {
		t.Fatal(err)
	}
	if !c.PayloadZero(victim) {
		t.Fatal("torn payload not scrubbed")
	}
	if tab.Len() != 50 {
		t.Fatalf("count = %d", tab.Len())
	}
}

func TestUpdateInPlace(t *testing.T) {
	mem := native.New(4 << 20)
	tab := New(mem, Options{Cells: 256, Levels: 6, Seed: 4})
	for i := uint64(1); i <= 200; i++ {
		tab.Insert(layout.Key{Lo: i}, i)
	}
	for i := uint64(1); i <= 200; i++ {
		if !tab.Update(layout.Key{Lo: i}, i*9) {
			t.Fatalf("update %d failed", i)
		}
	}
	for i := uint64(1); i <= 200; i++ {
		if v, _ := tab.Lookup(layout.Key{Lo: i}); v != i*9 {
			t.Fatalf("value of %d = %d", i, v)
		}
	}
	if tab.Update(layout.Key{Lo: 5555}, 1) {
		t.Fatal("updated an absent key")
	}
	if tab.Len() != 200 {
		t.Fatal("update changed the count")
	}
}
