package pathhash

import (
	"testing"

	"grouphash/internal/cache"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
)

// Exhaustive crash-point coverage for the logged path-hashing insert:
// with the WAL, every internal memory event of an insert must recover
// to an all-or-nothing outcome with all bystanders intact.
func TestLoggedInsertEveryCrashPointRecovers(t *testing.T) {
	for _, p := range []float64{0, 0.5, 1} {
		for offset := uint64(1); ; offset++ {
			mem := memsim.New(memsim.Config{Size: 1 << 21, Seed: int64(offset), Geoms: cache.SmallGeometry()})
			tab := New(mem, Options{Cells: 64, Levels: 5, Logged: true, Seed: 7})
			for i := uint64(1); i <= 30; i++ {
				if err := tab.Insert(layout.Key{Lo: i}, i); err != nil {
					t.Fatal(err)
				}
			}
			mem.CleanShutdown()
			start := mem.Counters().Accesses
			mem.ScheduleShadowCrash(start+offset, p)
			if err := tab.Insert(layout.Key{Lo: 777}, 42); err != nil {
				t.Fatal(err)
			}
			if !mem.AdoptShadowCrash() {
				break
			}
			if _, err := tab.Recover(); err != nil {
				t.Fatal(err)
			}
			if v, ok := tab.Lookup(layout.Key{Lo: 777}); ok && v != 42 {
				t.Fatalf("p=%v offset=%d: torn insert value %d", p, offset, v)
			}
			for i := uint64(1); i <= 30; i++ {
				if v, ok := tab.Lookup(layout.Key{Lo: i}); !ok || v != i {
					t.Fatalf("p=%v offset=%d: bystander %d = (%d, %v)", p, offset, i, v, ok)
				}
			}
			if tab.Len() != 30 && tab.Len() != 31 {
				t.Fatalf("p=%v offset=%d: count %d", p, offset, tab.Len())
			}
		}
	}
}
