// Package pathhash implements path hashing (Zuo & Hua, "A write-
// friendly hashing scheme for non-volatile memory systems", MSST 2017),
// the second NVM-friendly baseline of the paper's evaluation.
//
// Storage cells are organised as an inverted complete binary tree. The
// top level (level 0) holds N hash-addressable cells; level d below
// holds N/2^d cells, and the cell at position p of level d is shared by
// the two level-(d-1) cells 2p and 2p+1 ("position sharing"). With
// "path shortening", only the top `Levels` levels are allocated. Each
// key has two root positions (two hash functions); its items may sit
// anywhere on the two downward paths, so a request probes up to
// 2*Levels cells.
//
// Crucially for the paper's argument, the cells of a path live in
// DIFFERENT level arrays — they are not contiguous in memory, so every
// probe step is a fresh cacheline: "the cells in each collision
// addressing path are not contiguous in memory space ... which
// increases the number of memory access and L3 cache miss" (§2.3).
//
// Like the other baselines, the table optionally carries an undo WAL
// (the paper's Path-L variant).
package pathhash

import (
	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/wal"
	"grouphash/internal/xhash"
)

// DefaultLevels is the paper's setting: "we set the reserved levels
// to 20".
const DefaultLevels = 20

// Options configures a table.
type Options struct {
	// Cells is the top-level size N (power of two).
	Cells uint64
	// Levels is the number of reserved levels including the top;
	// 0 means min(DefaultLevels, log2(Cells)+1).
	Levels int
	// KeyBytes is 8 or 16.
	KeyBytes int
	// Seed selects the hash-function pair.
	Seed uint64
	// Logged attaches an undo WAL (the paper's Path-L variant).
	Logged bool
}

// Table is a path-hashing table over persistent memory.
type Table struct {
	mem    hashtab.Mem
	l      layout.Layout
	h1, h2 xhash.Func
	levels []hashtab.Cells // levels[0] is the top (hash-addressable) level
	count  hashtab.Count
	log    *wal.Log
	total  uint64
}

// New allocates a table in mem.
func New(mem hashtab.Mem, opts Options) *Table {
	if opts.Cells == 0 || opts.Cells&(opts.Cells-1) != 0 {
		panic("pathhash: Cells must be a nonzero power of two")
	}
	if opts.KeyBytes == 0 {
		opts.KeyBytes = 8
	}
	maxLevels := 1
	for c := opts.Cells; c > 1; c >>= 1 {
		maxLevels++
	}
	if opts.Levels == 0 {
		opts.Levels = DefaultLevels
	}
	if opts.Levels > maxLevels {
		opts.Levels = maxLevels
	}
	l := layout.ForKeySize(opts.KeyBytes)
	t := &Table{
		mem:   mem,
		l:     l,
		h1:    xhash.NewFunc(opts.Seed*2+11, opts.Cells, l.KeyWords() == 2),
		h2:    xhash.NewFunc(opts.Seed*2+12, opts.Cells, l.KeyWords() == 2),
		count: hashtab.NewCount(mem),
	}
	// Allocate the level arrays separately so path cells are spread
	// across distinct memory areas, as in the original layout.
	for d := 0; d < opts.Levels; d++ {
		n := opts.Cells >> uint(d)
		t.levels = append(t.levels, hashtab.NewCells(mem, l, n))
		t.total += n
	}
	if opts.Logged {
		t.log = wal.New(mem, l)
	}
	return t
}

// Name implements hashtab.Table.
func (t *Table) Name() string {
	if t.log != nil {
		return "path-L"
	}
	return "path"
}

// Levels returns the number of reserved levels.
func (t *Table) Levels() int { return len(t.levels) }

// Len returns the number of stored items.
func (t *Table) Len() uint64 { return t.count.Get() }

// Capacity returns the total cells across all levels.
func (t *Table) Capacity() uint64 { return t.total }

// LoadFactor returns Len/Capacity, 0 on a zero-capacity table.
func (t *Table) LoadFactor() float64 {
	if t.Capacity() == 0 {
		return 0
	}
	return float64(t.Len()) / float64(t.Capacity())
}

func (t *Table) logCell(c hashtab.Cells, i uint64) {
	if t.log == nil {
		return
	}
	meta, k, v := c.Snapshot(i)
	t.log.LogCell(c.Addr(i), meta, k, v)
}

func (t *Table) commit() {
	if t.log != nil {
		t.log.Commit()
	}
}

// pathCell returns the cells array and index of level d on the path
// rooted at top-level position p.
func (t *Table) pathCell(p uint64, d int) (hashtab.Cells, uint64) {
	return t.levels[d], p >> uint(d)
}

// Insert walks the two paths level by level (shallowest first,
// alternating between the two roots) and places the item in the first
// empty cell found. ErrTableFull means both paths are fully occupied.
func (t *Table) Insert(k layout.Key, v uint64) error {
	if !t.l.ValidKey(k) {
		return hashtab.ErrInvalidKey
	}
	p1 := t.h1.Index(k.Lo, k.Hi)
	p2 := t.h2.Index(k.Lo, k.Hi)
	for d := 0; d < len(t.levels); d++ {
		for _, p := range [2]uint64{p1, p2} {
			c, i := t.pathCell(p, d)
			if !c.Occupied(i) {
				t.logCell(c, i)
				c.InsertAt(i, k, v)
				t.count.Inc()
				t.commit()
				return nil
			}
		}
	}
	return hashtab.ErrTableFull
}

// Lookup probes every cell on both paths.
func (t *Table) Lookup(k layout.Key) (uint64, bool) {
	p1 := t.h1.Index(k.Lo, k.Hi)
	p2 := t.h2.Index(k.Lo, k.Hi)
	for d := 0; d < len(t.levels); d++ {
		for _, p := range [2]uint64{p1, p2} {
			c, i := t.pathCell(p, d)
			if c.Matches(i, k) {
				return c.Value(i), true
			}
		}
	}
	return 0, false
}

// Update overwrites the value of an existing key in place.
func (t *Table) Update(k layout.Key, v uint64) bool {
	p1 := t.h1.Index(k.Lo, k.Hi)
	p2 := t.h2.Index(k.Lo, k.Hi)
	for d := 0; d < len(t.levels); d++ {
		for _, p := range [2]uint64{p1, p2} {
			c, i := t.pathCell(p, d)
			if c.Matches(i, k) {
				addr := t.l.ValOff(c.Addr(i))
				t.mem.AtomicWrite8(addr, v)
				t.mem.Persist(addr, layout.WordSize)
				return true
			}
		}
	}
	return false
}

// Delete removes k from whichever path cell holds it.
func (t *Table) Delete(k layout.Key) bool {
	p1 := t.h1.Index(k.Lo, k.Hi)
	p2 := t.h2.Index(k.Lo, k.Hi)
	for d := 0; d < len(t.levels); d++ {
		for _, p := range [2]uint64{p1, p2} {
			c, i := t.pathCell(p, d)
			if c.Matches(i, k) {
				t.logCell(c, i)
				c.DeleteAt(i)
				t.count.Dec()
				t.commit()
				return true
			}
		}
	}
	return false
}

// Recover rolls back any in-flight logged operation, scrubs payloads
// behind zero bitmaps on every level, and recounts.
func (t *Table) Recover() (hashtab.RecoveryReport, error) {
	var rep hashtab.RecoveryReport
	if t.log != nil {
		rep.UndoneOps = t.log.Recover()
	}
	n := uint64(0)
	for _, c := range t.levels {
		for i := uint64(0); i < c.N; i++ {
			rep.CellsScanned++
			if c.Occupied(i) {
				n++
				continue
			}
			if !c.PayloadZero(i) {
				c.ClearPayload(i)
				rep.CellsCleared++
			}
		}
	}
	rep.CountCorrected = t.count.Get() != n
	t.count.Set(n)
	return rep, nil
}

// CheckConsistency audits the structural invariants without repairing:
// the persistent count matches the occupied cells, empty cells hide no
// payload, every stored key is valid, and every occupied cell at level
// d lies on one of its key's two root paths (position p>>d — an item
// anywhere else would be invisible to Lookup).
func (t *Table) CheckConsistency() []string {
	var bad []string
	n := uint64(0)
	for d, c := range t.levels {
		for i := uint64(0); i < c.N; i++ {
			if !c.Occupied(i) {
				if !c.PayloadZero(i) {
					bad = append(bad, "empty cell has a non-zero payload")
				}
				continue
			}
			n++
			k := c.Key(i)
			if !t.l.ValidKey(k) {
				bad = append(bad, "occupied cell holds an invalid key")
				continue
			}
			p1 := t.h1.Index(k.Lo, k.Hi) >> uint(d)
			p2 := t.h2.Index(k.Lo, k.Hi) >> uint(d)
			if p1 != i && p2 != i {
				bad = append(bad, "cell holds a key whose root paths do not pass through it")
			}
		}
	}
	if t.count.Get() != n {
		bad = append(bad, "persistent count does not match occupied cells")
	}
	return bad
}
