package dchoice

import (
	"math/rand"
	"testing"

	"grouphash/internal/cache"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/native"
)

func TestBasicOps(t *testing.T) {
	mem := native.New(4 << 20)
	tab := New(mem, Options{Cells: 1024, Seed: 1})
	if tab.Name() != "2choice" {
		t.Fatal("name")
	}
	var stored []layout.Key
	for i := uint64(1); i <= 400; i++ {
		k := layout.Key{Lo: i}
		if err := tab.Insert(k, i); err == nil {
			stored = append(stored, k)
		}
	}
	for _, k := range stored {
		if v, ok := tab.Lookup(k); !ok || v != k.Lo {
			t.Fatalf("lookup %d = (%d, %v)", k.Lo, v, ok)
		}
		if !tab.Update(k, k.Lo+1) {
			t.Fatalf("update %d", k.Lo)
		}
	}
	for _, k := range stored {
		if !tab.Delete(k) {
			t.Fatalf("delete %d", k.Lo)
		}
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestLowSpaceUtilisation(t *testing.T) {
	// The §4.1 exclusion reason: single-slot two-choice fills far below
	// the other schemes. Theory: utilisation at first failure is well
	// under 60% for large tables.
	mem := native.New(8 << 20)
	tab := New(mem, Options{Cells: 1 << 14, Seed: 2})
	var inserted uint64
	for i := uint64(1); ; i++ {
		if err := tab.Insert(layout.Key{Lo: i * 2654435761}, i); err != nil {
			break
		}
		inserted++
	}
	// First-failure utilisation for single-slot two-choice is tiny:
	// an insert fails as soon as both its candidates are taken, which
	// first happens after roughly (3·N²)^(1/3) inserts — about 4-6%%
	// of a 16K-cell table. This is the paper's exclusion, measured.
	lf := float64(inserted) / float64(tab.Capacity())
	if lf > 0.2 {
		t.Fatalf("2-choice utilisation %.3f unexpectedly high", lf)
	}
	if lf < 0.01 {
		t.Fatalf("2-choice utilisation %.3f implausibly low", lf)
	}
}

func TestOracleFuzz(t *testing.T) {
	mem := native.New(8 << 20)
	tab := New(mem, Options{Cells: 4096, Seed: 3})
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(37))
	for op := 0; op < 20000; op++ {
		key := uint64(rng.Intn(1200)) + 1
		k := layout.Key{Lo: key}
		switch rng.Intn(3) {
		case 0:
			if _, exists := oracle[key]; !exists {
				if tab.Insert(k, key) == nil {
					oracle[key] = key
				}
			}
		case 1:
			v, ok := tab.Lookup(k)
			ov, ook := oracle[key]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("op %d: lookup(%d) mismatch", op, key)
			}
		case 2:
			if ok := tab.Delete(k); ok != (func() bool { _, e := oracle[key]; return e })() {
				t.Fatalf("op %d: delete(%d) mismatch", op, key)
			}
			delete(oracle, key)
		}
	}
	if tab.Len() != uint64(len(oracle)) {
		t.Fatalf("Len = %d, oracle %d", tab.Len(), len(oracle))
	}
}

func TestCrashRecovery(t *testing.T) {
	mem := memsim.New(memsim.Config{Size: 4 << 20, Seed: 4, Geoms: cache.SmallGeometry()})
	tab := New(mem, Options{Cells: 512, Seed: 4})
	committed := make(map[uint64]uint64)
	for i := uint64(1); i <= 200; i++ {
		// Some inserts fail outright (both candidates taken — the very
		// weakness that excludes the scheme); only successful ones are
		// durable commitments.
		if tab.Insert(layout.Key{Lo: i}, i) == nil {
			committed[i] = i
		}
	}
	mem.Crash(0.5)
	rep, err := tab.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CellsScanned != 512 {
		t.Fatalf("scanned %d", rep.CellsScanned)
	}
	for key, want := range committed {
		if v, ok := tab.Lookup(layout.Key{Lo: key}); !ok || v != want {
			t.Fatalf("committed key %d lost", key)
		}
	}
	if tab.Len() != uint64(len(committed)) {
		t.Fatalf("count %d, want %d", tab.Len(), len(committed))
	}
}
