// Package dchoice implements plain 2-choice hashing (Azar et al.'s
// two-choice paradigm with single-slot buckets): each key may sit in
// one of two hashed cells, nothing else. The paper excludes it from the
// evaluation because "2-choice hashing has too low space utilization
// ratio" (§4.1); the exclusion experiment (ghbench -exp excluded)
// measures that ratio so the claim is reproduced rather than assumed.
//
// Cells use the shared commit protocol, so the scheme is as crash
// consistent as group hashing — it just wastes space.
package dchoice

import (
	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/xhash"
)

// Options configures a table.
type Options struct {
	// Cells is the table size (power of two).
	Cells uint64
	// KeyBytes is 8 or 16.
	KeyBytes int
	// Seed selects the hash-function pair.
	Seed uint64
}

// Table is a 2-choice hash table over persistent memory.
type Table struct {
	mem    hashtab.Mem
	l      layout.Layout
	h1, h2 xhash.Func
	cells  hashtab.Cells
	count  hashtab.Count
}

// New allocates a table in mem.
func New(mem hashtab.Mem, opts Options) *Table {
	if opts.Cells == 0 || opts.Cells&(opts.Cells-1) != 0 {
		panic("dchoice: Cells must be a nonzero power of two")
	}
	if opts.KeyBytes == 0 {
		opts.KeyBytes = 8
	}
	l := layout.ForKeySize(opts.KeyBytes)
	return &Table{
		mem:   mem,
		l:     l,
		h1:    xhash.NewFunc(opts.Seed*2+21, opts.Cells, l.KeyWords() == 2),
		h2:    xhash.NewFunc(opts.Seed*2+22, opts.Cells, l.KeyWords() == 2),
		cells: hashtab.NewCells(mem, l, opts.Cells),
		count: hashtab.NewCount(mem),
	}
}

// Name implements hashtab.Table.
func (t *Table) Name() string { return "2choice" }

// Len returns the number of stored items.
func (t *Table) Len() uint64 { return t.count.Get() }

// Capacity returns the cell count.
func (t *Table) Capacity() uint64 { return t.cells.N }

// LoadFactor returns Len/Capacity.
func (t *Table) LoadFactor() float64 { return float64(t.Len()) / float64(t.Capacity()) }

func (t *Table) candidates(k layout.Key) (uint64, uint64) {
	return t.h1.Index(k.Lo, k.Hi), t.h2.Index(k.Lo, k.Hi)
}

// Insert places the item in whichever candidate cell is free.
func (t *Table) Insert(k layout.Key, v uint64) error {
	if !t.l.ValidKey(k) {
		return hashtab.ErrInvalidKey
	}
	i1, i2 := t.candidates(k)
	for _, i := range [2]uint64{i1, i2} {
		if !t.cells.Occupied(i) {
			t.cells.InsertAt(i, k, v)
			t.count.Inc()
			return nil
		}
	}
	return hashtab.ErrTableFull
}

// Lookup checks both candidate cells.
func (t *Table) Lookup(k layout.Key) (uint64, bool) {
	i1, i2 := t.candidates(k)
	for _, i := range [2]uint64{i1, i2} {
		if t.cells.Matches(i, k) {
			return t.cells.Value(i), true
		}
	}
	return 0, false
}

// Update overwrites an existing key's value in place.
func (t *Table) Update(k layout.Key, v uint64) bool {
	i1, i2 := t.candidates(k)
	for _, i := range [2]uint64{i1, i2} {
		if t.cells.Matches(i, k) {
			addr := t.l.ValOff(t.cells.Addr(i))
			t.mem.AtomicWrite8(addr, v)
			t.mem.Persist(addr, layout.WordSize)
			return true
		}
	}
	return false
}

// Delete removes k from whichever candidate cell holds it.
func (t *Table) Delete(k layout.Key) bool {
	i1, i2 := t.candidates(k)
	for _, i := range [2]uint64{i1, i2} {
		if t.cells.Matches(i, k) {
			t.cells.DeleteAt(i)
			t.count.Dec()
			return true
		}
	}
	return false
}

// Recover scrubs torn payloads and recounts (the shared Algorithm-4
// pattern).
func (t *Table) Recover() (hashtab.RecoveryReport, error) {
	var rep hashtab.RecoveryReport
	var n uint64
	for i := uint64(0); i < t.cells.N; i++ {
		rep.CellsScanned++
		if t.cells.Occupied(i) {
			n++
			continue
		}
		if !t.cells.PayloadZero(i) {
			t.cells.ClearPayload(i)
			rep.CellsCleared++
		}
	}
	rep.CountCorrected = t.count.Get() != n
	t.count.Set(n)
	return rep, nil
}
