// Package pfht implements PFHT (Debnath et al., "Revisiting hash table
// design for phase change memory", OSR 2016), the NVM-friendly cuckoo
// baseline of the paper's evaluation: two hash functions over buckets
// of four contiguous cells, at most ONE displacement per insert (to
// bound cascading NVM writes), and an extra stash sized at 3% of the
// table that overflow items fall into and that lookups search linearly.
//
// Bucket cells are contiguous, so intra-bucket probing is cacheline
// friendly; the stash's linear search is what degrades PFHT at load
// factor 0.75 in Figures 5 and 6 ("more items are stored in the extra
// stash ... PFHT needs to spend more time to linearly search").
//
// Like the other baselines, the table optionally carries an undo WAL
// (the paper's PFHT-L); without it, interrupted inserts/displacements
// can leave torn or duplicated items.
package pfht

import (
	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/wal"
	"grouphash/internal/xhash"
)

// BucketSize is the number of cells per bucket (the paper: "each bucket
// contains 4 hash cells").
const BucketSize = 4

// StashFraction is the stash size relative to the table ("an extra
// stash with 3% size of the hash table").
const StashFraction = 0.03

// Options configures a table.
type Options struct {
	// Cells is the main-table size in cells (power of two, multiple of
	// BucketSize).
	Cells uint64
	// KeyBytes is 8 or 16.
	KeyBytes int
	// Seed selects the hash-function pair.
	Seed uint64
	// Logged attaches an undo WAL (the paper's PFHT-L variant).
	Logged bool
}

// Table is a PFHT hash table over persistent memory.
type Table struct {
	mem     hashtab.Mem
	l       layout.Layout
	h1, h2  xhash.Func
	cells   hashtab.Cells // main table: nbuckets * BucketSize cells
	stash   hashtab.Cells
	count   hashtab.Count // items in the main table + stash
	stashed hashtab.Count // items currently in the stash
	log     *wal.Log
}

// New allocates a table in mem.
func New(mem hashtab.Mem, opts Options) *Table {
	if opts.Cells == 0 || opts.Cells&(opts.Cells-1) != 0 {
		panic("pfht: Cells must be a nonzero power of two")
	}
	if opts.Cells%BucketSize != 0 {
		panic("pfht: Cells must be a multiple of the bucket size")
	}
	if opts.KeyBytes == 0 {
		opts.KeyBytes = 8
	}
	l := layout.ForKeySize(opts.KeyBytes)
	nbuckets := opts.Cells / BucketSize
	stashCells := uint64(float64(opts.Cells) * StashFraction)
	if stashCells == 0 {
		stashCells = 1
	}
	t := &Table{
		mem:     mem,
		l:       l,
		h1:      xhash.NewFunc(opts.Seed*2+1, nbuckets, l.KeyWords() == 2),
		h2:      xhash.NewFunc(opts.Seed*2+2, nbuckets, l.KeyWords() == 2),
		cells:   hashtab.NewCells(mem, l, opts.Cells),
		stash:   hashtab.NewCells(mem, l, stashCells),
		count:   hashtab.NewCount(mem),
		stashed: hashtab.NewCount(mem),
	}
	if opts.Logged {
		t.log = wal.New(mem, l)
	}
	return t
}

// Name implements hashtab.Table.
func (t *Table) Name() string {
	if t.log != nil {
		return "pfht-L"
	}
	return "pfht"
}

// Len returns the number of stored items.
func (t *Table) Len() uint64 { return t.count.Get() }

// Capacity returns main-table plus stash cells.
func (t *Table) Capacity() uint64 { return t.cells.N + t.stash.N }

// LoadFactor returns Len/Capacity, 0 on a zero-capacity table.
func (t *Table) LoadFactor() float64 {
	if t.Capacity() == 0 {
		return 0
	}
	return float64(t.Len()) / float64(t.Capacity())
}

// StashLen returns the number of items currently in the stash.
func (t *Table) StashLen() uint64 { return t.stashed.Get() }

func (t *Table) logCell(c hashtab.Cells, i uint64) {
	if t.log == nil {
		return
	}
	meta, k, v := c.Snapshot(i)
	t.log.LogCell(c.Addr(i), meta, k, v)
}

func (t *Table) commit() {
	if t.log != nil {
		t.log.Commit()
	}
}

// bucketCell returns the cell index of slot s of bucket b.
func bucketCell(b uint64, s int) uint64 { return b*BucketSize + uint64(s) }

// emptySlot returns the first empty slot in bucket b, or -1.
func (t *Table) emptySlot(b uint64) int {
	for s := 0; s < BucketSize; s++ {
		if !t.cells.Occupied(bucketCell(b, s)) {
			return s
		}
	}
	return -1
}

// insertIntoBucket runs the commit protocol for slot s of bucket b.
func (t *Table) insertIntoBucket(b uint64, s int, k layout.Key, v uint64) {
	i := bucketCell(b, s)
	t.logCell(t.cells, i)
	t.cells.InsertAt(i, k, v)
	t.count.Inc()
	t.commit()
}

// Insert places (k, v) in one of its two buckets; if both are full, it
// attempts at most one displacement (moving an existing item of either
// bucket to that item's alternate bucket); failing that the item goes
// to the stash. ErrTableFull means both buckets, every displacement
// candidate's alternate, and the stash are full.
func (t *Table) Insert(k layout.Key, v uint64) error {
	if !t.l.ValidKey(k) {
		return hashtab.ErrInvalidKey
	}
	b1 := t.h1.Index(k.Lo, k.Hi)
	b2 := t.h2.Index(k.Lo, k.Hi)
	if s := t.emptySlot(b1); s >= 0 {
		t.insertIntoBucket(b1, s, k, v)
		return nil
	}
	if s := t.emptySlot(b2); s >= 0 {
		t.insertIntoBucket(b2, s, k, v)
		return nil
	}
	// One displacement: find an item in either bucket whose alternate
	// bucket has room, move it, and take its slot.
	for _, b := range [2]uint64{b1, b2} {
		for s := 0; s < BucketSize; s++ {
			i := bucketCell(b, s)
			ki := t.cells.Key(i)
			alt := t.altBucket(ki, b)
			if alt == b {
				continue // both hashes agree: nowhere to go
			}
			as := t.emptySlot(alt)
			if as < 0 {
				continue
			}
			vi := t.cells.Value(i)
			ai := bucketCell(alt, as)
			// Move i -> ai, then overwrite i with the new item.
			t.logCell(t.cells, ai)
			t.cells.InsertAt(ai, ki, vi)
			t.logCell(t.cells, i)
			t.cells.WritePayload(i, k, v)
			t.cells.PersistPayload(i)
			t.cells.CommitOccupied(i, k)
			t.count.Inc()
			t.commit()
			return nil
		}
	}
	// Stash.
	for i := uint64(0); i < t.stash.N; i++ {
		if !t.stash.Occupied(i) {
			t.logCell(t.stash, i)
			t.stash.InsertAt(i, k, v)
			t.count.Inc()
			t.stashed.Inc()
			t.commit()
			return nil
		}
	}
	return hashtab.ErrTableFull
}

// altBucket returns the other bucket of key k given one of its buckets.
func (t *Table) altBucket(k layout.Key, b uint64) uint64 {
	b1 := t.h1.Index(k.Lo, k.Hi)
	if b1 != b {
		return b1
	}
	return t.h2.Index(k.Lo, k.Hi)
}

// Lookup checks both buckets, then linearly searches the stash until it
// has seen as many occupied stash cells as the stash holds.
func (t *Table) Lookup(k layout.Key) (uint64, bool) {
	b1 := t.h1.Index(k.Lo, k.Hi)
	for s := 0; s < BucketSize; s++ {
		if t.cells.Matches(bucketCell(b1, s), k) {
			return t.cells.Value(bucketCell(b1, s)), true
		}
	}
	b2 := t.h2.Index(k.Lo, k.Hi)
	for s := 0; s < BucketSize; s++ {
		if t.cells.Matches(bucketCell(b2, s), k) {
			return t.cells.Value(bucketCell(b2, s)), true
		}
	}
	remaining := t.stashed.Get()
	for i := uint64(0); i < t.stash.N && remaining > 0; i++ {
		if !t.stash.Occupied(i) {
			continue
		}
		if t.stash.Matches(i, k) {
			return t.stash.Value(i), true
		}
		remaining--
	}
	return 0, false
}

// Update overwrites the value of an existing key in place.
func (t *Table) Update(k layout.Key, v uint64) bool {
	set := func(c hashtab.Cells, i uint64) bool {
		addr := t.l.ValOff(c.Addr(i))
		t.mem.AtomicWrite8(addr, v)
		t.mem.Persist(addr, layout.WordSize)
		return true
	}
	for _, b := range [2]uint64{t.h1.Index(k.Lo, k.Hi), t.h2.Index(k.Lo, k.Hi)} {
		for s := 0; s < BucketSize; s++ {
			if i := bucketCell(b, s); t.cells.Matches(i, k) {
				return set(t.cells, i)
			}
		}
	}
	remaining := t.stashed.Get()
	for i := uint64(0); i < t.stash.N && remaining > 0; i++ {
		if !t.stash.Occupied(i) {
			continue
		}
		if t.stash.Matches(i, k) {
			return set(t.stash, i)
		}
		remaining--
	}
	return false
}

// Delete removes k from a bucket or the stash.
func (t *Table) Delete(k layout.Key) bool {
	for _, b := range [2]uint64{t.h1.Index(k.Lo, k.Hi), t.h2.Index(k.Lo, k.Hi)} {
		for s := 0; s < BucketSize; s++ {
			i := bucketCell(b, s)
			if t.cells.Matches(i, k) {
				t.logCell(t.cells, i)
				t.cells.DeleteAt(i)
				t.count.Dec()
				t.commit()
				return true
			}
		}
	}
	remaining := t.stashed.Get()
	for i := uint64(0); i < t.stash.N && remaining > 0; i++ {
		if !t.stash.Occupied(i) {
			continue
		}
		if t.stash.Matches(i, k) {
			t.logCell(t.stash, i)
			t.stash.DeleteAt(i)
			t.count.Dec()
			t.stashed.Dec()
			t.commit()
			return true
		}
		remaining--
	}
	return false
}

// Recover rolls back any in-flight logged operation, scrubs payloads
// behind zero bitmaps in table and stash, and recounts both counters.
func (t *Table) Recover() (hashtab.RecoveryReport, error) {
	var rep hashtab.RecoveryReport
	if t.log != nil {
		rep.UndoneOps = t.log.Recover()
	}
	n, ns := uint64(0), uint64(0)
	for i := uint64(0); i < t.cells.N; i++ {
		rep.CellsScanned++
		if t.cells.Occupied(i) {
			n++
			continue
		}
		if !t.cells.PayloadZero(i) {
			t.cells.ClearPayload(i)
			rep.CellsCleared++
		}
	}
	for i := uint64(0); i < t.stash.N; i++ {
		rep.CellsScanned++
		if t.stash.Occupied(i) {
			ns++
			continue
		}
		if !t.stash.PayloadZero(i) {
			t.stash.ClearPayload(i)
			rep.CellsCleared++
		}
	}
	rep.CountCorrected = t.count.Get() != n+ns || t.stashed.Get() != ns
	t.count.Set(n + ns)
	t.stashed.Set(ns)
	return rep, nil
}

// CheckConsistency audits the structural invariants without repairing:
// both persistent counters match the occupied cells, empty cells hide
// no payload, every stored key is valid, and every main-table item sits
// in one of its two buckets (a displaced item that landed elsewhere
// would be invisible to Lookup).
func (t *Table) CheckConsistency() []string {
	var bad []string
	n, ns := uint64(0), uint64(0)
	for i := uint64(0); i < t.cells.N; i++ {
		if !t.cells.Occupied(i) {
			if !t.cells.PayloadZero(i) {
				bad = append(bad, "empty cell has a non-zero payload")
			}
			continue
		}
		n++
		k := t.cells.Key(i)
		if !t.l.ValidKey(k) {
			bad = append(bad, "occupied cell holds an invalid key")
			continue
		}
		b := i / BucketSize
		if t.h1.Index(k.Lo, k.Hi) != b && t.h2.Index(k.Lo, k.Hi) != b {
			bad = append(bad, "cell holds a key that hashes to neither of its buckets")
		}
	}
	for i := uint64(0); i < t.stash.N; i++ {
		if !t.stash.Occupied(i) {
			if !t.stash.PayloadZero(i) {
				bad = append(bad, "empty stash cell has a non-zero payload")
			}
			continue
		}
		ns++
		if !t.l.ValidKey(t.stash.Key(i)) {
			bad = append(bad, "occupied stash cell holds an invalid key")
		}
	}
	if t.count.Get() != n+ns {
		bad = append(bad, "persistent count does not match occupied cells")
	}
	if t.stashed.Get() != ns {
		bad = append(bad, "persistent stash count does not match occupied stash cells")
	}
	return bad
}
