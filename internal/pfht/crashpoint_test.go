package pfht

import (
	"testing"

	"grouphash/internal/cache"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
)

// Exhaustive crash-point coverage for PFHT's hardest consistency case:
// the displacement insert, which rewrites two occupied-adjacent cells.
// With the WAL (PFHT-L) every internal crash point must recover to an
// atomic outcome; the test drives an insert that is known to displace
// and cuts it at every memory event.

// buildDisplacing returns a deterministic logged table plus a key whose
// insert displaces an existing item (both candidate buckets full, one
// resident has a free alternate).
func buildDisplacing(seed int64) (*memsim.Memory, *Table, layout.Key, map[uint64]uint64) {
	mem := memsim.New(memsim.Config{Size: 1 << 21, Seed: seed, Geoms: cache.SmallGeometry()})
	tab := New(mem, Options{Cells: 64, Seed: 2, Logged: true})
	resident := make(map[uint64]uint64)

	// Fill until some key's two buckets are both full; detect by dry
	// probing: find a fresh key whose buckets are both occupied.
	var trigger layout.Key
	i := uint64(1)
	for {
		k := layout.Key{Lo: i}
		b1 := tab.h1.Index(k.Lo, 0)
		b2 := tab.h2.Index(k.Lo, 0)
		if tab.emptySlot(b1) < 0 && tab.emptySlot(b2) < 0 {
			trigger = k
			break
		}
		if err := tab.Insert(k, i); err != nil {
			panic("table filled before finding a displacement trigger")
		}
		resident[i] = i
		i++
	}
	mem.CleanShutdown()
	return mem, tab, trigger, resident
}

func TestLoggedDisplacementEveryCrashPointRecovers(t *testing.T) {
	for _, p := range []float64{0, 0.5, 1} {
		for offset := uint64(1); ; offset++ {
			mem, tab, trigger, resident := buildDisplacing(int64(offset))
			start := mem.Counters().Accesses
			mem.ScheduleShadowCrash(start+offset, p)
			if err := tab.Insert(trigger, 4242); err != nil {
				t.Fatal(err)
			}
			if !mem.AdoptShadowCrash() {
				break
			}
			if _, err := tab.Recover(); err != nil {
				t.Fatal(err)
			}
			// Every resident item must survive intact: the WAL rolls
			// back any half-done displacement.
			for key, v := range resident {
				got, ok := tab.Lookup(layout.Key{Lo: key})
				if !ok || got != v {
					t.Fatalf("p=%v offset=%d: resident %d = (%d, %v)", p, offset, key, got, ok)
				}
			}
			// The triggering insert is all-or-nothing.
			if v, ok := tab.Lookup(trigger); ok && v != 4242 {
				t.Fatalf("p=%v offset=%d: torn trigger value %d", p, offset, v)
			}
		}
	}
}
