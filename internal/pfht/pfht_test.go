package pfht

import (
	"math/rand"
	"testing"

	"grouphash/internal/cache"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/native"
)

func simMem(seed int64) *memsim.Memory {
	return memsim.New(memsim.Config{Size: 8 << 20, Seed: seed, Geoms: cache.SmallGeometry()})
}

func TestValidation(t *testing.T) {
	mem := native.New(1 << 20)
	for _, f := range []func(){
		func() { New(mem, Options{Cells: 0}) },
		func() { New(mem, Options{Cells: 100}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBasicOps(t *testing.T) {
	for _, logged := range []bool{false, true} {
		mem := simMem(2)
		tab := New(mem, Options{Cells: 1024, Logged: logged, Seed: 1})
		wantName := "pfht"
		if logged {
			wantName = "pfht-L"
		}
		if tab.Name() != wantName {
			t.Fatalf("Name = %q", tab.Name())
		}
		for i := uint64(1); i <= 700; i++ {
			if err := tab.Insert(layout.Key{Lo: i}, i+5); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
		}
		if tab.Len() != 700 {
			t.Fatalf("Len = %d", tab.Len())
		}
		for i := uint64(1); i <= 700; i++ {
			if v, ok := tab.Lookup(layout.Key{Lo: i}); !ok || v != i+5 {
				t.Fatalf("lookup %d = (%d, %v)", i, v, ok)
			}
		}
		if _, ok := tab.Lookup(layout.Key{Lo: 99999}); ok {
			t.Fatal("phantom key")
		}
		for i := uint64(1); i <= 700; i += 2 {
			if !tab.Delete(layout.Key{Lo: i}) {
				t.Fatalf("delete %d", i)
			}
		}
		for i := uint64(1); i <= 700; i++ {
			_, ok := tab.Lookup(layout.Key{Lo: i})
			if want := i%2 == 0; ok != want {
				t.Fatalf("key %d presence %v, want %v", i, ok, want)
			}
		}
	}
}

func TestCapacityIncludesStash(t *testing.T) {
	mem := native.New(1 << 20)
	tab := New(mem, Options{Cells: 1024})
	cells := 1024.0
	wantStash := uint64(cells * StashFraction)
	if tab.Capacity() != 1024+wantStash {
		t.Fatalf("capacity = %d, want %d", tab.Capacity(), 1024+wantStash)
	}
}

func TestStashAbsorbsOverflow(t *testing.T) {
	// Drive the table hard enough that some items must land in the
	// stash, then verify they are found and deletable.
	mem := native.New(16 << 20)
	tab := New(mem, Options{Cells: 256, Seed: 3})
	inserted := make([]layout.Key, 0, 300)
	for i := uint64(1); len(inserted) < 240; i++ {
		k := layout.Key{Lo: i}
		if err := tab.Insert(k, i); err != nil {
			break
		}
		inserted = append(inserted, k)
	}
	if tab.StashLen() == 0 {
		t.Fatal("expected stash usage at ~94% fill of a 4-slot-bucket table")
	}
	for _, k := range inserted {
		if v, ok := tab.Lookup(k); !ok || v != k.Lo {
			t.Fatalf("item %d missing (stash search broken?): (%d, %v)", k.Lo, v, ok)
		}
	}
	// Delete the stash residents specifically.
	before := tab.StashLen()
	removed := uint64(0)
	for i := uint64(0); i < tab.stash.N; i++ {
		if tab.stash.Occupied(i) {
			k := tab.stash.Key(i)
			if !tab.Delete(k) {
				t.Fatalf("stash delete of %d failed", k.Lo)
			}
			removed++
		}
	}
	if tab.StashLen() != before-removed {
		t.Fatalf("stash count %d, want %d", tab.StashLen(), before-removed)
	}
}

func TestDisplacementMovesAtMostOneItem(t *testing.T) {
	// Whenever both buckets are full, the insert may relocate exactly
	// one existing item. We verify no item ever ends up outside its two
	// buckets or the stash (i.e. no cascading cuckoo chains).
	mem := native.New(16 << 20)
	tab := New(mem, Options{Cells: 512, Seed: 7})
	var keys []layout.Key
	for i := uint64(1); i <= 450; i++ {
		k := layout.Key{Lo: i}
		if err := tab.Insert(k, i); err != nil {
			break
		}
		keys = append(keys, k)
	}
	for _, k := range keys {
		b1 := tab.h1.Index(k.Lo, 0)
		b2 := tab.h2.Index(k.Lo, 0)
		found := false
		for s := 0; s < BucketSize; s++ {
			if tab.cells.Matches(bucketCell(b1, s), k) || tab.cells.Matches(bucketCell(b2, s), k) {
				found = true
			}
		}
		if !found {
			for i := uint64(0); i < tab.stash.N; i++ {
				if tab.stash.Matches(i, k) {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("key %d is neither in its buckets nor the stash", k.Lo)
		}
	}
}

func TestOracleFuzz(t *testing.T) {
	mem := native.New(32 << 20)
	tab := New(mem, Options{Cells: 2048, Seed: 11})
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(23))
	for op := 0; op < 30000; op++ {
		key := uint64(rng.Intn(1500)) + 1
		k := layout.Key{Lo: key}
		switch rng.Intn(3) {
		case 0:
			if _, exists := oracle[key]; !exists {
				if err := tab.Insert(k, key*3); err == nil {
					oracle[key] = key * 3
				}
			}
		case 1:
			v, ok := tab.Lookup(k)
			ov, ook := oracle[key]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("op %d: lookup(%d) = (%d,%v), oracle (%d,%v)", op, key, v, ok, ov, ook)
			}
		case 2:
			ok := tab.Delete(k)
			if _, ook := oracle[key]; ok != ook {
				t.Fatalf("op %d: delete(%d) = %v, oracle %v", op, key, ok, ook)
			}
			delete(oracle, key)
		}
	}
	if tab.Len() != uint64(len(oracle)) {
		t.Fatalf("Len = %d, oracle %d", tab.Len(), len(oracle))
	}
}

func TestLoggedRecoveryRollsBackMidDisplacement(t *testing.T) {
	mem := simMem(41)
	tab := New(mem, Options{Cells: 64, Logged: true, Seed: 1})
	for i := uint64(1); i <= 40; i++ {
		tab.Insert(layout.Key{Lo: i}, i)
	}
	mem.CleanShutdown()
	preLen := tab.Len()

	// Hand-drive half a displacement: log and overwrite one cell with
	// garbage, no commit, crash.
	meta, k, v := tab.cells.Snapshot(3)
	tab.log.LogCell(tab.cells.Addr(3), meta, k, v)
	tab.cells.WritePayload(3, layout.Key{Lo: 4242}, 4242)
	tab.cells.PersistPayload(3)
	tab.cells.CommitOccupied(3, layout.Key{Lo: 4242})
	mem.Crash(0.5)

	rep, err := tab.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.UndoneOps != 1 {
		t.Fatalf("UndoneOps = %d", rep.UndoneOps)
	}
	if tab.Len() != preLen {
		t.Fatalf("Len = %d, want %d", tab.Len(), preLen)
	}
	for i := uint64(1); i <= 40; i++ {
		if got, ok := tab.Lookup(layout.Key{Lo: i}); !ok || got != i {
			t.Fatalf("key %d after rollback: (%d, %v)", i, got, ok)
		}
	}
	if _, ok := tab.Lookup(layout.Key{Lo: 4242}); ok {
		t.Fatal("garbage item visible after rollback")
	}
}

func TestRecoveryScrubsAndRecounts(t *testing.T) {
	mem := simMem(42)
	tab := New(mem, Options{Cells: 256, Seed: 2})
	for i := uint64(1); i <= 100; i++ {
		tab.Insert(layout.Key{Lo: i}, i)
	}
	mem.CleanShutdown()
	// Torn insert: payload without meta.
	var victim uint64
	for i := uint64(0); i < tab.cells.N; i++ {
		if !tab.cells.Occupied(i) {
			victim = i
			break
		}
	}
	tab.cells.WritePayload(victim, layout.Key{Lo: 7777}, 1)
	mem.Crash(0.5)

	rep, err := tab.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !tab.cells.PayloadZero(victim) {
		t.Fatalf("torn payload not scrubbed (report %+v)", rep)
	}
	if tab.Len() != 100 {
		t.Fatalf("count = %d", tab.Len())
	}
}

func TestUpdateInPlaceIncludingStash(t *testing.T) {
	mem := native.New(16 << 20)
	tab := New(mem, Options{Cells: 256, Seed: 3})
	// Fill hard so the stash is used, then update every item.
	var keys []layout.Key
	for i := uint64(1); i <= 240; i++ {
		k := layout.Key{Lo: i}
		if tab.Insert(k, i) != nil {
			break
		}
		keys = append(keys, k)
	}
	if tab.StashLen() == 0 {
		t.Fatal("expected stash usage")
	}
	for _, k := range keys {
		if !tab.Update(k, k.Lo+1000) {
			t.Fatalf("update of %d failed", k.Lo)
		}
	}
	for _, k := range keys {
		if v, _ := tab.Lookup(k); v != k.Lo+1000 {
			t.Fatalf("value of %d = %d", k.Lo, v)
		}
	}
	if tab.Update(layout.Key{Lo: 99999}, 1) {
		t.Fatal("updated an absent key")
	}
}
