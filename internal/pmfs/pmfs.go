// Package pmfs persists simulated-NVM images to ordinary files — the
// role PMFS plays in the paper's setup (§4.1: "a portion of the DRAM
// region as NVM ... managed by PMFS, which gives direct access to the
// memory region with mmap"). On a machine without persistent memory,
// the closest faithful analogue of a PMFS file is an image file: the
// region's durable bytes plus the metadata needed to remap it — the
// region size, the allocator watermark, and the application's root
// address (the table header).
//
// Saves are crash-safe in the ordinary file-system sense: the image is
// written to a temporary file in the target's directory, fsynced,
// renamed over the target, and the parent DIRECTORY is fsynced after
// the rename. All three barriers are required for the "either the old
// image or the new one" guarantee on a real file system: the file
// fsync makes the new bytes durable, the atomic rename switches the
// name, and the directory fsync makes the switch itself durable — on
// POSIX file systems a rename lives in the directory's data, so a
// crash before the directory sync can legally resurrect the old
// directory entry (that still points at the old, intact image — the
// guarantee holds either way, but only because the temp file was
// fully synced BEFORE the rename).
//
// The same image format serves both memory backends: Save/Load wrap
// the simulated machine (cache write-back, latency model), while
// SaveImage/LoadImage move raw image bytes for callers that manage
// their own memory — the native-backend network server snapshots
// through them.
package pmfs

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"grouphash/internal/memsim"
)

// Magic identifies a pmfs image file. Format version 2 appends a meta
// word to the header: the oplog mark — the LSN of the last operation-
// log record the image covers (0 when no oplog is in play), so
// recovery knows exactly where snapshot state ends and log replay
// begins. Version-1 images (no meta word) still load, with meta 0.
const Magic = 0x504d46535f474802 // "PMFS_GH" + format version 2

// magicV1 is the previous format's magic; accepted by LoadImage.
const magicV1 = 0x504d46535f474801

// header layout (words): magic, region size, allocator watermark,
// root, meta (v1 images stop after root).
const (
	headerWords   = 5
	headerWordsV1 = 4
)

// Save writes mem's durable image to path, recording root (the
// application's persistent root address, e.g. the table header) in the
// image header. The machine is cleanly shut down first — every dirty
// line is written back — because an image may only contain durable
// state.
func Save(path string, mem *memsim.Memory, root uint64) error {
	mem.CleanShutdown()
	return SaveImage(path, mem.Region().Image(), mem.Allocated(), root, 0)
}

// SaveImage crash-safely writes a raw memory image to path: temp file
// in path's directory, write, fsync, rename, directory fsync (see the
// package comment for why each step is needed). The image must be a
// consistent cut of the region — for the simulated machine that means
// after CleanShutdown (Save does this), for a concurrently served
// native memory it means inside a quiesce window. meta is the image's
// oplog mark (0 when snapshots are the only durability mechanism).
func SaveImage(path string, img []byte, allocated, root, meta uint64) error {
	buf := make([]byte, headerWords*8+len(img))
	binary.LittleEndian.PutUint64(buf[0:8], Magic)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(img)))
	binary.LittleEndian.PutUint64(buf[16:24], allocated)
	binary.LittleEndian.PutUint64(buf[24:32], root)
	binary.LittleEndian.PutUint64(buf[32:40], meta)
	copy(buf[headerWords*8:], img)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".pmfs-*")
	if err != nil {
		return fmt.Errorf("pmfs: creating temp image: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("pmfs: writing image: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("pmfs: syncing image: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("pmfs: closing image: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("pmfs: publishing image: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-completed rename inside it is
// durable, not merely visible.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("pmfs: opening directory for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("pmfs: syncing directory: %w", err)
	}
	return nil
}

// Load reads an image file and builds a fresh simulated machine holding
// its contents, returning the machine and the stored root address. The
// supplied config's Size is overridden by the image's region size; the
// other knobs (seed, latency, geometry) apply to the new machine.
func Load(path string, cfg memsim.Config) (*memsim.Memory, uint64, error) {
	img, next, root, _, err := LoadImage(path)
	if err != nil {
		return nil, 0, err
	}
	cfg.Size = uint64(len(img))
	mem := memsim.New(cfg)
	mem.Region().SetImage(img)
	mem.SetAllocated(next)
	return mem, root, nil
}

// LoadImage reads and validates an image file, returning the raw image
// bytes, the allocator watermark, the root address and the oplog mark
// (0 for version-1 images, which predate it). Backend-neutral: Load
// feeds the result to a fresh simulated machine, the network server
// feeds it to a native memory.
func LoadImage(path string) (img []byte, allocated, root, meta uint64, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("pmfs: reading image: %w", err)
	}
	if len(buf) < headerWordsV1*8 {
		return nil, 0, 0, 0, fmt.Errorf("pmfs: image truncated (%d bytes)", len(buf))
	}
	words := headerWords
	switch got := binary.LittleEndian.Uint64(buf[0:8]); got {
	case Magic:
	case magicV1:
		words = headerWordsV1
	default:
		return nil, 0, 0, 0, fmt.Errorf("pmfs: bad magic %#x", got)
	}
	if len(buf) < words*8 {
		return nil, 0, 0, 0, fmt.Errorf("pmfs: image truncated (%d bytes)", len(buf))
	}
	size := binary.LittleEndian.Uint64(buf[8:16])
	allocated = binary.LittleEndian.Uint64(buf[16:24])
	root = binary.LittleEndian.Uint64(buf[24:32])
	if words == headerWords {
		meta = binary.LittleEndian.Uint64(buf[32:40])
	}
	img = buf[words*8:]
	if uint64(len(img)) != size {
		return nil, 0, 0, 0, fmt.Errorf("pmfs: image body is %d bytes, header says %d", len(img), size)
	}
	if allocated > size {
		return nil, 0, 0, 0, fmt.Errorf("pmfs: corrupt watermark %d for %d-byte region", allocated, size)
	}
	return img, allocated, root, meta, nil
}
