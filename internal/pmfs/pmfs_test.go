package pmfs

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"grouphash/internal/cache"
	"grouphash/internal/core"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "table.img")

	mem := memsim.New(memsim.Config{Size: 1 << 20, Seed: 1, Geoms: cache.SmallGeometry()})
	tab, err := core.Create(mem, core.Options{Cells: 1024, GroupSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 500; i++ {
		if err := tab.Insert(layout.Key{Lo: i}, i*2); err != nil {
			t.Fatal(err)
		}
	}
	if err := Save(path, mem, tab.Header()); err != nil {
		t.Fatal(err)
	}

	// "Reboot": an entirely new machine from the image.
	mem2, root, err := Load(path, memsim.Config{Seed: 2, Geoms: cache.SmallGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	tab2, err := core.Open(mem2, root)
	if err != nil {
		t.Fatal(err)
	}
	if tab2.Len() != 500 {
		t.Fatalf("reloaded Len = %d", tab2.Len())
	}
	for i := uint64(1); i <= 500; i++ {
		if v, ok := tab2.Lookup(layout.Key{Lo: i}); !ok || v != i*2 {
			t.Fatalf("reloaded key %d = (%d, %v)", i, v, ok)
		}
	}
	if bad := tab2.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies after reload: %v", bad)
	}
	// The allocator must continue from the stored watermark, not
	// clobber the table.
	if mem2.Allocated() != mem.Allocated() {
		t.Fatalf("watermark %d, want %d", mem2.Allocated(), mem.Allocated())
	}
	addr := mem2.Alloc(64, 8)
	if addr < mem.Allocated() {
		t.Fatal("new allocation overlaps reloaded structures")
	}
}

func TestSavePersistsDirtyState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dirty.img")
	mem := memsim.New(memsim.Config{Size: 1 << 16, Seed: 1, Geoms: cache.SmallGeometry()})
	mem.Write8(0, 99) // dirty, never explicitly persisted
	if err := Save(path, mem, 0); err != nil {
		t.Fatal(err)
	}
	mem2, _, err := Load(path, memsim.Config{Seed: 1, Geoms: cache.SmallGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	if mem2.Read8(0) != 99 {
		t.Fatal("Save must clean-shutdown first")
	}
}

func TestLoadRejectsCorruptImages(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]byte{
		"truncated": make([]byte, 8),
		"badmagic":  make([]byte, 64),
	}
	// Bad watermark: valid magic, size 8, watermark 4096.
	bw := make([]byte, 40+8)
	binary.LittleEndian.PutUint64(bw[0:8], Magic)
	binary.LittleEndian.PutUint64(bw[8:16], 8)
	binary.LittleEndian.PutUint64(bw[16:24], 4096)
	cases["badwatermark"] = bw
	// Size mismatch: header says 16, body has 8.
	sm := make([]byte, 40+8)
	binary.LittleEndian.PutUint64(sm[0:8], Magic)
	binary.LittleEndian.PutUint64(sm[8:16], 16)
	cases["sizemismatch"] = sm

	for name, data := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Load(p, memsim.Config{}); err == nil {
			t.Errorf("%s: corrupt image accepted", name)
		}
	}
	if _, _, err := Load(filepath.Join(dir, "missing"), memsim.Config{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "atomic.img")
	mem := memsim.New(memsim.Config{Size: 1 << 16, Seed: 1, Geoms: cache.SmallGeometry()})
	mem.Write8(0, 1)
	if err := Save(path, mem, 0); err != nil {
		t.Fatal(err)
	}
	// A second save over the same path succeeds and leaves no temp
	// droppings.
	mem.Write8(0, 2)
	if err := Save(path, mem, 0); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the image", len(entries))
	}
	mem2, _, err := Load(path, memsim.Config{Geoms: cache.SmallGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	if mem2.Read8(0) != 2 {
		t.Fatal("second save not visible")
	}
}

// TestSaveImageLoadImageRoundtrip checks the backend-neutral raw-image
// path the network server snapshots through, including the v2 oplog
// mark.
func TestSaveImageLoadImageRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "raw.img")
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	if err := SaveImage(path, want, 11, 42, 777); err != nil {
		t.Fatal(err)
	}
	img, allocated, root, meta, err := LoadImage(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(img) != string(want) || allocated != 11 || root != 42 || meta != 777 {
		t.Fatalf("roundtrip = (%v, %d, %d, %d)", img, allocated, root, meta)
	}
	// Overwrite in place: the rename path must replace, not append.
	if err := SaveImage(path, want[:8], 8, 7, 0); err != nil {
		t.Fatal(err)
	}
	if img, _, root, _, err = LoadImage(path); err != nil || len(img) != 8 || root != 7 {
		t.Fatalf("second roundtrip = (%d bytes, root %d, %v)", len(img), root, err)
	}
}

// TestLoadImageV1Compat pins the compatibility contract: version-1
// images (written before the oplog existed, no meta word) load with an
// oplog mark of 0.
func TestLoadImageV1Compat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.img")
	body := []byte{9, 8, 7, 6, 5, 4, 3, 2}
	buf := make([]byte, 32+len(body))
	binary.LittleEndian.PutUint64(buf[0:8], magicV1)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(body)))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(len(body)))
	binary.LittleEndian.PutUint64(buf[24:32], 3)
	copy(buf[32:], body)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	img, allocated, root, meta, err := LoadImage(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(img) != string(body) || allocated != 8 || root != 3 || meta != 0 {
		t.Fatalf("v1 load = (%v, %d, %d, %d)", img, allocated, root, meta)
	}
}
