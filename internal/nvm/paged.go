package nvm

import "math/bits"

// Paged dirty-word tracker. The region's original tracker was a
// map[word]oldValue, which put a hash + allocation on every store and a
// map probe per word on every flush — the simulation substrate, not the
// hashing schemes, dominated wall-clock. This structure replaces it with
// a two-level bitmap plus per-page shadow-value arrays:
//
//	summary bitmap  — one bit per page: "this page has ≥1 dirty word"
//	page bitmap     — one bit per word of the page (8 × uint64 for a
//	                  4 KiB page)
//	page shadow     — the persisted (old) value of each dirty word,
//	                  indexed by its position in the page
//
// touchWord becomes two shifts, a mask test and a store; PersistRange,
// Evict and DirtyInRange over a cacheline reduce to a single masked
// bitmap word; whole-region scans (Crash, SnapshotPersisted,
// PersistAll) walk the summary bitmap and skip clean pages wholesale.
// Pages are allocated lazily on first dirtying and retained afterwards,
// so steady-state operation allocates nothing.

const (
	// pageWordsLog sets the page size: 2^9 words = 4 KiB per page.
	pageWordsLog = 9
	pageWords    = 1 << pageWordsLog
	// pageMaskWords is the page bitmap size in uint64 words.
	pageMaskWords = pageWords / 64
)

// dirtyPage tracks the dirty words of one 4 KiB page: a per-word bitmap,
// a live count (for cheap summary-bit maintenance), and the shadow array
// of persisted values.
type dirtyPage struct {
	bits   [pageMaskWords]uint64
	count  uint32
	shadow [pageWords]uint64
}

// newTracking (re)initialises the tracker for a region of the given byte
// size. Used at construction and by the operations that atomically mark
// the whole region persisted (Restore, SetImage).
func (r *Region) newTracking(size uint64) {
	words := size / WordSize
	npages := (words + pageWords - 1) / pageWords
	r.pages = make([]*dirtyPage, npages)
	r.summary = make([]uint64, (npages+63)/64)
	r.dirty = 0
}

// pageFor returns the lazily allocated page containing word index wi.
func (r *Region) pageFor(p uint64) *dirtyPage {
	pg := r.pages[p]
	if pg == nil {
		pg = new(dirtyPage)
		r.pages[p] = pg
	}
	return pg
}

// isDirtyWord reports whether word index wi is dirty and, if so, its
// shadow (persisted) value.
func (r *Region) isDirtyWord(wi uint64) (uint64, bool) {
	pg := r.pages[wi>>pageWordsLog]
	if pg == nil {
		return 0, false
	}
	idx := wi & (pageWords - 1)
	if pg.bits[idx>>6]&(1<<(idx&63)) == 0 {
		return 0, false
	}
	return pg.shadow[idx], true
}

// countDirtyWords returns the number of dirty words in the inclusive
// word-index range [firstW, lastW] using masked popcounts.
func (r *Region) countDirtyWords(firstW, lastW uint64) int {
	total := 0
	for w := firstW; w <= lastW; {
		p := w >> pageWordsLog
		pageLast := (p+1)<<pageWordsLog - 1
		end := pageLast
		if lastW < end {
			end = lastW
		}
		pg := r.pages[p]
		if pg == nil || pg.count == 0 {
			w = end + 1
			continue
		}
		lo, hi := w&(pageWords-1), end&(pageWords-1)
		for bw := lo >> 6; bw <= hi>>6; bw++ {
			mask := ^uint64(0)
			if bw == lo>>6 {
				mask &= ^uint64(0) << (lo & 63)
			}
			if bw == hi>>6 {
				mask &= ^uint64(0) >> (63 - hi&63)
			}
			total += bits.OnesCount64(pg.bits[bw] & mask)
		}
		w = end + 1
	}
	return total
}

// cleanWords clears the dirty bits in the inclusive word-index range
// [firstW, lastW], records media wear for each cleaned word, maintains
// the summary bitmap, and returns how many words were cleaned. Shared by
// PersistRange and Evict, which differ only in which counter they bump.
func (r *Region) cleanWords(firstW, lastW uint64) int {
	total := 0
	for w := firstW; w <= lastW; {
		p := w >> pageWordsLog
		pageLast := (p+1)<<pageWordsLog - 1
		end := pageLast
		if lastW < end {
			end = lastW
		}
		pg := r.pages[p]
		if pg == nil || pg.count == 0 {
			w = end + 1
			continue
		}
		lo, hi := w&(pageWords-1), end&(pageWords-1)
		for bw := lo >> 6; bw <= hi>>6; bw++ {
			mask := ^uint64(0)
			if bw == lo>>6 {
				mask &= ^uint64(0) << (lo & 63)
			}
			if bw == hi>>6 {
				mask &= ^uint64(0) >> (63 - hi&63)
			}
			hit := pg.bits[bw] & mask
			if hit == 0 {
				continue
			}
			pg.bits[bw] &^= hit
			n := bits.OnesCount64(hit)
			total += n
			pg.count -= uint32(n)
			if r.wear != nil {
				base := p<<pageWordsLog + bw<<6
				for h := hit; h != 0; h &= h - 1 {
					r.wear[base+uint64(bits.TrailingZeros64(h))]++
				}
			}
		}
		if pg.count == 0 {
			r.summary[p>>6] &^= 1 << (p & 63)
		}
		w = end + 1
	}
	r.dirty -= total
	return total
}

// forEachDirty visits every dirty word in ascending address order,
// passing its word index and shadow value. The ascending order matches
// the sorted iteration of the original map tracker, so rng-consuming
// callers (Crash, SnapshotPersisted) remain a deterministic function of
// (seed, history).
func (r *Region) forEachDirty(fn func(wi uint64, old uint64)) {
	for sw, sbits := range r.summary {
		for s := sbits; s != 0; s &= s - 1 {
			p := uint64(sw)<<6 + uint64(bits.TrailingZeros64(s))
			pg := r.pages[p]
			for bw := 0; bw < pageMaskWords; bw++ {
				for h := pg.bits[bw]; h != 0; h &= h - 1 {
					idx := uint64(bw)<<6 + uint64(bits.TrailingZeros64(h))
					fn(p<<pageWordsLog+idx, pg.shadow[idx])
				}
			}
		}
	}
}
