// Package nvm models a byte-addressable non-volatile memory region with
// the failure semantics assumed by the group-hashing paper (ICPP 2018):
//
//   - The failure-atomicity unit is an aligned 8-byte word. A single
//     aligned 8-byte store is either entirely old or entirely new after a
//     crash; it is never torn. Larger writes tear at word boundaries.
//   - Ordinary stores land in the (volatile) CPU cache and reach the
//     persistence domain at an arbitrary later time: on a crash, each
//     un-persisted dirty word independently may or may not have made it
//     to NVM. This models both write-back caching and the reordering
//     performed by the CPU and memory controller.
//   - A persist barrier (clflush of the covered lines followed by an
//     mfence, driven by the memsim layer) makes a range durable before
//     the program proceeds.
//
// The region keeps the current (volatile) image in a flat byte slice and
// tracks, for every dirty word, the value it last had in the persistence
// domain. The persisted image is therefore implicit: it equals the
// volatile image with the dirty words rolled back. Crash() materialises
// a legal post-failure image by rolling back a pseudo-random subset of
// the dirty words, seeded for reproducibility. Dirty words are tracked
// by the paged two-level bitmap of paged.go, so the tracking itself is
// O(words/64) bitmask work with no per-store allocation.
//
// Addresses are byte offsets from the start of the region. The zero
// offset is valid; the region performs its own bounds checking and
// panics on out-of-range access, mirroring a wild pointer in C.
package nvm

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// WordSize is the failure-atomicity unit of the modelled NVM, in bytes.
// The paper (and the persistent-memory literature it cites, e.g. PMFS,
// FAST&FAIR, WORT) assumes aligned 8-byte stores are failure atomic.
const WordSize = 8

// Stats aggregates write-traffic counters for a region. All counters are
// cumulative since the region was created (or since ResetStats).
type Stats struct {
	// Stores is the number of store operations of any size issued to
	// the region, including atomic stores.
	Stores uint64
	// BytesStored is the total payload of those stores.
	BytesStored uint64
	// WordsDirtied counts transitions of a clean word to dirty. A word
	// overwritten repeatedly between persists is counted once; this is
	// the number of words that must eventually be written to the NVM
	// media and is the paper's notion of "NVM writes".
	WordsDirtied uint64
	// WordsPersisted counts dirty words made durable by an explicit
	// persist (flush) as opposed to a cache eviction.
	WordsPersisted uint64
	// WordsEvicted counts dirty words made durable because the cache
	// model evicted their line.
	WordsEvicted uint64
	// AtomicStores counts 8-byte failure-atomic stores. Every atomic
	// store is also counted in Stores (and BytesStored): AtomicStores
	// is a strict subset of Stores, never a disjoint class, so
	// Stores - AtomicStores is the number of ordinary stores.
	AtomicStores uint64
}

// Region is an emulated NVM device. It is not safe for concurrent use;
// the memsim layer (and the concurrent table wrapper above it) serialise
// access, matching the single-memory-controller view of the hardware.
type Region struct {
	cur []byte
	// Paged dirty-word tracker (see paged.go): pages holds the lazily
	// allocated per-page bitmaps and shadow values, summary has one bit
	// per page with any dirty word, dirty is the live dirty-word count.
	pages   []*dirtyPage
	summary []uint64
	dirty   int
	stats   Stats
	rng     *rand.Rand
	wear    []uint32 // per-word media-write counters (nil = tracking off)
}

// NewRegion creates a region of the given size in bytes, rounded up to a
// whole number of words, with all bytes zero and everything persisted.
// The seed drives crash injection only.
func NewRegion(size uint64, seed int64) *Region {
	size = (size + WordSize - 1) &^ uint64(WordSize-1)
	r := &Region{
		cur: make([]byte, size),
		rng: rand.New(rand.NewSource(seed)),
	}
	r.newTracking(size)
	return r
}

// Size returns the region size in bytes.
func (r *Region) Size() uint64 { return uint64(len(r.cur)) }

// Stats returns a copy of the current counters.
func (r *Region) Stats() Stats { return r.stats }

// ResetStats zeroes all counters.
func (r *Region) ResetStats() { r.stats = Stats{} }

// DirtyWords returns the number of words whose latest value has not yet
// reached the persistence domain.
func (r *Region) DirtyWords() int { return r.dirty }

func (r *Region) check(addr, n uint64) {
	if addr+n > uint64(len(r.cur)) || addr+n < addr {
		panic(fmt.Sprintf("nvm: access [%d,%d) out of range of %d-byte region", addr, addr+n, len(r.cur)))
	}
}

// wordAt returns the current value of the aligned word containing addr.
func (r *Region) wordAt(w uint64) uint64 {
	return binary.LittleEndian.Uint64(r.cur[w : w+WordSize])
}

// touchWord records the persisted value of word w before it is first
// modified, marking it dirty: a bitmap test plus a shadow-array store,
// with no hashing and no allocation past the page's first dirtying.
func (r *Region) touchWord(w uint64) {
	wi := w / WordSize
	pg := r.pageFor(wi >> pageWordsLog)
	idx := wi & (pageWords - 1)
	mask := uint64(1) << (idx & 63)
	if pg.bits[idx>>6]&mask != 0 {
		return
	}
	pg.bits[idx>>6] |= mask
	pg.count++
	pg.shadow[idx] = r.wordAt(w)
	p := wi >> pageWordsLog
	r.summary[p>>6] |= 1 << (p & 63)
	r.dirty++
	r.stats.WordsDirtied++
}

// Load8 reads the aligned 8-byte word at addr from the volatile image.
func (r *Region) Load8(addr uint64) uint64 {
	r.check(addr, WordSize)
	if addr%WordSize != 0 {
		panic(fmt.Sprintf("nvm: misaligned 8-byte load at %d", addr))
	}
	return r.wordAt(addr)
}

// Store8 writes an aligned 8-byte word. The store is failure atomic by
// construction (it covers exactly one word) but, like any store, is not
// durable until persisted or evicted.
func (r *Region) Store8(addr, val uint64) {
	r.check(addr, WordSize)
	if addr%WordSize != 0 {
		panic(fmt.Sprintf("nvm: misaligned 8-byte store at %d", addr))
	}
	r.touchWord(addr)
	binary.LittleEndian.PutUint64(r.cur[addr:addr+WordSize], val)
	r.stats.Stores++
	r.stats.BytesStored += WordSize
}

// AtomicStore8 is Store8 with the additional documented guarantee that
// the word is the commit point of a failure-atomic update protocol. The
// region models all aligned word stores as atomic, so the distinction is
// purely statistical, but keeping it separate lets the harness count the
// paper's "8-byte failure-atomic writes". Per the Stats contract the
// store is counted in BOTH Stores and AtomicStores: AtomicStores is a
// subset classification, not a separate traffic class.
func (r *Region) AtomicStore8(addr, val uint64) {
	r.Store8(addr, val)
	r.stats.AtomicStores++
}

// Load copies len(buf) bytes at addr from the volatile image into buf.
func (r *Region) Load(addr uint64, buf []byte) {
	r.check(addr, uint64(len(buf)))
	copy(buf, r.cur[addr:addr+uint64(len(buf))])
}

// Store writes buf at addr. The write tears at word boundaries on a
// crash: each covered word is tracked independently.
func (r *Region) Store(addr uint64, buf []byte) {
	n := uint64(len(buf))
	r.check(addr, n)
	if n == 0 {
		return
	}
	first := addr &^ uint64(WordSize-1)
	last := (addr + n - 1) &^ uint64(WordSize-1)
	for w := first; w <= last; w += WordSize {
		r.touchWord(w)
	}
	copy(r.cur[addr:addr+n], buf)
	r.stats.Stores++
	r.stats.BytesStored += n
}

// PersistRange makes [addr, addr+n) durable, as if every covered
// cacheline had been flushed and a fence executed. It returns the number
// of dirty words persisted, which the latency model charges for.
func (r *Region) PersistRange(addr, n uint64) int {
	if n == 0 {
		return 0
	}
	r.check(addr, n)
	if r.dirty == 0 {
		return 0
	}
	persisted := r.cleanWords(addr/WordSize, (addr+n-1)/WordSize)
	r.stats.WordsPersisted += uint64(persisted)
	return persisted
}

// Evict makes [addr, addr+n) durable because the cache model wrote the
// line back. Semantically identical to PersistRange but counted apart:
// evictions are silent background traffic, not consistency-protocol cost.
func (r *Region) Evict(addr, n uint64) int {
	if n == 0 {
		return 0
	}
	r.check(addr, n)
	if r.dirty == 0 {
		return 0
	}
	evicted := r.cleanWords(addr/WordSize, (addr+n-1)/WordSize)
	r.stats.WordsEvicted += uint64(evicted)
	return evicted
}

// DirtyInRange reports the number of dirty words in [addr, addr+n).
func (r *Region) DirtyInRange(addr, n uint64) int {
	if n == 0 {
		return 0
	}
	r.check(addr, n)
	if r.dirty == 0 {
		return 0
	}
	return r.countDirtyWords(addr/WordSize, (addr+n-1)/WordSize)
}

// PersistedLoad8 reads the aligned word at addr as it currently stands
// in the persistence domain — i.e. the value that would survive an
// immediate crash in which no further dirty words were written back.
// Intended for tests and verification tooling.
func (r *Region) PersistedLoad8(addr uint64) uint64 {
	r.check(addr, WordSize)
	w := addr &^ uint64(WordSize-1)
	if old, dirty := r.isDirtyWord(w / WordSize); dirty {
		return old
	}
	return r.wordAt(w)
}

// CrashOutcome describes what Crash did, for logging and tests.
type CrashOutcome struct {
	// DirtyWords is how many words were un-persisted at the crash.
	DirtyWords int
	// Survived is how many of those happened to reach NVM anyway
	// (e.g. were in flight or evicted just before power was cut).
	Survived int
	// RolledBack is how many reverted to their persisted value.
	RolledBack int
}

// Crash simulates a power failure: every dirty word independently either
// survives (its new value is deemed to have reached NVM before the
// failure) or rolls back to its persisted value. survivalProb in [0,1]
// sets the per-word survival probability; 0.5 exercises the most
// adversarial interleavings. After Crash the region is fully persisted
// and represents the post-reboot NVM contents; volatile CPU state is
// gone by definition.
//
// The dirty set is visited in sorted address order so outcomes are a
// deterministic function of (seed, history).
func (r *Region) Crash(survivalProb float64) CrashOutcome {
	out := CrashOutcome{DirtyWords: r.dirty}
	r.forEachDirty(func(wi, old uint64) {
		if r.rng.Float64() < survivalProb {
			out.Survived++
			r.wearWord(wi)
		} else {
			w := wi * WordSize
			binary.LittleEndian.PutUint64(r.cur[w:w+WordSize], old)
			out.RolledBack++
		}
	})
	r.newTracking(uint64(len(r.cur)))
	return out
}

// SnapshotPersisted materialises a legal post-failure image of the
// region WITHOUT disturbing its live state: a copy of the volatile
// image in which each currently dirty word has independently either
// kept its new value (probability survivalProb) or been rolled back to
// its persisted value. Together with Restore, this lets a harness
// simulate a crash at an exact mid-operation point: snapshot at the
// trigger, let the operation finish, then restore the snapshot.
func (r *Region) SnapshotPersisted(survivalProb float64) []byte {
	img := make([]byte, len(r.cur))
	copy(img, r.cur)
	r.forEachDirty(func(wi, old uint64) {
		if r.rng.Float64() >= survivalProb {
			w := wi * WordSize
			binary.LittleEndian.PutUint64(img[w:w+WordSize], old)
		}
	})
	return img
}

// Restore replaces the region's contents with a previously captured
// post-failure image and marks everything persisted, completing a
// simulated crash. The image must be exactly the region's size.
func (r *Region) Restore(img []byte) {
	if len(img) != len(r.cur) {
		panic(fmt.Sprintf("nvm: restore image is %d bytes, region is %d", len(img), len(r.cur)))
	}
	copy(r.cur, img)
	r.newTracking(uint64(len(r.cur)))
}

// Image returns a copy of the region's volatile contents. Callers that
// want a durable image must persist first (PersistAll / the memsim
// layer's CleanShutdown); Image panics if dirty words remain, because
// writing a half-persisted image to stable storage would fabricate
// durability the simulated machine never provided.
func (r *Region) Image() []byte {
	if r.dirty != 0 {
		panic(fmt.Sprintf("nvm: Image with %d dirty words; persist first", r.dirty))
	}
	img := make([]byte, len(r.cur))
	copy(img, r.cur)
	return img
}

// SetImage replaces the region contents with img (same size required)
// and marks everything persisted — loading a stored NVM image at boot.
func (r *Region) SetImage(img []byte) {
	if len(img) != len(r.cur) {
		panic(fmt.Sprintf("nvm: image is %d bytes, region is %d", len(img), len(r.cur)))
	}
	copy(r.cur, img)
	r.newTracking(uint64(len(r.cur)))
}

// PersistAll flushes every dirty word, modelling a clean shutdown.
// It returns the number of words persisted.
func (r *Region) PersistAll() int {
	n := r.dirty
	if r.wear != nil {
		r.forEachDirty(func(wi, _ uint64) { r.wearWord(wi) })
	}
	r.stats.WordsPersisted += uint64(n)
	r.newTracking(uint64(len(r.cur)))
	return n
}
