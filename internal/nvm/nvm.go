// Package nvm models a byte-addressable non-volatile memory region with
// the failure semantics assumed by the group-hashing paper (ICPP 2018):
//
//   - The failure-atomicity unit is an aligned 8-byte word. A single
//     aligned 8-byte store is either entirely old or entirely new after a
//     crash; it is never torn. Larger writes tear at word boundaries.
//   - Ordinary stores land in the (volatile) CPU cache and reach the
//     persistence domain at an arbitrary later time: on a crash, each
//     un-persisted dirty word independently may or may not have made it
//     to NVM. This models both write-back caching and the reordering
//     performed by the CPU and memory controller.
//   - A persist barrier (clflush of the covered lines followed by an
//     mfence, driven by the memsim layer) makes a range durable before
//     the program proceeds.
//
// The region keeps the current (volatile) image in a flat byte slice and
// tracks, for every dirty word, the value it last had in the persistence
// domain. The persisted image is therefore implicit: it equals the
// volatile image with the dirty words rolled back. Crash() materialises
// a legal post-failure image by rolling back a pseudo-random subset of
// the dirty words, seeded for reproducibility.
//
// Addresses are byte offsets from the start of the region. The zero
// offset is valid; the region performs its own bounds checking and
// panics on out-of-range access, mirroring a wild pointer in C.
package nvm

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
)

// WordSize is the failure-atomicity unit of the modelled NVM, in bytes.
// The paper (and the persistent-memory literature it cites, e.g. PMFS,
// FAST&FAIR, WORT) assumes aligned 8-byte stores are failure atomic.
const WordSize = 8

// Stats aggregates write-traffic counters for a region. All counters are
// cumulative since the region was created (or since ResetStats).
type Stats struct {
	// Stores is the number of store operations of any size issued to
	// the region, including atomic stores.
	Stores uint64
	// BytesStored is the total payload of those stores.
	BytesStored uint64
	// WordsDirtied counts transitions of a clean word to dirty. A word
	// overwritten repeatedly between persists is counted once; this is
	// the number of words that must eventually be written to the NVM
	// media and is the paper's notion of "NVM writes".
	WordsDirtied uint64
	// WordsPersisted counts dirty words made durable by an explicit
	// persist (flush) as opposed to a cache eviction.
	WordsPersisted uint64
	// WordsEvicted counts dirty words made durable because the cache
	// model evicted their line.
	WordsEvicted uint64
	// AtomicStores counts 8-byte failure-atomic stores.
	AtomicStores uint64
}

// Region is an emulated NVM device. It is not safe for concurrent use;
// the memsim layer (and the concurrent table wrapper above it) serialise
// access, matching the single-memory-controller view of the hardware.
type Region struct {
	cur   []byte
	old   map[uint64]uint64 // dirty word offset -> persisted (old) value
	stats Stats
	rng   *rand.Rand
	wear  []uint32 // per-word media-write counters (nil = tracking off)
}

// NewRegion creates a region of the given size in bytes, rounded up to a
// whole number of words, with all bytes zero and everything persisted.
// The seed drives crash injection only.
func NewRegion(size uint64, seed int64) *Region {
	size = (size + WordSize - 1) &^ uint64(WordSize-1)
	return &Region{
		cur: make([]byte, size),
		old: make(map[uint64]uint64),
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Size returns the region size in bytes.
func (r *Region) Size() uint64 { return uint64(len(r.cur)) }

// Stats returns a copy of the current counters.
func (r *Region) Stats() Stats { return r.stats }

// ResetStats zeroes all counters.
func (r *Region) ResetStats() { r.stats = Stats{} }

// DirtyWords returns the number of words whose latest value has not yet
// reached the persistence domain.
func (r *Region) DirtyWords() int { return len(r.old) }

func (r *Region) check(addr, n uint64) {
	if addr+n > uint64(len(r.cur)) || addr+n < addr {
		panic(fmt.Sprintf("nvm: access [%d,%d) out of range of %d-byte region", addr, addr+n, len(r.cur)))
	}
}

// wordAt returns the current value of the aligned word containing addr.
func (r *Region) wordAt(w uint64) uint64 {
	return binary.LittleEndian.Uint64(r.cur[w : w+WordSize])
}

// touchWord records the persisted value of word w before it is first
// modified, marking it dirty.
func (r *Region) touchWord(w uint64) {
	if _, dirty := r.old[w]; !dirty {
		r.old[w] = r.wordAt(w)
		r.stats.WordsDirtied++
	}
}

// Load8 reads the aligned 8-byte word at addr from the volatile image.
func (r *Region) Load8(addr uint64) uint64 {
	r.check(addr, WordSize)
	if addr%WordSize != 0 {
		panic(fmt.Sprintf("nvm: misaligned 8-byte load at %d", addr))
	}
	return r.wordAt(addr)
}

// Store8 writes an aligned 8-byte word. The store is failure atomic by
// construction (it covers exactly one word) but, like any store, is not
// durable until persisted or evicted.
func (r *Region) Store8(addr, val uint64) {
	r.check(addr, WordSize)
	if addr%WordSize != 0 {
		panic(fmt.Sprintf("nvm: misaligned 8-byte store at %d", addr))
	}
	r.touchWord(addr)
	binary.LittleEndian.PutUint64(r.cur[addr:addr+WordSize], val)
	r.stats.Stores++
	r.stats.BytesStored += WordSize
}

// AtomicStore8 is Store8 with the additional documented guarantee that
// the word is the commit point of a failure-atomic update protocol. The
// region models all aligned word stores as atomic, so the distinction is
// purely statistical, but keeping it separate lets the harness count the
// paper's "8-byte failure-atomic writes".
func (r *Region) AtomicStore8(addr, val uint64) {
	r.Store8(addr, val)
	r.stats.Stores-- // re-classified below
	r.stats.AtomicStores++
	r.stats.Stores++
}

// Load copies len(buf) bytes at addr from the volatile image into buf.
func (r *Region) Load(addr uint64, buf []byte) {
	r.check(addr, uint64(len(buf)))
	copy(buf, r.cur[addr:addr+uint64(len(buf))])
}

// Store writes buf at addr. The write tears at word boundaries on a
// crash: each covered word is tracked independently.
func (r *Region) Store(addr uint64, buf []byte) {
	n := uint64(len(buf))
	r.check(addr, n)
	if n == 0 {
		return
	}
	first := addr &^ uint64(WordSize-1)
	last := (addr + n - 1) &^ uint64(WordSize-1)
	for w := first; w <= last; w += WordSize {
		r.touchWord(w)
	}
	copy(r.cur[addr:addr+n], buf)
	r.stats.Stores++
	r.stats.BytesStored += n
}

// PersistRange makes [addr, addr+n) durable, as if every covered
// cacheline had been flushed and a fence executed. It returns the number
// of dirty words persisted, which the latency model charges for.
func (r *Region) PersistRange(addr, n uint64) int {
	if n == 0 {
		return 0
	}
	r.check(addr, n)
	first := addr &^ uint64(WordSize-1)
	last := (addr + n - 1) &^ uint64(WordSize-1)
	persisted := 0
	for w := first; w <= last; w += WordSize {
		if _, dirty := r.old[w]; dirty {
			delete(r.old, w)
			r.recordWear(w)
			persisted++
		}
	}
	r.stats.WordsPersisted += uint64(persisted)
	return persisted
}

// Evict makes [addr, addr+n) durable because the cache model wrote the
// line back. Semantically identical to PersistRange but counted apart:
// evictions are silent background traffic, not consistency-protocol cost.
func (r *Region) Evict(addr, n uint64) int {
	if n == 0 {
		return 0
	}
	r.check(addr, n)
	first := addr &^ uint64(WordSize-1)
	last := (addr + n - 1) &^ uint64(WordSize-1)
	evicted := 0
	for w := first; w <= last; w += WordSize {
		if _, dirty := r.old[w]; dirty {
			delete(r.old, w)
			r.recordWear(w)
			evicted++
		}
	}
	r.stats.WordsEvicted += uint64(evicted)
	return evicted
}

// DirtyInRange reports the number of dirty words in [addr, addr+n).
func (r *Region) DirtyInRange(addr, n uint64) int {
	if n == 0 {
		return 0
	}
	r.check(addr, n)
	first := addr &^ uint64(WordSize-1)
	last := (addr + n - 1) &^ uint64(WordSize-1)
	dirty := 0
	for w := first; w <= last; w += WordSize {
		if _, ok := r.old[w]; ok {
			dirty++
		}
	}
	return dirty
}

// PersistedLoad8 reads the aligned word at addr as it currently stands
// in the persistence domain — i.e. the value that would survive an
// immediate crash in which no further dirty words were written back.
// Intended for tests and verification tooling.
func (r *Region) PersistedLoad8(addr uint64) uint64 {
	r.check(addr, WordSize)
	w := addr &^ uint64(WordSize-1)
	if old, dirty := r.old[w]; dirty {
		return old
	}
	return r.wordAt(w)
}

// CrashOutcome describes what Crash did, for logging and tests.
type CrashOutcome struct {
	// DirtyWords is how many words were un-persisted at the crash.
	DirtyWords int
	// Survived is how many of those happened to reach NVM anyway
	// (e.g. were in flight or evicted just before power was cut).
	Survived int
	// RolledBack is how many reverted to their persisted value.
	RolledBack int
}

// Crash simulates a power failure: every dirty word independently either
// survives (its new value is deemed to have reached NVM before the
// failure) or rolls back to its persisted value. survivalProb in [0,1]
// sets the per-word survival probability; 0.5 exercises the most
// adversarial interleavings. After Crash the region is fully persisted
// and represents the post-reboot NVM contents; volatile CPU state is
// gone by definition.
//
// The dirty set is visited in sorted address order so outcomes are a
// deterministic function of (seed, history).
func (r *Region) Crash(survivalProb float64) CrashOutcome {
	words := make([]uint64, 0, len(r.old))
	for w := range r.old {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
	out := CrashOutcome{DirtyWords: len(words)}
	for _, w := range words {
		if r.rng.Float64() < survivalProb {
			out.Survived++
			r.recordWear(w)
		} else {
			binary.LittleEndian.PutUint64(r.cur[w:w+WordSize], r.old[w])
			out.RolledBack++
		}
		delete(r.old, w)
	}
	return out
}

// SnapshotPersisted materialises a legal post-failure image of the
// region WITHOUT disturbing its live state: a copy of the volatile
// image in which each currently dirty word has independently either
// kept its new value (probability survivalProb) or been rolled back to
// its persisted value. Together with Restore, this lets a harness
// simulate a crash at an exact mid-operation point: snapshot at the
// trigger, let the operation finish, then restore the snapshot.
func (r *Region) SnapshotPersisted(survivalProb float64) []byte {
	img := make([]byte, len(r.cur))
	copy(img, r.cur)
	words := make([]uint64, 0, len(r.old))
	for w := range r.old {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
	for _, w := range words {
		if r.rng.Float64() >= survivalProb {
			binary.LittleEndian.PutUint64(img[w:w+WordSize], r.old[w])
		}
	}
	return img
}

// Restore replaces the region's contents with a previously captured
// post-failure image and marks everything persisted, completing a
// simulated crash. The image must be exactly the region's size.
func (r *Region) Restore(img []byte) {
	if len(img) != len(r.cur) {
		panic(fmt.Sprintf("nvm: restore image is %d bytes, region is %d", len(img), len(r.cur)))
	}
	copy(r.cur, img)
	r.old = make(map[uint64]uint64)
}

// Image returns a copy of the region's volatile contents. Callers that
// want a durable image must persist first (PersistAll / the memsim
// layer's CleanShutdown); Image panics if dirty words remain, because
// writing a half-persisted image to stable storage would fabricate
// durability the simulated machine never provided.
func (r *Region) Image() []byte {
	if len(r.old) != 0 {
		panic(fmt.Sprintf("nvm: Image with %d dirty words; persist first", len(r.old)))
	}
	img := make([]byte, len(r.cur))
	copy(img, r.cur)
	return img
}

// SetImage replaces the region contents with img (same size required)
// and marks everything persisted — loading a stored NVM image at boot.
func (r *Region) SetImage(img []byte) {
	if len(img) != len(r.cur) {
		panic(fmt.Sprintf("nvm: image is %d bytes, region is %d", len(img), len(r.cur)))
	}
	copy(r.cur, img)
	r.old = make(map[uint64]uint64)
}

// PersistAll flushes every dirty word, modelling a clean shutdown.
// It returns the number of words persisted.
func (r *Region) PersistAll() int {
	n := len(r.old)
	for w := range r.old {
		r.recordWear(w)
	}
	r.stats.WordsPersisted += uint64(n)
	r.old = make(map[uint64]uint64)
	return n
}
