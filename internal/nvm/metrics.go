package nvm

import "grouphash/internal/stats"

// RegisterMetrics exports the region's write-traffic counters into reg
// under the given metric-name prefix (e.g. "sim" →
// sim_nvm_words_dirtied_total). The counters are the paper's
// write-efficiency vocabulary — WordsDirtied is its notion of "NVM
// writes" — so a scrape puts the substrate cost of a workload next to
// the serving-layer latency it bought.
//
// Region is not safe for concurrent use; the registered load functions
// read the live counters, so scrapes must be serialised with region
// accesses by the caller (e.g. only scrape a quiesced or externally
// locked simulation).
func (r *Region) RegisterMetrics(reg *stats.Registry, prefix string) {
	p := prefix + "_nvm_"
	reg.RegisterCounter(p+"stores_total", "", "Store operations of any size issued to the region.",
		func() uint64 { return r.stats.Stores })
	reg.RegisterCounter(p+"bytes_stored_total", "", "Total payload bytes of all stores.",
		func() uint64 { return r.stats.BytesStored })
	reg.RegisterCounter(p+"words_dirtied_total", "", "Clean-to-dirty word transitions (the paper's NVM writes).",
		func() uint64 { return r.stats.WordsDirtied })
	reg.RegisterCounter(p+"words_persisted_total", "", "Dirty words made durable by explicit persists.",
		func() uint64 { return r.stats.WordsPersisted })
	reg.RegisterCounter(p+"words_evicted_total", "", "Dirty words made durable by cache evictions.",
		func() uint64 { return r.stats.WordsEvicted })
	reg.RegisterCounter(p+"atomic_stores_total", "", "8-byte failure-atomic stores (subset of stores_total).",
		func() uint64 { return r.stats.AtomicStores })
}
