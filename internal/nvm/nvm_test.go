package nvm

import (
	"testing"
	"testing/quick"
)

func TestRegionSizeRounding(t *testing.T) {
	r := NewRegion(13, 1)
	if r.Size() != 16 {
		t.Fatalf("size = %d, want 16 (rounded to word)", r.Size())
	}
	if NewRegion(0, 1).Size() != 0 {
		t.Fatal("zero-size region should stay zero")
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	r := NewRegion(1024, 1)
	r.Store8(64, 0xdeadbeefcafef00d)
	if got := r.Load8(64); got != 0xdeadbeefcafef00d {
		t.Fatalf("Load8 = %#x", got)
	}
	buf := []byte{1, 2, 3, 4, 5}
	r.Store(100, buf)
	out := make([]byte, 5)
	r.Load(100, out)
	for i := range buf {
		if out[i] != buf[i] {
			t.Fatalf("byte %d = %d, want %d", i, out[i], buf[i])
		}
	}
}

func TestMisalignedAccessPanics(t *testing.T) {
	r := NewRegion(128, 1)
	for _, f := range []func(){
		func() { r.Load8(4) },
		func() { r.Store8(12, 1) },
		func() { r.Load8(1000) },
		func() { r.Store(120, make([]byte, 16)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDirtyTracking(t *testing.T) {
	r := NewRegion(1024, 1)
	if r.DirtyWords() != 0 {
		t.Fatal("fresh region should be clean")
	}
	r.Store8(0, 1)
	r.Store8(0, 2) // same word: still one dirty word
	r.Store8(8, 3)
	if got := r.DirtyWords(); got != 2 {
		t.Fatalf("DirtyWords = %d, want 2", got)
	}
	if got := r.Stats().WordsDirtied; got != 2 {
		t.Fatalf("WordsDirtied = %d, want 2", got)
	}
	if n := r.PersistRange(0, 8); n != 1 {
		t.Fatalf("PersistRange persisted %d words, want 1", n)
	}
	if got := r.DirtyWords(); got != 1 {
		t.Fatalf("DirtyWords after persist = %d, want 1", got)
	}
}

func TestPersistedLoadSeesOldValueUntilPersist(t *testing.T) {
	r := NewRegion(64, 1)
	r.Store8(0, 111)
	r.PersistRange(0, 8)
	r.Store8(0, 222)
	if got := r.Load8(0); got != 222 {
		t.Fatalf("volatile view = %d, want 222", got)
	}
	if got := r.PersistedLoad8(0); got != 111 {
		t.Fatalf("persisted view = %d, want 111", got)
	}
	r.PersistRange(0, 8)
	if got := r.PersistedLoad8(0); got != 222 {
		t.Fatalf("persisted view after persist = %d, want 222", got)
	}
}

func TestUnalignedStoreTearsAtWordBoundaries(t *testing.T) {
	r := NewRegion(64, 1)
	// A 16-byte store spanning words 0 and 8 dirties both words
	// independently; crash with survival 0 rolls both back.
	r.Store(0, make([]byte, 16))
	if r.DirtyWords() != 2 {
		t.Fatalf("DirtyWords = %d, want 2", r.DirtyWords())
	}
	// A 4-byte store inside one word dirties exactly that word.
	r2 := NewRegion(64, 1)
	r2.Store(10, []byte{9, 9, 9, 9})
	if r2.DirtyWords() != 1 {
		t.Fatalf("DirtyWords = %d, want 1", r2.DirtyWords())
	}
}

func TestCrashAllSurvive(t *testing.T) {
	r := NewRegion(128, 7)
	r.Store8(0, 42)
	r.Store8(8, 43)
	out := r.Crash(1.0)
	if out.Survived != 2 || out.RolledBack != 0 {
		t.Fatalf("outcome = %+v, want all survived", out)
	}
	if r.Load8(0) != 42 || r.Load8(8) != 43 {
		t.Fatal("surviving values lost")
	}
	if r.DirtyWords() != 0 {
		t.Fatal("region must be fully persisted after crash")
	}
}

func TestCrashNoneSurvive(t *testing.T) {
	r := NewRegion(128, 7)
	r.Store8(0, 41)
	r.PersistRange(0, 8)
	r.Store8(0, 42)
	r.Store8(8, 43)
	out := r.Crash(0.0)
	if out.RolledBack != 2 {
		t.Fatalf("outcome = %+v, want 2 rolled back", out)
	}
	if r.Load8(0) != 41 {
		t.Fatalf("word 0 = %d, want persisted 41", r.Load8(0))
	}
	if r.Load8(8) != 0 {
		t.Fatalf("word 8 = %d, want original 0", r.Load8(8))
	}
}

func TestCrashDeterministicForSeed(t *testing.T) {
	run := func() []uint64 {
		r := NewRegion(1024, 99)
		for i := uint64(0); i < 64; i += 8 {
			r.Store8(i, i+1)
		}
		r.Crash(0.5)
		var vals []uint64
		for i := uint64(0); i < 64; i += 8 {
			vals = append(vals, r.Load8(i))
		}
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("crash outcome differs at word %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestEvictPersistsSilently(t *testing.T) {
	r := NewRegion(128, 1)
	r.Store8(0, 5)
	if n := r.Evict(0, 64); n != 1 {
		t.Fatalf("Evict persisted %d words, want 1", n)
	}
	if got := r.Stats().WordsEvicted; got != 1 {
		t.Fatalf("WordsEvicted = %d, want 1", got)
	}
	if got := r.Stats().WordsPersisted; got != 0 {
		t.Fatalf("WordsPersisted = %d, want 0 (eviction is not a flush)", got)
	}
	if got := r.PersistedLoad8(0); got != 5 {
		t.Fatalf("persisted view = %d, want 5", got)
	}
}

func TestPersistAll(t *testing.T) {
	r := NewRegion(256, 1)
	for i := uint64(0); i < 10; i++ {
		r.Store8(i*8, i)
	}
	if n := r.PersistAll(); n != 10 {
		t.Fatalf("PersistAll = %d, want 10", n)
	}
	if r.DirtyWords() != 0 {
		t.Fatal("dirty words remain after PersistAll")
	}
}

func TestAtomicStoreCounted(t *testing.T) {
	r := NewRegion(64, 1)
	r.AtomicStore8(0, 1)
	r.Store8(8, 2)
	s := r.Stats()
	if s.AtomicStores != 1 {
		t.Fatalf("AtomicStores = %d, want 1", s.AtomicStores)
	}
	if s.Stores != 2 {
		t.Fatalf("Stores = %d, want 2", s.Stores)
	}
}

// Property: after any sequence of stores and persists, the persisted
// view of every word is either its last persisted value or equal to the
// volatile view; and Crash(p) always yields a state where each word is
// one of those two values.
func TestQuickCrashStatesAreLegal(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		const words = 32
		r := NewRegion(words*8, seed)
		// Shadow model: lastPersisted and volatile per word.
		persisted := make([]uint64, words)
		volatile := make([]uint64, words)
		val := uint64(1)
		for _, op := range ops {
			w := uint64(op) % words
			if op%3 == 0 {
				r.PersistRange(w*8, 8)
				persisted[w] = volatile[w]
			} else {
				r.Store8(w*8, val)
				volatile[w] = val
				val++
			}
		}
		r.Crash(0.5)
		for w := uint64(0); w < words; w++ {
			got := r.Load8(w * 8)
			if got != persisted[w] && got != volatile[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Store of arbitrary byte slices round-trips through Load.
func TestQuickStoreLoadRoundTrip(t *testing.T) {
	f := func(data []byte, off uint16) bool {
		if len(data) > 512 {
			data = data[:512]
		}
		r := NewRegion(2048, 1)
		addr := uint64(off) % 1024
		r.Store(addr, data)
		out := make([]byte, len(data))
		r.Load(addr, out)
		for i := range data {
			if out[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotAndRestore(t *testing.T) {
	r := NewRegion(256, 9)
	r.Store8(0, 1)
	r.PersistRange(0, 8)
	r.Store8(0, 2) // dirty: persisted value is 1
	r.Store8(8, 3) // dirty: persisted value is 0

	img := r.SnapshotPersisted(0) // full rollback in the snapshot
	// Live state untouched by taking the snapshot.
	if r.Load8(0) != 2 || r.Load8(8) != 3 || r.DirtyWords() != 2 {
		t.Fatal("snapshot disturbed live state")
	}
	r.Restore(img)
	if r.Load8(0) != 1 || r.Load8(8) != 0 {
		t.Fatalf("restored state = %d/%d, want 1/0", r.Load8(0), r.Load8(8))
	}
	if r.DirtyWords() != 0 {
		t.Fatal("restore must mark everything persisted")
	}
	// Size mismatch rejected.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong-size image")
		}
	}()
	r.Restore(make([]byte, 8))
}

func TestImageRoundTripAndDirtGuard(t *testing.T) {
	r := NewRegion(128, 1)
	r.Store8(0, 42)
	r.PersistAll()
	img := r.Image()
	r2 := NewRegion(128, 2)
	r2.SetImage(img)
	if r2.Load8(0) != 42 {
		t.Fatal("image round trip lost data")
	}
	// Image of a dirty region must panic (it would fabricate durability).
	r.Store8(8, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dirty Image")
		}
	}()
	r.Image()
}

func TestSetImageSizeMismatchPanics(t *testing.T) {
	r := NewRegion(128, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.SetImage(make([]byte, 64))
}

func TestDirtyInRangeAndResetStats(t *testing.T) {
	r := NewRegion(256, 1)
	r.Store8(0, 1)
	r.Store8(64, 2)
	if got := r.DirtyInRange(0, 256); got != 2 {
		t.Fatalf("DirtyInRange = %d", got)
	}
	if got := r.DirtyInRange(0, 8); got != 1 {
		t.Fatalf("DirtyInRange(0,8) = %d", got)
	}
	if got := r.DirtyInRange(8, 0); got != 0 {
		t.Fatalf("empty range = %d", got)
	}
	if r.Stats().Stores != 2 {
		t.Fatal("precondition")
	}
	r.ResetStats()
	if r.Stats().Stores != 0 {
		t.Fatal("ResetStats did not clear")
	}
}
