package nvm

import (
	"bytes"
	"testing"
)

// pageBytes is the span of one dirty-tracking page in bytes (512 words).
const pageBytes = pageWords * WordSize

// TestStoreMidWordBuffers pins Store's word-granular tearing bookkeeping
// for buffers that start and/or end in the middle of a word: every
// covered word — including the partially covered first and last — must
// be tracked, and the volatile image must hold exactly the new bytes.
func TestStoreMidWordBuffers(t *testing.T) {
	cases := []struct {
		name       string
		addr       uint64
		n          int
		wantDirty  int // aligned words covered
		wantStored uint64
	}{
		{"start mid-word", 3, 10, 2, 10},
		{"end mid-word", 8, 13, 2, 13},
		{"both mid-word, one word", 17, 5, 1, 5},
		{"both mid-word, three words", 21, 12, 3, 12},
		{"single byte", 42, 1, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegion(4096, 1)
			buf := make([]byte, tc.n)
			for i := range buf {
				buf[i] = byte(0xA0 + i)
			}
			r.Store(tc.addr, buf)
			if got := r.DirtyWords(); got != tc.wantDirty {
				t.Fatalf("DirtyWords = %d, want %d", got, tc.wantDirty)
			}
			if got := r.Stats().BytesStored; got != tc.wantStored {
				t.Fatalf("BytesStored = %d, want %d", got, tc.wantStored)
			}
			out := make([]byte, tc.n)
			r.Load(tc.addr, out)
			if !bytes.Equal(out, buf) {
				t.Fatalf("Load = %x, want %x", out, buf)
			}
			// Untouched neighbours stay zero and clean.
			if r.Load8(0) != 0 && tc.addr >= 8 {
				t.Fatal("store leaked into word 0")
			}
		})
	}
}

// TestStoreSpansPageBoundary writes buffers straddling the 4 KiB pages
// of the dirty tracker, so one Store dirties words in two (or three)
// distinct pages; the per-page bitmaps, counts and the summary bitmap
// must all agree.
func TestStoreSpansPageBoundary(t *testing.T) {
	r := NewRegion(4*pageBytes, 1)
	// 16 bytes across the page 0 / page 1 boundary, starting mid-word.
	start := uint64(pageBytes - 5)
	buf := make([]byte, 16)
	for i := range buf {
		buf[i] = byte(i + 1)
	}
	r.Store(start, buf)
	// Covered words: one ending page 0, two starting page 1.
	if got := r.DirtyWords(); got != 3 {
		t.Fatalf("DirtyWords = %d, want 3", got)
	}
	if got := r.DirtyInRange(0, pageBytes); got != 1 {
		t.Fatalf("page 0 dirty words = %d, want 1", got)
	}
	if got := r.DirtyInRange(pageBytes, pageBytes); got != 2 {
		t.Fatalf("page 1 dirty words = %d, want 2", got)
	}
	out := make([]byte, 16)
	r.Load(start, out)
	if !bytes.Equal(out, buf) {
		t.Fatalf("Load = %x, want %x", out, buf)
	}

	// A big buffer covering all of page 2 plus fringes of pages 1 and 3.
	big := make([]byte, pageBytes+2*WordSize)
	for i := range big {
		big[i] = byte(i)
	}
	r.Store(2*pageBytes-WordSize, big)
	want := 3 + (pageWords + 2) // previous dirt + the new span
	if got := r.DirtyWords(); got != want {
		t.Fatalf("DirtyWords = %d, want %d", got, want)
	}
	if got := r.DirtyInRange(2*pageBytes, pageBytes); got != pageWords {
		t.Fatalf("page 2 dirty words = %d, want %d", got, pageWords)
	}

	// Persist only page 2: its whole bitmap clears (count drops to 0 and
	// the summary bit with it) while the fringe words stay dirty.
	if got := r.PersistRange(2*pageBytes, pageBytes); got != pageWords {
		t.Fatalf("PersistRange(page 2) = %d, want %d", got, pageWords)
	}
	if got := r.DirtyWords(); got != 3+2 {
		t.Fatalf("DirtyWords after page persist = %d, want 5", got)
	}
	if got := r.DirtyInRange(2*pageBytes-WordSize, WordSize); got != 1 {
		t.Fatal("fringe word before page 2 lost")
	}
	if got := r.DirtyInRange(3*pageBytes, WordSize); got != 1 {
		t.Fatal("fringe word after page 2 lost")
	}
}

// TestPersistDirtyEdgesOfRegion pins DirtyInRange/PersistRange at the
// very first and very last word of the region, where the masked first/
// last-word handling of the bitmap scan is easiest to get wrong.
func TestPersistDirtyEdgesOfRegion(t *testing.T) {
	size := uint64(2 * pageBytes)
	r := NewRegion(size, 1)
	r.Store8(0, 1)             // first word of the region
	r.Store8(size-WordSize, 2) // last word of the region
	r.Store8(pageBytes, 3)     // first word of page 1
	r.Store8(pageBytes-8, 4)   // last word of page 0

	if got := r.DirtyWords(); got != 4 {
		t.Fatalf("DirtyWords = %d, want 4", got)
	}
	// Whole-region scan sees all four; single-word scans see exactly one.
	if got := r.DirtyInRange(0, size); got != 4 {
		t.Fatalf("DirtyInRange(all) = %d, want 4", got)
	}
	for _, addr := range []uint64{0, size - WordSize, pageBytes, pageBytes - 8} {
		if got := r.DirtyInRange(addr, WordSize); got != 1 {
			t.Fatalf("DirtyInRange(%d, 8) = %d, want 1", addr, got)
		}
	}
	// A range ending exactly at the region edge persists the final word.
	if got := r.PersistRange(size-WordSize, WordSize); got != 1 {
		t.Fatalf("PersistRange(last word) = %d, want 1", got)
	}
	// A range starting at zero persists the first word.
	if got := r.PersistRange(0, WordSize); got != 1 {
		t.Fatalf("PersistRange(first word) = %d, want 1", got)
	}
	// The two page-boundary words fall to a single full-region persist.
	if got := r.PersistRange(0, size); got != 2 {
		t.Fatalf("PersistRange(all) = %d, want 2", got)
	}
	if got := r.DirtyWords(); got != 0 {
		t.Fatalf("DirtyWords after full persist = %d, want 0", got)
	}
	// Idempotent: persisting a clean region persists nothing.
	if got := r.PersistRange(0, size); got != 0 {
		t.Fatalf("PersistRange(clean) = %d, want 0", got)
	}
}

// TestDirtyRangeUnalignedEnds checks the masked scan against ranges
// whose byte bounds are not word aligned: any range touching a byte of
// a dirty word counts that word.
func TestDirtyRangeUnalignedEnds(t *testing.T) {
	r := NewRegion(4096, 1)
	r.Store8(64, 7)
	if got := r.DirtyInRange(63, 2); got != 1 { // straddles words 7 and 8
		t.Fatalf("DirtyInRange(63,2) = %d, want 1", got)
	}
	if got := r.DirtyInRange(71, 1); got != 1 { // last byte of the word
		t.Fatalf("DirtyInRange(71,1) = %d, want 1", got)
	}
	if got := r.DirtyInRange(72, 8); got != 0 { // next word, clean
		t.Fatalf("DirtyInRange(72,8) = %d, want 0", got)
	}
	if got := r.PersistRange(71, 1); got != 1 { // one byte is enough
		t.Fatalf("PersistRange(71,1) = %d, want 1", got)
	}
	if got := r.DirtyWords(); got != 0 {
		t.Fatalf("DirtyWords = %d, want 0", got)
	}
}

// TestAtomicStoreSubsetSemantics pins the counter classification:
// AtomicStores counts a strict subset of Stores (every atomic store is
// also an ordinary store for traffic purposes), so per-protocol
// "plain" stores are Stores - AtomicStores. The harness and figures
// rely on this relation.
func TestAtomicStoreSubsetSemantics(t *testing.T) {
	r := NewRegion(4096, 1)
	r.Store8(0, 1)
	r.Store8(8, 2)
	r.AtomicStore8(16, 3)
	r.Store(24, make([]byte, 12))
	r.AtomicStore8(40, 4)
	st := r.Stats()
	if st.Stores != 5 {
		t.Fatalf("Stores = %d, want 5 (all stores, any kind)", st.Stores)
	}
	if st.AtomicStores != 2 {
		t.Fatalf("AtomicStores = %d, want 2", st.AtomicStores)
	}
	if st.AtomicStores > st.Stores {
		t.Fatal("AtomicStores must be a subset of Stores")
	}
	if plain := st.Stores - st.AtomicStores; plain != 3 {
		t.Fatalf("plain stores = %d, want 3", plain)
	}
	if st.BytesStored != 8+8+8+12+8 {
		t.Fatalf("BytesStored = %d, want 44", st.BytesStored)
	}
}
