package nvm

import "sort"

// Wear tracking. Limited write endurance (10^8 cycles for PCM, Table 1
// of the paper) is half the motivation for write-efficient structures:
// "reducing the amount of writes to NVMs can alleviate these two
// limitations at the same time" (§2.1). The region can optionally
// count every word that reaches the persistence domain — by flush or
// by eviction — which is exactly the write stream the media endures.
// The paper assumes device-level wear-leveling (§2.1); these counters
// quantify what such a layer would have to absorb for each scheme.

// WearStats summarises media-write wear over a region.
type WearStats struct {
	// MediaWrites is the total number of word-writes that reached the
	// media (each persisted or evicted dirty word counts once per trip).
	MediaWrites uint64
	// WordsTouched is how many distinct words were ever written.
	WordsTouched uint64
	// MaxPerWord is the hottest word's write count.
	MaxPerWord uint32
	// MaxWordAddr is the hottest word's address.
	MaxWordAddr uint64
	// MeanPerTouched is MediaWrites / WordsTouched.
	MeanPerTouched float64
	// P99PerTouched is the 99th-percentile write count among touched
	// words — the tail a wear-leveler must spread.
	P99PerTouched uint32
}

// EnableWearTracking allocates the per-word write counters. Costs four
// bytes per region word; off by default.
func (r *Region) EnableWearTracking() {
	if r.wear == nil {
		r.wear = make([]uint32, len(r.cur)/WordSize)
	}
}

// WearEnabled reports whether wear counters are active.
func (r *Region) WearEnabled() bool { return r.wear != nil }

// wearWord counts one media write of the word with index wi (byte
// address / WordSize).
func (r *Region) wearWord(wi uint64) {
	if r.wear != nil {
		r.wear[wi]++
	}
}

// WearOf returns the media-write count of the word containing addr
// (0 when tracking is off).
func (r *Region) WearOf(addr uint64) uint32 {
	if r.wear == nil {
		return 0
	}
	r.check(addr, WordSize)
	return r.wear[addr/WordSize]
}

// Wear computes the wear summary. O(region words).
func (r *Region) Wear() WearStats {
	var s WearStats
	if r.wear == nil {
		return s
	}
	var touched []uint32
	for i, c := range r.wear {
		if c == 0 {
			continue
		}
		s.MediaWrites += uint64(c)
		s.WordsTouched++
		if c > s.MaxPerWord {
			s.MaxPerWord = c
			s.MaxWordAddr = uint64(i) * WordSize
		}
		touched = append(touched, c)
	}
	if s.WordsTouched > 0 {
		s.MeanPerTouched = float64(s.MediaWrites) / float64(s.WordsTouched)
		sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
		// Ceiling index: the 99th percentile of a small population is
		// its upper tail, not the element just below it.
		idx := (99*(len(touched)-1) + 99) / 100
		if idx >= len(touched) {
			idx = len(touched) - 1
		}
		s.P99PerTouched = touched[idx]
	}
	return s
}
