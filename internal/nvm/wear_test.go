package nvm

import "testing"

func TestWearDisabledByDefault(t *testing.T) {
	r := NewRegion(1024, 1)
	if r.WearEnabled() {
		t.Fatal("wear tracking must be opt-in")
	}
	r.Store8(0, 1)
	r.PersistRange(0, 8)
	if r.WearOf(0) != 0 {
		t.Fatal("disabled tracking must read 0")
	}
	if s := r.Wear(); s.MediaWrites != 0 {
		t.Fatalf("disabled wear stats = %+v", s)
	}
}

func TestWearCountsPersists(t *testing.T) {
	r := NewRegion(1024, 1)
	r.EnableWearTracking()
	for i := 0; i < 5; i++ {
		r.Store8(0, uint64(i))
		r.PersistRange(0, 8)
	}
	if got := r.WearOf(0); got != 5 {
		t.Fatalf("WearOf = %d, want 5", got)
	}
	// Repeated stores without persists are one media write.
	for i := 0; i < 7; i++ {
		r.Store8(64, uint64(i))
	}
	r.PersistRange(64, 8)
	if got := r.WearOf(64); got != 1 {
		t.Fatalf("coalesced stores wore %d, want 1 (write coalescing in cache)", got)
	}
}

func TestWearCountsEvictionsAndSurvivors(t *testing.T) {
	r := NewRegion(1024, 1)
	r.EnableWearTracking()
	r.Store8(0, 1)
	r.Evict(0, 64)
	if r.WearOf(0) != 1 {
		t.Fatal("eviction is a media write")
	}
	r.Store8(8, 2)
	r.Crash(1.0) // survivor reached the media
	if r.WearOf(8) != 1 {
		t.Fatal("crash survivor is a media write")
	}
	r.Store8(16, 3)
	r.Crash(0.0) // rolled back: never reached the media
	if r.WearOf(16) != 0 {
		t.Fatal("rolled-back word must not count as a media write")
	}
}

func TestWearStatsSummary(t *testing.T) {
	r := NewRegion(4096, 1)
	r.EnableWearTracking()
	// Word 0: hot (10 writes). Words 8..80: one write each.
	for i := 0; i < 10; i++ {
		r.Store8(0, uint64(i))
		r.PersistRange(0, 8)
	}
	for w := uint64(8); w <= 80; w += 8 {
		r.Store8(w, w)
		r.PersistRange(w, 8)
	}
	s := r.Wear()
	if s.MediaWrites != 20 {
		t.Fatalf("MediaWrites = %d", s.MediaWrites)
	}
	if s.WordsTouched != 11 {
		t.Fatalf("WordsTouched = %d", s.WordsTouched)
	}
	if s.MaxPerWord != 10 || s.MaxWordAddr != 0 {
		t.Fatalf("hottest = %d @ %d", s.MaxPerWord, s.MaxWordAddr)
	}
	if s.MeanPerTouched < 1.8 || s.MeanPerTouched > 1.9 {
		t.Fatalf("MeanPerTouched = %v", s.MeanPerTouched)
	}
	if s.P99PerTouched != 10 {
		t.Fatalf("P99PerTouched = %d", s.P99PerTouched)
	}
}

func TestWearPersistAll(t *testing.T) {
	r := NewRegion(1024, 1)
	r.EnableWearTracking()
	r.Store8(0, 1)
	r.Store8(8, 2)
	r.PersistAll()
	if r.WearOf(0) != 1 || r.WearOf(8) != 1 {
		t.Fatal("PersistAll must count media writes")
	}
}
