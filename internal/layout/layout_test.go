package layout

import (
	"testing"
	"testing/quick"
)

func TestForKeySize(t *testing.T) {
	l8 := ForKeySize(8)
	if !l8.Compact() || l8.KeyWords() != 1 || l8.KeyBytes() != 8 || l8.CellSize() != 16 {
		t.Fatalf("8-byte layout: compact=%v words=%d bytes=%d cell=%d",
			l8.Compact(), l8.KeyWords(), l8.KeyBytes(), l8.CellSize())
	}
	l16 := ForKeySize(16)
	if l16.Compact() || l16.KeyWords() != 2 || l16.KeyBytes() != 16 || l16.CellSize() != 32 {
		t.Fatalf("16-byte layout: compact=%v words=%d bytes=%d cell=%d",
			l16.Compact(), l16.KeyWords(), l16.KeyBytes(), l16.CellSize())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for 12-byte keys")
			}
		}()
		ForKeySize(12)
	}()
}

func TestCompactOffsets(t *testing.T) {
	l := ForKeySize(8)
	base := uint64(1024)
	if l.CommitOff(base) != 1024 || l.KeyOff(base, 0) != 1024 {
		t.Fatal("compact: key must be the commit word")
	}
	if l.ValOff(base) != 1032 {
		t.Fatal("compact: value must follow the key")
	}
	if l.PayloadOff(base) != 1032 || l.PayloadLen() != 8 {
		t.Fatalf("compact payload = (%d, %d)", l.PayloadOff(base), l.PayloadLen())
	}
	if l.ValOff(base)+WordSize != base+l.CellSize() {
		t.Fatal("compact cells do not tile")
	}
}

func TestMetaOffsets(t *testing.T) {
	l := ForKeySize(16)
	base := uint64(1024)
	if l.CommitOff(base) != 1024 {
		t.Fatal("meta word must be the first word")
	}
	if l.KeyOff(base, 0) != 1032 || l.KeyOff(base, 1) != 1040 {
		t.Fatal("key words must follow the meta word")
	}
	if l.ValOff(base) != 1048 {
		t.Fatal("value must follow the key")
	}
	if l.PayloadOff(base) != 1032 || l.PayloadLen() != 24 {
		t.Fatalf("payload = (%d, %d)", l.PayloadOff(base), l.PayloadLen())
	}
	if l.ValOff(base)+WordSize != base+l.CellSize() {
		t.Fatal("meta cells do not tile")
	}
}

func TestCompactCommitWord(t *testing.T) {
	l := ForKeySize(8)
	k := Key{Lo: 12345}
	commit := l.CommitWord(k)
	if commit != 12345 {
		t.Fatalf("compact commit word = %d, want the key", commit)
	}
	if !l.Occupied(commit) {
		t.Fatal("non-zero key must read as occupied")
	}
	if l.Occupied(0) {
		t.Fatal("zero commit word must read as empty")
	}
	if !l.CommitMatches(commit, k) {
		t.Fatal("commit word must match its own key")
	}
	if l.CommitMatches(commit, Key{Lo: 99}) {
		t.Fatal("commit word matched a different key")
	}
	if l.CommitMatches(0, Key{Lo: 0}) {
		t.Fatal("the zero key must never match (reserved as empty)")
	}
}

func TestMetaCommitWord(t *testing.T) {
	l := ForKeySize(16)
	k := Key{Lo: 12345, Hi: 999}
	meta := l.CommitWord(k)
	if !l.Occupied(meta) {
		t.Fatal("meta of an occupied cell must have the occupied bit")
	}
	if MetaTag(meta) == 0 {
		t.Fatal("meta must carry a non-zero tag")
	}
	if !l.CommitMatches(meta, k) {
		t.Fatal("meta must match its own key")
	}
	if l.CommitMatches(0, k) {
		t.Fatal("empty meta must not match any key")
	}
	if l.CommitMatches(meta&^uint64(OccupiedBit), k) {
		t.Fatal("unoccupied meta must not match even with the right tag")
	}
}

func TestValidKey(t *testing.T) {
	l8, l16 := ForKeySize(8), ForKeySize(16)
	if l8.ValidKey(Key{Lo: 0}) {
		t.Fatal("compact layout must reject the zero key")
	}
	if !l8.ValidKey(Key{Lo: 1}) {
		t.Fatal("compact layout must accept non-zero keys")
	}
	if !l16.ValidKey(Key{Lo: 0, Hi: 0}) {
		t.Fatal("meta layout accepts any key (occupancy lives in the meta word)")
	}
}

func TestCanonDropsHiForCompact(t *testing.T) {
	l := ForKeySize(8)
	if l.Canon(Key{Lo: 5, Hi: 77}) != (Key{Lo: 5}) {
		t.Fatal("compact canon must drop Hi")
	}
	l16 := ForKeySize(16)
	if l16.Canon(Key{Lo: 5, Hi: 77}) != (Key{Lo: 5, Hi: 77}) {
		t.Fatal("meta canon must keep Hi")
	}
}

// Property: a meta commit word never rejects its own key, and the
// occupied bit survives tagging for all keys.
func TestQuickMetaSelfMatch(t *testing.T) {
	l := ForKeySize(16)
	f := func(lo, hi uint64) bool {
		k := Key{Lo: lo, Hi: hi}
		meta := l.CommitWord(k)
		return l.Occupied(meta) && l.CommitMatches(meta, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: compact commit words are exactly the key, so matching is
// exact (no false positives at all).
func TestQuickCompactExactMatch(t *testing.T) {
	l := ForKeySize(8)
	f := func(a, b uint64) bool {
		if a == 0 || b == 0 {
			return true
		}
		match := l.CommitMatches(l.CommitWord(Key{Lo: a}), Key{Lo: b})
		return match == (a == b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
