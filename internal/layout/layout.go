// Package layout defines the persistent cell formats shared by all hash
// tables in this repository. Both formats commit state transitions with
// a single aligned 8-byte store, the failure-atomicity unit of the
// modelled NVM (§3.3 of the paper).
//
// Compact layout — 8-byte keys, 16-byte cells (the paper's RandomNum
// and Bag-of-Words item size):
//
//	word 0   key; doubles as the occupancy bitmap: key != 0 ⇔ occupied.
//	         The atomic store of this word is the commit point.
//	word 1   value
//
// The compact layout reserves key 0 as the empty marker, so zero keys
// are invalid (traces avoid them; tables reject them).
//
// Meta layout — 16-byte keys, 32-byte cells (the paper's Fingerprint
// item size):
//
//	word 0   meta word: bit 0 = occupied bitmap, bits 16..63 = key tag.
//	         The atomic store of this word is the commit point.
//	word 1-2 key
//	word 3   value
//
// In both cases the commit word plays the role of the paper's per-cell
// "bitmap": inserts persist the rest of the cell first and then
// atomically publish the commit word; deletes atomically clear the
// commit word first and then scrub the rest (§3.4).
package layout

import "grouphash/internal/xhash"

// WordSize is the failure-atomicity unit in bytes.
const WordSize = 8

// TagBits is the width of the fingerprint stored in a meta word.
const TagBits = 48

// TagShift positions the tag above the low flag bits.
const TagShift = 16

// OccupiedBit marks a meta-layout cell as holding a live item.
const OccupiedBit = 1

// Key is a fixed-size hash key. The compact layout uses Lo only; the
// meta layout uses both words. Using a value struct keeps the hot path
// free of heap allocation.
type Key struct {
	Lo, Hi uint64
}

// Layout describes the cell geometry for a key size.
type Layout struct {
	keyWords int
	compact  bool
}

// ForKeySize returns the layout for 8- or 16-byte keys (the item sizes
// of the paper's three traces): compact 16-byte cells for 8-byte keys,
// meta-word 32-byte cells for 16-byte keys.
func ForKeySize(bytes int) Layout {
	switch bytes {
	case 8:
		return Layout{keyWords: 1, compact: true}
	case 16:
		return Layout{keyWords: 2}
	default:
		panic("layout: key size must be 8 or 16 bytes")
	}
}

// Compact reports whether this is the key-as-commit-word format.
func (l Layout) Compact() bool { return l.compact }

// KeyWords returns how many 8-byte words the key occupies.
func (l Layout) KeyWords() int { return l.keyWords }

// KeyBytes returns the key size in bytes.
func (l Layout) KeyBytes() int { return l.keyWords * WordSize }

// CellSize returns the cell footprint in bytes.
func (l Layout) CellSize() uint64 {
	if l.compact {
		return 2 * WordSize // key + value
	}
	return uint64(2+l.keyWords) * WordSize // meta + key + value
}

// CommitOff returns the address of the cell's commit word: the word
// whose atomic store publishes or retires the cell.
func (l Layout) CommitOff(base uint64) uint64 { return base }

// KeyOff returns the address of key word i.
func (l Layout) KeyOff(base uint64, i int) uint64 {
	if l.compact {
		return base // the key IS the commit word
	}
	return base + uint64(1+i)*WordSize
}

// ValOff returns the address of the value word.
func (l Layout) ValOff(base uint64) uint64 {
	if l.compact {
		return base + WordSize
	}
	return base + uint64(1+l.keyWords)*WordSize
}

// PayloadOff returns the address of the first non-commit word — the
// range an insert persists before publishing the commit word.
func (l Layout) PayloadOff(base uint64) uint64 { return base + WordSize }

// PayloadLen returns the byte length of the non-commit payload.
func (l Layout) PayloadLen() uint64 {
	if l.compact {
		return WordSize // value only
	}
	return uint64(1+l.keyWords) * WordSize // key + value
}

// ValidKey reports whether k can be stored under this layout. The
// compact layout reserves the zero key as its empty marker.
func (l Layout) ValidKey(k Key) bool {
	if l.compact {
		return k.Lo != 0
	}
	return true
}

// normHi returns the key's high word as seen by this layout: one-word
// layouts ignore Key.Hi entirely, so a caller-populated Hi can never
// cause a mismatch against the stored (single-word) key.
func (l Layout) normHi(k Key) uint64 {
	if l.keyWords == 2 {
		return k.Hi
	}
	return 0
}

// Canon returns k as this layout stores it (Hi dropped for one-word
// keys). Comparisons between a lookup key and a stored key must use
// canonical forms.
func (l Layout) Canon(k Key) Key { return Key{Lo: k.Lo, Hi: l.normHi(k)} }

// CommitWord returns the value stored at the commit word to publish an
// occupied cell holding k: the key itself (compact) or a meta word with
// the occupied bit and k's tag (meta layout). The commit word of an
// occupied cell is never zero; zero always reads as empty.
func (l Layout) CommitWord(k Key) uint64 {
	if l.compact {
		return k.Lo
	}
	return xhash.Tag(k.Lo, k.Hi, TagBits)<<TagShift | OccupiedBit
}

// Occupied reports whether a commit word marks the cell occupied.
func (l Layout) Occupied(commit uint64) bool {
	if l.compact {
		return commit != 0
	}
	return commit&OccupiedBit != 0
}

// CommitMatches reports whether the commit word could belong to key k:
// under the compact layout this is a full key compare; under the meta
// layout the cell must be occupied with an agreeing tag (a true result
// still requires a full key compare; a false result is definitive).
func (l Layout) CommitMatches(commit uint64, k Key) bool {
	if l.compact {
		return commit == k.Lo && commit != 0
	}
	return l.Occupied(commit) && commit>>TagShift&(1<<TagBits-1) == xhash.Tag(k.Lo, k.Hi, TagBits)
}

// MetaTag extracts the tag from a meta-layout commit word.
func MetaTag(meta uint64) uint64 { return meta >> TagShift & (1<<TagBits - 1) }
