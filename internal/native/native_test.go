package native

import (
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	m := New(1 << 12)
	m.Write8(0, 5)
	m.AtomicWrite8(8, 6)
	if m.Read8(0) != 5 || m.Read8(8) != 6 {
		t.Fatal("word round trip failed")
	}
	m.Persist(0, 16) // no-op, must not panic
	if m.Size() != 1<<12 {
		t.Fatalf("Size = %d", m.Size())
	}
}

func TestSizeRounding(t *testing.T) {
	if New(13).Size() != 16 {
		t.Fatal("size must round up to a word")
	}
}

func TestMisalignedPanics(t *testing.T) {
	m := New(64)
	for _, f := range []func(){
		func() { m.Read8(3) },
		func() { m.Write8(5, 1) },
		func() { m.Read8(1 << 20) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAllocGrowsOnDemand(t *testing.T) {
	m := New(64)
	a := m.Alloc(1024, 8) // larger than the initial buffer
	m.Write8(a+1016, 42)
	if m.Read8(a+1016) != 42 {
		t.Fatal("grown region unusable")
	}
	b := m.Alloc(1<<16, 64)
	if b%64 != 0 {
		t.Fatal("alignment lost after growth")
	}
	m.Write8(b, 1)
}

func TestAllocPreservesContents(t *testing.T) {
	m := New(64)
	a := m.Alloc(8, 8)
	m.Write8(a, 1234)
	m.Alloc(1<<20, 8) // forces growth
	if m.Read8(a) != 1234 {
		t.Fatal("growth lost earlier contents")
	}
}

func TestBadAlignmentPanics(t *testing.T) {
	m := New(64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Alloc(8, 12)
}

// Property: disjoint allocations never alias.
func TestQuickAllocationsDisjoint(t *testing.T) {
	f := func(sizes []uint16) bool {
		m := New(1 << 10)
		type span struct{ a, n uint64 }
		var spans []span
		for _, sz := range sizes {
			n := uint64(sz)%512 + 8
			a := m.Alloc(n, 8)
			for _, s := range spans {
				if a < s.a+s.n && s.a < a+n {
					return false
				}
			}
			spans = append(spans, span{a, n})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestImageRoundtrip checks that Image/SetImage move the allocated
// prefix faithfully, including a non-word-aligned watermark tail.
func TestImageRoundtrip(t *testing.T) {
	m := New(1 << 12)
	a := m.Alloc(64, 8)
	for i := uint64(0); i < 8; i++ {
		m.Write8(a+i*8, 0x1111*(i+1))
	}
	m.SetAllocated(m.Allocated() - 3) // unaligned watermark
	img := m.Image()
	if uint64(len(img)) != m.Allocated() {
		t.Fatalf("image is %d bytes, watermark %d", len(img), m.Allocated())
	}

	m2 := New(8) // deliberately too small: SetImage must grow it
	m2.SetImage(img)
	m2.SetAllocated(uint64(len(img)))
	for i := uint64(0); i < 7; i++ { // last word was truncated by the tail
		if got := m2.Read8(a + i*8); got != 0x1111*(i+1) {
			t.Fatalf("word %d = %#x after roundtrip", i, got)
		}
	}
	if m2.Allocated() != uint64(len(img)) {
		t.Fatal("watermark not restored")
	}
}

// TestMarkReleaseRewindsAndZeroes pins the Reclaimer contract: Release
// rewinds the watermark to the Mark and zeroes everything allocated
// since, so the next Alloc reuses the same (fresh) range.
func TestMarkReleaseRewindsAndZeroes(t *testing.T) {
	m := New(1 << 12)
	keep := m.Alloc(64, 8)
	m.Write8(keep, 7)
	mark := m.Mark()
	a := m.Alloc(256, 64)
	for i := uint64(0); i < 32; i++ {
		m.Write8(a+i*8, 0xdead)
	}
	m.Release(mark)
	if m.Allocated() != mark {
		t.Fatalf("watermark %d after Release, want %d", m.Allocated(), mark)
	}
	b := m.Alloc(256, 64)
	if b != a {
		t.Fatalf("post-release Alloc at %d, want the reclaimed %d", b, a)
	}
	for i := uint64(0); i < 32; i++ {
		if m.Read8(b+i*8) != 0 {
			t.Fatalf("reclaimed word %d not zeroed", i)
		}
	}
	if m.Read8(keep) != 7 {
		t.Fatal("Release damaged memory below the mark")
	}
}

// TestReleaseAboveWatermarkPanics pins the misuse guard.
func TestReleaseAboveWatermarkPanics(t *testing.T) {
	m := New(1 << 12)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Release(m.Mark() + 64)
}

// TestAllocDuringConcurrentAccess exercises the property online
// expansion depends on: growth appends pages without moving existing
// ones, so readers and writers of already-allocated addresses may run
// concurrently with Alloc. Run under -race to make the check meaningful.
func TestAllocDuringConcurrentAccess(t *testing.T) {
	m := New(1 << 10)
	a := m.Alloc(1<<10, 8)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(0); ; i = (i + 1) % 128 {
			select {
			case <-stop:
				return
			default:
			}
			m.Write8(a+i*8, i)
			if got := m.Read8(a + i*8); got != i {
				t.Errorf("word %d = %d mid-growth", i, got)
				return
			}
		}
	}()
	for i := 0; i < 8; i++ {
		m.Alloc(3<<20, 64) // each call appends pages
	}
	close(stop)
	<-done
}
