// Package native provides a plain in-process implementation of the
// hashtab.Mem interface: a flat word buffer with no cache simulation, no
// latency model and no crash injection. Persist calls are no-ops.
//
// This backend exists for two reasons:
//
//   - real-throughput benchmarks: testing.B benches over native memory
//     measure the Go-level cost of the algorithms themselves, separate
//     from the simulated machine;
//   - the concurrent table variant, which would be meaningless on the
//     single-clock simulator.
//
// Every word access is an atomic load or store (the Mem interface is
// word-granular, so the backing array is []uint64 and atomics cost the
// same as plain moves on mainstream hardware). That makes this backend
// safe for the seqlock-style optimistic read protocol of core.Concurrent:
// readers may call Read8 with no lock held while writers store
// concurrently, with no torn words and no race-detector reports. The
// marker method ConcurrentReadSafe advertises the property.
//
// On a machine with real persistent memory, this backend is also the
// template for an mmap-backed region: the algorithms above it already
// issue stores and persist barriers in the correct order, so only Persist
// would need to become a real CLWB+SFENCE sequence.
package native

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Memory is a volatile hashtab.Mem backend. Word reads and writes are
// individually atomic and may run concurrently with each other; compound
// operations (and Alloc, which may move the buffer) still require the
// callers' locking, which the concurrent table wrapper provides.
type Memory struct {
	words []uint64
	next  uint64
}

// New creates a native memory of the given size in bytes.
func New(size uint64) *Memory {
	size = (size + 7) &^ 7
	return &Memory{words: make([]uint64, size/8)}
}

// Size returns the buffer size in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.words)) * 8 }

func (m *Memory) check(addr, n uint64) {
	if addr+n > m.Size() || addr+n < addr {
		panic(fmt.Sprintf("native: access [%d,%d) out of range of %d-byte memory", addr, addr+n, m.Size()))
	}
}

// ConcurrentReadSafe marks this backend as supporting lock-free
// concurrent word reads (see hashtab.ConcurrentReader): every Read8 and
// Write8 is an atomic word operation, so optimistic readers never
// observe a torn word and never trip the race detector.
func (m *Memory) ConcurrentReadSafe() {}

// Read8 loads an aligned 8-byte word.
func (m *Memory) Read8(addr uint64) uint64 {
	m.check(addr, 8)
	if addr%8 != 0 {
		panic(fmt.Sprintf("native: misaligned load at %d", addr))
	}
	return atomic.LoadUint64(&m.words[addr/8])
}

// Write8 stores an aligned 8-byte word.
func (m *Memory) Write8(addr, val uint64) {
	m.check(addr, 8)
	if addr%8 != 0 {
		panic(fmt.Sprintf("native: misaligned store at %d", addr))
	}
	atomic.StoreUint64(&m.words[addr/8], val)
}

// AtomicWrite8 stores an aligned 8-byte word; on this backend every
// word store is atomic, so it is the same as Write8.
func (m *Memory) AtomicWrite8(addr, val uint64) { m.Write8(addr, val) }

// Persist is a no-op: native memory has no persistence domain.
func (m *Memory) Persist(addr, n uint64) {}

// Allocated returns the allocator watermark: every address handed out
// by Alloc lies below it, so the bytes under it are the memory's entire
// live content.
func (m *Memory) Allocated() uint64 { return m.next }

// SetAllocated restores the allocator watermark, e.g. after SetImage
// rebuilt the contents from a saved image.
func (m *Memory) SetAllocated(n uint64) { m.next = n }

// Image returns a copy of the allocated prefix of the memory as bytes
// (little-endian words, the byte order the pmfs image format and the
// simulated region share). Words are read with atomic loads, so an
// Image taken while lock-free readers are probing is race-free; the
// caller must still exclude WRITERS (e.g. via Concurrent.Quiesce) for
// the image to be a consistent cut.
func (m *Memory) Image() []byte {
	words := (m.next + 7) / 8
	img := make([]byte, words*8)
	for i := uint64(0); i < words; i++ {
		binary.LittleEndian.PutUint64(img[i*8:], atomic.LoadUint64(&m.words[i]))
	}
	return img[:min(m.next, uint64(len(img)))]
}

// SetImage overwrites the front of the memory with a saved image,
// growing the buffer if needed. Not safe to run concurrently with any
// other access; intended for rebuilding a memory at load time.
func (m *Memory) SetImage(img []byte) {
	if need := (uint64(len(img)) + 7) / 8; need > uint64(len(m.words)) {
		grown := make([]uint64, need)
		copy(grown, m.words)
		m.words = grown
	}
	for i := 0; i+8 <= len(img); i += 8 {
		m.words[i/8] = binary.LittleEndian.Uint64(img[i:])
	}
	if tail := len(img) % 8; tail != 0 {
		var b [8]byte
		copy(b[:], img[len(img)-tail:])
		m.words[len(img)/8] = binary.LittleEndian.Uint64(b[:])
	}
}

// Alloc reserves size bytes at the given power-of-two alignment. Unlike
// the fixed-size simulated NVM region, native memory models ordinary
// process memory: the buffer grows on demand (doubling), so repeated
// table expansions never exhaust it. Growth moves the buffer, so Alloc
// must not race with concurrent table operations; in practice it is
// called only while a table is being created or expanded.
func (m *Memory) Alloc(size, align uint64) uint64 {
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("native: alignment %d is not a power of two", align))
	}
	addr := (m.next + align - 1) &^ (align - 1)
	if addr+size < addr {
		panic(fmt.Sprintf("native: allocation of %d bytes overflows the address space", size))
	}
	for addr+size > m.Size() {
		grown := make([]uint64, max(uint64(len(m.words))*2, (addr+size+7)/8))
		copy(grown, m.words)
		m.words = grown
	}
	m.next = addr + size
	return addr
}
