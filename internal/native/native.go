// Package native provides a plain in-process implementation of the
// hashtab.Mem interface: a flat word buffer with no cache simulation, no
// latency model and no crash injection. Persist calls are no-ops.
//
// This backend exists for two reasons:
//
//   - real-throughput benchmarks: testing.B benches over native memory
//     measure the Go-level cost of the algorithms themselves, separate
//     from the simulated machine;
//   - the concurrent table variant, which would be meaningless on the
//     single-clock simulator.
//
// Every word access is an atomic load or store (the Mem interface is
// word-granular, so the backing store is word arrays and atomics cost
// the same as plain moves on mainstream hardware). That makes this
// backend safe for the seqlock-style optimistic read protocol of
// core.Concurrent: readers may call Read8 with no lock held while
// writers store concurrently, with no torn words and no race-detector
// reports. The marker method ConcurrentReadSafe advertises the
// property.
//
// Storage is PAGED: the buffer is a table of fixed-size pages, and
// growth appends pages without ever moving existing ones. Addresses are
// therefore stable for the lifetime of the memory, which is what lets
// Alloc run concurrently with lock-free readers and locked writers —
// the property online table expansion depends on (the expansion
// coordinator allocates the new cell arrays while other goroutines keep
// probing the old ones). The page table itself is swapped atomically on
// growth (copy-on-write of the page POINTERS only), so a reader holding
// the old table still reaches every address that existed when it loaded
// it.
//
// Alloc/Release themselves must still be serialized by the caller (one
// allocating goroutine at a time); in practice allocation only happens
// at table creation and inside a single expansion coordinator.
//
// On a machine with real persistent memory, this backend is also the
// template for an mmap-backed region: the algorithms above it already
// issue stores and persist barriers in the correct order, so only Persist
// would need to become a real CLWB+SFENCE sequence.
package native

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Page geometry: 1 MiB pages keep the page table tiny (one pointer per
// MiB) while bounding the over-allocation of small memories.
const (
	pageShift = 20
	pageBytes = 1 << pageShift
	pageWords = pageBytes / 8
)

// page is one fixed-size block of words. Pages never move once
// allocated.
type page [pageWords]uint64

// Memory is a volatile hashtab.Mem backend. Word reads and writes are
// individually atomic and may run concurrently with each other and with
// Alloc; compound multi-word operations still require the callers'
// locking, which the concurrent table wrapper provides.
type Memory struct {
	pages atomic.Pointer[[]*page]
	next  atomic.Uint64 // bump-allocator watermark
	size  atomic.Uint64 // reported Size (requested, word-rounded; grows with Alloc)
}

// New creates a native memory of the given size in bytes.
func New(size uint64) *Memory {
	size = (size + 7) &^ 7
	m := &Memory{}
	pt := makePages(nil, (size+pageBytes-1)/pageBytes)
	m.pages.Store(&pt)
	m.size.Store(size)
	return m
}

// makePages returns a page table of n pages that shares old's pages and
// appends fresh zeroed ones.
func makePages(old []*page, n uint64) []*page {
	pt := make([]*page, n)
	copy(pt, old)
	for i := len(old); i < len(pt); i++ {
		pt[i] = new(page)
	}
	return pt
}

// Size returns the buffer size in bytes.
func (m *Memory) Size() uint64 { return m.size.Load() }

// word returns a pointer to the word holding addr, panicking on
// misaligned or out-of-range addresses. Bounds are page-granular: the
// slack of the last page of a small memory is addressable, like the
// tail of a real mmap region.
func (m *Memory) word(addr uint64) *uint64 {
	if addr%8 != 0 {
		panic(fmt.Sprintf("native: misaligned access at %d", addr))
	}
	pt := *m.pages.Load()
	pi := addr >> pageShift
	if pi >= uint64(len(pt)) {
		panic(fmt.Sprintf("native: access at %d out of range of %d-byte memory", addr, uint64(len(pt))*pageBytes))
	}
	return &pt[pi][(addr&(pageBytes-1))>>3]
}

// ConcurrentReadSafe marks this backend as supporting lock-free
// concurrent word reads (see hashtab.ConcurrentReader): every Read8 and
// Write8 is an atomic word operation, so optimistic readers never
// observe a torn word and never trip the race detector.
func (m *Memory) ConcurrentReadSafe() {}

// Read8 loads an aligned 8-byte word.
func (m *Memory) Read8(addr uint64) uint64 {
	return atomic.LoadUint64(m.word(addr))
}

// Write8 stores an aligned 8-byte word.
func (m *Memory) Write8(addr, val uint64) {
	atomic.StoreUint64(m.word(addr), val)
}

// AtomicWrite8 stores an aligned 8-byte word; on this backend every
// word store is atomic, so it is the same as Write8.
func (m *Memory) AtomicWrite8(addr, val uint64) { m.Write8(addr, val) }

// Persist is a no-op: native memory has no persistence domain.
func (m *Memory) Persist(addr, n uint64) {}

// Allocated returns the allocator watermark: every address handed out
// by Alloc lies below it, so the bytes under it are the memory's entire
// live content.
func (m *Memory) Allocated() uint64 { return m.next.Load() }

// SetAllocated restores the allocator watermark, e.g. after SetImage
// rebuilt the contents from a saved image.
func (m *Memory) SetAllocated(n uint64) { m.next.Store(n) }

// Mark returns the current allocation watermark, a point Release can
// later rewind to. Part of the hashtab.Reclaimer contract.
func (m *Memory) Mark() uint64 { return m.next.Load() }

// Release rewinds the allocator to a watermark previously returned by
// Mark, reclaiming every allocation made since. The released range is
// zeroed, so a future Alloc over it sees fresh memory (the invariant
// NewCells relies on). The caller must guarantee nothing reachable
// still points into the released range. Part of hashtab.Reclaimer.
func (m *Memory) Release(mark uint64) {
	next := m.next.Load()
	if mark > next {
		panic(fmt.Sprintf("native: Release(%d) above the watermark %d", mark, next))
	}
	for a := mark &^ 7; a < next; a += 8 {
		atomic.StoreUint64(m.word(a), 0)
	}
	m.next.Store(mark)
}

// Image returns a copy of the allocated prefix of the memory as bytes
// (little-endian words, the byte order the pmfs image format and the
// simulated region share). Words are read with atomic loads, so an
// Image taken while lock-free readers are probing is race-free; the
// caller must still exclude WRITERS (e.g. via Concurrent.Quiesce) for
// the image to be a consistent cut.
func (m *Memory) Image() []byte {
	next := m.next.Load()
	words := (next + 7) / 8
	img := make([]byte, words*8)
	for i := uint64(0); i < words; i++ {
		binary.LittleEndian.PutUint64(img[i*8:], atomic.LoadUint64(m.word(i*8)))
	}
	return img[:min(next, uint64(len(img)))]
}

// SetImage overwrites the front of the memory with a saved image,
// growing the buffer if needed. Not safe to run concurrently with any
// other access; intended for rebuilding a memory at load time.
func (m *Memory) SetImage(img []byte) {
	m.grow(uint64(len(img)))
	for i := 0; i+8 <= len(img); i += 8 {
		atomic.StoreUint64(m.word(uint64(i)), binary.LittleEndian.Uint64(img[i:]))
	}
	if tail := len(img) % 8; tail != 0 {
		var b [8]byte
		copy(b[:], img[len(img)-tail:])
		atomic.StoreUint64(m.word(uint64(len(img)-tail)), binary.LittleEndian.Uint64(b[:]))
	}
}

// grow ensures the page table covers [0, limit), appending fresh pages
// (and publishing the new table atomically) when it does not. Existing
// pages never move, so concurrent readers of existing addresses stay
// valid throughout.
func (m *Memory) grow(limit uint64) {
	pt := *m.pages.Load()
	need := (limit + pageBytes - 1) / pageBytes
	if need <= uint64(len(pt)) {
		return
	}
	grown := makePages(pt, need)
	m.pages.Store(&grown)
	if bytes := need * pageBytes; bytes > m.size.Load() {
		m.size.Store(bytes)
	}
}

// Alloc reserves size bytes at the given power-of-two alignment. Unlike
// the fixed-size simulated NVM region, native memory models ordinary
// process memory: pages are appended on demand, so repeated table
// expansions never exhaust it. Growth never moves existing pages, so
// reads and writes of already-allocated addresses may proceed
// concurrently with Alloc; only Alloc/Release calls themselves must be
// serialized by the caller.
func (m *Memory) Alloc(size, align uint64) uint64 {
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("native: alignment %d is not a power of two", align))
	}
	next := m.next.Load()
	addr := (next + align - 1) &^ (align - 1)
	if addr+size < addr {
		panic(fmt.Sprintf("native: allocation of %d bytes overflows the address space", size))
	}
	m.grow(addr + size)
	// Publish the watermark only after the pages exist: a concurrent
	// Image() sizing itself by the watermark must find every page.
	m.next.Store(addr + size)
	return addr
}
