// Package native provides a plain in-process implementation of the
// hashtab.Mem interface: a flat byte buffer with no cache simulation, no
// latency model and no crash injection. Persist calls are no-ops.
//
// This backend exists for two reasons:
//
//   - real-throughput benchmarks: testing.B benches over native memory
//     measure the Go-level cost of the algorithms themselves, separate
//     from the simulated machine;
//   - the concurrent table variant, which would be meaningless on the
//     single-clock simulator.
//
// On a machine with real persistent memory, this backend is also the
// template for an mmap-backed region: the algorithms above it already
// issue stores and persist barriers in the correct order, so only Persist
// would need to become a real CLWB+SFENCE sequence.
package native

import (
	"encoding/binary"
	"fmt"
)

// Memory is a volatile hashtab.Mem backend. It is not internally
// synchronised; the concurrent table wrapper serialises access with
// striped locks.
type Memory struct {
	buf  []byte
	next uint64
}

// New creates a native memory of the given size in bytes.
func New(size uint64) *Memory {
	size = (size + 7) &^ 7
	return &Memory{buf: make([]byte, size)}
}

// Size returns the buffer size in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.buf)) }

func (m *Memory) check(addr, n uint64) {
	if addr+n > uint64(len(m.buf)) || addr+n < addr {
		panic(fmt.Sprintf("native: access [%d,%d) out of range of %d-byte memory", addr, addr+n, len(m.buf)))
	}
}

// Read8 loads an aligned 8-byte word.
func (m *Memory) Read8(addr uint64) uint64 {
	m.check(addr, 8)
	if addr%8 != 0 {
		panic(fmt.Sprintf("native: misaligned load at %d", addr))
	}
	return binary.LittleEndian.Uint64(m.buf[addr : addr+8])
}

// Write8 stores an aligned 8-byte word.
func (m *Memory) Write8(addr, val uint64) {
	m.check(addr, 8)
	if addr%8 != 0 {
		panic(fmt.Sprintf("native: misaligned store at %d", addr))
	}
	binary.LittleEndian.PutUint64(m.buf[addr:addr+8], val)
}

// AtomicWrite8 stores an aligned 8-byte word; on this backend it is the
// same as Write8 (single-writer sections are guaranteed by the callers'
// locking).
func (m *Memory) AtomicWrite8(addr, val uint64) { m.Write8(addr, val) }

// Persist is a no-op: native memory has no persistence domain.
func (m *Memory) Persist(addr, n uint64) {}

// Alloc reserves size bytes at the given power-of-two alignment. Unlike
// the fixed-size simulated NVM region, native memory models ordinary
// process memory: the buffer grows on demand (doubling), so repeated
// table expansions never exhaust it.
func (m *Memory) Alloc(size, align uint64) uint64 {
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("native: alignment %d is not a power of two", align))
	}
	addr := (m.next + align - 1) &^ (align - 1)
	if addr+size < addr {
		panic(fmt.Sprintf("native: allocation of %d bytes overflows the address space", size))
	}
	for addr+size > uint64(len(m.buf)) {
		grown := make([]byte, max(uint64(len(m.buf))*2, addr+size))
		copy(grown, m.buf)
		m.buf = grown
	}
	m.next = addr + size
	return addr
}
