package chained

import (
	"math/rand"
	"testing"

	"grouphash/internal/cache"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/native"
)

func simMem(seed int64) *memsim.Memory {
	return memsim.New(memsim.Config{Size: 8 << 20, Seed: seed, Geoms: cache.SmallGeometry()})
}

func TestBasicOps(t *testing.T) {
	for _, keyBytes := range []int{8, 16} {
		mem := native.New(8 << 20)
		tab := New(mem, Options{Buckets: 256, Nodes: 1024, KeyBytes: keyBytes, Seed: 1})
		if tab.Name() != "chained" || tab.Capacity() != 1024 {
			t.Fatalf("identity: %q cap %d", tab.Name(), tab.Capacity())
		}
		for i := uint64(1); i <= 800; i++ {
			k := layout.Key{Lo: i, Hi: i * 3}
			if err := tab.Insert(k, i*2); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
		}
		if tab.Len() != 800 {
			t.Fatalf("Len = %d", tab.Len())
		}
		for i := uint64(1); i <= 800; i++ {
			k := layout.Key{Lo: i, Hi: i * 3}
			if v, ok := tab.Lookup(k); !ok || v != i*2 {
				t.Fatalf("lookup %d = (%d, %v)", i, v, ok)
			}
		}
		if _, ok := tab.Lookup(layout.Key{Lo: 1 << 50}); ok {
			t.Fatal("phantom key")
		}
		for i := uint64(1); i <= 800; i += 2 {
			if !tab.Delete(layout.Key{Lo: i, Hi: i * 3}) {
				t.Fatalf("delete %d", i)
			}
		}
		for i := uint64(1); i <= 800; i++ {
			_, ok := tab.Lookup(layout.Key{Lo: i, Hi: i * 3})
			if want := i%2 == 0; ok != want {
				t.Fatalf("key %d presence %v", i, ok)
			}
		}
		// Freed nodes are reusable: refill the deleted half.
		for i := uint64(1); i <= 800; i += 2 {
			if err := tab.Insert(layout.Key{Lo: i, Hi: i * 3}, i); err != nil {
				t.Fatalf("reinsert %d: %v", i, err)
			}
		}
		if tab.Len() != 800 {
			t.Fatalf("Len after refill = %d", tab.Len())
		}
	}
}

func TestPoolExhaustionIsTableFull(t *testing.T) {
	mem := native.New(1 << 20)
	tab := New(mem, Options{Buckets: 16, Nodes: 8, Seed: 1})
	var err error
	inserted := 0
	for i := uint64(1); i <= 20; i++ {
		if err = tab.Insert(layout.Key{Lo: i}, i); err != nil {
			break
		}
		inserted++
	}
	if inserted != 8 || err == nil {
		t.Fatalf("inserted %d before %v", inserted, err)
	}
}

func TestUpdateInPlace(t *testing.T) {
	mem := native.New(1 << 20)
	tab := New(mem, Options{Buckets: 64, Seed: 2})
	tab.Insert(layout.Key{Lo: 5}, 1)
	if !tab.Update(layout.Key{Lo: 5}, 2) {
		t.Fatal("update failed")
	}
	if v, _ := tab.Lookup(layout.Key{Lo: 5}); v != 2 {
		t.Fatalf("value = %d", v)
	}
	if tab.Update(layout.Key{Lo: 6}, 1) {
		t.Fatal("updated absent key")
	}
}

func TestDeleteMiddleOfChain(t *testing.T) {
	// Force several keys into one bucket and delete from the middle.
	mem := native.New(1 << 20)
	tab := New(mem, Options{Buckets: 4, Nodes: 64, Seed: 3})
	for i := uint64(1); i <= 30; i++ {
		tab.Insert(layout.Key{Lo: i}, i)
	}
	for i := uint64(10); i <= 20; i++ {
		if !tab.Delete(layout.Key{Lo: i}) {
			t.Fatalf("delete %d", i)
		}
	}
	for i := uint64(1); i <= 30; i++ {
		_, ok := tab.Lookup(layout.Key{Lo: i})
		if want := i < 10 || i > 20; ok != want {
			t.Fatalf("key %d presence %v", i, ok)
		}
	}
}

func TestOracleFuzz(t *testing.T) {
	mem := native.New(32 << 20)
	tab := New(mem, Options{Buckets: 512, Nodes: 4096, Seed: 4})
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(31))
	for op := 0; op < 30000; op++ {
		key := uint64(rng.Intn(2000)) + 1
		k := layout.Key{Lo: key}
		switch rng.Intn(3) {
		case 0:
			if _, exists := oracle[key]; !exists {
				if tab.Insert(k, key*3) == nil {
					oracle[key] = key * 3
				}
			}
		case 1:
			v, ok := tab.Lookup(k)
			ov, ook := oracle[key]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("op %d: lookup(%d) = (%d,%v), oracle (%d,%v)", op, key, v, ok, ov, ook)
			}
		case 2:
			if ok := tab.Delete(k); ok != (func() bool { _, e := oracle[key]; return e })() {
				t.Fatalf("op %d: delete(%d) mismatch", op, key)
			}
			delete(oracle, key)
		}
	}
	if tab.Len() != uint64(len(oracle)) {
		t.Fatalf("Len = %d, oracle %d", tab.Len(), len(oracle))
	}
}

func TestRecoverReclaimsLeakedNode(t *testing.T) {
	mem := simMem(5)
	tab := New(mem, Options{Buckets: 64, Nodes: 128, Seed: 5})
	for i := uint64(1); i <= 50; i++ {
		tab.Insert(layout.Key{Lo: i}, i)
	}
	mem.CleanShutdown()

	// Simulate a crash between the pool allocation and the head
	// commit: allocate a node, persist its bit, never link it.
	leakedAddr, err := tab.pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	mem.CleanShutdown()
	_ = leakedAddr
	inUseBefore := tab.pool.InUse()

	rep, err2 := tab.Recover()
	if err2 != nil {
		t.Fatal(err2)
	}
	if rep.CellsCleared != 1 {
		t.Fatalf("reclaimed %d leaks, want 1", rep.CellsCleared)
	}
	if tab.pool.InUse() != inUseBefore-1 {
		t.Fatalf("InUse = %d", tab.pool.InUse())
	}
	if tab.Len() != 50 {
		t.Fatalf("count = %d", tab.Len())
	}
	for i := uint64(1); i <= 50; i++ {
		if v, ok := tab.Lookup(layout.Key{Lo: i}); !ok || v != i {
			t.Fatalf("key %d after recovery: (%d, %v)", i, v, ok)
		}
	}
}

func TestEveryCrashPointOfInsertIsAtomic(t *testing.T) {
	// The prepend insert commits with one head-pointer write; every
	// crash point must leave the table either without the item (maybe
	// with a leaked node, reclaimed by recovery) or with it complete.
	for offset := uint64(1); ; offset++ {
		mem := simMem(int64(100 + offset))
		tab := New(mem, Options{Buckets: 32, Nodes: 64, Seed: 6})
		for i := uint64(1); i <= 20; i++ {
			tab.Insert(layout.Key{Lo: i}, i)
		}
		mem.CleanShutdown()
		start := mem.Counters().Accesses
		mem.ScheduleShadowCrash(start+offset, 0.5)
		if err := tab.Insert(layout.Key{Lo: 777}, 42); err != nil {
			t.Fatal(err)
		}
		if !mem.AdoptShadowCrash() {
			break
		}
		if _, err := tab.Recover(); err != nil {
			t.Fatal(err)
		}
		if v, ok := tab.Lookup(layout.Key{Lo: 777}); ok && v != 42 {
			t.Fatalf("offset %d: torn insert value %d", offset, v)
		}
		for i := uint64(1); i <= 20; i++ {
			if v, ok := tab.Lookup(layout.Key{Lo: i}); !ok || v != i {
				t.Fatalf("offset %d: bystander %d damaged: (%d, %v)", offset, i, v, ok)
			}
		}
		// No leaked blocks survive recovery: pool usage equals items.
		if tab.pool.InUse() != tab.Len() {
			t.Fatalf("offset %d: pool %d blocks for %d items", offset, tab.pool.InUse(), tab.Len())
		}
	}
}
