// Package chained implements chained hashing over persistent memory —
// the classic DRAM scheme the paper's evaluation deliberately excludes:
// "chained hashing performs poorly under memory pressure due to
// frequent memory allocation and free calls" (§4.1). It is implemented
// here so that exclusion is a measured result rather than an assertion
// (ghbench -exp excluded).
//
// Layout: an array of bucket-head pointer words plus nodes from a
// persistent fixed-block allocator (internal/palloc). A node is
// [next][key...][value]. Node addresses are offset by +1 when stored in
// pointer words so that 0 remains the nil pointer even for a node at
// arena offset 0.
//
// Consistency protocol (all 8-byte-atomic commits, no logging):
//
//	insert: alloc node → write payload+next → persist → atomically
//	        point the bucket head at the node (the commit) → persist
//	delete: atomically splice the node out of its chain (one pointer
//	        word, the commit) → persist → free the node's block
//
// A crash can leak an allocated-but-unlinked node (insert) or a
// spliced-but-unfreed node (delete); Recover walks every chain and
// rebuilds the allocator bitmap and the count, exactly in the spirit of
// the paper's Algorithm 4.
package chained

import (
	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/palloc"
	"grouphash/internal/xhash"
)

// Options configures a table.
type Options struct {
	// Buckets is the number of chain heads (power of two).
	Buckets uint64
	// Nodes is the node-pool capacity; 0 means 2×Buckets.
	Nodes uint64
	// KeyBytes is 8 or 16.
	KeyBytes int
	// Seed selects the hash function.
	Seed uint64
}

// Table is a chained hash table over persistent memory.
type Table struct {
	mem     hashtab.Mem
	l       layout.Layout
	h       xhash.Func
	heads   uint64 // address of the bucket-head pointer array
	buckets uint64
	pool    *palloc.Pool
	count   hashtab.Count
}

// node word offsets: next pointer, key word(s), value.
func (t *Table) nodeNext(n uint64) uint64 { return n }
func (t *Table) nodeKeyLo(n uint64) uint64 {
	return n + layout.WordSize
}
func (t *Table) nodeKeyHi(n uint64) uint64 {
	return n + 2*layout.WordSize
}
func (t *Table) nodeVal(n uint64) uint64 {
	return n + uint64(1+t.l.KeyWords())*layout.WordSize
}

// nodeBytes is the node footprint for a layout.
func nodeBytes(l layout.Layout) uint64 {
	return uint64(2+l.KeyWords()) * layout.WordSize // next + key + value
}

// New allocates a table in mem.
func New(mem hashtab.Mem, opts Options) *Table {
	if opts.Buckets == 0 || opts.Buckets&(opts.Buckets-1) != 0 {
		panic("chained: Buckets must be a nonzero power of two")
	}
	if opts.KeyBytes == 0 {
		opts.KeyBytes = 8
	}
	if opts.Nodes == 0 {
		opts.Nodes = 2 * opts.Buckets
	}
	l := layout.ForKeySize(opts.KeyBytes)
	t := &Table{
		mem:     mem,
		l:       l,
		h:       xhash.NewFunc(opts.Seed, opts.Buckets, l.KeyWords() == 2),
		heads:   mem.Alloc(opts.Buckets*layout.WordSize, 64),
		buckets: opts.Buckets,
		count:   hashtab.NewCount(mem),
	}
	t.pool = palloc.New(mem, nodeBytes(l), opts.Nodes)
	return t
}

// Name implements hashtab.Table.
func (t *Table) Name() string { return "chained" }

// Len returns the number of stored items.
func (t *Table) Len() uint64 { return t.count.Get() }

// Capacity returns the node-pool capacity (the structural bound on
// items; bucket heads are not storage).
func (t *Table) Capacity() uint64 { return t.pool.Blocks() }

// LoadFactor returns items per node slot, 0 on a zero-capacity table.
func (t *Table) LoadFactor() float64 {
	if t.Capacity() == 0 {
		return 0
	}
	return float64(t.Len()) / float64(t.Capacity())
}

// FootprintBytes reports persistent bytes used: heads + pool — the
// memory-overhead comparison of the exclusion experiment.
func (t *Table) FootprintBytes() uint64 {
	return t.buckets*layout.WordSize + t.pool.FootprintBytes()
}

func (t *Table) headAddr(b uint64) uint64 { return t.heads + b*layout.WordSize }

// ptr encoding: node address + 1, so 0 is nil.
func enc(addr uint64) uint64 { return addr + 1 }
func dec(ptr uint64) (addr uint64, ok bool) {
	if ptr == 0 {
		return 0, false
	}
	return ptr - 1, true
}

// Insert prepends a node to the key's chain. The bucket-head update is
// the 8-byte failure-atomic commit.
func (t *Table) Insert(k layout.Key, v uint64) error {
	if !t.l.ValidKey(k) {
		return hashtab.ErrInvalidKey
	}
	node, err := t.pool.Alloc()
	if err != nil {
		return hashtab.ErrTableFull
	}
	head := t.headAddr(t.h.Index(k.Lo, k.Hi))
	old := t.mem.Read8(head)
	t.mem.Write8(t.nodeNext(node), old)
	t.mem.Write8(t.nodeKeyLo(node), k.Lo)
	if t.l.KeyWords() == 2 {
		t.mem.Write8(t.nodeKeyHi(node), k.Hi)
	}
	t.mem.Write8(t.nodeVal(node), v)
	t.mem.Persist(node, nodeBytes(t.l))
	t.mem.AtomicWrite8(head, enc(node))
	t.mem.Persist(head, layout.WordSize)
	t.count.Inc()
	return nil
}

// keyAt reads the key stored in a node.
func (t *Table) keyAt(node uint64) layout.Key {
	k := layout.Key{Lo: t.mem.Read8(t.nodeKeyLo(node))}
	if t.l.KeyWords() == 2 {
		k.Hi = t.mem.Read8(t.nodeKeyHi(node))
	}
	return k
}

// Lookup walks the key's chain.
func (t *Table) Lookup(k layout.Key) (uint64, bool) {
	ptr := t.mem.Read8(t.headAddr(t.h.Index(k.Lo, k.Hi)))
	for {
		node, ok := dec(ptr)
		if !ok {
			return 0, false
		}
		if t.keyAt(node) == t.l.Canon(k) {
			return t.mem.Read8(t.nodeVal(node)), true
		}
		ptr = t.mem.Read8(t.nodeNext(node))
	}
}

// Update overwrites an existing key's value in place.
func (t *Table) Update(k layout.Key, v uint64) bool {
	ptr := t.mem.Read8(t.headAddr(t.h.Index(k.Lo, k.Hi)))
	for {
		node, ok := dec(ptr)
		if !ok {
			return false
		}
		if t.keyAt(node) == t.l.Canon(k) {
			t.mem.AtomicWrite8(t.nodeVal(node), v)
			t.mem.Persist(t.nodeVal(node), layout.WordSize)
			return true
		}
		ptr = t.mem.Read8(t.nodeNext(node))
	}
}

// Delete splices the node out of its chain with one atomic pointer
// write, then frees its block.
func (t *Table) Delete(k layout.Key) bool {
	prev := t.headAddr(t.h.Index(k.Lo, k.Hi)) // address holding the ptr to cur
	ptr := t.mem.Read8(prev)
	for {
		node, ok := dec(ptr)
		if !ok {
			return false
		}
		next := t.mem.Read8(t.nodeNext(node))
		if t.keyAt(node) == t.l.Canon(k) {
			t.mem.AtomicWrite8(prev, next)
			t.mem.Persist(prev, layout.WordSize)
			t.pool.Free(node)
			t.count.Dec()
			return true
		}
		prev = t.nodeNext(node)
		ptr = next
	}
}

// Recover rebuilds consistency after a crash: walk every chain,
// reclaim leaked blocks into the allocator bitmap, and recount.
func (t *Table) Recover() (hashtab.RecoveryReport, error) {
	var rep hashtab.RecoveryReport
	var n uint64
	leaked := t.pool.Rebuild(func(yield func(addr uint64)) {
		for b := uint64(0); b < t.buckets; b++ {
			ptr := t.mem.Read8(t.headAddr(b))
			for {
				node, ok := dec(ptr)
				if !ok {
					break
				}
				yield(node)
				n++
				ptr = t.mem.Read8(t.nodeNext(node))
			}
		}
	})
	rep.CellsScanned = t.pool.Blocks()
	rep.CellsCleared = leaked
	rep.CountCorrected = t.count.Get() != n
	t.count.Set(n)
	return rep, nil
}

// CheckConsistency audits the structural invariants without repairing:
// every chain terminates (no cycles through torn next pointers), every
// node's key is valid and hashes to the bucket whose chain holds it,
// the persistent count matches the nodes on chains, and the allocator's
// in-use tally agrees (a mismatch means leaked or double-linked
// blocks).
func (t *Table) CheckConsistency() []string {
	var bad []string
	n := uint64(0)
	for b := uint64(0); b < t.buckets; b++ {
		ptr := t.mem.Read8(t.headAddr(b))
		for steps := uint64(0); ; steps++ {
			node, ok := dec(ptr)
			if !ok {
				break
			}
			if steps >= t.pool.Blocks() {
				bad = append(bad, "chain is longer than the node pool (cycle)")
				break
			}
			n++
			k := t.keyAt(node)
			if !t.l.ValidKey(k) {
				bad = append(bad, "chain node holds an invalid key")
			} else if t.h.Index(k.Lo, k.Hi) != b {
				bad = append(bad, "chain node holds a key that hashes to a different bucket")
			}
			ptr = t.mem.Read8(t.nodeNext(node))
		}
	}
	if t.count.Get() != n {
		bad = append(bad, "persistent count does not match nodes on chains")
	}
	if t.pool.InUse() != n {
		bad = append(bad, "allocator in-use tally does not match nodes on chains")
	}
	return bad
}
