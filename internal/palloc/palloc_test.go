package palloc

import (
	"testing"

	"grouphash/internal/native"
)

func TestAllocFreeCycle(t *testing.T) {
	mem := native.New(1 << 16)
	p := New(mem, 24, 10)
	if p.BlockSize() != 24 || p.Blocks() != 10 || p.InUse() != 0 {
		t.Fatalf("geometry: %d/%d/%d", p.BlockSize(), p.Blocks(), p.InUse())
	}
	var addrs []uint64
	for i := 0; i < 10; i++ {
		a, err := p.Alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		addrs = append(addrs, a)
	}
	if p.InUse() != 10 {
		t.Fatalf("InUse = %d", p.InUse())
	}
	if _, err := p.Alloc(); err != ErrPoolFull {
		t.Fatalf("full pool alloc = %v", err)
	}
	// Blocks are distinct and block-aligned.
	seen := map[uint64]bool{}
	for _, a := range addrs {
		if seen[a] {
			t.Fatal("duplicate block")
		}
		seen[a] = true
		p.Index(a) // must not panic
	}
	p.Free(addrs[3])
	p.Free(addrs[7])
	if p.InUse() != 8 {
		t.Fatalf("InUse = %d", p.InUse())
	}
	a, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if a != addrs[3] && a != addrs[7] {
		t.Fatal("freed blocks not reused")
	}
}

func TestBlockSizeRounding(t *testing.T) {
	mem := native.New(1 << 16)
	p := New(mem, 17, 4)
	if p.BlockSize() != 24 {
		t.Fatalf("block size = %d, want word-rounded 24", p.BlockSize())
	}
}

func TestDoubleFreePanics(t *testing.T) {
	mem := native.New(1 << 16)
	p := New(mem, 16, 4)
	a, _ := p.Alloc()
	p.Free(a)
	defer func() {
		if recover() == nil {
			t.Fatal("expected double-free panic")
		}
	}()
	p.Free(a)
}

func TestIndexValidation(t *testing.T) {
	mem := native.New(1 << 16)
	p := New(mem, 16, 4)
	for _, f := range []func(){
		func() { p.Index(3) },                // before arena / misaligned
		func() { p.Index(p.Addr(0) + 5) },    // misaligned
		func() { p.Index(p.Addr(3) + 16*4) }, // past the arena
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRebuildReclaimsLeaks(t *testing.T) {
	mem := native.New(1 << 16)
	p := New(mem, 16, 8)
	a0, _ := p.Alloc()
	a1, _ := p.Alloc()
	a2, _ := p.Alloc()
	_ = a1 // a1 will be "leaked": allocated but not reachable

	leaked := p.Rebuild(func(yield func(uint64)) {
		yield(a0)
		yield(a2)
	})
	if leaked != 1 {
		t.Fatalf("leaked = %d, want 1", leaked)
	}
	if p.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", p.InUse())
	}
	// The reclaimed block is allocatable again.
	got, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if got != a1 {
		t.Fatalf("realloc = %d, want the reclaimed %d", got, a1)
	}
}

func TestRebuildSetsMissingBits(t *testing.T) {
	// The dual crash case: the application reaches a block whose bit
	// was never persisted... which our protocol prevents (bit set
	// before linking), but Rebuild must handle it anyway for
	// idempotence: a bit cleared for a reachable block gets re-set.
	mem := native.New(1 << 16)
	p := New(mem, 16, 4)
	a, _ := p.Alloc()
	p.Free(a) // bit cleared; pretend the app still references it
	if n := p.Rebuild(func(yield func(uint64)) { yield(a) }); n != 0 {
		t.Fatalf("reclaimed %d, want 0", n)
	}
	if p.InUse() != 1 {
		t.Fatalf("InUse = %d", p.InUse())
	}
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err) // 3 blocks remain
	}
}

func TestFootprint(t *testing.T) {
	mem := native.New(1 << 20)
	p := New(mem, 32, 100)
	want := uint64(2*8 + 100*32) // 100 bits → 2 bitmap words
	if p.FootprintBytes() != want {
		t.Fatalf("footprint = %d, want %d", p.FootprintBytes(), want)
	}
}

func TestManyBlocksAcrossBitmapWords(t *testing.T) {
	mem := native.New(1 << 20)
	p := New(mem, 16, 200) // 4 bitmap words
	addrs := make([]uint64, 200)
	for i := range addrs {
		a, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
	}
	for i := 0; i < 200; i += 2 {
		p.Free(addrs[i])
	}
	for i := 0; i < 100; i++ {
		if _, err := p.Alloc(); err != nil {
			t.Fatalf("realloc %d: %v", i, err)
		}
	}
	if _, err := p.Alloc(); err != ErrPoolFull {
		t.Fatal("pool should be exactly full")
	}
}
