// Package palloc is a persistent fixed-block allocator over the
// hashtab.Mem interface — the substrate chained hashing needs ("chained
// hashing performs poorly under memory pressure due to frequent memory
// allocation and free calls", §4.1 of the paper; demonstrating that
// claim requires actually having an allocator).
//
// Blocks are allocated out of a contiguous arena, tracked by a bitmap
// of 64-block words. Allocation and free each flip one bitmap bit with
// a read-modify-write of its word, persisted immediately — the word
// write is failure atomic, so the bitmap itself never tears. What a
// crash CAN leave behind is a bit set for a block the application never
// got to link into its structure (an allocation leak) or a bit cleared
// while the block is still referenced (impossible if the application
// unlinks before freeing, the discipline chained hashing follows).
// Rebuild reconstructs the bitmap from the application's reachable-
// block walk, exactly like the paper's Algorithm-4 scan recounts cells.
package palloc

import (
	"fmt"

	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
)

// Pool is a fixed-block persistent allocator. Not safe for concurrent
// use.
type Pool struct {
	mem       hashtab.Mem
	blockSize uint64
	blocks    uint64
	bitmap    uint64 // address of the bitmap words
	arena     uint64 // address of block 0
	cursor    uint64 // next-fit scan position (volatile; any value is safe)
	inUse     uint64 // volatile count (rebuilt by Recover/Open scans)
}

// ErrPoolFull is returned when every block is allocated.
var ErrPoolFull = fmt.Errorf("palloc: pool full")

// New creates a pool of `blocks` blocks of blockSize bytes (rounded up
// to whole words).
func New(mem hashtab.Mem, blockSize, blocks uint64) *Pool {
	if blocks == 0 {
		panic("palloc: need at least one block")
	}
	blockSize = (blockSize + layout.WordSize - 1) &^ uint64(layout.WordSize-1)
	words := (blocks + 63) / 64
	p := &Pool{
		mem:       mem,
		blockSize: blockSize,
		blocks:    blocks,
	}
	p.bitmap = mem.Alloc(words*layout.WordSize, 64)
	p.arena = mem.Alloc(blocks*blockSize, 64)
	return p
}

// BlockSize returns the (word-rounded) block size.
func (p *Pool) BlockSize() uint64 { return p.blockSize }

// Blocks returns the pool capacity in blocks.
func (p *Pool) Blocks() uint64 { return p.blocks }

// InUse returns the number of allocated blocks.
func (p *Pool) InUse() uint64 { return p.inUse }

// Addr returns the address of block i.
func (p *Pool) Addr(i uint64) uint64 { return p.arena + i*p.blockSize }

// Index returns the block index of an address previously returned by
// Alloc/Addr.
func (p *Pool) Index(addr uint64) uint64 {
	if addr < p.arena || (addr-p.arena)%p.blockSize != 0 {
		panic(fmt.Sprintf("palloc: %d is not a block address", addr))
	}
	i := (addr - p.arena) / p.blockSize
	if i >= p.blocks {
		panic(fmt.Sprintf("palloc: block index %d out of range", i))
	}
	return i
}

func (p *Pool) wordOf(i uint64) (addr uint64, bit uint) {
	return p.bitmap + (i/64)*layout.WordSize, uint(i % 64)
}

// allocated reports whether block i's bit is set.
func (p *Pool) allocated(i uint64) bool {
	addr, bit := p.wordOf(i)
	return p.mem.Read8(addr)>>bit&1 == 1
}

// setBit flips block i's bit to v with an atomic persisted word write.
func (p *Pool) setBit(i uint64, v bool) {
	addr, bit := p.wordOf(i)
	w := p.mem.Read8(addr)
	if v {
		w |= 1 << bit
	} else {
		w &^= 1 << bit
	}
	p.mem.AtomicWrite8(addr, w)
	p.mem.Persist(addr, layout.WordSize)
}

// Alloc reserves a free block and returns its address. Next-fit scan
// from the last allocation point keeps the common case O(1).
func (p *Pool) Alloc() (uint64, error) {
	if p.inUse >= p.blocks {
		return 0, ErrPoolFull
	}
	for scanned := uint64(0); scanned < p.blocks; scanned++ {
		i := (p.cursor + scanned) % p.blocks
		if !p.allocated(i) {
			p.setBit(i, true)
			p.cursor = (i + 1) % p.blocks
			p.inUse++
			return p.Addr(i), nil
		}
	}
	return 0, ErrPoolFull
}

// Free releases a block. The application must have unlinked it first:
// after Free returns, the block may be reallocated and overwritten.
func (p *Pool) Free(addr uint64) {
	i := p.Index(addr)
	if !p.allocated(i) {
		panic(fmt.Sprintf("palloc: double free of block %d", i))
	}
	p.setBit(i, false)
	if i < p.cursor {
		p.cursor = i
	}
	p.inUse--
}

// Rebuild reconstructs the bitmap from the application's set of live
// block addresses (the recovery path): bits for unreachable blocks are
// cleared (leaked allocations reclaimed), bits for reachable blocks
// set. Returns the number of leaked blocks reclaimed.
func (p *Pool) Rebuild(live func(yield func(addr uint64))) uint64 {
	reachable := make(map[uint64]bool)
	live(func(addr uint64) { reachable[p.Index(addr)] = true })
	var leaked uint64
	p.inUse = 0
	for i := uint64(0); i < p.blocks; i++ {
		want := reachable[i]
		if want {
			p.inUse++
		}
		if p.allocated(i) != want {
			if !want {
				leaked++
			}
			p.setBit(i, want)
		}
	}
	p.cursor = 0
	return leaked
}

// FootprintBytes reports the persistent bytes the pool occupies (bitmap
// plus arena) — the memory-overhead side of the paper's chained-hashing
// exclusion.
func (p *Pool) FootprintBytes() uint64 {
	words := (p.blocks + 63) / 64
	return words*layout.WordSize + p.blocks*p.blockSize
}
