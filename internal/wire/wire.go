// Package wire defines the length-prefixed binary protocol the network
// server (internal/server) and client (internal/client) speak over a
// TCP stream.
//
// Framing: every message is a little-endian uint32 body length
// followed by the body. Requests carry a fixed 25-byte body — opcode
// (1), key low word (8), key high word (8), value (8) — so a request
// never needs a second allocation or a variable-length parse on the
// hot path. Responses carry a 9-byte fixed prefix — status (1), value
// (8) — plus an optional free-form payload (used only by OpStats).
//
// Pipelining: a client may write any number of requests before reading
// responses; the server processes each connection's requests strictly
// in order and writes responses in the same order, so the k-th
// response always answers the k-th request. No request ids are needed.
//
// The protocol is deliberately minimal — single-word values, fixed-key
// sizes — because it serves exactly the store the paper defines:
// fixed-size keys, one-word values (§4.1's item formats).
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"grouphash/internal/layout"
)

// Opcodes. A request's opcode selects the store operation; fields the
// operation does not use (e.g. Value on a Get) are ignored.
const (
	// OpPing checks liveness; the server answers StatusOK.
	OpPing = byte(iota + 1)
	// OpGet looks up Key; StatusOK carries the value, StatusNotFound
	// reports absence.
	OpGet
	// OpPut upserts (Key, Value) atomically (no duplicate items under
	// concurrent Puts of one key).
	OpPut
	// OpInsert inserts (Key, Value) with the paper's Algorithm-1
	// semantics: no existing-key check, duplicates allowed.
	OpInsert
	// OpDelete removes Key; StatusNotFound reports it was absent.
	OpDelete
	// OpLen returns the store's item count in the response value.
	OpLen
	// OpStats returns the server's counters and latency quantiles. The
	// request's Value field selects the payload format (StatsFormatText
	// and friends); unknown values fall back to text, so old clients
	// keep working against new servers and vice versa.
	OpStats
	// OpBatch carries N fixed-size sub-operations in ONE frame: the body
	// is the OpBatch byte followed by N packed sub-request bodies (same
	// 25-byte encoding as a single request). The server answers with ONE
	// frame of N packed 9-byte sub-responses, released only when every
	// logged sub-operation is durable — an acked batch is all-or-nothing
	// on the wire. Sub-operations may be OpPing/OpGet/OpPut/OpInsert/
	// OpDelete/OpLen; OpStats and nested OpBatch answer StatusBadRequest.
	OpBatch
)

// OpStats payload formats, carried in the request's Value field (which
// OpStats previously ignored — old clients send 0 and get text).
const (
	// StatsFormatText selects the human-readable one-line text dump.
	StatsFormatText = uint64(iota)
	// StatsFormatJSON selects a machine-readable JSON document of the
	// same counters and latency quantiles.
	StatsFormatJSON
	// StatsFormatProm selects the Prometheus text exposition of the
	// server's metrics registry (the same bytes GET /metrics serves),
	// truncated at a line boundary if it exceeds the frame limit.
	StatsFormatProm
)

// Status codes carried in the first response byte.
const (
	// StatusOK reports success.
	StatusOK = byte(iota)
	// StatusNotFound reports an absent key (Get, Delete).
	StatusNotFound
	// StatusFull maps hashtab.ErrTableFull: the store cannot place the
	// item even after online expansion — seen only when expansion is
	// disabled or the arena itself is exhausted.
	StatusFull
	// StatusInvalidKey maps hashtab.ErrInvalidKey (the compact
	// layout's reserved zero key).
	StatusInvalidKey
	// StatusBadRequest reports an opcode the server does not know.
	StatusBadRequest
	// StatusDraining reports the server is shutting down and no longer
	// accepts writes.
	StatusDraining
)

// ReqBodyLen is the fixed request body size: op + key.Lo + key.Hi +
// value.
const ReqBodyLen = 1 + 8 + 8 + 8

// RespFixedLen is the fixed response prefix size: status + value.
const RespFixedLen = 1 + 8

// MaxFrame caps any frame body; larger prefixes are a protocol error
// (a desynchronised or hostile peer), not an allocation request.
const MaxFrame = 1 << 16

// MaxBatchOps is the most sub-operations one OpBatch frame can carry:
// the batch body (1 opcode byte + N packed sub-requests) must fit
// MaxFrame, and the batch response (N packed sub-responses) always
// does too (RespFixedLen < ReqBodyLen).
const MaxBatchOps = (MaxFrame - 1) / ReqBodyLen

// ErrFrame reports a malformed frame (bad length for the message
// type). Connections that see it must be torn down: framing is lost.
var ErrFrame = errors.New("wire: malformed frame")

// Request is one client->server message.
type Request struct {
	// Op is the opcode (OpGet, OpPut, ...).
	Op byte
	// Key is the target key; ignored by OpPing/OpLen/OpStats.
	Key layout.Key
	// Value is the payload word for OpPut/OpInsert.
	Value uint64
}

// Response is one server->client message. Extra is non-nil only for
// payload-carrying responses (OpStats).
type Response struct {
	// Status is the result code (StatusOK, ...).
	Status byte
	// Value is the result word (Get value, Len count).
	Value uint64
	// Extra is the optional free-form payload.
	Extra []byte
}

// AppendRequest appends r's frame to buf and returns the extended
// slice — allocation-free when buf has capacity, the building block
// for pipelined batches.
func AppendRequest(buf []byte, r Request) []byte {
	var b [4 + ReqBodyLen]byte
	binary.LittleEndian.PutUint32(b[0:4], ReqBodyLen)
	b[4] = r.Op
	binary.LittleEndian.PutUint64(b[5:13], r.Key.Lo)
	binary.LittleEndian.PutUint64(b[13:21], r.Key.Hi)
	binary.LittleEndian.PutUint64(b[21:29], r.Value)
	return append(buf, b[:]...)
}

// WriteRequest writes one request frame to w.
func WriteRequest(w io.Writer, r Request) error {
	_, err := w.Write(AppendRequest(nil, r))
	return err
}

// ReadRequest reads one request frame from r. A clean EOF before the
// first length byte returns io.EOF untouched, so callers can tell
// "connection closed between requests" from a truncated frame
// (io.ErrUnexpectedEOF).
func ReadRequest(r io.Reader) (Request, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Request{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n != ReqBodyLen {
		return Request{}, fmt.Errorf("%w: request body %d bytes, want %d", ErrFrame, n, ReqBodyLen)
	}
	var b [ReqBodyLen]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return Request{}, noEOF(err)
	}
	return Request{
		Op:    b[0],
		Key:   layout.Key{Lo: binary.LittleEndian.Uint64(b[1:9]), Hi: binary.LittleEndian.Uint64(b[9:17])},
		Value: binary.LittleEndian.Uint64(b[17:25]),
	}, nil
}

// WriteResponse writes one response frame to w.
func WriteResponse(w io.Writer, resp Response) error {
	if len(resp.Extra) > MaxFrame-RespFixedLen {
		return fmt.Errorf("%w: %d-byte extra payload", ErrFrame, len(resp.Extra))
	}
	if bw, ok := w.(*bufio.Writer); ok {
		// Encode straight into the writer's own buffer: a local scratch
		// array would escape through the io.Writer parameter and cost
		// one heap allocation per response on the server's ack path.
		// Pinned at 0 allocs/op by BenchmarkWriteResponseFixed.
		if bw.Available() < 4+RespFixedLen {
			if err := bw.Flush(); err != nil {
				return err
			}
		}
		b := bw.AvailableBuffer()
		b = binary.LittleEndian.AppendUint32(b, uint32(RespFixedLen+len(resp.Extra)))
		b = append(b, resp.Status)
		b = binary.LittleEndian.AppendUint64(b, resp.Value)
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if len(resp.Extra) > 0 {
			if _, err := bw.Write(resp.Extra); err != nil {
				return err
			}
		}
		return nil
	}
	var b [4 + RespFixedLen]byte
	binary.LittleEndian.PutUint32(b[0:4], uint32(RespFixedLen+len(resp.Extra)))
	b[4] = resp.Status
	binary.LittleEndian.PutUint64(b[5:13], resp.Value)
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	if len(resp.Extra) > 0 {
		if _, err := w.Write(resp.Extra); err != nil {
			return err
		}
	}
	return nil
}

// ReadResponse reads one response frame from r, with the same EOF
// convention as ReadRequest. When r is a *bufio.Reader — every real
// client — the no-Extra case (every Get/Put/Insert/Delete on the hot
// path) decodes straight out of the reader's own buffer via
// Peek/Discard: zero allocations per response, pinned by
// BenchmarkReadResponseFixed. Any other reader pays a scratch-buffer
// escape; only the Extra-carrying case ever allocates a returned slice.
func ReadResponse(r io.Reader) (Response, error) {
	if br, ok := r.(*bufio.Reader); ok {
		return readResponseBuffered(br)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Response{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < RespFixedLen || n > MaxFrame {
		return Response{}, fmt.Errorf("%w: response body %d bytes", ErrFrame, n)
	}
	if n == RespFixedLen {
		var b [RespFixedLen]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return Response{}, noEOF(err)
		}
		return Response{Status: b[0], Value: binary.LittleEndian.Uint64(b[1:9])}, nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return Response{}, noEOF(err)
	}
	return Response{Status: b[0], Value: binary.LittleEndian.Uint64(b[1:9]), Extra: b[RespFixedLen:]}, nil
}

// readResponseBuffered is ReadResponse for buffered streams: the frame
// is decoded in place from the bufio buffer (Peek never allocates; the
// minimum bufio buffer of 16 bytes covers the 13-byte fixed frame).
func readResponseBuffered(br *bufio.Reader) (Response, error) {
	hdr, err := br.Peek(4)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return Response{}, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n < RespFixedLen || n > MaxFrame {
		return Response{}, fmt.Errorf("%w: response body %d bytes", ErrFrame, n)
	}
	if n == RespFixedLen {
		b, err := br.Peek(4 + RespFixedLen)
		if err != nil {
			return Response{}, noEOF(err)
		}
		resp := Response{Status: b[4], Value: binary.LittleEndian.Uint64(b[5:13])}
		br.Discard(4 + RespFixedLen)
		return resp, nil
	}
	br.Discard(4)
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return Response{}, noEOF(err)
	}
	return Response{Status: b[0], Value: binary.LittleEndian.Uint64(b[1:9]), Extra: b[RespFixedLen:]}, nil
}

// noEOF converts a mid-frame EOF to ErrUnexpectedEOF: the stream died
// inside a frame, which is never a clean close.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// AppendBatchRequest appends one OpBatch frame carrying subs to buf and
// returns the extended slice. The sub-requests' own opcodes travel in
// their packed bodies; len(subs) must be in [1, MaxBatchOps].
func AppendBatchRequest(buf []byte, subs []Request) ([]byte, error) {
	if len(subs) == 0 || len(subs) > MaxBatchOps {
		return buf, fmt.Errorf("%w: batch of %d sub-ops", ErrFrame, len(subs))
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(1+len(subs)*ReqBodyLen))
	hdr[4] = OpBatch
	buf = append(buf, hdr[:]...)
	for _, r := range subs {
		var b [ReqBodyLen]byte
		b[0] = r.Op
		binary.LittleEndian.PutUint64(b[1:9], r.Key.Lo)
		binary.LittleEndian.PutUint64(b[9:17], r.Key.Hi)
		binary.LittleEndian.PutUint64(b[17:25], r.Value)
		buf = append(buf, b[:]...)
	}
	return buf, nil
}

// decodeRequestBody parses one packed 25-byte request body.
func decodeRequestBody(b []byte) Request {
	return Request{
		Op:    b[0],
		Key:   layout.Key{Lo: binary.LittleEndian.Uint64(b[1:9]), Hi: binary.LittleEndian.Uint64(b[9:17])},
		Value: binary.LittleEndian.Uint64(b[17:25]),
	}
}

// WriteBatchResponses writes the batch response frame answering an
// OpBatch request: one length prefix, then len(resps) packed 9-byte
// sub-responses. When w is a *bufio.Writer — the server's ack path —
// sub-responses are encoded in place in the writer's buffer: zero
// allocations per frame, pinned by BenchmarkWriteBatchResponses.
// Extra payloads are not representable in a batch (OpStats is refused
// inside one).
func WriteBatchResponses(w io.Writer, resps []Response) error {
	if len(resps) == 0 || len(resps) > MaxBatchOps {
		return fmt.Errorf("%w: batch of %d responses", ErrFrame, len(resps))
	}
	if bw, ok := w.(*bufio.Writer); ok {
		if bw.Available() < 4 {
			if err := bw.Flush(); err != nil {
				return err
			}
		}
		b := bw.AvailableBuffer()
		b = binary.LittleEndian.AppendUint32(b, uint32(len(resps)*RespFixedLen))
		if _, err := bw.Write(b); err != nil {
			return err
		}
		for i := range resps {
			if bw.Available() < RespFixedLen {
				if err := bw.Flush(); err != nil {
					return err
				}
			}
			b = bw.AvailableBuffer()
			b = append(b, resps[i].Status)
			b = binary.LittleEndian.AppendUint64(b, resps[i].Value)
			if _, err := bw.Write(b); err != nil {
				return err
			}
		}
		return nil
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(resps)*RespFixedLen))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, resp := range resps {
		var b [RespFixedLen]byte
		b[0] = resp.Status
		binary.LittleEndian.PutUint64(b[1:9], resp.Value)
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadBatchResponses reads the batch response frame answering an
// OpBatch request of len(dst) sub-operations, decoding into dst (which
// the caller sizes — pipelining means it knows exactly how many
// sub-responses the frame holds). When r is a *bufio.Reader — every
// real client — sub-responses decode in place from the reader's buffer:
// zero allocations per batch, whatever its size.
func ReadBatchResponses(r io.Reader, dst []Response) error {
	wantBody := uint32(len(dst) * RespFixedLen)
	if br, ok := r.(*bufio.Reader); ok {
		hdr, err := br.Peek(4)
		if err != nil {
			if err == io.EOF && len(hdr) > 0 {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
		if n := binary.LittleEndian.Uint32(hdr); n != wantBody {
			return fmt.Errorf("%w: batch response body %d bytes, want %d sub-responses", ErrFrame, n, len(dst))
		}
		br.Discard(4)
		for i := range dst {
			b, err := br.Peek(RespFixedLen)
			if err != nil {
				return noEOF(err)
			}
			dst[i] = Response{Status: b[0], Value: binary.LittleEndian.Uint64(b[1:9])}
			br.Discard(RespFixedLen)
		}
		return nil
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	if n := binary.LittleEndian.Uint32(hdr[:]); n != wantBody {
		return fmt.Errorf("%w: batch response body %d bytes, want %d sub-responses", ErrFrame, n, len(dst))
	}
	b := make([]byte, wantBody)
	if _, err := io.ReadFull(r, b); err != nil {
		return noEOF(err)
	}
	for i := range dst {
		off := i * RespFixedLen
		dst[i] = Response{Status: b[off], Value: binary.LittleEndian.Uint64(b[off+1 : off+9])}
	}
	return nil
}

// RequestReader decodes request frames from a stream — single requests
// and OpBatch frames — reusing one body buffer and one sub-request
// slice across calls, so a serving loop pays zero steady-state
// allocations per frame. Not safe for concurrent use.
type RequestReader struct {
	r io.Reader
	// scratch holds the 4-byte length prefix and single-request bodies;
	// it lives in the (heap-allocated) reader so reads never push a
	// stack buffer through the io.Reader interface, which would escape
	// and cost an allocation per frame.
	scratch [4 + ReqBodyLen]byte
	body    []byte // batch bodies, grown on demand and reused
	subs    []Request
}

// NewRequestReader wraps r (typically a *bufio.Reader).
func NewRequestReader(r io.Reader) *RequestReader {
	return &RequestReader{r: r}
}

// Next reads one frame. A single request returns (req, nil, nil); an
// OpBatch frame returns (Request{Op: OpBatch}, subs, nil) where subs
// holds the decoded sub-requests and is valid only until the next call.
// EOF conventions match ReadRequest: a clean close between frames is
// io.EOF, a mid-frame close io.ErrUnexpectedEOF.
func (rr *RequestReader) Next() (Request, []Request, error) {
	if _, err := io.ReadFull(rr.r, rr.scratch[:4]); err != nil {
		return Request{}, nil, err
	}
	n := binary.LittleEndian.Uint32(rr.scratch[:4])
	if n == ReqBodyLen {
		b := rr.scratch[4 : 4+ReqBodyLen]
		if _, err := io.ReadFull(rr.r, b); err != nil {
			return Request{}, nil, noEOF(err)
		}
		req := decodeRequestBody(b)
		if req.Op == OpBatch {
			// A batch frame must carry at least one sub-op; a 25-byte
			// OpBatch body would decode as zero sub-ops plus garbage.
			return Request{}, nil, fmt.Errorf("%w: OpBatch frame with single-request body", ErrFrame)
		}
		return req, nil, nil
	}
	// Anything that is not a single request must be a well-formed batch:
	// the OpBatch byte plus a whole number of packed sub-requests.
	if n > MaxFrame || n < 1+ReqBodyLen || (n-1)%ReqBodyLen != 0 {
		return Request{}, nil, fmt.Errorf("%w: request body %d bytes", ErrFrame, n)
	}
	if cap(rr.body) < int(n) {
		rr.body = make([]byte, n)
	}
	body := rr.body[:n]
	if _, err := io.ReadFull(rr.r, body); err != nil {
		return Request{}, nil, noEOF(err)
	}
	if body[0] != OpBatch {
		return Request{}, nil, fmt.Errorf("%w: %d-byte body with opcode %d", ErrFrame, n, body[0])
	}
	count := int(n-1) / ReqBodyLen
	if cap(rr.subs) < count {
		rr.subs = make([]Request, count)
	}
	subs := rr.subs[:count]
	for i := 0; i < count; i++ {
		off := 1 + i*ReqBodyLen
		subs[i] = decodeRequestBody(body[off : off+ReqBodyLen])
	}
	return Request{Op: OpBatch}, subs, nil
}
