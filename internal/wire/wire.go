// Package wire defines the length-prefixed binary protocol the network
// server (internal/server) and client (internal/client) speak over a
// TCP stream.
//
// Framing: every message is a little-endian uint32 body length
// followed by the body. Requests carry a fixed 25-byte body — opcode
// (1), key low word (8), key high word (8), value (8) — so a request
// never needs a second allocation or a variable-length parse on the
// hot path. Responses carry a 9-byte fixed prefix — status (1), value
// (8) — plus an optional free-form payload (used only by OpStats).
//
// Pipelining: a client may write any number of requests before reading
// responses; the server processes each connection's requests strictly
// in order and writes responses in the same order, so the k-th
// response always answers the k-th request. No request ids are needed.
//
// The protocol is deliberately minimal — single-word values, fixed-key
// sizes — because it serves exactly the store the paper defines:
// fixed-size keys, one-word values (§4.1's item formats).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"grouphash/internal/layout"
)

// Opcodes. A request's opcode selects the store operation; fields the
// operation does not use (e.g. Value on a Get) are ignored.
const (
	// OpPing checks liveness; the server answers StatusOK.
	OpPing = byte(iota + 1)
	// OpGet looks up Key; StatusOK carries the value, StatusNotFound
	// reports absence.
	OpGet
	// OpPut upserts (Key, Value) atomically (no duplicate items under
	// concurrent Puts of one key).
	OpPut
	// OpInsert inserts (Key, Value) with the paper's Algorithm-1
	// semantics: no existing-key check, duplicates allowed.
	OpInsert
	// OpDelete removes Key; StatusNotFound reports it was absent.
	OpDelete
	// OpLen returns the store's item count in the response value.
	OpLen
	// OpStats returns the server's counters and latency quantiles. The
	// request's Value field selects the payload format (StatsFormatText
	// and friends); unknown values fall back to text, so old clients
	// keep working against new servers and vice versa.
	OpStats
)

// OpStats payload formats, carried in the request's Value field (which
// OpStats previously ignored — old clients send 0 and get text).
const (
	// StatsFormatText selects the human-readable one-line text dump.
	StatsFormatText = uint64(iota)
	// StatsFormatJSON selects a machine-readable JSON document of the
	// same counters and latency quantiles.
	StatsFormatJSON
	// StatsFormatProm selects the Prometheus text exposition of the
	// server's metrics registry (the same bytes GET /metrics serves),
	// truncated at a line boundary if it exceeds the frame limit.
	StatsFormatProm
)

// Status codes carried in the first response byte.
const (
	// StatusOK reports success.
	StatusOK = byte(iota)
	// StatusNotFound reports an absent key (Get, Delete).
	StatusNotFound
	// StatusFull maps hashtab.ErrTableFull: the store cannot place the
	// item even after online expansion — seen only when expansion is
	// disabled or the arena itself is exhausted.
	StatusFull
	// StatusInvalidKey maps hashtab.ErrInvalidKey (the compact
	// layout's reserved zero key).
	StatusInvalidKey
	// StatusBadRequest reports an opcode the server does not know.
	StatusBadRequest
	// StatusDraining reports the server is shutting down and no longer
	// accepts writes.
	StatusDraining
)

// ReqBodyLen is the fixed request body size: op + key.Lo + key.Hi +
// value.
const ReqBodyLen = 1 + 8 + 8 + 8

// RespFixedLen is the fixed response prefix size: status + value.
const RespFixedLen = 1 + 8

// MaxFrame caps any frame body; larger prefixes are a protocol error
// (a desynchronised or hostile peer), not an allocation request.
const MaxFrame = 1 << 16

// ErrFrame reports a malformed frame (bad length for the message
// type). Connections that see it must be torn down: framing is lost.
var ErrFrame = errors.New("wire: malformed frame")

// Request is one client->server message.
type Request struct {
	// Op is the opcode (OpGet, OpPut, ...).
	Op byte
	// Key is the target key; ignored by OpPing/OpLen/OpStats.
	Key layout.Key
	// Value is the payload word for OpPut/OpInsert.
	Value uint64
}

// Response is one server->client message. Extra is non-nil only for
// payload-carrying responses (OpStats).
type Response struct {
	// Status is the result code (StatusOK, ...).
	Status byte
	// Value is the result word (Get value, Len count).
	Value uint64
	// Extra is the optional free-form payload.
	Extra []byte
}

// AppendRequest appends r's frame to buf and returns the extended
// slice — allocation-free when buf has capacity, the building block
// for pipelined batches.
func AppendRequest(buf []byte, r Request) []byte {
	var b [4 + ReqBodyLen]byte
	binary.LittleEndian.PutUint32(b[0:4], ReqBodyLen)
	b[4] = r.Op
	binary.LittleEndian.PutUint64(b[5:13], r.Key.Lo)
	binary.LittleEndian.PutUint64(b[13:21], r.Key.Hi)
	binary.LittleEndian.PutUint64(b[21:29], r.Value)
	return append(buf, b[:]...)
}

// WriteRequest writes one request frame to w.
func WriteRequest(w io.Writer, r Request) error {
	_, err := w.Write(AppendRequest(nil, r))
	return err
}

// ReadRequest reads one request frame from r. A clean EOF before the
// first length byte returns io.EOF untouched, so callers can tell
// "connection closed between requests" from a truncated frame
// (io.ErrUnexpectedEOF).
func ReadRequest(r io.Reader) (Request, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Request{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n != ReqBodyLen {
		return Request{}, fmt.Errorf("%w: request body %d bytes, want %d", ErrFrame, n, ReqBodyLen)
	}
	var b [ReqBodyLen]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return Request{}, noEOF(err)
	}
	return Request{
		Op:    b[0],
		Key:   layout.Key{Lo: binary.LittleEndian.Uint64(b[1:9]), Hi: binary.LittleEndian.Uint64(b[9:17])},
		Value: binary.LittleEndian.Uint64(b[17:25]),
	}, nil
}

// WriteResponse writes one response frame to w.
func WriteResponse(w io.Writer, resp Response) error {
	if len(resp.Extra) > MaxFrame-RespFixedLen {
		return fmt.Errorf("%w: %d-byte extra payload", ErrFrame, len(resp.Extra))
	}
	var b [4 + RespFixedLen]byte
	binary.LittleEndian.PutUint32(b[0:4], uint32(RespFixedLen+len(resp.Extra)))
	b[4] = resp.Status
	binary.LittleEndian.PutUint64(b[5:13], resp.Value)
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	if len(resp.Extra) > 0 {
		if _, err := w.Write(resp.Extra); err != nil {
			return err
		}
	}
	return nil
}

// ReadResponse reads one response frame from r, with the same EOF
// convention as ReadRequest.
func ReadResponse(r io.Reader) (Response, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Response{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < RespFixedLen || n > MaxFrame {
		return Response{}, fmt.Errorf("%w: response body %d bytes", ErrFrame, n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return Response{}, noEOF(err)
	}
	resp := Response{Status: b[0], Value: binary.LittleEndian.Uint64(b[1:9])}
	if n > RespFixedLen {
		resp.Extra = b[RespFixedLen:]
	}
	return resp, nil
}

// noEOF converts a mid-frame EOF to ErrUnexpectedEOF: the stream died
// inside a frame, which is never a clean close.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
