package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"grouphash/internal/layout"
)

func TestBatchRoundtrip(t *testing.T) {
	subs := []Request{
		{Op: OpPut, Key: layout.Key{Lo: 1, Hi: 2}, Value: 3},
		{Op: OpGet, Key: layout.Key{Lo: 7, Hi: ^uint64(0)}},
		{Op: OpInsert, Key: layout.Key{Lo: 9}, Value: 11},
		{Op: OpDelete, Key: layout.Key{Lo: 13}},
		{Op: OpLen},
	}
	frame, err := AppendBatchRequest(nil, subs)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 + 1 + len(subs)*ReqBodyLen; len(frame) != want {
		t.Fatalf("batch frame is %d bytes, want %d", len(frame), want)
	}
	rr := NewRequestReader(bytes.NewReader(frame))
	req, got, err := rr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpBatch {
		t.Fatalf("batch frame decoded as op %d", req.Op)
	}
	if len(got) != len(subs) {
		t.Fatalf("decoded %d sub-ops, want %d", len(got), len(subs))
	}
	for i := range subs {
		if got[i] != subs[i] {
			t.Fatalf("sub-op %d = %+v, want %+v", i, got[i], subs[i])
		}
	}
	if _, _, err := rr.Next(); err != io.EOF {
		t.Fatalf("empty stream read = %v, want io.EOF", err)
	}

	// And the response leg.
	resps := []Response{
		{Status: StatusOK, Value: 42},
		{Status: StatusNotFound},
		{Status: StatusOK},
		{Status: StatusOK, Value: 1},
		{Status: StatusOK, Value: 5},
	}
	var buf bytes.Buffer
	if err := WriteBatchResponses(&buf, resps); err != nil {
		t.Fatal(err)
	}
	back := make([]Response, len(resps))
	if err := ReadBatchResponses(&buf, back); err != nil {
		t.Fatal(err)
	}
	for i := range resps {
		if back[i].Status != resps[i].Status || back[i].Value != resps[i].Value {
			t.Fatalf("sub-response %d = %+v, want %+v", i, back[i], resps[i])
		}
	}
}

// TestRequestReaderSingles checks the reader decodes a pipelined mix of
// single frames and batch frames in order, matching ReadRequest's
// conventions on the single path.
func TestRequestReaderSingles(t *testing.T) {
	var frame []byte
	frame = AppendRequest(frame, Request{Op: OpPut, Key: layout.Key{Lo: 1}, Value: 2})
	var err error
	frame, err = AppendBatchRequest(frame, []Request{{Op: OpGet, Key: layout.Key{Lo: 1}}, {Op: OpDelete, Key: layout.Key{Lo: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	frame = AppendRequest(frame, Request{Op: OpPing})

	rr := NewRequestReader(bytes.NewReader(frame))
	req, subs, err := rr.Next()
	if err != nil || subs != nil || req.Op != OpPut || req.Key.Lo != 1 || req.Value != 2 {
		t.Fatalf("first frame = %+v, %v, %v", req, subs, err)
	}
	req, subs, err = rr.Next()
	if err != nil || req.Op != OpBatch || len(subs) != 2 || subs[0].Op != OpGet || subs[1].Op != OpDelete {
		t.Fatalf("second frame = %+v, %v, %v", req, subs, err)
	}
	req, subs, err = rr.Next()
	if err != nil || subs != nil || req.Op != OpPing {
		t.Fatalf("third frame = %+v, %v, %v", req, subs, err)
	}
	if _, _, err := rr.Next(); err != io.EOF {
		t.Fatalf("end = %v, want io.EOF", err)
	}
}

// TestBatchHostileFrames covers the frames a hostile or desynchronised
// peer could aim at the batch paths.
func TestBatchHostileFrames(t *testing.T) {
	// Size limits on the encode side.
	if _, err := AppendBatchRequest(nil, nil); !errors.Is(err, ErrFrame) {
		t.Errorf("empty batch = %v, want ErrFrame", err)
	}
	if _, err := AppendBatchRequest(nil, make([]Request, MaxBatchOps+1)); !errors.Is(err, ErrFrame) {
		t.Errorf("oversized batch = %v, want ErrFrame", err)
	}
	if err := WriteBatchResponses(io.Discard, nil); !errors.Is(err, ErrFrame) {
		t.Errorf("empty batch response = %v, want ErrFrame", err)
	}
	if err := WriteBatchResponses(io.Discard, make([]Response, MaxBatchOps+1)); !errors.Is(err, ErrFrame) {
		t.Errorf("oversized batch response = %v, want ErrFrame", err)
	}

	// Length prefixes RequestReader must refuse: zero, not 25 and not
	// 1+25k, 1+25k past the frame cap, and a bare OpBatch opcode.
	for _, n := range []uint32{0, 1, ReqBodyLen - 1, ReqBodyLen + 1, 1 + ReqBodyLen + 1, MaxFrame + 1, 1 + uint32(MaxBatchOps+1)*ReqBodyLen} {
		hdr := binary.LittleEndian.AppendUint32(nil, n)
		body := append(hdr, make([]byte, ReqBodyLen*2)...)
		if _, _, err := NewRequestReader(bytes.NewReader(body)).Next(); !errors.Is(err, ErrFrame) {
			t.Errorf("request prefix %d = %v, want ErrFrame", n, err)
		}
	}

	// A 25-byte body whose opcode claims OpBatch: a batch must carry at
	// least one sub-op, so this is framing corruption, not a request.
	single := AppendRequest(nil, Request{Op: OpBatch})
	if _, _, err := NewRequestReader(bytes.NewReader(single)).Next(); !errors.Is(err, ErrFrame) {
		t.Errorf("single-size OpBatch frame = %v, want ErrFrame", err)
	}

	// A batch-shaped body whose leading opcode is NOT OpBatch.
	frame, err := AppendBatchRequest(nil, []Request{{Op: OpGet}})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), frame...)
	bad[4] = OpGet
	if _, _, err := NewRequestReader(bytes.NewReader(bad)).Next(); !errors.Is(err, ErrFrame) {
		t.Errorf("batch-shaped single op = %v, want ErrFrame", err)
	}

	// Truncation at every boundary: mid-frame death is ErrUnexpectedEOF,
	// before byte one it is the clean close.
	frame, err = AppendBatchRequest(nil, []Request{{Op: OpPut, Key: layout.Key{Lo: 1}, Value: 2}, {Op: OpGet}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(frame); cut++ {
		want := io.ErrUnexpectedEOF
		if cut == 0 {
			want = io.EOF
		}
		if _, _, err := NewRequestReader(bytes.NewReader(frame[:cut])).Next(); err != want {
			t.Errorf("batch cut at %d = %v, want %v", cut, err, want)
		}
	}

	// Batch response length prefix disagreeing with the expected count.
	var buf bytes.Buffer
	if err := WriteBatchResponses(&buf, []Response{{Status: StatusOK}, {Status: StatusOK}}); err != nil {
		t.Fatal(err)
	}
	if err := ReadBatchResponses(bytes.NewReader(buf.Bytes()), make([]Response, 3)); !errors.Is(err, ErrFrame) {
		t.Errorf("count-mismatched batch response = %v, want ErrFrame", err)
	}
	// Truncated batch response.
	resp := buf.Bytes()
	for cut := 1; cut < len(resp); cut++ {
		if err := ReadBatchResponses(bytes.NewReader(resp[:cut]), make([]Response, 2)); err == nil {
			t.Errorf("batch response cut at %d decoded cleanly", cut)
		}
	}
}

// TestBatchPathAllocs pins the serving hot path's allocation story at
// the wire layer: once the reader's scratch is warm, decoding single
// and batch frames, decoding fixed-size responses, and encoding batch
// responses all run without a single heap allocation.
func TestBatchPathAllocs(t *testing.T) {
	var frames []byte
	frames = AppendRequest(frames, Request{Op: OpPut, Key: layout.Key{Lo: 1}, Value: 2})
	var err error
	frames, err = AppendBatchRequest(frames, make([]Request, 64))
	if err != nil {
		t.Fatal(err)
	}
	rd := bytes.NewReader(frames)
	rr := NewRequestReader(rd)
	if _, _, err := rr.Next(); err != nil { // warm the scratch buffers
		t.Fatal(err)
	}
	if _, _, err := rr.Next(); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		rd.Reset(frames)
		if _, _, err := rr.Next(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := rr.Next(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("RequestReader.Next allocates %.1f times per frame pair, want 0", n)
	}

	var rbuf bytes.Buffer
	if err := WriteResponse(&rbuf, Response{Status: StatusOK, Value: 7}); err != nil {
		t.Fatal(err)
	}
	respFrame := append([]byte(nil), rbuf.Bytes()...)
	respRd := bytes.NewReader(respFrame)
	respBr := bufio.NewReader(respRd)
	if n := testing.AllocsPerRun(100, func() {
		respRd.Reset(respFrame)
		respBr.Reset(respRd)
		if _, err := ReadResponse(respBr); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("fixed-size ReadResponse allocates %.1f times, want 0", n)
	}

	resps := make([]Response, 64)
	var bbuf bytes.Buffer
	if err := WriteBatchResponses(&bbuf, resps); err != nil {
		t.Fatal(err)
	}
	batchFrame := append([]byte(nil), bbuf.Bytes()...)
	batchRd := bytes.NewReader(batchFrame)
	batchBr := bufio.NewReader(batchRd)
	if n := testing.AllocsPerRun(100, func() {
		batchRd.Reset(batchFrame)
		batchBr.Reset(batchRd)
		if err := ReadBatchResponses(batchBr, resps); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("64-op ReadBatchResponses allocates %.1f times, want 0", n)
	}
}

// BenchmarkReadResponseFixed pins the no-Extra decode path — every
// Get/Put/Insert/Delete response on the hot path — at 0 allocs/op
// (run with -benchmem; gated by make bench-allocs).
func BenchmarkReadResponseFixed(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteResponse(&buf, Response{Status: StatusOK, Value: 7}); err != nil {
		b.Fatal(err)
	}
	frame := append([]byte(nil), buf.Bytes()...)
	rd := bytes.NewReader(frame)
	br := bufio.NewReader(rd)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(frame)
		br.Reset(rd)
		if _, err := ReadResponse(br); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteResponseFixed pins the no-Extra encode path — the
// acker's per-response write — at 0 allocs/op through the
// *bufio.Writer fast path (run with -benchmem; gated by make
// bench-allocs).
func BenchmarkWriteResponseFixed(b *testing.B) {
	bw := bufio.NewWriterSize(io.Discard, 64<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteResponse(bw, Response{Status: StatusOK, Value: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteBatchResponses encodes one 64-op batch response frame
// per iteration; 0 allocs/op through the *bufio.Writer fast path.
func BenchmarkWriteBatchResponses(b *testing.B) {
	bw := bufio.NewWriterSize(io.Discard, 64<<10)
	resps := make([]Response, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteBatchResponses(bw, resps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRequestReaderBatch decodes one 64-op batch frame per
// iteration; 0 allocs/op once the reader scratch is warm.
func BenchmarkRequestReaderBatch(b *testing.B) {
	frame, err := AppendBatchRequest(nil, make([]Request, 64))
	if err != nil {
		b.Fatal(err)
	}
	rd := bytes.NewReader(frame)
	rr := NewRequestReader(rd)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(frame)
		if _, _, err := rr.Next(); err != nil {
			b.Fatal(err)
		}
	}
}
