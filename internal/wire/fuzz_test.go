package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"grouphash/internal/layout"
)

// FuzzWireDecode feeds arbitrary byte streams through both decode
// paths, asserting the framing invariants a hostile or desynchronised
// peer must not be able to break:
//
//   - no panic, whatever the bytes;
//   - no over-allocation: a length prefix is never trusted past
//     MaxFrame, so Extra can never exceed MaxFrame-RespFixedLen;
//   - every successfully decoded message re-encodes to bytes that
//     decode back to the same message (round-trip identity);
//   - progress: each decode consumes at least the 4-byte prefix, so a
//     reader looping over a stream always terminates.
//
// The seed corpus covers the hostile-frame test's vocabulary (zero,
// off-by-one and over-cap prefixes, truncations) plus valid streams.
func FuzzWireDecode(f *testing.F) {
	// Valid frames, alone and back-to-back.
	req := AppendRequest(nil, Request{Op: OpPut, Key: layout.Key{Lo: 1, Hi: 2}, Value: 3})
	f.Add(req)
	f.Add(AppendRequest(req, Request{Op: OpGet, Key: layout.Key{Lo: ^uint64(0)}}))
	var rbuf bytes.Buffer
	WriteResponse(&rbuf, Response{Status: StatusOK, Value: 9, Extra: []byte("stats text")})
	f.Add(rbuf.Bytes())
	// Hostile prefixes from TestHostileFrames: zero, off-by-one, just
	// past the cap, and a huge 32-bit length.
	for _, n := range []uint32{0, ReqBodyLen - 1, ReqBodyLen + 1, RespFixedLen - 1, MaxFrame, MaxFrame + 1, 1 << 31} {
		f.Add(append(binary.LittleEndian.AppendUint32(nil, n), make([]byte, 40)...))
	}
	// Truncations.
	f.Add(req[:7])
	f.Add(req[:4])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, decode := range []func(io.Reader) (int, error){
			func(r io.Reader) (int, error) {
				req, err := ReadRequest(r)
				if err != nil {
					return 0, err
				}
				// Round-trip identity.
				frame := AppendRequest(nil, req)
				again, err := ReadRequest(bytes.NewReader(frame))
				if err != nil || again != req {
					t.Fatalf("request round trip: %+v -> %v, %+v", req, err, again)
				}
				return len(frame), nil
			},
			func(r io.Reader) (int, error) {
				resp, err := ReadResponse(r)
				if err != nil {
					return 0, err
				}
				if len(resp.Extra) > MaxFrame-RespFixedLen {
					t.Fatalf("decoded %d-byte extra, cap is %d", len(resp.Extra), MaxFrame-RespFixedLen)
				}
				var buf bytes.Buffer
				if err := WriteResponse(&buf, resp); err != nil {
					t.Fatalf("re-encoding decoded response: %v", err)
				}
				again, err := ReadResponse(bytes.NewReader(buf.Bytes()))
				if err != nil || again.Status != resp.Status || again.Value != resp.Value || !bytes.Equal(again.Extra, resp.Extra) {
					t.Fatalf("response round trip: %+v -> %v, %+v", resp, err, again)
				}
				return buf.Len(), nil
			},
		} {
			rd := bytes.NewReader(data)
			for {
				before := rd.Len()
				if _, err := decode(rd); err != nil {
					// io.EOF only at a clean frame boundary; anything else
					// ends the stream too (framing is lost) — just no panic.
					break
				}
				if consumed := before - rd.Len(); consumed < 4 {
					t.Fatalf("decode consumed %d bytes, must consume at least the prefix", consumed)
				}
			}
		}
	})
}
