package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"grouphash/internal/layout"
)

func TestRequestRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	want := []Request{
		{Op: OpPing},
		{Op: OpGet, Key: layout.Key{Lo: 7, Hi: ^uint64(0)}},
		{Op: OpPut, Key: layout.Key{Lo: 1}, Value: 42},
		{Op: OpDelete, Key: layout.Key{Lo: 9}},
	}
	for _, r := range want {
		if err := WriteRequest(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range want {
		got, err := ReadRequest(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("request %d = %+v, want %+v", i, got, w)
		}
	}
	if _, err := ReadRequest(&buf); err != io.EOF {
		t.Fatalf("empty stream read = %v, want io.EOF", err)
	}
}

func TestResponseRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	want := []Response{
		{Status: StatusOK, Value: 99},
		{Status: StatusNotFound},
		{Status: StatusOK, Extra: []byte("stats text")},
	}
	for _, r := range want {
		if err := WriteResponse(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range want {
		got, err := ReadResponse(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != w.Status || got.Value != w.Value || !bytes.Equal(got.Extra, w.Extra) {
			t.Fatalf("response %d = %+v, want %+v", i, got, w)
		}
	}
}

func TestMalformedFrames(t *testing.T) {
	// Wrong request length prefix.
	if _, err := ReadRequest(bytes.NewReader([]byte{200, 0, 0, 0})); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized request = %v, want ErrFrame", err)
	}
	// Oversized response length prefix.
	if _, err := ReadResponse(bytes.NewReader([]byte{0, 0, 2, 0})); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized response = %v, want ErrFrame", err)
	}
	// Truncated mid-frame: must NOT look like a clean close.
	frame := AppendRequest(nil, Request{Op: OpGet, Key: layout.Key{Lo: 5}})
	if _, err := ReadRequest(bytes.NewReader(frame[:10])); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated request = %v, want ErrUnexpectedEOF", err)
	}
	// Oversized outgoing extra payload is rejected before writing.
	if err := WriteResponse(io.Discard, Response{Extra: make([]byte, MaxFrame)}); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized extra = %v, want ErrFrame", err)
	}
}
