package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"grouphash/internal/layout"
)

func TestRequestRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	want := []Request{
		{Op: OpPing},
		{Op: OpGet, Key: layout.Key{Lo: 7, Hi: ^uint64(0)}},
		{Op: OpPut, Key: layout.Key{Lo: 1}, Value: 42},
		{Op: OpDelete, Key: layout.Key{Lo: 9}},
	}
	for _, r := range want {
		if err := WriteRequest(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range want {
		got, err := ReadRequest(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("request %d = %+v, want %+v", i, got, w)
		}
	}
	if _, err := ReadRequest(&buf); err != io.EOF {
		t.Fatalf("empty stream read = %v, want io.EOF", err)
	}
}

func TestResponseRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	want := []Response{
		{Status: StatusOK, Value: 99},
		{Status: StatusNotFound},
		{Status: StatusOK, Extra: []byte("stats text")},
	}
	for _, r := range want {
		if err := WriteResponse(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range want {
		got, err := ReadResponse(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != w.Status || got.Value != w.Value || !bytes.Equal(got.Extra, w.Extra) {
			t.Fatalf("response %d = %+v, want %+v", i, got, w)
		}
	}
}

// TestHostileFrames feeds both read paths the frames a desynchronised
// or malicious peer would: zero and off-by-one length prefixes, a
// prefix just past the frame cap, and streams truncated at every
// possible byte boundary.
func TestHostileFrames(t *testing.T) {
	// Request prefixes the fixed-body protocol must refuse. The bytes
	// after the prefix are a plausible body so only the prefix is on
	// trial.
	for _, n := range []uint32{0, ReqBodyLen - 1, ReqBodyLen + 1, MaxFrame + 1} {
		hdr := binary.LittleEndian.AppendUint32(nil, n)
		if _, err := ReadRequest(bytes.NewReader(append(hdr, make([]byte, ReqBodyLen)...))); !errors.Is(err, ErrFrame) {
			t.Errorf("request prefix %d = %v, want ErrFrame", n, err)
		}
	}
	// Response prefixes: too small for the fixed part, and too big.
	for _, n := range []uint32{0, RespFixedLen - 1, MaxFrame + 1} {
		hdr := binary.LittleEndian.AppendUint32(nil, n)
		if _, err := ReadResponse(bytes.NewReader(append(hdr, make([]byte, 16)...))); !errors.Is(err, ErrFrame) {
			t.Errorf("response prefix %d = %v, want ErrFrame", n, err)
		}
	}
	// Truncation at every boundary of both paths: a stream dying
	// mid-frame is ErrUnexpectedEOF — never mistakable for a clean
	// close — except before byte one, which IS the clean close.
	req := AppendRequest(nil, Request{Op: OpPut, Key: layout.Key{Lo: 1, Hi: 2}, Value: 3})
	for cut := 0; cut < len(req); cut++ {
		want := io.ErrUnexpectedEOF
		if cut == 0 {
			want = io.EOF
		}
		if _, err := ReadRequest(bytes.NewReader(req[:cut])); err != want {
			t.Errorf("request cut at %d = %v, want %v", cut, err, want)
		}
	}
	var buf bytes.Buffer
	if err := WriteResponse(&buf, Response{Status: StatusOK, Value: 9, Extra: []byte("xyz")}); err != nil {
		t.Fatal(err)
	}
	resp := buf.Bytes()
	for cut := 0; cut < len(resp); cut++ {
		want := io.ErrUnexpectedEOF
		if cut == 0 {
			want = io.EOF
		}
		if _, err := ReadResponse(bytes.NewReader(resp[:cut])); err != want {
			t.Errorf("response cut at %d = %v, want %v", cut, err, want)
		}
	}
}

func TestMalformedFrames(t *testing.T) {
	// Wrong request length prefix.
	if _, err := ReadRequest(bytes.NewReader([]byte{200, 0, 0, 0})); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized request = %v, want ErrFrame", err)
	}
	// Oversized response length prefix.
	if _, err := ReadResponse(bytes.NewReader([]byte{0, 0, 2, 0})); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized response = %v, want ErrFrame", err)
	}
	// Truncated mid-frame: must NOT look like a clean close.
	frame := AppendRequest(nil, Request{Op: OpGet, Key: layout.Key{Lo: 5}})
	if _, err := ReadRequest(bytes.NewReader(frame[:10])); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated request = %v, want ErrUnexpectedEOF", err)
	}
	// Oversized outgoing extra payload is rejected before writing.
	if err := WriteResponse(io.Discard, Response{Extra: make([]byte, MaxFrame)}); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized extra = %v, want ErrFrame", err)
	}
}
