package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"grouphash/internal/layout"
)

// The response writers take an in-place encoding fast path when handed
// a *bufio.Writer (the server's ack path) and the readers decode in
// place from a *bufio.Reader (every real client). These tests drive
// those paths with deliberately tiny buffers so every flush/refill
// branch runs, and check byte-for-byte agreement with the generic
// io.Writer slow path.

// failWriter errors after n successful writes.
type failWriter struct{ n int }

var errSink = errors.New("sink failed")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errSink
	}
	f.n--
	return len(p), nil
}

func TestWriteResponseBufioMatchesSlowPath(t *testing.T) {
	resps := []Response{
		{Status: StatusOK, Value: 7},
		{Status: StatusNotFound, Value: 0},
		{Status: StatusOK, Value: 42, Extra: []byte("stats payload")},
		{Status: StatusOK, Value: 1<<64 - 1},
		{Status: StatusBadRequest, Value: 3, Extra: bytes.Repeat([]byte{0xAB}, 100)},
	}
	var slow bytes.Buffer
	for _, r := range resps {
		if err := WriteResponse(&slow, r); err != nil {
			t.Fatal(err)
		}
	}
	// A 16-byte bufio.Writer (the minimum) cannot hold even two fixed
	// frames, so the mid-stream Flush branch runs on every response.
	var fast bytes.Buffer
	bw := bufio.NewWriterSize(&fast, 16)
	for _, r := range resps {
		if err := WriteResponse(bw, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(slow.Bytes(), fast.Bytes()) {
		t.Fatalf("bufio fast path encoded differently:\nslow %x\nfast %x", slow.Bytes(), fast.Bytes())
	}

	// Decode back through both reader paths; the bufio reader is kept
	// at the 16-byte minimum so fixed frames straddle refills.
	for name, rd := range map[string]io.Reader{
		"plain": bytes.NewReader(fast.Bytes()),
		"bufio": bufio.NewReaderSize(bytes.NewReader(fast.Bytes()), 16),
	} {
		for i, want := range resps {
			got, err := ReadResponse(rd)
			if err != nil {
				t.Fatalf("%s reader, resp %d: %v", name, i, err)
			}
			if got.Status != want.Status || got.Value != want.Value || !bytes.Equal(got.Extra, want.Extra) {
				t.Fatalf("%s reader, resp %d: got %+v want %+v", name, i, got, want)
			}
		}
		if _, err := ReadResponse(rd); err != io.EOF {
			t.Fatalf("%s reader: want clean EOF after last frame, got %v", name, err)
		}
	}
}

func TestWriteResponseBufioFlushError(t *testing.T) {
	// First write succeeds (fills the buffer), then the forced flush on
	// the next response fails: the error must surface, not vanish into
	// the buffer.
	bw := bufio.NewWriterSize(&failWriter{n: 0}, 16)
	if err := WriteResponse(bw, Response{Status: StatusOK}); err != nil {
		t.Fatalf("buffered write should not touch the sink yet: %v", err)
	}
	if err := WriteResponse(bw, Response{Status: StatusOK}); !errors.Is(err, errSink) {
		t.Fatalf("want sink error from forced flush, got %v", err)
	}
}

func TestWriteResponseStickyBufioError(t *testing.T) {
	// A large-enough buffer means no forced flush: the bw.Write calls
	// themselves must surface bufio's sticky error.
	bw := bufio.NewWriterSize(&failWriter{n: 0}, 64)
	if err := WriteResponse(bw, Response{Status: StatusOK}); err != nil {
		t.Fatalf("buffered write should succeed: %v", err)
	}
	if err := bw.Flush(); !errors.Is(err, errSink) {
		t.Fatalf("want sink error from flush, got %v", err)
	}
	if err := WriteResponse(bw, Response{Status: StatusOK}); !errors.Is(err, errSink) {
		t.Fatalf("sticky bufio error swallowed: %v", err)
	}
}

func TestWriteResponseBufioExtraError(t *testing.T) {
	// The fixed part buffers cleanly; the oversized Extra forces a
	// flush into the dead sink.
	bw := bufio.NewWriterSize(&failWriter{n: 0}, 64)
	resp := Response{Status: StatusOK, Extra: bytes.Repeat([]byte{1}, 200)}
	if err := WriteResponse(bw, resp); !errors.Is(err, errSink) {
		t.Fatalf("want sink error from Extra write, got %v", err)
	}
}

func TestWriteResponsePlainWriterErrors(t *testing.T) {
	if err := WriteResponse(&failWriter{n: 0}, Response{Status: StatusOK}); !errors.Is(err, errSink) {
		t.Fatalf("fixed-frame write error swallowed: %v", err)
	}
	resp := Response{Status: StatusOK, Extra: []byte("x")}
	if err := WriteResponse(&failWriter{n: 1}, resp); !errors.Is(err, errSink) {
		t.Fatalf("Extra write error swallowed: %v", err)
	}
}

func TestWriteBatchResponsesPlainWriterErrors(t *testing.T) {
	resps := make([]Response, 4)
	if err := WriteBatchResponses(&failWriter{n: 0}, resps); !errors.Is(err, errSink) {
		t.Fatalf("header write error swallowed: %v", err)
	}
	if err := WriteBatchResponses(&failWriter{n: 2}, resps); !errors.Is(err, errSink) {
		t.Fatalf("sub-response write error swallowed: %v", err)
	}
}

func TestReadBatchResponsesErrors(t *testing.T) {
	// Wrong sub-response count, both reader kinds.
	var frame bytes.Buffer
	if err := WriteBatchResponses(&frame, make([]Response, 3)); err != nil {
		t.Fatal(err)
	}
	for name, rd := range map[string]io.Reader{
		"plain": bytes.NewReader(frame.Bytes()),
		"bufio": bufio.NewReaderSize(bytes.NewReader(frame.Bytes()), 16),
	} {
		if err := ReadBatchResponses(rd, make([]Response, 4)); !errors.Is(err, ErrFrame) {
			t.Fatalf("%s reader: count mismatch accepted: %v", name, err)
		}
	}
	// Truncated body, both reader kinds.
	cut := frame.Bytes()[:frame.Len()-2]
	for name, rd := range map[string]io.Reader{
		"plain": bytes.NewReader(cut),
		"bufio": bufio.NewReaderSize(bytes.NewReader(cut), 16),
	} {
		if err := ReadBatchResponses(rd, make([]Response, 3)); err != io.ErrUnexpectedEOF {
			t.Fatalf("%s reader: torn batch body: want ErrUnexpectedEOF, got %v", name, err)
		}
	}
	// Dead stream before the header.
	if err := ReadBatchResponses(bytes.NewReader(nil), make([]Response, 1)); err != io.EOF {
		t.Fatalf("plain reader: want io.EOF on clean close, got %v", err)
	}
	if err := ReadBatchResponses(bufio.NewReaderSize(bytes.NewReader(nil), 16), make([]Response, 1)); err != io.EOF {
		t.Fatalf("bufio reader: want io.EOF on clean close, got %v", err)
	}
	// Torn header on the bufio path.
	if err := ReadBatchResponses(bufio.NewReaderSize(bytes.NewReader([]byte{1, 2}), 16), make([]Response, 1)); err != io.ErrUnexpectedEOF {
		t.Fatalf("bufio reader: torn header: want ErrUnexpectedEOF, got %v", err)
	}
}

func TestWriteResponseExtraTooLarge(t *testing.T) {
	var buf bytes.Buffer
	resp := Response{Status: StatusOK, Extra: make([]byte, MaxFrame)}
	if err := WriteResponse(&buf, resp); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized Extra accepted: %v", err)
	}
	if err := WriteResponse(bufio.NewWriter(&buf), resp); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized Extra accepted on the bufio path: %v", err)
	}
}

func TestWriteBatchResponsesBufioMatchesSlowPath(t *testing.T) {
	resps := make([]Response, 64)
	for i := range resps {
		resps[i] = Response{Status: byte(i % 3), Value: uint64(i) * 0x9e3779b97f4a7c15}
	}
	var slow bytes.Buffer
	if err := WriteBatchResponses(&slow, resps); err != nil {
		t.Fatal(err)
	}
	var fast bytes.Buffer
	bw := bufio.NewWriterSize(&fast, 16) // every sub-response forces a flush
	if err := WriteBatchResponses(bw, resps); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(slow.Bytes(), fast.Bytes()) {
		t.Fatalf("bufio batch fast path encoded differently:\nslow %x\nfast %x", slow.Bytes(), fast.Bytes())
	}

	for name, rd := range map[string]io.Reader{
		"plain": bytes.NewReader(fast.Bytes()),
		"bufio": bufio.NewReaderSize(bytes.NewReader(fast.Bytes()), 16),
	} {
		got := make([]Response, len(resps))
		if err := ReadBatchResponses(rd, got); err != nil {
			t.Fatalf("%s reader: %v", name, err)
		}
		for i := range resps {
			if got[i].Status != resps[i].Status || got[i].Value != resps[i].Value {
				t.Fatalf("%s reader, sub %d: got %+v want %+v", name, i, got[i], resps[i])
			}
		}
	}
}

func TestWriteBatchResponsesBufioFlushError(t *testing.T) {
	// Header goes through (one sink write), then the first sub-response
	// flush fails.
	bw := bufio.NewWriterSize(&failWriter{n: 1}, 16)
	resps := make([]Response, 8)
	if err := WriteBatchResponses(bw, resps); !errors.Is(err, errSink) {
		t.Fatalf("want sink error from sub-response flush, got %v", err)
	}
}

func TestWriteBatchResponsesSizeLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBatchResponses(&buf, nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("empty batch accepted: %v", err)
	}
	if err := WriteBatchResponses(&buf, make([]Response, MaxBatchOps+1)); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized batch accepted: %v", err)
	}
}

func TestReadResponseBufferedErrors(t *testing.T) {
	// Truncated header: one byte then EOF is a torn frame.
	if _, err := ReadResponse(bufio.NewReaderSize(bytes.NewReader([]byte{1}), 16)); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn header: want ErrUnexpectedEOF, got %v", err)
	}
	// Clean EOF before any bytes stays io.EOF.
	if _, err := ReadResponse(bufio.NewReaderSize(bytes.NewReader(nil), 16)); err != io.EOF {
		t.Fatalf("clean close: want io.EOF, got %v", err)
	}
	// Hostile length: below the fixed size.
	bad := []byte{3, 0, 0, 0}
	if _, err := ReadResponse(bufio.NewReaderSize(bytes.NewReader(bad), 16)); !errors.Is(err, ErrFrame) {
		t.Fatalf("undersized body length accepted: %v", err)
	}
	// Truncated fixed body.
	torn := []byte{9, 0, 0, 0, StatusOK, 1, 2}
	if _, err := ReadResponse(bufio.NewReaderSize(bytes.NewReader(torn), 16)); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn body: want ErrUnexpectedEOF, got %v", err)
	}
	// Truncated Extra body.
	var full bytes.Buffer
	if err := WriteResponse(&full, Response{Status: StatusOK, Extra: []byte("abcdef")}); err != nil {
		t.Fatal(err)
	}
	cut := full.Bytes()[:full.Len()-3]
	if _, err := ReadResponse(bufio.NewReaderSize(bytes.NewReader(cut), 16)); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn extra: want ErrUnexpectedEOF, got %v", err)
	}
}

// TestBatchRequestResponseWireRoundTrip drives the whole batch frame
// cycle the way the server does: AppendBatchRequest → RequestReader →
// WriteBatchResponses → ReadBatchResponses, all through small bufio
// buffers.
func TestBatchRequestResponseWireRoundTrip(t *testing.T) {
	subs := make([]Request, 17)
	for i := range subs {
		subs[i] = Request{Op: OpPut, Key: layout.Key{Lo: uint64(i + 1)}, Value: uint64(i) << 8}
	}
	frame, err := AppendBatchRequest(nil, subs)
	if err != nil {
		t.Fatal(err)
	}
	rr := NewRequestReader(bufio.NewReaderSize(bytes.NewReader(frame), 16))
	req, got, err := rr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpBatch || len(got) != len(subs) {
		t.Fatalf("batch frame decoded as op %d with %d subs, want OpBatch with %d", req.Op, len(got), len(subs))
	}
	for i := range subs {
		if got[i] != subs[i] {
			t.Fatalf("sub %d: got %+v want %+v", i, got[i], subs[i])
		}
	}
	if _, _, err := rr.Next(); err != io.EOF {
		t.Fatalf("want clean EOF after the batch frame, got %v", err)
	}
}
