package server

import (
	"sync"
	"time"

	"grouphash"
	"grouphash/internal/oplog"
	"grouphash/internal/wire"
)

// This file is the server half of the end-to-end batch path: OpBatch
// frames and coalesced pipelined bursts both funnel into the store's
// stripe-grouped ApplyBatch (one lock acquisition + ONE oplog append +
// one count persist per stripe-run), and every buffer on the way —
// completion-queue chunks, batch-response frames, the apply scratch —
// is pooled or per-connection so the steady-state serving loop
// allocates nothing.

// pendingChunk is a pooled completion-queue chunk. Pooling it removes
// the chunk allocation the reader used to pay per pipelined burst.
type pendingChunk struct {
	resps []pendingResp
}

var chunkPool = sync.Pool{New: func() any {
	return &pendingChunk{resps: make([]pendingResp, 0, 64)}
}}

func getChunk() *pendingChunk {
	pc := chunkPool.Get().(*pendingChunk)
	pc.resps = pc.resps[:0]
	return pc
}

// putChunk recycles a chunk. Every entry is zeroed first: a pooled
// chunk must not retain response Extra payloads or batch buffers (the
// acker's retained-reference audit — a stale pointer here would keep
// dead frames alive across unrelated connections). A batch buffer
// still attached (error paths that never wrote it) is recycled too.
func putChunk(pc *pendingChunk) {
	for i := range pc.resps {
		if b := pc.resps[i].batch; b != nil {
			putRespBuf(b)
		}
		pc.resps[i] = pendingResp{}
	}
	pc.resps = pc.resps[:0]
	chunkPool.Put(pc)
}

// respBuf is a pooled batch-response frame: the N sub-responses an
// OpBatch frame is answered with.
type respBuf struct {
	resps []wire.Response
}

var respBufPool = sync.Pool{New: func() any { return &respBuf{} }}

func getRespBuf(n int) *respBuf {
	rb := respBufPool.Get().(*respBuf)
	if cap(rb.resps) < n {
		rb.resps = make([]wire.Response, n)
	}
	rb.resps = rb.resps[:n]
	return rb
}

func putRespBuf(rb *respBuf) {
	for i := range rb.resps {
		rb.resps[i] = wire.Response{} // drop any Extra reference
	}
	rb.resps = rb.resps[:0]
	respBufPool.Put(rb)
}

// mutationKind classifies a wire opcode as a batchable store mutation.
func mutationKind(op byte) (grouphash.BatchKind, bool) {
	switch op {
	case wire.OpPut:
		return grouphash.BatchPut, true
	case wire.OpInsert:
		return grouphash.BatchInsert, true
	case wire.OpDelete:
		return grouphash.BatchDelete, true
	}
	return 0, false
}

// countClass bumps the per-class request counter for a mutation opcode
// (reads and others are counted by dispatch).
func (s *Server) countClass(op byte) {
	if op == wire.OpDelete {
		s.deletes.Inc()
	} else {
		s.writes.Inc()
	}
}

// batchState is one connection's staging area for the batch apply
// path. The reader stages mutations here — single frames accumulate
// across a pipelined burst, batch frames stage their sub-op runs — and
// apply() pushes them through the store's stripe-grouped ApplyBatch.
// All slices are reused across bursts: zero steady-state allocations.
type batchState struct {
	s       *Server
	ops     []grouphash.BatchOp
	opcodes []byte // wire opcode per staged op, for the per-op latency slot
	idx     []int  // destination per staged op: chunk index or sub-response index
	outs    []grouphash.BatchResult
	lsns    []uint64 // oplog LSN per staged op; 0 = not logged
	recs    []oplog.Record
	sc      grouphash.BatchScratch
	hi      uint64 // highest LSN of the current batch frame (flushInto)
	// committed is the stripe-run commit hook: ONE oplog AppendBatch
	// per run, inside the stripe's critical section, LSNs fanned back
	// to the staged ops. Built once per connection so apply() does not
	// allocate a closure per burst.
	committed func(applied []int)
}

func newBatchState(s *Server) *batchState {
	ba := &batchState{s: s}
	if s.cfg.Oplog != nil {
		ba.committed = func(applied []int) {
			recs := ba.recs[:0]
			for _, i := range applied {
				op := &ba.ops[i]
				recs = append(recs, oplog.Record{Op: oplogOpFor(op.Kind), Key: op.Key, Value: op.Value})
			}
			first := s.cfg.Oplog.AppendBatch(recs)
			for j, i := range applied {
				ba.lsns[i] = first + uint64(j)
			}
			ba.recs = recs
		}
	}
	return ba
}

func oplogOpFor(k grouphash.BatchKind) oplog.Op {
	switch k {
	case grouphash.BatchPut:
		return oplog.OpPut
	case grouphash.BatchInsert:
		return oplog.OpInsert
	default:
		return oplog.OpDelete
	}
}

// stage queues one mutation for the next apply, remembering where its
// response must land (dst: a chunk index for coalesced singles, a
// sub-response index for batch frames).
func (ba *batchState) stage(req wire.Request, dst int) {
	kind, _ := mutationKind(req.Op)
	ba.ops = append(ba.ops, grouphash.BatchOp{Kind: kind, Key: req.Key, Value: req.Value})
	ba.opcodes = append(ba.opcodes, req.Op)
	ba.idx = append(ba.idx, dst)
}

func (ba *batchState) reset() {
	ba.ops = ba.ops[:0]
	ba.opcodes = ba.opcodes[:0]
	ba.idx = ba.idx[:0]
}

// apply runs the staged ops through the store's stripe-grouped batch
// path, filling ba.outs and ba.lsns.
func (ba *batchState) apply() {
	n := len(ba.ops)
	if cap(ba.outs) < n {
		ba.outs = make([]grouphash.BatchResult, n)
	}
	ba.outs = ba.outs[:n]
	if cap(ba.lsns) < n {
		ba.lsns = make([]uint64, n)
	}
	ba.lsns = ba.lsns[:n]
	for i := range ba.lsns {
		ba.lsns[i] = 0
	}
	ba.s.eng.ApplyBatch(ba.ops, ba.outs, &ba.sc, ba.committed)
}

// response maps staged op j's outcome to its wire response, bumping the
// error counters exactly as the single-op path does.
func (ba *batchState) response(j int) wire.Response {
	out := &ba.outs[j]
	if out.Err != nil {
		return ba.s.errResponse(out.Err)
	}
	if ba.ops[j].Kind == grouphash.BatchDelete && !out.Found {
		return wire.Response{Status: wire.StatusNotFound}
	}
	return wire.Response{Status: wire.StatusOK}
}

// flushCoalesced applies the coalesced run of single-frame mutations
// staged since the last flush and fills their chunk placeholders:
// response, ack LSN, and (for unlogged outcomes) a cleared timing
// stamp. Runs at every pipelining boundary, before any read or batch
// frame (preserving program order an observer can see), and before a
// chunk moves to the acker. Draining refuses the whole run unapplied —
// the same answer each op would have gotten from applyWrite, decided
// at apply time exactly like the single-op path (Drain waits for the
// handler, so the pair still completes before the final snapshot cut).
func (ba *batchState) flushCoalesced(chunk []pendingResp, timing bool) {
	n := len(ba.ops)
	if n == 0 {
		return
	}
	s := ba.s
	if s.draining.Load() || s.oplogDead.Load() {
		for _, dst := range ba.idx {
			s.drainRejects.Inc()
			chunk[dst] = pendingResp{resp: wire.Response{Status: wire.StatusDraining}}
		}
		ba.reset()
		return
	}
	start := time.Now()
	ba.apply()
	if timing {
		s.coalesceSize.Observe(uint64(n))
		// The run cost one walk of the store; attribute it evenly so the
		// per-opcode latency histograms stay meaningful under coalescing.
		per := uint64(time.Since(start).Nanoseconds()) / uint64(n)
		for _, opc := range ba.opcodes {
			s.opLat[opc].Observe(per)
		}
	}
	for j, dst := range ba.idx {
		pr := &chunk[dst]
		pr.resp = ba.response(j)
		pr.lsn = ba.lsns[j]
		if pr.lsn == 0 {
			pr.start = time.Time{} // unlogged: no ack latency to measure
		}
	}
	ba.reset()
}

// flushInto is flushCoalesced's batch-frame sibling: apply the staged
// sub-op run, land responses at their sub-response slots, and fold the
// run's LSNs into ba.hi (the frame's ack watermark).
func (ba *batchState) flushInto(resps []wire.Response) {
	if len(ba.ops) == 0 {
		return
	}
	ba.apply()
	for j, dst := range ba.idx {
		resps[dst] = ba.response(j)
		if ba.lsns[j] > ba.hi {
			ba.hi = ba.lsns[j]
		}
	}
	ba.reset()
}

// serveBatchFrame answers one OpBatch frame. Sub-operations take
// effect in order: maximal runs of consecutive mutations go through
// the stripe-grouped apply (one lock + one oplog append per stripe-run
// within each run), and any interleaved read/ping/len flushes the
// pending run first so a sub-op always observes its predecessors. The
// response is ONE frame of packed sub-responses whose release waits on
// the highest LSN any sub-op logged — an acked batch is all-or-nothing
// on the wire. OpStats and nested OpBatch sub-ops answer
// StatusBadRequest (their payloads don't fit the packed format).
func (s *Server) serveBatchFrame(subs []wire.Request, ba *batchState, timing bool) pendingResp {
	var start time.Time
	if timing {
		start = time.Now()
		s.batchFrameSize.Observe(uint64(len(subs)))
		s.bytesRead.Add(uint64(4 + 1 + len(subs)*wire.ReqBodyLen))
		s.bytesWritten.Add(uint64(4 + len(subs)*wire.RespFixedLen))
	}
	rb := getRespBuf(len(subs))
	resps := rb.resps
	ba.hi = 0
	draining := s.draining.Load() || s.oplogDead.Load()
	for i := range subs {
		sub := &subs[i]
		if _, ok := mutationKind(sub.Op); ok {
			s.countClass(sub.Op)
			if draining {
				s.drainRejects.Inc()
				resps[i] = wire.Response{Status: wire.StatusDraining}
				continue
			}
			ba.stage(*sub, i)
			continue
		}
		ba.flushInto(resps)
		switch sub.Op {
		case wire.OpPing, wire.OpGet, wire.OpLen:
			resps[i], _ = s.dispatch(*sub)
		default:
			s.badreq.Inc()
			resps[i] = wire.Response{Status: wire.StatusBadRequest}
		}
	}
	ba.flushInto(resps)
	pr := pendingResp{batch: rb, lsn: ba.hi}
	if timing {
		s.opLat[wire.OpBatch].Observe(uint64(time.Since(start)))
		if pr.lsn > 0 {
			pr.start = start
		}
	}
	return pr
}
