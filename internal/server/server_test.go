package server

import (
	"bufio"
	"errors"
	"net"
	"path/filepath"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"grouphash"
	"grouphash/internal/client"
	"grouphash/internal/layout"
	"grouphash/internal/oplog"
	"grouphash/internal/wire"
)

// startServer spins up a server on a loopback port and returns it with
// its address and a cleanup-registered drain.
func startServer(t *testing.T, opts grouphash.Options, cfg Config) (*Server, string) {
	t.Helper()
	opts.Concurrent = true
	st, err := grouphash.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	cfg.Logf = t.Logf
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Drain()
		if err := <-serveDone; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return s, ln.Addr().String()
}

func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without a store must fail")
	}
	seq, err := grouphash.New(grouphash.Options{Capacity: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Store: seq}); err == nil {
		t.Fatal("New with a non-concurrent store must fail")
	}
}

func TestServeBasicOps(t *testing.T) {
	s, addr := startServer(t, grouphash.Options{Capacity: 1 << 12}, Config{})
	c := dial(t, addr)

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(layout.Key{Lo: 7}, 70); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get(layout.Key{Lo: 7}); err != nil || !ok || v != 70 {
		t.Fatalf("Get = (%d, %v, %v)", v, ok, err)
	}
	if _, ok, err := c.Get(layout.Key{Lo: 999}); err != nil || ok {
		t.Fatalf("absent Get = (ok=%v, %v)", ok, err)
	}
	if err := c.Put(layout.Key{Lo: 7}, 71); err != nil { // overwrite, no duplicate
		t.Fatal(err)
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Fatalf("Len = (%d, %v)", n, err)
	}
	if err := c.Insert(layout.Key{Lo: 8}, 80); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Delete(layout.Key{Lo: 7}); err != nil || !ok {
		t.Fatalf("Delete = (%v, %v)", ok, err)
	}
	if ok, err := c.Delete(layout.Key{Lo: 7}); err != nil || ok {
		t.Fatalf("second Delete = (%v, %v)", ok, err)
	}
	// The concurrent wrapper's zero-key rejection travels the wire as
	// a typed error.
	if err := c.Put(layout.Key{}, 1); !errors.Is(err, client.ErrInvalidKey) {
		t.Fatalf("zero-key Put = %v, want ErrInvalidKey", err)
	}
	text, err := c.ServerStats()
	if err != nil || !strings.Contains(text, "latency_us") {
		t.Fatalf("ServerStats = (%q, %v)", text, err)
	}
	if m := s.Stats(); m.Writes == 0 || m.Reads == 0 || m.InvalidKey != 1 {
		t.Fatalf("counters = %+v", m)
	}
}

func TestServePipelined(t *testing.T) {
	_, addr := startServer(t, grouphash.Options{Capacity: 1 << 12}, Config{})
	c := dial(t, addr)

	const n = 500
	reqs := make([]wire.Request, 0, n)
	for i := uint64(1); i <= n; i++ {
		reqs = append(reqs, wire.Request{Op: wire.OpPut, Key: layout.Key{Lo: i}, Value: i * 2})
	}
	resps, err := c.Do(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if r.Status != wire.StatusOK {
			t.Fatalf("put %d status %d", i, r.Status)
		}
	}
	// Mixed batch, responses must line up positionally.
	mixed := []wire.Request{
		{Op: wire.OpGet, Key: layout.Key{Lo: 3}},
		{Op: wire.OpDelete, Key: layout.Key{Lo: 3}},
		{Op: wire.OpGet, Key: layout.Key{Lo: 3}},
		{Op: wire.OpLen},
		{Op: 99}, // unknown opcode
	}
	resps, err = c.Do(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Status != wire.StatusOK || resps[0].Value != 6 {
		t.Fatalf("get before delete = %+v", resps[0])
	}
	if resps[1].Status != wire.StatusOK {
		t.Fatalf("delete = %+v", resps[1])
	}
	if resps[2].Status != wire.StatusNotFound {
		t.Fatalf("get after delete = %+v", resps[2])
	}
	if resps[3].Status != wire.StatusOK || resps[3].Value != n-1 {
		t.Fatalf("len = %+v", resps[3])
	}
	if resps[4].Status != wire.StatusBadRequest {
		t.Fatalf("unknown op = %+v", resps[4])
	}
}

func TestServerFull(t *testing.T) {
	_, addr := startServer(t,
		grouphash.Options{Capacity: 64, GroupSize: 8, DisableExpand: true}, Config{})
	c := dial(t, addr)
	var sawFull bool
	for i := uint64(1); i <= 4096; i++ {
		if err := c.Put(layout.Key{Lo: i}, i); err != nil {
			if errors.Is(err, client.ErrFull) {
				sawFull = true
				break
			}
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("concurrent store with expansion disabled never reported ErrFull")
	}
}

// TestServerOnlineExpansion is the acceptance scenario for stop-less
// growth: a write-heavy workload many times the store's initial
// capacity, from several connections at once, must complete with ZERO
// StatusFull responses — the table expands online underneath the
// writers — and every acked key must be readable afterwards.
func TestServerOnlineExpansion(t *testing.T) {
	s, addr := startServer(t, grouphash.Options{Capacity: 64, GroupSize: 8}, Config{})

	const workers = 4
	const perWorker = 1024 // 4096 keys through a 64-capacity store
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr, 5*time.Second)
			if err != nil {
				errs[w] = err
				return
			}
			defer c.Close()
			base := uint64(w) << 32
			for i := uint64(1); i <= perWorker; i++ {
				if err := c.Put(layout.Key{Lo: base + i}, base+i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if full := s.Stats().Full; full != 0 {
		t.Fatalf("saw %d StatusFull responses, want 0", full)
	}
	if exp := s.cfg.Store.Expansions(); exp == 0 {
		t.Fatal("store never expanded despite 64x overload")
	}
	c := dial(t, addr)
	for w := 0; w < workers; w++ {
		base := uint64(w) << 32
		for i := uint64(1); i <= perWorker; i++ {
			v, ok, err := c.Get(layout.Key{Lo: base + i})
			if err != nil || !ok || v != base+i {
				t.Fatalf("key %d/%d: v=%d ok=%v err=%v", w, i, v, ok, err)
			}
		}
	}
}

// TestDrainAndReload is the acceptance scenario: writers are mid-load
// when Drain fires; every write acked before the drain must be present
// in the final image when a new store reloads it.
func TestDrainAndReload(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "store.pmfs")
	s, addr := startServer(t, grouphash.Options{Capacity: 1 << 16},
		Config{SnapshotPath: img})

	const workers = 4
	acked := make([][]uint64, workers) // keys acked per worker, disjoint ranges
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr, time.Second)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			base := uint64(w) << 32
			for i := uint64(1); ; i++ {
				if err := c.Put(layout.Key{Lo: base + i}, i); err != nil {
					return // drain closed the conn; everything before was acked
				}
				acked[w] = append(acked[w], base+i)
			}
		}(w)
	}
	time.Sleep(150 * time.Millisecond) // let real load build up
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	var total int
	for _, keys := range acked {
		total += len(keys)
	}
	if total == 0 {
		t.Fatal("no writes were acked before the drain; test proves nothing")
	}
	t.Logf("acked %d writes before drain", total)

	re, err := grouphash.LoadSnapshot(img, true)
	if err != nil {
		t.Fatal(err)
	}
	for w, keys := range acked {
		for _, k := range keys {
			if v, ok := re.Get(layout.Key{Lo: k}); !ok || v != k&0xffffffff {
				t.Fatalf("worker %d: acked key %#x = (%d, %v) after reload", w, k, v, ok)
			}
		}
	}
	if bad := re.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("reloaded store inconsistent: %v", bad)
	}
}

// TestSnapshotWhileServing drives churn while the periodic snapshot
// loop runs at an aggressive interval: every snapshot must quiesce to
// a consistent image, and the last one must reopen cleanly.
func TestSnapshotWhileServing(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "store.pmfs")
	s, addr := startServer(t, grouphash.Options{Capacity: 1 << 14},
		Config{SnapshotPath: img, SnapshotEvery: 10 * time.Millisecond})

	const workers = 3
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr, time.Second)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			base := uint64(w+1) << 20
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := layout.Key{Lo: base + i%500 + 1}
				switch i % 3 {
				case 0, 1:
					if err := c.Put(k, i); err != nil {
						return
					}
				case 2:
					if _, err := c.Delete(k); err != nil {
						return
					}
				}
			}
		}(w)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if s.Stats().Snapshots < 3 {
		t.Fatalf("only %d periodic snapshots in 200ms at a 10ms interval", s.Stats().Snapshots)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	re, err := grouphash.LoadSnapshot(img, true)
	if err != nil {
		t.Fatal(err)
	}
	if bad := re.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("image written under churn is inconsistent: %v", bad)
	}
}

// TestDrainRefusesBufferedWrites checks the drain contract from the
// protocol side: once Drain begins, writes the server has already
// buffered are answered StatusDraining — observed here by a real
// client — and the final image contains exactly the OK-acked keys:
// every acked key present, every refused key absent. A single batch
// straddling the drain boundary is probabilistic, so the test retries
// with a fresh server until one batch yields both OK and Draining
// responses.
func TestDrainRefusesBufferedWrites(t *testing.T) {
	attempt := func(t *testing.T) bool {
		img := filepath.Join(t.TempDir(), "store.pmfs")
		st, err := grouphash.New(grouphash.Options{Capacity: 1 << 14, Concurrent: true})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Store: st, SnapshotPath: img, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- s.Serve(ln) }()

		const workers = 4
		const batch = 256
		type outcome struct{ acked, refused []uint64 }
		outs := make([]outcome, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c, err := client.Dial(ln.Addr().String(), time.Second)
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				defer c.Close()
				base := uint64(w+1) << 32
				for i := uint64(0); ; i += batch {
					reqs := make([]wire.Request, batch)
					for j := range reqs {
						k := base + i + uint64(j) + 1
						reqs[j] = wire.Request{Op: wire.OpPut, Key: layout.Key{Lo: k}, Value: k}
					}
					resps, err := c.Do(reqs)
					if err != nil {
						return // conn died mid-batch; no acks from it
					}
					for j, r := range resps {
						k := reqs[j].Key.Lo
						switch r.Status {
						case wire.StatusOK:
							outs[w].acked = append(outs[w].acked, k)
						case wire.StatusDraining:
							outs[w].refused = append(outs[w].refused, k)
						default:
							t.Errorf("unexpected status %d", r.Status)
						}
					}
					if len(outs[w].refused) > 0 {
						return // server is draining; the conn is done for
					}
				}
			}(w)
		}
		time.Sleep(30 * time.Millisecond)
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if err := <-serveDone; err != nil {
			t.Fatalf("Serve returned %v", err)
		}

		// Regardless of whether a batch straddled: acked ⊆ image,
		// refused ∩ image = ∅.
		re, err := grouphash.LoadSnapshot(img, true)
		if err != nil {
			t.Fatal(err)
		}
		var straddled bool
		for w := range outs {
			if len(outs[w].acked) > 0 && len(outs[w].refused) > 0 {
				straddled = true
			}
			for _, k := range outs[w].acked {
				if v, ok := re.Get(layout.Key{Lo: k}); !ok || v != k {
					t.Fatalf("acked key %#x = (%d, %v) after reload", k, v, ok)
				}
			}
			for _, k := range outs[w].refused {
				if _, ok := re.Get(layout.Key{Lo: k}); ok {
					t.Fatalf("key %#x answered StatusDraining yet present in final image", k)
				}
			}
		}
		if straddled {
			refused := 0
			for w := range outs {
				refused += len(outs[w].refused)
			}
			t.Logf("straddling batch: %d writes refused with StatusDraining", refused)
		}
		return straddled
	}
	for try := 0; try < 20; try++ {
		if attempt(t) {
			return
		}
	}
	t.Fatal("no pipelined batch straddled the drain in 20 attempts")
}

// TestPipelinedSpillNeverAcksUnsynced is the regression test for the
// bufio spill hole: responses are 13 bytes into a 64KiB write buffer,
// so a client pipelining thousands of requests without reading used
// to overflow the buffer and let bufio auto-flush OK acks before the
// oplog fsync covering them ran (the Buffered()==0 sync point never
// fires while the client keeps the pipe full). Saturate one
// connection with far more writes than the buffer holds and assert,
// at every ack the client observes, that the oplog's durable LSN has
// already passed it.
func TestPipelinedSpillNeverAcksUnsynced(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  oplog.Config
	}{
		{"legacy", oplog.Config{}},
		{"adaptive", oplog.Config{SyncEvery: 100 * time.Microsecond, SyncBytes: 8 << 10}},
	} {
		t.Run(mode.name, func(t *testing.T) { pipelinedSpill(t, mode.cfg) })
	}
}

func pipelinedSpill(t *testing.T, lcfg oplog.Config) {
	lg, err := oplog.OpenConfig(filepath.Join(t.TempDir(), "oplog"), 1, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, grouphash.Options{Capacity: 1 << 16}, Config{Oplog: lg})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// 8000 responses = ~104KiB, well past the server's 64KiB write
	// buffer. Written as one burst so the server's read buffer stays
	// non-empty and the drained-input sync point cannot save it.
	const n = 8000
	go func() {
		buf := make([]byte, 0, n*(4+wire.ReqBodyLen))
		for i := uint64(1); i <= n; i++ {
			buf = wire.AppendRequest(buf, wire.Request{Op: wire.OpPut, Key: layout.Key{Lo: i}, Value: i})
		}
		conn.Write(buf)
	}()
	br := bufio.NewReader(conn)
	for acks := uint64(1); acks <= n; acks++ {
		resp, err := wire.ReadResponse(br)
		if err != nil {
			t.Fatalf("response %d: %v", acks, err)
		}
		if resp.Status != wire.StatusOK {
			t.Fatalf("response %d status %d", acks, resp.Status)
		}
		// This connection is the only appender, so ack k answers LSN k.
		if d := lg.DurableLSN(); d < acks {
			t.Fatalf("ack %d reached the wire with durable LSN %d — acked before fsync", acks, d)
		}
	}
}

// TestStickyOplogFailureShutsDown pins the failure policy: once an
// oplog sync fails, the error is sticky — nothing can ever be acked
// again — so the server must come down instead of lingering as a
// zombie that applies mutations no client will see acked.
func TestStickyOplogFailureShutsDown(t *testing.T) {
	lg, err := oplog.Open(filepath.Join(t.TempDir(), "oplog"), 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := grouphash.New(grouphash.Options{Capacity: 1 << 10, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: st, Oplog: lg, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	c := dial(t, ln.Addr().String())
	if err := c.Put(layout.Key{Lo: 1}, 1); err != nil {
		t.Fatal(err)
	}
	// Kill the log out from under the server — every future Sync now
	// fails, standing in for a sticky I/O error.
	lg.Abort()
	if err := c.Put(layout.Key{Lo: 2}, 2); err == nil {
		t.Fatal("write acked after the oplog died")
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut itself down after a sticky oplog failure")
	}
	s.Drain() // join the self-drain; its error (if any) is the sync failure already observed
	if _, err := client.Dial(ln.Addr().String(), 0); err == nil {
		t.Fatal("server still accepting connections after oplog failure")
	}
}

// TestConnsActiveNeverUnderflows is the regression test for the
// Stats() gauge: it used to be computed as accepted − closed from two
// independent atomics, so a sampler interleaving with a connection's
// teardown could read ~2^64. Hammer short-lived connections while a
// sampler polls; any reading beyond the connection count is the bug.
func TestConnsActiveNeverUnderflows(t *testing.T) {
	s, addr := startServer(t, grouphash.Options{Capacity: 1 << 10}, Config{})

	const dialers = 8
	const perDialer = 50
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := s.Stats().ConnsActive; n > dialers*2 {
				t.Errorf("ConnsActive = %d with at most %d connections open", n, dialers)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for d := 0; d < dialers; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perDialer; i++ {
				c, err := client.Dial(addr, time.Second)
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				c.Ping()
				c.Close()
			}
		}()
	}
	wg.Wait()
	close(stop)
	sampler.Wait()
	if got := s.Stats().ConnsAccepted; got < dialers*perDialer {
		t.Fatalf("ConnsAccepted = %d, want at least %d", got, dialers*perDialer)
	}
}

// TestGroupCommitFailureFanOutServer drives the batch-failure contract
// end to end: an injected fsync failure mid-load must tear down every
// connection whose batch it covered WITHOUT acking any member, flip the
// server into its self-drain exactly once, and leave a log whose
// guaranteed-durable prefix (everything up to SyncedSize — what a
// power failure preserves) still contains every write that WAS acked.
func TestGroupCommitFailureFanOutServer(t *testing.T) {
	base := filepath.Join(t.TempDir(), "oplog")
	lg, err := oplog.OpenConfig(base, 1, oplog.Config{SyncEvery: 100 * time.Microsecond, SyncBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var armed atomic.Bool
	boom := errors.New("injected fsync failure")
	oplog.SetTestFsyncErr(func() error {
		if armed.Load() {
			return boom
		}
		return nil
	})
	defer oplog.SetTestFsyncErr(nil)

	st, err := grouphash.New(grouphash.Options{Capacity: 1 << 14, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: st, Oplog: lg, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	const workers = 4
	acked := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(ln.Addr().String(), time.Second)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			base := uint64(w+1) << 32
			for i := uint64(0); ; i += 16 {
				reqs := make([]wire.Request, 16)
				for j := range reqs {
					k := base + i + uint64(j) + 1
					reqs[j] = wire.Request{Op: wire.OpPut, Key: layout.Key{Lo: k}, Value: k}
				}
				resps, err := c.Do(reqs)
				if err != nil {
					return // torn down unacked: the failed batch's fate
				}
				for j, r := range resps {
					switch r.Status {
					case wire.StatusOK:
						acked[w] = append(acked[w], reqs[j].Key.Lo)
					case wire.StatusDraining:
						return
					default:
						t.Errorf("status %d", r.Status)
						return
					}
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	armed.Store(true)
	wg.Wait()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not self-drain after the fsync failure")
	}
	s.Drain() // join the self-drain; its error is the injected failure

	// Power-failure semantics: only the fsynced prefix is guaranteed.
	// Truncate the (now closed) active segment there and replay — every
	// acked write must still be present; if any member of the failed
	// batch had been acked, it would be missing now.
	synced, path := lg.SyncedSize(), lg.ActivePath()
	if err := os.Truncate(path, synced); err != nil {
		t.Fatal(err)
	}
	oplog.SetTestFsyncErr(nil)
	onDisk := make(map[uint64]bool)
	if _, _, err := oplog.Scan(base, 0, func(r oplog.Record) error {
		onDisk[r.Key.Lo] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for w := range acked {
		total += len(acked[w])
		for _, k := range acked[w] {
			if !onDisk[k] {
				t.Fatalf("key %#x was acked OK but is not in the guaranteed-durable log prefix", k)
			}
		}
	}
	t.Logf("%d acked writes, all inside the durable prefix", total)
}

// TestDrainStraddleDurability is the oplog-enabled drain/apply race
// test: pipelined writers hammer an adaptively-committed server while
// Drain flips the draining flag under them, so some batches straddle
// the cut (part acked, part refused StatusDraining). applyWrite checks
// the flag BEFORE the stripe-locked (apply, append) pair; this test
// pins the ordering argument that makes that safe — Drain waits for
// every handler before cutting the final image, so acked ⇒ in the
// image, refused ⇒ absent, and the post-image log replays nothing.
func TestDrainStraddleDurability(t *testing.T) {
	attempt := func(t *testing.T) bool {
		dir := t.TempDir()
		img := filepath.Join(dir, "store.pmfs")
		logBase := filepath.Join(dir, "oplog")
		lg, err := oplog.OpenConfig(logBase, 1, oplog.Config{SyncEvery: 200 * time.Microsecond, SyncBytes: 64 << 10})
		if err != nil {
			t.Fatal(err)
		}
		st, err := grouphash.New(grouphash.Options{Capacity: 1 << 14, Concurrent: true})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Store: st, SnapshotPath: img, Oplog: lg, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- s.Serve(ln) }()

		const workers = 4
		const batch = 128
		type outcome struct{ acked, refused []uint64 }
		outs := make([]outcome, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c, err := client.Dial(ln.Addr().String(), time.Second)
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				defer c.Close()
				base := uint64(w+1) << 32
				for i := uint64(0); ; i += batch {
					reqs := make([]wire.Request, batch)
					for j := range reqs {
						k := base + i + uint64(j) + 1
						reqs[j] = wire.Request{Op: wire.OpPut, Key: layout.Key{Lo: k}, Value: k}
					}
					resps, err := c.Do(reqs)
					if err != nil {
						return
					}
					for j, r := range resps {
						k := reqs[j].Key.Lo
						switch r.Status {
						case wire.StatusOK:
							outs[w].acked = append(outs[w].acked, k)
						case wire.StatusDraining:
							outs[w].refused = append(outs[w].refused, k)
						default:
							t.Errorf("unexpected status %d", r.Status)
						}
					}
					if len(outs[w].refused) > 0 {
						return
					}
				}
			}(w)
		}
		time.Sleep(20 * time.Millisecond)
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if err := <-serveDone; err != nil {
			t.Fatalf("Serve returned %v", err)
		}

		// Full recovery: image + replay past its mark. The drain's final
		// snapshot must already cover every acked write (replay finds
		// nothing), contain no refused one, and the count must match.
		re, mark, err := grouphash.LoadSnapshotMark(img, true)
		if err != nil {
			t.Fatal(err)
		}
		replayed, _, err := re.ReplayOplog(logBase, mark)
		if err != nil {
			t.Fatal(err)
		}
		if replayed != 0 {
			t.Fatalf("replayed %d records past the final image's mark %d — the drain snapshot missed acked writes", replayed, mark)
		}
		var straddled bool
		var ackedTotal uint64
		for w := range outs {
			if len(outs[w].acked) > 0 && len(outs[w].refused) > 0 {
				straddled = true
			}
			ackedTotal += uint64(len(outs[w].acked))
			for _, k := range outs[w].acked {
				if v, ok := re.Get(layout.Key{Lo: k}); !ok || v != k {
					t.Fatalf("acked key %#x = (%d, %v) after recovery", k, v, ok)
				}
			}
			for _, k := range outs[w].refused {
				if _, ok := re.Get(layout.Key{Lo: k}); ok {
					t.Fatalf("key %#x answered StatusDraining yet present after recovery", k)
				}
			}
		}
		if got := re.Len(); got != ackedTotal {
			t.Fatalf("recovered Len = %d, want %d acked keys", got, ackedTotal)
		}
		return straddled
	}
	for try := 0; try < 20; try++ {
		if attempt(t) {
			return
		}
	}
	t.Fatal("no pipelined batch straddled the drain in 20 attempts")
}
