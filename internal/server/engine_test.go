package server

import (
	"net"
	"path/filepath"
	"testing"

	"grouphash"
	"grouphash/internal/engine"
	"grouphash/internal/layout"
)

// startEngineServer is startServer for the engine seam: the caller
// supplies a ready engine (fresh or reloaded) instead of store options.
func startEngineServer(t *testing.T, eng engine.Engine, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Engine = eng
	cfg.Logf = t.Logf
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Drain()
		if err := <-serveDone; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return s, ln.Addr().String()
}

func TestEngineConfigValidation(t *testing.T) {
	eng, err := engine.New(engine.Spec{Name: "pfht", Capacity: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	st, err := grouphash.New(grouphash.Options{Capacity: 1 << 10, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Engine: eng, Store: st}); err == nil {
		t.Fatal("New with both Engine and Store must fail")
	}
	if _, err := New(Config{Engine: eng}); err != nil {
		t.Fatalf("New with an adapter engine: %v", err)
	}
}

// TestEngineServeSnapshotRestart is the per-engine acceptance cycle:
// every engine serves real wire traffic, drains to a final image, and
// a fresh process-equivalent (engine.Load + new server) comes back with
// every acked write and keeps serving.
func TestEngineServeSnapshotRestart(t *testing.T) {
	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			img := filepath.Join(dir, "store.pmfs")
			spec := engine.Spec{Name: name, Capacity: 1 << 12}
			eng, err := engine.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			s, addr := startEngineServer(t, eng, Config{SnapshotPath: img})
			c := dial(t, addr)

			const n = 400
			for i := uint64(1); i <= n; i++ {
				if err := c.Put(spreadKey(i), i*10); err != nil {
					t.Fatalf("%s: Put %d: %v", name, i, err)
				}
			}
			// Deletes and overwrites so the image captures real churn,
			// not just a monotone insert sequence.
			for i := uint64(1); i <= n/4; i++ {
				if ok, err := c.Delete(spreadKey(i)); err != nil || !ok {
					t.Fatalf("%s: Delete %d = (%v, %v)", name, i, ok, err)
				}
			}
			for i := uint64(n/4 + 1); i <= n/2; i++ {
				if err := c.Put(spreadKey(i), i*100); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Drain(); err != nil {
				t.Fatalf("%s: drain: %v", name, err)
			}

			re, mark, err := engine.Load(spec, img)
			if err != nil {
				t.Fatalf("%s: Load: %v", name, err)
			}
			if mark != 0 {
				t.Fatalf("%s: oplog mark = %d without an oplog", name, mark)
			}
			if got := re.Len(); got != n-n/4 {
				t.Fatalf("%s: reloaded Len = %d, want %d", name, got, n-n/4)
			}
			if bad := re.CheckConsistency(); len(bad) != 0 {
				t.Fatalf("%s: reloaded engine inconsistent: %v", name, bad)
			}

			// Second generation: the reloaded engine must serve reads of
			// the surviving keys and accept fresh writes.
			_, addr2 := startEngineServer(t, re, Config{SnapshotPath: img})
			c2 := dial(t, addr2)
			for i := uint64(1); i <= n/4; i++ {
				if _, ok, err := c2.Get(spreadKey(i)); err != nil || ok {
					t.Fatalf("%s: deleted key %d = (ok=%v, %v) after restart", name, i, ok, err)
				}
			}
			for i := uint64(n/4 + 1); i <= n; i++ {
				want := i * 10
				if i <= n/2 {
					want = i * 100
				}
				if v, ok, err := c2.Get(spreadKey(i)); err != nil || !ok || v != want {
					t.Fatalf("%s: key %d = (%d, %v, %v) after restart, want %d", name, i, v, ok, err, want)
				}
			}
			if err := c2.Insert(spreadKey(n+1), 1); err != nil {
				t.Fatalf("%s: Insert after restart: %v", name, err)
			}
			if got, err := c2.Len(); err != nil || got != n-n/4+1 {
				t.Fatalf("%s: Len after restart = (%d, %v)", name, got, err)
			}
		})
	}
}

// spreadKey uses the bench workers' spreading constant so the keys land
// across the whole table rather than one probe cluster.
func spreadKey(i uint64) layout.Key {
	return layout.Key{Lo: i, Hi: i * 0x9e3779b97f4a7c15}
}
