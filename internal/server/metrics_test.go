package server

import (
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"grouphash"
	"grouphash/internal/layout"
	"grouphash/internal/oplog"
	"grouphash/internal/stats"
)

// TestMetricsExposition is the acceptance test for the scrape surface:
// a loaded server's metrics — fetched both over the wire protocol
// (OpStats in Prometheus format) and over HTTP from the registry
// handler — must parse as conformant text exposition and include the
// per-opcode latency histograms, oplog sync/batch metrics, expansion
// counters and (shared-registry) simulated-substrate counters.
func TestMetricsExposition(t *testing.T) {
	lg, err := oplog.Open(filepath.Join(t.TempDir(), "oplog"), 1)
	if err != nil {
		t.Fatal(err)
	}

	// One registry scrapes every layer: the server registers itself,
	// its store and its oplog; a simulated-substrate store contributes
	// the paper's NVM/cache cost counters under its own prefix. (The
	// server's own store is native-backed — the simulator is
	// single-threaded by design, so its counters ride along from a
	// sequential store that is idle at scrape time.)
	reg := stats.NewRegistry()
	sim, err := grouphash.NewSimulated(grouphash.Options{Capacity: 1 << 10}, grouphash.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 64; i++ {
		if err := sim.Put(layout.Key{Lo: i}, i); err != nil {
			t.Fatal(err)
		}
		sim.Get(layout.Key{Lo: i})
	}
	sim.RegisterSubstrateMetrics(reg, "sim")

	s, addr := startServer(t, grouphash.Options{Capacity: 1 << 12}, Config{Oplog: lg, Registry: reg})
	c := dial(t, addr)

	// Load every opcode so each per-op histogram holds samples.
	const puts = 200
	for i := uint64(1); i <= puts; i++ {
		if err := c.Put(layout.Key{Lo: i}, i*3); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 50; i++ {
		if _, _, err := c.Get(layout.Key{Lo: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Insert(layout.Key{Lo: 1 << 40}, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(layout.Key{Lo: 5}); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Len(); err != nil {
		t.Fatal(err)
	}

	check := func(src, text string) map[string]*stats.ExpoFamily {
		t.Helper()
		fams, err := stats.ValidateExposition(strings.NewReader(text))
		if err != nil {
			t.Fatalf("%s fails exposition conformance: %v\n%s", src, err, text)
		}
		// Per-opcode latency histograms with the load's sample counts.
		lat := fams["gh_server_request_latency_seconds"]
		if lat == nil || lat.Type != "histogram" {
			t.Fatalf("%s: gh_server_request_latency_seconds missing or mistyped", src)
		}
		for op, atLeast := range map[string]float64{
			"put": puts, "get": 50, "insert": 1, "delete": 1, "ping": 1, "len": 1,
		} {
			if v := lat.Samples[`_count|op="`+op+`"`]; v < atLeast {
				t.Errorf("%s: latency count for op=%s is %v, want ≥ %v", src, op, v, atLeast)
			}
		}
		// Oplog durability metrics: every acked write was synced, so
		// the sync-latency and batch-size histograms must hold samples.
		for _, name := range []string{"gh_oplog_sync_latency_seconds", "gh_oplog_batch_records"} {
			f := fams[name]
			if f == nil || f.Type != "histogram" {
				t.Fatalf("%s: %s missing or mistyped", src, name)
			}
			if v := f.Samples["_count|"]; v < 1 {
				t.Errorf("%s: %s count = %v, want ≥ 1", src, name, v)
			}
		}
		// Ack latency: every durably acked write contributes one sample
		// measured from request receipt to durable-watermark release.
		ack := fams["gh_server_ack_latency_seconds"]
		if ack == nil || ack.Type != "histogram" {
			t.Fatalf("%s: gh_server_ack_latency_seconds missing or mistyped", src)
		}
		if v := ack.Samples["_count|"]; v < puts {
			t.Errorf("%s: ack latency count = %v, want ≥ %v", src, v, float64(puts))
		}
		if v, ok := fams["gh_oplog_last_lsn"].Sample(""); !ok || v < puts {
			t.Errorf("%s: gh_oplog_last_lsn = %v (%v), want ≥ %v", src, v, ok, float64(puts))
		}
		// Expansion progress series exist (zero-valued is fine at this
		// load — presence and parseability is the contract here; the
		// non-zero path is covered by the façade property test).
		for _, name := range []string{
			"gh_store_expansions_total", "gh_store_expansion_stripes_migrated",
			"gh_store_expansion_stripes", "gh_store_expansion_writer_stall_seconds_total",
		} {
			if _, ok := fams[name]; !ok {
				t.Errorf("%s: %s missing", src, name)
			}
		}
		if v, ok := fams["gh_store_items"].Sample(""); !ok || v < puts {
			t.Errorf("%s: gh_store_items = %v (%v), want ≥ %v", src, v, ok, float64(puts))
		}
		// Substrate counters from the shared registry: NVM write
		// traffic and per-level cache hits, non-zero from the sim load.
		if v, ok := fams["sim_nvm_stores_total"].Sample(""); !ok || v == 0 {
			t.Errorf("%s: sim_nvm_stores_total = %v (%v), want > 0", src, v, ok)
		}
		hits := fams["sim_cache_hits_total"]
		if hits == nil {
			t.Fatalf("%s: sim_cache_hits_total missing", src)
		}
		if v, ok := hits.Sample(`level="L1"`); !ok || v == 0 {
			t.Errorf(`%s: sim_cache_hits_total{level="L1"} = %v (%v), want > 0`, src, v, ok)
		}
		// Server byte accounting moved at least the request traffic.
		if v, ok := fams["gh_server_bytes_read_total"].Sample(""); !ok || v == 0 {
			t.Errorf("%s: gh_server_bytes_read_total = %v (%v), want > 0", src, v, ok)
		}
		return fams
	}

	// Path 1: over the wire protocol (OpStats, Prometheus format).
	wireText, err := c.ServerMetrics()
	if err != nil {
		t.Fatal(err)
	}
	check("wire scrape", wireText)

	// Path 2: over HTTP from the registry handler, as /metrics mounts it.
	rec := httptest.NewRecorder()
	s.Registry().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("scrape content type %q", ct)
	}
	check("http scrape", rec.Body.String())

	if !s.Ready() {
		t.Error("serving, undrained server must report Ready")
	}
}

// TestStatsFormats pins the OpStats format selector: the previously
// ignored request Value now chooses text (0), JSON (1) or Prometheus
// (2), with unknown values falling back to text — so old clients that
// sent garbage in Value keep getting what they always got.
func TestStatsFormats(t *testing.T) {
	_, addr := startServer(t, grouphash.Options{Capacity: 1 << 12}, Config{})
	c := dial(t, addr)
	if err := c.Put(layout.Key{Lo: 9}, 9); err != nil {
		t.Fatal(err)
	}

	text, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "reads=") {
		t.Fatalf("text stats missing counters: %q", text)
	}

	js, err := c.ServerStatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Writes uint64 `json:"Writes"`
		Items  uint64 `json:"Items"`
	}
	if err := json.Unmarshal([]byte(js), &doc); err != nil {
		t.Fatalf("JSON stats do not parse: %v\n%s", err, js)
	}
	if doc.Writes < 1 || doc.Items < 1 {
		t.Fatalf("JSON stats miscounted: %+v", doc)
	}

	prom, err := c.ServerMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stats.ValidateExposition(strings.NewReader(prom)); err != nil {
		t.Fatalf("wire Prometheus stats fail conformance: %v", err)
	}
}
