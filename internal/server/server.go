// Package server puts a grouphash store behind a TCP socket: the
// first layer of this repository that exercises the table the way a
// production service would — many connections, pipelined requests,
// background snapshots, and a graceful drain that turns a SIGTERM into
// a durable image.
//
// Architecture: one goroutine per connection over the wire protocol
// (internal/wire), buffered framing with a flush-before-blocking-read
// rule so pipelined batches are answered in one writev, the concurrent
// native-backend store underneath (per-group striped locks, seqlock
// reads), and the façade's Quiesce/Snapshot hooks for consistent
// images while serving.
//
// Durability contract: the server is a cache-with-snapshots, not a
// database. Acked writes are guaranteed durable only up to the most
// recent completed snapshot; on a clean drain (Drain, typically wired
// to SIGINT/SIGTERM) a final snapshot makes EVERY acked write durable.
// On a power failure, acked writes since the last snapshot are lost —
// there is no write-ahead log yet. See DESIGN.md §6.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"grouphash"
	"grouphash/internal/hashtab"
	"grouphash/internal/stats"
	"grouphash/internal/wire"
)

// Config configures a Server.
type Config struct {
	// Store is the store to serve. It must have been built with
	// Options.Concurrent (every connection gets its own goroutine).
	Store *grouphash.Store
	// SnapshotPath, when non-empty, enables snapshots: a final image
	// on Drain, plus periodic background images every SnapshotEvery.
	SnapshotPath string
	// SnapshotEvery is the background snapshot period; 0 disables
	// periodic snapshots (the final drain snapshot still happens).
	SnapshotEvery time.Duration
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Metrics is a point-in-time copy of the server's counters.
type Metrics struct {
	// ConnsAccepted counts connections ever accepted; ConnsActive is
	// the current count.
	ConnsAccepted, ConnsActive uint64
	// Reads, Writes, Deletes, Others count requests by class (Get;
	// Put+Insert; Delete; Ping+Len+Stats).
	Reads, Writes, Deletes, Others uint64
	// Full, InvalidKey, BadRequest count non-OK outcomes.
	Full, InvalidKey, BadRequest uint64
	// Snapshots counts completed snapshot saves (periodic + final).
	Snapshots uint64
	// Expansions counts completed online table expansions.
	Expansions uint64
}

// Server serves one Store over TCP. Create with New, start with Serve
// or ListenAndServe, stop with Drain.
type Server struct {
	cfg  Config
	ln   net.Listener
	logf func(string, ...any)

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	handlers   sync.WaitGroup // per-connection goroutines
	loops      sync.WaitGroup // snapshot ticker goroutine
	stop       chan struct{}  // closed by Drain
	acceptDone chan struct{}  // closed when the accept loop exits
	serving    atomic.Bool    // Serve was entered
	draining   atomic.Bool
	drainErr   error
	drained    sync.Once

	accepted, closedConns            stats.Counter
	reads, writes, deletes, others   stats.Counter
	full, invalid, badreq, snapshots stats.Counter
	lat                              *stats.Reservoir
}

// New validates cfg and builds a Server (not yet listening).
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: Config.Store is required")
	}
	if !cfg.Store.Concurrent() {
		return nil, fmt.Errorf("server: the store must be built with Options.Concurrent")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{
		cfg:        cfg,
		logf:       logf,
		conns:      make(map[net.Conn]struct{}),
		stop:       make(chan struct{}),
		acceptDone: make(chan struct{}),
		lat:        stats.NewReservoir(8192),
	}, nil
}

// ListenAndServe listens on addr and serves until Drain.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Drain is called, then returns
// nil (any non-drain accept failure is returned as an error). The
// snapshot ticker starts here and stops at drain.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.serving.Store(true)
	defer close(s.acceptDone)
	if s.cfg.SnapshotPath != "" && s.cfg.SnapshotEvery > 0 {
		s.loops.Add(1)
		go s.snapshotLoop()
	}
	s.logf("server: serving on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.accepted.Inc()
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		if s.draining.Load() {
			// Drain's deadline sweep may have run before this conn was
			// registered; nudge it ourselves so the drain cannot hang.
			conn.SetReadDeadline(time.Now())
		}
		s.mu.Unlock()
		s.handlers.Add(1)
		go s.handle(conn)
	}
}

// Addr returns the listening address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Drain gracefully shuts the server down: stop accepting, let every
// connection finish the requests the server has already buffered
// (responses are flushed, so they are acked), close the connections,
// and — when snapshots are configured — save a final image containing
// every acked write. Safe to call more than once; later calls return
// the first call's result after it completes.
func (s *Server) Drain() error {
	s.drained.Do(func() {
		s.draining.Store(true)
		close(s.stop)
		s.mu.Lock()
		if s.ln != nil {
			s.ln.Close()
		}
		// Kick handlers out of blocking reads; requests already in
		// their userspace buffers are still served before they exit.
		now := time.Now()
		for conn := range s.conns {
			conn.SetReadDeadline(now)
		}
		s.mu.Unlock()
		if s.serving.Load() {
			// The accept loop must exit before handlers.Wait: a conn
			// accepted just before the listener closed is only counted
			// into the WaitGroup by the loop's final iteration.
			<-s.acceptDone
		}
		s.handlers.Wait()
		s.loops.Wait()
		if s.cfg.SnapshotPath != "" {
			s.drainErr = s.snapshot("final")
		}
		s.logf("server: drained (%d conns served, %d writes, %d reads)",
			s.accepted.Load(), s.writes.Load(), s.reads.Load())
	})
	return s.drainErr
}

// snapshotLoop saves periodic background images until drain.
func (s *Server) snapshotLoop() {
	defer s.loops.Done()
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if err := s.snapshot("periodic"); err != nil {
				s.logf("server: periodic snapshot failed: %v", err)
			}
		}
	}
}

// snapshot quiesces writers and saves one image.
func (s *Server) snapshot(kind string) error {
	start := time.Now()
	if err := s.cfg.Store.Snapshot(s.cfg.SnapshotPath); err != nil {
		return err
	}
	s.snapshots.Inc()
	s.logf("server: %s snapshot (%d items) in %s", kind, s.cfg.Store.Len(), time.Since(start).Round(time.Millisecond))
	return nil
}

// handle runs one connection: read a frame, serve it, queue the
// response; flush whenever the input buffer runs dry (the pipelining
// rule — a batch of k requests costs one flush, a lone request is
// answered immediately before the next blocking read).
func (s *Server) handle(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.closedConns.Inc()
		s.handlers.Done()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		req, err := wire.ReadRequest(br)
		if err != nil {
			// Clean close, drain deadline, or protocol garbage: flush
			// whatever was answered (those become acked) and hang up.
			bw.Flush()
			return
		}
		start := time.Now()
		resp := s.dispatch(req)
		s.lat.Add(float64(time.Since(start).Nanoseconds()))
		if err := wire.WriteResponse(bw, resp); err != nil {
			return
		}
	}
}

// dispatch executes one request against the store.
func (s *Server) dispatch(req wire.Request) wire.Response {
	st := s.cfg.Store
	switch req.Op {
	case wire.OpPing:
		s.others.Inc()
		return wire.Response{Status: wire.StatusOK}
	case wire.OpGet:
		s.reads.Inc()
		v, ok := st.Get(req.Key)
		if !ok {
			return wire.Response{Status: wire.StatusNotFound}
		}
		return wire.Response{Status: wire.StatusOK, Value: v}
	case wire.OpPut:
		s.writes.Inc()
		return s.errResponse(st.Put(req.Key, req.Value))
	case wire.OpInsert:
		s.writes.Inc()
		return s.errResponse(st.Insert(req.Key, req.Value))
	case wire.OpDelete:
		s.deletes.Inc()
		if !st.Delete(req.Key) {
			return wire.Response{Status: wire.StatusNotFound}
		}
		return wire.Response{Status: wire.StatusOK}
	case wire.OpLen:
		s.others.Inc()
		return wire.Response{Status: wire.StatusOK, Value: st.Len()}
	case wire.OpStats:
		s.others.Inc()
		return wire.Response{Status: wire.StatusOK, Extra: []byte(s.StatsText())}
	default:
		s.badreq.Inc()
		return wire.Response{Status: wire.StatusBadRequest}
	}
}

// errResponse maps store write errors to wire statuses.
func (s *Server) errResponse(err error) wire.Response {
	switch {
	case err == nil:
		return wire.Response{Status: wire.StatusOK}
	case errors.Is(err, hashtab.ErrTableFull):
		s.full.Inc()
		return wire.Response{Status: wire.StatusFull}
	case errors.Is(err, hashtab.ErrInvalidKey):
		s.invalid.Inc()
		return wire.Response{Status: wire.StatusInvalidKey}
	default:
		s.badreq.Inc()
		return wire.Response{Status: wire.StatusBadRequest}
	}
}

// Stats returns a copy of the server's counters.
func (s *Server) Stats() Metrics {
	return Metrics{
		ConnsAccepted: s.accepted.Load(),
		ConnsActive:   s.accepted.Load() - s.closedConns.Load(),
		Reads:         s.reads.Load(),
		Writes:        s.writes.Load(),
		Deletes:       s.deletes.Load(),
		Others:        s.others.Load(),
		Full:          s.full.Load(),
		InvalidKey:    s.invalid.Load(),
		BadRequest:    s.badreq.Load(),
		Snapshots:     s.snapshots.Load(),
		Expansions:    s.cfg.Store.Expansions(),
	}
}

// StatsText renders the counters and request-latency quantiles as the
// human-readable text OpStats returns.
func (s *Server) StatsText() string {
	m := s.Stats()
	sample := s.lat.Snapshot()
	us := func(q float64) float64 { return sample.Quantile(q) / 1e3 }
	return fmt.Sprintf(
		"items=%d load=%.3f conns=%d/%d reads=%d writes=%d deletes=%d others=%d "+
			"full=%d invalid=%d bad=%d snapshots=%d expansions=%d expanding=%v draining=%v "+
			"latency_us{p50=%.1f p90=%.1f p99=%.1f max=%.1f n=%d}",
		s.cfg.Store.Len(), s.cfg.Store.LoadFactor(),
		m.ConnsActive, m.ConnsAccepted,
		m.Reads, m.Writes, m.Deletes, m.Others,
		m.Full, m.InvalidKey, m.BadRequest, m.Snapshots,
		m.Expansions, s.cfg.Store.Expanding(), s.draining.Load(),
		us(0.5), us(0.9), us(0.99), us(1), sample.N())
}
