// Package server puts a grouphash store behind a TCP socket: the
// first layer of this repository that exercises the table the way a
// production service would — many connections, pipelined requests,
// group-committed durability, background snapshots, and a graceful
// drain that turns a SIGTERM into a durable image.
//
// Architecture: one goroutine per connection over the wire protocol
// (internal/wire), buffered framing with a flush-before-blocking-read
// rule so pipelined batches are answered in one writev, the concurrent
// native-backend store underneath (per-group striped locks, seqlock
// reads), and the façade's Quiesce/Snapshot hooks for consistent
// images while serving.
//
// Batching: mutations reach the store through its stripe-grouped
// ApplyBatch whenever more than one is in hand — explicit OpBatch
// frames (N packed sub-ops, one packed response frame, all-or-nothing
// ack) and, transparently, coalesced runs of consecutive single-frame
// mutations within a pipelined burst. Either way each stripe-run costs
// one lock acquisition, ONE oplog append, and one count persist for
// the whole run instead of one of each per operation. Coalescing never
// reorders what a client can observe: any read (or other non-mutation)
// flushes the pending run first, and the k-th response still answers
// the k-th request. The serving loop itself is allocation-free at
// steady state — pooled completion-queue chunks and batch-response
// frames, a per-connection reused request reader and batch scratch.
//
// Durability contract: snapshot + oplog — acked ⇒ durable. Every
// mutating request is appended to the operation log (internal/oplog)
// inside the store's own per-stripe critical section, and its response
// is released only when the log's durable-LSN watermark passes the
// record: one group-committed fsync per pipelined batch in legacy
// mode, or per adaptive commit window (fsync every T µs or B bytes,
// whichever first, batching across connections) when the log runs
// adaptively. Periodic snapshots bound the log: each image records the
// LSN it covers, the log rotates at the capture point (under a
// full-store quiesce, so mark and image always agree), and
// fully-covered segments are deleted once the image is durable. Recovery is LoadSnapshotMark + Store.ReplayOplog:
// after any crash — power failure included — every acked write is
// present exactly once. Without a Config.Oplog the server degrades to
// the old cache-with-snapshots mode, where a power failure loses acked
// writes since the last completed image. See DESIGN.md §6.
//
// Drain contract: once Drain begins, already-buffered write requests
// are answered with StatusDraining instead of being applied — the
// final snapshot's contents are decided the moment the drain starts,
// and no write acked OK is ever left out of it. Reads keep being
// served until each connection's buffer runs dry.
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"grouphash"
	"grouphash/internal/engine"
	"grouphash/internal/hashtab"
	"grouphash/internal/oplog"
	"grouphash/internal/stats"
	"grouphash/internal/wire"
)

// Config configures a Server.
type Config struct {
	// Engine is the storage engine to serve — the flagship group-hash
	// store or any internal/engine adapter. Exactly one of Engine and
	// Store must be set.
	Engine engine.Engine
	// Store is the flagship store to serve, a convenience alias for
	// Engine (the store IS an engine). It must have been built with
	// Options.Concurrent (every connection gets its own goroutine).
	Store *grouphash.Store
	// SnapshotPath, when non-empty, enables snapshots: a final image
	// on Drain, plus periodic background images every SnapshotEvery.
	SnapshotPath string
	// SnapshotEvery is the background snapshot period; 0 disables
	// periodic snapshots (the final drain snapshot still happens).
	SnapshotEvery time.Duration
	// Oplog, when non-nil, is the operation log every mutating request
	// is made durable on before it is acked. The caller opens it
	// (after replaying it into Store) and the server takes ownership:
	// Drain closes it. See cmd/ghserver for the recovery sequence.
	Oplog *oplog.Log
	// Registry, when non-nil, is where the server registers its metrics
	// (plus the store's and oplog's); nil means a fresh private registry,
	// available via Server.Registry for mounting at /metrics. Each
	// registry can hold at most one server — registering two panics on
	// the duplicate metric names.
	Registry *stats.Registry
	// DisableTiming turns off the per-request instrumentation (latency
	// histogram observation and byte accounting) so the overhead of the
	// two time.Now calls per request can be measured; everything else —
	// class counters, oplog metrics — stays on. Used by ghbench's
	// before/after overhead experiment.
	DisableTiming bool
	// DisableCoalescing turns off the transparent batching of
	// pipelined single-op mutations: every mutation is applied (and
	// oplog-appended) on its own, the pre-batching behaviour. Explicit
	// OpBatch frames still batch. A benchmarking knob — ghbench's
	// batch experiment uses it to measure what coalescing buys; never
	// set it on a production server.
	DisableCoalescing bool
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Metrics is a point-in-time copy of the server's counters.
type Metrics struct {
	// ConnsAccepted counts connections ever accepted; ConnsActive is
	// the current count (a single gauge, so it can never underflow
	// when a connection closes mid-read).
	ConnsAccepted, ConnsActive uint64
	// Reads, Writes, Deletes, Others count requests by class (Get;
	// Put+Insert; Delete; Ping+Len+Stats).
	Reads, Writes, Deletes, Others uint64
	// Full, InvalidKey, BadRequest count non-OK outcomes.
	Full, InvalidKey, BadRequest uint64
	// DrainRejects counts write requests answered StatusDraining
	// after a drain began.
	DrainRejects uint64
	// Snapshots counts completed snapshot saves (periodic + final).
	Snapshots uint64
	// Expansions counts completed online table expansions.
	Expansions uint64
	// OplogLastLSN and OplogDurableLSN are the operation log's
	// assigned and fsynced high-water marks (0 without an oplog).
	OplogLastLSN, OplogDurableLSN uint64
	// BytesRead and BytesWritten count wire-protocol frame bytes in and
	// out (0 when Config.DisableTiming turned byte accounting off).
	BytesRead, BytesWritten uint64
}

// Server serves one Store over TCP. Create with New, start with Serve
// or ListenAndServe, stop with Drain (graceful) or Abort (simulated
// crash).
type Server struct {
	cfg  Config
	eng  engine.Engine // resolved from cfg.Engine / cfg.Store
	ln   net.Listener
	logf func(string, ...any)

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	// snapMu serialises snapshot saves (periodic ticker vs final drain).
	// Writers no longer take any server-global lock: each mutation runs
	// its oplog append inside the store's own per-stripe critical
	// section (PutHook and friends), and the snapshot path reads its
	// oplog mark via SnapshotWriterAt with every stripe held — the same
	// applied==appended guarantee the old global RWMutex provided,
	// without a process-wide writer convoy.
	snapMu sync.Mutex

	handlers   sync.WaitGroup // per-connection goroutines
	loops      sync.WaitGroup // snapshot ticker goroutine
	stop       chan struct{}  // closed by Drain/Abort
	acceptDone chan struct{}  // closed when the accept loop exits
	serving    atomic.Bool    // Serve was entered
	draining   atomic.Bool
	aborted    atomic.Bool
	oplogDead  atomic.Bool // a sticky oplog failure began a self-drain
	drainErr   error
	drained    sync.Once

	accepted                         stats.Counter
	connsActive                      stats.Gauge
	reads, writes, deletes, others   stats.Counter
	full, invalid, badreq, snapshots stats.Counter
	drainRejects                     stats.Counter
	bytesRead, bytesWritten          stats.Counter
	// opLat is the per-opcode request latency distribution in
	// nanoseconds, indexed by opcode (slot 0 collects unknown opcodes).
	// Histograms are lock-free and zero-value-ready, so the hot path
	// pays two atomic adds per request and registration needs no init.
	opLat          [wire.OpBatch + 1]stats.Histogram
	snapDur        stats.Histogram // snapshot capture+write duration, ns
	ackLat         stats.Histogram // write dispatch → durable-watermark release, ns
	batchFrameSize stats.Histogram // sub-ops per explicit OpBatch frame
	coalesceSize   stats.Histogram // mutations per coalesced pipelined run
	registry       *stats.Registry
}

// New validates cfg and builds a Server (not yet listening).
func New(cfg Config) (*Server, error) {
	eng := cfg.Engine
	switch {
	case eng == nil && cfg.Store == nil:
		return nil, fmt.Errorf("server: one of Config.Engine or Config.Store is required")
	case eng != nil && cfg.Store != nil:
		return nil, fmt.Errorf("server: Config.Engine and Config.Store are mutually exclusive")
	case eng == nil:
		if !cfg.Store.Concurrent() {
			return nil, fmt.Errorf("server: the store must be built with Options.Concurrent")
		}
		eng = cfg.Store
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:        cfg,
		eng:        eng,
		logf:       logf,
		conns:      make(map[net.Conn]struct{}),
		stop:       make(chan struct{}),
		acceptDone: make(chan struct{}),
	}
	s.registry = cfg.Registry
	if s.registry == nil {
		s.registry = stats.NewRegistry()
	}
	s.registerMetrics(s.registry)
	eng.RegisterMetrics(s.registry, "gh")
	if cfg.Oplog != nil {
		cfg.Oplog.RegisterMetrics(s.registry, "gh")
	}
	return s, nil
}

// opNames maps opcodes to their metric label, indexed like opLat.
var opNames = [wire.OpBatch + 1]string{
	"unknown", "ping", "get", "put", "insert", "delete", "len", "stats", "batch",
}

// registerMetrics exports the server's own counters, gauges and
// latency histograms into reg under the gh_server_ prefix.
func (s *Server) registerMetrics(reg *stats.Registry) {
	p := "gh_server_"
	reg.RegisterCounter(p+"connections_accepted_total", "", "Connections ever accepted.", s.accepted.Load)
	reg.RegisterGauge(p+"connections_active", "", "Currently open connections.",
		func() float64 { return float64(s.connsActive.Load()) })
	reg.RegisterCounter(p+"requests_total", stats.Label("class", "read"), "Requests served, by class.", s.reads.Load)
	reg.RegisterCounter(p+"requests_total", stats.Label("class", "write"), "", s.writes.Load)
	reg.RegisterCounter(p+"requests_total", stats.Label("class", "delete"), "", s.deletes.Load)
	reg.RegisterCounter(p+"requests_total", stats.Label("class", "other"), "", s.others.Load)
	reg.RegisterCounter(p+"errors_total", stats.Label("kind", "full"), "Non-OK request outcomes, by kind.", s.full.Load)
	reg.RegisterCounter(p+"errors_total", stats.Label("kind", "invalid_key"), "", s.invalid.Load)
	reg.RegisterCounter(p+"errors_total", stats.Label("kind", "bad_request"), "", s.badreq.Load)
	reg.RegisterCounter(p+"drain_rejects_total", "", "Writes answered StatusDraining after a drain began.", s.drainRejects.Load)
	reg.RegisterCounter(p+"snapshots_total", "", "Completed snapshot saves (periodic + final).", s.snapshots.Load)
	reg.RegisterCounter(p+"bytes_read_total", "", "Wire-protocol frame bytes read.", s.bytesRead.Load)
	reg.RegisterCounter(p+"bytes_written_total", "", "Wire-protocol frame bytes written.", s.bytesWritten.Load)
	reg.RegisterGauge(p+"draining", "", "1 once a drain has begun.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	for op := 1; op < len(s.opLat); op++ {
		reg.RegisterHistogram(p+"request_latency_seconds", stats.Label("op", opNames[op]),
			"Request dispatch latency by opcode (store + oplog append; excludes the group-commit fsync, which is amortised per batch).",
			1e-9, &s.opLat[op])
	}
	reg.RegisterHistogram(p+"batch_size", stats.Label("source", "frame"),
		"Sub-operations per applied batch: explicit OpBatch frames (source=frame) and coalesced pipelined mutation runs (source=coalesced).",
		1, &s.batchFrameSize)
	reg.RegisterHistogram(p+"batch_size", stats.Label("source", "coalesced"), "", 1, &s.coalesceSize)
	reg.RegisterHistogram(p+"snapshot_duration_seconds", "",
		"Snapshot duration, capture through durable image write.", 1e-9, &s.snapDur)
	reg.RegisterHistogram(p+"ack_latency_seconds", "",
		"Acked-write latency: dispatch of a logged mutation until its response is released by the durable-LSN watermark (includes the group-commit wait).", 1e-9, &s.ackLat)
}

// AckLatency returns the acked-write latency distribution in
// nanoseconds: dispatch of a logged mutation until the durable-LSN
// watermark released its response. Empty without an oplog or with
// Config.DisableTiming set.
func (s *Server) AckLatency() *stats.HistSnapshot { return s.ackLat.Snapshot() }

// Registry returns the registry holding the server's (and its store's
// and oplog's) metrics — mount it at /metrics.
func (s *Server) Registry() *stats.Registry { return s.registry }

// Draining reports whether a drain (graceful shutdown) has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Ready reports whether the server is accepting and serving requests —
// the /healthz readiness condition, which flips false the moment a
// drain begins.
func (s *Server) Ready() bool { return s.serving.Load() && !s.draining.Load() }

// ListenAndServe listens on addr and serves until Drain.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Drain is called, then returns
// nil (any non-drain accept failure is returned as an error). The
// snapshot ticker starts here and stops at drain.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.serving.Store(true)
	defer close(s.acceptDone)
	if s.cfg.SnapshotPath != "" && s.cfg.SnapshotEvery > 0 {
		s.loops.Add(1)
		go s.snapshotLoop()
	}
	s.logf("server: serving on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.accepted.Inc()
		s.connsActive.Inc()
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		if s.draining.Load() {
			// Drain's deadline sweep may have run before this conn was
			// registered; nudge it ourselves so the drain cannot hang.
			conn.SetReadDeadline(time.Now())
		}
		s.mu.Unlock()
		s.handlers.Add(1)
		go s.handle(conn)
	}
}

// Addr returns the listening address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Drain gracefully shuts the server down: stop accepting, answer the
// writes each connection has already buffered with StatusDraining
// (reads are still served), flush the responses, close the
// connections, and — when snapshots are configured — save a final
// image containing every acked write. The oplog, if any, is truncated
// to the final image and closed. Safe to call more than once; later
// calls return the first call's result after it completes.
func (s *Server) Drain() error {
	s.drained.Do(func() {
		s.draining.Store(true)
		close(s.stop)
		s.mu.Lock()
		if s.ln != nil {
			s.ln.Close()
		}
		// Kick handlers out of blocking reads; requests already in
		// their userspace buffers are still answered (reads served,
		// writes refused) before they exit.
		now := time.Now()
		for conn := range s.conns {
			conn.SetReadDeadline(now)
		}
		s.mu.Unlock()
		if s.serving.Load() {
			// The accept loop must exit before handlers.Wait: a conn
			// accepted just before the listener closed is only counted
			// into the WaitGroup by the loop's final iteration.
			<-s.acceptDone
		}
		s.handlers.Wait()
		s.loops.Wait()
		if s.cfg.SnapshotPath != "" {
			s.drainErr = s.snapshot("final")
		}
		if s.cfg.Oplog != nil {
			if err := s.cfg.Oplog.Close(); err != nil && s.drainErr == nil {
				s.drainErr = err
			}
		}
		s.logf("server: drained (%d conns served, %d writes, %d reads, %d writes refused)",
			s.accepted.Load(), s.writes.Load(), s.reads.Load(), s.drainRejects.Load())
	})
	return s.drainErr
}

// Abort hard-stops the server with none of the drain protocol: the
// listener and every connection are closed immediately, nothing else
// is flushed or acked, no final snapshot is taken, and the oplog is
// left exactly as the crash would find it. It is the in-process
// analogue of kill -9, built for crash-torture tests; production
// shutdown wants Drain. Unlike a real crash it does wait for the
// per-connection goroutines to finish dying, so the caller can inspect
// the on-disk state race-free.
func (s *Server) Abort() {
	s.aborted.Store(true)
	s.drained.Do(func() {
		s.draining.Store(true)
		close(s.stop)
		s.mu.Lock()
		if s.ln != nil {
			s.ln.Close()
		}
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		if s.serving.Load() {
			<-s.acceptDone
		}
		s.handlers.Wait()
		s.loops.Wait()
		s.logf("server: aborted (simulated crash)")
	})
}

// oplogFailure reacts to a failed oplog sync. The log's error is
// sticky — its durable prefix is unknown and nothing can ever be
// acked on it again — so staying up would leave a zombie server that
// keeps applying store mutations no client will ever see acked (and
// whose reads expose them). Refuse further writes and begin a drain;
// the goroutine is required because the failing handler itself must
// exit before Drain's handlers.Wait can complete.
func (s *Server) oplogFailure(err error) {
	if s.oplogDead.Swap(true) || s.draining.Load() {
		return
	}
	s.logf("server: oplog failure is sticky, nothing can be acked again; shutting down: %v", err)
	go s.Drain()
}

// snapshotLoop saves periodic background images until drain.
// SnapshotNow saves an on-demand image (same protocol as the periodic
// and final snapshots: capture under writer exclusion, rotate the
// oplog, truncate covered segments). For chaos schedules and
// operational tooling that want a snapshot/reload cycle at a moment of
// their choosing. Requires SnapshotPath.
func (s *Server) SnapshotNow() error {
	if s.cfg.SnapshotPath == "" {
		return errors.New("server: SnapshotNow without a SnapshotPath")
	}
	return s.snapshot("requested")
}

func (s *Server) snapshotLoop() {
	defer s.loops.Done()
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if err := s.snapshot("periodic"); err != nil {
				s.logf("server: periodic snapshot failed: %v", err)
			}
		}
	}
}

// errAborted reports a snapshot cut short by Abort — the simulated
// crash landed between the snapshot's durable steps.
var errAborted = errors.New("server: aborted mid-snapshot")

// snapshot saves one image. With an oplog the capture runs under the
// store's own writer-exclusion window (SnapshotWriterAt quiesces every
// stripe): read the log's high-water mark M, rotate the log, capture
// the image — all with writers parked on their stripe locks — then
// write the image outside the window and finally delete the log
// segments the image covers. A crash between any two of those durable
// steps is safe: the rotation alone changes nothing replay-visible,
// an image that never lands leaves the old image + full log, and a
// missing truncation leaves covered segments that replay skips by LSN.
func (s *Server) snapshot(kind string) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	start := time.Now()
	if s.cfg.Oplog == nil {
		if err := s.eng.Snapshot(s.cfg.SnapshotPath); err != nil {
			return err
		}
		s.snapshots.Inc()
		s.snapDur.Observe(uint64(time.Since(start)))
		s.logf("server: %s snapshot (%d items) in %s", kind, s.eng.Len(), time.Since(start).Round(time.Millisecond))
		return nil
	}
	var mark uint64
	write, err := s.eng.SnapshotWriterAt(func() (uint64, error) {
		// All stripes are held here: no (apply, append) pair is in
		// flight, so the log's last LSN is exactly the image's content.
		mark = s.cfg.Oplog.LastLSN()
		return mark, s.cfg.Oplog.Rotate()
	})
	if err != nil {
		return err
	}
	if s.aborted.Load() {
		return errAborted // crash point: rotated, image never written
	}
	if err := write(s.cfg.SnapshotPath); err != nil {
		return err
	}
	s.snapshots.Inc()
	s.snapDur.Observe(uint64(time.Since(start)))
	if s.aborted.Load() {
		return errAborted // crash point: image durable, log not yet truncated
	}
	if err := s.cfg.Oplog.TruncateThrough(mark); err != nil {
		// Non-fatal: covered segments merely linger; replay skips them.
		s.logf("server: oplog truncation after %s snapshot: %v", kind, err)
	}
	s.logf("server: %s snapshot (%d items, oplog mark %d) in %s",
		kind, s.eng.Len(), mark, time.Since(start).Round(time.Millisecond))
	return nil
}

// ackChunkCap caps how many applied responses the reader accumulates
// before handing them to the acker even when the client keeps
// streaming, and ackQueueChunks bounds the chunks in flight between
// the two goroutines. A full queue blocks the reader, so a client
// that streams requests without reading responses holds at most
// ackQueueChunks×ackChunkCap unreleased acks in memory.
const (
	ackChunkCap    = 1024
	ackQueueChunks = 8
)

// pendingResp is one applied request parked on the completion queue
// until the durable-LSN watermark covers it. A batch frame's N packed
// sub-responses park as ONE entry (batch non-nil, resp unused) whose
// lsn is the frame's highest sub-op LSN — the all-or-nothing ack.
type pendingResp struct {
	resp  wire.Response
	batch *respBuf  // non-nil: an OpBatch frame's pooled sub-responses
	lsn   uint64    // oplog LSN the ack must not precede to the wire; 0 = unlogged
	start time.Time // dispatch time for the ack-latency histogram; zero when untimed
}

// handle runs one connection as a two-goroutine pipeline. The reader
// (this goroutine) decodes frames — single requests and OpBatch
// frames — applies them, and accumulates the responses — each with
// the oplog LSN its ack must wait for — into a pooled chunk that is
// pushed onto the per-connection completion queue at the pipelining
// boundaries: when the input buffer runs dry (the next read would
// block) or the chunk hits ackChunkCap. Cutting chunks at input-dry
// points is load-bearing — one client burst becomes one chunk, so the
// acker parks in WaitDurable once per burst rather than once per
// response, and a lone request is still released immediately.
//
// Mutations are not dispatched one at a time: consecutive single-frame
// Put/Insert/Delete requests within a burst are coalesced and applied
// together through the store's stripe-grouped batch path (one lock
// acquisition + one oplog append + one count persist per stripe-run),
// flushing whenever program order could become observable — before any
// read or other non-mutation, before a batch frame, at every chunk cut,
// and when the burst ends. A pipelined stream of N puts therefore costs
// a handful of lock acquisitions and log appends instead of N of each,
// while every response still answers its own request in order.
//
// The acker goroutine releases chunks: one WaitDurable on the chunk's
// highest LSN (in adaptive mode the committer goroutine owns the
// fsync clock, and one fsync releases every connection waiting in the
// window), then write and flush. Decoupling apply from ack is what
// makes the commit window cheap: the reader keeps applying and
// staging log records for the NEXT burst while the acker waits out
// the window for the previous one, so a deep-pipelining client never
// stalls the store on an fsync. If a wait fails, the connection is
// torn down with its responses unwritten — nothing non-durable is
// ever acked.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.connsActive.Dec()
		s.handlers.Done()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	rr := wire.NewRequestReader(br)
	queue := make(chan *pendingChunk, ackQueueChunks)
	ackerDone := make(chan struct{})
	go s.acker(conn, queue, ackerDone)
	timing := !s.cfg.DisableTiming
	ba := newBatchState(s)
	pc := getChunk()
	for {
		req, subs, err := rr.Next()
		if err != nil {
			// Clean close, drain deadline, or protocol garbage: the
			// acker releases everything already applied (those become
			// acked, so their log records must be durable first), then
			// the connection hangs up.
			ba.flushCoalesced(pc.resps, timing)
			if len(pc.resps) > 0 {
				queue <- pc
			} else {
				putChunk(pc)
			}
			close(queue)
			<-ackerDone
			return
		}
		switch {
		case req.Op == wire.OpBatch:
			ba.flushCoalesced(pc.resps, timing)
			pc.resps = append(pc.resps, s.serveBatchFrame(subs, ba, timing))
		case req.Op == wire.OpPut || req.Op == wire.OpInsert || req.Op == wire.OpDelete:
			// Stage the mutation and park a placeholder at its response
			// slot; flushCoalesced fills it before anything can observe
			// or release it.
			s.countClass(req.Op)
			var pr pendingResp
			if timing {
				pr.start = time.Now()
				s.bytesRead.Add(4 + wire.ReqBodyLen)
				s.bytesWritten.Add(4 + wire.RespFixedLen)
			}
			pc.resps = append(pc.resps, pr)
			ba.stage(req, len(pc.resps)-1)
			if s.cfg.DisableCoalescing {
				ba.flushCoalesced(pc.resps, timing) // run of one: per-op apply and append
			}
		default:
			ba.flushCoalesced(pc.resps, timing)
			var pr pendingResp
			if timing {
				start := time.Now()
				pr.resp, pr.lsn = s.dispatch(req)
				op := int(req.Op)
				if op >= len(s.opLat) {
					op = 0
				}
				s.opLat[op].Observe(uint64(time.Since(start)))
				s.bytesRead.Add(4 + wire.ReqBodyLen)
				s.bytesWritten.Add(uint64(4 + wire.RespFixedLen + len(pr.resp.Extra)))
			} else {
				pr.resp, pr.lsn = s.dispatch(req)
			}
			pc.resps = append(pc.resps, pr)
		}
		if br.Buffered() == 0 || len(pc.resps) >= ackChunkCap {
			ba.flushCoalesced(pc.resps, timing)
			queue <- pc // ownership moves to the acker, which recycles it
			pc = getChunk()
		}
	}
}

// acker is a connection's release half: it drains completion-queue
// chunks in arrival order, holds each (merged with any chunks already
// queued behind it) until the log's durable watermark passes its
// highest LSN, then writes the responses and records their ack
// latency. Responses reach bw only after their covering WaitDurable,
// so bufio can never auto-flush an ack whose record is still
// volatile. Chunks (and the batch-response buffers they carry) are
// returned to their pools once written — on every exit path — with
// their entries zeroed so the pools retain no references. On a wait
// or write failure it closes the connection with the batch unacked
// and keeps consuming the queue so the reader can exit.
func (s *Server) acker(conn net.Conn, queue <-chan *pendingChunk, done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var held []*pendingChunk
	discard := func() {
		conn.Close()
		for _, pc := range held {
			putChunk(pc)
		}
		held = held[:0]
		for pc := range queue { // unblock the reader until it closes the queue
			putChunk(pc)
		}
	}
	for {
		first, ok := <-queue
		if !ok {
			bw.Flush()
			return
		}
		held = append(held[:0], first)
		open := true
	gather:
		for {
			select {
			case more, ok := <-queue:
				if !ok {
					open = false
					break gather
				}
				held = append(held, more)
			default:
				break gather
			}
		}
		var hi uint64
		for _, pc := range held {
			for i := range pc.resps {
				if pc.resps[i].lsn > hi {
					hi = pc.resps[i].lsn
				}
			}
		}
		if hi > 0 {
			if err := s.cfg.Oplog.WaitDurable(hi); err != nil {
				s.logf("server: oplog wait failed, closing connection unacked: %v", err)
				s.oplogFailure(err)
				discard()
				return
			}
		}
		now := time.Now()
		for _, pc := range held {
			for i := range pc.resps {
				p := &pc.resps[i]
				if !p.start.IsZero() {
					s.ackLat.Observe(uint64(now.Sub(p.start)))
				}
				var werr error
				if p.batch != nil {
					werr = wire.WriteBatchResponses(bw, p.batch.resps)
					putRespBuf(p.batch)
					p.batch = nil
				} else {
					werr = wire.WriteResponse(bw, p.resp)
				}
				if werr != nil {
					discard()
					return
				}
			}
		}
		for _, pc := range held {
			putChunk(pc)
		}
		held = held[:0]
		if !open {
			bw.Flush()
			return
		}
		if err := bw.Flush(); err != nil {
			discard()
			return
		}
	}
}

// dispatch executes one request against the store, returning the
// response and, for a logged mutation, the oplog LSN the ack must wait
// for.
func (s *Server) dispatch(req wire.Request) (wire.Response, uint64) {
	st := s.eng
	switch req.Op {
	case wire.OpPing:
		s.others.Inc()
		return wire.Response{Status: wire.StatusOK}, 0
	case wire.OpGet:
		s.reads.Inc()
		v, ok := st.Get(req.Key)
		if !ok {
			return wire.Response{Status: wire.StatusNotFound}, 0
		}
		return wire.Response{Status: wire.StatusOK, Value: v}, 0
	case wire.OpPut:
		s.writes.Inc()
		return s.applyWrite(oplog.OpPut, req)
	case wire.OpInsert:
		s.writes.Inc()
		return s.applyWrite(oplog.OpInsert, req)
	case wire.OpDelete:
		s.deletes.Inc()
		return s.applyWrite(oplog.OpDelete, req)
	case wire.OpLen:
		s.others.Inc()
		return wire.Response{Status: wire.StatusOK, Value: st.Len()}, 0
	case wire.OpStats:
		s.others.Inc()
		return wire.Response{Status: wire.StatusOK, Extra: s.statsExtra(req.Value)}, 0
	default:
		s.badreq.Inc()
		return wire.Response{Status: wire.StatusBadRequest}, 0
	}
}

// applyWrite runs one mutating request: refused outright once a drain
// has begun (the final image's contents are already decided) or the
// oplog has suffered a sticky failure (the mutation could never be
// acked), else applied to the store with the oplog append running as a
// commit hook INSIDE the store's own critical section — on a
// concurrent store, the owning stripe's lock. That pairs (apply,
// append) atomically against the snapshot cut without any server-wide
// lock. Only successful mutations are logged — a refused or failed
// operation must not reappear at replay.
//
// The draining check racing Drain is safe without re-checking under
// the lock: Drain flips the flag, then waits for every handler
// goroutine to exit before cutting the final image, so a write that
// slipped past the check completes its (apply, append) pair AND its
// durable ack (or is discarded unacked) strictly before the final
// snapshot's cut observes the log — acked ⇒ in the image, refused ⇒
// absent, no third outcome. TestDrainStraddleDurability pins this.
func (s *Server) applyWrite(op oplog.Op, req wire.Request) (wire.Response, uint64) {
	if s.draining.Load() || s.oplogDead.Load() {
		s.drainRejects.Inc()
		return wire.Response{Status: wire.StatusDraining}, 0
	}
	st := s.eng
	var lsn uint64
	var hook func()
	if s.cfg.Oplog != nil {
		hook = func() { lsn = s.cfg.Oplog.Append(op, req.Key, req.Value) }
	}
	switch op {
	case oplog.OpPut:
		if err := st.PutHook(req.Key, req.Value, hook); err != nil {
			return s.errResponse(err), 0
		}
	case oplog.OpInsert:
		if err := st.InsertHook(req.Key, req.Value, hook); err != nil {
			return s.errResponse(err), 0
		}
	case oplog.OpDelete:
		if !st.DeleteHook(req.Key, hook) {
			return wire.Response{Status: wire.StatusNotFound}, 0
		}
	}
	return wire.Response{Status: wire.StatusOK}, lsn
}

// errResponse maps store write errors to wire statuses.
func (s *Server) errResponse(err error) wire.Response {
	switch {
	case errors.Is(err, hashtab.ErrTableFull):
		s.full.Inc()
		return wire.Response{Status: wire.StatusFull}
	case errors.Is(err, hashtab.ErrInvalidKey):
		s.invalid.Inc()
		return wire.Response{Status: wire.StatusInvalidKey}
	default:
		s.badreq.Inc()
		return wire.Response{Status: wire.StatusBadRequest}
	}
}

// Stats returns a copy of the server's counters.
func (s *Server) Stats() Metrics {
	m := Metrics{
		ConnsAccepted: s.accepted.Load(),
		ConnsActive:   s.connsActive.Load(),
		Reads:         s.reads.Load(),
		Writes:        s.writes.Load(),
		Deletes:       s.deletes.Load(),
		Others:        s.others.Load(),
		Full:          s.full.Load(),
		InvalidKey:    s.invalid.Load(),
		BadRequest:    s.badreq.Load(),
		DrainRejects:  s.drainRejects.Load(),
		Snapshots:     s.snapshots.Load(),
		Expansions:    s.eng.Expansions(),
	}
	if s.cfg.Oplog != nil {
		m.OplogLastLSN = s.cfg.Oplog.LastLSN()
		m.OplogDurableLSN = s.cfg.Oplog.DurableLSN()
	}
	m.BytesRead = s.bytesRead.Load()
	m.BytesWritten = s.bytesWritten.Load()
	return m
}

// Latency returns the merged request-latency distribution across all
// opcodes, in nanoseconds.
func (s *Server) Latency() *stats.HistSnapshot {
	merged := &stats.HistSnapshot{}
	for op := range s.opLat {
		merged.Merge(s.opLat[op].Snapshot())
	}
	return merged
}

// statsExtra renders the OpStats payload in the requested format;
// unknown format selectors fall back to the text dump.
func (s *Server) statsExtra(format uint64) []byte {
	switch format {
	case wire.StatsFormatJSON:
		return s.StatsJSON()
	case wire.StatsFormatProm:
		var buf bytes.Buffer
		s.registry.WritePrometheus(&buf)
		b := buf.Bytes()
		if max := wire.MaxFrame - wire.RespFixedLen; len(b) > max {
			// Truncate at a line boundary so what does fit still parses.
			b = b[:max]
			if i := bytes.LastIndexByte(b, '\n'); i >= 0 {
				b = b[:i+1]
			}
		}
		return b
	default:
		return []byte(s.StatsText())
	}
}

// StatsText renders the counters and request-latency quantiles as the
// human-readable text OpStats returns by default.
func (s *Server) StatsText() string {
	m := s.Stats()
	sample := s.Latency()
	us := func(q float64) float64 { return sample.Quantile(q) / 1e3 }
	return fmt.Sprintf(
		"items=%d load=%.3f conns=%d/%d reads=%d writes=%d deletes=%d others=%d "+
			"full=%d invalid=%d bad=%d drain_rejects=%d snapshots=%d oplog_lsn=%d/%d "+
			"expansions=%d expanding=%v draining=%v "+
			"latency_us{p50=%.1f p90=%.1f p99=%.1f max=%.1f n=%d}",
		s.eng.Len(), s.eng.LoadFactor(),
		m.ConnsActive, m.ConnsAccepted,
		m.Reads, m.Writes, m.Deletes, m.Others,
		m.Full, m.InvalidKey, m.BadRequest, m.DrainRejects, m.Snapshots,
		m.OplogDurableLSN, m.OplogLastLSN,
		m.Expansions, s.eng.Expanding(), s.draining.Load(),
		us(0.5), us(0.9), us(0.99), sample.Max()/1e3, sample.Count)
}

// statsDoc is the machine-readable OpStats JSON document: the Metrics
// counters plus the store/drain state and latency quantiles the text
// dump carries.
type statsDoc struct {
	Metrics
	// Items and LoadFactor describe the store's occupancy.
	Items      uint64  `json:"Items"`
	LoadFactor float64 `json:"LoadFactor"`
	// Expanding and Draining are the live state flags.
	Expanding bool `json:"Expanding"`
	Draining  bool `json:"Draining"`
	// LatencyUs carries request-latency quantiles in microseconds over
	// N observations.
	LatencyUs struct {
		P50, P90, P99, Max float64
		N                  uint64
	} `json:"LatencyUs"`
}

// StatsJSON renders the same counters as StatsText as a JSON document
// (the OpStats StatsFormatJSON payload).
func (s *Server) StatsJSON() []byte {
	doc := statsDoc{
		Metrics:    s.Stats(),
		Items:      s.eng.Len(),
		LoadFactor: s.eng.LoadFactor(),
		Expanding:  s.eng.Expanding(),
		Draining:   s.draining.Load(),
	}
	sample := s.Latency()
	doc.LatencyUs.P50 = sample.Quantile(0.5) / 1e3
	doc.LatencyUs.P90 = sample.Quantile(0.9) / 1e3
	doc.LatencyUs.P99 = sample.Quantile(0.99) / 1e3
	doc.LatencyUs.Max = sample.Max() / 1e3
	doc.LatencyUs.N = sample.Count
	b, err := json.Marshal(doc)
	if err != nil { // unreachable: the document is plain numbers
		return []byte(`{}`)
	}
	return b
}
