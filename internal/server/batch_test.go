package server

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"grouphash"
	"grouphash/internal/layout"
	"grouphash/internal/oplog"
	"grouphash/internal/wire"
)

// TestServeBatchFrame pins the explicit OpBatch frame contract over a
// live oplog-backed server: positional sub-responses, in-order effects
// (a get inside the frame observes the frame's earlier mutations),
// per-sub-op statuses, StatusBadRequest for the sub-ops the packed
// format cannot answer, and the all-or-nothing durable ack.
func TestServeBatchFrame(t *testing.T) {
	lg, err := oplog.Open(filepath.Join(t.TempDir(), "oplog"), 1)
	if err != nil {
		t.Fatal(err)
	}
	s, addr := startServer(t, grouphash.Options{Capacity: 1 << 12}, Config{Oplog: lg})
	c := dial(t, addr)

	subs := []wire.Request{
		{Op: wire.OpPut, Key: layout.Key{Lo: 1}, Value: 10},
		{Op: wire.OpInsert, Key: layout.Key{Lo: 2}, Value: 20},
		{Op: wire.OpGet, Key: layout.Key{Lo: 1}},    // must see sub-op 0
		{Op: wire.OpPut, Key: layout.Key{Lo: 1}, Value: 11},
		{Op: wire.OpGet, Key: layout.Key{Lo: 1}},    // must see sub-op 3
		{Op: wire.OpDelete, Key: layout.Key{Lo: 9}}, // absent
		{Op: wire.OpDelete, Key: layout.Key{Lo: 2}},
		{Op: wire.OpPut, Key: layout.Key{}, Value: 1}, // invalid zero key
		{Op: wire.OpStats},                            // not batchable
		{Op: wire.OpBatch},                            // nested batch
		{Op: wire.OpLen},
		{Op: wire.OpPing},
	}
	resps, err := c.DoBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		wire.StatusOK, wire.StatusOK, wire.StatusOK, wire.StatusOK,
		wire.StatusOK, wire.StatusNotFound, wire.StatusOK,
		wire.StatusInvalidKey, wire.StatusBadRequest, wire.StatusBadRequest,
		wire.StatusOK, wire.StatusOK,
	}
	for i, w := range want {
		if resps[i].Status != w {
			t.Errorf("sub-op %d status = %d, want %d", i, resps[i].Status, w)
		}
	}
	if resps[2].Value != 10 {
		t.Errorf("get inside frame = %d, want 10 (did not observe earlier sub-op)", resps[2].Value)
	}
	if resps[4].Value != 11 {
		t.Errorf("get after in-frame overwrite = %d, want 11", resps[4].Value)
	}
	if resps[10].Value != 1 { // key 1 present, key 2 deleted
		t.Errorf("len inside frame = %d, want 1", resps[10].Value)
	}
	// The frame was acked, so every logged sub-op must already be
	// durable (all-or-nothing release on the frame's highest LSN).
	if d, last := lg.DurableLSN(), lg.LastLSN(); d < last {
		t.Errorf("batch frame acked with durable LSN %d < last LSN %d", d, last)
	}
	if m := s.Stats(); m.BadRequest != 2 || m.InvalidKey != 1 {
		t.Errorf("counters after batch frame = %+v", m)
	}
	if s.batchFrameSize.Snapshot().Count != 1 {
		t.Error("gh_server_batch_size{source=frame} did not observe the frame")
	}
}

// TestServeBatchSplitAndClientHelpers drives a batch larger than one
// frame can carry (the client splits at wire.MaxBatchOps) and the
// typed helpers: PutBatch → MGet → InsertBatch round trip.
func TestServeBatchSplitAndClientHelpers(t *testing.T) {
	_, addr := startServer(t, grouphash.Options{Capacity: 1 << 14}, Config{})
	c := dial(t, addr)

	n := wire.MaxBatchOps + 100 // forces two frames
	keys := make([]layout.Key, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = layout.Key{Lo: uint64(i + 1)}
		vals[i] = uint64(2 * (i + 1))
	}
	if err := c.PutBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	got, found, err := c.MGet(append(keys, layout.Key{Lo: 1 << 40}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !found[i] || got[i] != vals[i] {
			t.Fatalf("MGet[%d] = (%d, %v), want (%d, true)", i, got[i], found[i], vals[i])
		}
	}
	if found[n] {
		t.Fatal("MGet found a key never written")
	}
	if err := c.InsertBatch([]layout.Key{{Lo: 1 << 41}}, []uint64{7}); err != nil {
		t.Fatal(err)
	}
	if ln, err := c.Len(); err != nil || ln != uint64(n+1) {
		t.Fatalf("Len = (%d, %v), want %d", ln, err, n+1)
	}
}

// TestServeCoalescedAmortisation proves the transparent half of the
// tentpole at the wire: a pipelined burst of SINGLE-op puts reaches
// the oplog in far fewer Append calls than operations, because the
// reader coalesces consecutive mutations through the stripe-grouped
// batch apply. Correctness of the burst is checked item by item.
func TestServeCoalescedAmortisation(t *testing.T) {
	lg, err := oplog.Open(filepath.Join(t.TempDir(), "oplog"), 1)
	if err != nil {
		t.Fatal(err)
	}
	s, addr := startServer(t, grouphash.Options{Capacity: 1 << 14}, Config{Oplog: lg})
	c := dial(t, addr)

	const n = 4000
	reqs := make([]wire.Request, n)
	for i := range reqs {
		reqs[i] = wire.Request{Op: wire.OpPut, Key: layout.Key{Lo: uint64(i + 1)}, Value: uint64(i)}
	}
	before := lg.Appends()
	resps, err := c.Do(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range resps {
		if resps[i].Status != wire.StatusOK {
			t.Fatalf("put %d status %d", i, resps[i].Status)
		}
	}
	appends := lg.Appends() - before
	if appends == 0 {
		t.Fatal("no oplog appends for 4000 acked puts")
	}
	// The burst arrives in large TCP segments, so runs should span many
	// ops; even fragmented arrival with 8 stripes per run leaves a wide
	// margin below n/4. (A per-op append regression lands at ~n.)
	if appends > n/4 {
		t.Errorf("coalescing broken: %d oplog appends for %d pipelined puts", appends, n)
	}
	if s.coalesceSize.Snapshot().Count == 0 {
		t.Error("gh_server_batch_size{source=coalesced} observed nothing")
	}
	// Read-after-write across the coalescing boundary.
	mixed := []wire.Request{
		{Op: wire.OpPut, Key: layout.Key{Lo: 5}, Value: 555},
		{Op: wire.OpGet, Key: layout.Key{Lo: 5}},
		{Op: wire.OpDelete, Key: layout.Key{Lo: 5}},
		{Op: wire.OpGet, Key: layout.Key{Lo: 5}},
	}
	resps, err = c.Do(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if resps[1].Status != wire.StatusOK || resps[1].Value != 555 {
		t.Fatalf("get after coalesced put = %+v", resps[1])
	}
	if resps[3].Status != wire.StatusNotFound {
		t.Fatalf("get after coalesced delete = %+v", resps[3])
	}
}

// TestServeBatchConcurrent is the pool/race regression: many
// connections mixing explicit batch frames, pipelined singles, and
// reads, all racing the pooled completion-queue chunks and
// batch-response buffers (run under -race in CI). Every connection
// owns a disjoint key range so results are exactly checkable.
func TestServeBatchConcurrent(t *testing.T) {
	lg, err := oplog.OpenConfig(filepath.Join(t.TempDir(), "oplog"), 1,
		oplog.Config{SyncEvery: 100 * time.Microsecond, SyncBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, grouphash.Options{Capacity: 1 << 14}, Config{Oplog: lg})

	const workers = 8
	const perWorker = 300
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := dial(t, addr)
			base := uint64(w+1) << 32
			keys := make([]layout.Key, perWorker)
			vals := make([]uint64, perWorker)
			for i := range keys {
				keys[i] = layout.Key{Lo: base + uint64(i)}
				vals[i] = uint64(w*perWorker + i)
			}
			// Explicit batch frame for the first half, pipelined singles
			// for the second: both paths under contention.
			half := perWorker / 2
			if err := c.PutBatch(keys[:half], vals[:half]); err != nil {
				errs <- err
				return
			}
			reqs := make([]wire.Request, 0, perWorker-half)
			for i := half; i < perWorker; i++ {
				reqs = append(reqs, wire.Request{Op: wire.OpPut, Key: keys[i], Value: vals[i]})
			}
			if _, err := c.Do(reqs); err != nil {
				errs <- err
				return
			}
			got, found, err := c.MGet(keys)
			if err != nil {
				errs <- err
				return
			}
			for i := range keys {
				if !found[i] || got[i] != vals[i] {
					t.Errorf("worker %d key %d = (%d, %v), want (%d, true)", w, i, got[i], found[i], vals[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
