package server

import (
	"errors"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"grouphash"
	"grouphash/internal/client"
	"grouphash/internal/layout"
	"grouphash/internal/oplog"
	"grouphash/internal/wire"
)

// TestCrashTorture is the acceptance test for the durability contract:
// across many kill/restart cycles, every write acked before the crash
// is present EXACTLY once after recovery, no refused or unacked write
// is half-applied, and replay survives a crash during replay itself.
//
// Each cycle recovers (snapshot + oplog replay), verifies the model,
// serves real pipelined client load, then crashes at a chosen point:
//
//	cycle%4 == 0  under pure load (log tail mid-group-commit)
//	cycle%4 == 1  mid-snapshot: log rotated, image never written
//	cycle%4 == 2  mid-snapshot: image durable, log not yet truncated
//	cycle%4 == 3  right after a completed snapshot + truncation
//
// Every odd cycle additionally simulates a crash in the middle of
// replay (a prefix of the log applied to a store that is then thrown
// away) before recovering for real. After every crash, the active
// segment's unsynced tail is torn at a random point and garbage is
// appended — kill -9 alone keeps the page cache, so tearing is what
// makes the test model power failure rather than a polite crash.
//
// The client-visible model tracks each key as acked-present,
// acked-absent, or tainted (its batch died unacked: the op may or may
// not have been applied, but never twice and never with a value other
// than the one sent). Exactly-once is proven by Len(): every present
// key is accounted for individually, so a double-applied insert would
// make Len exceed the count.
//
// The whole gauntlet runs once per oplog commit configuration: the
// legacy caller-driven Sync mode and two adaptive (SyncEvery,
// SyncBytes) windows — the durability contract must be identical no
// matter who owns the fsync clock. The adaptive legs preallocate
// segments, so the torn-tail logic also runs against zero-filled
// files.
func TestCrashTorture(t *testing.T) {
	for _, tc := range []struct {
		name   string
		cycles int
		cfg    oplog.Config
	}{
		{"legacy", 24, oplog.Config{}},
		{"adaptive-100us-64KiB", 16, oplog.Config{SyncEvery: 100 * time.Microsecond, SyncBytes: 64 << 10, PreallocBytes: 1 << 20}},
		{"adaptive-1ms-256KiB", 16, oplog.Config{SyncEvery: time.Millisecond, SyncBytes: 256 << 10, PreallocBytes: 1 << 20}},
	} {
		t.Run(tc.name, func(t *testing.T) { crashTorture(t, tc.cycles, tc.cfg) })
	}
}

func crashTorture(t *testing.T, cycles int, lcfg oplog.Config) {
	dir := t.TempDir()
	img := filepath.Join(dir, "store.pmfs")
	base := filepath.Join(dir, "oplog")
	rng := rand.New(rand.NewSource(1))

	ws := make([]*tortureWorker, 3)
	for i := range ws {
		ws[i] = newTortureWorker(uint64(i))
	}

	for cycle := 0; cycle < cycles; cycle++ {
		st, lg := recoverStore(t, img, base, cycle%2 == 1, lcfg)
		verifyModel(t, st, ws, cycle)

		s, err := New(Config{Store: st, SnapshotPath: img, Oplog: lg, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- s.Serve(ln) }()

		clients := make([]*client.Client, len(ws))
		for i := range ws {
			if clients[i], err = client.Dial(ln.Addr().String(), time.Second); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		for i, w := range ws {
			wg.Add(1)
			go func(w *tortureWorker, c *client.Client) {
				defer wg.Done()
				w.run(t, c)
			}(w, clients[i])
		}
		time.Sleep(time.Duration(5+rng.Intn(10)) * time.Millisecond)

		// Replicate server.snapshot's durable steps up to the cycle's
		// crash point, while the writers are still hammering — then
		// pull the plug. The mark is read and the log rotated inside
		// SnapshotWriterAt's all-stripes cut, exactly as the server
		// does; stage 1 captures but never writes the image, so its
		// on-disk state is "rotated, no image".
		if stage := cycle % 4; stage >= 1 {
			var mark uint64
			write, err := st.SnapshotWriterAt(func() (uint64, error) {
				mark = lg.LastLSN()
				return mark, lg.Rotate()
			})
			if err != nil {
				t.Fatal(err)
			}
			if stage >= 2 {
				if err := write(img); err != nil {
					t.Fatal(err)
				}
			}
			if stage >= 3 {
				if err := lg.TruncateThrough(mark); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.Abort()
		if err := <-serveDone; err != nil {
			t.Fatalf("Serve returned %v", err)
		}
		wg.Wait()
		for _, c := range clients {
			c.Close()
		}
		tearTail(t, lg, rng)
		if t.Failed() {
			t.Fatalf("model violated in cycle %d", cycle)
		}
	}

	st, lg := recoverStore(t, img, base, true, lcfg)
	verifyModel(t, st, ws, cycles)
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
}

// recoverStore performs the full boot-time recovery: load the latest
// image if one exists, replay the oplog past its mark, open the log
// for appending. With doomed set, it first simulates a crash during
// replay: a prefix of the log is applied to a throwaway store that is
// then abandoned — replay writes nothing, so the real recovery that
// follows must be unaffected.
func recoverStore(t *testing.T, img, base string, doomed bool, lcfg oplog.Config) (*grouphash.Store, *oplog.Log) {
	t.Helper()
	load := func() (*grouphash.Store, uint64) {
		if _, err := os.Stat(img); err == nil {
			st, mark, err := grouphash.LoadSnapshotMark(img, true)
			if err != nil {
				t.Fatalf("loading image: %v", err)
			}
			return st, mark
		}
		st, err := grouphash.New(grouphash.Options{Capacity: 1 << 12, Concurrent: true})
		if err != nil {
			t.Fatal(err)
		}
		return st, 0
	}
	if doomed {
		stD, markD := load()
		_, total, err := oplog.Scan(base, markD, func(oplog.Record) error { return nil })
		if err != nil {
			t.Fatalf("counting scan: %v", err)
		}
		if total > 1 {
			errStop := errors.New("simulated crash mid-replay")
			applied := 0
			_, _, err := oplog.Scan(base, markD, func(r oplog.Record) error {
				if applied >= total/2 {
					return errStop
				}
				applied++
				switch r.Op {
				case oplog.OpPut:
					return stD.Put(r.Key, r.Value)
				case oplog.OpInsert:
					return stD.Insert(r.Key, r.Value)
				default:
					stD.Delete(r.Key)
					return nil
				}
			})
			if err != nil && !errors.Is(err, errStop) {
				t.Fatalf("partial replay: %v", err)
			}
		}
	}
	st, mark := load()
	applied, next, err := st.ReplayOplog(base, mark)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	lg, err := oplog.OpenConfig(base, next, lcfg)
	if err != nil {
		t.Fatalf("reopening oplog: %v", err)
	}
	t.Logf("recovered: mark=%d replayed=%d next=%d items=%d", mark, applied, next, st.Len())
	return st, lg
}

// tearTail abandons the log the way a power failure would: the active
// segment keeps its fsynced prefix, loses a random amount of its
// unsynced tail, and sometimes gains trailing garbage.
func tearTail(t *testing.T, lg *oplog.Log, rng *rand.Rand) {
	t.Helper()
	synced, written := lg.SyncedSize(), lg.WrittenSize()
	path := lg.ActivePath()
	lg.Abort()
	keep := synced
	if written > synced {
		keep = synced + rng.Int63n(written-synced+1)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Truncate(keep); err != nil {
		t.Fatal(err)
	}
	if rng.Intn(2) == 0 {
		garbage := make([]byte, 1+rng.Intn(64))
		rng.Read(garbage)
		if _, err := f.WriteAt(garbage, keep); err != nil {
			t.Fatal(err)
		}
	}
}

// Key lifecycle states in the torture model.
const (
	ackedPresent = iota // server said OK; must be present with the value
	ackedAbsent         // deleted OK, refused, or observed lost while unacked
	taintInsert         // insert's batch died unacked: absent, or present once
	taintDelete         // delete's batch died unacked: old value, or absent
)

type kstate struct {
	val   uint64
	state int
}

// tortureWorker owns a disjoint key range and mirrors, on the client
// side, what the server has promised about every key it touched. It
// survives across kill cycles; only its connection dies.
type tortureWorker struct {
	base   uint64 // key-range base; base itself is the overwrite slot
	seq    uint64 // next insert suffix
	delSeq uint64 // next delete suffix (always trails seq)
	opn    uint64 // monotone op counter; doubles as the slot value
	keys   map[uint64]*kstate

	// The overwrite slot exercises Put: slotAcked is the last value
	// the server acked; a tainted batch widens the allowed set to
	// slotCands until the next recovery pins what survived.
	slotAcked uint64
	slotHas   bool
	slotTaint bool
	slotCands []uint64
}

func newTortureWorker(w uint64) *tortureWorker {
	return &tortureWorker{
		base:   (w + 1) << 40,
		seq:    1,
		delSeq: 1,
		keys:   make(map[uint64]*kstate),
	}
}

type planOp struct {
	kind byte // 'i' insert, 'd' delete, 'p' put-overwrite
	key  uint64
	val  uint64
}

// run hammers pipelined batches until the connection dies under it
// (the crash) or the per-cycle cap is reached, updating the model from
// each batch's acks. A failed Do yields no responses, so every op in
// that batch becomes tainted.
func (w *tortureWorker) run(t *testing.T, c *client.Client) {
	const batch = 16
	const maxBatches = 200
	for b := 0; b < maxBatches; b++ {
		plan := make([]planOp, 0, batch)
		reqs := make([]wire.Request, 0, batch)
		for j := 0; j < batch; j++ {
			w.opn++
			if w.opn%5 == 0 {
				plan = append(plan, planOp{'p', w.base, w.opn})
				reqs = append(reqs, wire.Request{Op: wire.OpPut, Key: layout.Key{Lo: w.base}, Value: w.opn})
				continue
			}
			if w.opn%7 == 0 {
				// Delete the oldest undeleted key — but only once its
				// insert's fate is recorded (keys planned in this very
				// batch are not in the model yet).
				if ks, ok := w.keys[w.base+w.delSeq]; ok {
					k := w.base + w.delSeq
					w.delSeq++
					plan = append(plan, planOp{'d', k, ks.val})
					reqs = append(reqs, wire.Request{Op: wire.OpDelete, Key: layout.Key{Lo: k}})
					continue
				}
			}
			k := w.base + w.seq
			w.seq++
			v := k ^ 0x5aa5
			plan = append(plan, planOp{'i', k, v})
			reqs = append(reqs, wire.Request{Op: wire.OpInsert, Key: layout.Key{Lo: k}, Value: v})
		}
		resps, err := c.Do(reqs)
		if err != nil {
			for _, op := range plan {
				switch op.kind {
				case 'i':
					w.keys[op.key] = &kstate{op.val, taintInsert}
				case 'd':
					w.keys[op.key].state = taintDelete
				case 'p':
					w.slotTaint = true
					w.slotCands = append(w.slotCands, op.val)
				}
			}
			return
		}
		for i, r := range resps {
			op := plan[i]
			switch op.kind {
			case 'i':
				switch r.Status {
				case wire.StatusOK:
					w.keys[op.key] = &kstate{op.val, ackedPresent}
				case wire.StatusDraining:
					w.keys[op.key] = &kstate{op.val, ackedAbsent}
				default:
					t.Errorf("insert %#x: status %d", op.key, r.Status)
				}
			case 'd':
				prior := w.keys[op.key]
				switch r.Status {
				case wire.StatusOK:
					prior.state = ackedAbsent
				case wire.StatusNotFound:
					if prior.state == ackedPresent {
						t.Errorf("delete %#x: NotFound for an acked-present key", op.key)
					}
					prior.state = ackedAbsent
				case wire.StatusDraining:
					// refused: key keeps its prior state
				default:
					t.Errorf("delete %#x: status %d", op.key, r.Status)
				}
			case 'p':
				switch r.Status {
				case wire.StatusOK:
					w.slotAcked, w.slotHas = op.val, true
					w.slotTaint, w.slotCands = false, nil
				case wire.StatusDraining:
					// refused: slot unchanged
				default:
					t.Errorf("put slot: status %d", r.Status)
				}
			}
		}
	}
}

// verifyModel checks a freshly recovered store against every worker's
// model and resolves taints to what actually survived — once observed
// after recovery, a key's fate is durable and feeds the next cycle's
// expectations.
func verifyModel(t *testing.T, st *grouphash.Store, ws []*tortureWorker, cycle int) {
	t.Helper()
	var expected uint64
	for _, w := range ws {
		for k, ks := range w.keys {
			v, ok := st.Get(layout.Key{Lo: k})
			switch ks.state {
			case ackedPresent:
				if !ok || v != ks.val {
					t.Fatalf("cycle %d: ACKED WRITE LOST: key %#x = (%d, %v), want (%d, true)", cycle, k, v, ok, ks.val)
				}
				expected++
			case ackedAbsent:
				if ok {
					t.Fatalf("cycle %d: key %#x was deleted/refused, resurrected with %d", cycle, k, v)
				}
			case taintInsert, taintDelete:
				if ok {
					if v != ks.val {
						t.Fatalf("cycle %d: tainted key %#x has impossible value %d (want %d)", cycle, k, v, ks.val)
					}
					ks.state = ackedPresent
					expected++
				} else {
					ks.state = ackedAbsent
				}
			}
		}
		v, ok := st.Get(layout.Key{Lo: w.base})
		switch {
		case w.slotTaint:
			if ok {
				allowed := w.slotHas && v == w.slotAcked
				for _, cand := range w.slotCands {
					allowed = allowed || v == cand
				}
				if !allowed {
					t.Fatalf("cycle %d: slot %#x = %d, not among acked %d or in-flight %v", cycle, w.base, v, w.slotAcked, w.slotCands)
				}
				w.slotAcked, w.slotHas = v, true
				expected++
			} else if w.slotHas {
				t.Fatalf("cycle %d: ACKED WRITE LOST: slot %#x (last acked %d) vanished", cycle, w.base, w.slotAcked)
			}
			w.slotTaint, w.slotCands = false, nil
		case w.slotHas:
			if !ok || v != w.slotAcked {
				t.Fatalf("cycle %d: ACKED WRITE LOST: slot %#x = (%d, %v), want (%d, true)", cycle, w.base, v, ok, w.slotAcked)
			}
			expected++
		default:
			if ok {
				t.Fatalf("cycle %d: slot %#x never acked yet present with %d", cycle, w.base, v)
			}
		}
	}
	// Every present key was counted once above, so any duplicate from a
	// double-applied replay shows up as Len > expected.
	if got := st.Len(); got != expected {
		t.Fatalf("cycle %d: Len = %d, want %d distinct present keys — replay applied something twice", cycle, got, expected)
	}
	if bad := st.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("cycle %d: recovered store inconsistent: %v", cycle, bad)
	}
}
