package server

import (
	"bufio"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"grouphash"
	"grouphash/internal/layout"
	"grouphash/internal/oplog"
	"grouphash/internal/wire"
)

// benchAckedWrite measures the end-to-end cost of one acked write
// through the server over loopback TCP — the durability tax the
// adaptive group commit is built to cut. The client streams 64-op
// pipelined batches with 8 in flight, the shape the apply/ack
// decoupling targets: the reader applies the next burst while the
// acker waits out the commit window for the previous one.
func benchAckedWrite(b *testing.B, withLog bool, lcfg oplog.Config) {
	st, err := grouphash.New(grouphash.Options{Capacity: 1 << 16, Concurrent: true})
	if err != nil {
		b.Fatal(err)
	}
	var lg *oplog.Log
	if withLog {
		if lg, err = oplog.OpenConfig(filepath.Join(b.TempDir(), "oplog"), 1, lcfg); err != nil {
			b.Fatal(err)
		}
	}
	s, err := New(Config{Store: st, Oplog: lg})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	defer func() {
		if err := s.Drain(); err != nil {
			b.Fatal(err)
		}
		if err := <-serveDone; err != nil {
			b.Errorf("Serve returned %v", err)
		}
	}()

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 64<<10)
	br := bufio.NewReaderSize(conn, 64<<10)

	const batch, depth = 64, 32
	total := b.N
	sem := make(chan struct{}, depth)
	done := make(chan error, 1)
	go func() {
		for consumed := 0; consumed < total; {
			m := batch
			if total-consumed < m {
				m = total - consumed
			}
			for j := 0; j < m; j++ {
				resp, err := wire.ReadResponse(br)
				if err != nil {
					done <- err
					return
				}
				if resp.Status != wire.StatusOK {
					done <- fmt.Errorf("put status %d", resp.Status)
					return
				}
			}
			consumed += m
			<-sem
		}
		done <- nil
	}()
	b.ResetTimer()
	var buf []byte
	for sent := 0; sent < total; {
		n := batch
		if total-sent < n {
			n = total - sent
		}
		sem <- struct{}{} // window: at most depth batches in flight
		buf = buf[:0]
		for j := 0; j < n; j++ {
			k := uint64(sent+j)%(1<<20) + 1
			buf = wire.AppendRequest(buf, wire.Request{Op: wire.OpPut, Key: layout.Key{Lo: k}, Value: k})
		}
		if _, err := bw.Write(buf); err != nil {
			b.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			b.Fatal(err)
		}
		sent += n
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if withLog {
		b.ReportMetric(float64(lg.Fsyncs())/float64(b.N), "fsyncs/op")
	}
}

// BenchmarkServeBatchPipeline drives explicit 256-op OpBatch put
// frames through a live adaptive-oplog server with an allocation-free
// client (reused request/response slices, in-place wire codecs), so
// allocs/op is the serving loop's own steady-state allocation rate:
// pooled completion chunks, pooled batch-response buffers, in-place
// frame codecs and recycled oplog staging buffers together hold it at
// (near) zero. Gated by make bench-allocs.
func BenchmarkServeBatchPipeline(b *testing.B) {
	st, err := grouphash.New(grouphash.Options{Capacity: 1 << 20, Concurrent: true})
	if err != nil {
		b.Fatal(err)
	}
	lg, err := oplog.OpenConfig(filepath.Join(b.TempDir(), "oplog"), 1,
		oplog.Config{SyncEvery: 100 * time.Microsecond, SyncBytes: 64 << 10, PreallocBytes: 4 << 20})
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{Store: st, Oplog: lg})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	defer func() {
		if err := s.Drain(); err != nil {
			b.Fatal(err)
		}
		if err := <-serveDone; err != nil {
			b.Errorf("Serve returned %v", err)
		}
	}()

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 64<<10)
	br := bufio.NewReaderSize(conn, 64<<10)

	const frame = 256
	subs := make([]wire.Request, frame)
	resps := make([]wire.Response, frame)
	var buf []byte
	next := uint64(0)
	send := func(n int) {
		for j := 0; j < n; j++ {
			k := next%(1<<18) + 1 // capped keyspace: no expansion mid-benchmark
			next++
			subs[j] = wire.Request{Op: wire.OpPut, Key: layout.Key{Lo: k}, Value: k}
		}
		buf = buf[:0]
		var err error
		if buf, err = wire.AppendBatchRequest(buf, subs[:n]); err != nil {
			b.Fatal(err)
		}
		if _, err := bw.Write(buf); err != nil {
			b.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			b.Fatal(err)
		}
		if err := wire.ReadBatchResponses(br, resps[:n]); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < n; j++ {
			if resps[j].Status != wire.StatusOK {
				b.Fatalf("put status %d", resps[j].Status)
			}
		}
	}
	for i := 0; i < 8; i++ {
		send(frame) // warm the pools, scratch slices and staging buffers
	}
	b.ReportAllocs()
	b.ResetTimer()
	for sent := 0; sent < b.N; sent += frame {
		n := frame
		if b.N-sent < n {
			n = b.N - sent
		}
		send(n)
	}
}

// BenchmarkAckedWrite compares the acked-write path without a log,
// with the legacy synchronous fsync-per-batch log, and with the
// shipped adaptive group-commit window.
func BenchmarkAckedWrite(b *testing.B) {
	for _, mode := range []struct {
		name    string
		withLog bool
		cfg     oplog.Config
	}{
		{"nolog", false, oplog.Config{}},
		{"legacy", true, oplog.Config{}},
		{"adaptive-100us-64KiB", true, oplog.Config{
			SyncEvery: 100 * time.Microsecond, SyncBytes: 64 << 10, PreallocBytes: 4 << 20}},
	} {
		b.Run(mode.name, func(b *testing.B) { benchAckedWrite(b, mode.withLog, mode.cfg) })
	}
}
