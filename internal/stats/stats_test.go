package stats

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Stddev() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", s.Mean())
	}
	// Population stddev of this classic set is 2; sample stddev is
	// sqrt(32/7).
	if !almost(s.Stddev(), math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("Stddev = %v", s.Stddev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Add(42)
	if s.Var() != 0 || s.Stddev() != 0 {
		t.Fatal("variance of one point must be 0")
	}
	if s.Min() != 42 || s.Max() != 42 || s.Mean() != 42 {
		t.Fatal("single-point summary wrong")
	}
}

func TestRelStddev(t *testing.T) {
	var s Summary
	s.Add(90)
	s.Add(110)
	if !almost(s.RelStddev(), s.Stddev()/100, 1e-12) {
		t.Fatalf("RelStddev = %v", s.RelStddev())
	}
	var z Summary
	z.Add(0)
	z.Add(0)
	if z.RelStddev() != 0 {
		t.Fatal("RelStddev of zero-mean must be 0")
	}
}

// Property: Merge(a, b) equals adding all observations to one summary.
func TestQuickMergeEquivalence(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(in []float64) []float64 {
			var out []float64
			for _, x := range in {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
					out = append(out, x)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, all Summary
		for _, x := range xs {
			a.Add(x)
			all.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
			all.Add(y)
		}
		a.Merge(b)
		if a.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		scale := 1e-9 * (1 + math.Abs(all.Mean()))
		return almost(a.Mean(), all.Mean(), scale) &&
			almost(a.Var(), all.Var(), 1e-6*(1+all.Var()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	if s.Quantile(0.5) != 0 {
		t.Fatal("empty sample quantile must be 0")
	}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if !almost(s.Median(), 50.5, 1e-9) {
		t.Fatalf("median = %v", s.Median())
	}
	if s.Quantile(0) != 1 || s.Quantile(1) != 100 {
		t.Fatal("extreme quantiles wrong")
	}
	if p99 := s.P99(); p99 < 99 || p99 > 100 {
		t.Fatalf("p99 = %v", p99)
	}
	if !almost(s.Mean(), 50.5, 1e-9) {
		t.Fatalf("mean = %v", s.Mean())
	}
}

func TestSampleUnsortedInsertions(t *testing.T) {
	var s Sample
	rng := rand.New(rand.NewSource(1))
	for _, i := range rng.Perm(1000) {
		s.Add(float64(i))
	}
	if !almost(s.Quantile(0.25), 249.75, 1) {
		t.Fatalf("q25 = %v", s.Quantile(0.25))
	}
	// Adding after a quantile query must re-sort.
	s.Add(-5)
	if s.Quantile(0) != -5 {
		t.Fatal("sample did not resort after Add")
	}
}

func TestRepeated(t *testing.T) {
	r := NewRepeated()
	for run := 0; run < 5; run++ {
		r.Record("latency", 100+float64(run))
		r.Record("misses", 2)
	}
	if got := r.Names(); len(got) != 2 || got[0] != "latency" || got[1] != "misses" {
		t.Fatalf("Names = %v", got)
	}
	lat := r.Get("latency")
	if lat.N() != 5 || !almost(lat.Mean(), 102, 1e-12) {
		t.Fatalf("latency summary = %+v", lat)
	}
	if r.Get("misses").Stddev() != 0 {
		t.Fatal("constant metric must have zero spread")
	}
	if r.Get("absent") != nil {
		t.Fatal("unknown metric must be nil")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, qa, qb float64) bool {
		var s Sample
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				s.Add(x)
			}
		}
		if s.N() == 0 {
			return true
		}
		qa = math.Abs(qa)
		qb = math.Abs(qb)
		qa -= math.Floor(qa)
		qb -= math.Floor(qb)
		lo, hi := math.Min(qa, qb), math.Max(qa, qb)
		return s.Quantile(lo) <= s.Quantile(hi) &&
			s.Quantile(0) <= s.Quantile(lo) &&
			s.Quantile(hi) <= s.Quantile(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEdgeCases(t *testing.T) {
	var empty, filled Summary
	filled.Add(5)
	filled.Add(7)

	// Merging empty into filled: unchanged.
	snapshot := filled
	filled.Merge(empty)
	if filled != snapshot {
		t.Fatal("merging empty changed the summary")
	}
	// Merging filled into empty: adopts it wholesale.
	var a Summary
	a.Merge(filled)
	if a.N() != 2 || a.Mean() != 6 {
		t.Fatalf("adopted summary = %+v", a)
	}
	// Disjoint ranges update min/max.
	var lo, hi Summary
	lo.Add(1)
	lo.Add(2)
	hi.Add(100)
	hi.Add(200)
	lo.Merge(hi)
	if lo.Min() != 1 || lo.Max() != 200 || lo.N() != 4 {
		t.Fatalf("merged = %+v", lo)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(2)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*1002 {
		t.Fatalf("Counter = %d, want %d", got, 8*1002)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Load(); got != 1 {
		t.Fatalf("Gauge = %d, want 1", got)
	}
	// The whole point of the type: a mispaired or interleaved Dec must
	// surface as 0, never as a ~2^64 underflow.
	g.Dec()
	g.Dec()
	if got := g.Load(); got != 0 {
		t.Fatalf("underflowed Gauge = %d, want clamped 0", got)
	}
	g.Inc() // internal level is -1 + 1 = 0; still clamped sane
	if got := g.Load(); got != 0 {
		t.Fatalf("recovering Gauge = %d, want 0", got)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Inc()
				if g.Load() > 1<<32 {
					t.Error("Gauge read as underflow under concurrency")
				}
				g.Dec()
			}
		}()
	}
	wg.Wait()
}

func TestReservoir(t *testing.T) {
	r := NewReservoir(256)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				r.Add(float64(i % 100))
			}
		}(w)
	}
	wg.Wait()
	if r.N() != 20000 {
		t.Fatalf("N = %d, want 20000", r.N())
	}
	if s := r.Snapshot(); s.N() != 256 {
		t.Fatalf("retained %d, want capacity 256", s.N())
	}
	med := r.Quantile(0.5)
	if med < 20 || med > 80 {
		t.Fatalf("median %g implausible for uniform 0..99", med)
	}
	if q := NewReservoir(0); q == nil {
		t.Fatal("NewReservoir(0) must fall back to a default capacity")
	}
}
