package stats

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a concurrency-safe, fixed-memory latency/size histogram
// with logarithmically spaced buckets: every power-of-two octave is
// split into 8 sub-buckets, so any uint64 observation lands in one of
// 496 buckets with a relative width of at most 1/8. Observe is two
// atomic adds and a handful of bit operations — no locks, no
// allocation — cheap enough for a per-request network hot path, unlike
// Reservoir (mutex + RNG) whose samples also forget the tail.
//
// The tradeoff against raw samples is bounded quantile error: a value
// is only known to within its bucket, so any quantile estimate is off
// by at most half a bucket width (≈6.5% relative, see HistSnapshot.
// Quantile). Averages over millions of tail-heavy request latencies
// hide exactly the effects this resolution still captures.
//
// The zero value is ready to use. Snapshots are mergeable, so
// per-connection or per-shard histograms can be combined into one
// distribution without locking writers.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64
}

// Bucket geometry: values below 2^histSubBits get exact unit buckets;
// above, the top histSubBits bits after the leading bit select a
// sub-bucket within the value's octave.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits
	// histBuckets covers the full uint64 range: shift ∈ [0, 60] octave
	// segments of histSub buckets each, plus the exact low range.
	histBuckets = (64-histSubBits)<<histSubBits + histSub
)

// bucketIndex maps an observation to its bucket. Values 0..2^3-1 map
// to themselves; larger values map to ((shift+1)<<3)+mantissa where
// shift = floor(log2(v)) - 3 and mantissa is the 3 bits after the
// leading one — a contiguous, monotone indexing.
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	shift := uint(bits.Len64(v)-1) - histSubBits
	mantissa := int((v >> shift) & (histSub - 1))
	return (int(shift)+1)<<histSubBits + mantissa
}

// BucketBounds returns the inclusive [lo, hi] value range of bucket i.
// Exposed for exposition rendering and accuracy tests.
func BucketBounds(i int) (lo, hi uint64) {
	if i < histSub {
		return uint64(i), uint64(i)
	}
	shift := uint(i>>histSubBits) - 1
	m := uint64(i & (histSub - 1))
	lo = (histSub + m) << shift
	hi = lo + (1 << shift) - 1
	return lo, hi
}

// Observe records one observation.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// Snapshot copies the current state into an immutable HistSnapshot.
// Concurrent Observes may land between bucket reads — the snapshot is
// a consistent-enough point-in-time view (each bucket individually
// exact, totals monotone), which is all a scrape needs.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets[i] = n
			s.Count += n
		}
	}
	return s
}

// Count returns the number of observations so far (sum over buckets).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// HistSnapshot is a point-in-time copy of a Histogram, suitable for
// quantile queries, merging and exposition. The zero value is an empty
// distribution.
type HistSnapshot struct {
	// Buckets holds per-bucket observation counts, indexed as in
	// BucketBounds.
	Buckets [histBuckets]uint64
	// Count is the total number of observations.
	Count uint64
	// Sum is the sum of all observed values.
	Sum uint64
}

// Merge folds o into s, as if both underlying histograms had observed
// one combined stream. Merging is exact (bucket-wise addition), so it
// is associative and commutative.
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	for i, n := range o.Buckets {
		s.Buckets[i] += n
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution: the bucket containing the rank is located by a
// cumulative walk and the position inside it is linearly interpolated.
// The estimate is exact for values below 8 and within half a bucket
// (≤ ~6.5% relative) above. Returns 0 for an empty snapshot.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1)
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) > rank {
			lo, hi := BucketBounds(i)
			if lo == hi {
				return float64(lo)
			}
			// Interpolate the rank's position within the bucket,
			// assuming observations spread uniformly across it.
			frac := (rank - float64(cum)) / float64(n)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += n
	}
	// Unreachable with a consistent snapshot; return the top edge.
	return math.MaxUint64
}

// Mean returns the arithmetic mean of the observations (exact, from
// the running sum), or 0 when empty.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Max returns the upper bound of the highest non-empty bucket (an
// overestimate of the true maximum by at most the bucket width), or 0
// when empty.
func (s *HistSnapshot) Max() float64 {
	for i := histBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			_, hi := BucketBounds(i)
			return float64(hi)
		}
	}
	return 0
}
