// Package stats provides the small statistical toolkit the experiment
// harness uses: streaming summaries (mean, stddev, min/max), quantile
// estimation over recorded samples, and multi-execution aggregation —
// the paper averages five independent executions per result (§4.1),
// and this package carries the spread alongside the mean so the
// reproduction can report both.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a streaming univariate summary. The zero value is ready
// to use.
type Summary struct {
	n    uint64
	mean float64
	m2   float64 // sum of squared deviations (Welford)
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	// Welford's online update: numerically stable for long streams.
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Var returns the sample variance (n-1 denominator; 0 for n < 2).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// RelStddev returns stddev/mean (0 when the mean is 0), the
// coefficient of variation used to judge run-to-run stability.
func (s *Summary) RelStddev() float64 {
	if s.mean == 0 {
		return 0
	}
	return s.Stddev() / math.Abs(s.mean)
}

// String formats the summary as "mean ± stddev (n=N)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.mean, s.Stddev(), s.n)
}

// Merge folds other into s, as if every observation of other had been
// Added to s (exact for mean/variance via Chan et al.'s parallel
// update).
func (s *Summary) Merge(other Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	na, nb := float64(s.n), float64(other.n)
	delta := other.mean - s.mean
	tot := na + nb
	s.mean += delta * nb / tot
	s.m2 += other.m2 + delta*delta*na*nb/tot
	s.n += other.n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// Sample records raw observations for quantile queries. Intended for
// per-operation latency distributions (thousands of points), not
// unbounded streams.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Quantile returns the q-quantile (q in [0,1]) by linear interpolation
// between order statistics; 0 when empty.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// P99 returns the 0.99 quantile.
func (s *Sample) P99() float64 { return s.Quantile(0.99) }

// Mean returns the arithmetic mean.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Repeated aggregates the same scalar metric across independent
// executions (the paper's five-run averaging), keyed by metric name.
type Repeated struct {
	byName map[string]*Summary
	order  []string
}

// NewRepeated creates an empty aggregator.
func NewRepeated() *Repeated {
	return &Repeated{byName: make(map[string]*Summary)}
}

// Record adds one execution's value for the named metric.
func (r *Repeated) Record(name string, value float64) {
	s, ok := r.byName[name]
	if !ok {
		s = &Summary{}
		r.byName[name] = s
		r.order = append(r.order, name)
	}
	s.Add(value)
}

// Get returns the summary for a metric (nil if never recorded).
func (r *Repeated) Get(name string) *Summary { return r.byName[name] }

// Names returns metric names in first-recorded order.
func (r *Repeated) Names() []string { return r.order }
