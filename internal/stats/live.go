package stats

import (
	"sync"
	"sync/atomic"
)

// Live serving metrics — the expvar-style counters and concurrent
// quantile estimation the network server publishes. Unlike Summary and
// Sample (single-goroutine, experiment-harness use), these types are
// safe for concurrent use on a request hot path.

// Counter is a concurrency-safe monotonically increasing event
// counter. The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a concurrency-safe up/down level indicator (e.g. currently
// active connections). Unlike deriving a level from two independent
// counters — whose loads can interleave with a concurrent transition
// and underflow — a Gauge is one atomic, so a paired Inc/Dec history
// can never read negative. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Inc raises the level by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec lowers the level by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Load returns the current level, clamped at zero so that even a
// mispaired Dec cannot surface as a ~2^64 underflow to monitoring.
func (g *Gauge) Load() uint64 {
	v := g.v.Load()
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// Reservoir keeps a fixed-capacity uniform random sample of an
// unbounded observation stream (Vitter's algorithm R), so a serving
// process can answer quantile queries over millions of latencies in
// constant memory. Safe for concurrent use; Add is a mutex + O(1)
// update.
type Reservoir struct {
	mu  sync.Mutex
	xs  []float64
	cap int
	n   uint64
	rng uint64
}

// NewReservoir creates a reservoir holding at most capacity samples.
func NewReservoir(capacity int) *Reservoir {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Reservoir{cap: capacity, rng: 0x9e3779b97f4a7c15}
}

// Add records one observation, replacing a uniformly chosen earlier
// one once the reservoir is full.
func (r *Reservoir) Add(x float64) {
	r.mu.Lock()
	r.n++
	if len(r.xs) < r.cap {
		r.xs = append(r.xs, x)
	} else {
		// xorshift64*; cheap and good enough for reservoir positions.
		r.rng ^= r.rng << 13
		r.rng ^= r.rng >> 7
		r.rng ^= r.rng << 17
		if j := (r.rng * 0x2545f4914f6cdd1d >> 32) % r.n; j < uint64(r.cap) {
			r.xs[j] = x
		}
	}
	r.mu.Unlock()
}

// N returns how many observations have been offered (not how many are
// retained).
func (r *Reservoir) N() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Snapshot copies the retained sample into a Sample for quantile
// queries, leaving the reservoir collecting.
func (r *Reservoir) Snapshot() *Sample {
	r.mu.Lock()
	xs := make([]float64, len(r.xs))
	copy(xs, r.xs)
	r.mu.Unlock()
	return &Sample{xs: xs}
}

// Quantile returns the q-quantile of the retained sample.
func (r *Reservoir) Quantile(q float64) float64 { return r.Snapshot().Quantile(q) }
