package stats

import (
	"bytes"
	"math"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestBucketGeometry proves the bucket indexing is a partition of the
// uint64 range: buckets are contiguous, non-overlapping, and both
// bounds of every bucket map back to its own index.
func TestBucketGeometry(t *testing.T) {
	var prevHi uint64
	for i := 0; i < histBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo > hi {
			t.Fatalf("bucket %d: lo %d > hi %d", i, lo, hi)
		}
		if i == 0 {
			if lo != 0 {
				t.Fatalf("bucket 0 starts at %d, want 0", lo)
			}
		} else if lo != prevHi+1 {
			t.Fatalf("bucket %d: lo %d leaves a gap after previous hi %d", i, lo, prevHi)
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(lo=%d) = %d, want %d", lo, got, i)
		}
		if got := bucketIndex(hi); got != i {
			t.Fatalf("bucketIndex(hi=%d) = %d, want %d", hi, got, i)
		}
		prevHi = hi
	}
	if prevHi != math.MaxUint64 {
		t.Fatalf("top bucket ends at %d, want MaxUint64", prevHi)
	}

	// Random values land in a bucket whose bounds contain them.
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 10_000; n++ {
		v := rng.Uint64() >> rng.Intn(64)
		lo, hi := BucketBounds(bucketIndex(v))
		if v < lo || v > hi {
			t.Fatalf("value %d outside its bucket [%d, %d]", v, lo, hi)
		}
	}
}

// TestQuantileAccuracy checks quantile estimates against a sorted
// oracle of the same observations: every estimate must fall inside the
// value range spanned by the buckets of the oracle's neighbouring
// ranks — i.e. within one bucket width (≤ ~1/8 relative) of the truth.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 20_000
	h := &Histogram{}
	oracle := make([]uint64, n)
	for i := range oracle {
		// Log-uniform over ~9 decades: exercises small exact buckets
		// and wide high-octave buckets alike.
		v := uint64(math.Exp(rng.Float64() * math.Log(1e9)))
		oracle[i] = v
		h.Observe(v)
	}
	sort.Slice(oracle, func(i, j int) bool { return oracle[i] < oracle[j] })
	snap := h.Snapshot()
	if snap.Count != n {
		t.Fatalf("snapshot count %d, want %d", snap.Count, n)
	}
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
		rank := q * float64(n-1)
		loRank, hiRank := int(math.Floor(rank)), int(math.Ceil(rank))
		lo, _ := BucketBounds(bucketIndex(oracle[loRank]))
		_, hi := BucketBounds(bucketIndex(oracle[hiRank]))
		est := snap.Quantile(q)
		if est < float64(lo) || est > float64(hi) {
			t.Errorf("q=%v: estimate %.1f outside oracle bucket range [%d, %d] (true %d)",
				q, est, lo, hi, oracle[loRank])
		}
	}
}

// TestQuantileExactLowRange: values below the sub-bucket threshold have
// unit-width buckets, so quantiles there are exact.
func TestQuantileExactLowRange(t *testing.T) {
	h := &Histogram{}
	for v := uint64(0); v < histSub; v++ {
		h.Observe(v)
	}
	snap := h.Snapshot()
	for v := 0; v < histSub; v++ {
		q := float64(v) / float64(histSub-1)
		if got := snap.Quantile(q); got != float64(v) {
			t.Fatalf("Quantile(%v) = %v, want exactly %d", q, got, v)
		}
	}
}

// TestMergeAssociativeCommutative: merging snapshots is bucket-wise
// addition, so any merge order yields the identical distribution.
func TestMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func() *HistSnapshot {
		h := &Histogram{}
		for i := 0; i < 1000; i++ {
			h.Observe(rng.Uint64() >> rng.Intn(60))
		}
		return h.Snapshot()
	}
	a, b, c := mk(), mk(), mk()

	abc1 := *a // (a+b)+c
	abc1.Merge(b)
	abc1.Merge(c)
	bc := *b // a+(b+c)
	bc.Merge(c)
	abc2 := *a
	abc2.Merge(&bc)
	if abc1 != abc2 {
		t.Fatal("merge is not associative")
	}
	ab := *a
	ab.Merge(b)
	ba := *b
	ba.Merge(a)
	if ab != ba {
		t.Fatal("merge is not commutative")
	}
	if abc1.Count != a.Count+b.Count+c.Count || abc1.Sum != a.Sum+b.Sum+c.Sum {
		t.Fatal("merge lost observations")
	}
}

// TestEmptyHistogram: the zero snapshot answers every query with 0.
func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	snap := h.Snapshot()
	if snap.Count != 0 || snap.Sum != 0 {
		t.Fatalf("zero histogram snapshot not empty: count=%d sum=%d", snap.Count, snap.Sum)
	}
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := snap.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if snap.Mean() != 0 || snap.Max() != 0 {
		t.Fatalf("empty Mean/Max not 0: %v, %v", snap.Mean(), snap.Max())
	}
}

// TestHistogramExactStats: Count and Sum are exact (not bucketised),
// and Max overestimates by at most the top bucket's width.
func TestHistogramExactStats(t *testing.T) {
	h := &Histogram{}
	vals := []uint64{0, 1, 7, 8, 100, 1_000_000, 1 << 40}
	var sum uint64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if got := h.Count(); got != uint64(len(vals)) {
		t.Fatalf("Count = %d, want %d", got, len(vals))
	}
	snap := h.Snapshot()
	if snap.Sum != sum {
		t.Fatalf("Sum = %d, want %d", snap.Sum, sum)
	}
	if want := float64(sum) / float64(len(vals)); snap.Mean() != want {
		t.Fatalf("Mean = %v, want %v", snap.Mean(), want)
	}
	maxVal := vals[len(vals)-1]
	lo, hi := BucketBounds(bucketIndex(maxVal))
	if m := snap.Max(); m < float64(lo) || m > float64(hi) {
		t.Fatalf("Max = %v outside the true max's bucket [%d, %d]", m, lo, hi)
	}
}

// TestHistogramConcurrent hammers one histogram from several goroutines
// (meaningful under -race) and checks no observation is lost.
func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Observe(rng.Uint64() >> 20)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("Count = %d, want %d", got, workers*per)
	}
}

// TestRegistryExposition renders a registry holding every metric kind
// and proves the output conformant via the independent checker, then
// spot-checks the parsed values against the registered state.
func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	var reqs Counter
	reqs.Add(41)
	reqs.Inc()
	r.RegisterCounter("test_requests_total", "", "Requests handled.", reqs.Load)
	r.RegisterCounter("test_by_op_total", Label("op", "get"), "Per-op requests.", func() uint64 { return 7 })
	r.RegisterCounter("test_by_op_total", Label("op", "put"), "Per-op requests.", func() uint64 { return 9 })
	r.RegisterFloatCounter("test_busy_seconds_total", "", "Cumulative busy time.", func() float64 { return 1.5 })
	r.RegisterGauge("test_depth", "", "Current queue depth.", func() float64 { return -3 })
	h := &Histogram{}
	for _, v := range []uint64{5, 80, 80, 3000} {
		h.Observe(v)
	}
	r.RegisterHistogram("test_latency_seconds", Label("op", "get"), "Latency.", 1e-9, h)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ValidateExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("registry output fails conformance:\n%s\nerror: %v", buf.String(), err)
	}

	if v, ok := fams["test_requests_total"].Sample(""); !ok || v != 42 {
		t.Fatalf("test_requests_total = %v, %v", v, ok)
	}
	if v, ok := fams["test_by_op_total"].Sample(`op="put"`); !ok || v != 9 {
		t.Fatalf(`test_by_op_total{op="put"} = %v, %v`, v, ok)
	}
	if v, ok := fams["test_depth"].Sample(""); !ok || v != -3 {
		t.Fatalf("test_depth = %v, %v", v, ok)
	}
	lat := fams["test_latency_seconds"]
	if lat == nil || lat.Type != "histogram" {
		t.Fatalf("test_latency_seconds family missing or mistyped: %+v", lat)
	}
	if v := lat.Samples[`_count|op="get"`]; v != 4 {
		t.Fatalf("latency count = %v, want 4", v)
	}
	if v := lat.Samples[`_sum|op="get"`]; math.Abs(v-3165e-9) > 1e-15 {
		t.Fatalf("latency sum = %v, want 3.165e-6", v)
	}

	// Registration order is preserved in the render.
	names := r.Families()
	want := []string{"test_requests_total", "test_by_op_total", "test_busy_seconds_total", "test_depth", "test_latency_seconds"}
	if len(names) != len(want) {
		t.Fatalf("families %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("families %v, want %v", names, want)
		}
	}
}

// TestRegistryServeHTTP: the registry mounts directly at /metrics with
// the exposition content type; non-GET is refused.
func TestRegistryServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounter("test_total", "", "t", func() uint64 { return 1 })
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	if _, err := ValidateExposition(rec.Body); err != nil {
		t.Fatalf("served body fails conformance: %v", err)
	}
	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status %d, want 405", rec.Code)
	}
}

// TestRegistryPanics: wiring mistakes (duplicates, type conflicts, bad
// names) are programmer errors and must fail loudly at registration.
func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.RegisterCounter("dup_total", "", "d", func() uint64 { return 0 })
	mustPanic("duplicate series", func() {
		r.RegisterCounter("dup_total", "", "d", func() uint64 { return 0 })
	})
	mustPanic("type conflict", func() {
		r.RegisterGauge("dup_total", Label("x", "y"), "d", func() float64 { return 0 })
	})
	mustPanic("invalid metric name", func() {
		r.RegisterCounter("9bad", "", "d", func() uint64 { return 0 })
	})
	mustPanic("invalid label name", func() { Label("0op", "get") })
}

// TestLabelEscaping: hostile label values survive the render → parse
// round trip.
func TestLabelEscaping(t *testing.T) {
	hostile := "a\"b\\c\nd"
	r := NewRegistry()
	r.RegisterCounter("esc_total", Label("path", hostile), "e", func() uint64 { return 5 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ValidateExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("escaped output fails conformance:\n%s\nerror: %v", buf.String(), err)
	}
	if v, ok := fams["esc_total"].Sample(Label("path", hostile)); !ok || v != 5 {
		t.Fatalf("escaped sample lost: %v, %v", v, ok)
	}
}

// TestValidateExpositionRejects: the checker must refuse each class of
// malformed exposition it exists to catch — otherwise the conformance
// tests built on it prove nothing.
func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct{ name, in string }{
		{"sample before TYPE", "orphan_total 3\n"},
		{"unknown type", "# TYPE x sometype\nx 1\n"},
		{"duplicate TYPE", "# TYPE x counter\n# TYPE x counter\nx 1\n"},
		{"TYPE after samples", "# TYPE x counter\nx 1\n# TYPE x counter\n"},
		{"duplicate sample", "# TYPE x counter\nx 1\nx 2\n"},
		{"negative counter", "# TYPE x counter\nx -1\n"},
		{"bad metric name", "# TYPE x counter\n9x 1\n"},
		{"bad value", "# TYPE x counter\nx pear\n"},
		{"unterminated labels", "# TYPE x counter\nx{a=\"b\" 1\n"},
		{"unquoted label value", "# TYPE x counter\nx{a=b} 1\n"},
		{"bare histogram sample", "# TYPE h histogram\nh 1\n"},
		{"histogram without +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 2\nh_count 2\n"},
		{"decreasing buckets", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n"},
		{"+Inf != count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n"},
		{"histogram missing _sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n"},
		{"bucket without le", "# TYPE h histogram\nh_bucket{op=\"x\"} 2\nh_sum 1\nh_count 2\n"},
	}
	for _, c := range cases {
		if _, err := ValidateExposition(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted:\n%s", c.name, c.in)
		}
	}

	// And the checker accepts a correct multi-series histogram.
	good := "# HELP h Latency.\n# TYPE h histogram\n" +
		"h_bucket{op=\"get\",le=\"1\"} 2\nh_bucket{op=\"get\",le=\"+Inf\"} 3\nh_sum{op=\"get\"} 4\nh_count{op=\"get\"} 3\n" +
		"h_bucket{op=\"put\",le=\"+Inf\"} 1\nh_sum{op=\"put\"} 2\nh_count{op=\"put\"} 1\n"
	if _, err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Errorf("rejected conformant input: %v", err)
	}
}
