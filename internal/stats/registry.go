package stats

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// Registry names and enumerates metrics and renders them in the
// Prometheus text exposition format (version 0.0.4), so one GET
// /metrics scrape covers every layer that registered itself — server
// counters, store gauges, oplog histograms, simulated-substrate cost.
//
// Metrics are registered as (family, labels) series backed by load
// functions, so the registry holds no state of its own and a scrape
// always reflects the live counters. A family (one metric name) has
// one type and help string; multiple series of the same family differ
// by labels (e.g. request latency per opcode). Registration panics on
// malformed or conflicting names — metric wiring is programmer error,
// not runtime input.
//
// Registry is safe for concurrent use; the load functions must be too
// (the package's Counter, Gauge and Histogram all are).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// family is one metric name: a type, a help string and its series.
type family struct {
	name, help, typ string
	series          []series
}

// series is one labelled instance of a family.
type series struct {
	labels string // rendered label pairs, e.g. `op="get"`; "" for none
	write  func(buf *bytes.Buffer, name, labels string)
}

// Prometheus metric types used by this registry.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName reports whether name is a legal Prometheus metric or label
// name: [a-zA-Z_:][a-zA-Z0-9_:]* (labels additionally may not contain
// ':'; we keep one rule and never emit ':' in labels ourselves).
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Label renders one label pair for the Register* labels argument,
// escaping the value per the exposition format. Join multiple pairs
// with commas.
func Label(key, value string) string {
	if !validName(key) || strings.Contains(key, ":") {
		panic(fmt.Sprintf("stats: invalid label name %q", key))
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return key + `="` + r.Replace(value) + `"`
}

// register adds one series, creating or extending its family.
func (r *Registry) register(name, labels, help, typ string, write func(*bytes.Buffer, string, string)) {
	if !validName(name) {
		panic(fmt.Sprintf("stats: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("stats: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	for _, s := range f.series {
		if s.labels == labels {
			panic(fmt.Sprintf("stats: duplicate series %s{%s}", name, labels))
		}
	}
	f.series = append(f.series, series{labels: labels, write: write})
}

// RegisterCounter adds a monotonically increasing series whose value
// is read from load at scrape time (use Counter.Load, or any function
// over monotone state). labels is "" or a rendered pair list built
// with Label.
func (r *Registry) RegisterCounter(name, labels, help string, load func() uint64) {
	r.register(name, labels, help, typeCounter, func(buf *bytes.Buffer, n, l string) {
		writeSample(buf, n, l, "", strconv.FormatUint(load(), 10))
	})
}

// RegisterFloatCounter adds a monotonically increasing series with a
// float value (e.g. cumulative seconds).
func (r *Registry) RegisterFloatCounter(name, labels, help string, load func() float64) {
	r.register(name, labels, help, typeCounter, func(buf *bytes.Buffer, n, l string) {
		writeSample(buf, n, l, "", formatFloat(load()))
	})
}

// RegisterGauge adds an up/down series whose value is read from load
// at scrape time.
func (r *Registry) RegisterGauge(name, labels, help string, load func() float64) {
	r.register(name, labels, help, typeGauge, func(buf *bytes.Buffer, n, l string) {
		writeSample(buf, n, l, "", formatFloat(load()))
	})
}

// RegisterHistogram adds a histogram series rendered in the Prometheus
// cumulative-bucket convention (name_bucket{le="…"}, name_sum,
// name_count). scale multiplies bucket bounds and the sum at render
// time — observe nanoseconds, register with scale 1e-9, scrape
// seconds, per the exposition unit conventions. Only non-empty buckets
// are emitted (plus the mandatory +Inf), keeping scrapes compact.
func (r *Registry) RegisterHistogram(name, labels, help string, scale float64, h *Histogram) {
	if scale == 0 {
		scale = 1
	}
	r.register(name, labels, help, typeHistogram, func(buf *bytes.Buffer, n, l string) {
		snap := h.Snapshot()
		var cum uint64
		for i, c := range snap.Buckets {
			if c == 0 {
				continue
			}
			cum += c
			_, hi := BucketBounds(i)
			le := Label("le", formatFloat(float64(hi)*scale))
			writeSample(buf, n+"_bucket", joinLabels(l, le), "", strconv.FormatUint(cum, 10))
		}
		writeSample(buf, n+"_bucket", joinLabels(l, `le="+Inf"`), "", strconv.FormatUint(snap.Count, 10))
		writeSample(buf, n+"_sum", l, "", formatFloat(float64(snap.Sum)*scale))
		writeSample(buf, n+"_count", l, "", strconv.FormatUint(snap.Count, 10))
	})
}

// joinLabels concatenates two rendered label lists, either possibly
// empty.
func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	return a + "," + b
}

// writeSample emits one exposition line: name{labels} value.
func writeSample(buf *bytes.Buffer, name, labels, suffix, value string) {
	buf.WriteString(name)
	buf.WriteString(suffix)
	if labels != "" {
		buf.WriteByte('{')
		buf.WriteString(labels)
		buf.WriteByte('}')
	}
	buf.WriteByte(' ')
	buf.WriteString(value)
	buf.WriteByte('\n')
}

// formatFloat renders a float in the shortest exact form, with the
// exposition spelling for infinities.
func formatFloat(v float64) string {
	switch {
	case v > 1e308*1.7976:
		return "+Inf"
	case v < -1e308*1.7976:
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a help string for a # HELP line.
func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

// WritePrometheus renders every registered family, in registration
// order, to w in the text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var buf bytes.Buffer
	r.mu.Lock()
	for _, name := range r.order {
		f := r.families[name]
		buf.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n")
		buf.WriteString("# TYPE " + f.name + " " + f.typ + "\n")
		for _, s := range f.series {
			s.write(&buf, f.name, s.labels)
		}
	}
	r.mu.Unlock()
	_, err := w.Write(buf.Bytes())
	return err
}

// Families returns the registered family names in registration order
// (for tests and diagnostics).
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// ServeHTTP implements http.Handler: a GET answers with the rendered
// exposition, making a Registry mountable directly at /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet && req.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if req.Method == http.MethodHead {
		return
	}
	r.WritePrometheus(w)
}
