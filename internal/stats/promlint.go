package stats

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition is a line-by-line conformance checker for the
// Prometheus text exposition format (version 0.0.4), used by the
// repository's tests to prove a /metrics scrape parses: every sample
// line must be syntactically valid, every family must declare a known
// TYPE before its first sample, histogram series must have cumulative
// non-decreasing buckets whose +Inf bucket equals the _count sample,
// and no family may appear twice. It returns the parsed families.
//
// The checker is deliberately independent of the Registry's renderer —
// a renderer bug that produced self-consistent garbage would still be
// caught, because this side only trusts the format specification.
func ValidateExposition(r io.Reader) (map[string]*ExpoFamily, error) {
	families := make(map[string]*ExpoFamily)
	var current *ExpoFamily
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			cur, err := parseComment(line, families, current)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			current = cur
			continue
		}
		if err := parseSampleLine(line, families, current); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, f := range families {
		if err := f.check(); err != nil {
			return nil, fmt.Errorf("family %s: %w", name, err)
		}
	}
	return families, nil
}

// ExpoFamily is one parsed metric family of an exposition.
type ExpoFamily struct {
	// Name is the family name (without _bucket/_sum/_count suffixes).
	Name string
	// Type is the declared TYPE (counter, gauge, histogram).
	Type string
	// Help is the declared HELP text ("" if none).
	Help string
	// Samples maps rendered label strings to values for plain
	// counter/gauge series, and suffixed forms ("_sum|labels",
	// "_count|labels", "_bucket|labels") for histogram parts.
	Samples map[string]float64
}

// Sample returns the value of the series with the given rendered
// labels ("" for none) and whether it exists.
func (f *ExpoFamily) Sample(labels string) (float64, bool) {
	v, ok := f.Samples["|"+labels]
	return v, ok
}

// parseComment handles # HELP / # TYPE lines, creating families.
func parseComment(line string, families map[string]*ExpoFamily, current *ExpoFamily) (*ExpoFamily, error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return current, nil // free-form comment: legal, ignored
	}
	name := fields[2]
	switch fields[1] {
	case "HELP":
		f := families[name]
		if f == nil {
			f = &ExpoFamily{Name: name, Samples: make(map[string]float64)}
			families[name] = f
		} else if f.Help != "" {
			return nil, fmt.Errorf("duplicate HELP for %s", name)
		}
		if len(fields) == 4 {
			f.Help = fields[3]
		}
		return f, nil
	case "TYPE":
		if len(fields) != 4 {
			return nil, fmt.Errorf("malformed TYPE line %q", line)
		}
		typ := fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return nil, fmt.Errorf("unknown metric type %q", typ)
		}
		f := families[name]
		if f == nil {
			f = &ExpoFamily{Name: name, Samples: make(map[string]float64)}
			families[name] = f
		}
		if f.Type != "" {
			return nil, fmt.Errorf("duplicate TYPE for %s", name)
		}
		if len(f.Samples) != 0 {
			return nil, fmt.Errorf("TYPE for %s after its samples", name)
		}
		f.Type = typ
		return f, nil
	}
	return current, nil
}

// parseSampleLine validates one sample and files it under its family.
func parseSampleLine(line string, families map[string]*ExpoFamily, current *ExpoFamily) error {
	name, labels, value, err := splitSample(line)
	if err != nil {
		return err
	}
	// Resolve the family: histogram sample suffixes belong to the base
	// family when one is declared.
	fam, suffix := name, ""
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, sfx)
		if base != name {
			if f := families[base]; f != nil && f.Type == "histogram" {
				fam, suffix = base, sfx
			}
			break
		}
	}
	f := families[fam]
	if f == nil || f.Type == "" {
		return fmt.Errorf("sample %s before a TYPE declaration", name)
	}
	if f.Type == "histogram" && suffix == "" {
		return fmt.Errorf("histogram %s has a bare sample", fam)
	}
	key := suffix + "|" + labels
	if _, dup := f.Samples[key]; dup {
		return fmt.Errorf("duplicate sample %s{%s}", name, labels)
	}
	f.Samples[key] = value
	if f.Type == "counter" && (value < 0 || math.IsNaN(value)) {
		return fmt.Errorf("counter %s has negative value %v", name, value)
	}
	return nil
}

// splitSample parses `name{labels} value` syntax, validating the
// metric name, each label pair and the value.
func splitSample(line string) (name, labels string, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return "", "", 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels = rest[brace+1 : end]
		rest = strings.TrimSpace(rest[end+1:])
		if err := checkLabels(labels); err != nil {
			return "", "", 0, err
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", "", 0, fmt.Errorf("no value in sample %q", line)
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	if !validName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	// The value may be followed by an optional timestamp.
	valStr := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		valStr = rest[:sp]
	}
	value, err = parseValue(valStr)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value in %q: %w", line, err)
	}
	return name, labels, value, nil
}

// parseValue parses a sample value, accepting the exposition's +Inf /
// -Inf / NaN spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// checkLabels validates a rendered label list: name="value" pairs,
// comma-separated, names legal, values properly quoted.
func checkLabels(labels string) error {
	rest := labels
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label in %q", labels)
		}
		lname := rest[:eq]
		if !validName(lname) || strings.Contains(lname, ":") {
			return fmt.Errorf("invalid label name %q", lname)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", labels)
		}
		// Scan the quoted value, honouring escapes.
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated label value in %q", labels)
		}
		rest = rest[i+1:]
		if rest != "" {
			if rest[0] != ',' {
				return fmt.Errorf("missing comma between labels in %q", labels)
			}
			rest = rest[1:]
		}
	}
	return nil
}

// check verifies a parsed family's internal consistency; histograms
// get the cumulative-bucket checks.
func (f *ExpoFamily) check() error {
	if f.Type == "" {
		return fmt.Errorf("no TYPE declared")
	}
	if f.Type != "histogram" {
		return nil
	}
	// Group buckets by their non-le labels.
	type hseries struct {
		les    []float64
		counts map[float64]float64
	}
	byLabels := make(map[string]*hseries)
	for key, v := range f.Samples {
		if !strings.HasPrefix(key, "_bucket|") {
			continue
		}
		labels := strings.TrimPrefix(key, "_bucket|")
		base, le, err := extractLe(labels)
		if err != nil {
			return err
		}
		hs := byLabels[base]
		if hs == nil {
			hs = &hseries{counts: make(map[float64]float64)}
			byLabels[base] = hs
		}
		hs.les = append(hs.les, le)
		hs.counts[le] = v
	}
	for base, hs := range byLabels {
		sort.Float64s(hs.les)
		if len(hs.les) == 0 || !math.IsInf(hs.les[len(hs.les)-1], 1) {
			return fmt.Errorf("series {%s} lacks a +Inf bucket", base)
		}
		prev := -math.MaxFloat64
		last := 0.0
		for _, le := range hs.les {
			if hs.counts[le] < last {
				return fmt.Errorf("series {%s} bucket le=%v decreases", base, le)
			}
			last = hs.counts[le]
			if le == prev {
				return fmt.Errorf("series {%s} duplicate le=%v", base, le)
			}
			prev = le
		}
		count, ok := f.Samples["_count|"+base]
		if !ok {
			return fmt.Errorf("series {%s} lacks _count", base)
		}
		if _, ok := f.Samples["_sum|"+base]; !ok {
			return fmt.Errorf("series {%s} lacks _sum", base)
		}
		if inf := hs.counts[math.Inf(1)]; inf != count {
			return fmt.Errorf("series {%s} +Inf bucket %v != count %v", base, inf, count)
		}
	}
	return nil
}

// extractLe removes the le label from a rendered list, returning the
// remaining labels and the parsed bound.
func extractLe(labels string) (base string, le float64, err error) {
	parts := splitTopLevel(labels)
	var rest []string
	found := false
	for _, p := range parts {
		if strings.HasPrefix(p, `le="`) {
			raw := strings.TrimSuffix(strings.TrimPrefix(p, `le="`), `"`)
			le, err = parseValue(raw)
			if err != nil {
				return "", 0, fmt.Errorf("bad le bound %q", raw)
			}
			found = true
			continue
		}
		rest = append(rest, p)
	}
	if !found {
		return "", 0, fmt.Errorf("bucket without le label in {%s}", labels)
	}
	return strings.Join(rest, ","), le, nil
}

// splitTopLevel splits a rendered label list on commas outside quotes.
func splitTopLevel(labels string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, labels[start:])
	return out
}
