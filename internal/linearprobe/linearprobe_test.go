package linearprobe

import (
	"math/rand"
	"testing"

	"grouphash/internal/cache"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/native"
)

func simMem(seed int64) *memsim.Memory {
	return memsim.New(memsim.Config{Size: 8 << 20, Seed: seed, Geoms: cache.SmallGeometry()})
}

func TestBasicOps(t *testing.T) {
	for _, logged := range []bool{false, true} {
		mem := simMem(1)
		tab := New(mem, Options{Cells: 1024, Logged: logged})
		wantName := "linear"
		if logged {
			wantName = "linear-L"
		}
		if tab.Name() != wantName {
			t.Fatalf("Name = %q", tab.Name())
		}
		for i := uint64(1); i <= 600; i++ {
			if err := tab.Insert(layout.Key{Lo: i}, i*2); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
		}
		if tab.Len() != 600 || tab.Capacity() != 1024 {
			t.Fatalf("len=%d cap=%d", tab.Len(), tab.Capacity())
		}
		for i := uint64(1); i <= 600; i++ {
			if v, ok := tab.Lookup(layout.Key{Lo: i}); !ok || v != i*2 {
				t.Fatalf("lookup %d = (%d, %v)", i, v, ok)
			}
		}
		if _, ok := tab.Lookup(layout.Key{Lo: 10000}); ok {
			t.Fatal("phantom key")
		}
		for i := uint64(1); i <= 600; i += 3 {
			if !tab.Delete(layout.Key{Lo: i}) {
				t.Fatalf("delete %d", i)
			}
		}
		for i := uint64(1); i <= 600; i++ {
			_, ok := tab.Lookup(layout.Key{Lo: i})
			if want := i%3 != 1; ok != want {
				t.Fatalf("key %d presence %v, want %v", i, ok, want)
			}
		}
	}
}

func TestFillsToLoadFactorOne(t *testing.T) {
	// Linear probing has no fixed utilisation bound (the paper omits it
	// from Figure 7 because "its load factor can be up to 1").
	mem := native.New(1 << 20)
	tab := New(mem, Options{Cells: 256})
	for i := uint64(1); i <= 256; i++ {
		if err := tab.Insert(layout.Key{Lo: i}, i); err != nil {
			t.Fatalf("insert %d into %d-cell table: %v", i, 256, err)
		}
	}
	if tab.LoadFactor() != 1.0 {
		t.Fatalf("load factor = %v", tab.LoadFactor())
	}
	if err := tab.Insert(layout.Key{Lo: 1000}, 1); err == nil {
		t.Fatal("insert into a full table succeeded")
	}
}

func TestBackwardShiftKeepsClusterSearchable(t *testing.T) {
	// Force a cluster: keys that all hash to the same start cell.
	mem := native.New(1 << 20)
	tab := New(mem, Options{Cells: 64, Seed: 5})
	target := tab.h.Index(1, 0)
	var cluster []layout.Key
	for i := uint64(1); len(cluster) < 6; i++ {
		if tab.h.Index(i, 0) == target {
			cluster = append(cluster, layout.Key{Lo: i})
		}
	}
	for n, k := range cluster {
		if err := tab.Insert(k, uint64(n)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete the FIRST item: the rest must be shifted back and all
	// remain reachable (no tombstones in this scheme).
	if !tab.Delete(cluster[0]) {
		t.Fatal("delete failed")
	}
	for n, k := range cluster[1:] {
		if v, ok := tab.Lookup(k); !ok || v != uint64(n+1) {
			t.Fatalf("cluster item %d lost after shift: (%d, %v)", n+1, v, ok)
		}
	}
	// The cluster must have no holes: the cell at `target` must now be
	// occupied by one of the shifted items.
	if !tab.cells.Occupied(target) {
		t.Fatal("backward shift left a hole at the cluster head")
	}
}

func TestDeleteMiddleOfWrappedCluster(t *testing.T) {
	// Cluster wrapping around the table end exercises the cyclic
	// interval logic.
	mem := native.New(1 << 20)
	tab := New(mem, Options{Cells: 16, Seed: 2})
	// Fill the last 3 and first 3 cells with a synthetic wrapped
	// cluster: insert keys whose home is near the end.
	var keys []layout.Key
	for i := uint64(1); len(keys) < 6; i++ {
		h := tab.h.Index(i, 0)
		if h >= 13 {
			keys = append(keys, layout.Key{Lo: i})
			tab.Insert(layout.Key{Lo: i}, i)
		}
	}
	for _, k := range keys {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatalf("key %d missing before delete", k.Lo)
		}
	}
	// Delete them one by one, checking the others stay reachable.
	for n, k := range keys {
		if !tab.Delete(k) {
			t.Fatalf("delete %d failed", k.Lo)
		}
		for _, k2 := range keys[n+1:] {
			if _, ok := tab.Lookup(k2); !ok {
				t.Fatalf("key %d lost after deleting %d", k2.Lo, k.Lo)
			}
		}
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestCyclicallyBetween(t *testing.T) {
	cases := []struct {
		a, x, b uint64
		want    bool
	}{
		{5, 6, 8, true},
		{5, 8, 8, true},
		{5, 5, 8, false},
		{5, 3, 8, false},
		{14, 15, 2, true},
		{14, 0, 2, true},
		{14, 2, 2, true},
		{14, 14, 2, false},
		{14, 13, 2, false},
	}
	for _, c := range cases {
		if got := cyclicallyBetween(c.a, c.x, c.b); got != c.want {
			t.Errorf("cyclicallyBetween(%d, %d, %d) = %v, want %v", c.a, c.x, c.b, got, c.want)
		}
	}
}

func TestOracleFuzz(t *testing.T) {
	mem := native.New(32 << 20)
	tab := New(mem, Options{Cells: 2048, Seed: 9})
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(17))
	for op := 0; op < 30000; op++ {
		key := uint64(rng.Intn(1500)) + 1
		k := layout.Key{Lo: key}
		switch rng.Intn(3) {
		case 0:
			if _, exists := oracle[key]; !exists {
				if err := tab.Insert(k, key*3); err == nil {
					oracle[key] = key * 3
				}
			}
		case 1:
			v, ok := tab.Lookup(k)
			ov, ook := oracle[key]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("op %d: lookup(%d) = (%d,%v), oracle (%d,%v)", op, key, v, ok, ov, ook)
			}
		case 2:
			ok := tab.Delete(k)
			if _, ook := oracle[key]; ok != ook {
				t.Fatalf("op %d: delete(%d) = %v, oracle %v", op, key, ok, ook)
			}
			delete(oracle, key)
		}
	}
	if tab.Len() != uint64(len(oracle)) {
		t.Fatalf("Len = %d, oracle %d", tab.Len(), len(oracle))
	}
}

func TestLoggedRecoveryAfterCrash(t *testing.T) {
	mem := simMem(31)
	tab := New(mem, Options{Cells: 256, Logged: true, Seed: 3})
	committed := make(map[uint64]uint64)
	for i := uint64(1); i <= 100; i++ {
		tab.Insert(layout.Key{Lo: i}, i)
		committed[i] = i
	}
	for i := uint64(1); i <= 100; i += 4 {
		tab.Delete(layout.Key{Lo: i})
		delete(committed, i)
	}
	// Crash between operations: the log is clean, recovery just
	// recounts/scrubs.
	mem.Crash(0.5)
	rep, err := tab.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.UndoneOps != 0 {
		t.Fatalf("clean log rolled back %d entries", rep.UndoneOps)
	}
	for key, v := range committed {
		if got, ok := tab.Lookup(layout.Key{Lo: key}); !ok || got != v {
			t.Fatalf("committed key %d lost: (%d, %v)", key, got, ok)
		}
	}
	if tab.Len() != uint64(len(committed)) {
		t.Fatalf("count %d, want %d", tab.Len(), len(committed))
	}
}

func TestLoggedRecoveryRollsBackMidDelete(t *testing.T) {
	// Interrupt a shift-delete halfway: the WAL must restore the full
	// pre-delete cluster state.
	mem := simMem(32)
	tab := New(mem, Options{Cells: 64, Logged: true, Seed: 5})
	target := tab.h.Index(1, 0)
	var cluster []layout.Key
	for i := uint64(1); len(cluster) < 5; i++ {
		if tab.h.Index(i, 0) == target {
			cluster = append(cluster, layout.Key{Lo: i})
		}
	}
	for n, k := range cluster {
		tab.Insert(k, uint64(n+1))
	}
	mem.CleanShutdown()

	// Hand-drive the first part of a delete of cluster[0]: log and
	// overwrite the head with cluster[1]'s item, then crash before the
	// operation completes (no Commit).
	hole := target
	j := (target + 1) & tab.mask()
	meta, k0, v0 := tab.cells.Snapshot(hole)
	tab.log.LogCell(tab.cells.Addr(hole), meta, k0, v0)
	kj := tab.cells.Key(j)
	vj := tab.cells.Value(j)
	tab.cells.WritePayload(hole, kj, vj)
	tab.cells.PersistPayload(hole)
	tab.cells.CommitOccupied(hole, kj)
	mem.Crash(0.5)

	rep, err := tab.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.UndoneOps != 1 {
		t.Fatalf("UndoneOps = %d, want 1", rep.UndoneOps)
	}
	// All five items must be intact with their original values.
	for n, k := range cluster {
		if v, ok := tab.Lookup(k); !ok || v != uint64(n+1) {
			t.Fatalf("item %d after rollback: (%d, %v)", n, v, ok)
		}
	}
	if tab.Len() != 5 {
		t.Fatalf("Len = %d, want 5", tab.Len())
	}
}

func TestLoggedInsertCostsMoreFlushes(t *testing.T) {
	// Figure 2's premise at the scheme level.
	memA := simMem(1)
	plain := New(memA, Options{Cells: 1024})
	memB := simMem(1)
	logged := New(memB, Options{Cells: 1024, Logged: true})

	cA0 := memA.Counters()
	cB0 := memB.Counters()
	for i := uint64(1); i <= 200; i++ {
		plain.Insert(layout.Key{Lo: i}, i)
		logged.Insert(layout.Key{Lo: i}, i)
	}
	dA := memA.Counters().Sub(cA0)
	dB := memB.Counters().Sub(cB0)
	if dB.Flushes <= dA.Flushes {
		t.Fatalf("logged flushes %d <= plain %d", dB.Flushes, dA.Flushes)
	}
	if dB.ClockNs <= dA.ClockNs {
		t.Fatalf("logged latency %v <= plain %v", dB.ClockNs, dA.ClockNs)
	}
}

func TestUpdateInPlace(t *testing.T) {
	mem := simMem(61)
	tab := New(mem, Options{Cells: 256, Seed: 2})
	if tab.Update(layout.Key{Lo: 5}, 1) {
		t.Fatal("updated an absent key")
	}
	tab.Insert(layout.Key{Lo: 5}, 1)
	c0 := mem.Counters()
	if !tab.Update(layout.Key{Lo: 5}, 2) {
		t.Fatal("update failed")
	}
	d := mem.Counters().Sub(c0)
	if d.Flushes != 1 || d.Fences != 1 {
		t.Fatalf("update cost %d flushes / %d fences, want exactly 1/1", d.Flushes, d.Fences)
	}
	if v, _ := tab.Lookup(layout.Key{Lo: 5}); v != 2 {
		t.Fatalf("value = %d", v)
	}
	if tab.Len() != 1 {
		t.Fatal("update changed the count")
	}
	// Crash immediately after: atomic value is durable.
	mem.Crash(0.0)
	if v, ok := tab.Lookup(layout.Key{Lo: 5}); !ok || v != 2 {
		t.Fatalf("updated value lost: (%d, %v)", v, ok)
	}
}
