// Package linearprobe implements the linear-probing baseline of the
// paper's evaluation: the classic open-addressing scheme with
// backward-shift deletion (Knuth's Algorithm R), whose cluster
// re-compaction is the "complicated delete process" the paper blames
// for linear hashing's poor delete performance (§2.3, §4.2).
//
// Collision-resolution cells are the immediately following cells, so
// probing is perfectly contiguous — which is why linear probing posts
// the best insert/query latency and L3-miss numbers among the baselines
// (Figures 2, 5, 6) despite its deletes.
//
// The table can run with or without a write-ahead log (the paper's
// Linear-L vs Linear): without one, an interrupted insert or shift can
// leave a torn item behind an occupied bitmap, which is exactly the
// inconsistency the paper's motivation demonstrates.
package linearprobe

import (
	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/wal"
	"grouphash/internal/xhash"
)

// Options configures a table.
type Options struct {
	// Cells is the table size (power of two).
	Cells uint64
	// KeyBytes is 8 or 16.
	KeyBytes int
	// Seed selects the hash function.
	Seed uint64
	// Logged attaches an undo WAL (the paper's Linear-L variant).
	Logged bool
}

// Table is a linear-probing hash table over persistent memory.
type Table struct {
	mem   hashtab.Mem
	l     layout.Layout
	h     xhash.Func
	cells hashtab.Cells
	count hashtab.Count
	log   *wal.Log
}

// New allocates a table in mem.
func New(mem hashtab.Mem, opts Options) *Table {
	if opts.Cells == 0 || opts.Cells&(opts.Cells-1) != 0 {
		panic("linearprobe: Cells must be a nonzero power of two")
	}
	if opts.KeyBytes == 0 {
		opts.KeyBytes = 8
	}
	l := layout.ForKeySize(opts.KeyBytes)
	t := &Table{
		mem:   mem,
		l:     l,
		h:     xhash.NewFunc(opts.Seed, opts.Cells, l.KeyWords() == 2),
		cells: hashtab.NewCells(mem, l, opts.Cells),
		count: hashtab.NewCount(mem),
	}
	if opts.Logged {
		t.log = wal.New(mem, l)
	}
	return t
}

// Name implements hashtab.Table.
func (t *Table) Name() string {
	if t.log != nil {
		return "linear-L"
	}
	return "linear"
}

// Len returns the number of stored items.
func (t *Table) Len() uint64 { return t.count.Get() }

// Capacity returns the number of cells.
func (t *Table) Capacity() uint64 { return t.cells.N }

// LoadFactor returns Len/Capacity, 0 on a zero-capacity table.
func (t *Table) LoadFactor() float64 {
	if t.Capacity() == 0 {
		return 0
	}
	return float64(t.Len()) / float64(t.Capacity())
}

func (t *Table) mask() uint64 { return t.cells.N - 1 }

// logCell records the pre-image of cell i when logging is enabled.
func (t *Table) logCell(i uint64) {
	if t.log == nil {
		return
	}
	meta, k, v := t.cells.Snapshot(i)
	t.log.LogCell(t.cells.Addr(i), meta, k, v)
}

func (t *Table) commit() {
	if t.log != nil {
		t.log.Commit()
	}
}

// Insert probes forward from h(k) for an empty cell and stores the item
// there. Returns ErrTableFull when every cell is occupied.
func (t *Table) Insert(k layout.Key, v uint64) error {
	if !t.l.ValidKey(k) {
		return hashtab.ErrInvalidKey
	}
	start := t.h.Index(k.Lo, k.Hi)
	for d := uint64(0); d < t.cells.N; d++ {
		i := (start + d) & t.mask()
		if !t.cells.Occupied(i) {
			t.logCell(i)
			t.cells.InsertAt(i, k, v)
			t.count.Inc()
			t.commit()
			return nil
		}
	}
	return hashtab.ErrTableFull
}

// Lookup probes forward from h(k), stopping at the first empty cell
// (backward-shift deletion keeps clusters gap-free, so an empty cell
// proves absence).
func (t *Table) Lookup(k layout.Key) (uint64, bool) {
	start := t.h.Index(k.Lo, k.Hi)
	for d := uint64(0); d < t.cells.N; d++ {
		i := (start + d) & t.mask()
		if !t.cells.Occupied(i) {
			return 0, false
		}
		if t.cells.Matches(i, k) {
			return t.cells.Value(i), true
		}
	}
	return 0, false
}

// Update overwrites the value of an existing key in place (one
// failure-atomic word; no logging needed even in the -L variant).
func (t *Table) Update(k layout.Key, v uint64) bool {
	start := t.h.Index(k.Lo, k.Hi)
	for d := uint64(0); d < t.cells.N; d++ {
		i := (start + d) & t.mask()
		if !t.cells.Occupied(i) {
			return false
		}
		if t.cells.Matches(i, k) {
			addr := t.l.ValOff(t.cells.Addr(i))
			t.mem.AtomicWrite8(addr, v)
			t.mem.Persist(addr, layout.WordSize)
			return true
		}
	}
	return false
}

// Delete removes k using backward-shift compaction: after emptying the
// target cell, subsequent cluster items that would become unreachable
// are moved back to fill the hole. Every moved cell is an extra NVM
// write plus persist — the delete cost the paper measures.
func (t *Table) Delete(k layout.Key) bool {
	start := t.h.Index(k.Lo, k.Hi)
	hole := uint64(0)
	found := false
	for d := uint64(0); d < t.cells.N; d++ {
		i := (start + d) & t.mask()
		if !t.cells.Occupied(i) {
			return false
		}
		if t.cells.Matches(i, k) {
			hole = i
			found = true
			break
		}
	}
	if !found {
		return false
	}
	// Knuth Algorithm R: walk the rest of the cluster; any item whose
	// home position does not lie cyclically in (hole, j] must be moved
	// into the hole, which then moves to j.
	j := hole
	for {
		j = (j + 1) & t.mask()
		// On a 100% full table no empty cell exists to stop the walk
		// (the hole's bitmap stays set until the final DeleteAt below);
		// j coming back around to the hole means the whole cluster —
		// the entire table — has been compacted.
		if j == hole || !t.cells.Occupied(j) {
			break
		}
		kj := t.cells.Key(j)
		home := t.h.Index(kj.Lo, kj.Hi)
		// If home is cyclically in (hole, j], the item at j is still
		// reachable once the hole is emptied; otherwise move it.
		if cyclicallyBetween(hole, home, j) {
			continue
		}
		vj := t.cells.Value(j)
		t.logCell(hole)
		// Overwrite the hole with item j. The destination is logically
		// empty but its bitmap is still 1 mid-cluster; we rewrite
		// payload first and then the meta word (with j's tag) so the
		// logged variant can always roll back.
		t.cells.WritePayload(hole, kj, vj)
		t.cells.PersistPayload(hole)
		t.cells.CommitOccupied(hole, kj)
		hole = j
	}
	// Empty the final hole with the bitmap-first delete protocol.
	t.logCell(hole)
	t.cells.DeleteAt(hole)
	t.count.Dec()
	t.commit()
	return true
}

// cyclicallyBetween reports whether x lies in the half-open cyclic
// interval (a, b].
func cyclicallyBetween(a, x, b uint64) bool {
	if a <= b {
		return a < x && x <= b
	}
	return a < x || x <= b
}

// Recover restores consistency after a crash: roll back any in-flight
// logged operation, scrub payloads behind zero bitmaps, and recount.
// Without a log (the paper's plain Linear) the rollback step is
// unavailable, and torn occupied cells cannot be repaired — the
// motivation for the paper's consistency mechanisms.
func (t *Table) Recover() (hashtab.RecoveryReport, error) {
	var rep hashtab.RecoveryReport
	if t.log != nil {
		rep.UndoneOps = t.log.Recover()
	}
	n := uint64(0)
	for i := uint64(0); i < t.cells.N; i++ {
		rep.CellsScanned++
		if t.cells.Occupied(i) {
			n++
			continue
		}
		if !t.cells.PayloadZero(i) {
			t.cells.ClearPayload(i)
			rep.CellsCleared++
		}
	}
	rep.CountCorrected = t.count.Get() != n
	t.count.Set(n)
	return rep, nil
}

// CheckConsistency audits the structural invariants without repairing:
// the persistent count matches the occupied cells, empty cells hide no
// payload, every stored key is valid, and every occupied cell is
// reachable from its home position without crossing an empty cell (the
// cluster invariant backward-shift deletion maintains — a gap between
// home and cell would make the item unreachable to Lookup).
func (t *Table) CheckConsistency() []string {
	var bad []string
	n := uint64(0)
	for i := uint64(0); i < t.cells.N; i++ {
		if !t.cells.Occupied(i) {
			if !t.cells.PayloadZero(i) {
				bad = append(bad, "empty cell has a non-zero payload")
			}
			continue
		}
		n++
		k := t.cells.Key(i)
		if !t.l.ValidKey(k) {
			bad = append(bad, "occupied cell holds an invalid key")
			continue
		}
		home := t.h.Index(k.Lo, k.Hi)
		for j := home; j != i; j = (j + 1) & t.mask() {
			if !t.cells.Occupied(j) {
				bad = append(bad, "occupied cell is unreachable from its home position (gap in cluster)")
				break
			}
		}
	}
	if t.count.Get() != n {
		bad = append(bad, "persistent count does not match occupied cells")
	}
	return bad
}
