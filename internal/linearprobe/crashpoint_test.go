package linearprobe

import (
	"testing"

	"grouphash/internal/cache"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
)

// The shift delete is linear probing's hardest consistency case: it
// rewrites a whole cluster. With the WAL (Linear-L), EVERY internal
// crash point must recover to either the pre-delete or post-delete
// state; without the WAL, some crash points corrupt data — which is
// exactly the paper's motivation for consistency mechanisms.

// buildCluster returns a deterministic logged table with a 5-item
// cluster whose keys all hash to the same home cell.
func buildCluster(seed int64, logged bool) (*memsim.Memory, *Table, []layout.Key) {
	mem := memsim.New(memsim.Config{Size: 1 << 21, Seed: seed, Geoms: cache.SmallGeometry()})
	tab := New(mem, Options{Cells: 64, Seed: 5, Logged: logged})
	target := tab.h.Index(1, 0)
	var cluster []layout.Key
	for i := uint64(1); len(cluster) < 5; i++ {
		if tab.h.Index(i, 0) == target {
			cluster = append(cluster, layout.Key{Lo: i})
		}
	}
	for n, k := range cluster {
		if err := tab.Insert(k, uint64(n+1)); err != nil {
			panic(err)
		}
	}
	mem.CleanShutdown()
	return mem, tab, cluster
}

func TestLoggedShiftDeleteEveryCrashPointRecovers(t *testing.T) {
	for _, p := range []float64{0, 0.5, 1} {
		for offset := uint64(1); ; offset++ {
			mem, tab, cluster := buildCluster(int64(offset), true)
			start := mem.Counters().Accesses
			mem.ScheduleShadowCrash(start+offset, p)
			if !tab.Delete(cluster[0]) {
				t.Fatal("delete failed")
			}
			if !mem.AdoptShadowCrash() {
				break
			}
			rep, err := tab.Recover()
			if err != nil {
				t.Fatal(err)
			}
			// Outcome must be all-or-nothing: either the full
			// pre-delete state (op rolled back) or the full post-delete
			// state (op completed before the cut, commit included).
			_, head := tab.Lookup(cluster[0])
			for n, k := range cluster[1:] {
				v, ok := tab.Lookup(k)
				if !ok || v != uint64(n+2) {
					t.Fatalf("p=%v offset=%d: survivor %d = (%d, %v), undone=%d",
						p, offset, n+1, v, ok, rep.UndoneOps)
				}
			}
			wantLen := uint64(4)
			if head {
				wantLen = 5
			}
			if tab.Len() != wantLen {
				t.Fatalf("p=%v offset=%d: Len=%d head=%v", p, offset, tab.Len(), head)
			}
		}
	}
}

func TestUnloggedShiftDeleteHasUnsafeCrashPoints(t *testing.T) {
	// Demonstrate the motivation: WITHOUT logging, some crash point of
	// the shift delete violates atomicity. Because the per-cell commit
	// protocol still orders persists, survivors are never lost — the
	// violation is subtler, exactly Figure 1's case 3: the cell being
	// overwritten transiently holds the OLD key with the NEW value, so
	// the half-deleted item resurfaces with a torn value. The test
	// asserts this corruption IS observed at some crash point.
	sawCorruption := false
	for offset := uint64(1); ; offset++ {
		mem, tab, cluster := buildCluster(int64(3000+offset), false)
		start := mem.Counters().Accesses
		mem.ScheduleShadowCrash(start+offset, 0)
		if !tab.Delete(cluster[0]) {
			t.Fatal("delete failed")
		}
		if !mem.AdoptShadowCrash() {
			break
		}
		if _, err := tab.Recover(); err != nil {
			t.Fatal(err)
		}
		// Atomicity of the interrupted delete: cluster[0] must be
		// either fully present (value 1) or absent. A present item
		// with any other value is torn.
		if v, ok := tab.Lookup(cluster[0]); ok && v != 1 {
			sawCorruption = true
		}
		// Survivor damage would also count.
		for n, k := range cluster[1:] {
			if v, ok := tab.Lookup(k); !ok || v != uint64(n+2) {
				sawCorruption = true
			}
		}
	}
	if !sawCorruption {
		t.Fatal("unlogged shift delete survived every crash point — the WAL would be pointless")
	}
}
