// Package client is the Go client for the grouphash network server
// (internal/server): a single TCP connection speaking the wire
// protocol (internal/wire), with typed errors and pipelined batches.
//
// A Client is safe for concurrent use, but every call holds the
// connection for its full round trip — for parallel load, open one
// Client per worker (connections are cheap; the server runs one
// goroutine per connection). Throughput comes from pipelining: Do
// writes a whole batch of requests in one flush and then reads the
// batch's responses, amortising the network round trip over the batch.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"grouphash/internal/layout"
	"grouphash/internal/wire"
)

// Typed errors mapped from wire status codes. Status "not found" is
// not an error — Get and Delete report it in their boolean result.
var (
	// ErrFull reports the server's table cannot place the item.
	ErrFull = errors.New("client: server table full")
	// ErrInvalidKey reports a key the store's layout reserves (the
	// zero key under 8-byte keys).
	ErrInvalidKey = errors.New("client: invalid key")
	// ErrDraining reports the server is shutting down.
	ErrDraining = errors.New("client: server draining")
	// ErrBadRequest reports the server rejected the request as
	// malformed.
	ErrBadRequest = errors.New("client: bad request")
)

// Key is the fixed-size key type of the wire protocol.
type Key = layout.Key

// Client is one connection to a grouphash server.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	buf  []byte // request frame staging for pipelined writes
}

// Dial connects to a server at addr, retrying for up to timeout (0
// means a single attempt) — load generators race server start-up, so
// a short retry window is part of the contract.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true) // pipelined batches flush in one segment anyway
			}
			return &Client{
				conn: conn,
				br:   bufio.NewReaderSize(conn, 64<<10),
				bw:   bufio.NewWriterSize(conn, 64<<10),
			}, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("client: dialing %s: %w", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Close hangs up.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends a pipelined batch: all requests are written in one flush,
// then exactly len(reqs) responses are read, in request order. The
// returned slice is parallel to reqs. A transport error invalidates
// the connection (responses already received are NOT returned — the
// caller cannot tell which writes were applied, only which were acked
// in earlier successful batches).
func (c *Client) Do(reqs []wire.Request) ([]wire.Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = c.buf[:0]
	for _, r := range reqs {
		c.buf = wire.AppendRequest(c.buf, r)
	}
	if _, err := c.bw.Write(c.buf); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	resps := make([]wire.Response, len(reqs))
	for i := range resps {
		var err error
		if resps[i], err = wire.ReadResponse(c.br); err != nil {
			return nil, err
		}
	}
	return resps, nil
}

// do runs one request synchronously.
func (c *Client) do(req wire.Request) (wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := wire.WriteRequest(c.bw, req); err != nil {
		return wire.Response{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return wire.Response{}, err
	}
	return wire.ReadResponse(c.br)
}

// StatusErr maps a wire status to the package's typed error; StatusOK
// and StatusNotFound map to nil (absence is data, not failure).
func StatusErr(status byte) error {
	switch status {
	case wire.StatusOK, wire.StatusNotFound:
		return nil
	case wire.StatusFull:
		return ErrFull
	case wire.StatusInvalidKey:
		return ErrInvalidKey
	case wire.StatusDraining:
		return ErrDraining
	case wire.StatusBadRequest:
		return ErrBadRequest
	default:
		return fmt.Errorf("client: unknown status %d", status)
	}
}

// Ping checks the server is alive.
func (c *Client) Ping() error {
	resp, err := c.do(wire.Request{Op: wire.OpPing})
	if err != nil {
		return err
	}
	return StatusErr(resp.Status)
}

// Get returns the value under k and whether it was present.
func (c *Client) Get(k Key) (uint64, bool, error) {
	resp, err := c.do(wire.Request{Op: wire.OpGet, Key: k})
	if err != nil {
		return 0, false, err
	}
	if resp.Status == wire.StatusNotFound {
		return 0, false, nil
	}
	if err := StatusErr(resp.Status); err != nil {
		return 0, false, err
	}
	return resp.Value, true, nil
}

// Put upserts (k, v).
func (c *Client) Put(k Key, v uint64) error {
	resp, err := c.do(wire.Request{Op: wire.OpPut, Key: k, Value: v})
	if err != nil {
		return err
	}
	return StatusErr(resp.Status)
}

// Insert stores (k, v) with Algorithm-1 semantics (duplicates
// allowed).
func (c *Client) Insert(k Key, v uint64) error {
	resp, err := c.do(wire.Request{Op: wire.OpInsert, Key: k, Value: v})
	if err != nil {
		return err
	}
	return StatusErr(resp.Status)
}

// Delete removes k, reporting whether it was present.
func (c *Client) Delete(k Key) (bool, error) {
	resp, err := c.do(wire.Request{Op: wire.OpDelete, Key: k})
	if err != nil {
		return false, err
	}
	if resp.Status == wire.StatusNotFound {
		return false, nil
	}
	if err := StatusErr(resp.Status); err != nil {
		return false, err
	}
	return true, nil
}

// Len returns the server's item count.
func (c *Client) Len() (uint64, error) {
	resp, err := c.do(wire.Request{Op: wire.OpLen})
	if err != nil {
		return 0, err
	}
	if err := StatusErr(resp.Status); err != nil {
		return 0, err
	}
	return resp.Value, nil
}

// ServerStats returns the server's counters/latency text.
func (c *Client) ServerStats() (string, error) {
	return c.serverStats(wire.StatsFormatText)
}

// ServerStatsJSON returns the server's counters as a JSON document
// (the OpStats machine-readable format). Servers predating the format
// selector answer with the text dump instead — callers that must
// distinguish should check the first byte is '{'.
func (c *Client) ServerStatsJSON() (string, error) {
	return c.serverStats(wire.StatsFormatJSON)
}

// ServerMetrics returns the server's metrics registry rendered as
// Prometheus text exposition — the same payload GET /metrics serves,
// fetched over the wire protocol (truncated at a line boundary if it
// exceeds the frame limit).
func (c *Client) ServerMetrics() (string, error) {
	return c.serverStats(wire.StatsFormatProm)
}

// serverStats runs one OpStats request with the given format selector.
func (c *Client) serverStats(format uint64) (string, error) {
	resp, err := c.do(wire.Request{Op: wire.OpStats, Value: format})
	if err != nil {
		return "", err
	}
	if err := StatusErr(resp.Status); err != nil {
		return "", err
	}
	return string(resp.Extra), nil
}
