package client

import (
	"errors"
	"net"
	"testing"
	"time"

	"grouphash/internal/wire"
)

func TestStatusErrMapping(t *testing.T) {
	cases := []struct {
		status byte
		want   error
	}{
		{wire.StatusOK, nil},
		{wire.StatusNotFound, nil}, // absence is data, not failure
		{wire.StatusFull, ErrFull},
		{wire.StatusInvalidKey, ErrInvalidKey},
		{wire.StatusDraining, ErrDraining},
		{wire.StatusBadRequest, ErrBadRequest},
	}
	for _, c := range cases {
		if got := StatusErr(c.status); !errors.Is(got, c.want) {
			t.Fatalf("StatusErr(%d) = %v, want %v", c.status, got, c.want)
		}
	}
	if StatusErr(250) == nil {
		t.Fatal("unknown status must be an error")
	}
}

// TestDialZeroTimeoutSingleAttempt pins the documented contract:
// timeout 0 means exactly one connection attempt, no retry loop.
// Connection-refused on loopback is effectively instant while the
// retry loop sleeps 20ms between attempts, so the fastest of five
// tries finishing under one retry sleep proves no retry happened (a
// single measurement can be inflated by scheduler noise; the minimum
// of five cannot be, by all five at once).
func TestDialZeroTimeoutSingleAttempt(t *testing.T) {
	best := time.Hour
	for i := 0; i < 5; i++ {
		start := time.Now()
		if _, err := Dial("127.0.0.1:1", 0); err == nil {
			t.Fatal("Dial to a dead port succeeded")
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	if best >= 20*time.Millisecond {
		t.Fatalf("zero-timeout Dial took %v at best; the single-attempt contract is broken", best)
	}
}

// TestDialRetriesUntilListener is the other half of the contract: with
// a timeout, Dial keeps retrying and wins when the server shows up
// late — load generators racing server start-up depend on it.
func TestDialRetriesUntilListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port; nothing listens now
	go func() {
		time.Sleep(60 * time.Millisecond)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			t.Errorf("relisten: %v", err)
			return
		}
		conn, err := ln.Accept()
		if err == nil {
			conn.Close()
		}
		ln.Close()
	}()
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("Dial with retry window lost to a late listener: %v", err)
	}
	c.Close()
}
