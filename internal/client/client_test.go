package client

import (
	"errors"
	"testing"
	"time"

	"grouphash/internal/wire"
)

func TestStatusErrMapping(t *testing.T) {
	cases := []struct {
		status byte
		want   error
	}{
		{wire.StatusOK, nil},
		{wire.StatusNotFound, nil}, // absence is data, not failure
		{wire.StatusFull, ErrFull},
		{wire.StatusInvalidKey, ErrInvalidKey},
		{wire.StatusDraining, ErrDraining},
		{wire.StatusBadRequest, ErrBadRequest},
	}
	for _, c := range cases {
		if got := StatusErr(c.status); !errors.Is(got, c.want) {
			t.Fatalf("StatusErr(%d) = %v, want %v", c.status, got, c.want)
		}
	}
	if StatusErr(250) == nil {
		t.Fatal("unknown status must be an error")
	}
}

func TestDialFailsFast(t *testing.T) {
	// A port from the TEST-NET range nothing listens on: Dial with a
	// zero timeout must make exactly one attempt and fail.
	start := time.Now()
	if _, err := Dial("127.0.0.1:1", 0); err == nil {
		t.Fatal("Dial to a dead port succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("zero-timeout Dial retried")
	}
}
