package client

import (
	"grouphash/internal/wire"
)

// DoBatch sends sub-ops as explicit OpBatch frames: one frame carries
// up to wire.MaxBatchOps packed sub-requests (larger slices split into
// consecutive frames, all pipelined in one flush) and comes back as
// one packed response frame per request frame — the server releases a
// frame's responses only once every logged sub-op in it is durable, so
// an answered batch frame is acked all-or-nothing. The returned slice
// is parallel to subs. Sub-ops may be Ping/Get/Put/Insert/Delete/Len;
// OpStats and nested OpBatch come back StatusBadRequest.
//
// Compared to Do (N single frames pipelined), DoBatch moves the
// batching decision to the server's stripe-grouped apply explicitly
// and cuts framing overhead; either path amortises the round trip.
func (c *Client) DoBatch(subs []wire.Request) ([]wire.Response, error) {
	return c.DoBatchN(subs, wire.MaxBatchOps)
}

// DoBatchN is DoBatch with an explicit frame size: subs travel as
// OpBatch frames of up to frameSize sub-ops each (clamped to
// [1, wire.MaxBatchOps]), all frames pipelined in one flush. Load
// generators use it to sweep batch size as an experiment axis.
func (c *Client) DoBatchN(subs []wire.Request, frameSize int) ([]wire.Response, error) {
	if len(subs) == 0 {
		return nil, nil
	}
	if frameSize < 1 {
		frameSize = 1
	}
	if frameSize > wire.MaxBatchOps {
		frameSize = wire.MaxBatchOps
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = c.buf[:0]
	var err error
	for off := 0; off < len(subs); off += frameSize {
		end := min(off+frameSize, len(subs))
		if c.buf, err = wire.AppendBatchRequest(c.buf, subs[off:end]); err != nil {
			return nil, err
		}
	}
	if _, err := c.bw.Write(c.buf); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	resps := make([]wire.Response, len(subs))
	for off := 0; off < len(subs); off += frameSize {
		end := min(off+frameSize, len(subs))
		if err := wire.ReadBatchResponses(c.br, resps[off:end]); err != nil {
			return nil, err
		}
	}
	return resps, nil
}

// MGet looks up many keys in one batch. The returned slices are
// parallel to keys: vals[i] is valid iff found[i]. A non-transport
// per-key failure (a malformed sub-op status) aborts with its typed
// error.
func (c *Client) MGet(keys []Key) (vals []uint64, found []bool, err error) {
	if len(keys) == 0 {
		return nil, nil, nil
	}
	subs := make([]wire.Request, len(keys))
	for i, k := range keys {
		subs[i] = wire.Request{Op: wire.OpGet, Key: k}
	}
	resps, err := c.DoBatch(subs)
	if err != nil {
		return nil, nil, err
	}
	vals = make([]uint64, len(keys))
	found = make([]bool, len(keys))
	for i := range resps {
		switch resps[i].Status {
		case wire.StatusOK:
			vals[i], found[i] = resps[i].Value, true
		case wire.StatusNotFound:
			// absent: zero value, found[i] stays false
		default:
			return nil, nil, StatusErr(resps[i].Status)
		}
	}
	return vals, found, nil
}

// PutBatch upserts keys[i] → vals[i] for all i in one batch (slices
// must be the same length) and returns the first per-op failure in
// submission order, nil if every put landed. All sub-ops are attempted
// regardless of individual failures.
func (c *Client) PutBatch(keys []Key, vals []uint64) error {
	return c.mutateBatch(wire.OpPut, keys, vals)
}

// InsertBatch stores keys[i] → vals[i] with Algorithm-1 insert
// semantics (duplicates allowed), same shape and error contract as
// PutBatch.
func (c *Client) InsertBatch(keys []Key, vals []uint64) error {
	return c.mutateBatch(wire.OpInsert, keys, vals)
}

func (c *Client) mutateBatch(op byte, keys []Key, vals []uint64) error {
	if len(keys) != len(vals) {
		return ErrBadRequest
	}
	if len(keys) == 0 {
		return nil
	}
	subs := make([]wire.Request, len(keys))
	for i := range keys {
		subs[i] = wire.Request{Op: op, Key: keys[i], Value: vals[i]}
	}
	resps, err := c.DoBatch(subs)
	if err != nil {
		return err
	}
	for i := range resps {
		if err := StatusErr(resps[i].Status); err != nil {
			return err
		}
	}
	return nil
}
