package loadgen

import (
	"bytes"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"grouphash/internal/engine"
	"grouphash/internal/server"
	"grouphash/internal/stats"
	"grouphash/internal/trace"
)

// lab is an in-process server the driver runs against.
type lab struct {
	srv      *server.Server
	addr     string
	done     chan error
	waitOnce sync.Once
	waitErr  error
}

func startLab(t *testing.T, cfg server.Config) *lab {
	t.Helper()
	if cfg.Engine == nil {
		eng, err := engine.New(engine.Spec{Name: "grouphash", Capacity: 1 << 14})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Engine = eng
	}
	cfg.Logf = t.Logf
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := &lab{srv: s, addr: ln.Addr().String(), done: make(chan error, 1)}
	go func() { l.done <- s.Serve(ln) }()
	t.Cleanup(func() { l.stop(t) })
	return l
}

// wait joins the serve loop exactly once (idempotent across the test
// body and the cleanup).
func (l *lab) wait() error {
	l.waitOnce.Do(func() { l.waitErr = <-l.done })
	return l.waitErr
}

func (l *lab) stop(t *testing.T) {
	t.Helper()
	if !l.srv.Draining() {
		if err := l.srv.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
	}
	if err := l.wait(); err != nil {
		t.Errorf("serve: %v", err)
	}
}

func baseMix(mut func(*trace.MixConfig)) trace.MixConfig {
	cfg := trace.MixConfig{
		Records:    2000,
		Theta:      0.99,
		Tenants:    1,
		ReadFrac:   0.5,
		UpdateFrac: 0.5,
		Seed:       7,
	}
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

// TestPreloadHonorsBatch pins that the preload phase ships OpBatch
// frames when Batch is set — observed from the server side, whose
// gh_server_batch_size{source="frame"} histogram only ever counts
// explicit frames.
func TestPreloadHonorsBatch(t *testing.T) {
	frameCount := func(t *testing.T, batch int) uint64 {
		reg := stats.NewRegistry()
		l := startLab(t, server.Config{Registry: reg})
		n, err := Preload(Config{Addr: l.addr, Mix: baseMix(nil), Conns: 2, Depth: 64, Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		if n != 2000 {
			t.Fatalf("preload acked %d keys, want 2000", n)
		}
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(line, `gh_server_batch_size_count{source="frame"}`) {
				var c uint64
				fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &c)
				return c
			}
		}
		return 0
	}
	t.Run("batched", func(t *testing.T) {
		if c := frameCount(t, 16); c == 0 {
			t.Fatal("preload with Batch=16 sent no OpBatch frames")
		}
	})
	t.Run("pipelined", func(t *testing.T) {
		if c := frameCount(t, 0); c != 0 {
			t.Fatalf("preload with Batch=0 sent %d OpBatch frames", c)
		}
	})
}

// TestRunDrainStraddle is the mid-drain regression: the server drains
// while a pipelined burst is in flight, so one burst straddles the
// cutover — an acked prefix followed by StatusDraining refusals. Only
// the prefix may count, and the proof is exact: an insert-only
// workload of unique keys reloaded from the drain snapshot must hold
// precisely preload + acked-run keys.
func TestRunDrainStraddle(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "store.pmfs")
	spec := engine.Spec{Name: "grouphash", Capacity: 1 << 14}
	eng, err := engine.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	l := startLab(t, server.Config{Engine: eng, SnapshotPath: img})

	mix := baseMix(func(c *trace.MixConfig) {
		c.ReadFrac, c.UpdateFrac, c.InsertFrac = 0, 0, 1
	})
	preloaded, err := Preload(Config{Addr: l.addr, Mix: mix, Conns: 1, Depth: 64})
	if err != nil {
		t.Fatal(err)
	}

	drainErr := make(chan error, 1)
	go func() {
		time.Sleep(30 * time.Millisecond)
		drainErr <- l.srv.Drain()
	}()
	res, err := Run(Config{
		Addr:     l.addr,
		Mix:      mix,
		Duration: 30 * time.Second, // the drain ends the run, not the clock
		Conns:    1,
		Depth:    64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-drainErr; err != nil {
		t.Fatal(err)
	}
	if err := l.wait(); err != nil {
		t.Fatal(err)
	}
	if !res.Drained {
		t.Fatal("run did not observe the drain")
	}
	if res.Acked == 0 {
		t.Fatal("no acked operations before the drain — the straddle was not exercised")
	}

	reloaded, _, err := engine.Load(spec, img)
	if err != nil {
		t.Fatal(err)
	}
	want := preloaded + res.Acked
	if got := reloaded.Len(); got != want {
		t.Fatalf("reloaded image holds %d keys, want %d (preload %d + acked inserts %d) — drain straddle miscounted",
			got, want, preloaded, res.Acked)
	}
}

// TestRunDuration: the time-bounded mode returns promptly after the
// deadline with its in-flight work fully accounted.
func TestRunDuration(t *testing.T) {
	l := startLab(t, server.Config{})
	mix := baseMix(nil)
	if _, err := Preload(Config{Addr: l.addr, Mix: mix, Conns: 2, Depth: 64}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := Run(Config{Addr: l.addr, Mix: mix, Duration: 200 * time.Millisecond, Conns: 2, Depth: 32})
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("duration-bounded run took %v", wall)
	}
	if res.Drained {
		t.Fatal("run reported a drain that never happened")
	}
	if res.Acked == 0 || res.Steps == 0 {
		t.Fatalf("empty run: %+v", res)
	}
	if res.RTT.Count == 0 {
		t.Fatal("no RTT samples")
	}
}

// TestPerTenantMetrics pins the per-tenant registry series: one
// ops-counter and one RTT-histogram series per tenant label, counts
// that reconcile exactly with the result, and an exposition that
// passes the conformance checker.
func TestPerTenantMetrics(t *testing.T) {
	const tenants = 4
	l := startLab(t, server.Config{})
	mix := baseMix(func(c *trace.MixConfig) {
		c.Tenants = tenants
		c.Records = 500
	})
	if _, err := Preload(Config{Addr: l.addr, Mix: mix, Conns: 2, Depth: 64}); err != nil {
		t.Fatal(err)
	}
	reg := stats.NewRegistry()
	res, err := Run(Config{Addr: l.addr, Mix: mix, Ops: 20_000, Conns: 2, Depth: 32, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != tenants {
		t.Fatalf("result carries %d tenants, want %d", len(res.Tenants), tenants)
	}
	var sum uint64
	for _, tr := range res.Tenants {
		if tr.Acked == 0 {
			t.Fatalf("tenant %d got no traffic", tr.Tenant)
		}
		if tr.RTT.Count == 0 {
			t.Fatalf("tenant %d has no RTT samples", tr.Tenant)
		}
		sum += tr.Acked
	}
	if sum != res.Acked {
		t.Fatalf("per-tenant acked sums to %d, total says %d", sum, res.Acked)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for i := 0; i < tenants; i++ {
		want := fmt.Sprintf(`ghload_tenant_ops_total{tenant="%d"} %d`, i, res.Tenants[i].Acked)
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
		if !strings.Contains(body, fmt.Sprintf(`ghload_tenant_rtt_seconds_count{tenant="%d"}`, i)) {
			t.Fatalf("exposition missing tenant %d RTT series", i)
		}
	}
	if _, err := stats.ValidateExposition(bytes.NewReader([]byte(body))); err != nil {
		t.Fatalf("exposition failed conformance: %v", err)
	}
}

// TestRunSpansAndRMW drives the value-size mixture and RMW pairs
// through a live server: batched frames, multi-chunk records, and the
// acked count reconciling with the wire expansion.
func TestRunSpansAndRMW(t *testing.T) {
	l := startLab(t, server.Config{})
	values, err := trace.ParseValueDist("1:70,4:30")
	if err != nil {
		t.Fatal(err)
	}
	mix := baseMix(func(c *trace.MixConfig) {
		c.Records = 500
		c.ReadFrac, c.UpdateFrac, c.RMWFrac = 0.4, 0.3, 0.3
		c.Values = values
	})
	preloaded, err := Preload(Config{Addr: l.addr, Mix: mix, Conns: 2, Depth: 64, Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Preload covers every chunk: 500 records at mean span 0.7·1+0.3·4.
	if preloaded <= 500 {
		t.Fatalf("preload acked %d keys — value-dist spans not preloaded", preloaded)
	}
	res, err := Run(Config{Addr: l.addr, Mix: mix, Ops: 5_000, Conns: 2, Depth: 32, Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Every chunk of every preloaded record exists, so nothing reads
	// NotFound and acked == the exact wire expansion of the steps.
	if res.Acked <= res.Steps {
		t.Fatalf("acked %d wire ops for %d steps — spans/RMW did not expand", res.Acked, res.Steps)
	}
}
