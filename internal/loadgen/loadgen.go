// Package loadgen is the workload lab's driver: it preloads a tenant
// keyspace and pushes an internal/trace Mix (tunable Zipfian skew,
// flash crowds, value-size mixtures, read-modify-write, per-tenant
// prefixes) through pipelined or batched connections against any
// ghserver-compatible address, counting exactly the operations the
// server acked.
//
// It exists as a package (rather than logic inside cmd/ghload) so the
// in-process tests can pin the two contracts a command-line run can't:
// preload honors the batch setting, and a server drain mid-burst
// counts the acked prefix of the straddling burst and nothing more.
package loadgen

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"grouphash/internal/client"
	"grouphash/internal/stats"
	"grouphash/internal/trace"
	"grouphash/internal/wire"
)

// Config parameterises a load run against one server address.
type Config struct {
	// Addr is the server's TCP address.
	Addr string
	// Mix is the workload shape (records, skew, tenants, fractions,
	// flash crowd, value mixture, seed). Each connection derives its
	// own generator seed from Mix.Seed.
	Mix trace.MixConfig
	// Ops bounds the run by logical steps across all connections
	// (0 = unbounded; then Duration must be set).
	Ops uint64
	// Duration bounds the run by wall time: workers finish their
	// in-flight burst at the deadline, never abandoning sent
	// operations (0 = op-bounded only).
	Duration time.Duration
	// Conns is the number of connections (one worker goroutine each).
	Conns int
	// Depth is the minimum wire operations per burst; a burst is cut
	// at a step boundary, so spans and RMW pairs never straddle two
	// bursts.
	Depth int
	// Batch > 0 ships bursts as explicit OpBatch frames of that many
	// sub-ops; 0 ships pipelined single frames. Preload honors this
	// setting too.
	Batch int
	// Registry optionally receives per-tenant series
	// (ghload_tenant_ops_total, ghload_tenant_rtt_seconds). Register
	// at most one Run per Registry — series names collide otherwise.
	Registry *stats.Registry
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// TenantResult is one tenant's slice of a run.
type TenantResult struct {
	// Tenant is the tenant index.
	Tenant int
	// Acked counts wire operations the server acknowledged for this
	// tenant.
	Acked uint64
	// RTT is the tenant's burst round-trip distribution (ns).
	RTT *stats.HistSnapshot
}

// Result summarises a run.
type Result struct {
	// Acked counts wire operations the server acknowledged (StatusOK,
	// or StatusNotFound for reads of absent chunks). Operations
	// refused with StatusDraining are NOT counted: Acked is exactly
	// the number a restarted server must still account for.
	Acked uint64
	// Steps counts completed logical workload steps.
	Steps uint64
	// Drained reports the server began shutting down mid-run; the
	// counts cover the acked prefix.
	Drained bool
	// Wall is the measured run time.
	Wall time.Duration
	// RTT is the burst round-trip distribution across all
	// connections (ns).
	RTT *stats.HistSnapshot
	// Tenants holds the per-tenant split.
	Tenants []TenantResult
}

// tenantMetrics is the shared per-tenant accounting — lock-free so
// workers on different connections attribute without a mutex.
type tenantMetrics struct {
	ops atomic.Uint64
	rtt stats.Histogram
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c *Config) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return 5 * time.Second
}

// send ships one burst: pipelined single frames by default, explicit
// OpBatch frames when batch > 0.
func send(c *client.Client, reqs []wire.Request, batch int) ([]wire.Response, error) {
	if batch > 0 {
		return c.DoBatchN(reqs, batch)
	}
	return c.Do(reqs)
}

// Preload populates the tenant keyspace: every chunk of every record
// (ids 1..Mix.Records per tenant, spans per the value mixture) is put
// with value = record id. The id range of each tenant is split across
// Conns connections, and bursts travel exactly as the run's will —
// batched when Batch is set, pipelined singles otherwise. Returns the
// acked key count; any refusal is an error.
func Preload(cfg Config) (uint64, error) {
	m, err := trace.NewMix(cfg.Mix) // validate + normalise (value dist defaulting)
	if err != nil {
		return 0, err
	}
	mix := m.Config()
	if cfg.Conns < 1 || cfg.Depth < 1 {
		return 0, errors.New("loadgen: need Conns >= 1 and Depth >= 1")
	}
	var wg sync.WaitGroup
	var total atomic.Uint64
	errc := make(chan error, cfg.Conns)
	per := mix.Records / uint64(cfg.Conns)
	for w := 0; w < cfg.Conns; w++ {
		lo := uint64(w)*per + 1
		hi := lo + per - 1
		if w == cfg.Conns-1 {
			hi = mix.Records
		}
		if hi < lo {
			continue
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			c, err := client.Dial(cfg.Addr, cfg.dialTimeout())
			if err != nil {
				errc <- fmt.Errorf("loadgen: preload dial: %w", err)
				return
			}
			defer c.Close()
			var acked uint64
			reqs := make([]wire.Request, 0, cfg.Depth+mix.Values.MaxSpan())
			flush := func() error {
				if len(reqs) == 0 {
					return nil
				}
				resps, err := send(c, reqs, cfg.Batch)
				if err != nil {
					return fmt.Errorf("loadgen: preload send: %w", err)
				}
				for _, r := range resps {
					if r.Status != wire.StatusOK {
						return fmt.Errorf("loadgen: preload refused: %s", client.StatusErr(r.Status))
					}
					acked++
				}
				reqs = reqs[:0]
				return nil
			}
			for t := 0; t < mix.Tenants; t++ {
				for id := lo; id <= hi; id++ {
					span := mix.Values.SpanFor(t, id)
					for chunk := 0; chunk < span; chunk++ {
						reqs = append(reqs, wire.Request{Op: wire.OpPut, Key: trace.MixKey(t, id, chunk), Value: id})
					}
					if len(reqs) >= cfg.Depth {
						if err := flush(); err != nil {
							errc <- err
							return
						}
					}
				}
			}
			if err := flush(); err != nil {
				errc <- err
				return
			}
			total.Add(acked)
		}(lo, hi)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return total.Load(), err
	default:
		return total.Load(), nil
	}
}

// Run drives the mix. Each connection owns the tenants congruent to
// its index (mod Conns) and rotates through them burst by burst, so
// every burst is single-tenant and its round trip attributes exactly.
// The run ends when the step budget is spent, the deadline passes
// (workers drain their in-flight burst — sent operations are always
// awaited and their acks counted), or the server begins draining.
func Run(cfg Config) (Result, error) {
	if cfg.Conns < 1 || cfg.Depth < 1 {
		return Result{}, errors.New("loadgen: need Conns >= 1 and Depth >= 1")
	}
	if cfg.Ops == 0 && cfg.Duration == 0 {
		return Result{}, errors.New("loadgen: need an Ops budget or a Duration")
	}
	if _, err := trace.NewMix(cfg.Mix); err != nil {
		return Result{}, err
	}

	tenants := make([]*tenantMetrics, cfg.Mix.Tenants)
	for t := range tenants {
		tenants[t] = &tenantMetrics{}
	}
	if cfg.Registry != nil {
		for t := range tenants {
			tm := tenants[t]
			label := stats.Label("tenant", fmt.Sprint(t))
			cfg.Registry.RegisterCounter("ghload_tenant_ops_total", label,
				"Acked wire operations per tenant.", tm.ops.Load)
			cfg.Registry.RegisterHistogram("ghload_tenant_rtt_seconds", label,
				"Burst round-trip time per tenant.", 1e-9, &tm.rtt)
		}
	}

	rtt := &stats.Histogram{}
	var (
		wg      sync.WaitGroup
		acked   atomic.Uint64
		steps   atomic.Uint64
		drained atomic.Bool
		errc    = make(chan error, cfg.Conns)
	)
	perConn := uint64(0)
	if cfg.Ops > 0 {
		perConn = cfg.Ops / uint64(cfg.Conns)
		if perConn == 0 {
			perConn = 1
		}
	}
	var deadline time.Time
	start := time.Now()
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}
	for w := 0; w < cfg.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(cfg.Addr, cfg.dialTimeout())
			if err != nil {
				errc <- fmt.Errorf("loadgen: dial: %w", err)
				return
			}
			defer c.Close()
			mixCfg := cfg.Mix
			mixCfg.Seed = cfg.Mix.Seed + int64(w)*7919
			gen, err := trace.NewMix(mixCfg)
			if err != nil {
				errc <- err
				return
			}
			// The tenants this worker owns.
			var owned []int
			for t := w % cfg.Mix.Tenants; t < cfg.Mix.Tenants; t += cfg.Conns {
				owned = append(owned, t)
			}
			if len(owned) == 0 {
				owned = []int{w % cfg.Mix.Tenants}
			}
			reqs := make([]wire.Request, 0, cfg.Depth+2*cfg.Mix.Values.MaxSpan())
			var done uint64
			for turn := 0; ; turn++ {
				if perConn > 0 && done >= perConn {
					return
				}
				if !deadline.IsZero() && !time.Now().Before(deadline) {
					return
				}
				if drained.Load() {
					return
				}
				tenant := owned[turn%len(owned)]
				reqs = reqs[:0]
				burstSteps := uint64(0)
				for len(reqs) < cfg.Depth {
					if perConn > 0 && done+burstSteps >= perConn {
						break
					}
					step := gen.NextFor(tenant)
					burstSteps++
					for chunk := 0; chunk < step.Span; chunk++ {
						key := trace.ChunkKey(step.Key, chunk)
						switch step.Op {
						case trace.YCSBRead:
							reqs = append(reqs, wire.Request{Op: wire.OpGet, Key: key})
						case trace.YCSBUpdate, trace.YCSBInsert:
							// Inserts travel as upserts: worker-local id
							// streams may collide across connections, and
							// a repeat run against a warm server must not
							// fail on duplicate inserts.
							reqs = append(reqs, wire.Request{Op: wire.OpPut, Key: key, Value: step.Value})
						case trace.YCSBRMW:
							reqs = append(reqs,
								wire.Request{Op: wire.OpGet, Key: key},
								wire.Request{Op: wire.OpPut, Key: key, Value: step.Value})
						}
					}
				}
				if len(reqs) == 0 {
					return
				}
				t0 := time.Now()
				resps, err := send(c, reqs, cfg.Batch)
				dt := uint64(time.Since(t0))
				rtt.Observe(dt)
				tenants[tenant].rtt.Observe(dt)
				if err != nil {
					// Connection failed mid-burst (server aborted, not
					// drained): the sent burst's acks are unknowable
					// from here; count none of it.
					drained.Store(true)
					return
				}
				var burstAcked uint64
				for _, r := range resps {
					switch r.Status {
					case wire.StatusOK, wire.StatusNotFound:
						// Acked: applied (or a definitive read/delete
						// miss the server answered).
						burstAcked++
					case wire.StatusDraining:
						// Refused: the server is shutting down. Not
						// acked, and the run winds down — but earlier
						// responses of this same burst stay counted
						// (the mid-drain straddle).
						drained.Store(true)
					default:
						errc <- fmt.Errorf("loadgen: server rejected an operation: %s", client.StatusErr(r.Status))
						return
					}
				}
				acked.Add(burstAcked)
				tenants[tenant].ops.Add(burstAcked)
				steps.Add(burstSteps)
				done += burstSteps
				if drained.Load() {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	res := Result{
		Acked:   acked.Load(),
		Steps:   steps.Load(),
		Drained: drained.Load(),
		Wall:    time.Since(start),
		RTT:     rtt.Snapshot(),
	}
	for t, tm := range tenants {
		res.Tenants = append(res.Tenants, TenantResult{Tenant: t, Acked: tm.ops.Load(), RTT: tm.rtt.Snapshot()})
	}
	select {
	case err := <-errc:
		return res, err
	default:
		return res, nil
	}
}
