// Package plot renders horizontal bar charts as plain text, so ghbench
// can echo the paper's figures in a terminal — grouped bars per
// category, scaled to the terminal width, with value labels. Stdlib
// only, no colour codes (pipe-safe).
//
//	RandomNum lf 0.50 — insert latency (ns)
//	  linear-L  ████████████████████████████████████▌ 2508
//	  pfht-L    ██████████████████████████████████████▊ 2657
//	  path-L    ██████████████████████████████████████▏ 2613
//	  group     ████████████████████▊ 1420
package plot

import (
	"fmt"
	"io"
	"strings"
)

// eighth-block runes give sub-character bar resolution.
var eighths = []rune{' ', '▏', '▎', '▍', '▌', '▋', '▊', '▉'}

// Bar is one labelled value.
type Bar struct {
	Label string
	Value float64
}

// Chart is a titled group of bars sharing a scale.
type Chart struct {
	Title string
	Bars  []Bar
	// Width is the maximum bar width in character cells (default 40).
	Width int
	// Format renders the value label; default "%.4g".
	Format string
}

// Render writes the chart to w.
func (c Chart) Render(w io.Writer) {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	format := c.Format
	if format == "" {
		format = "%.4g"
	}
	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	maxVal := 0.0
	labelWidth := 0
	for _, b := range c.Bars {
		if b.Value > maxVal {
			maxVal = b.Value
		}
		if len(b.Label) > labelWidth {
			labelWidth = len(b.Label)
		}
	}
	for _, b := range c.Bars {
		fmt.Fprintf(w, "  %-*s %s %s\n",
			labelWidth, b.Label,
			bar(b.Value, maxVal, width),
			fmt.Sprintf(format, b.Value))
	}
}

// bar builds the block-character run for value on a [0, max] scale.
func bar(value, max float64, width int) string {
	if max <= 0 || value <= 0 {
		return ""
	}
	cells := value / max * float64(width)
	full := int(cells)
	frac := cells - float64(full)
	var sb strings.Builder
	sb.WriteString(strings.Repeat("█", full))
	if idx := int(frac * 8); idx > 0 {
		sb.WriteRune(eighths[idx])
	}
	return sb.String()
}

// Grouped renders several charts that share one value scale — the
// paper's side-by-side sub-figures. Each chart keeps its own title but
// bars are scaled against the global maximum, so lengths compare
// across groups.
func Grouped(w io.Writer, charts []Chart, width int, format string) {
	if width <= 0 {
		width = 40
	}
	if format == "" {
		format = "%.4g"
	}
	maxVal := 0.0
	labelWidth := 0
	for _, c := range charts {
		for _, b := range c.Bars {
			if b.Value > maxVal {
				maxVal = b.Value
			}
			if len(b.Label) > labelWidth {
				labelWidth = len(b.Label)
			}
		}
	}
	for i, c := range charts {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if c.Title != "" {
			fmt.Fprintf(w, "%s\n", c.Title)
		}
		for _, b := range c.Bars {
			fmt.Fprintf(w, "  %-*s %s %s\n",
				labelWidth, b.Label,
				bar(b.Value, maxVal, width),
				fmt.Sprintf(format, b.Value))
		}
	}
}
