package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	var buf bytes.Buffer
	Chart{
		Title: "latency",
		Bars: []Bar{
			{Label: "group", Value: 1400},
			{Label: "linear-L", Value: 2800},
		},
		Width: 20,
	}.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "latency") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The max bar fills the width; the half bar is about half.
	full := strings.Count(lines[2], "█")
	half := strings.Count(lines[1], "█")
	if full != 20 {
		t.Fatalf("max bar = %d cells, want 20", full)
	}
	if half < 9 || half > 11 {
		t.Fatalf("half bar = %d cells", half)
	}
	if !strings.Contains(lines[1], "1400") || !strings.Contains(lines[2], "2800") {
		t.Fatal("value labels missing")
	}
}

func TestRenderZeroAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	Chart{Bars: []Bar{{Label: "zero", Value: 0}}}.Render(&buf)
	if strings.Contains(buf.String(), "█") {
		t.Fatal("zero value drew a bar")
	}
	buf.Reset()
	Chart{}.Render(&buf) // no bars: no panic
}

func TestFractionalEighths(t *testing.T) {
	var buf bytes.Buffer
	Chart{
		Bars:  []Bar{{Label: "a", Value: 15}, {Label: "b", Value: 16}},
		Width: 4,
	}.Render(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// 15/16 of 4 cells = 3.75 cells: 3 full + the 6/8 block.
	if !strings.Contains(lines[0], "███▊") {
		t.Fatalf("fractional bar = %q", lines[0])
	}
}

func TestLabelAlignment(t *testing.T) {
	var buf bytes.Buffer
	Chart{
		Bars:  []Bar{{Label: "x", Value: 1}, {Label: "longer-label", Value: 1}},
		Width: 5,
	}.Render(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// Bars must start at the same column.
	if strings.Index(lines[0], "█") != strings.Index(lines[1], "█") {
		t.Fatalf("bars misaligned:\n%s", buf.String())
	}
}

func TestGroupedSharedScale(t *testing.T) {
	var buf bytes.Buffer
	Grouped(&buf, []Chart{
		{Title: "g1", Bars: []Bar{{Label: "a", Value: 10}}},
		{Title: "g2", Bars: []Bar{{Label: "b", Value: 20}}},
	}, 10, "%.0f")
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	var aBar, bBar int
	for _, l := range lines {
		if strings.Contains(l, "a ") {
			aBar = strings.Count(l, "█")
		}
		if strings.Contains(l, "b ") {
			bBar = strings.Count(l, "█")
		}
	}
	if bBar != 10 || aBar != 5 {
		t.Fatalf("shared scale broken: a=%d b=%d", aBar, bBar)
	}
	if !strings.Contains(buf.String(), "g1") || !strings.Contains(buf.String(), "g2") {
		t.Fatal("titles missing")
	}
}
