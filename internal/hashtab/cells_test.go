package hashtab

import (
	"testing"
	"testing/quick"

	"grouphash/internal/cache"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/native"
)

// backends returns both Mem implementations so cell-protocol tests run
// against the simulator and the native buffer alike.
func backends() map[string]Mem {
	return map[string]Mem{
		"memsim": memsim.New(memsim.Config{Size: 1 << 20, Seed: 1, Geoms: cache.SmallGeometry()}),
		"native": native.New(1 << 20),
	}
}

func TestCellsInsertLookupDelete(t *testing.T) {
	for name, mem := range backends() {
		t.Run(name, func(t *testing.T) {
			for _, keyBytes := range []int{8, 16} {
				l := layout.ForKeySize(keyBytes)
				c := NewCells(mem, l, 64)
				k := layout.Key{Lo: 0xfeed, Hi: 0xbeef}
				if c.Occupied(3) {
					t.Fatal("fresh cell occupied")
				}
				c.InsertAt(3, k, 777)
				if !c.Occupied(3) || !c.Matches(3, k) {
					t.Fatal("inserted cell not found")
				}
				if c.Value(3) != 777 {
					t.Fatalf("value = %d", c.Value(3))
				}
				if c.Matches(3, layout.Key{Lo: 1}) {
					t.Fatal("matched wrong key")
				}
				c.DeleteAt(3)
				if c.Occupied(3) || !c.PayloadZero(3) {
					t.Fatal("delete left residue")
				}
			}
		})
	}
}

func TestCellsAddressingDoesNotOverlap(t *testing.T) {
	mem := native.New(1 << 16)
	l := layout.ForKeySize(8)
	c := NewCells(mem, l, 16)
	for i := uint64(0); i < 16; i++ {
		c.InsertAt(i, layout.Key{Lo: i + 100}, i)
	}
	for i := uint64(0); i < 16; i++ {
		if !c.Matches(i, layout.Key{Lo: i + 100}) || c.Value(i) != i {
			t.Fatalf("cell %d corrupted by neighbours", i)
		}
	}
}

func TestInsertCommitOrderSurvivesCrash(t *testing.T) {
	// Crash right after the payload persist but before the meta
	// commit: the cell must read as empty (bitmap 0) regardless of
	// which dirty words survive.
	mem := memsim.New(memsim.Config{Size: 1 << 18, Seed: 42, Geoms: cache.SmallGeometry()})
	l := layout.ForKeySize(8)
	c := NewCells(mem, l, 8)
	k := layout.Key{Lo: 5}
	c.WritePayload(0, k, 9)
	c.PersistPayload(0)
	// No meta commit. Crash:
	mem.Crash(0.5)
	if c.Occupied(0) {
		t.Fatal("cell committed without a meta write")
	}
}

func TestMetaCommitIsDurable(t *testing.T) {
	mem := memsim.New(memsim.Config{Size: 1 << 18, Seed: 43, Geoms: cache.SmallGeometry()})
	l := layout.ForKeySize(8)
	c := NewCells(mem, l, 8)
	k := layout.Key{Lo: 5}
	c.InsertAt(0, k, 9)
	mem.Crash(0.0) // full rollback of anything unpersisted
	if !c.Matches(0, k) || c.Value(0) != 9 {
		t.Fatal("fully committed insert lost by crash")
	}
}

func TestDeleteCommitOrderSurvivesCrash(t *testing.T) {
	// Crash between the meta clear and the payload scrub: bitmap must
	// durably read 0 (the delete is logically complete).
	mem := memsim.New(memsim.Config{Size: 1 << 18, Seed: 44, Geoms: cache.SmallGeometry()})
	l := layout.ForKeySize(8)
	c := NewCells(mem, l, 8)
	k := layout.Key{Lo: 5}
	c.InsertAt(0, k, 9)
	c.CommitEmpty(0)
	// Crash before ClearPayload.
	mem.Crash(0.0)
	if c.Occupied(0) {
		t.Fatal("meta clear was persisted; bitmap must be 0")
	}
}

func TestCountPersistence(t *testing.T) {
	mem := memsim.New(memsim.Config{Size: 1 << 18, Seed: 45, Geoms: cache.SmallGeometry()})
	cnt := NewCount(mem)
	cnt.Inc()
	cnt.Inc()
	cnt.Inc()
	cnt.Dec()
	if cnt.Get() != 2 {
		t.Fatalf("count = %d, want 2", cnt.Get())
	}
	mem.Crash(0.0)
	if cnt.Get() != 2 {
		t.Fatalf("count lost on crash: %d", cnt.Get())
	}
}

func TestSnapshot(t *testing.T) {
	mem := native.New(1 << 16)
	l := layout.ForKeySize(16)
	c := NewCells(mem, l, 4)
	k := layout.Key{Lo: 1, Hi: 2}
	c.InsertAt(2, k, 3)
	commit, gk, gv := c.Snapshot(2)
	if !l.Occupied(commit) || gk != k || gv != 3 {
		t.Fatalf("snapshot = (%#x, %+v, %d)", commit, gk, gv)
	}
}

// Property: for any sequence of InsertAt/DeleteAt on random cells, an
// occupied cell always reads back exactly the last key/value inserted
// there, and an empty cell always has a zero payload.
func TestQuickCellProtocolInvariants(t *testing.T) {
	f := func(ops []uint32, twoWord bool) bool {
		keyBytes := 8
		if twoWord {
			keyBytes = 16
		}
		l := layout.ForKeySize(keyBytes)
		mem := native.New(1 << 16)
		c := NewCells(mem, l, 32)
		type slot struct {
			k        layout.Key
			v        uint64
			occupied bool
		}
		shadow := make([]slot, 32)
		for n, op := range ops {
			i := uint64(op) % 32
			if op%2 == 0 {
				k := layout.Key{Lo: uint64(op)/64 + 1, Hi: uint64(n)}
				v := uint64(n) + 1
				if shadow[i].occupied {
					c.DeleteAt(i) // cells require empty targets for InsertAt
				}
				c.InsertAt(i, k, v)
				shadow[i] = slot{k: l.Canon(k), v: v, occupied: true}
			} else if shadow[i].occupied {
				c.DeleteAt(i)
				shadow[i] = slot{}
			}
		}
		for i := uint64(0); i < 32; i++ {
			if shadow[i].occupied {
				if !c.Matches(i, shadow[i].k) || c.Value(i) != shadow[i].v {
					return false
				}
			} else {
				if c.Occupied(i) || !c.PayloadZero(i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
