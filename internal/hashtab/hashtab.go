// Package hashtab defines the contract shared by every hash-table
// implementation in this repository (group hashing and the three
// baselines), the persistent-memory interface they are written against,
// and reusable helpers for operating on arrays of persistent cells.
//
// Two backends satisfy Mem:
//
//   - memsim.Memory — the simulated machine (cache model, latency model,
//     crash injection) used for all paper experiments;
//   - native.Memory — a plain in-process buffer with no simulation, for
//     real-throughput benchmarking and the concurrent table variant.
//
// Writing the tables against the interface keeps the algorithms
// identical across backends, so the simulator measures exactly the code
// a downstream user would run.
package hashtab

import (
	"errors"

	"grouphash/internal/layout"
)

// ErrTableFull is returned by Insert when the scheme's collision
// resolution is exhausted — the paper's "capacity of the hash table
// needs to be expanded" condition.
var ErrTableFull = errors.New("hashtab: table full")

// ErrInvalidKey is returned by Insert for keys the cell layout cannot
// store — the compact 16-byte layout reserves the zero key as its
// empty-cell marker.
var ErrInvalidKey = errors.New("hashtab: invalid key for this layout")

// Mem is the persistent-memory surface the tables are written against.
// See memsim.Memory for full semantics; native.Memory implements the
// same contract with no-op persistence.
type Mem interface {
	// Read8 loads an aligned 8-byte word.
	Read8(addr uint64) uint64
	// Write8 stores an aligned 8-byte word (durable only after Persist).
	Write8(addr, val uint64)
	// AtomicWrite8 stores an aligned 8-byte word failure-atomically.
	AtomicWrite8(addr, val uint64)
	// Persist makes [addr, addr+n) durable (clflush range + mfence).
	Persist(addr, n uint64)
	// Alloc reserves size bytes at the given power-of-two alignment.
	Alloc(size, align uint64) uint64
	// Size returns the region size in bytes.
	Size() uint64
}

// ConcurrentReader marks Mem backends whose Read8 may run concurrently
// with word stores from other goroutines: every word access is
// individually atomic, so an unlocked reader can never observe a torn
// word (multi-word consistency remains the caller's problem — the
// seqlock wrapper in core.Concurrent validates it with per-stripe
// version counters). Backends that keep shared mutable state per access
// (the memsim simulator's cache and clock) must NOT implement this.
type ConcurrentReader interface {
	// ConcurrentReadSafe is a marker; it performs no work.
	ConcurrentReadSafe()
}

// Reclaimer is the optional allocator surface for backends whose bump
// allocator can rewind: Mark captures the watermark, Release returns to
// it, zeroing and reclaiming everything allocated since. Table
// expansion uses it to take back the freshly allocated cell arrays of a
// failed rehash attempt instead of abandoning them (a native backend
// grows without bound otherwise). Backends with a fixed region and
// simulated persistence (memsim) deliberately do not implement it —
// zeroing megabytes through the simulated cache would distort every
// counter the experiments measure.
type Reclaimer interface {
	// Mark returns the current allocation watermark.
	Mark() uint64
	// Release rewinds the allocator to a previous Mark, zeroing the
	// released range so future allocations see fresh memory.
	Release(mark uint64)
}

// Table is the common key-value interface. Keys are fixed-size
// (layout.Key); values are single words, the small-item regime the
// paper's motivating key-value stores (memcached, MemC3) are dominated
// by.
//
// Insert follows the paper's Algorithm 1 and does not check for a
// pre-existing key; inserting a key twice stores two items and Lookup
// returns the one found first on the probe path.
type Table interface {
	// Name identifies the scheme in reports (e.g. "group", "linear-L").
	Name() string
	// Insert stores (k, v), returning ErrTableFull when the scheme
	// cannot place the item.
	Insert(k layout.Key, v uint64) error
	// Lookup returns the value stored under k.
	Lookup(k layout.Key) (uint64, bool)
	// Delete removes k, reporting whether it was present.
	Delete(k layout.Key) bool
	// Len returns the number of stored items (the paper's count field).
	Len() uint64
	// Capacity returns the total number of cells.
	Capacity() uint64
	// LoadFactor returns Len/Capacity.
	LoadFactor() float64
}

// Updater is implemented by tables supporting in-place value updates.
// A value is one failure-atomic word, so an update needs no commit
// protocol beyond an atomic store plus persist.
type Updater interface {
	// Update overwrites the value of an existing key, reporting
	// whether the key was present.
	Update(k layout.Key, v uint64) bool
}

// Recoverable is implemented by tables that can rebuild a consistent
// state from the persistent image after a crash.
type Recoverable interface {
	// Recover runs the scheme's recovery procedure and returns a
	// human-readable summary of what was repaired.
	Recover() (RecoveryReport, error)
}

// RecoveryReport summarises a recovery pass.
type RecoveryReport struct {
	CellsScanned   uint64 // cells visited by the scan
	CellsCleared   uint64 // partially-written cells wiped (bitmap == 0)
	CountCorrected bool   // the persistent count field was wrong
	UndoneOps      uint64 // WAL entries rolled back (logged schemes)
}
