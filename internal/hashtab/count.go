package hashtab

import "grouphash/internal/layout"

// Count is a persistent occupied-cell counter (the paper's per-table
// "count" field), updated with the same atomic-write-plus-persist step
// every scheme uses in Algorithms 1 and 3.
type Count struct {
	Mem  Mem
	Addr uint64
}

// NewCount allocates a count word (on its own cacheline, as in the
// paper's Global info block) initialised to zero.
func NewCount(mem Mem) Count {
	return Count{Mem: mem, Addr: mem.Alloc(layout.WordSize, 64)}
}

// Get reads the counter.
func (c Count) Get() uint64 { return c.Mem.Read8(c.Addr) }

// Set atomically writes and persists the counter.
func (c Count) Set(n uint64) {
	c.Mem.AtomicWrite8(c.Addr, n)
	c.Mem.Persist(c.Addr, layout.WordSize)
}

// Inc adds one (atomic update + persist).
func (c Count) Inc() { c.Set(c.Get() + 1) }

// Dec subtracts one (atomic update + persist).
func (c Count) Dec() { c.Set(c.Get() - 1) }
