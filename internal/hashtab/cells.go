package hashtab

import (
	"grouphash/internal/layout"
)

// Cells is a fixed array of persistent hash cells, the building block of
// every scheme here. It factors out the cell-level persistence protocol
// so all tables commit updates identically:
//
//	insert:  write payload → persist payload → atomic commit-word store →
//	         persist commit word                          (§3.4, Alg. 1)
//	delete:  atomic commit-word clear → persist → clear payload →
//	         persist payload                              (§3.4, Alg. 3)
//
// The commit word is the cell's bitmap in the paper's sense: the key
// word itself under the compact layout, a meta word with an occupancy
// bit and key tag under the 16-byte-key layout (see package layout).
type Cells struct {
	Mem  Mem
	L    layout.Layout
	Base uint64 // address of cell 0
	N    uint64 // number of cells
}

// NewCells allocates an array of n cells from mem. Cells start zeroed
// (empty) because regions are zero-initialised.
func NewCells(mem Mem, l layout.Layout, n uint64) Cells {
	base := mem.Alloc(n*l.CellSize(), layout.WordSize)
	return Cells{Mem: mem, L: l, Base: base, N: n}
}

// Addr returns the base address of cell i.
func (c Cells) Addr(i uint64) uint64 { return c.Base + i*c.L.CellSize() }

// Commit reads the commit word of cell i.
func (c Cells) Commit(i uint64) uint64 { return c.Mem.Read8(c.L.CommitOff(c.Addr(i))) }

// Occupied reports whether cell i holds a live item.
func (c Cells) Occupied(i uint64) bool { return c.L.Occupied(c.Commit(i)) }

// Key reads the key stored in cell i.
func (c Cells) Key(i uint64) layout.Key {
	base := c.Addr(i)
	k := layout.Key{Lo: c.Mem.Read8(c.L.KeyOff(base, 0))}
	if c.L.KeyWords() == 2 {
		k.Hi = c.Mem.Read8(c.L.KeyOff(base, 1))
	}
	return k
}

// Value reads the value stored in cell i.
func (c Cells) Value(i uint64) uint64 { return c.Mem.Read8(c.L.ValOff(c.Addr(i))) }

// Matches reports whether cell i is occupied and holds key k. Under the
// compact layout the commit word IS the key, so this is a single read;
// under the meta layout the tag filters most mismatches before the key
// words are touched.
func (c Cells) Matches(i uint64, k layout.Key) bool {
	commit := c.Commit(i)
	if !c.L.CommitMatches(commit, k) {
		return false
	}
	if c.L.Compact() {
		return true // commit word equality was a full key compare
	}
	return c.Key(i) == c.L.Canon(k)
}

// Probe reads cell i's commit word ONCE and classifies it against k:
// whether the cell holds k, and whether it is occupied at all. Scans
// that need both answers (bounded group scans) use this instead of
// Occupied+Matches, which would read the commit word twice.
func (c Cells) Probe(i uint64, k layout.Key) (match, occupied bool) {
	commit := c.Commit(i)
	if !c.L.Occupied(commit) {
		return false, false
	}
	if !c.L.CommitMatches(commit, k) {
		return false, true
	}
	if c.L.Compact() {
		return true, true
	}
	return c.Key(i) == c.L.Canon(k), true
}

// WritePayload stores the non-commit words of cell i: the value (and,
// under the meta layout, the key words). Nothing is published yet.
func (c Cells) WritePayload(i uint64, k layout.Key, v uint64) {
	base := c.Addr(i)
	if !c.L.Compact() {
		c.Mem.Write8(c.L.KeyOff(base, 0), k.Lo)
		c.Mem.Write8(c.L.KeyOff(base, 1), k.Hi)
	}
	c.Mem.Write8(c.L.ValOff(base), v)
}

// PersistPayload makes the non-commit words of cell i durable.
func (c Cells) PersistPayload(i uint64) {
	base := c.Addr(i)
	c.Mem.Persist(c.L.PayloadOff(base), c.L.PayloadLen())
}

// CommitOccupied atomically publishes cell i as occupied by k and
// persists the commit word — the 8-byte failure-atomic commit of an
// insert.
func (c Cells) CommitOccupied(i uint64, k layout.Key) {
	addr := c.L.CommitOff(c.Addr(i))
	c.Mem.AtomicWrite8(addr, c.L.CommitWord(k))
	c.Mem.Persist(addr, layout.WordSize)
}

// CommitEmpty atomically retires cell i and persists the commit word —
// the 8-byte failure-atomic commit of a delete. Per §3.4 this happens
// BEFORE the payload is cleared.
func (c Cells) CommitEmpty(i uint64) {
	addr := c.L.CommitOff(c.Addr(i))
	c.Mem.AtomicWrite8(addr, 0)
	c.Mem.Persist(addr, layout.WordSize)
}

// ClearPayload zeroes and persists the non-commit words of cell i (the
// post-commit half of a delete, and the recovery scrub of Algorithm 4).
func (c Cells) ClearPayload(i uint64) {
	base := c.Addr(i)
	if !c.L.Compact() {
		c.Mem.Write8(c.L.KeyOff(base, 0), 0)
		c.Mem.Write8(c.L.KeyOff(base, 1), 0)
	}
	c.Mem.Write8(c.L.ValOff(base), 0)
	c.PersistPayload(i)
}

// PayloadZero reports whether the non-commit words of cell i are all
// zero (used by recovery and its verification).
func (c Cells) PayloadZero(i uint64) bool {
	base := c.Addr(i)
	if !c.L.Compact() {
		if c.Mem.Read8(c.L.KeyOff(base, 0)) != 0 || c.Mem.Read8(c.L.KeyOff(base, 1)) != 0 {
			return false
		}
	}
	return c.Mem.Read8(c.L.ValOff(base)) == 0
}

// InsertAt runs the full insert commit protocol on cell i.
func (c Cells) InsertAt(i uint64, k layout.Key, v uint64) {
	c.WritePayload(i, k, v)
	c.PersistPayload(i)
	c.CommitOccupied(i, k)
}

// DeleteAt runs the full delete commit protocol on cell i.
func (c Cells) DeleteAt(i uint64) {
	c.CommitEmpty(i)
	c.ClearPayload(i)
}

// Snapshot reads cell i as one record (verification, logging and
// expansion): its commit word, key and value.
func (c Cells) Snapshot(i uint64) (commit uint64, k layout.Key, v uint64) {
	return c.Commit(i), c.Key(i), c.Value(i)
}
