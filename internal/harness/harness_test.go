package harness

import (
	"bytes"
	"strings"
	"testing"

	"grouphash/internal/native"
	"grouphash/internal/trace"
)

func TestBuildAllKinds(t *testing.T) {
	for _, k := range []Kind{Group, Linear, LinearL, PFHT, PFHTL, Path, PathL} {
		cfg := BuildConfig{Kind: k, TotalCells: 1 << 12, KeyBytes: 8, Seed: 1}
		mem := native.New(RegionBytes(cfg))
		tab := Build(mem, cfg)
		if tab == nil {
			t.Fatalf("Build(%s) returned nil", k)
		}
		if string(k) != tab.Name() {
			t.Fatalf("kind %q built table named %q", k, tab.Name())
		}
		// Capacity within 2x of the budget for every scheme.
		if tab.Capacity() < 1<<11 || tab.Capacity() > 1<<13 {
			t.Fatalf("%s capacity %d is far from the %d budget", k, tab.Capacity(), 1<<12)
		}
	}
}

func TestBuildUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(native.New(1<<20), BuildConfig{Kind: "bogus", TotalCells: 1 << 10})
}

func TestRunLatencySmoke(t *testing.T) {
	s := TestScale()
	res := RunLatency(LatencyConfig{
		Build:      BuildConfig{Kind: Group, TotalCells: s.RandomNumCells, Seed: 1},
		Trace:      trace.NewRandomNum(1),
		LoadFactor: 0.5,
		Ops:        100,
		Seed:       1,
	})
	if res.Scheme != "group" || res.Trace != "RandomNum" {
		t.Fatalf("labels: %+v", res)
	}
	if res.Loaded == 0 {
		t.Fatal("load phase inserted nothing")
	}
	for name, c := range map[string]OpCost{"insert": res.Insert, "query": res.Query, "delete": res.Delete} {
		if c.AvgLatencyNs <= 0 {
			t.Fatalf("%s latency not positive: %+v", name, c)
		}
		if c.Count != 100 {
			t.Fatalf("%s measured %d ops", name, c.Count)
		}
	}
	// Query must be cheaper than insert (no persistence work).
	if res.Query.AvgLatencyNs >= res.Insert.AvgLatencyNs {
		t.Fatalf("query (%.0f) not cheaper than insert (%.0f)",
			res.Query.AvgLatencyNs, res.Insert.AvgLatencyNs)
	}
	// Queries and deletes of resident keys must all succeed.
	if res.Query.Failures != 0 || res.Delete.Failures != 0 {
		t.Fatalf("failures: query %d delete %d", res.Query.Failures, res.Delete.Failures)
	}
}

func TestLoggingCostShowsInFig2(t *testing.T) {
	r := Fig2(TestScale())
	if len(r.Rows) != 6 {
		t.Fatalf("Fig2 rows = %d", len(r.Rows))
	}
	if r.SchemesCompared != 3 {
		t.Fatalf("pairs = %d", r.SchemesCompared)
	}
	if r.LatencyRatio <= 1.0 {
		t.Fatalf("logging did not slow mutations down: ratio %.2f", r.LatencyRatio)
	}
	if r.L3MissRatio <= 1.0 {
		t.Fatalf("logging did not add L3 misses: ratio %.2f", r.L3MissRatio)
	}
}

func TestSpaceUtilOrdering(t *testing.T) {
	// Figure 7's shape: path > pfht > group, and group ≥ ~70% even at
	// test scale.
	s := TestScale()
	tr := trace.NewRandomNum(1)
	get := func(k Kind) float64 {
		return RunSpaceUtil(BuildConfig{Kind: k, TotalCells: s.RandomNumCells, Seed: 1}, tr).Utilization
	}
	path := get(Path)
	pfht := get(PFHT)
	group := get(Group)
	if !(path > group && pfht > group) {
		t.Fatalf("utilisation ordering wrong: path %.3f pfht %.3f group %.3f", path, pfht, group)
	}
	if group < 0.70 || group > 0.95 {
		t.Fatalf("group utilisation %.3f outside the plausible band around the paper's 82%%", group)
	}
}

func TestFig8Monotonicity(t *testing.T) {
	rows := Fig8(TestScale())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Utilisation grows with group size (Figure 8b).
	for i := 1; i < len(rows); i++ {
		if rows[i].Utilization.Utilization <= rows[i-1].Utilization.Utilization {
			t.Fatalf("utilisation not increasing: %v -> %v",
				rows[i-1].Utilization.Utilization, rows[i].Utilization.Utilization)
		}
	}
}

func TestTable3RecoveryUnderOnePercent(t *testing.T) {
	rows := Table3(TestScale())
	for _, r := range rows {
		if r.Percentage > 5 {
			t.Fatalf("recovery is %.2f%% of execution for %d bytes (paper: <1%%)",
				r.Percentage, r.TableBytes)
		}
		if r.RecoveryMs <= 0 || r.ExecMs <= 0 {
			t.Fatalf("degenerate timing: %+v", r)
		}
	}
	// Recovery time grows with table size.
	if rows[1].RecoveryMs <= rows[0].RecoveryMs {
		t.Fatalf("recovery time not growing with size: %+v", rows)
	}
}

func TestRecoverHelper(t *testing.T) {
	cfg := BuildConfig{Kind: Group, TotalCells: 1 << 10, KeyBytes: 8}
	mem := native.New(RegionBytes(cfg))
	tab := Build(mem, cfg)
	if _, err := Recover(tab); err != nil {
		t.Fatalf("group table must be recoverable: %v", err)
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	s := TestScale()
	var buf bytes.Buffer

	f2 := Fig2(s)
	PrintFig2(&buf, f2)
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Fatal("Fig2 printer")
	}

	buf.Reset()
	m := RequestMatrix{Rows: []LatencyResult{{Scheme: "group", Trace: "RandomNum", LoadFactor: 0.5}}}
	PrintFig5(&buf, m)
	PrintFig6(&buf, m)
	if !strings.Contains(buf.String(), "Figure 5") || !strings.Contains(buf.String(), "Figure 6") {
		t.Fatal("Fig5/6 printers")
	}

	buf.Reset()
	PrintFig7(&buf, []SpaceUtilResult{{Scheme: "group", Trace: "RandomNum", Utilization: 0.82}})
	if !strings.Contains(buf.String(), "82.0%") {
		t.Fatalf("Fig7 printer: %s", buf.String())
	}

	buf.Reset()
	PrintFig8(&buf, []Fig8Row{{GroupSize: 256}})
	if !strings.Contains(buf.String(), "256") {
		t.Fatal("Fig8 printer")
	}

	buf.Reset()
	PrintTable3(&buf, []RecoveryResult{{TableBytes: 128 << 20, RecoveryMs: 77.8, ExecMs: 8426.2, Percentage: 0.92}})
	if !strings.Contains(buf.String(), "128MB") || !strings.Contains(buf.String(), "0.92%") {
		t.Fatalf("Table3 printer: %s", buf.String())
	}
}

func TestRepeatLatencyAggregates(t *testing.T) {
	s := TestScale()
	r := RepeatLatency(LatencyConfig{
		Build:      BuildConfig{Kind: Group, TotalCells: s.RandomNumCells, Seed: 1},
		Trace:      trace.NewRandomNum(1),
		LoadFactor: 0.5,
		Ops:        100,
		Seed:       1,
	}, 5)
	if r.Runs != 5 || r.Insert.Latency.N() != 5 {
		t.Fatalf("runs = %d / %d", r.Runs, r.Insert.Latency.N())
	}
	if r.Insert.Latency.Mean() <= 0 {
		t.Fatal("no latency aggregated")
	}
	// Independent seeds: the runs must not be byte-identical, but they
	// must be close (same configuration) — the paper's averaging is
	// only meaningful if run-to-run variance is modest.
	if r.Insert.Latency.Stddev() == 0 {
		t.Fatal("five executions identical — seeds not independent")
	}
	if r.MaxRelStddev() > 0.5 {
		t.Fatalf("wild variance across runs: %v", r.MaxRelStddev())
	}
	mean := r.Insert.Mean()
	if mean.AvgLatencyNs != r.Insert.Latency.Mean() {
		t.Fatal("Mean() disagrees with summary")
	}
	var buf bytes.Buffer
	PrintRepeated(&buf, []RepeatedLatencyResult{r})
	if !strings.Contains(buf.String(), "n=5") {
		t.Fatalf("printer: %s", buf.String())
	}
}

func TestRepeatLatencySingleRunFloor(t *testing.T) {
	s := TestScale()
	r := RepeatLatency(LatencyConfig{
		Build:      BuildConfig{Kind: Group, TotalCells: s.RandomNumCells, Seed: 1},
		Trace:      trace.NewRandomNum(1),
		LoadFactor: 0.5,
		Ops:        50,
		Seed:       1,
	}, 0)
	if r.Runs != 1 {
		t.Fatalf("runs = %d, want floor of 1", r.Runs)
	}
}

func TestRunYCSBAllWorkloadsAllSchemes(t *testing.T) {
	for _, w := range []byte{'a', 'b', 'c', 'd', 'f'} {
		for _, k := range Fig5Schemes() {
			res := RunYCSB(k, w, 2000, 500, 1)
			if res.Ops != 500 || res.AvgLatencyNs <= 0 {
				t.Fatalf("%s/%c: %+v", k, w, res)
			}
			if w == 'c' && res.WriteLatencyNs != 0 {
				t.Fatalf("read-only workload had writes: %+v", res)
			}
			if w != 'c' && res.WriteLatencyNs <= res.ReadLatencyNs {
				t.Fatalf("%s/%c: writes (%f) not costlier than reads (%f)",
					k, w, res.WriteLatencyNs, res.ReadLatencyNs)
			}
		}
	}
}

func TestYCSBPrinter(t *testing.T) {
	var buf bytes.Buffer
	PrintYCSB(&buf, []YCSBResult{{Scheme: "group", Workload: "YCSB-A", Ops: 10}})
	if !strings.Contains(buf.String(), "YCSB-A") {
		t.Fatal("printer")
	}
}

func TestPlotsRender(t *testing.T) {
	var buf bytes.Buffer
	m := RequestMatrix{Rows: []LatencyResult{{
		Scheme: "group", Trace: "RandomNum", LoadFactor: 0.5,
		Insert: OpCost{AvgLatencyNs: 1400, AvgL3Misses: 2.2},
		Delete: OpCost{AvgLatencyNs: 1300, AvgL3Misses: 2.1},
	}}}
	PlotFig5(&buf, m)
	PlotFig6(&buf, m)
	PlotFig7(&buf, []SpaceUtilResult{{Scheme: "group", Trace: "RandomNum", Utilization: 0.79}})
	PlotFig8(&buf, []Fig8Row{{GroupSize: 256, Latency: LatencyResult{Insert: OpCost{AvgLatencyNs: 1420}}, Utilization: SpaceUtilResult{Utilization: 0.79}}})
	out := buf.String()
	for _, want := range []string{"█", "79.0%", "group insert", "group 256"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plots missing %q:\n%s", want, out)
		}
	}
}

func TestExcludedComparison(t *testing.T) {
	rows := ExcludedComparison(TestScale())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ExcludedResult{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	group, chained, dchoice := byName["group"], byName["chained"], byName["2choice"]
	// The paper's two exclusion reasons, as measured facts:
	if dchoice.Utilization > 0.2 {
		t.Fatalf("2-choice utilisation %.3f not 'too low'", dchoice.Utilization)
	}
	if chained.L3Misses <= group.L3Misses {
		t.Fatalf("chained pointer chasing (%.2f) not worse than group (%.2f)",
			chained.L3Misses, group.L3Misses)
	}
	if chained.QueryNs <= group.QueryNs {
		t.Fatalf("chained query (%.0f) not slower than group (%.0f)",
			chained.QueryNs, group.QueryNs)
	}
	if chained.BytesPerItem <= group.BytesPerItem {
		t.Fatalf("chained footprint (%.1f B/item) not above group (%.1f)",
			chained.BytesPerItem, group.BytesPerItem)
	}
	var buf bytes.Buffer
	PrintExcluded(&buf, rows)
	if !strings.Contains(buf.String(), "exclusion") {
		t.Fatal("printer")
	}
}

func TestPhaseTailLatencies(t *testing.T) {
	s := TestScale()
	res := RunLatency(LatencyConfig{
		Build:      BuildConfig{Kind: Group, TotalCells: s.RandomNumCells, Seed: 1},
		Trace:      trace.NewRandomNum(1),
		LoadFactor: 0.75,
		Ops:        200,
		Seed:       1,
	})
	for name, c := range map[string]OpCost{"insert": res.Insert, "query": res.Query} {
		if c.MedianNs <= 0 || c.P99Ns <= 0 {
			t.Fatalf("%s: missing tail stats %+v", name, c)
		}
		if c.P99Ns < c.MedianNs {
			t.Fatalf("%s: p99 (%f) below median (%f)", name, c.P99Ns, c.MedianNs)
		}
	}
	// The group-scan tail: query p99 well above the median at lf 0.75.
	if res.Query.P99Ns < 1.5*res.Query.MedianNs {
		t.Fatalf("query tail suspiciously flat: median %f p99 %f",
			res.Query.MedianNs, res.Query.P99Ns)
	}
}

func TestLoadCurve(t *testing.T) {
	r := RunLoadCurve(Group, 1<<14, []float64{0.2, 0.5, 0.75}, 150, 1)
	if r.Scheme != "group" || len(r.Points) != 3 {
		t.Fatalf("curve = %+v", r)
	}
	for i, p := range r.Points {
		if p.InsertNs <= 0 || p.QueryNs <= 0 {
			t.Fatalf("point %d degenerate: %+v", i, p)
		}
	}
	// Query cost grows with fill level for group hashing (deeper scans).
	if r.Points[2].QueryNs <= r.Points[0].QueryNs {
		t.Fatalf("query cost not growing with fill: %+v", r.Points)
	}
	var buf bytes.Buffer
	PrintCurves(&buf, []CurveResult{r})
	if !strings.Contains(buf.String(), "Load curve") {
		t.Fatal("printer")
	}
	buf.Reset()
	if err := WriteCurveCSV(&buf, []CurveResult{r}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "scheme,load_factor") {
		t.Fatal("csv header")
	}
}

func TestWearComparison(t *testing.T) {
	rows := WearComparison(TestScale())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]WearResult{}
	for _, r := range rows {
		if r.Ops == 0 || r.MediaWritesPerOp <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		byName[r.Scheme] = r
	}
	group := byName["group"]
	for _, logged := range []string{"linear-L", "pfht-L", "path-L"} {
		if byName[logged].MediaWritesPerOp < 2*group.MediaWritesPerOp {
			t.Fatalf("%s media writes (%.2f) not well above group (%.2f)",
				logged, byName[logged].MediaWritesPerOp, group.MediaWritesPerOp)
		}
		// Logged schemes hammer the log header words; their p99 wear
		// is far above group's.
		if byName[logged].P99PerWord <= group.P99PerWord {
			t.Fatalf("%s p99 wear (%d) not above group (%d)",
				logged, byName[logged].P99PerWord, group.P99PerWord)
		}
	}
	var buf bytes.Buffer
	PrintWear(&buf, rows)
	if !strings.Contains(buf.String(), "media writes/op") {
		t.Fatal("printer")
	}
}
