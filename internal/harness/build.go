// Package harness builds the hashing schemes under comparison, drives
// the paper's experimental procedure over the simulated machine, and
// regenerates every table and figure of the evaluation section (§4):
//
//	Figure 2  — consistency cost of logging (latency + L3 misses)
//	Figures 5/6 — request latency and L3 misses: 3 traces × 2 load
//	              factors × {linear-L, pfht-L, path-L, group}
//	Figure 7  — space utilisation at insertion failure
//	Figure 8  — group-size sweep (latency + utilisation)
//	Table 3   — recovery time vs. table size
//
// The harness measures with the paper's procedure (§4.2): load the
// table to the target load factor, then insert 1000 items, query 1000
// items and delete 1000 items, reporting per-operation averages.
package harness

import (
	"fmt"

	"grouphash/internal/core"
	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/linearprobe"
	"grouphash/internal/pathhash"
	"grouphash/internal/pfht"
	"grouphash/internal/wal"
)

// Kind names a scheme variant exactly as the paper's figures label them.
type Kind string

// The schemes of the evaluation. "-L" marks the logged (crash-
// consistent) variants of the baselines; group hashing needs no log.
const (
	Group   Kind = "group"
	Group2C Kind = "group-2c"
	Linear  Kind = "linear"
	LinearL Kind = "linear-L"
	PFHT    Kind = "pfht"
	PFHTL   Kind = "pfht-L"
	Path    Kind = "path"
	PathL   Kind = "path-L"
)

// Fig5Schemes are the four consistent schemes compared in Figures 5-7.
func Fig5Schemes() []Kind { return []Kind{LinearL, PFHTL, PathL, Group} }

// Fig2Schemes are the six motivation schemes of Figure 2.
func Fig2Schemes() []Kind { return []Kind{Linear, LinearL, PFHT, PFHTL, Path, PathL} }

// BuildConfig sizes a table build.
type BuildConfig struct {
	Kind Kind
	// TotalCells is the approximate total cell budget, matching the
	// paper's "2^23 hash table cells" style sizing. Each scheme maps
	// it onto its own structure (see Build).
	TotalCells uint64
	// KeyBytes is 8 or 16 (taken from the trace).
	KeyBytes int
	// Seed selects hash functions.
	Seed uint64
	// GroupSize applies to group hashing only; 0 = paper default 256.
	GroupSize uint64
	// PathLevels applies to path hashing only; 0 = paper default 20.
	PathLevels int
}

// RegionBytes estimates the persistent-region size cfg needs, with
// allowance for the WAL, headers, and path hashing's extra levels.
func RegionBytes(cfg BuildConfig) uint64 {
	cell := layout.ForKeySize(cfg.KeyBytes).CellSize()
	return cfg.TotalCells*cell*2 + wal.Bytes() + (1 << 16)
}

// Build constructs the scheme over mem. The cell budget is divided the
// way each scheme organises storage:
//
//   - group: level 1 = TotalCells/2, level 2 the same (capacity ≈ budget)
//   - linear: TotalCells cells
//   - pfht: TotalCells main cells + the 3% stash on top (as in §4.1,
//     "an extra stash with 3% size of the hash table")
//   - path: top level = TotalCells/2; with ≥8 levels the total is
//     within 1% of the budget
func Build(mem hashtab.Mem, cfg BuildConfig) hashtab.Table {
	if cfg.KeyBytes == 0 {
		cfg.KeyBytes = 8
	}
	switch cfg.Kind {
	case Group, Group2C:
		t, err := core.Create(mem, core.Options{
			Cells:     cfg.TotalCells / 2,
			GroupSize: cfg.GroupSize,
			KeyBytes:  cfg.KeyBytes,
			Seed:      cfg.Seed,
			TwoChoice: cfg.Kind == Group2C,
		})
		if err != nil {
			panic(fmt.Sprintf("harness: building group table: %v", err))
		}
		return t
	case Linear, LinearL:
		return linearprobe.New(mem, linearprobe.Options{
			Cells:    cfg.TotalCells,
			KeyBytes: cfg.KeyBytes,
			Seed:     cfg.Seed,
			Logged:   cfg.Kind == LinearL,
		})
	case PFHT, PFHTL:
		return pfht.New(mem, pfht.Options{
			Cells:    cfg.TotalCells,
			KeyBytes: cfg.KeyBytes,
			Seed:     cfg.Seed,
			Logged:   cfg.Kind == PFHTL,
		})
	case Path, PathL:
		return pathhash.New(mem, pathhash.Options{
			Cells:    cfg.TotalCells / 2,
			Levels:   cfg.PathLevels,
			KeyBytes: cfg.KeyBytes,
			Seed:     cfg.Seed,
			Logged:   cfg.Kind == PathL,
		})
	}
	panic(fmt.Sprintf("harness: unknown scheme kind %q", cfg.Kind))
}

// Recover runs the scheme's recovery procedure if it has one.
func Recover(t hashtab.Table) (hashtab.RecoveryReport, error) {
	if r, ok := t.(hashtab.Recoverable); ok {
		return r.Recover()
	}
	return hashtab.RecoveryReport{}, fmt.Errorf("harness: %s is not recoverable", t.Name())
}
