package harness

import (
	"math/rand"

	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/stats"
	"grouphash/internal/trace"
)

// OpCost is the per-operation average cost of one measurement phase.
type OpCost struct {
	Count        int     // operations measured
	AvgLatencyNs float64 // simulated request latency (the paper's metric)
	AvgL3Misses  float64 // simulated L3 misses per request (Figures 2b, 6)
	AvgFlushes   float64 // clflush instructions per request
	AvgFences    float64 // mfence instructions per request
	AvgNVMWords  float64 // 8-byte words newly written to NVM per request
	Failures     int     // inserts rejected with ErrTableFull
	// MedianNs and P99Ns are the tail view the paper's averages hide:
	// group hashing's occasional deep group scans show up here.
	MedianNs float64
	P99Ns    float64
}

// LatencyResult is one cell of the Figure 5/6 matrix.
type LatencyResult struct {
	Scheme     string
	Trace      string
	LoadFactor float64
	Loaded     uint64 // items inserted during the load phase
	Insert     OpCost
	Query      OpCost
	Delete     OpCost
}

// LatencyConfig drives one RunLatency execution.
type LatencyConfig struct {
	Build      BuildConfig
	Trace      trace.Trace
	LoadFactor float64
	// Ops is the measured operations per phase; the paper uses 1000.
	Ops int
	// Seed drives sampling and crash injection.
	Seed int64
}

// phase measures fn over n operations, reporting per-op averages and
// the latency distribution.
func phase(mem *memsim.Memory, n int, fn func(i int) bool) OpCost {
	before := mem.Counters()
	failures := 0
	var sample stats.Sample
	last := before.ClockNs
	for i := 0; i < n; i++ {
		if !fn(i) {
			failures++
		}
		now := mem.Counters().ClockNs
		sample.Add(now - last)
		last = now
	}
	d := mem.Counters().Sub(before)
	fn64 := float64(n)
	return OpCost{
		Count:        n,
		AvgLatencyNs: d.ClockNs / fn64,
		AvgL3Misses:  float64(d.L3Misses) / fn64,
		AvgFlushes:   float64(d.Flushes) / fn64,
		AvgFences:    float64(d.Fences) / fn64,
		AvgNVMWords:  float64(d.NVM.WordsDirtied) / fn64,
		Failures:     failures,
		MedianNs:     sample.Median(),
		P99Ns:        sample.P99(),
	}
}

// RunLatency executes the paper's §4.2 procedure for one (scheme,
// trace, load factor) cell: load the table to the target load factor
// from the trace, then measure Ops inserts of fresh items, Ops queries
// of random resident items, and Ops deletes of random resident items.
func RunLatency(cfg LatencyConfig) LatencyResult {
	cfg.Build.KeyBytes = cfg.Trace.KeyBytes()
	mem := memsim.New(memsim.Config{
		Size: RegionBytes(cfg.Build),
		Seed: cfg.Seed,
	})
	tab := Build(mem, cfg.Build)
	cfg.Trace.Reset()

	// Load phase. Track resident keys for the query/delete samples.
	target := cfg.LoadFactor
	var resident []layout.Key
	for tab.LoadFactor() < target {
		it := cfg.Trace.Next()
		if err := tab.Insert(it.Key, it.Value); err != nil {
			break // cannot reach the target; measure at what we got
		}
		resident = append(resident, it.Key)
	}
	res := LatencyResult{
		Scheme:     tab.Name(),
		Trace:      cfg.Trace.Name(),
		LoadFactor: cfg.LoadFactor,
		Loaded:     uint64(len(resident)),
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	querySample := sampleKeys(rng, resident, cfg.Ops)
	deleteSample := sampleKeys(rng, resident, cfg.Ops)

	// Insert phase: the next Ops fresh trace items.
	res.Insert = phase(mem, cfg.Ops, func(int) bool {
		it := cfg.Trace.Next()
		return tab.Insert(it.Key, it.Value) == nil
	})
	// Query phase: resident keys, uniformly sampled.
	res.Query = phase(mem, cfg.Ops, func(i int) bool {
		_, ok := tab.Lookup(querySample[i])
		return ok
	})
	// Delete phase: distinct resident keys.
	res.Delete = phase(mem, cfg.Ops, func(i int) bool {
		return tab.Delete(deleteSample[i])
	})
	return res
}

// sampleKeys draws n distinct positions from resident (with fallback to
// repetition when resident is smaller than n).
func sampleKeys(rng *rand.Rand, resident []layout.Key, n int) []layout.Key {
	out := make([]layout.Key, 0, n)
	if len(resident) == 0 {
		return make([]layout.Key, n)
	}
	if len(resident) >= 2*n {
		// Rejection sampling: cheap and allocation-light even when the
		// resident set has millions of keys (full-size paper runs).
		seen := make(map[int]bool, n)
		for len(out) < n {
			p := rng.Intn(len(resident))
			if !seen[p] {
				seen[p] = true
				out = append(out, resident[p])
			}
		}
		return out
	}
	if len(resident) >= n {
		perm := rng.Perm(len(resident))[:n]
		for _, p := range perm {
			out = append(out, resident[p])
		}
		return out
	}
	for i := 0; i < n; i++ {
		out = append(out, resident[rng.Intn(len(resident))])
	}
	return out
}
