package harness

import (
	"fmt"
	"io"

	"grouphash/internal/memsim"
	"grouphash/internal/nvm"
	"grouphash/internal/trace"
)

// WearResult quantifies NVM media wear per scheme — the endurance side
// of the paper's write-efficiency motivation (§2.1: PCM endures ~10^8
// writes; every word the consistency protocol writes twice halves the
// lifetime a wear-leveler can deliver).
type WearResult struct {
	Scheme string
	Ops    uint64 // measured mutations (half inserts, half deletes)
	// MediaWritesPerOp is the number of 8-byte words that reached the
	// NVM media per mutation — the paper's "NVM writes".
	MediaWritesPerOp float64
	// AmplificationVsPayload is media writes relative to the two words
	// of application payload (key+value) an insert logically carries.
	AmplificationVsPayload float64
	// MaxPerWord is the hottest word's write count over the run (the
	// count word for every scheme here; a device wear-leveler absorbs
	// this, per the paper's §2.1 assumption).
	MaxPerWord uint32
	// P99PerWord is the 99th-percentile per-word write count.
	P99PerWord uint32
	Wear       nvm.WearStats
}

// RunWear measures media wear for one scheme: load to load factor 0.5
// from the trace (untracked), then enable wear counters and run nOps
// inserts followed by nOps deletes.
func RunWear(build BuildConfig, tr trace.Trace, nOps int, seed int64) WearResult {
	build.KeyBytes = tr.KeyBytes()
	mem := memsim.New(memsim.Config{Size: RegionBytes(build), Seed: seed})
	tab := Build(mem, build)
	tr.Reset()
	for tab.LoadFactor() < 0.5 {
		it := tr.Next()
		if tab.Insert(it.Key, it.Value) != nil {
			break
		}
	}
	mem.DropCaches() // settle outstanding dirt before counting

	mem.Region().EnableWearTracking()
	var inserted []trace.Item
	for i := 0; i < nOps; i++ {
		it := tr.Next()
		if tab.Insert(it.Key, it.Value) == nil {
			inserted = append(inserted, it)
		}
	}
	for _, it := range inserted {
		tab.Delete(it.Key)
	}
	mem.DropCaches() // flush the tail so every write is accounted

	w := mem.Region().Wear()
	ops := uint64(2 * len(inserted))
	res := WearResult{
		Scheme:     tab.Name(),
		Ops:        ops,
		MaxPerWord: w.MaxPerWord,
		P99PerWord: w.P99PerTouched,
		Wear:       w,
	}
	if ops > 0 {
		res.MediaWritesPerOp = float64(w.MediaWrites) / float64(ops)
		// An insert's intrinsic payload is key+value (two words for
		// the compact layout; key spans two words for 16-byte keys).
		payloadWords := 2.0
		if tr.KeyBytes() == 16 {
			payloadWords = 3.0
		}
		// Deletes carry no payload, so amortised payload per op is
		// half an insert's.
		res.AmplificationVsPayload = res.MediaWritesPerOp / (payloadWords / 2)
	}
	return res
}

// WearComparison runs the wear experiment for the four consistent
// schemes on RandomNum (an extension experiment; the paper motivates
// endurance in §2.1 but does not plot it).
func WearComparison(s Scale) []WearResult {
	var out []WearResult
	for _, k := range Fig5Schemes() {
		out = append(out, RunWear(BuildConfig{
			Kind: k, TotalCells: s.RandomNumCells, Seed: uint64(s.Seed),
		}, trace.NewRandomNum(s.Seed), s.Ops, s.Seed))
	}
	return out
}

// PrintWear renders the wear comparison.
func PrintWear(w io.Writer, rows []WearResult) {
	fmt.Fprintln(w, "NVM media wear per mutation (extension; RandomNum, lf 0.5, insert+delete)")
	fmt.Fprintln(w, "")
	fmt.Fprintf(w, "  %-10s %16s %14s %12s %12s\n",
		"scheme", "media writes/op", "amplification", "hottest word", "p99/word")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %16.2f %13.1fx %12d %12d\n",
			r.Scheme, r.MediaWritesPerOp, r.AmplificationVsPayload, r.MaxPerWord, r.P99PerWord)
	}
	fmt.Fprintln(w, "\n  (amplification = media word-writes vs the key+value payload;")
	fmt.Fprintln(w, "   the hottest word is each scheme's persistent count — the per-op")
	fmt.Fprintln(w, "   commit the paper's device-level wear-leveling assumption absorbs)")
}
