package harness

import (
	"fmt"
	"io"
	"sort"
)

// PrintFig2 renders the motivation experiment the way Figure 2 groups
// it: per scheme, insert and delete latency (2a) and L3 misses (2b).
func PrintFig2(w io.Writer, r Fig2Result) {
	fmt.Fprintln(w, "Figure 2 — consistency cost of logging (RandomNum, load factor 0.5)")
	fmt.Fprintln(w, "")
	fmt.Fprintf(w, "  %-10s %14s %14s %14s %14s\n",
		"scheme", "insert ns", "delete ns", "insert L3", "delete L3")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-10s %14.0f %14.0f %14.2f %14.2f\n",
			row.Scheme, row.Insert.AvgLatencyNs, row.Delete.AvgLatencyNs,
			row.Insert.AvgL3Misses, row.Delete.AvgL3Misses)
	}
	fmt.Fprintln(w, "")
	fmt.Fprintf(w, "  logged/unlogged latency ratio (insert+delete avg): %.2fx (paper: 1.95x)\n", r.LatencyRatio)
	fmt.Fprintf(w, "  logged/unlogged L3-miss ratio (insert+delete avg): %.2fx (paper: 2.16x)\n", r.L3MissRatio)
}

// PrintFig5 renders the request-latency grid of Figure 5.
func PrintFig5(w io.Writer, m RequestMatrix) {
	fmt.Fprintln(w, "Figure 5 — average request latency (ns, simulated)")
	printMatrix(w, m, func(c OpCost) float64 { return c.AvgLatencyNs }, "%12.0f")
}

// PrintFig6 renders the L3-miss grid of Figure 6.
func PrintFig6(w io.Writer, m RequestMatrix) {
	fmt.Fprintln(w, "Figure 6 — average L3 cache misses per request (simulated)")
	printMatrix(w, m, func(c OpCost) float64 { return c.AvgL3Misses }, "%12.2f")
}

// printMatrix renders one metric of the Fig5/6 grid, one block per
// (trace, load factor) — matching the paper's six sub-figures.
func printMatrix(w io.Writer, m RequestMatrix, metric func(OpCost) float64, cell string) {
	type block struct {
		trace string
		lf    float64
	}
	seen := map[block][]LatencyResult{}
	var order []block
	for _, r := range m.Rows {
		b := block{r.Trace, r.LoadFactor}
		if _, ok := seen[b]; !ok {
			order = append(order, b)
		}
		seen[b] = append(seen[b], r)
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].trace != order[j].trace {
			return order[i].trace < order[j].trace
		}
		return order[i].lf < order[j].lf
	})
	for _, b := range order {
		fmt.Fprintf(w, "\n  %s, load factor %.2f\n", b.trace, b.lf)
		fmt.Fprintf(w, "  %-10s %12s %12s %12s\n", "scheme", "insert", "query", "delete")
		for _, r := range seen[b] {
			fmt.Fprintf(w, "  %-10s "+cell+" "+cell+" "+cell+"\n",
				r.Scheme, metric(r.Insert), metric(r.Query), metric(r.Delete))
		}
	}
}

// PrintFig7 renders the space-utilisation bars of Figure 7.
func PrintFig7(w io.Writer, rows []SpaceUtilResult) {
	fmt.Fprintln(w, "Figure 7 — space utilisation at first insertion failure")
	fmt.Fprintln(w, "")
	fmt.Fprintf(w, "  %-14s %-10s %12s %12s %12s\n", "trace", "scheme", "utilisation", "inserted", "capacity")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-14s %-10s %11.1f%% %12d %12d\n",
			r.Trace, r.Scheme, r.Utilization*100, r.Inserted, r.Capacity)
	}
	fmt.Fprintln(w, "\n  (paper: path highest, PFHT slightly lower, group ~82%; linear omitted, fills to 1.0)")
}

// PrintFig8 renders the group-size sweep of Figure 8.
func PrintFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintln(w, "Figure 8 — group size vs request latency and space utilisation (RandomNum, lf 0.5)")
	fmt.Fprintln(w, "")
	fmt.Fprintf(w, "  %10s %12s %12s %12s %14s\n", "group size", "insert ns", "query ns", "delete ns", "utilisation")
	for _, r := range rows {
		fmt.Fprintf(w, "  %10d %12.0f %12.0f %12.0f %13.1f%%\n",
			r.GroupSize,
			r.Latency.Insert.AvgLatencyNs, r.Latency.Query.AvgLatencyNs, r.Latency.Delete.AvgLatencyNs,
			r.Utilization.Utilization*100)
	}
	fmt.Fprintln(w, "\n  (paper: latency grows with group size; utilisation exceeds 80% at 256)")
}

// PrintTable3 renders the recovery-time table.
func PrintTable3(w io.Writer, rows []RecoveryResult) {
	fmt.Fprintln(w, "Table 3 — recovery time vs table size (group hashing, RandomNum, lf 0.5)")
	fmt.Fprintln(w, "")
	fmt.Fprintf(w, "  %-16s", "Table size")
	for _, r := range rows {
		fmt.Fprintf(w, " %12s", byteSize(r.TableBytes))
	}
	fmt.Fprintln(w, "")
	fmt.Fprintf(w, "  %-16s", "Recovery (ms)")
	for _, r := range rows {
		fmt.Fprintf(w, " %12.1f", r.RecoveryMs)
	}
	fmt.Fprintln(w, "")
	fmt.Fprintf(w, "  %-16s", "Execution (ms)")
	for _, r := range rows {
		fmt.Fprintf(w, " %12.1f", r.ExecMs)
	}
	fmt.Fprintln(w, "")
	fmt.Fprintf(w, "  %-16s", "Percentage")
	for _, r := range rows {
		fmt.Fprintf(w, " %11.2f%%", r.Percentage)
	}
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "\n  (paper: ~0.93% at every size)")
}

// byteSize formats a byte count the way the paper labels table sizes.
func byteSize(b uint64) string {
	switch {
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	default:
		return fmt.Sprintf("%dKB", b>>10)
	}
}
