package harness

import (
	"fmt"
	"io"

	"grouphash/internal/stats"
)

// The paper reports each result as "the average of five independent
// executions" (§4.1). RepeatLatency runs the same configuration under
// different seeds and aggregates every metric, carrying the spread so
// reports can show run-to-run stability alongside the mean.

// RepeatedOpCost aggregates one phase's metrics across executions.
type RepeatedOpCost struct {
	Latency stats.Summary
	L3Miss  stats.Summary
	Flushes stats.Summary
}

func (r *RepeatedOpCost) add(c OpCost) {
	r.Latency.Add(c.AvgLatencyNs)
	r.L3Miss.Add(c.AvgL3Misses)
	r.Flushes.Add(c.AvgFlushes)
}

// Mean returns the aggregated phase as a plain OpCost of means.
func (r *RepeatedOpCost) Mean() OpCost {
	return OpCost{
		Count:        int(r.Latency.N()),
		AvgLatencyNs: r.Latency.Mean(),
		AvgL3Misses:  r.L3Miss.Mean(),
		AvgFlushes:   r.Flushes.Mean(),
	}
}

// RepeatedLatencyResult is a LatencyResult aggregated over executions.
type RepeatedLatencyResult struct {
	Scheme     string
	Trace      string
	LoadFactor float64
	Runs       int
	Insert     RepeatedOpCost
	Query      RepeatedOpCost
	Delete     RepeatedOpCost
}

// MaxRelStddev returns the worst coefficient of variation across the
// latency metrics — a single stability figure for the whole cell.
func (r *RepeatedLatencyResult) MaxRelStddev() float64 {
	worst := r.Insert.Latency.RelStddev()
	if v := r.Query.Latency.RelStddev(); v > worst {
		worst = v
	}
	if v := r.Delete.Latency.RelStddev(); v > worst {
		worst = v
	}
	return worst
}

// RepeatLatency executes cfg `runs` times with derived seeds (the
// paper's independent executions) and aggregates.
func RepeatLatency(cfg LatencyConfig, runs int) RepeatedLatencyResult {
	if runs < 1 {
		runs = 1
	}
	var out RepeatedLatencyResult
	out.Runs = runs
	for run := 0; run < runs; run++ {
		c := cfg
		c.Seed = cfg.Seed + int64(run)*7919
		c.Build.Seed = cfg.Build.Seed + uint64(run)*104729
		res := RunLatency(c)
		if run == 0 {
			out.Scheme, out.Trace, out.LoadFactor = res.Scheme, res.Trace, res.LoadFactor
		}
		out.Insert.add(res.Insert)
		out.Query.add(res.Query)
		out.Delete.add(res.Delete)
	}
	return out
}

// PrintRepeated renders an aggregated grid with mean ± stddev latency.
func PrintRepeated(w io.Writer, rows []RepeatedLatencyResult) {
	fmt.Fprintf(w, "Request latency, mean of independent executions (± stddev, ns simulated)\n\n")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-14s lf %.2f %-10s  insert %7.0f ±%-6.0f query %6.0f ±%-5.0f delete %7.0f ±%-6.0f (n=%d)\n",
			r.Trace, r.LoadFactor, r.Scheme,
			r.Insert.Latency.Mean(), r.Insert.Latency.Stddev(),
			r.Query.Latency.Mean(), r.Query.Latency.Stddev(),
			r.Delete.Latency.Mean(), r.Delete.Latency.Stddev(),
			r.Runs)
	}
}
