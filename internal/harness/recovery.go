package harness

import (
	"grouphash/internal/core"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/trace"
)

// RecoveryResult is one column of Table 3.
type RecoveryResult struct {
	TableBytes   uint64  // nominal hash-table size
	Cells        uint64  // total cells that size maps to
	RecoveryMs   float64 // simulated recovery time
	ExecMs       float64 // simulated time of loading to load factor 0.5
	Percentage   float64 // RecoveryMs / ExecMs * 100 (the paper's metric)
	CellsScanned uint64
}

// RunRecovery reproduces Table 3 for one nominal table size: build a
// group-hash table of that many bytes of cells, load it to load factor
// 0.5 from the RandomNum trace (timing the load), crash, and time the
// Algorithm-4 recovery scan.
func RunRecovery(tableBytes uint64, seed int64) RecoveryResult {
	l := layout.ForKeySize(8)
	totalCells := tableBytes / l.CellSize()
	// Level-1 cells: half the total, rounded down to a power of two.
	l1 := uint64(1)
	for l1*2 <= totalCells/2 {
		l1 *= 2
	}
	mem := memsim.New(memsim.Config{
		Size: tableBytes + tableBytes/4 + (1 << 16),
		Seed: seed,
	})
	tab, err := core.Create(mem, core.Options{Cells: l1, KeyBytes: 8, Seed: uint64(seed)})
	if err != nil {
		panic(err)
	}
	tr := trace.NewRandomNum(seed)

	t0 := mem.Clock()
	for tab.LoadFactor() < 0.5 {
		it := tr.Next()
		if err := tab.Insert(it.Key, it.Value); err != nil {
			break
		}
	}
	execNs := mem.Clock() - t0

	mem.Crash(0.5)
	t1 := mem.Clock()
	rep, err := tab.Recover()
	if err != nil {
		panic(err)
	}
	recNs := mem.Clock() - t1

	return RecoveryResult{
		TableBytes:   tableBytes,
		Cells:        tab.Capacity(),
		RecoveryMs:   recNs / 1e6,
		ExecMs:       execNs / 1e6,
		Percentage:   recNs / execNs * 100,
		CellsScanned: rep.CellsScanned,
	}
}
