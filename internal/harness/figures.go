package harness

import (
	"grouphash/internal/trace"
)

// Scale fixes the experiment sizes. PaperScale matches §4.1 exactly;
// DefaultScale shrinks tables ~16× so the whole suite runs in minutes
// on a laptop while staying far larger than the simulated L3 (so the
// cache-behaviour conclusions are unchanged); TestScale is for unit
// tests and smoke runs.
type Scale struct {
	Name             string
	RandomNumCells   uint64
	BagOfWordsCells  uint64
	FingerprintCells uint64
	Ops              int
	Seed             int64
	RecoverySizes    []uint64 // nominal table bytes for Table 3
	GroupSizes       []uint64 // sweep points for Figure 8
}

// PaperScale reproduces the paper's sizes: 2^23 cells for RandomNum,
// 2^24 for Bag-of-Words, 2^25 for Fingerprint, 1000 measured ops, and
// 128 MB–1 GB recovery tables.
func PaperScale() Scale {
	return Scale{
		Name:             "paper",
		RandomNumCells:   1 << 23,
		BagOfWordsCells:  1 << 24,
		FingerprintCells: 1 << 25,
		Ops:              1000,
		Seed:             1,
		RecoverySizes:    []uint64{128 << 20, 256 << 20, 512 << 20, 1 << 30},
		GroupSizes:       []uint64{64, 128, 256, 512, 1024},
	}
}

// DefaultScale is the laptop-friendly scale (see Scale).
func DefaultScale() Scale {
	return Scale{
		Name:             "default",
		RandomNumCells:   1 << 19,
		BagOfWordsCells:  1 << 20,
		FingerprintCells: 1 << 20,
		Ops:              1000,
		Seed:             1,
		RecoverySizes:    []uint64{16 << 20, 32 << 20, 64 << 20, 128 << 20},
		GroupSizes:       []uint64{64, 128, 256, 512, 1024},
	}
}

// TestScale is tiny, for unit tests and testing.B benchmarks.
func TestScale() Scale {
	return Scale{
		Name:             "test",
		RandomNumCells:   1 << 14,
		BagOfWordsCells:  1 << 14,
		FingerprintCells: 1 << 14,
		Ops:              200,
		Seed:             1,
		RecoverySizes:    []uint64{1 << 20, 2 << 20},
		GroupSizes:       []uint64{64, 256, 1024},
	}
}

// cellsFor maps a trace to its cell budget under this scale.
func (s Scale) cellsFor(tr trace.Trace) uint64 {
	switch tr.Name() {
	case "RandomNum":
		return s.RandomNumCells
	case "Bag-of-Words":
		return s.BagOfWordsCells
	case "Fingerprint":
		return s.FingerprintCells
	}
	return s.RandomNumCells
}

// Fig2Result holds the motivation experiment: the six baseline variants
// on RandomNum at load factor 0.5 (Figure 2a/2b), plus the headline
// ratios the paper quotes in §2.3 (1.95× latency, 2.16× L3 misses for
// insert+delete under logging).
type Fig2Result struct {
	Rows            []LatencyResult
	LatencyRatio    float64 // logged / unlogged, averaged over insert+delete
	L3MissRatio     float64
	SchemesCompared int
}

// Fig2 runs the consistency-cost motivation experiment.
func Fig2(s Scale) Fig2Result {
	var out Fig2Result
	for _, k := range Fig2Schemes() {
		out.Rows = append(out.Rows, RunLatency(LatencyConfig{
			Build:      BuildConfig{Kind: k, TotalCells: s.RandomNumCells, Seed: uint64(s.Seed)},
			Trace:      trace.NewRandomNum(s.Seed),
			LoadFactor: 0.5,
			Ops:        s.Ops,
			Seed:       s.Seed,
		}))
	}
	// Ratios: pair (linear, linear-L), (pfht, pfht-L), (path, path-L).
	var latR, missR float64
	pairs := 0
	for i := 0; i+1 < len(out.Rows); i += 2 {
		plain, logged := out.Rows[i], out.Rows[i+1]
		pl := plain.Insert.AvgLatencyNs + plain.Delete.AvgLatencyNs
		ll := logged.Insert.AvgLatencyNs + logged.Delete.AvgLatencyNs
		pm := plain.Insert.AvgL3Misses + plain.Delete.AvgL3Misses
		lm := logged.Insert.AvgL3Misses + logged.Delete.AvgL3Misses
		if pl > 0 && pm > 0 {
			latR += ll / pl
			missR += lm / pm
			pairs++
		}
	}
	if pairs > 0 {
		out.LatencyRatio = latR / float64(pairs)
		out.L3MissRatio = missR / float64(pairs)
	}
	out.SchemesCompared = pairs
	return out
}

// RequestMatrix is the full Figure 5 + Figure 6 grid: every consistent
// scheme on every trace at both load factors. One RunLatency yields
// both the latency figures (Fig. 5) and the L3-miss figures (Fig. 6).
type RequestMatrix struct {
	Rows []LatencyResult
}

// Fig5and6 runs the latency / cache-efficiency grid.
func Fig5and6(s Scale) RequestMatrix {
	var m RequestMatrix
	for _, tr := range trace.All(s.Seed) {
		for _, lf := range []float64{0.5, 0.75} {
			for _, k := range Fig5Schemes() {
				m.Rows = append(m.Rows, RunLatency(LatencyConfig{
					Build:      BuildConfig{Kind: k, TotalCells: s.cellsFor(tr), Seed: uint64(s.Seed)},
					Trace:      tr,
					LoadFactor: lf,
					Ops:        s.Ops,
					Seed:       s.Seed,
				}))
			}
		}
	}
	return m
}

// Fig7 runs the space-utilisation comparison (PFHT, path, group on all
// three traces; linear probing is omitted like in the paper, because
// it fills to load factor 1).
func Fig7(s Scale) []SpaceUtilResult {
	var out []SpaceUtilResult
	for _, tr := range trace.All(s.Seed) {
		for _, k := range []Kind{PFHT, Path, Group} {
			out = append(out, RunSpaceUtil(BuildConfig{
				Kind:       k,
				TotalCells: s.cellsFor(tr),
				Seed:       uint64(s.Seed),
			}, tr))
		}
	}
	return out
}

// Fig8Row is one sweep point of Figure 8.
type Fig8Row struct {
	GroupSize   uint64
	Latency     LatencyResult
	Utilization SpaceUtilResult
}

// Fig8 sweeps the group size on RandomNum at load factor 0.5, measuring
// request latency (8a) and space utilisation (8b).
func Fig8(s Scale) []Fig8Row {
	var out []Fig8Row
	for _, gs := range s.GroupSizes {
		row := Fig8Row{GroupSize: gs}
		row.Latency = RunLatency(LatencyConfig{
			Build: BuildConfig{
				Kind: Group, TotalCells: s.RandomNumCells,
				GroupSize: gs, Seed: uint64(s.Seed),
			},
			Trace:      trace.NewRandomNum(s.Seed),
			LoadFactor: 0.5,
			Ops:        s.Ops,
			Seed:       s.Seed,
		})
		row.Utilization = RunSpaceUtil(BuildConfig{
			Kind: Group, TotalCells: s.RandomNumCells,
			GroupSize: gs, Seed: uint64(s.Seed),
		}, trace.NewRandomNum(s.Seed))
		out = append(out, row)
	}
	return out
}

// Table3 runs the recovery-time experiment across the scale's table
// sizes.
func Table3(s Scale) []RecoveryResult {
	var out []RecoveryResult
	for _, bytes := range s.RecoverySizes {
		out = append(out, RunRecovery(bytes, s.Seed))
	}
	return out
}
