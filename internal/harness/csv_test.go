package harness

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	recs, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestWriteLatencyCSV(t *testing.T) {
	var buf bytes.Buffer
	rows := []LatencyResult{{
		Scheme: "group", Trace: "RandomNum", LoadFactor: 0.5, Loaded: 42,
		Insert: OpCost{AvgLatencyNs: 1500.5, AvgL3Misses: 2.25, AvgFlushes: 3},
		Query:  OpCost{AvgLatencyNs: 90},
		Delete: OpCost{AvgLatencyNs: 1300, AvgFlushes: 3},
	}}
	if err := WriteLatencyCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 2 || len(recs[0]) != 12 {
		t.Fatalf("shape = %dx%d", len(recs), len(recs[0]))
	}
	if recs[1][0] != "RandomNum" || recs[1][2] != "group" || recs[1][3] != "1500.5" {
		t.Fatalf("row = %v", recs[1])
	}
}

func TestWriteSpaceUtilCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSpaceUtilCSV(&buf, []SpaceUtilResult{
		{Trace: "Fingerprint", Scheme: "path", Utilization: 0.938, Inserted: 10, Capacity: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if recs[1][2] != "0.938" || recs[1][4] != "11" {
		t.Fatalf("row = %v", recs[1])
	}
}

func TestWriteFig8CSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFig8CSV(&buf, []Fig8Row{{
		GroupSize:   256,
		Latency:     LatencyResult{Insert: OpCost{AvgLatencyNs: 1420}},
		Utilization: SpaceUtilResult{Utilization: 0.792},
	}})
	if err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if recs[1][0] != "256" || recs[1][4] != "0.792" {
		t.Fatalf("row = %v", recs[1])
	}
}

func TestWriteRecoveryCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteRecoveryCSV(&buf, []RecoveryResult{
		{TableBytes: 128 << 20, Cells: 5592404, RecoveryMs: 28.3, ExecMs: 5735.1, Percentage: 0.49},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if recs[1][0] != "134217728" || recs[1][2] != "28.3" {
		t.Fatalf("row = %v", recs[1])
	}
}

func TestWriteWearCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteWearCSV(&buf, []WearResult{
		{Scheme: "group", Ops: 400, MediaWritesPerOp: 3, AmplificationVsPayload: 3, MaxPerWord: 400, P99PerWord: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "group,400,3,3,400,2") {
		t.Fatalf("csv = %s", buf.String())
	}
}

func TestWriteYCSBCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteYCSBCSV(&buf, []YCSBResult{
		{Workload: "YCSB-D", Scheme: "group", AvgLatencyNs: 107, KopsPerSimSec: 9385},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if recs[1][0] != "YCSB-D" || recs[1][1] != "group" {
		t.Fatalf("row = %v", recs[1])
	}
}
