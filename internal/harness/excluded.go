package harness

import (
	"fmt"
	"io"

	"grouphash/internal/chained"
	"grouphash/internal/dchoice"
	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/native"
	"grouphash/internal/trace"
)

// The exclusion experiment measures why §4.1 leaves chained hashing and
// 2-choice hashing out of the paper's comparison: "chained hashing
// performs poorly under memory pressure due to frequent memory
// allocation and free calls, 2-choice hashing has too low space
// utilization ratio". Both schemes are fully implemented (internal/
// chained over a persistent allocator, internal/dchoice), so the
// rationale is a measured result.

// ExcludedResult is one scheme's row of the exclusion comparison.
type ExcludedResult struct {
	Scheme string
	// Utilization at first insertion failure.
	Utilization float64
	// InsertNs / QueryNs / DeleteNs: simulated per-op latency at load
	// factor 0.4 (low enough that every scheme can reach it).
	InsertNs float64
	QueryNs  float64
	DeleteNs float64
	// L3Misses per query — the pointer-chasing penalty.
	L3Misses float64
	// BytesPerItem is the persistent footprint divided by stored items
	// (chained pays for pointers and allocator metadata).
	BytesPerItem float64
}

// buildExcluded constructs one of the three compared schemes.
func buildExcluded(mem hashtab.Mem, scheme string, cells uint64, seed uint64) excludedTable {
	switch scheme {
	case "chained":
		// Same cell budget: buckets = cells/2, nodes = cells (so the
		// structural item bound matches the others' cell count).
		return chained.New(mem, chained.Options{Buckets: cells / 2, Nodes: cells, Seed: seed})
	case "2choice":
		return dchoice.New(mem, dchoice.Options{Cells: cells, Seed: seed})
	case "group":
		t := Build(mem, BuildConfig{Kind: Group, TotalCells: cells, KeyBytes: 8, Seed: seed})
		return t.(excludedTable)
	}
	panic("harness: unknown excluded scheme " + scheme)
}

// excludedTable is the common surface of the three compared schemes.
type excludedTable interface {
	Name() string
	Insert(k layout.Key, v uint64) error
	Lookup(k layout.Key) (uint64, bool)
	Delete(k layout.Key) bool
	Len() uint64
	Capacity() uint64
	LoadFactor() float64
}

// RunExcluded measures one scheme for the exclusion table.
func RunExcluded(scheme string, cells uint64, ops int, seed int64) ExcludedResult {
	// Utilisation probe on the fast native backend.
	nmem := native.New(cells * 64)
	ntab := buildExcluded(nmem, scheme, cells, uint64(seed))
	tr := trace.NewRandomNum(seed)
	var inserted uint64
	for {
		it := tr.Next()
		if ntab.Insert(it.Key, it.Value) != nil {
			break
		}
		inserted++
	}
	res := ExcludedResult{
		Scheme:      ntab.Name(),
		Utilization: float64(inserted) / float64(ntab.Capacity()),
	}

	// Latency probe on the simulator at a load factor all three reach.
	mem := memsim.New(memsim.Config{Size: cells*64 + (1 << 20), Seed: seed})
	tab := buildExcluded(mem, scheme, cells, uint64(seed))
	tr.Reset()
	var resident []layout.Key
	for tab.LoadFactor() < 0.4 {
		it := tr.Next()
		if tab.Insert(it.Key, it.Value) != nil {
			break
		}
		resident = append(resident, it.Key)
	}
	cost := func(fn func(i int)) (ns float64, misses float64) {
		before := mem.Counters()
		for i := 0; i < ops; i++ {
			fn(i)
		}
		d := mem.Counters().Sub(before)
		return d.ClockNs / float64(ops), float64(d.L3Misses) / float64(ops)
	}
	res.InsertNs, _ = cost(func(int) {
		it := tr.Next()
		tab.Insert(it.Key, it.Value)
	})
	res.QueryNs, res.L3Misses = cost(func(i int) {
		tab.Lookup(resident[(i*7919)%len(resident)])
	})
	res.DeleteNs, _ = cost(func(i int) {
		tab.Delete(resident[(i*104729)%len(resident)])
	})

	// Memory footprint per stored item.
	items := tab.Len()
	if items > 0 {
		var bytes uint64
		switch c := tab.(type) {
		case *chained.Table:
			bytes = c.FootprintBytes()
		case *dchoice.Table:
			bytes = tab.Capacity() * 16 // compact cells
		default:
			bytes = tab.Capacity() * 16
		}
		res.BytesPerItem = float64(bytes) / float64(items)
	}
	return res
}

// ExcludedComparison runs group vs the two excluded schemes.
func ExcludedComparison(s Scale) []ExcludedResult {
	var out []ExcludedResult
	for _, scheme := range []string{"group", "chained", "2choice"} {
		out = append(out, RunExcluded(scheme, s.RandomNumCells, s.Ops, s.Seed))
	}
	return out
}

// PrintExcluded renders the exclusion comparison.
func PrintExcluded(w io.Writer, rows []ExcludedResult) {
	fmt.Fprintln(w, "§4.1 exclusion rationale, measured (RandomNum; latency at lf 0.4,")
	fmt.Fprintln(w, "or at each scheme's fill limit if it cannot reach 0.4 — 2-choice cannot)")
	fmt.Fprintln(w, "")
	fmt.Fprintf(w, "  %-10s %12s %10s %10s %10s %12s %12s\n",
		"scheme", "utilisation", "insert ns", "query ns", "delete ns", "L3miss/query", "bytes/item")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %11.1f%% %10.0f %10.0f %10.0f %12.2f %12.1f\n",
			r.Scheme, r.Utilization*100, r.InsertNs, r.QueryNs, r.DeleteNs, r.L3Misses, r.BytesPerItem)
	}
	fmt.Fprintln(w, "\n  (the paper excludes chained hashing — allocator traffic and pointer")
	fmt.Fprintln(w, "   chasing — and 2-choice hashing — hopeless first-failure utilisation)")
}
