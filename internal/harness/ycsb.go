package harness

import (
	"fmt"
	"io"

	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/trace"
)

// YCSBResult summarises one scheme on one YCSB workload mix (extension
// experiment; the paper's phases are single-operation, YCSB interleaves
// them under skew).
type YCSBResult struct {
	Scheme   string
	Workload string
	Ops      int
	// AvgLatencyNs is the simulated latency per operation of the mix.
	AvgLatencyNs float64
	// KopsPerSimSec is simulated throughput in thousand ops per
	// simulated second.
	KopsPerSimSec float64
	// ReadLatencyNs / WriteLatencyNs split the mix by class (writes:
	// update, insert and the write half of RMW).
	ReadLatencyNs  float64
	WriteLatencyNs float64
	// Misses per op, mirroring the paper's cache-efficiency metric.
	AvgL3Misses float64
}

// RunYCSB loads the workload's record set into the scheme on the
// simulated machine, then drives ops steps of the mix.
func RunYCSB(kind Kind, workload byte, records uint64, ops int, seed int64) YCSBResult {
	// Size the table so the loaded records sit near load factor 0.5
	// with headroom for workload D's inserts.
	totalCells := uint64(1)
	for totalCells < records*2+uint64(ops) {
		totalCells <<= 1
	}
	cfg := BuildConfig{Kind: kind, TotalCells: totalCells, KeyBytes: 8, Seed: uint64(seed)}
	mem := memsim.New(memsim.Config{Size: RegionBytes(cfg), Seed: seed})
	tab := Build(mem, cfg)
	up, canUpdate := tab.(hashtab.Updater)
	if !canUpdate {
		panic(fmt.Sprintf("harness: %s does not support YCSB updates", tab.Name()))
	}

	y := trace.NewYCSB(workload, records, seed)
	for i := uint64(1); i <= records; i++ {
		if err := tab.Insert(key64(i), i); err != nil {
			break
		}
	}

	var readNs, writeNs float64
	var reads, writes int
	start := mem.Counters()
	last := start
	for i := 0; i < ops; i++ {
		step := y.Next()
		switch step.Op {
		case trace.YCSBRead:
			tab.Lookup(step.Item.Key)
		case trace.YCSBUpdate:
			up.Update(step.Item.Key, step.Item.Value)
		case trace.YCSBInsert:
			tab.Insert(step.Item.Key, step.Item.Value)
		case trace.YCSBRMW:
			v, _ := tab.Lookup(step.Item.Key)
			up.Update(step.Item.Key, v+step.Item.Value)
		}
		now := mem.Counters()
		d := now.ClockNs - last.ClockNs
		if step.Op == trace.YCSBRead {
			readNs += d
			reads++
		} else {
			writeNs += d
			writes++
		}
		last = now
	}
	total := mem.Counters().Sub(start)
	res := YCSBResult{
		Scheme:       tab.Name(),
		Workload:     y.Name(),
		Ops:          ops,
		AvgLatencyNs: total.ClockNs / float64(ops),
		AvgL3Misses:  float64(total.L3Misses) / float64(ops),
	}
	if total.ClockNs > 0 {
		res.KopsPerSimSec = float64(ops) / total.ClockNs * 1e9 / 1e3
	}
	if reads > 0 {
		res.ReadLatencyNs = readNs / float64(reads)
	}
	if writes > 0 {
		res.WriteLatencyNs = writeNs / float64(writes)
	}
	return res
}

// key64 builds the dense one-word record keys YCSB loads.
func key64(id uint64) layout.Key { return layout.Key{Lo: id} }

// YCSBComparison runs workloads A, B, C, D, F for the consistent
// schemes.
func YCSBComparison(s Scale) []YCSBResult {
	records := s.RandomNumCells / 4 // lf ~0.5 of the derived table
	var out []YCSBResult
	for _, w := range []byte{'a', 'b', 'c', 'd', 'f'} {
		for _, k := range Fig5Schemes() {
			out = append(out, RunYCSB(k, w, records, s.Ops*5, s.Seed))
		}
	}
	return out
}

// PrintYCSB renders the YCSB comparison.
func PrintYCSB(w io.Writer, rows []YCSBResult) {
	fmt.Fprintln(w, "YCSB workload mixes (extension; simulated, zipfian skew)")
	fmt.Fprintln(w, "")
	fmt.Fprintf(w, "  %-8s %-10s %12s %14s %12s %12s %10s\n",
		"workload", "scheme", "avg ns/op", "kops/sim-sec", "read ns", "write ns", "L3miss/op")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s %-10s %12.0f %14.0f %12.0f %12.0f %10.2f\n",
			r.Workload, r.Scheme, r.AvgLatencyNs, r.KopsPerSimSec,
			r.ReadLatencyNs, r.WriteLatencyNs, r.AvgL3Misses)
	}
	fmt.Fprintln(w, "\n  (write latency is where the consistency protocols separate;")
	fmt.Fprintln(w, "   YCSB-C is read-only, so all consistent schemes converge there)")
}
