package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/trace"
)

// The load curve is an extension analysis the paper's fixed-load-factor
// snapshots (0.5 and 0.75) bracket: per-operation cost as a continuous
// function of fill level, which shows where each scheme's collision
// mechanism starts to bite (group hashing's group scans, PFHT's stash,
// linear probing's clusters).

// CurvePoint is one fill-level sample of the load curve.
type CurvePoint struct {
	LoadFactor     float64
	InsertNs       float64
	QueryNs        float64
	QueryP99Ns     float64
	L3MissPerQuery float64
}

// CurveResult is a scheme's full load curve.
type CurveResult struct {
	Scheme string
	Points []CurvePoint
}

// RunLoadCurve fills the scheme from the RandomNum trace, pausing at
// each load-factor checkpoint to measure opsPerPoint inserts and
// queries.
func RunLoadCurve(kind Kind, cells uint64, checkpoints []float64, opsPerPoint int, seed int64) CurveResult {
	cfg := BuildConfig{Kind: kind, TotalCells: cells, KeyBytes: 8, Seed: uint64(seed)}
	mem := memsim.New(memsim.Config{Size: RegionBytes(cfg), Seed: seed})
	tab := Build(mem, cfg)
	tr := trace.NewRandomNum(seed)

	var resident []layout.Key
	res := CurveResult{Scheme: tab.Name()}
	for _, target := range checkpoints {
		full := false
		for tab.LoadFactor() < target {
			it := tr.Next()
			if tab.Insert(it.Key, it.Value) != nil {
				full = true
				break
			}
			resident = append(resident, it.Key)
		}
		if full {
			break
		}
		pt := CurvePoint{LoadFactor: target}
		ins := phase(mem, opsPerPoint, func(int) bool {
			it := tr.Next()
			if tab.Insert(it.Key, it.Value) != nil {
				return false
			}
			resident = append(resident, it.Key)
			return true
		})
		pt.InsertNs = ins.AvgLatencyNs
		q := phase(mem, opsPerPoint, func(i int) bool {
			_, ok := tab.Lookup(resident[(i*7919)%len(resident)])
			return ok
		})
		pt.QueryNs = q.AvgLatencyNs
		pt.QueryP99Ns = q.P99Ns
		pt.L3MissPerQuery = q.AvgL3Misses
		res.Points = append(res.Points, pt)
	}
	return res
}

// DefaultCheckpoints spans the fill range the schemes share.
func DefaultCheckpoints() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.75}
}

// LoadCurves runs the curve for the four consistent schemes.
func LoadCurves(s Scale) []CurveResult {
	var out []CurveResult
	for _, k := range Fig5Schemes() {
		out = append(out, RunLoadCurve(k, s.RandomNumCells, DefaultCheckpoints(), s.Ops, s.Seed))
	}
	return out
}

// PrintCurves renders the load curves side by side.
func PrintCurves(w io.Writer, rows []CurveResult) {
	fmt.Fprintln(w, "Load curve (extension): per-op cost vs fill level (RandomNum)")
	for _, r := range rows {
		fmt.Fprintf(w, "\n  %s\n", r.Scheme)
		fmt.Fprintf(w, "  %6s %12s %12s %12s %14s\n", "lf", "insert ns", "query ns", "query p99", "L3miss/query")
		for _, p := range r.Points {
			fmt.Fprintf(w, "  %6.2f %12.0f %12.0f %12.0f %14.2f\n",
				p.LoadFactor, p.InsertNs, p.QueryNs, p.QueryP99Ns, p.L3MissPerQuery)
		}
	}
	fmt.Fprintln(w, "")
}

// WriteCurveCSV emits the curves as long-format rows.
func WriteCurveCSV(out io.Writer, rows []CurveResult) error {
	w := csv.NewWriter(out)
	recs := [][]string{{"scheme", "load_factor", "insert_ns", "query_ns", "query_p99_ns", "l3miss_per_query"}}
	for _, r := range rows {
		for _, p := range r.Points {
			recs = append(recs, []string{
				r.Scheme,
				strconv.FormatFloat(p.LoadFactor, 'f', -1, 64),
				strconv.FormatFloat(p.InsertNs, 'f', -1, 64),
				strconv.FormatFloat(p.QueryNs, 'f', -1, 64),
				strconv.FormatFloat(p.QueryP99Ns, 'f', -1, 64),
				strconv.FormatFloat(p.L3MissPerQuery, 'f', -1, 64),
			})
		}
	}
	return writeAll(w, recs)
}
