package harness

import (
	"fmt"
	"io"
	"sort"

	"grouphash/internal/plot"
)

// Bar-chart renderings of the figure data, echoing the paper's plots in
// a terminal (ghbench -plot).

// PlotFig5 renders insert and delete latency bars per (trace, load
// factor) block — the paper's money charts.
func PlotFig5(w io.Writer, m RequestMatrix) {
	fmt.Fprintln(w, "Figure 5 as bars — request latency (ns, simulated)")
	fmt.Fprintln(w, "")
	plotMatrix(w, m, func(r LatencyResult) []plot.Bar {
		return []plot.Bar{
			{Label: r.Scheme + " insert", Value: r.Insert.AvgLatencyNs},
			{Label: r.Scheme + " delete", Value: r.Delete.AvgLatencyNs},
		}
	}, "%.0f")
}

// PlotFig6 renders L3-miss bars per block.
func PlotFig6(w io.Writer, m RequestMatrix) {
	fmt.Fprintln(w, "Figure 6 as bars — L3 misses per request (simulated)")
	fmt.Fprintln(w, "")
	plotMatrix(w, m, func(r LatencyResult) []plot.Bar {
		return []plot.Bar{
			{Label: r.Scheme + " insert", Value: r.Insert.AvgL3Misses},
			{Label: r.Scheme + " delete", Value: r.Delete.AvgL3Misses},
		}
	}, "%.2f")
}

func plotMatrix(w io.Writer, m RequestMatrix, bars func(LatencyResult) []plot.Bar, format string) {
	type block struct {
		trace string
		lf    float64
	}
	grouped := map[block][]LatencyResult{}
	var order []block
	for _, r := range m.Rows {
		b := block{r.Trace, r.LoadFactor}
		if _, ok := grouped[b]; !ok {
			order = append(order, b)
		}
		grouped[b] = append(grouped[b], r)
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].trace != order[j].trace {
			return order[i].trace < order[j].trace
		}
		return order[i].lf < order[j].lf
	})
	var charts []plot.Chart
	for _, b := range order {
		c := plot.Chart{Title: fmt.Sprintf("%s, load factor %.2f", b.trace, b.lf)}
		for _, r := range grouped[b] {
			c.Bars = append(c.Bars, bars(r)...)
		}
		charts = append(charts, c)
	}
	plot.Grouped(w, charts, 44, format)
	fmt.Fprintln(w, "")
}

// PlotFig7 renders space-utilisation bars per trace.
func PlotFig7(w io.Writer, rows []SpaceUtilResult) {
	fmt.Fprintln(w, "Figure 7 as bars — space utilisation (%)")
	fmt.Fprintln(w, "")
	byTrace := map[string][]SpaceUtilResult{}
	var order []string
	for _, r := range rows {
		if _, ok := byTrace[r.Trace]; !ok {
			order = append(order, r.Trace)
		}
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
	}
	var charts []plot.Chart
	for _, tr := range order {
		c := plot.Chart{Title: tr}
		for _, r := range byTrace[tr] {
			c.Bars = append(c.Bars, plot.Bar{Label: r.Scheme, Value: r.Utilization * 100})
		}
		charts = append(charts, c)
	}
	plot.Grouped(w, charts, 44, "%.1f%%")
	fmt.Fprintln(w, "")
}

// PlotFig8 renders the group-size sweep as two bar groups.
func PlotFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintln(w, "Figure 8 as bars — group size sweep (RandomNum, lf 0.5)")
	fmt.Fprintln(w, "")
	lat := plot.Chart{Title: "insert latency (ns)"}
	util := plot.Chart{Title: "space utilisation (%)", Format: "%.1f%%"}
	for _, r := range rows {
		label := fmt.Sprintf("group %d", r.GroupSize)
		lat.Bars = append(lat.Bars, plot.Bar{Label: label, Value: r.Latency.Insert.AvgLatencyNs})
		util.Bars = append(util.Bars, plot.Bar{Label: label, Value: r.Utilization.Utilization * 100})
	}
	lat.Width, util.Width = 44, 44
	lat.Format = "%.0f"
	lat.Render(w)
	fmt.Fprintln(w, "")
	util.Render(w)
	fmt.Fprintln(w, "")
}
