package harness

import (
	"grouphash/internal/native"
	"grouphash/internal/trace"
)

// SpaceUtilResult is one bar of Figure 7: the load factor at which the
// first insertion fails.
type SpaceUtilResult struct {
	Scheme      string
	Trace       string
	Utilization float64
	Inserted    uint64
	Capacity    uint64
}

// RunSpaceUtil inserts trace items until the scheme rejects one and
// reports the load factor at that point — the paper's definition of
// space utilisation ("the load factor when an item fails to insert
// into the hash table").
//
// Utilisation is a structural property, independent of timing, so this
// runs on the fast native backend rather than the simulator.
func RunSpaceUtil(build BuildConfig, tr trace.Trace) SpaceUtilResult {
	build.KeyBytes = tr.KeyBytes()
	mem := native.New(RegionBytes(build))
	tab := Build(mem, build)
	tr.Reset()
	var inserted uint64
	for {
		it := tr.Next()
		if err := tab.Insert(it.Key, it.Value); err != nil {
			break
		}
		inserted++
	}
	return SpaceUtilResult{
		Scheme:      tab.Name(),
		Trace:       tr.Name(),
		Utilization: float64(inserted) / float64(tab.Capacity()),
		Inserted:    inserted,
		Capacity:    tab.Capacity(),
	}
}
