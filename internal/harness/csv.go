package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV writers: each figure's data as machine-readable series, so the
// plots can be regenerated with any charting tool. One file per
// figure; columns are stable and documented in the header row.

func writeAll(w *csv.Writer, rows [][]string) error {
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

// WriteLatencyCSV emits the Fig. 2/5/6 style rows: one line per
// (trace, load factor, scheme) with latency and miss metrics per op.
func WriteLatencyCSV(out io.Writer, rows []LatencyResult) error {
	w := csv.NewWriter(out)
	recs := [][]string{{
		"trace", "load_factor", "scheme",
		"insert_ns", "query_ns", "delete_ns",
		"insert_l3miss", "query_l3miss", "delete_l3miss",
		"insert_flushes", "delete_flushes", "loaded_items",
	}}
	for _, r := range rows {
		recs = append(recs, []string{
			r.Trace, f(r.LoadFactor), r.Scheme,
			f(r.Insert.AvgLatencyNs), f(r.Query.AvgLatencyNs), f(r.Delete.AvgLatencyNs),
			f(r.Insert.AvgL3Misses), f(r.Query.AvgL3Misses), f(r.Delete.AvgL3Misses),
			f(r.Insert.AvgFlushes), f(r.Delete.AvgFlushes),
			strconv.FormatUint(r.Loaded, 10),
		})
	}
	return writeAll(w, recs)
}

// WriteSpaceUtilCSV emits Fig. 7 rows.
func WriteSpaceUtilCSV(out io.Writer, rows []SpaceUtilResult) error {
	w := csv.NewWriter(out)
	recs := [][]string{{"trace", "scheme", "utilization", "inserted", "capacity"}}
	for _, r := range rows {
		recs = append(recs, []string{
			r.Trace, r.Scheme, f(r.Utilization),
			strconv.FormatUint(r.Inserted, 10), strconv.FormatUint(r.Capacity, 10),
		})
	}
	return writeAll(w, recs)
}

// WriteFig8CSV emits the group-size sweep.
func WriteFig8CSV(out io.Writer, rows []Fig8Row) error {
	w := csv.NewWriter(out)
	recs := [][]string{{"group_size", "insert_ns", "query_ns", "delete_ns", "utilization"}}
	for _, r := range rows {
		recs = append(recs, []string{
			strconv.FormatUint(r.GroupSize, 10),
			f(r.Latency.Insert.AvgLatencyNs), f(r.Latency.Query.AvgLatencyNs), f(r.Latency.Delete.AvgLatencyNs),
			f(r.Utilization.Utilization),
		})
	}
	return writeAll(w, recs)
}

// WriteRecoveryCSV emits Table 3 rows.
func WriteRecoveryCSV(out io.Writer, rows []RecoveryResult) error {
	w := csv.NewWriter(out)
	recs := [][]string{{"table_bytes", "cells", "recovery_ms", "execution_ms", "percentage"}}
	for _, r := range rows {
		recs = append(recs, []string{
			strconv.FormatUint(r.TableBytes, 10), strconv.FormatUint(r.Cells, 10),
			f(r.RecoveryMs), f(r.ExecMs), f(r.Percentage),
		})
	}
	return writeAll(w, recs)
}

// WriteWearCSV emits the wear-extension rows.
func WriteWearCSV(out io.Writer, rows []WearResult) error {
	w := csv.NewWriter(out)
	recs := [][]string{{"scheme", "ops", "media_writes_per_op", "amplification", "max_per_word", "p99_per_word"}}
	for _, r := range rows {
		recs = append(recs, []string{
			r.Scheme, strconv.FormatUint(r.Ops, 10),
			f(r.MediaWritesPerOp), f(r.AmplificationVsPayload),
			fmt.Sprint(r.MaxPerWord), fmt.Sprint(r.P99PerWord),
		})
	}
	return writeAll(w, recs)
}

// WriteExcludedCSV emits the §4.1 exclusion-rationale rows.
func WriteExcludedCSV(out io.Writer, rows []ExcludedResult) error {
	w := csv.NewWriter(out)
	recs := [][]string{{"scheme", "utilization", "insert_ns", "query_ns", "delete_ns", "l3miss_per_query", "bytes_per_item"}}
	for _, r := range rows {
		recs = append(recs, []string{
			r.Scheme, f(r.Utilization), f(r.InsertNs), f(r.QueryNs), f(r.DeleteNs),
			f(r.L3Misses), f(r.BytesPerItem),
		})
	}
	return writeAll(w, recs)
}

// WriteYCSBCSV emits the YCSB-extension rows.
func WriteYCSBCSV(out io.Writer, rows []YCSBResult) error {
	w := csv.NewWriter(out)
	recs := [][]string{{"workload", "scheme", "avg_ns", "kops_per_sim_sec", "read_ns", "write_ns", "l3miss_per_op"}}
	for _, r := range rows {
		recs = append(recs, []string{
			r.Workload, r.Scheme, f(r.AvgLatencyNs), f(r.KopsPerSimSec),
			f(r.ReadLatencyNs), f(r.WriteLatencyNs), f(r.AvgL3Misses),
		})
	}
	return writeAll(w, recs)
}
