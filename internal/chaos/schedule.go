// Package chaos composes every fault injector the repository has grown
// — simulated crashes (server.Abort), torn oplog tails, sticky fsync
// faults, graceful drains, on-demand snapshot/reload cycles and forced
// online expansions — into randomized but fully seeded schedules run
// against a live serving stack, with a client-side map oracle
// (the crash-torture model) auditing exactly-once semantics after
// every event. A schedule is reproducible from its (engine, seed)
// pair alone, so any failure prints a one-line reproduction.
//
// The package runs in-process (so -race watches every interleaving);
// cmd/ghchaos wraps the same schedule generator around real processes
// and SIGKILL.
package chaos

import (
	"fmt"
	"math/rand"
	"time"
)

// Kind is the class of one chaos event: how a serving generation is
// perturbed mid-load and how it ends.
type Kind int

// The event classes. Every generation boots a recovered server, loads
// it, applies the event, and ends with the server down; recovery +
// model audit precede the next event.
const (
	// KindKill aborts the server mid-load (in-process kill -9); the
	// oplog keeps whatever the crash left.
	KindKill Kind = iota
	// KindKillTear aborts mid-load AND tears the active oplog segment
	// the way a power failure would: the fsynced prefix survives, a
	// random amount of the unsynced tail is lost, sometimes trailing
	// garbage appears.
	KindKillTear
	// KindDrain shuts down gracefully mid-load: buffered writes are
	// refused with StatusDraining, a final snapshot is cut, the oplog
	// is truncated — the acked/refused straddle is the point.
	KindDrain
	// KindFsyncFault makes every oplog fsync fail (sticky media
	// error): no affected write may be acked, and the server must
	// self-drain rather than serve as a zombie.
	KindFsyncFault
	// KindSnapshot cuts an on-demand image under full load, then
	// kills the server — recovery starts from the fresh image plus
	// the log suffix behind it.
	KindSnapshot
	// KindExpand floods inserts until the engine completes an online
	// expansion under load (the flagship's stop-less growth), then
	// kills the server; fixed-capacity engines get the same churn
	// burst without the expansion wait.
	KindExpand
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindKill:
		return "kill"
	case KindKillTear:
		return "kill+tear"
	case KindDrain:
		return "drain"
	case KindFsyncFault:
		return "fsync-fault"
	case KindSnapshot:
		return "snapshot"
	case KindExpand:
		return "expand"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled perturbation.
type Event struct {
	// Kind is the perturbation class.
	Kind Kind
	// Delay is how long the generation serves load before the event
	// triggers.
	Delay time.Duration
}

// String renders the event compactly ("kill@12ms").
func (e Event) String() string { return fmt.Sprintf("%s@%s", e.Kind, e.Delay) }

// NewSchedule derives n events from seed. The mix is weighted toward
// crash classes (the claims under audit are crash claims) but every
// class appears with meaningful probability, and trigger delays are
// scattered so events land at different phases of a generation's
// load. Same (seed, n) → identical schedule.
func NewSchedule(seed int64, n int) []Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]Event, n)
	for i := range events {
		var k Kind
		switch p := rng.Intn(100); {
		case p < 22:
			k = KindKill
		case p < 44:
			k = KindKillTear
		case p < 58:
			k = KindDrain
		case p < 72:
			k = KindFsyncFault
		case p < 86:
			k = KindSnapshot
		default:
			k = KindExpand
		}
		events[i] = Event{
			Kind:  k,
			Delay: time.Duration(1+rng.Intn(20)) * time.Millisecond,
		}
	}
	return events
}
