package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"grouphash/internal/client"
	"grouphash/internal/engine"
	"grouphash/internal/oplog"
	"grouphash/internal/server"
)

// Config parameterises one chaos schedule run.
type Config struct {
	// Engine is the engine spec name ("grouphash", "pfht-l", ...).
	Engine string
	// Capacity is the engine's target capacity. Give the flagship a
	// small one so the insert load forces real online expansions.
	Capacity uint64
	// Seed derives the schedule and every random choice in the run.
	Seed int64
	// Events is the schedule (NewSchedule(Seed, n) for the canonical
	// derivation).
	Events []Event
	// Dir is the scratch directory for the image and oplog segments.
	Dir string
	// Workers is the concurrent load-worker count (default 3).
	Workers int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// Run executes the schedule: for each event it recovers the engine
// from disk (image + oplog replay), audits the map oracle against the
// recovered state — zero lost acked writes, zero phantom keys, an
// exact item count, structural consistency — then boots a server over
// real TCP, hammers it with modelled load, applies the event, and
// tears the generation down for the next recovery. A final recovery +
// audit closes the run.
//
// Run installs the package-global oplog fsync hook for KindFsyncFault
// events; do not run two schedules concurrently in one process.
func Run(cfg Config) error {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if len(cfg.Events) == 0 {
		return errors.New("chaos: empty schedule")
	}
	spec := engine.Spec{Name: cfg.Engine, Capacity: cfg.Capacity}
	if _, err := engine.New(spec); err != nil {
		return err
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	img := filepath.Join(cfg.Dir, "store.pmfs")
	base := filepath.Join(cfg.Dir, "oplog")
	lcfg := oplog.Config{SyncEvery: 100 * time.Microsecond, SyncBytes: 64 << 10}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5ca1ab1e))

	// One sticky-fault hook for the whole run, armed per event.
	var fsyncFault atomic.Bool
	faultErr := errors.New("chaos: injected fsync fault")
	oplog.SetTestFsyncErr(func() error {
		if fsyncFault.Load() {
			return faultErr
		}
		return nil
	})
	defer oplog.SetTestFsyncErr(nil)

	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		workers[i] = newWorker(i)
	}
	filler := newWorker(cfg.Workers + 100) // expansion flooder, own key range
	filler.insertOnly = true
	model := append(append([]*worker{}, workers...), filler)

	for gen, ev := range cfg.Events {
		eng, lg, replayed, err := recoverEngine(spec, img, base, lcfg)
		if err != nil {
			return fmt.Errorf("gen %d: recovery: %w", gen, err)
		}
		prev := "boot"
		if gen > 0 {
			prev = cfg.Events[gen-1].Kind.String()
		}
		// Replay can leave an online expansion still migrating in the
		// background (its triggering insert does not wait for it), and
		// pre-flip the routed view holds fresh inserts the root view
		// does not — an honest in-memory transient that the offline
		// audit below must not read mid-flight. An empty Quiesce is the
		// engine-agnostic "wait until nothing is moving".
		eng.Quiesce(func() {})
		if err := verify(eng, model, gen, prev); err != nil {
			return err
		}
		logf("chaos: gen %d verified (items=%d, replayed=%d) → %s", gen, eng.Len(), replayed, ev)

		if err := serveGeneration(cfg, eng, lg, img, ev, workers, filler, rng, &fsyncFault, logf); err != nil {
			return fmt.Errorf("gen %d (%s): %w", gen, ev, err)
		}
	}

	eng, lg, _, err := recoverEngine(spec, img, base, lcfg)
	if err != nil {
		return fmt.Errorf("final recovery: %w", err)
	}
	defer lg.Abort()
	last := cfg.Events[len(cfg.Events)-1].Kind.String()
	eng.Quiesce(func() {}) // same expansion settling as the per-event audit
	if err := verify(eng, model, len(cfg.Events), last); err != nil {
		return err
	}
	logf("chaos: final audit clean (%d items after %d events)", eng.Len(), len(cfg.Events))
	return nil
}

// serveGeneration boots a server on the recovered engine, loads it,
// applies one event and leaves the serving stack fully torn down (the
// oplog either closed by a drain or abandoned crash-style).
func serveGeneration(cfg Config, eng engine.Engine, lg *oplog.Log, img string, ev Event,
	workers []*worker, filler *worker, rng *rand.Rand, fsyncFault *atomic.Bool,
	logf func(string, ...any)) error {

	srv, err := server.New(server.Config{Engine: eng, Oplog: lg, SnapshotPath: img, Logf: logf})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	load := append([]*worker{}, workers...)
	if ev.Kind == KindExpand {
		load = append(load, filler)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var werrMu sync.Mutex
	var werr error
	for _, w := range load {
		maxBatches := 120
		if w.insertOnly {
			maxBatches = 600
		}
		wg.Add(1)
		go func(w *worker, maxBatches int) {
			defer wg.Done()
			c, err := client.Dial(addr, time.Second)
			if err != nil {
				return // the event beat the dial; no ops, no model impact
			}
			defer c.Close()
			if err := w.run(c, stop, maxBatches); err != nil {
				werrMu.Lock()
				if werr == nil {
					werr = err
				}
				werrMu.Unlock()
			}
		}(w, maxBatches)
	}

	time.Sleep(ev.Delay)
	switch ev.Kind {
	case KindKill:
		srv.Abort()
		<-serveDone
	case KindKillTear:
		srv.Abort()
		<-serveDone
	case KindDrain:
		if err := srv.Drain(); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		<-serveDone
	case KindSnapshot:
		if err := srv.SnapshotNow(); err != nil {
			return fmt.Errorf("on-demand snapshot: %w", err)
		}
		time.Sleep(2 * time.Millisecond) // load keeps running past the cut
		srv.Abort()
		<-serveDone
	case KindFsyncFault:
		fsyncFault.Store(true)
		// The next group commit fails; the server must refuse the
		// affected acks and self-drain (closing the oplog). If the
		// load already dried up (no appends → no fsync → no trigger),
		// fall back to an abort so the run never wedges.
		select {
		case <-serveDone:
		case <-time.After(5 * time.Second):
			srv.Abort()
			<-serveDone
		}
		fsyncFault.Store(false)
	case KindExpand:
		before := eng.Expansions()
		deadline := time.Now().Add(500 * time.Millisecond)
		for eng.Expansions() == before && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if eng.Expansions() > before {
			logf("chaos: expansion %d completed under load", eng.Expansions())
		}
		srv.Abort()
		<-serveDone
	}
	close(stop)
	wg.Wait()

	if ev.Kind == KindKillTear {
		// The abort left the oplog exactly as the crash found it; now
		// take the power failure's cut of the active segment.
		if err := tearTail(lg, rng); err != nil {
			return err
		}
	} else {
		// Crash-style abandon; a no-op where the drain already closed
		// the log (Abort and Close share the closed guard).
		lg.Abort()
	}
	werrMu.Lock()
	defer werrMu.Unlock()
	return werr
}

// recoverEngine is process-restart recovery through the engine seam:
// load the newest image if one exists (else a fresh engine), replay
// the oplog suffix past the image's mark, and continue the log at the
// next LSN.
func recoverEngine(spec engine.Spec, img, base string, lcfg oplog.Config) (engine.Engine, *oplog.Log, int, error) {
	var eng engine.Engine
	var mark uint64
	if _, err := os.Stat(img); err == nil {
		eng, mark, err = engine.Load(spec, img)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("loading image: %w", err)
		}
	} else {
		eng, err = engine.New(spec)
		if err != nil {
			return nil, nil, 0, err
		}
	}
	applied, next, err := eng.ReplayOplog(base, mark)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("replay: %w", err)
	}
	lg, err := oplog.OpenConfig(base, next, lcfg)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("reopening oplog: %w", err)
	}
	return eng, lg, applied, nil
}

// tearTail abandons the log the way a power failure would: the active
// segment keeps its fsynced prefix, loses a random amount of its
// unsynced tail, and sometimes gains trailing garbage.
func tearTail(lg *oplog.Log, rng *rand.Rand) error {
	synced, written := lg.SyncedSize(), lg.WrittenSize()
	path := lg.ActivePath()
	lg.Abort()
	keep := synced
	if written > synced {
		keep = synced + rng.Int63n(written-synced+1)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(keep); err != nil {
		return err
	}
	if rng.Intn(2) == 0 {
		garbage := make([]byte, 1+rng.Intn(64))
		rng.Read(garbage)
		if _, err := f.WriteAt(garbage, keep); err != nil {
			return err
		}
	}
	return nil
}
