package chaos

import (
	"fmt"

	"grouphash/internal/client"
	"grouphash/internal/engine"
	"grouphash/internal/layout"
	"grouphash/internal/wire"
)

// The client-side map oracle, shared with the crash-torture suite's
// model: every key a worker ever touched is in one of four states, and
// a batch that dies unacked taints its ops into the two-outcome states
// until the next recovery observes which outcome survived.
const (
	ackedPresent = iota // server said OK; must be present with the value
	ackedAbsent         // deleted OK, refused, or observed lost while unacked
	taintInsert         // insert's batch died unacked: absent, or present once
	taintDelete         // delete's batch died unacked: old value, or absent
)

type kstate struct {
	val   uint64
	state int
}

// worker owns a disjoint key range and mirrors, on the client side,
// what the server has promised about every key it touched. It survives
// across generations; only its connection dies.
type worker struct {
	id   int
	base uint64 // key-range base; base itself is the put-overwrite slot

	seq    uint64 // next insert suffix
	delSeq uint64 // next delete suffix (always trails seq)
	opn    uint64 // monotone op counter; doubles as the slot value
	keys   map[uint64]*kstate

	slotAcked uint64
	slotHas   bool
	slotTaint bool
	slotCands []uint64

	// insertOnly makes the worker a pure-insert flooder (the
	// expansion filler).
	insertOnly bool
}

func newWorker(id int) *worker {
	return &worker{
		id:     id,
		base:   uint64(id+1) << 40,
		seq:    1,
		delSeq: 1,
		keys:   make(map[uint64]*kstate),
	}
}

type planOp struct {
	kind byte // 'i' insert, 'd' delete, 'p' put-overwrite
	key  uint64
	val  uint64
}

// run hammers batches until the connection dies under it (the event),
// the server starts refusing (drain), stop is closed, or the batch cap
// is reached. Every third burst travels as an explicit OpBatch frame
// so the frame path sees the same adversity as the pipelined path.
// Responses update the model; a transport error yields no responses,
// so every op of that burst becomes tainted.
func (w *worker) run(c *client.Client, stop <-chan struct{}, maxBatches int) error {
	const batch = 16
	for b := 0; b < maxBatches; b++ {
		select {
		case <-stop:
			return nil
		default:
		}
		plan := make([]planOp, 0, batch)
		reqs := make([]wire.Request, 0, batch)
		for j := 0; j < batch; j++ {
			w.opn++
			if !w.insertOnly {
				if w.opn%5 == 0 {
					plan = append(plan, planOp{'p', w.base, w.opn})
					reqs = append(reqs, wire.Request{Op: wire.OpPut, Key: layout.Key{Lo: w.base}, Value: w.opn})
					continue
				}
				if w.opn%7 == 0 {
					if ks, ok := w.keys[w.base+w.delSeq]; ok {
						k := w.base + w.delSeq
						w.delSeq++
						plan = append(plan, planOp{'d', k, ks.val})
						reqs = append(reqs, wire.Request{Op: wire.OpDelete, Key: layout.Key{Lo: k}})
						continue
					}
				}
			}
			k := w.base + w.seq
			w.seq++
			v := k ^ 0x5aa5
			plan = append(plan, planOp{'i', k, v})
			reqs = append(reqs, wire.Request{Op: wire.OpInsert, Key: layout.Key{Lo: k}, Value: v})
		}
		var resps []wire.Response
		var err error
		if b%3 == 2 {
			resps, err = c.DoBatch(reqs)
		} else {
			resps, err = c.Do(reqs)
		}
		if err != nil {
			w.taint(plan)
			return nil
		}
		drained := false
		for i, r := range resps {
			op := plan[i]
			switch op.kind {
			case 'i':
				switch r.Status {
				case wire.StatusOK:
					w.keys[op.key] = &kstate{op.val, ackedPresent}
				case wire.StatusDraining, wire.StatusFull:
					w.keys[op.key] = &kstate{op.val, ackedAbsent}
					drained = drained || r.Status == wire.StatusDraining
				default:
					return fmt.Errorf("worker %d: insert %#x: status %d", w.id, op.key, r.Status)
				}
			case 'd':
				prior := w.keys[op.key]
				switch r.Status {
				case wire.StatusOK:
					prior.state = ackedAbsent
				case wire.StatusNotFound:
					if prior.state == ackedPresent {
						return fmt.Errorf("worker %d: delete %#x: NotFound for an acked-present key", w.id, op.key)
					}
					prior.state = ackedAbsent
				case wire.StatusDraining:
					drained = true // refused: key keeps its prior state
				default:
					return fmt.Errorf("worker %d: delete %#x: status %d", w.id, op.key, r.Status)
				}
			case 'p':
				switch r.Status {
				case wire.StatusOK:
					w.slotAcked, w.slotHas = op.val, true
					w.slotTaint, w.slotCands = false, nil
				case wire.StatusDraining, wire.StatusFull:
					drained = drained || r.Status == wire.StatusDraining
					// refused: slot unchanged
				default:
					return fmt.Errorf("worker %d: put slot: status %d", w.id, r.Status)
				}
			}
		}
		if drained {
			return nil
		}
	}
	return nil
}

// taint records a burst whose acks never arrived: each op's outcome is
// now two-valued until the next recovery pins it.
func (w *worker) taint(plan []planOp) {
	for _, op := range plan {
		switch op.kind {
		case 'i':
			w.keys[op.key] = &kstate{op.val, taintInsert}
		case 'd':
			w.keys[op.key].state = taintDelete
		case 'p':
			w.slotTaint = true
			w.slotCands = append(w.slotCands, op.val)
		}
	}
}

// verify audits a freshly recovered engine against every worker's
// model: acked-present keys must hold their exact value, acked-absent
// keys must not resurrect, taints resolve to what survived (and feed
// the next generation's expectations), and the engine's Len must equal
// the distinct present keys — any double-applied replay shows up as an
// excess. CheckConsistency audits the structural invariants on top.
func verify(eng engine.Engine, ws []*worker, gen int, ev string) error {
	var expected uint64
	for _, w := range ws {
		for k, ks := range w.keys {
			v, ok := eng.Get(layout.Key{Lo: k})
			switch ks.state {
			case ackedPresent:
				if !ok || v != ks.val {
					return fmt.Errorf("gen %d (after %s): ACKED WRITE LOST: key %#x = (%d, %v), want (%d, true)", gen, ev, k, v, ok, ks.val)
				}
				expected++
			case ackedAbsent:
				if ok {
					return fmt.Errorf("gen %d (after %s): PHANTOM KEY: %#x was deleted/refused, resurrected with %d", gen, ev, k, v)
				}
			case taintInsert, taintDelete:
				if ok {
					if v != ks.val {
						return fmt.Errorf("gen %d (after %s): tainted key %#x has impossible value %d (want %d)", gen, ev, k, v, ks.val)
					}
					ks.state = ackedPresent
					expected++
				} else {
					ks.state = ackedAbsent
				}
			}
		}
		v, ok := eng.Get(layout.Key{Lo: w.base})
		switch {
		case w.slotTaint:
			if ok {
				allowed := w.slotHas && v == w.slotAcked
				for _, cand := range w.slotCands {
					allowed = allowed || v == cand
				}
				if !allowed {
					return fmt.Errorf("gen %d (after %s): slot %#x = %d, not among acked %d or in-flight %v", gen, ev, w.base, v, w.slotAcked, w.slotCands)
				}
				w.slotAcked, w.slotHas = v, true
				expected++
			} else if w.slotHas {
				return fmt.Errorf("gen %d (after %s): ACKED WRITE LOST: slot %#x (last acked %d) vanished", gen, ev, w.base, w.slotAcked)
			}
			w.slotTaint, w.slotCands = false, nil
		case w.slotHas:
			if !ok || v != w.slotAcked {
				return fmt.Errorf("gen %d (after %s): ACKED WRITE LOST: slot %#x = (%d, %v), want (%d, true)", gen, ev, w.base, v, ok, w.slotAcked)
			}
			expected++
		default:
			if ok {
				return fmt.Errorf("gen %d (after %s): PHANTOM KEY: slot %#x never acked yet present with %d", gen, ev, w.base, v)
			}
		}
	}
	if got := eng.Len(); got != expected {
		return fmt.Errorf("gen %d (after %s): Len = %d, want %d distinct present keys — replay applied something twice", gen, ev, got, expected)
	}
	if bad := eng.CheckConsistency(); len(bad) != 0 {
		return fmt.Errorf("gen %d (after %s): recovered engine inconsistent: %v", gen, ev, bad)
	}
	return nil
}
