package chaos

import (
	"fmt"
	"testing"
)

// TestChaosMatrix is the chaos gate (`make chaos-smoke`): 21 seeded
// schedules — the flagship plus the two logged comparison schemes,
// seven seeds each — of six randomized events apiece, every event
// followed by a full recovery and map-oracle audit (zero lost acked
// writes, zero phantom keys, exact item count, structural
// consistency). Schedules derive entirely from (engine, seed), so a
// failure prints the exact command that replays it.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is the long deterministic gate; skipped in -short")
	}
	engines := []struct {
		name     string
		capacity uint64
	}{
		// A small flagship capacity so the schedule's insert load
		// drives real online expansions mid-chaos; the fixed-capacity
		// logged adapters get room for the full schedule's churn.
		{"grouphash", 1 << 10},
		{"pfht-l", 1 << 16},
		{"linearprobe-l", 1 << 16},
	}
	const (
		seeds  = 7
		events = 6
	)
	for _, e := range engines {
		for seed := int64(1); seed <= seeds; seed++ {
			name := fmt.Sprintf("%s/seed=%d", e.name, seed)
			t.Run(name, func(t *testing.T) {
				sched := NewSchedule(seed, events)
				err := Run(Config{
					Engine:   e.name,
					Capacity: e.capacity,
					Seed:     seed,
					Events:   sched,
					Dir:      t.TempDir(),
					Logf:     t.Logf,
				})
				if err != nil {
					t.Fatalf("schedule %v failed: %v\nreproduce with:\n  go test -race -count=1 -run 'TestChaosMatrix/%s' ./internal/chaos",
						sched, err, name)
				}
			})
		}
	}
}

// TestScheduleDeterminism pins that a schedule derives from its seed
// alone — the property every reproduction command relies on.
func TestScheduleDeterminism(t *testing.T) {
	a := NewSchedule(99, 50)
	b := NewSchedule(99, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverged for the same seed: %v vs %v", i, a[i], b[i])
		}
	}
	c := NewSchedule(100, 50)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
	// Every kind appears somewhere across a modest seed range.
	seen := map[Kind]bool{}
	for seed := int64(1); seed <= 20; seed++ {
		for _, ev := range NewSchedule(seed, 6) {
			seen[ev.Kind] = true
		}
	}
	for k := KindKill; k <= KindExpand; k++ {
		if !seen[k] {
			t.Fatalf("kind %v never scheduled across 20 seeds", k)
		}
	}
}
