package oplog

import (
	"testing"

	"grouphash/internal/layout"
)

// TestAppendBatch pins the batch staging contract: one call stages N
// records under one buffer-lock acquisition, assigns strictly
// sequential LSNs starting at the returned first, interleaves correctly
// with single Appends, and replays in exactly append order.
func TestAppendBatch(t *testing.T) {
	b := base(t)
	l, err := Open(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.AppendBatch(nil); got != 0 {
		t.Fatalf("empty AppendBatch returned %d, want 0", got)
	}
	if got := l.Appends(); got != 0 {
		t.Fatalf("empty AppendBatch counted as an append (%d)", got)
	}

	if lsn := l.Append(OpPut, layout.Key{Lo: 1}, 10); lsn != 1 {
		t.Fatalf("single Append LSN %d, want 1", lsn)
	}
	recs := []Record{
		{Op: OpInsert, Key: layout.Key{Lo: 2}, Value: 20},
		{Op: OpPut, Key: layout.Key{Lo: 3}, Value: 30},
		{Op: OpDelete, Key: layout.Key{Lo: 4}},
	}
	first := l.AppendBatch(recs)
	if first != 2 {
		t.Fatalf("AppendBatch first LSN %d, want 2", first)
	}
	for i, r := range recs {
		if r.LSN != first+uint64(i) {
			t.Fatalf("recs[%d].LSN = %d, want %d", i, r.LSN, first+uint64(i))
		}
	}
	if lsn := l.Append(OpPut, layout.Key{Lo: 5}, 50); lsn != 5 {
		t.Fatalf("post-batch Append LSN %d, want 5", lsn)
	}
	if got := l.Appends(); got != 3 {
		t.Fatalf("Appends() = %d, want 3 (two singles + one batch)", got)
	}

	if err := l.Sync(5); err != nil {
		t.Fatal(err)
	}
	if l.DurableLSN() != 5 {
		t.Fatalf("durable %d after Sync(5)", l.DurableLSN())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	replayed, next := collect(t, b, 0)
	if len(replayed) != 5 || next != 6 {
		t.Fatalf("replayed %d records, next=%d", len(replayed), next)
	}
	wantOps := []Op{OpPut, OpInsert, OpPut, OpDelete, OpPut}
	wantLo := []uint64{1, 2, 3, 4, 5}
	for i, r := range replayed {
		if r.LSN != uint64(i+1) || r.Op != wantOps[i] || r.Key.Lo != wantLo[i] {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

// TestAppendBatchAdaptive checks a batch staged into an empty buffer
// opens a commit window (the kick fires) and WaitDurable releases every
// record of the batch.
func TestAppendBatchAdaptive(t *testing.T) {
	b := base(t)
	l, err := OpenConfig(b, 1, Config{SyncEvery: 100_000, SyncBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, 64)
	for i := range recs {
		recs[i] = Record{Op: OpPut, Key: layout.Key{Lo: uint64(i + 1)}, Value: uint64(i)}
	}
	first := l.AppendBatch(recs)
	if first != 1 {
		t.Fatalf("first LSN %d, want 1", first)
	}
	if err := l.WaitDurable(first + uint64(len(recs)) - 1); err != nil {
		t.Fatal(err)
	}
	if got := l.DurableLSN(); got < 64 {
		t.Fatalf("durable %d after WaitDurable(64)", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	replayed, _ := collect(t, b, 0)
	if len(replayed) != 64 {
		t.Fatalf("replayed %d records, want 64", len(replayed))
	}
}
