//go:build !linux

package oplog

import "os"

// datasync falls back to a full fsync on platforms without a distinct
// data-only sync syscall exposed through the stdlib.
func datasync(f *os.File) error { return f.Sync() }
