//go:build linux

package oplog

import (
	"os"
	"syscall"
)

// datasync flushes f's written data without forcing a metadata-only
// journal commit — fdatasync(2). Safe for the record-flush path only
// because preallocated segments never change size there: the data
// blocks (and any size change, which fdatasync does persist) are all
// an acked record needs to survive.
func datasync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}
