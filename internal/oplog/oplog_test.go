package oplog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"grouphash/internal/layout"
)

func base(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "oplog")
}

// collect replays base after the given LSN into a slice.
func collect(t *testing.T, b string, after uint64) (recs []Record, next uint64) {
	t.Helper()
	next, _, err := Scan(b, after, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return recs, next
}

func TestAppendSyncScanRoundtrip(t *testing.T) {
	b := base(t)
	l, err := Open(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := uint64(1); i <= 100; i++ {
		op := OpPut
		switch i % 3 {
		case 1:
			op = OpInsert
		case 2:
			op = OpDelete
		}
		last = l.Append(op, layout.Key{Lo: i, Hi: i * 7}, i*11)
		if last != i {
			t.Fatalf("Append %d assigned LSN %d", i, last)
		}
	}
	if l.DurableLSN() != 0 {
		t.Fatalf("durable %d before any Sync", l.DurableLSN())
	}
	if err := l.Sync(last); err != nil {
		t.Fatal(err)
	}
	if l.DurableLSN() != last {
		t.Fatalf("durable %d after Sync(%d)", l.DurableLSN(), last)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, next := collect(t, b, 0)
	if len(recs) != 100 || next != 101 {
		t.Fatalf("replayed %d records, next=%d", len(recs), next)
	}
	for i, r := range recs {
		want := uint64(i + 1)
		if r.LSN != want || r.Key.Lo != want || r.Key.Hi != want*7 || r.Value != want*11 {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// Replay with a cut: only LSNs > 60.
	recs, _ = collect(t, b, 60)
	if len(recs) != 40 || recs[0].LSN != 61 {
		t.Fatalf("after=60 replayed %d starting at %d", len(recs), recs[0].LSN)
	}
}

func TestScanIsIdempotentAndReadOnly(t *testing.T) {
	b := base(t)
	l, err := Open(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 32; i++ {
		l.Append(OpInsert, layout.Key{Lo: i}, i)
	}
	if err := l.Sync(32); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// A crash during replay restarts replay from scratch; three scans
	// (one abandoned half-way) must see identical records.
	half := 0
	stop := fmt.Errorf("simulated crash mid-replay")
	if _, _, err := Scan(b, 0, func(r Record) error {
		half++
		if half == 16 {
			return stop
		}
		return nil
	}); err != stop {
		t.Fatalf("aborted scan returned %v", err)
	}
	a, _ := collect(t, b, 0)
	c, _ := collect(t, b, 0)
	if len(a) != 32 || len(c) != 32 {
		t.Fatalf("scans after aborted scan saw %d and %d records", len(a), len(c))
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("scan divergence at %d: %+v vs %+v", i, a[i], c[i])
		}
	}
}

func TestTornTailStopsReplay(t *testing.T) {
	b := base(t)
	l, err := Open(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		l.Append(OpPut, layout.Key{Lo: i}, i)
	}
	if err := l.Sync(10); err != nil {
		t.Fatal(err)
	}
	path := l.ActivePath()
	synced := l.SyncedSize()
	l.Close()

	// Simulate a torn write: keep the fsynced prefix plus half a
	// record of garbage.
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, buf[:synced]...), 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, next := collect(t, b, 0)
	if len(recs) != 10 || next != 11 {
		t.Fatalf("torn tail: replayed %d, next=%d", len(recs), next)
	}

	// Corrupt a byte inside the last durable record: replay must stop
	// before it, never deliver garbage.
	buf[synced-10] ^= 0xff
	if err := os.WriteFile(path, buf[:synced], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, _ = collect(t, b, 0)
	if len(recs) != 9 {
		t.Fatalf("corrupt record: replayed %d, want 9", len(recs))
	}
}

func TestRotateAndTruncate(t *testing.T) {
	b := base(t)
	l, err := Open(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		l.Append(OpInsert, layout.Key{Lo: i}, i)
	}
	if err := l.Rotate(); err != nil { // snapshot at LSN 5
		t.Fatal(err)
	}
	for i := uint64(6); i <= 8; i++ {
		l.Append(OpInsert, layout.Key{Lo: i}, i)
	}
	if err := l.Sync(8); err != nil {
		t.Fatal(err)
	}
	// Both segments present: full replay sees 8, replay past the
	// snapshot mark sees 3.
	recs, next := collect(t, b, 0)
	if len(recs) != 8 || next != 9 {
		t.Fatalf("pre-truncate replay %d, next=%d", len(recs), next)
	}
	recs, _ = collect(t, b, 5)
	if len(recs) != 3 || recs[0].LSN != 6 {
		t.Fatalf("post-mark replay %d records from %d", len(recs), recs[0].LSN)
	}
	// Truncation deletes the sealed segment, keeps the active one.
	if err := l.TruncateThrough(5); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(segPath(b, 1)); !os.IsNotExist(err) {
		t.Fatalf("sealed covered segment survived truncation: %v", err)
	}
	if _, err := os.Stat(segPath(b, 2)); err != nil {
		t.Fatalf("active segment deleted: %v", err)
	}
	l.Close()
	recs, next = collect(t, b, 5)
	if len(recs) != 3 || next != 9 {
		t.Fatalf("post-truncate replay %d, next=%d", len(recs), next)
	}
}

func TestReopenAfterCrashStartsFreshSegment(t *testing.T) {
	b := base(t)
	l, err := Open(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 4; i++ {
		l.Append(OpPut, layout.Key{Lo: i}, i)
	}
	if err := l.Sync(4); err != nil {
		t.Fatal(err)
	}
	// "Crash": no Close. Reopen at next = Scan's answer.
	_, next := collect(t, b, 0)
	l2, err := Open(b, next)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.Append(OpPut, layout.Key{Lo: 99}, 99); got != 5 {
		t.Fatalf("post-crash LSN %d, want 5", got)
	}
	if err := l2.Sync(5); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	recs, _ := collect(t, b, 0)
	if len(recs) != 5 || recs[4].Key.Lo != 99 {
		t.Fatalf("replay after reopen: %d records, last %+v", len(recs), recs[len(recs)-1])
	}
}

func TestDeadSegmentTolerated(t *testing.T) {
	b := base(t)
	l, err := Open(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(OpPut, layout.Key{Lo: 1}, 1)
	if err := l.Sync(1); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Crash mid-segment-creation: a file with a truncated header.
	if err := os.WriteFile(segPath(b, 2), []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, next := collect(t, b, 0)
	if len(recs) != 1 || next != 2 {
		t.Fatalf("dead segment: replayed %d, next=%d", len(recs), next)
	}
	// Reopen must skip past the dead file's sequence number and a later
	// truncation must clean it up.
	l2, err := Open(b, next)
	if err != nil {
		t.Fatal(err)
	}
	l2.Append(OpPut, layout.Key{Lo: 2}, 2)
	if err := l2.Sync(2); err != nil {
		t.Fatal(err)
	}
	if err := l2.TruncateThrough(2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(segPath(b, 2)); !os.IsNotExist(err) {
		t.Fatalf("dead segment not cleaned up: %v", err)
	}
	l2.Close()
	recs, _ = collect(t, b, 0)
	if len(recs) != 2 {
		t.Fatalf("after cleanup replayed %d", len(recs))
	}
}

// TestRotateConcurrentWithAppend is the regression test for the
// rotation race: Rotate used to read lastLSN for the new segment's
// start in a critical section separate from the flush-drain, so an
// Append landing in between got an LSN below the new header's start
// and was later written into that segment — where replay treated it
// as a torn tail and silently dropped an fsynced record. Hammer
// appends against rotations; every assigned LSN must replay exactly
// once.
func TestRotateConcurrentWithAppend(t *testing.T) {
	b := base(t)
	l, err := Open(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The appender runs free — no per-record Sync, so appends flow
	// continuously through every phase of a concurrent rotation (the
	// racy window sat between Rotate's flush-drain and its start-LSN
	// read); an occasional Sync still exercises group commit against
	// the rotation.
	const total = 100_000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(1); i <= total; i++ {
			l.Append(OpInsert, layout.Key{Lo: i}, i)
			if i%8192 == 0 {
				if err := l.Sync(i); err != nil {
					t.Errorf("Sync(%d): %v", i, err)
					return
				}
			}
		}
	}()
	rotations := 0
	for {
		select {
		case <-done:
		default:
			if err := l.Rotate(); err != nil {
				t.Fatalf("Rotate %d: %v", rotations, err)
			}
			rotations++
			continue
		}
		break
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d rotations against %d appends", rotations, total)
	recs, next := collect(t, b, 0)
	if len(recs) != total || next != total+1 {
		t.Fatalf("replayed %d records, next=%d; rotation dropped records", len(recs), next)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Key.Lo != uint64(i+1) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

// TestAppendInRotateWindow pins the rotation race deterministically:
// an Append landing between Rotate's flush-drain and its start-LSN
// decision (injected via the test hook) must end up in the new
// segment under a header start that covers it. Rotate used to re-read
// lastLSN after the drain, stamping the new header one past the raced
// record — which replay then treated as a torn tail, silently
// dropping an fsynced record.
func TestAppendInRotateWindow(t *testing.T) {
	b := base(t)
	l, err := Open(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		l.Append(OpPut, layout.Key{Lo: i}, i)
	}
	testHookRotateAfterDrain = func() {
		if got := l.Append(OpPut, layout.Key{Lo: 4}, 4); got != 4 {
			t.Errorf("raced Append assigned LSN %d, want 4", got)
		}
	}
	defer func() { testHookRotateAfterDrain = nil }()
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	testHookRotateAfterDrain = nil
	l.Append(OpPut, layout.Key{Lo: 5}, 5)
	if err := l.Sync(5); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if start, err := readSegHeader(segPath(b, 2)); err != nil || start != 4 {
		t.Fatalf("new segment header start = (%d, %v), want 4: the raced record is below it", start, err)
	}
	recs, next := collect(t, b, 0)
	if len(recs) != 5 || next != 6 {
		t.Fatalf("replayed %d records, next=%d; the raced record was dropped", len(recs), next)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Key.Lo != uint64(i+1) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

// TestWideSegmentSuffix pins recovery of segments whose sequence
// number outgrows segPath's 8-digit padding: %08d widens to 9+ digits
// past 99,999,999, and listSegments used to require exactly 8,
// silently dropping such segments (and their acked records) at
// recovery.
func TestWideSegmentSuffix(t *testing.T) {
	b := base(t)
	l, err := Open(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		l.Append(OpPut, layout.Key{Lo: i}, i)
	}
	if err := l.Sync(3); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Rewrite the segment as sequence 100,000,000 — header seq patched
	// and the header CRC recomputed, then the 9-digit filename.
	const wideSeq = 100_000_000
	buf, err := os.ReadFile(segPath(b, 1))
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(buf[8:16], wideSeq)
	binary.LittleEndian.PutUint32(buf[24:28], crc32.Checksum(buf[:24], crcTable))
	if err := os.WriteFile(segPath(b, wideSeq), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(segPath(b, 1)); err != nil {
		t.Fatal(err)
	}
	if got := segPath(b, wideSeq); len(filepath.Ext(got)) != 10 { // ".100000000"
		t.Fatalf("segPath(%d) = %q, expected a 9-digit suffix", uint64(wideSeq), got)
	}
	recs, next := collect(t, b, 0)
	if len(recs) != 3 || next != 4 {
		t.Fatalf("wide-suffix segment: replayed %d, next=%d", len(recs), next)
	}
	// Reopen continues past the wide sequence number and replays the
	// whole chain.
	l2, err := Open(b, next)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.Append(OpPut, layout.Key{Lo: 4}, 4); got != 4 {
		t.Fatalf("post-reopen LSN %d, want 4", got)
	}
	if err := l2.Sync(4); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if _, err := os.Stat(segPath(b, wideSeq+1)); err != nil {
		t.Fatalf("reopen did not continue from the wide sequence: %v", err)
	}
	recs, _ = collect(t, b, 0)
	if len(recs) != 4 {
		t.Fatalf("after reopen replayed %d records, want 4", len(recs))
	}
}

// TestGroupCommitConcurrent hammers Append+Sync from many goroutines:
// every Sync that returns nil must really cover the caller's LSN, and
// the final file must replay every record exactly once in LSN order.
func TestGroupCommitConcurrent(t *testing.T) {
	b := base(t)
	l, err := Open(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const per = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn := l.Append(OpInsert, layout.Key{Lo: uint64(w)<<32 | uint64(i+1)}, uint64(i))
				if i%7 == 0 {
					if err := l.Sync(lsn); err != nil {
						t.Errorf("Sync: %v", err)
						return
					}
					if l.DurableLSN() < lsn {
						t.Errorf("Sync(%d) returned with durable=%d", lsn, l.DurableLSN())
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, next := collect(t, b, 0)
	if len(recs) != workers*per || next != workers*per+1 {
		t.Fatalf("replayed %d records, next=%d", len(recs), next)
	}
	seen := make(map[uint64]bool, len(recs))
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
		if seen[r.Key.Lo] {
			t.Fatalf("key %#x appears twice", r.Key.Lo)
		}
		seen[r.Key.Lo] = true
	}
}
