package oplog

import "grouphash/internal/stats"

// RegisterMetrics exports the log's observability counters into r under
// the given metric-name prefix (e.g. "gh" → gh_oplog_fsyncs_total).
// The group-commit behaviour PR 4 bought — one fsync amortised over a
// pipelined batch — is directly visible here: batch_records is the
// distribution of records made durable per fsync, and sync_latency is
// the fsync syscall cost those batches amortise.
func (l *Log) RegisterMetrics(r *stats.Registry, prefix string) {
	p := prefix + "_oplog_"
	r.RegisterGauge(p+"last_lsn", "", "Highest LSN assigned (not necessarily durable).",
		func() float64 { return float64(l.LastLSN()) })
	r.RegisterGauge(p+"durable_lsn", "", "Highest LSN known fsync-durable.",
		func() float64 { return float64(l.DurableLSN()) })
	r.RegisterGauge(p+"segments", "", "Live on-disk segment files (active included).",
		func() float64 {
			l.flushMu.Lock()
			n := len(l.segs)
			l.flushMu.Unlock()
			return float64(n)
		})
	r.RegisterCounter(p+"fsyncs_total", "", "Group-commit fsyncs issued.", l.fsyncs.Load)
	r.RegisterCounter(p+"appends_total", "", "Append/AppendBatch calls (buffer-lock acquisitions; divide records by this for the batch amortisation).", l.appends.Load)
	r.RegisterCounter(p+"rotations_total", "", "Segment rotations (one per snapshot).", l.rotations.Load)
	r.RegisterCounter(p+"truncated_segments_total", "", "Sealed segments deleted after a covering snapshot.", l.truncated.Load)
	r.RegisterCounter(p+"bytes_written_total", "", "Record bytes written to segment files (headers excluded).", l.bytesOut.Load)
	r.RegisterHistogram(p+"sync_latency_seconds", "", "fsync syscall latency per group commit.", 1e-9, &l.syncLat)
	r.RegisterHistogram(p+"batch_records", "", "Records made durable per fsync (group-commit batch size).", 1, &l.batchRec)
}

// Fsyncs returns the number of group-commit fsyncs issued so far.
func (l *Log) Fsyncs() uint64 { return l.fsyncs.Load() }

// Appends returns the number of Append/AppendBatch calls so far — each
// is one buffer-lock acquisition, so records÷appends is the staging
// amortisation the batch paths buy.
func (l *Log) Appends() uint64 { return l.appends.Load() }

// SyncLatency returns a snapshot of the fsync latency distribution in
// nanoseconds.
func (l *Log) SyncLatency() *stats.HistSnapshot { return l.syncLat.Snapshot() }

// BatchSizes returns a snapshot of the group-commit batch-size
// distribution (records per fsync).
func (l *Log) BatchSizes() *stats.HistSnapshot { return l.batchRec.Snapshot() }
