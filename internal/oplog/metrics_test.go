package oplog

import (
	"bytes"
	"path/filepath"
	"testing"

	"grouphash/internal/layout"
	"grouphash/internal/stats"
)

// TestRegisterMetrics drives a log through append / sync / rotate /
// truncate and checks the registered series both render conformantly
// and carry the values the log's own accessors report.
func TestRegisterMetrics(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "log"), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	reg := stats.NewRegistry()
	l.RegisterMetrics(reg, "gh")

	// Two group commits: 5 records under one fsync, then 2 more.
	for i := uint64(1); i <= 5; i++ {
		l.Append(OpPut, layout.Key{Lo: i}, i)
	}
	if err := l.Sync(5); err != nil {
		t.Fatal(err)
	}
	l.Append(OpDelete, layout.Key{Lo: 1}, 0)
	l.Append(OpInsert, layout.Key{Lo: 9}, 90)
	if err := l.Sync(7); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateThrough(7); err != nil {
		t.Fatal(err)
	}

	if got := l.Fsyncs(); got < 2 {
		t.Fatalf("Fsyncs = %d, want ≥ 2", got)
	}
	batches := l.BatchSizes()
	if batches.Count < 2 || batches.Sum != 7 {
		t.Fatalf("batch distribution count=%d sum=%d, want ≥2 batches summing to 7 records",
			batches.Count, batches.Sum)
	}
	if lat := l.SyncLatency(); lat.Count != uint64(l.Fsyncs()) {
		t.Fatalf("sync latency has %d samples, want one per fsync (%d)", lat.Count, l.Fsyncs())
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := stats.ValidateExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("oplog metrics fail conformance:\n%s\nerror: %v", buf.String(), err)
	}
	expect := map[string]float64{
		"gh_oplog_last_lsn":                 7,
		"gh_oplog_durable_lsn":              7,
		"gh_oplog_segments":                 1, // sealed segment truncated away, active remains
		"gh_oplog_rotations_total":          1,
		"gh_oplog_truncated_segments_total": 1,
	}
	for name, want := range expect {
		v, ok := fams[name].Sample("")
		if !ok || v != want {
			t.Errorf("%s = %v (%v), want %v", name, v, ok, want)
		}
	}
	if v, ok := fams["gh_oplog_fsyncs_total"].Sample(""); !ok || v < 2 {
		t.Errorf("gh_oplog_fsyncs_total = %v (%v), want ≥ 2", v, ok)
	}
	if v, ok := fams["gh_oplog_bytes_written_total"].Sample(""); !ok || v != 7*recordLen {
		t.Errorf("gh_oplog_bytes_written_total = %v (%v), want %d", v, ok, 7*recordLen)
	}
	if v := fams["gh_oplog_batch_records"].Samples["_count|"]; v < 2 {
		t.Errorf("gh_oplog_batch_records count = %v, want ≥ 2", v)
	}
}
