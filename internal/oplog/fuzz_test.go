package oplog

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"grouphash/internal/layout"
)

// fuzzSeedSegments builds a real two-segment log and returns the raw
// bytes of both segment files — the honest starting points the fuzzer
// mutates from.
func fuzzSeedSegments(f *testing.F) ([]byte, []byte) {
	base := filepath.Join(f.TempDir(), "log")
	l, err := Open(base, 1)
	if err != nil {
		f.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		l.Append(OpPut, layout.Key{Lo: i}, i*100)
	}
	if err := l.Sync(5); err != nil {
		f.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		f.Fatal(err)
	}
	for i := uint64(6); i <= 9; i++ {
		l.Append(OpInsert, layout.Key{Lo: i, Hi: i}, i)
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	seg1, err := os.ReadFile(segPath(base, 1))
	if err != nil {
		f.Fatal(err)
	}
	seg2, err := os.ReadFile(segPath(base, 2))
	if err != nil {
		f.Fatal(err)
	}
	return seg1, seg2
}

// FuzzOplogScan mutates raw segment bytes and asserts recovery's
// load-bearing invariants hold against ANY on-disk state, not just the
// states crashes can produce:
//
//   - Scan never panics and never yields a record with LSN ≤ after;
//   - yielded LSNs are strictly increasing (no duplicates, no
//     reordering — the exactly-once replay property);
//   - the replayed count equals the number of fn calls and the
//     returned next LSN is past every yielded record;
//   - torn-tail tolerance: appending arbitrary garbage after valid
//     records never disturbs the valid prefix's replay.
func FuzzOplogScan(f *testing.F) {
	seg1, seg2 := fuzzSeedSegments(f)
	f.Add(seg1, seg2, uint16(0))
	f.Add(seg1[:len(seg1)-13], seg2, uint16(2))                  // torn tail mid-record
	f.Add(seg1[:segHeaderLen-5], seg2, uint16(0))                // torn header
	f.Add(seg2, seg1, uint16(0))                                 // segments swapped: overlap/ordering stress
	f.Add([]byte{}, []byte{}, uint16(9))                         // empty files
	f.Add(make([]byte, segHeaderLen+recordLen), seg2, uint16(0)) // zeroed bytes

	f.Fuzz(func(t *testing.T, a, b []byte, after16 uint16) {
		dir := t.TempDir()
		base := filepath.Join(dir, "log")
		if err := os.WriteFile(segPath(base, 1), a, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(segPath(base, 2), b, 0o644); err != nil {
			t.Fatal(err)
		}
		after := uint64(after16)
		var lsns []uint64
		next, replayed, err := Scan(base, after, func(r Record) error {
			lsns = append(lsns, r.LSN)
			return nil
		})
		// err != nil (the overlap refusal) is a legal outcome; the
		// invariants below must hold for whatever was yielded first.
		_ = err
		if replayed != len(lsns) {
			t.Fatalf("replayed=%d but fn saw %d records", replayed, len(lsns))
		}
		for i, l := range lsns {
			if l <= after {
				t.Fatalf("yielded LSN %d ≤ after %d", l, after)
			}
			if i > 0 && l <= lsns[i-1] {
				t.Fatalf("LSNs out of order: %d after %d", l, lsns[i-1])
			}
		}
		if len(lsns) > 0 && next <= lsns[len(lsns)-1] {
			t.Fatalf("next=%d not past highest yielded LSN %d", next, lsns[len(lsns)-1])
		}
		if next < 1 {
			t.Fatalf("next=%d, the LSN space starts at 1", next)
		}

		// Torn-tail property: a segment holding 3 known-valid records
		// followed by the fuzz input's bytes must still replay those 3
		// records intact — garbage can only cut a tail off, never corrupt
		// or reorder what a covered fsync already made durable.
		tornBase := filepath.Join(dir, "torn")
		// Build the segment in memory (writeSegHeader would fsync the
		// file and directory — far too slow inside a fuzz loop).
		hdr := make([]byte, segHeaderLen)
		binary.LittleEndian.PutUint64(hdr[0:8], segMagic)
		binary.LittleEndian.PutUint64(hdr[8:16], 1)  // seq
		binary.LittleEndian.PutUint64(hdr[16:24], 1) // start LSN
		binary.LittleEndian.PutUint32(hdr[24:28], crc32.Checksum(hdr[:24], crcTable))
		want := []Record{
			{LSN: 1, Op: OpPut, Key: layout.Key{Lo: 11}, Value: 110},
			{LSN: 2, Op: OpDelete, Key: layout.Key{Lo: 22, Hi: 1}},
			{LSN: 3, Op: OpInsert, Key: layout.Key{Lo: 33}, Value: 330},
		}
		body := hdr
		for _, r := range want {
			body = appendRecord(body, r)
		}
		if err := os.WriteFile(segPath(tornBase, 1), append(body, a...), 0o644); err != nil {
			t.Fatal(err)
		}
		var got []Record
		_, n, err := Scan(tornBase, 0, func(r Record) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("torn-tail scan: %v", err)
		}
		if n < len(want) {
			t.Fatalf("torn tail swallowed valid records: replayed %d, want ≥ %d", n, len(want))
		}
		for i, w := range want {
			if got[i] != w {
				t.Fatalf("record %d = %+v, want %+v", i, got[i], w)
			}
		}
		// Any extra records the suffix happened to continue with must
		// keep the sequence strict.
		for i := len(want); i < len(got); i++ {
			if got[i].LSN != uint64(i)+1 {
				t.Fatalf("suffix record %d has LSN %d", i, got[i].LSN)
			}
		}
	})
}
