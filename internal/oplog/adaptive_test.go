package oplog

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"grouphash/internal/layout"
)

// TestAdaptiveRoundtrip proves the committer-driven mode keeps the
// exact durability contract of the legacy mode: records acknowledged
// by WaitDurable are on disk in strict LSN order, across concurrent
// appenders, with segments preallocated. It also pins the whole point
// of adaptive commit — far fewer fsyncs than records.
func TestAdaptiveRoundtrip(t *testing.T) {
	b := base(t)
	l, err := OpenConfig(b, 1, Config{
		SyncEvery:     500 * time.Microsecond,
		SyncBytes:     16 << 10,
		PreallocBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const perWorker = 250
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				lsn := l.Append(OpPut, layout.Key{Lo: uint64(w)<<32 | uint64(i)}, uint64(i))
				if err := l.WaitDurable(lsn); err != nil {
					errs <- fmt.Errorf("WaitDurable(%d): %w", lsn, err)
					return
				}
				if d := l.DurableLSN(); d < lsn {
					errs <- fmt.Errorf("WaitDurable(%d) returned with durable=%d", lsn, d)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	fsyncs := l.Fsyncs()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, next := collect(t, b, 0)
	if len(recs) != workers*perWorker {
		t.Fatalf("replayed %d records, want %d", len(recs), workers*perWorker)
	}
	if next != workers*perWorker+1 {
		t.Fatalf("next LSN %d, want %d", next, workers*perWorker+1)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
	if fsyncs >= workers*perWorker {
		t.Fatalf("%d fsyncs for %d records: adaptive mode amortised nothing", fsyncs, workers*perWorker)
	}
	t.Logf("%d records, %d fsyncs", workers*perWorker, fsyncs)
}

// TestAdaptiveByteTrigger pins the B side of the (T, B) window: with a
// prohibitively long SyncEvery, crossing SyncBytes must release
// waiters on its own, long before the timer.
func TestAdaptiveByteTrigger(t *testing.T) {
	b := base(t)
	l, err := OpenConfig(b, 1, Config{SyncEvery: time.Minute, SyncBytes: 4 * recordLen})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var last uint64
	for i := 0; i < 4; i++ {
		last = l.Append(OpPut, layout.Key{Lo: uint64(i + 1)}, 1)
	}
	done := make(chan error, 1)
	go func() { done <- l.WaitDurable(last) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("byte trigger never fired: WaitDurable stuck behind the one-minute timer")
	}
}

// TestAdaptiveZeroTailIgnored proves preallocation is recovery-safe:
// the zero-filled region past the last fsynced record reads as a torn
// tail (CRC + sequence break) and replay stops exactly at the durable
// prefix, even when unsynced staged records and the zero tail coexist.
func TestAdaptiveZeroTailIgnored(t *testing.T) {
	b := base(t)
	l, err := OpenConfig(b, 1, Config{SyncEvery: time.Millisecond, PreallocBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 5; i++ {
		last = l.Append(OpPut, layout.Key{Lo: uint64(i + 1)}, uint64(i))
	}
	if err := l.WaitDurable(last); err != nil {
		t.Fatal(err)
	}
	path := l.ActivePath()
	if fi, err := os.Stat(path); err != nil || fi.Size() != 64<<10 {
		t.Fatalf("active segment size %v, %v; want the full preallocated 64KiB", fi.Size(), err)
	}
	// Stage three more records but never let them commit.
	for i := 5; i < 8; i++ {
		l.Append(OpPut, layout.Key{Lo: uint64(i + 1)}, uint64(i))
	}
	l.Abort() // power failure: staged records die in memory, zero tail stays on disk
	recs, next := collect(t, b, 0)
	if len(recs) != 5 || next != 6 {
		t.Fatalf("replayed %d records (next %d), want the 5 durable ones", len(recs), next)
	}
}

// TestBatchFailureFanOut is the regression test for the group-commit
// failure contract: when one fsync fails, EVERY waiter of that batch —
// and every append racing the failure — must observe the error; none
// may hang, and none may be told its record is durable. The error must
// stay sticky after the injected fault is cleared.
func TestBatchFailureFanOut(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"legacy", Config{}},
		{"adaptive", Config{SyncEvery: 200 * time.Microsecond}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			b := base(t)
			l, err := OpenConfig(b, 1, mode.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			boom := errors.New("injected fsync failure")
			var armed atomic.Bool
			SetTestFsyncErr(func() error {
				if armed.Load() {
					return boom
				}
				return nil
			})
			defer SetTestFsyncErr(nil)

			// A healthy batch first: the failure must not be retroactive.
			lsn := l.Append(OpPut, layout.Key{Lo: 1}, 1)
			if err := l.WaitDurable(lsn); err != nil {
				t.Fatalf("healthy batch: %v", err)
			}
			armed.Store(true)

			const waiters = 8
			var wg sync.WaitGroup
			got := make([]error, waiters)
			for i := 0; i < waiters; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					lsn := l.Append(OpPut, layout.Key{Lo: uint64(i + 2)}, 1)
					got[i] = l.WaitDurable(lsn)
				}(i)
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("a waiter of the failed batch hung instead of observing the error")
			}
			for i, err := range got {
				if err == nil {
					t.Fatalf("waiter %d was told its record is durable across a failed fsync", i)
				}
			}
			if d := l.DurableLSN(); d != 1 {
				t.Fatalf("durable watermark %d moved past the failed fsync", d)
			}

			// Sticky: clearing the fault does not resurrect the log.
			armed.Store(false)
			lsn = l.Append(OpPut, layout.Key{Lo: 100}, 1)
			if err := l.WaitDurable(lsn); err == nil {
				t.Fatal("WaitDurable succeeded after a sticky I/O failure")
			}
			if err := l.Sync(lsn); err == nil {
				t.Fatal("Sync succeeded after a sticky I/O failure")
			}
		})
	}
}

// TestCloseRacesAppendAndWaitDurable hammers the shutdown ordering
// under the race detector: appenders and waiters run full tilt while
// Close stops the committer, takes the final flush and releases every
// parked waiter. No goroutine may hang, and every record whose
// WaitDurable returned nil must be on disk afterwards.
func TestCloseRacesAppendAndWaitDurable(t *testing.T) {
	b := base(t)
	l, err := OpenConfig(b, 1, Config{SyncEvery: 100 * time.Microsecond, SyncBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	var wg sync.WaitGroup
	ackedCh := make(chan uint64, 4096)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w uint64) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				lsn := l.Append(OpPut, layout.Key{Lo: w<<32 | i}, i)
				if err := l.WaitDurable(lsn); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("worker %d: %v", w, err)
					}
					return
				}
				ackedCh <- lsn
			}
		}(uint64(w))
	}
	time.Sleep(2 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("a worker hung across Close")
	}
	close(ackedCh)
	onDisk := make(map[uint64]bool)
	if _, _, err := Scan(b, 0, func(r Record) error {
		onDisk[r.LSN] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	acked := 0
	for lsn := range ackedCh {
		acked++
		if !onDisk[lsn] {
			t.Fatalf("LSN %d was acked durable but is not on disk after Close", lsn)
		}
	}
	t.Logf("%d acked records, all on disk", acked)
}
