// Package oplog is the file-backed operation log that closes the
// serving layer's durability hole: every mutating request the server
// acks is first made durable here, so "acked" finally means "survives
// a power failure", not "survives until the next snapshot".
//
// # Role next to snapshots
//
// The network server persists through pmfs snapshot images. An image
// alone only covers acked writes up to the moment it was captured; the
// oplog covers the tail. Each image records the log sequence number
// (LSN) of the last operation it contains (its "oplog mark"), and
// recovery is: load the newest image, then replay every log record
// with a higher LSN, in LSN order. Snapshot + log tail = complete
// state; the log is rotated at every snapshot and the fully-covered
// segments are deleted once the image is durable.
//
// # Group commit
//
// Appends go to an in-memory buffer and are durable only after an
// fsync covers them. Two commit modes share that buffer:
//
//   - Legacy (zero Config): the caller drives the fsync. Sync is a
//     group commit with a leader/waiter fast path: while one caller's
//     fsync is in flight, later appenders pile into the buffer and the
//     next Sync covers them all; a caller whose records were covered by
//     somebody else's fsync returns without touching the disk.
//   - Adaptive (Config.SyncEvery > 0): a committer goroutine owns the
//     fsync clock. The first record staged into an empty buffer opens a
//     commit window; the committer fsyncs when SyncEvery elapses or
//     SyncBytes accumulate, whichever first, so one fsync amortises
//     across every connection that appended inside the window — not
//     just one pipelined batch. Callers park in WaitDurable until the
//     durable-LSN watermark passes their record.
//
// Either way one fsync covers a whole batch of operations, amortising
// the dominant cost the same way the paper's batched persists amortise
// clflush traffic.
//
// # Crash safety
//
// Records carry a CRC and strictly sequential LSNs. A torn tail (the
// crash hit mid-write) fails the CRC or the sequence check and replay
// stops there — safe, because a record is only ever acked after an
// fsync that covers it and everything before it, so no acked record
// can follow a torn one. Segment files are created with their header
// fsynced (file and directory) before any record lands in them, and
// replay (Scan) never writes, so a crash during recovery just replays
// again from the same files: replay is idempotent by construction.
package oplog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"grouphash/internal/layout"
	"grouphash/internal/stats"
)

// Op identifies the logged store mutation.
type Op byte

// The logged operation kinds, mirroring the store's mutating API.
const (
	// OpPut is an upsert (grouphash.Store.Put).
	OpPut Op = iota + 1
	// OpInsert is an Algorithm-1 insert, duplicates allowed.
	OpInsert
	// OpDelete removes a key.
	OpDelete
)

// Record is one durable log entry: an acked (or at least
// fsync-covered) store mutation.
type Record struct {
	// LSN is the record's log sequence number; strictly sequential.
	LSN uint64
	// Op is the mutation kind.
	Op Op
	// Key is the target key.
	Key layout.Key
	// Value is the payload word (unused by OpDelete).
	Value uint64
}

// segMagic identifies an oplog segment file, last byte = format
// version.
const segMagic = 0x47484f504c4f4701 // "GHOPLOG" + 1

// segHeaderLen is the segment header size: magic, seq, startLSN, crc
// (padded to a word).
const segHeaderLen = 32

// recordLen is the fixed record size: lsn, key.Lo, key.Hi, value, op +
// 3 pad bytes, crc32.
const recordLen = 8 + 8 + 8 + 8 + 4 + 4

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("oplog: log is closed")

// Config tunes the log's commit scheduling and segment allocation. The
// zero value is the legacy synchronous mode: callers drive every fsync
// through Sync and segments grow on demand.
type Config struct {
	// SyncEvery, when > 0, enables adaptive group commit: a committer
	// goroutine fsyncs at most SyncEvery after the first record of a
	// window is staged. It bounds both the added ack latency and the
	// durability lag of an append nobody is waiting on.
	SyncEvery time.Duration
	// SyncBytes, when > 0 in adaptive mode, closes a commit window
	// early once at least SyncBytes of records are staged, so heavy
	// pipelines do not queue a full SyncEvery behind the timer.
	SyncBytes int
	// PreallocBytes, when > 0, zero-fills each new segment file to this
	// size at creation so steady-state record flushes never extend the
	// file and can use a data-only fsync (fdatasync on Linux) instead
	// of journaling a size update per batch.
	PreallocBytes int64
}

// segment is one on-disk log file. Segment i holds LSNs
// [start_i, start_{i+1}-1]; the last segment is the active one.
type segment struct {
	path  string
	seq   uint64
	start uint64 // first LSN this segment may contain
	dead  bool   // header unreadable (crash mid-creation): no records
}

// Log is an append-only, group-committed operation log. Append and
// Sync are safe for concurrent use, including concurrently with
// Rotate (a record assigned during a rotation lands in the new
// segment, whose header start covers it); Rotate/TruncateThrough/
// Close are the snapshot path's and must not race each other.
type Log struct {
	base string
	dir  string
	cfg  Config

	mu      sync.Mutex // buf, spare, lastLSN, active file identity
	buf     []byte
	spare   []byte // the last flushed buffer, handed back to appenders
	lastLSN uint64

	flushMu  sync.Mutex // file writes + fsync + segment swap
	f        *os.File   // active segment
	written  int64      // bytes written to the active segment
	synced   int64      // bytes fsynced (crash-survivable prefix)
	prealloc int64      // preallocated size of the active segment (0 = none)
	err      error      // sticky I/O failure: nothing acks after it

	segs    []segment // all live segments, seq order, active last
	durable atomic.Uint64
	closed  atomic.Bool

	// Adaptive-mode machinery (nil/unused when cfg.SyncEvery == 0).
	kick          chan struct{} // a record was staged into an empty buffer
	kickBytes     chan struct{} // staged bytes crossed cfg.SyncBytes
	stopc         chan struct{}
	committerDone chan struct{}

	// WaitDurable parking. waitMu also serialises the sticky waitErr;
	// flushers broadcast after every durable-watermark advance/failure.
	waitMu   sync.Mutex
	waitCond *sync.Cond
	waitErr  error

	// Observability (zero-value-ready; exported via RegisterMetrics).
	syncLat   stats.Histogram // fsync syscall latency, nanoseconds
	batchRec  stats.Histogram // records made durable per fsync (group-commit batch)
	fsyncs    atomic.Uint64
	appends   atomic.Uint64 // Append/AppendBatch calls — buffer-lock acquisitions, not records
	rotations atomic.Uint64
	truncated atomic.Uint64
	bytesOut  atomic.Uint64
}

// testHookRotateAfterDrain, when non-nil, runs inside Rotate between
// the flush-drain and the new segment's creation — the window where a
// concurrent Append may assign LSNs past the drained high-water mark.
// Tests use it to pin that such a record lands in the new segment
// under a header start that covers it.
var testHookRotateAfterDrain func()

// testHookFsyncErr, when non-nil, is consulted before every record
// fsync; a non-nil return is treated exactly like the fsync syscall
// failing. Tests use it to prove batch-failure fan-out: every waiter of
// the failed group commit (and every later one) must see the error.
var testHookFsyncErr func() error

// SetTestFsyncErr installs (or, with nil, clears) a hook consulted
// before every record fsync; a non-nil return from the hook is treated
// exactly like the fsync syscall failing. For crash-injection tests in
// other packages only — production code must never call it.
func SetTestFsyncErr(fn func() error) { testHookFsyncErr = fn }

// segPath names segment seq of a log based at base.
func segPath(base string, seq uint64) string {
	return fmt.Sprintf("%s.%08d", base, seq)
}

// listSegments finds the existing segment files of base, sorted by
// sequence number, reading each header for its start LSN.
func listSegments(base string) ([]segment, error) {
	matches, err := filepath.Glob(base + ".*")
	if err != nil {
		return nil, fmt.Errorf("oplog: listing segments: %w", err)
	}
	var segs []segment
	for _, path := range matches {
		// segPath pads to 8 digits but widens beyond them once seq
		// exceeds 99,999,999 — accept any all-digit suffix of at least
		// the padded width, or recovery would silently skip segments.
		suffix := path[len(base)+1:]
		if len(suffix) < 8 {
			continue
		}
		seq, err := strconv.ParseUint(suffix, 10, 64)
		if err != nil {
			continue
		}
		s := segment{path: path, seq: seq}
		if start, err := readSegHeader(path); err != nil {
			s.dead = true // crash mid-creation; provably holds no acked record
		} else {
			s.start = start
		}
		segs = append(segs, s)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// readSegHeader validates a segment file's header and returns its
// start LSN.
func readSegHeader(path string) (start uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("oplog: segment header: %w", err)
	}
	return parseSegHeader(hdr[:])
}

func parseSegHeader(hdr []byte) (start uint64, err error) {
	if got := binary.LittleEndian.Uint64(hdr[0:8]); got != segMagic {
		return 0, fmt.Errorf("oplog: bad segment magic %#x", got)
	}
	if got, want := binary.LittleEndian.Uint32(hdr[24:28]), crc32.Checksum(hdr[:24], crcTable); got != want {
		return 0, fmt.Errorf("oplog: segment header crc %#x, want %#x", got, want)
	}
	return binary.LittleEndian.Uint64(hdr[16:24]), nil
}

// writeSegHeader creates a new segment file and makes its existence
// durable (header fsync + directory fsync) before returning it. When
// prealloc > 0 the file is zero-filled to that size first, so later
// record flushes inside the region never extend the file — a
// zero-filled tail is recovery-equivalent to a torn tail (a zero
// record fails both the CRC and the LSN sequence check), so replay
// stops at the last real record exactly as it does today.
func writeSegHeader(path string, seq, start uint64, prealloc int64) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("oplog: creating segment: %w", err)
	}
	if prealloc > segHeaderLen {
		// Real zero writes, not Truncate: a sparse hole would still cost
		// a block-mapping metadata commit on first write into it.
		zeros := make([]byte, 256<<10)
		for off := int64(0); off < prealloc; {
			n := prealloc - off
			if n > int64(len(zeros)) {
				n = int64(len(zeros))
			}
			if _, err := f.WriteAt(zeros[:n], off); err != nil {
				f.Close()
				return nil, fmt.Errorf("oplog: preallocating segment: %w", err)
			}
			off += n
		}
	}
	var hdr [segHeaderLen]byte
	binary.LittleEndian.PutUint64(hdr[0:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	binary.LittleEndian.PutUint64(hdr[16:24], start)
	binary.LittleEndian.PutUint32(hdr[24:28], crc32.Checksum(hdr[:24], crcTable))
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("oplog: writing segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("oplog: syncing segment header: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// syncDir fsyncs a directory so file creations and deletions inside it
// are durable, not merely visible.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("oplog: opening directory for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("oplog: syncing directory: %w", err)
	}
	return nil
}

// Open opens the log based at base for appending with the legacy
// (caller-driven Sync) configuration. See OpenConfig.
func Open(base string, nextLSN uint64) (*Log, error) {
	return OpenConfig(base, nextLSN, Config{})
}

// OpenConfig opens the log based at base for appending, starting a
// fresh segment whose first LSN is nextLSN (callers derive it from
// Scan and the snapshot's oplog mark: one past the highest LSN known).
// A fresh segment — never appending to an existing file — means a torn
// tail left by a crash can never precede new records. When
// cfg.SyncEvery > 0 the returned log runs in adaptive group-commit
// mode with its own committer goroutine; Close (or Abort) stops it.
func OpenConfig(base string, nextLSN uint64, cfg Config) (*Log, error) {
	if nextLSN == 0 {
		nextLSN = 1
	}
	segs, err := listSegments(base)
	if err != nil {
		return nil, err
	}
	seq := uint64(1)
	if n := len(segs); n > 0 {
		seq = segs[n-1].seq + 1
	}
	path := segPath(base, seq)
	f, err := writeSegHeader(path, seq, nextLSN, cfg.PreallocBytes)
	if err != nil {
		return nil, err
	}
	l := &Log{
		base:     base,
		dir:      filepath.Dir(base),
		cfg:      cfg,
		f:        f,
		written:  segHeaderLen,
		synced:   segHeaderLen,
		prealloc: cfg.PreallocBytes,
		lastLSN:  nextLSN - 1,
		segs:     append(segs, segment{path: path, seq: seq, start: nextLSN}),
	}
	l.durable.Store(nextLSN - 1)
	l.waitCond = sync.NewCond(&l.waitMu)
	if l.adaptive() {
		l.kick = make(chan struct{}, 1)
		l.kickBytes = make(chan struct{}, 1)
		l.stopc = make(chan struct{})
		l.committerDone = make(chan struct{})
		go l.committer()
	}
	return l, nil
}

// adaptive reports whether the committer goroutine owns the fsync
// clock.
func (l *Log) adaptive() bool { return l.cfg.SyncEvery > 0 }

// Append stages one mutation record and returns its LSN. The record is
// NOT durable until a Sync or WaitDurable covering the LSN returns
// nil — callers must not ack before that. In adaptive mode an append
// into an empty buffer opens a commit window (the committer will fsync
// within cfg.SyncEvery), and crossing cfg.SyncBytes closes the window
// early.
func (l *Log) Append(op Op, k layout.Key, v uint64) uint64 {
	l.appends.Add(1)
	l.mu.Lock()
	l.lastLSN++
	lsn := l.lastLSN
	wasEmpty := len(l.buf) == 0
	l.buf = appendRecord(l.buf, Record{LSN: lsn, Op: op, Key: k, Value: v})
	staged := len(l.buf)
	l.mu.Unlock()
	l.kickAfterStage(wasEmpty, staged)
	return lsn
}

// AppendBatch stages every record of recs under ONE buffer-lock
// acquisition — the stripe-grouped apply path's amortisation: a run of
// N mutations costs one lock round trip and one staging pass instead of
// N — assigning strictly sequential LSNs. recs[i].LSN is overwritten
// with first+i, and first is returned; callers ack record i once
// WaitDurable(first+i) (or a Sync covering it) returns nil. Like
// Append, the records are NOT durable on return. An empty recs returns
// 0 without touching the log.
func (l *Log) AppendBatch(recs []Record) (first uint64) {
	if len(recs) == 0 {
		return 0
	}
	l.appends.Add(1)
	l.mu.Lock()
	first = l.lastLSN + 1
	wasEmpty := len(l.buf) == 0
	for i := range recs {
		l.lastLSN++
		recs[i].LSN = l.lastLSN
		l.buf = appendRecord(l.buf, recs[i])
	}
	staged := len(l.buf)
	l.mu.Unlock()
	l.kickAfterStage(wasEmpty, staged)
	return first
}

// kickAfterStage nudges the adaptive committer after records were
// staged: wasEmpty opens a commit window, crossing cfg.SyncBytes closes
// it early. No-op in legacy mode.
func (l *Log) kickAfterStage(wasEmpty bool, staged int) {
	if !l.adaptive() {
		return
	}
	// flushLocked grabs the whole buffer under l.mu, so exactly one
	// appender observes each empty→non-empty transition: every
	// commit window is opened by exactly one kick. A stale byte-kick
	// (sent just as the committer drained the buffer) only closes
	// the next window early — an extra fsync, never a lost one.
	if wasEmpty {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
	if l.cfg.SyncBytes > 0 && staged >= l.cfg.SyncBytes {
		select {
		case l.kickBytes <- struct{}{}:
		default:
		}
	}
}

// committer is the adaptive-mode fsync clock: it sleeps until a kick
// opens a commit window, then flushes when cfg.SyncEvery elapses or
// the byte trigger fires, whichever first.
func (l *Log) committer() {
	defer close(l.committerDone)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-l.stopc:
			return
		case <-l.kick:
		}
		timer.Reset(l.cfg.SyncEvery)
		select {
		case <-l.stopc:
			if !timer.Stop() {
				<-timer.C
			}
			return
		case <-l.kickBytes:
			if !timer.Stop() {
				<-timer.C
			}
		case <-timer.C:
		}
		l.commit()
	}
}

// commit is one committer flush: fsync whatever is pending, ignoring
// stale kicks. Errors are sticky in l.err and fanned out to waiters by
// flushLocked; the committer itself just keeps serving windows (every
// subsequent flush re-fails fast).
func (l *Log) commit() {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	pending := len(l.buf) > 0 || l.lastLSN > l.durable.Load()
	l.mu.Unlock()
	if !pending {
		return
	}
	_, _ = l.flushLocked(true)
}

// WaitDurable blocks until every record with LSN ≤ upTo is durable, or
// the log fails or closes. It is the adaptive-mode ack gate: callers
// park here while the committer batches fsyncs across connections. In
// legacy mode it degrades to Sync, preserving the caller-driven group
// commit.
func (l *Log) WaitDurable(upTo uint64) error {
	if l.durable.Load() >= upTo {
		return nil
	}
	if !l.adaptive() {
		return l.Sync(upTo)
	}
	if l.closed.Load() {
		return ErrClosed
	}
	l.waitMu.Lock()
	defer l.waitMu.Unlock()
	for l.durable.Load() < upTo {
		if l.waitErr != nil {
			return l.waitErr
		}
		if l.closed.Load() {
			return ErrClosed
		}
		l.waitCond.Wait()
	}
	return nil
}

// notifyWaiters wakes WaitDurable parkers after the durable watermark
// moved. Taking waitMu (even without shared state to touch) closes the
// check-then-park race: a waiter that read a stale watermark either
// parks before we acquire waitMu (and gets this broadcast) or acquires
// it after us (and re-reads the fresh watermark).
func (l *Log) notifyWaiters() {
	l.waitMu.Lock()
	l.waitCond.Broadcast()
	l.waitMu.Unlock()
}

// failWaiters makes err sticky for WaitDurable and wakes every parked
// waiter so the whole failed batch — and anything racing it — observes
// the failure instead of hanging on a watermark that will never move.
func (l *Log) failWaiters(err error) {
	l.waitMu.Lock()
	if l.waitErr == nil {
		l.waitErr = err
	}
	l.waitCond.Broadcast()
	l.waitMu.Unlock()
}

// fail records err as the log's sticky I/O failure (first error wins)
// and fans it out to waiters. Caller holds flushMu.
func (l *Log) fail(err error) error {
	if l.err == nil {
		l.err = err
	}
	l.failWaiters(l.err)
	return l.err
}

// appendRecord encodes r onto buf.
func appendRecord(buf []byte, r Record) []byte {
	// Encode in place in the staging buffer: a local scratch array is
	// moved to the heap by escape analysis (the checksum call defeats
	// it) and would cost one allocation per staged record.
	n := len(buf)
	buf = append(buf, make([]byte, recordLen)...)
	b := buf[n : n+recordLen]
	binary.LittleEndian.PutUint64(b[0:8], r.LSN)
	binary.LittleEndian.PutUint64(b[8:16], r.Key.Lo)
	binary.LittleEndian.PutUint64(b[16:24], r.Key.Hi)
	binary.LittleEndian.PutUint64(b[24:32], r.Value)
	b[32] = byte(r.Op)
	binary.LittleEndian.PutUint32(b[36:40], crc32.Checksum(b[:36], crcTable))
	return buf
}

// parseRecord decodes and validates one record.
func parseRecord(b []byte) (Record, bool) {
	if len(b) < recordLen {
		return Record{}, false
	}
	if binary.LittleEndian.Uint32(b[36:40]) != crc32.Checksum(b[:36], crcTable) {
		return Record{}, false
	}
	r := Record{
		LSN:   binary.LittleEndian.Uint64(b[0:8]),
		Key:   layout.Key{Lo: binary.LittleEndian.Uint64(b[8:16]), Hi: binary.LittleEndian.Uint64(b[16:24])},
		Value: binary.LittleEndian.Uint64(b[24:32]),
		Op:    Op(b[32]),
	}
	if r.Op < OpPut || r.Op > OpDelete {
		return Record{}, false
	}
	return r, true
}

// Sync makes every record with LSN ≤ upTo durable, group-committing
// whatever else has been appended meanwhile. Returns immediately when
// a concurrent Sync already covered upTo. After an I/O failure the
// error is sticky: the durable prefix is unknown, so nothing may be
// acked on this log again.
func (l *Log) Sync(upTo uint64) error {
	if l.durable.Load() >= upTo {
		return nil
	}
	if l.closed.Load() {
		return ErrClosed
	}
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	if l.durable.Load() >= upTo { // a group leader covered us while we waited
		return nil
	}
	_, err := l.flushLocked(true)
	return err
}

// flushLocked writes the staged buffer to the active segment and, when
// fsync is set, makes it durable. It returns the high-water LSN the
// drain covered: every record with LSN ≤ hw is now in the active
// segment, every later one is still (or will be) staged. Caller holds
// flushMu.
func (l *Log) flushLocked(fsync bool) (hw uint64, err error) {
	if l.err != nil {
		// Re-fan-out so waiters that parked after the original failure
		// (racing appends of the failed batch's era) still observe it.
		l.failWaiters(l.err)
		return 0, l.err
	}
	l.mu.Lock()
	buf := l.buf
	// Hand appenders the spare buffer (the previously flushed one)
	// instead of nil: under load an append almost always lands while
	// the flush is writing, and regrowing from nil would cost one
	// large zeroed allocation per commit window.
	l.buf = l.spare[:0]
	l.spare = nil
	hw = l.lastLSN
	l.mu.Unlock()
	if len(buf) > 0 {
		if _, err := l.f.WriteAt(buf, l.written); err != nil {
			return hw, l.fail(fmt.Errorf("oplog: appending: %w", err))
		}
		l.written += int64(len(buf))
		l.bytesOut.Add(uint64(len(buf)))
	}
	if fsync {
		start := time.Now()
		if testHookFsyncErr != nil {
			if err := testHookFsyncErr(); err != nil {
				return hw, l.fail(fmt.Errorf("oplog: fsync: %w", err))
			}
		}
		// Inside a preallocated region the flush changed no file size or
		// block mapping, so a data-only sync suffices; past it (or with
		// no preallocation) fall back to a full fsync.
		var serr error
		if l.prealloc > 0 && l.written <= l.prealloc {
			serr = datasync(l.f)
		} else {
			serr = l.f.Sync()
		}
		if serr != nil {
			return hw, l.fail(fmt.Errorf("oplog: fsync: %w", serr))
		}
		l.syncLat.Observe(uint64(time.Since(start)))
		l.fsyncs.Add(1)
		if prev := l.durable.Load(); hw > prev {
			l.batchRec.Observe(hw - prev)
		}
		l.synced = l.written
		l.durable.Store(hw)
		l.notifyWaiters()
	}
	l.mu.Lock()
	l.spare = buf[:0] // flushed: its capacity backs the next window
	l.mu.Unlock()
	return hw, nil
}

// LastLSN returns the highest LSN assigned so far (not necessarily
// durable). Only stable while the caller excludes appenders.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// DurableLSN returns the highest LSN known durable.
func (l *Log) DurableLSN() uint64 { return l.durable.Load() }

// Rotate seals the active segment (flushing and fsyncing any staged
// records) and starts a fresh one. The snapshot path calls it inside
// the server's writer-exclusion window, so the sealed segments hold
// exactly the operations the about-to-be-written image covers.
func (l *Log) Rotate() error {
	if l.closed.Load() {
		return ErrClosed
	}
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	// The drained high-water mark, not a fresh lastLSN read, decides the
	// new segment's start: an Append racing this rotation may assign
	// hw+1 after the drain, and that record — still staged — will be
	// flushed into the NEW segment, so the new header must claim hw+1
	// or replay would treat the record as a torn tail and drop it.
	hw, err := l.flushLocked(true)
	if err != nil {
		return err
	}
	if testHookRotateAfterDrain != nil {
		testHookRotateAfterDrain()
	}
	start := hw + 1
	seq := l.segs[len(l.segs)-1].seq + 1
	path := segPath(l.base, seq)
	f, err := writeSegHeader(path, seq, start, l.cfg.PreallocBytes)
	if err != nil {
		return l.fail(err)
	}
	old, oldWritten, oldPrealloc := l.f, l.written, l.prealloc
	l.f = f
	l.written, l.synced = segHeaderLen, segHeaderLen
	l.prealloc = l.cfg.PreallocBytes
	l.segs = append(l.segs, segment{path: path, seq: seq, start: start})
	l.rotations.Add(1)
	if oldPrealloc > oldWritten {
		// Give the sealed segment's unused preallocated tail back to the
		// filesystem. Best-effort: a leftover zero tail is replay-inert.
		_ = old.Truncate(oldWritten)
	}
	if err := old.Close(); err != nil {
		return l.fail(fmt.Errorf("oplog: closing sealed segment: %w", err))
	}
	return nil
}

// TruncateThrough deletes every sealed segment whose records are all
// covered by a durable snapshot with oplog mark lsn. The active
// segment always survives. Call only after the covering image has been
// durably published — a crash in between merely leaves covered
// segments behind, which replay skips by LSN.
func (l *Log) TruncateThrough(lsn uint64) error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	kept := l.segs[:0]
	removed := false
	for i, s := range l.segs {
		last := i == len(l.segs)-1
		// Sealed segment i's records end at start_{i+1}-1; dead
		// segments (unreadable header) hold nothing acked.
		covered := !last && (s.dead || l.segs[i+1].start-1 <= lsn)
		if !covered {
			kept = append(kept, s)
			continue
		}
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("oplog: truncating: %w", err)
		}
		l.truncated.Add(1)
		removed = true
	}
	l.segs = kept
	if removed {
		return syncDir(l.dir)
	}
	return nil
}

// ActivePath returns the active segment's file path. Crash-simulation
// harnesses use it to tear the log's unsynced tail.
func (l *Log) ActivePath() string {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	return l.segs[len(l.segs)-1].path
}

// SyncedSize returns the fsynced byte length of the active segment —
// the prefix a power failure is guaranteed to preserve. Bytes beyond
// it (written but unsynced) may survive, vanish, or tear arbitrarily.
func (l *Log) SyncedSize() int64 {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	return l.synced
}

// WrittenSize returns the byte length the active segment would have if
// every write reached the file (synced or not).
func (l *Log) WrittenSize() int64 {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	_, _ = l.flushLocked(false) // push staged records out; written stays best-known on error
	return l.written
}

// Close flushes and fsyncs staged records and closes the active
// segment. The log cannot be used afterwards. In adaptive mode the
// committer is stopped first (outside flushMu, so an in-flight commit
// finishes rather than deadlocks), then the final flush covers
// whatever it had not yet committed, then parked waiters are released:
// each finds its record durable or the log closed — never a hang.
func (l *Log) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	l.stopCommitter()
	l.flushMu.Lock()
	_, err := l.flushLocked(true)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.flushMu.Unlock()
	l.notifyWaiters()
	return err
}

// stopCommitter shuts down the adaptive committer goroutine and waits
// for it to exit. No-op in legacy mode.
func (l *Log) stopCommitter() {
	if !l.adaptive() {
		return
	}
	close(l.stopc)
	<-l.committerDone
}

// Abort closes the active segment's file descriptor without flushing
// or fsyncing anything — the log's on-disk state is left exactly as a
// power failure would find it. Crash-torture harnesses use it to
// abandon a log after a simulated crash (optionally tearing the
// unsynced tail first); everything else wants Close.
func (l *Log) Abort() {
	if l.closed.Swap(true) {
		return
	}
	l.stopCommitter()
	l.flushMu.Lock()
	l.f.Close()
	l.flushMu.Unlock()
	l.notifyWaiters() // parked waiters observe closed, not a hang
}

// Scan replays the log based at base: every valid record with LSN >
// after is passed to fn, in LSN order. It stops at the first torn or
// out-of-sequence record of a segment (records past it were never
// acked — see the package comment) and continues with the next
// segment. Scan never writes, so a crash during replay is recovered by
// simply scanning again. It returns the LSN one past the highest
// observed (the nextLSN a subsequent Open should use) and the number
// of records passed to fn.
func Scan(base string, after uint64, fn func(Record) error) (next uint64, replayed int, err error) {
	segs, err := listSegments(base)
	if err != nil {
		return 1, 0, err
	}
	next = 1
	first := true
	for _, s := range segs {
		if s.dead {
			continue
		}
		switch {
		case first:
			next = s.start
			first = false
		case s.start < next:
			// Overlapping LSNs cannot come out of the rotation protocol;
			// refuse to replay rather than double-apply.
			return next, replayed, fmt.Errorf("oplog: segment %s starts at LSN %d, already past %d", s.path, s.start, next)
		case s.start > next:
			// Gap: the previous segment lost an unsynced (thus unacked)
			// tail. Continue from this segment's start.
			next = s.start
		}
		n, cnt, err := scanSegment(s.path, next, after, fn)
		replayed += cnt
		if err != nil {
			return n, replayed, err
		}
		next = n
	}
	return next, replayed, nil
}

// scanSegment replays one segment's records, expecting the first LSN
// to be expected; returns the next expected LSN after the segment.
func scanSegment(path string, expected, after uint64, fn func(Record) error) (uint64, int, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return expected, 0, fmt.Errorf("oplog: reading segment: %w", err)
	}
	if len(buf) < segHeaderLen {
		return expected, 0, nil // torn header: no records
	}
	body := buf[segHeaderLen:]
	count := 0
	for off := 0; off+recordLen <= len(body); off += recordLen {
		rec, ok := parseRecord(body[off : off+recordLen])
		if !ok || rec.LSN != expected {
			// Torn or out-of-sequence tail: everything from here on was
			// never covered by an acked fsync.
			return expected, count, nil
		}
		expected++
		if rec.LSN > after {
			if err := fn(rec); err != nil {
				return expected, count, err
			}
			count++
		}
	}
	return expected, count, nil
}
