package trace

import (
	"math"
	"testing"
)

func mixCfg(t *testing.T, mut func(*MixConfig)) MixConfig {
	t.Helper()
	cfg := MixConfig{
		Records:    10_000,
		Theta:      0.99,
		Tenants:    1,
		ReadFrac:   0.5,
		UpdateFrac: 0.5,
		Seed:       42,
	}
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

// TestMixDeterminism: same config → identical step stream; Reset
// rewinds it.
func TestMixDeterminism(t *testing.T) {
	cfg := mixCfg(t, func(c *MixConfig) {
		c.Tenants = 3
		c.InsertFrac = 0.1
		c.UpdateFrac = 0.4
		c.RMWFrac = 0.1
		c.ReadFrac = 0.4
		c.Flash = &FlashCrowd{Start: 100, Ramp: 200, Hold: 500, Peak: 0.3}
		var err error
		c.Values, err = ParseValueDist("web")
		if err != nil {
			t.Fatal(err)
		}
	})
	a, err := NewMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := make([]Step, 8192)
	for i := range steps {
		steps[i] = a.Next()
		if got := b.Next(); got != steps[i] {
			t.Fatalf("step %d diverged between same-config mixes: %+v vs %+v", i, steps[i], got)
		}
	}
	a.Reset()
	for i := range steps {
		if got := a.Next(); got != steps[i] {
			t.Fatalf("step %d after Reset diverged: %+v vs %+v", i, got, steps[i])
		}
	}
}

// TestMixTenantIsolation: every step's key carries its tenant's
// prefix, tenants cycle round-robin under Next, and NextFor pins one.
func TestMixTenantIsolation(t *testing.T) {
	const tenants = 4
	m, err := NewMix(mixCfg(t, func(c *MixConfig) { c.Tenants = tenants }))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, tenants)
	for i := 0; i < 4000; i++ {
		s := m.Next()
		if s.Tenant < 0 || s.Tenant >= tenants {
			t.Fatalf("tenant %d out of range", s.Tenant)
		}
		if got := s.Key.Lo >> 48; got != uint64(s.Tenant+1) {
			t.Fatalf("key %x carries tenant prefix %d, step says tenant %d", s.Key.Lo, got, s.Tenant)
		}
		counts[s.Tenant]++
	}
	for tn, c := range counts {
		if c != 1000 {
			t.Fatalf("tenant %d got %d/4000 steps under round-robin, want 1000", tn, c)
		}
	}
	m.Reset()
	for i := 0; i < 100; i++ {
		if s := m.NextFor(2); s.Tenant != 2 {
			t.Fatalf("NextFor(2) produced tenant %d", s.Tenant)
		}
	}
}

// TestMixFlashCrowd: during the hold window the hot record absorbs
// ~Peak of the traffic; before the start and well after the decay it
// absorbs only its Zipfian share.
func TestMixFlashCrowd(t *testing.T) {
	const (
		records = 10_000
		start   = 20_000
		ramp    = 5_000
		hold    = 40_000
		peak    = 0.30
	)
	m, err := NewMix(mixCfg(t, func(c *MixConfig) {
		c.Records = records
		c.Flash = &FlashCrowd{Start: start, Ramp: ramp, Hold: hold, Peak: peak}
	}))
	if err != nil {
		t.Fatal(err)
	}
	hotShare := func(n int) float64 {
		hot := 0
		for i := 0; i < n; i++ {
			if s := m.Next(); s.Hot {
				hot++
			}
		}
		return float64(hot) / float64(n)
	}
	before := hotShare(start)
	if before != 0 {
		t.Fatalf("hot share %.3f before the flash crowd, want 0", before)
	}
	hotShare(ramp) // skip the up-ramp
	during := hotShare(hold)
	if math.Abs(during-peak) > 0.03 {
		t.Fatalf("hot share %.3f during the hold window, want ~%.2f", during, peak)
	}
	hotShare(ramp) // skip the down-ramp
	after := hotShare(20_000)
	if after != 0 {
		t.Fatalf("hot share %.3f after the decay, want 0", after)
	}
	// The hot key is the Zipfian rank-0 record, so key-level traffic
	// concentration during the hold exceeds the Peak floor.
	m.Reset()
	for i := 0; i < start+ramp; i++ {
		m.Next()
	}
	hotKey := MixKey(0, 1, 0)
	hotOps := 0
	for i := 0; i < hold; i++ {
		if s := m.Next(); s.Key == hotKey {
			hotOps++
		}
	}
	if share := float64(hotOps) / hold; share < peak {
		t.Fatalf("hot-key traffic share %.3f during hold, want >= %.2f", share, peak)
	}
}

// TestMixOpRatios: the generated op mix tracks the configured
// fractions, and inserts mint strictly fresh ids.
func TestMixOpRatios(t *testing.T) {
	cfg := mixCfg(t, func(c *MixConfig) {
		c.ReadFrac, c.UpdateFrac, c.InsertFrac, c.RMWFrac = 0.6, 0.2, 0.1, 0.1
	})
	m, err := NewMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100_000
	var got [4]float64
	seen := map[uint64]bool{}
	maxID := cfg.Records
	for i := 0; i < n; i++ {
		s := m.Next()
		got[s.Op]++
		if s.Op == YCSBInsert {
			id := s.Key.Lo & mixIDMask
			if id <= cfg.Records || seen[id] {
				t.Fatalf("insert reused id %d", id)
			}
			seen[id] = true
			if id != maxID+1 {
				t.Fatalf("insert id %d not dense (want %d)", id, maxID+1)
			}
			maxID = id
		}
	}
	want := [4]float64{cfg.ReadFrac, cfg.UpdateFrac, cfg.InsertFrac, cfg.RMWFrac}
	for op, frac := range want {
		if math.Abs(got[op]/n-frac) > 0.01 {
			t.Fatalf("op %v share %.3f, want ~%.2f", YCSBOp(op), got[op]/n, frac)
		}
	}
}

// TestMixUniformTheta0: θ=0 must not favour the head.
func TestMixUniformTheta0(t *testing.T) {
	m, err := NewMix(mixCfg(t, func(c *MixConfig) { c.Theta = 0; c.Records = 1000 }))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100_000
	head := 0
	for i := 0; i < n; i++ {
		if id := m.Next().Key.Lo & mixIDMask; id <= 10 {
			head++
		}
	}
	if share := float64(head) / n; share > 0.02 {
		t.Fatalf("uniform mix put %.3f of traffic on the top 10 of 1000 keys", share)
	}
}

// TestValueDist covers the presets, custom specs, determinism of
// SpanFor and the mixture's weighting.
func TestValueDist(t *testing.T) {
	if _, err := ParseValueDist("nonsense"); err == nil {
		t.Fatal("bad spec accepted")
	}
	if _, err := ParseValueDist("0:10"); err == nil {
		t.Fatal("span 0 accepted")
	}
	fixed, err := ParseValueDist("fixed")
	if err != nil {
		t.Fatal(err)
	}
	if fixed.MaxSpan() != 1 || fixed.SpanFor(3, 77) != 1 {
		t.Fatal("fixed dist must always span 1")
	}
	web, err := ParseValueDist("web")
	if err != nil {
		t.Fatal(err)
	}
	if web.MaxSpan() != 64 {
		t.Fatalf("web max span %d, want 64", web.MaxSpan())
	}
	counts := map[int]int{}
	const n = 50_000
	for id := uint64(1); id <= n; id++ {
		s := web.SpanFor(0, id)
		if s2 := web.SpanFor(0, id); s2 != s {
			t.Fatalf("SpanFor not deterministic: %d vs %d", s, s2)
		}
		counts[s]++
	}
	for span, wantFrac := range map[int]float64{1: 0.80, 8: 0.15, 64: 0.05} {
		if got := float64(counts[span]) / n; math.Abs(got-wantFrac) > 0.02 {
			t.Fatalf("web span %d share %.3f, want ~%.2f", span, got, wantFrac)
		}
	}
	if m := web.MeanSpan(); math.Abs(m-(0.8*1+0.15*8+0.05*64)) > 1e-9 {
		t.Fatalf("web mean span %g", m)
	}
	custom, err := ParseValueDist("1:90,16:10")
	if err != nil {
		t.Fatal(err)
	}
	if custom.MaxSpan() != 16 {
		t.Fatalf("custom max span %d", custom.MaxSpan())
	}
	// Different tenants draw independent spans for the same id.
	diff := false
	for id := uint64(1); id <= 200; id++ {
		if web.SpanFor(0, id) != web.SpanFor(1, id) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("SpanFor ignores the tenant")
	}
}

// TestMixFracs pins the classic YCSB letters.
func TestMixFracs(t *testing.T) {
	r, u, i, w, err := MixFracs('a')
	if err != nil || r != 0.5 || u != 0.5 || i != 0 || w != 0 {
		t.Fatalf("mix a: %v %v %v %v %v", r, u, i, w, err)
	}
	if _, _, _, _, err := MixFracs('z'); err == nil {
		t.Fatal("mix z accepted")
	}
}

// TestMixValidation: the constructor must reject broken configs.
func TestMixValidation(t *testing.T) {
	bad := []func(*MixConfig){
		func(c *MixConfig) { c.Records = 1 },
		func(c *MixConfig) { c.Tenants = 0 },
		func(c *MixConfig) { c.ReadFrac = 0.9 },      // sum != 1
		func(c *MixConfig) { c.Theta = -1 },
		func(c *MixConfig) { c.Flash = &FlashCrowd{Peak: 2, Ramp: 1} },
		func(c *MixConfig) { c.Flash = &FlashCrowd{Peak: 0.3} }, // ramp 0
	}
	for i, mut := range bad {
		if _, err := NewMix(mixCfg(t, mut)); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}
