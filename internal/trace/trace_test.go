package trace

import (
	"testing"
)

func TestDeterminismAndReset(t *testing.T) {
	for _, tr := range All(7) {
		t.Run(tr.Name(), func(t *testing.T) {
			first := make([]Item, 100)
			for i := range first {
				first[i] = tr.Next()
			}
			tr.Reset()
			for i := range first {
				if got := tr.Next(); got != first[i] {
					t.Fatalf("item %d differs after Reset: %+v vs %+v", i, got, first[i])
				}
			}
		})
	}
}

func TestSameSeedSameStream(t *testing.T) {
	a := NewBagOfWords(3)
	b := NewBagOfWords(3)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverge at item %d", i)
		}
	}
	c := NewBagOfWords(4)
	diverged := false
	a.Reset()
	for i := 0; i < 1000; i++ {
		if a.Next() != c.Next() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced the same stream")
	}
}

func TestRandomNumRange(t *testing.T) {
	tr := NewRandomNum(1)
	if tr.KeyBytes() != 8 {
		t.Fatal("key size")
	}
	for i := 0; i < 100000; i++ {
		it := tr.Next()
		if it.Key.Lo >= KeySpace {
			t.Fatalf("key %d outside [0, 2^26)", it.Key.Lo)
		}
		if it.Key.Hi != 0 {
			t.Fatal("RandomNum keys must be one word")
		}
		if it.Value == 0 {
			t.Fatal("zero value breaks payload-zero recovery checks")
		}
	}
}

func TestBagOfWordsPairsDistinctWithinDoc(t *testing.T) {
	tr := NewBagOfWords(1)
	seen := make(map[uint64]bool)
	for i := 0; i < 200000; i++ {
		it := tr.Next()
		if seen[it.Key.Lo] {
			t.Fatalf("duplicate (doc,word) pair: %#x", it.Key.Lo)
		}
		seen[it.Key.Lo] = true
	}
}

func TestBagOfWordsZipfSkew(t *testing.T) {
	// The most popular words must appear in far more documents than
	// the median word: verify heavy skew of the word-ID marginal.
	tr := NewBagOfWords(2)
	counts := make(map[uint32]int)
	for i := 0; i < 300000; i++ {
		counts[uint32(tr.Next().Key.Lo&0xffffffff)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := 300000 / len(counts)
	if max < 10*mean {
		t.Fatalf("word distribution not skewed: max %d vs mean %d", max, mean)
	}
}

func TestFingerprintKeysLookUniform(t *testing.T) {
	tr := NewFingerprint(1)
	if tr.KeyBytes() != 16 {
		t.Fatal("key size")
	}
	seen := make(map[uint64]bool)
	buckets := make([]int, 16)
	const n = 100000
	for i := 0; i < n; i++ {
		it := tr.Next()
		if it.Key.Hi == 0 && it.Key.Lo == 0 {
			t.Fatal("zero fingerprint")
		}
		if seen[it.Key.Lo] {
			t.Fatal("fingerprint collision in the low word (astronomically unlikely)")
		}
		seen[it.Key.Lo] = true
		buckets[it.Key.Lo&15]++
	}
	for b, c := range buckets {
		if c < n/16-n/64 || c > n/16+n/64 {
			t.Fatalf("bucket %d count %d deviates from uniform", b, c)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"randomnum", "bagofwords", "fingerprint"} {
		if ByName(name, 1) == nil {
			t.Fatalf("ByName(%q) = nil", name)
		}
	}
	if ByName("nonsense", 1) != nil {
		t.Fatal("ByName accepted garbage")
	}
}

func TestAllReturnsThreePaperTraces(t *testing.T) {
	ts := All(1)
	if len(ts) != 3 {
		t.Fatalf("All returned %d traces", len(ts))
	}
	want := []string{"RandomNum", "Bag-of-Words", "Fingerprint"}
	for i, tr := range ts {
		if tr.Name() != want[i] {
			t.Fatalf("trace %d = %q, want %q", i, tr.Name(), want[i])
		}
	}
}
