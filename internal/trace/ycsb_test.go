package trace

import "testing"

func TestYCSBValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewYCSB('z', 100, 1) },
		func() { NewYCSB('a', 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestYCSBNamesAndDeterminism(t *testing.T) {
	for _, w := range []byte{'a', 'b', 'c', 'd', 'f'} {
		y1 := NewYCSB(w, 1000, 3)
		y2 := NewYCSB(w, 1000, 3)
		want := "YCSB-" + string(rune(w-'a'+'A'))
		if y1.Name() != want {
			t.Fatalf("Name = %q, want %q", y1.Name(), want)
		}
		for i := 0; i < 2000; i++ {
			if y1.Next() != y2.Next() {
				t.Fatalf("%s: nondeterministic at step %d", want, i)
			}
		}
		y1.Reset()
		y3 := NewYCSB(w, 1000, 3)
		for i := 0; i < 100; i++ {
			if y1.Next() != y3.Next() {
				t.Fatalf("%s: Reset did not rewind", want)
			}
		}
	}
}

func TestYCSBMixRatios(t *testing.T) {
	const n = 100000
	count := func(w byte) map[YCSBOp]int {
		y := NewYCSB(w, 10000, 1)
		m := make(map[YCSBOp]int)
		for i := 0; i < n; i++ {
			m[y.Next().Op]++
		}
		return m
	}
	within := func(got int, frac, tol float64) bool {
		return float64(got) > (frac-tol)*n && float64(got) < (frac+tol)*n
	}

	a := count('a')
	if !within(a[YCSBRead], 0.5, 0.02) || !within(a[YCSBUpdate], 0.5, 0.02) {
		t.Fatalf("A mix = %v", a)
	}
	b := count('b')
	if !within(b[YCSBRead], 0.95, 0.01) || !within(b[YCSBUpdate], 0.05, 0.01) {
		t.Fatalf("B mix = %v", b)
	}
	c := count('c')
	if c[YCSBRead] != n {
		t.Fatalf("C mix = %v", c)
	}
	d := count('d')
	if !within(d[YCSBRead], 0.95, 0.01) || !within(d[YCSBInsert], 0.05, 0.01) {
		t.Fatalf("D mix = %v", d)
	}
	f := count('f')
	if !within(f[YCSBRead], 0.5, 0.02) || !within(f[YCSBRMW], 0.5, 0.02) {
		t.Fatalf("F mix = %v", f)
	}
}

func TestYCSBKeysInRangeAndSkewed(t *testing.T) {
	y := NewYCSB('a', 5000, 2)
	counts := make(map[uint64]int)
	for i := 0; i < 100000; i++ {
		st := y.Next()
		k := st.Item.Key.Lo
		if k == 0 || k > 5000 {
			t.Fatalf("key %d outside [1, records]", k)
		}
		counts[k]++
	}
	// Zipf skew: the hottest key must be hit far above uniform.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 100000/5000*10 {
		t.Fatalf("no skew: hottest key hit %d times", max)
	}
}

func TestYCSBDInsertsExtendKeyspace(t *testing.T) {
	y := NewYCSB('d', 1000, 4)
	maxSeen := uint64(0)
	inserts := 0
	for i := 0; i < 50000; i++ {
		st := y.Next()
		if st.Op == YCSBInsert {
			inserts++
			if st.Item.Key.Lo <= 1000 && inserts > 0 && st.Item.Key.Lo <= maxSeen {
				t.Fatalf("insert reused key %d", st.Item.Key.Lo)
			}
			if st.Item.Key.Lo > maxSeen {
				maxSeen = st.Item.Key.Lo
			}
		}
	}
	if inserts == 0 {
		t.Fatal("workload D produced no inserts")
	}
	if maxSeen != 1000+uint64(inserts) {
		t.Fatalf("inserted keys not dense: max %d after %d inserts", maxSeen, inserts)
	}
}

func TestYCSBOpString(t *testing.T) {
	names := map[YCSBOp]string{YCSBRead: "read", YCSBUpdate: "update", YCSBInsert: "insert", YCSBRMW: "rmw", YCSBOp(9): "unknown"}
	for op, want := range names {
		if op.String() != want {
			t.Fatalf("%d.String() = %q", int(op), op.String())
		}
	}
}
