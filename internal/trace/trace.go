// Package trace provides the three workloads of the paper's evaluation
// (§4.1) as deterministic, endless item streams:
//
//   - RandomNum: random integers in [0, 2^26), 8-byte keys — the
//     microbenchmark trace of SmartCuckoo/path hashing.
//   - Bag-of-Words: (DocID, WordID) pairs with Zipf-distributed word
//     frequencies, 8-byte keys, standing in for the UCI PubMed
//     collection (offline substitution; see DESIGN.md).
//   - Fingerprint: 16-byte MD5 digests of a synthetic file stream,
//     standing in for the FSL Mac-server snapshot trace.
//
// Traces are infinite: hash-table experiments consume exactly as many
// items as a target load factor requires, so generators never run dry.
// Reset rewinds a trace to its first item; two traces with the same
// seed produce identical streams.
package trace

import (
	"crypto/md5"
	"encoding/binary"
	"math/rand"

	"grouphash/internal/layout"
)

// Item is one trace record: a key to insert and its payload word.
type Item struct {
	Key   layout.Key
	Value uint64
}

// Trace is a deterministic stream of items.
type Trace interface {
	// Name identifies the trace in reports ("RandomNum", ...).
	Name() string
	// KeyBytes is 8 or 16, fixing the cell layout.
	KeyBytes() int
	// Next returns the next item. Traces never run dry.
	Next() Item
	// Reset rewinds the stream to the beginning.
	Reset()
}

// RandomNum is the random-integer trace: keys drawn uniformly from
// [0, 2^26), as in the paper ("we generate the random integer ranging
// from 0 to 2^26"). Item size 16 bytes (8-byte key + value).
type RandomNum struct {
	seed int64
	rng  *rand.Rand
	n    uint64
}

// KeySpace is the RandomNum key range bound from the paper.
const KeySpace = 1 << 26

// NewRandomNum creates the trace with a seed.
func NewRandomNum(seed int64) *RandomNum {
	t := &RandomNum{seed: seed}
	t.Reset()
	return t
}

// Name implements Trace.
func (t *RandomNum) Name() string { return "RandomNum" }

// KeyBytes implements Trace.
func (t *RandomNum) KeyBytes() int { return 8 }

// Next implements Trace.
func (t *RandomNum) Next() Item {
	t.n++
	// Keys are drawn from [1, 2^26): the compact 16-byte cell layout
	// reserves key 0 as its empty marker.
	return Item{
		Key:   layout.Key{Lo: uint64(t.rng.Int63n(KeySpace-1)) + 1},
		Value: t.n,
	}
}

// Reset implements Trace.
func (t *RandomNum) Reset() {
	t.rng = rand.New(rand.NewSource(t.seed))
	t.n = 0
}

// BagOfWords models the UCI bag-of-words PubMed collection: a stream of
// (DocID, WordID) co-occurrence pairs. Word IDs follow a Zipf
// distribution (word frequencies in text are Zipfian); each document
// contributes a run of pairs with distinct words. The key packs
// DocID<<32 | WordID, matching the paper's "combinations of DocID and
// WordID are used as the keys".
type BagOfWords struct {
	seed      int64
	rng       *rand.Rand
	zipf      *rand.Zipf
	doc       uint64
	docWords  map[uint32]bool
	remaining int
	n         uint64
}

// VocabSize approximates the PubMed vocabulary (141,043 distinct words
// in the real collection).
const VocabSize = 141043

// NewBagOfWords creates the trace with a seed.
func NewBagOfWords(seed int64) *BagOfWords {
	t := &BagOfWords{seed: seed}
	t.Reset()
	return t
}

// Name implements Trace.
func (t *BagOfWords) Name() string { return "Bag-of-Words" }

// KeyBytes implements Trace.
func (t *BagOfWords) KeyBytes() int { return 8 }

// Next implements Trace.
func (t *BagOfWords) Next() Item {
	for {
		if t.remaining == 0 {
			t.doc++
			// PubMed abstracts average ~60 distinct words/document.
			t.remaining = 20 + t.rng.Intn(80)
			t.docWords = make(map[uint32]bool, t.remaining)
		}
		w := uint32(t.zipf.Uint64())
		if t.docWords[w] {
			continue // the same word twice in one doc is one pair
		}
		t.docWords[w] = true
		t.remaining--
		t.n++
		return Item{
			Key:   layout.Key{Lo: t.doc<<32 | uint64(w)},
			Value: t.n,
		}
	}
}

// Reset implements Trace.
func (t *BagOfWords) Reset() {
	t.rng = rand.New(rand.NewSource(t.seed))
	// s=1.05 gives the gentle Zipf slope typical of scientific text.
	t.zipf = rand.NewZipf(t.rng, 1.05, 1, VocabSize-1)
	t.doc = 0
	t.remaining = 0
	t.n = 0
}

// Fingerprint models the FSL deduplication trace: 16-byte MD5 file
// fingerprints ("we use the 16-byte MD5 fingerprints of the files as
// the keys"). Digesting a seeded counter stream yields uniformly
// distributed 128-bit keys, statistically matching real fingerprints.
// Item size 32 bytes (16-byte key + value + metadata word).
type Fingerprint struct {
	seed int64
	n    uint64
}

// NewFingerprint creates the trace with a seed.
func NewFingerprint(seed int64) *Fingerprint {
	return &Fingerprint{seed: seed}
}

// Name implements Trace.
func (t *Fingerprint) Name() string { return "Fingerprint" }

// KeyBytes implements Trace.
func (t *Fingerprint) KeyBytes() int { return 16 }

// Next implements Trace.
func (t *Fingerprint) Next() Item {
	t.n++
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(t.seed))
	binary.LittleEndian.PutUint64(buf[8:16], t.n)
	sum := md5.Sum(buf[:])
	return Item{
		Key: layout.Key{
			Lo: binary.LittleEndian.Uint64(sum[0:8]),
			Hi: binary.LittleEndian.Uint64(sum[8:16]),
		},
		Value: t.n,
	}
}

// Reset implements Trace.
func (t *Fingerprint) Reset() { t.n = 0 }

// ByName returns the named trace ("randomnum", "bagofwords",
// "fingerprint") or nil.
func ByName(name string, seed int64) Trace {
	switch name {
	case "randomnum", "RandomNum":
		return NewRandomNum(seed)
	case "bagofwords", "Bag-of-Words", "bag-of-words":
		return NewBagOfWords(seed)
	case "fingerprint", "Fingerprint":
		return NewFingerprint(seed)
	}
	return nil
}

// All returns the paper's three traces in evaluation order.
func All(seed int64) []Trace {
	return []Trace{NewRandomNum(seed), NewBagOfWords(seed), NewFingerprint(seed)}
}
