package trace

import (
	"math"
	"testing"
)

// TestZipfianTopKMass checks the empirical head mass of the generator
// against the analytic Zipf pmf at the three skews the workload lab
// advertises: θ=0.5 (mild), θ=0.99 (the YCSB default, Gray-inversion
// path) and θ=1.2 (heavy tail, stdlib path). The two code paths must
// both land on the same closed-form target.
func TestZipfianTopKMass(t *testing.T) {
	const (
		n     = 10_000
		k     = 10
		draws = 200_000
	)
	for _, theta := range []float64{0.5, 0.99, 1.2} {
		z := NewZipfian(42, n, theta)
		var topK, top1 int
		for i := 0; i < draws; i++ {
			r := z.Next()
			if r >= n {
				t.Fatalf("theta=%.2f: rank %d out of range [0,%d)", theta, r, n)
			}
			if r < k {
				topK++
			}
			if r == 0 {
				top1++
			}
		}
		gotK := float64(topK) / draws
		wantK := RankMass(n, k, theta)
		if relErr(gotK, wantK) > 0.10 {
			t.Errorf("theta=%.2f: top-%d mass %.4f, analytic %.4f (rel err > 10%%)", theta, k, gotK, wantK)
		}
		got1 := float64(top1) / draws
		want1 := RankMass(n, 1, theta)
		if relErr(got1, want1) > 0.15 {
			t.Errorf("theta=%.2f: top-1 mass %.4f, analytic %.4f (rel err > 15%%)", theta, got1, want1)
		}
		t.Logf("theta=%.2f: top-%d mass %.4f (analytic %.4f), top-1 %.4f (analytic %.4f)",
			theta, k, gotK, wantK, got1, want1)
	}
}

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / want
}

// TestZipfianSkewMonotonic pins the defining property of the θ knob:
// more θ concentrates more mass on the head.
func TestZipfianSkewMonotonic(t *testing.T) {
	const (
		n     = 10_000
		k     = 10
		draws = 100_000
	)
	var prev float64 = -1
	for _, theta := range []float64{0.3, 0.7, 0.99, 1.2, 1.5} {
		z := NewZipfian(7, n, theta)
		var topK int
		for i := 0; i < draws; i++ {
			if z.Next() < k {
				topK++
			}
		}
		mass := float64(topK) / draws
		if mass <= prev {
			t.Fatalf("theta=%.2f: top-%d mass %.4f not above previous skew's %.4f", theta, k, mass, prev)
		}
		prev = mass
	}
}

// TestZipfianDeterminism: same (seed, n, θ) → identical rank sequence;
// Reset rewinds; a different seed diverges.
func TestZipfianDeterminism(t *testing.T) {
	for _, theta := range []float64{0.5, 0.99, 1.2} {
		a := NewZipfian(123, 1<<20, theta)
		b := NewZipfian(123, 1<<20, theta)
		seq := make([]uint64, 4096)
		for i := range seq {
			seq[i] = a.Next()
			if got := b.Next(); got != seq[i] {
				t.Fatalf("theta=%.2f: draw %d diverged between same-seed generators: %d vs %d", theta, i, seq[i], got)
			}
		}
		a.Reset()
		for i := range seq {
			if got := a.Next(); got != seq[i] {
				t.Fatalf("theta=%.2f: draw %d after Reset diverged: %d vs %d", theta, i, got, seq[i])
			}
		}
		c := NewZipfian(124, 1<<20, theta)
		same := 0
		for i := range seq {
			if c.Next() == seq[i] {
				same++
			}
		}
		if same == len(seq) {
			t.Fatalf("theta=%.2f: different seed reproduced the full sequence", theta)
		}
	}
}

// TestZipfianThetaOneNudge: θ=1 must not hit the inversion's pole.
func TestZipfianThetaOneNudge(t *testing.T) {
	z := NewZipfian(1, 1000, 1)
	if z.Theta() >= 1 {
		t.Fatalf("theta 1 not nudged below the pole: %g", z.Theta())
	}
	for i := 0; i < 10_000; i++ {
		if r := z.Next(); r >= 1000 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

// TestRankMass sanity-pins the analytic oracle itself.
func TestRankMass(t *testing.T) {
	if got := RankMass(100, 100, 0.99); math.Abs(got-1) > 1e-12 {
		t.Fatalf("full mass = %g, want 1", got)
	}
	if got := RankMass(100, 200, 0.99); math.Abs(got-1) > 1e-12 {
		t.Fatalf("k > n mass = %g, want 1", got)
	}
	if RankMass(10_000, 10, 1.2) <= RankMass(10_000, 10, 0.5) {
		t.Fatal("analytic mass not increasing in theta")
	}
}
