package trace

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"grouphash/internal/layout"
)

// The workload lab: Mix generalises the fixed YCSB mixes into a
// parameter space — tunable Zipfian skew, per-tenant key prefixes,
// hot-key flash crowds, value-size mixtures and read-modify-write
// transactions — while staying fully deterministic for a (config,
// seed) pair so any run (including a failing chaos schedule) can be
// replayed bit-for-bit.

// Mix key layout (single 8-byte word, layout.Key.Lo):
//
//	bits 48..63  tenant+1   (tenant prefix; +1 keeps the reserved zero key impossible)
//	bits 40..47  chunk      (value-size mixtures: record spans chunk 0..span-1)
//	bits  0..39  record id  (1-based; dense per tenant)
const (
	mixIDBits  = 40
	mixIDMask  = 1<<mixIDBits - 1
	mixChunkSh = mixIDBits
	mixTenSh   = 48
	// MaxMixTenants is the widest tenant fan the key layout encodes.
	MaxMixTenants = 1<<(64-mixTenSh) - 1
	// MaxMixSpan is the largest value span (chunks per record) the key
	// layout encodes.
	MaxMixSpan = 1 << (mixTenSh - mixChunkSh)
)

// MixKey builds the wire key for one chunk of a tenant's record.
func MixKey(tenant int, id uint64, chunk int) layout.Key {
	return layout.Key{Lo: uint64(tenant+1)<<mixTenSh | uint64(chunk)<<mixChunkSh | id&mixIDMask}
}

// ChunkKey rebases a record's chunk-0 key (as carried by Step.Key)
// onto another chunk of the same record.
func ChunkKey(k layout.Key, chunk int) layout.Key {
	k.Lo = k.Lo&^uint64((MaxMixSpan-1)<<mixChunkSh) | uint64(chunk)<<mixChunkSh
	return k
}

// FlashCrowd describes a hot-key traffic spike: starting at op Start,
// the probability that an operation targets the tenant's hottest
// record ramps linearly from 0 to Peak over Ramp operations, holds at
// Peak for Hold operations, then ramps back down over Ramp operations.
// Peak 0.30 reproduces the "one key at 30% of traffic" scenario.
type FlashCrowd struct {
	Start uint64
	Ramp  uint64
	Hold  uint64
	Peak  float64
}

// HotProb returns the hot-key probability at operation number op
// (1-based, as counted by Mix).
func (f *FlashCrowd) HotProb(op uint64) float64 {
	if f == nil || f.Peak <= 0 || op < f.Start {
		return 0
	}
	x := op - f.Start
	if x < f.Ramp {
		return f.Peak * float64(x) / float64(f.Ramp)
	}
	x -= f.Ramp
	if x < f.Hold {
		return f.Peak
	}
	x -= f.Hold
	if x < f.Ramp {
		return f.Peak * (1 - float64(x)/float64(f.Ramp))
	}
	return 0
}

// ValueDist is a value-size mixture: a weighted set of spans, where a
// record of span s occupies chunks 0..s-1 (s wire operations per
// logical read or write). Which span a record has is a deterministic
// function of (tenant, id), so every reader and writer of a record
// agrees on its size without coordination.
type ValueDist struct {
	name    string
	spans   []int
	weights []float64
	cum     []float64
}

// ParseValueDist parses a mixture spec: the named presets "fixed"
// (every record one chunk) and "web" (80% 1-chunk, 15% 8-chunk,
// 5% 64-chunk — a small-dominant web-object mix), or an explicit
// "span:weight,span:weight,..." list such as "1:90,16:10".
func ParseValueDist(spec string) (ValueDist, error) {
	switch spec {
	case "", "fixed":
		return mustValueDist("fixed", []int{1}, []float64{1}), nil
	case "web":
		return mustValueDist("web", []int{1, 8, 64}, []float64{80, 15, 5}), nil
	}
	var spans []int
	var weights []float64
	for _, part := range strings.Split(spec, ",") {
		sw := strings.SplitN(part, ":", 2)
		if len(sw) != 2 {
			return ValueDist{}, fmt.Errorf("value-dist %q: want span:weight pairs", spec)
		}
		span, err1 := strconv.Atoi(strings.TrimSpace(sw[0]))
		weight, err2 := strconv.ParseFloat(strings.TrimSpace(sw[1]), 64)
		if err1 != nil || err2 != nil || span < 1 || span > MaxMixSpan || weight <= 0 {
			return ValueDist{}, fmt.Errorf("value-dist %q: bad pair %q (span 1..%d, weight > 0)", spec, part, MaxMixSpan)
		}
		spans = append(spans, span)
		weights = append(weights, weight)
	}
	if len(spans) == 0 {
		return ValueDist{}, fmt.Errorf("value-dist %q: empty", spec)
	}
	return mustValueDist(spec, spans, weights), nil
}

func mustValueDist(name string, spans []int, weights []float64) ValueDist {
	var total float64
	for _, w := range weights {
		total += w
	}
	cum := make([]float64, len(weights))
	var acc float64
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1
	return ValueDist{name: name, spans: spans, weights: weights, cum: cum}
}

// String names the mixture (round-trips the parse spec for presets).
func (d ValueDist) String() string { return d.name }

// MaxSpan returns the largest span in the mixture.
func (d ValueDist) MaxSpan() int {
	max := 1
	for _, s := range d.spans {
		if s > max {
			max = s
		}
	}
	return max
}

// MeanSpan returns the expected chunks per record under the mixture.
func (d ValueDist) MeanSpan() float64 {
	if len(d.spans) == 0 {
		return 1
	}
	var mean, prev float64
	for i, s := range d.spans {
		mean += float64(s) * (d.cum[i] - prev)
		prev = d.cum[i]
	}
	return mean
}

// SpanFor returns the span of a tenant's record — deterministic, so
// independent workers agree on every record's size.
func (d ValueDist) SpanFor(tenant int, id uint64) int {
	if len(d.spans) <= 1 {
		if len(d.spans) == 1 {
			return d.spans[0]
		}
		return 1
	}
	u := float64(splitmix64(id*0x9e3779b97f4a7c15^uint64(tenant+1)<<mixTenSh)>>11) / (1 << 53)
	i := sort.SearchFloat64s(d.cum, u)
	if i >= len(d.spans) {
		i = len(d.spans) - 1
	}
	return d.spans[i]
}

// splitmix64 is the SplitMix64 finaliser — a cheap, well-mixed hash
// for deterministic per-record decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// MixConfig parameterises a Mix. Fractions must sum to 1.
type MixConfig struct {
	// Records is the per-tenant preloaded keyspace (ids 1..Records).
	Records uint64
	// Theta is the Zipfian skew over existing records; 0 draws
	// uniformly.
	Theta float64
	// Tenants is the number of isolated key prefixes (≥ 1).
	Tenants int
	// ReadFrac, UpdateFrac, InsertFrac and RMWFrac set the operation
	// mix.
	ReadFrac   float64
	UpdateFrac float64
	InsertFrac float64
	RMWFrac    float64
	// Flash optionally schedules a hot-key flash crowd.
	Flash *FlashCrowd
	// Values is the value-size mixture (zero value = single-chunk).
	Values ValueDist
	// Seed makes the run reproducible.
	Seed int64
}

// MixFracs returns the operation fractions of a classic YCSB mix
// letter, for configuring a Mix from the familiar names.
func MixFracs(workload byte) (read, update, insert, rmw float64, err error) {
	switch workload {
	case 'a':
		return 0.5, 0.5, 0, 0, nil
	case 'b':
		return 0.95, 0.05, 0, 0, nil
	case 'c':
		return 1, 0, 0, 0, nil
	case 'd':
		return 0.95, 0, 0.05, 0, nil
	case 'f':
		return 0.5, 0, 0, 0.5, nil
	}
	return 0, 0, 0, 0, fmt.Errorf("trace: unknown YCSB mix %q (want a, b, c, d or f)", string(workload))
}

// Step is one operation of a Mix run. A step of span s expands to s
// wire operations (chunks 0..s-1 of Key's record), and an RMW step to
// a read followed by a write of the same chunks.
type Step struct {
	Op     YCSBOp
	Tenant int
	Key    layout.Key
	Value  uint64
	Span   int
	// Hot marks flash-crowd operations (for reporting).
	Hot bool
}

// Mix generates the workload-lab operation stream. Deterministic for a
// given config: the same seed yields the same step sequence, and the
// per-tenant step streams are independent of how steps interleave
// across tenants only in aggregate — use Next for a round-robin tenant
// schedule or NextFor to drive one tenant from a dedicated connection.
type Mix struct {
	cfg MixConfig

	rng     *rand.Rand
	zipf    *Zipfian
	maxKey  []uint64
	counter uint64
	rr      int
}

// NewMix validates the config and creates a generator positioned at
// the first operation.
func NewMix(cfg MixConfig) (*Mix, error) {
	if cfg.Records < 2 {
		return nil, fmt.Errorf("trace: mix needs records >= 2, got %d", cfg.Records)
	}
	if cfg.Records > mixIDMask/2 {
		return nil, fmt.Errorf("trace: mix records %d exceeds the %d-bit id space", cfg.Records, mixIDBits)
	}
	if cfg.Tenants < 1 || cfg.Tenants > MaxMixTenants {
		return nil, fmt.Errorf("trace: mix needs 1..%d tenants, got %d", MaxMixTenants, cfg.Tenants)
	}
	sum := cfg.ReadFrac + cfg.UpdateFrac + cfg.InsertFrac + cfg.RMWFrac
	if sum < 0.999 || sum > 1.001 ||
		cfg.ReadFrac < 0 || cfg.UpdateFrac < 0 || cfg.InsertFrac < 0 || cfg.RMWFrac < 0 {
		return nil, fmt.Errorf("trace: mix fractions must be non-negative and sum to 1, got %g", sum)
	}
	if cfg.Theta < 0 {
		return nil, fmt.Errorf("trace: mix needs theta >= 0, got %g", cfg.Theta)
	}
	if f := cfg.Flash; f != nil && (f.Peak < 0 || f.Peak > 1 || (f.Peak > 0 && f.Ramp == 0)) {
		return nil, fmt.Errorf("trace: flash crowd needs 0 <= peak <= 1 and ramp > 0, got peak %g ramp %d", f.Peak, f.Ramp)
	}
	if len(cfg.Values.spans) == 0 {
		cfg.Values = mustValueDist("fixed", []int{1}, []float64{1})
	}
	m := &Mix{cfg: cfg}
	m.Reset()
	return m, nil
}

// Config returns the generator's (validated) configuration.
func (m *Mix) Config() MixConfig { return m.cfg }

// Reset rewinds the generator to the first operation.
func (m *Mix) Reset() {
	m.rng = rand.New(rand.NewSource(m.cfg.Seed))
	if m.cfg.Theta > 0 {
		m.zipf = NewZipfian(m.cfg.Seed^0x1f3a5c96, m.cfg.Records, m.cfg.Theta)
	} else {
		m.zipf = nil
	}
	m.maxKey = make([]uint64, m.cfg.Tenants)
	for t := range m.maxKey {
		m.maxKey[t] = m.cfg.Records
	}
	m.counter = 0
	m.rr = 0
}

// Ops returns how many steps have been generated.
func (m *Mix) Ops() uint64 { return m.counter }

// Next produces the next step, rotating round-robin across tenants.
func (m *Mix) Next() Step {
	t := m.rr
	m.rr++
	if m.rr == m.cfg.Tenants {
		m.rr = 0
	}
	return m.NextFor(t)
}

// NextFor produces the next step pinned to one tenant — for drivers
// that dedicate connections (and latency accounting) per tenant.
func (m *Mix) NextFor(tenant int) Step {
	m.counter++
	if p := m.cfg.Flash.HotProb(m.counter); p > 0 && m.rng.Float64() < p {
		// Flash crowd: the tenant's hottest record (id 1, which is
		// also the Zipfian's rank-0 key) absorbs the spike. Writes in
		// the mix become updates of the hot key — a flash crowd
		// hammers one existing object, it doesn't mint new ones.
		op := YCSBUpdate
		if m.rng.Float64() < m.readShare() {
			op = YCSBRead
		}
		return m.step(op, tenant, 1, true)
	}
	r := m.rng.Float64()
	switch {
	case r < m.cfg.ReadFrac:
		return m.step(YCSBRead, tenant, m.pick(tenant), false)
	case r < m.cfg.ReadFrac+m.cfg.UpdateFrac:
		return m.step(YCSBUpdate, tenant, m.pick(tenant), false)
	case r < m.cfg.ReadFrac+m.cfg.UpdateFrac+m.cfg.InsertFrac:
		m.maxKey[tenant]++
		return m.step(YCSBInsert, tenant, m.maxKey[tenant], false)
	default:
		return m.step(YCSBRMW, tenant, m.pick(tenant), false)
	}
}

// readShare is the read fraction of the non-insert mix, used to keep a
// flash crowd's read/write ratio consistent with the base workload.
func (m *Mix) readShare() float64 {
	w := m.cfg.ReadFrac + m.cfg.UpdateFrac + m.cfg.RMWFrac
	if w <= 0 {
		return 0
	}
	return m.cfg.ReadFrac / w
}

func (m *Mix) step(op YCSBOp, tenant int, id uint64, hot bool) Step {
	return Step{
		Op:     op,
		Tenant: tenant,
		Key:    MixKey(tenant, id, 0),
		Value:  m.counter,
		Span:   m.cfg.Values.SpanFor(tenant, id),
		Hot:    hot,
	}
}

// pick draws an existing record id in [1, maxKey] for the tenant —
// Zipfian-skewed when theta > 0, uniform otherwise.
func (m *Mix) pick(tenant int) uint64 {
	var id uint64
	if m.zipf != nil {
		id = m.zipf.Next() + 1
	} else {
		id = uint64(m.rng.Int63n(int64(m.cfg.Records))) + 1
	}
	if max := m.maxKey[tenant]; id > max {
		id = max
	}
	return id
}
