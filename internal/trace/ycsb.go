package trace

import (
	"math/rand"

	"grouphash/internal/layout"
)

// YCSB-style mixed workloads (Cooper et al., SoCC 2010) — the standard
// key-value benchmark suite a persistent hash table gets evaluated on
// in production settings. The paper uses single-operation phases; the
// YCSB mixes exercise the same operations under realistic interleaving
// and skew, and drive the extension experiments.
//
// Core workload mixes implemented:
//
//	A  update-heavy   50% read / 50% update, zipfian keys
//	B  read-mostly    95% read /  5% update, zipfian keys
//	C  read-only     100% read, zipfian keys
//	D  read-latest   95% read /  5% insert, reads skewed to recent keys
//	F  read-modify-write  50% read / 50% RMW, zipfian keys

// YCSBOp is the operation class of one workload step.
type YCSBOp int

// Operation classes.
const (
	YCSBRead YCSBOp = iota
	YCSBUpdate
	YCSBInsert
	YCSBRMW
)

// String names the op class.
func (op YCSBOp) String() string {
	switch op {
	case YCSBRead:
		return "read"
	case YCSBUpdate:
		return "update"
	case YCSBInsert:
		return "insert"
	case YCSBRMW:
		return "rmw"
	}
	return "unknown"
}

// YCSBStep is one operation of a YCSB run.
type YCSBStep struct {
	Op   YCSBOp
	Item Item
}

// YCSB generates a workload mix over a keyspace of sequentially
// inserted records (keys 1..Records loaded first, inserts extending
// it). Deterministic for a given (workload, seed).
type YCSB struct {
	workload byte
	records  uint64
	seed     int64

	rng     *rand.Rand
	zipf    *Zipfian
	maxKey  uint64
	counter uint64
}

// NewYCSB creates a generator for workload 'a', 'b', 'c', 'd' or 'f'
// over the given loaded record count.
func NewYCSB(workload byte, records uint64, seed int64) *YCSB {
	switch workload {
	case 'a', 'b', 'c', 'd', 'f':
	default:
		panic("trace: YCSB workload must be one of a, b, c, d, f")
	}
	if records == 0 {
		panic("trace: YCSB needs a loaded record count")
	}
	y := &YCSB{workload: workload, records: records, seed: seed}
	y.Reset()
	return y
}

// Name identifies the workload.
func (y *YCSB) Name() string { return "YCSB-" + string(rune(y.workload+'A'-'a')) }

// KeyBytes implements the trace key-size convention (8-byte keys).
func (y *YCSB) KeyBytes() int { return 8 }

// Records returns the initial record count (keys 1..Records must be
// loaded before running the mix).
func (y *YCSB) Records() uint64 { return y.records }

// Reset rewinds the generator.
func (y *YCSB) Reset() {
	y.rng = rand.New(rand.NewSource(y.seed))
	// YCSB's default zipfian constant, at its actual value now that
	// the tunable generator exists (earlier revisions approximated it
	// with rand.NewZipf s=1.001, which needs s > 1).
	y.zipf = NewZipfian(y.seed ^ 0x5bd1e995, y.records, 0.99)
	y.maxKey = y.records
	y.counter = 0
}

// pick draws a skewed existing key in [1, maxKey].
func (y *YCSB) pick() uint64 {
	k := y.zipf.Next() + 1
	if k > y.maxKey {
		k = y.maxKey
	}
	return k
}

// pickLatest draws a key skewed towards the most recent inserts
// (workload D's "latest" distribution): rank 0 is the newest key.
func (y *YCSB) pickLatest() uint64 {
	off := y.zipf.Next()
	if off >= y.maxKey {
		off = y.maxKey - 1
	}
	return y.maxKey - off
}

// Next produces the next step of the mix.
func (y *YCSB) Next() YCSBStep {
	y.counter++
	r := y.rng.Float64()
	switch y.workload {
	case 'a':
		if r < 0.5 {
			return YCSBStep{Op: YCSBRead, Item: Item{Key: key64(y.pick())}}
		}
		return YCSBStep{Op: YCSBUpdate, Item: Item{Key: key64(y.pick()), Value: y.counter}}
	case 'b':
		if r < 0.95 {
			return YCSBStep{Op: YCSBRead, Item: Item{Key: key64(y.pick())}}
		}
		return YCSBStep{Op: YCSBUpdate, Item: Item{Key: key64(y.pick()), Value: y.counter}}
	case 'c':
		return YCSBStep{Op: YCSBRead, Item: Item{Key: key64(y.pick())}}
	case 'd':
		if r < 0.95 {
			return YCSBStep{Op: YCSBRead, Item: Item{Key: key64(y.pickLatest())}}
		}
		y.maxKey++
		return YCSBStep{Op: YCSBInsert, Item: Item{Key: key64(y.maxKey), Value: y.counter}}
	default: // 'f'
		if r < 0.5 {
			return YCSBStep{Op: YCSBRead, Item: Item{Key: key64(y.pick())}}
		}
		return YCSBStep{Op: YCSBRMW, Item: Item{Key: key64(y.pick()), Value: y.counter}}
	}
}

// key64 builds a one-word key (YCSB keys are dense record ids; ours
// start at 1 because the compact layout reserves 0).
func key64(id uint64) layout.Key {
	return layout.Key{Lo: id}
}
