package engine

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"grouphash/internal/core"
	"grouphash/internal/layout"
)

// TestEngineConcurrentOracle is the flagship property test ported to
// the engine seam and pointed at the adapter-wrapped comparison
// schemes: several workers drive randomised single-op and batch
// streams on disjoint key ranges, each against its own map oracle,
// while a chaos goroutine hammers the read-only surface (Len,
// LoadFactor, Quiesce, CheckConsistency). The adapter serialises the
// schemes behind a mutex, so what this proves under -race is that the
// locking really covers every entry point — hooks, ApplyBatch's
// applied callback, SnapshotWriterAt's two-phase copy — and that the
// façade semantics (upsert Put, duplicate-tolerant Insert,
// non-decrementing absent Delete) hold under interleaving. Each phase
// ends with a full oracle sweep and a snapshot → Load round trip.
func TestEngineConcurrentOracle(t *testing.T) {
	for _, name := range []string{"pfht", "linearprobe-l", "chained"} {
		t.Run(name, func(t *testing.T) {
			const (
				workers = 4
				phases  = 2
				opsPer  = 1500
				span    = 600 // keys per worker; 2400 total in 4096 capacity
			)
			spec := Spec{Name: name, Capacity: 1 << 12}
			eng, err := New(spec)
			if err != nil {
				t.Fatal(err)
			}
			key := func(w int, n uint64) layout.Key {
				lo := uint64(w+1)<<32 | n
				return layout.Key{Lo: lo, Hi: lo * 0x9e3779b97f4a7c15}
			}
			oracles := make([]map[uint64]uint64, workers)
			for w := range oracles {
				oracles[w] = make(map[uint64]uint64)
			}

			verify := func(e Engine, phase int) {
				t.Helper()
				var total uint64
				for w, oracle := range oracles {
					total += uint64(len(oracle))
					for n := uint64(0); n < span; n++ {
						k := key(w, n)
						want, present := oracle[k.Lo]
						got, ok := e.Get(k)
						if ok != present || (present && got != want) {
							t.Fatalf("phase %d: Get(w=%d n=%d) = (%d, %v), oracle (%d, %v)",
								phase, w, n, got, ok, want, present)
						}
					}
				}
				if got := e.Len(); got != total {
					t.Fatalf("phase %d: Len = %d, oracles hold %d", phase, got, total)
				}
				if bad := e.CheckConsistency(); len(bad) != 0 {
					t.Fatalf("phase %d: inconsistencies: %v", phase, bad)
				}
			}

			dir := t.TempDir()
			for phase := 0; phase < phases; phase++ {
				stop := make(chan struct{})
				var chaos sync.WaitGroup
				chaos.Add(1)
				go func() {
					defer chaos.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						eng.Quiesce(func() {})
						_ = eng.Len()
						_ = eng.LoadFactor()
						_ = eng.CheckConsistency()
					}
				}()

				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(phase*workers + w + 1)))
						oracle := oracles[w]
						var sc core.BatchScratch
						for op := 0; op < opsPer; op++ {
							switch rng.Intn(10) {
							case 0: // ApplyBatch burst: mixed puts and deletes
								ops := make([]core.BatchOp, 8)
								for i := range ops {
									n := rng.Uint64() % span
									k := key(w, n)
									if rng.Intn(3) == 0 {
										ops[i] = core.BatchOp{Kind: core.BatchDelete, Key: k}
									} else {
										ops[i] = core.BatchOp{Kind: core.BatchPut, Key: k, Value: rng.Uint64()}
									}
								}
								out := make([]core.BatchResult, len(ops))
								eng.ApplyBatch(ops, out, &sc, nil)
								for i, bop := range ops {
									if out[i].Err != nil {
										t.Errorf("batch op %d: %v", i, out[i].Err)
										return
									}
									if bop.Kind == core.BatchDelete {
										_, present := oracle[bop.Key.Lo]
										if out[i].Found != present {
											t.Errorf("batch delete found=%v, oracle present=%v", out[i].Found, present)
											return
										}
										delete(oracle, bop.Key.Lo)
									} else {
										_, present := oracle[bop.Key.Lo]
										if out[i].Found != present {
											t.Errorf("batch put found=%v, oracle present=%v", out[i].Found, present)
											return
										}
										oracle[bop.Key.Lo] = bop.Value
									}
								}
							case 1: // MGet sweep
								keys := make([]layout.Key, 8)
								for i := range keys {
									keys[i] = key(w, rng.Uint64()%span)
								}
								vals := make([]uint64, len(keys))
								oks := make([]bool, len(keys))
								eng.MGet(keys, vals, oks)
								for i, k := range keys {
									want, present := oracle[k.Lo]
									if oks[i] != present || (present && vals[i] != want) {
										t.Errorf("MGet(%x) = (%d, %v), oracle (%d, %v)",
											k.Lo, vals[i], oks[i], want, present)
										return
									}
								}
							case 2, 3: // Delete
								k := key(w, rng.Uint64()%span)
								_, present := oracle[k.Lo]
								if ok := eng.Delete(k); ok != present {
									t.Errorf("Delete(%x) = %v, oracle present=%v", k.Lo, ok, present)
									return
								}
								delete(oracle, k.Lo)
							default: // Put (upsert)
								k := key(w, rng.Uint64()%span)
								v := rng.Uint64()
								if err := eng.Put(k, v); err != nil {
									t.Errorf("Put(%x): %v", k.Lo, err)
									return
								}
								oracle[k.Lo] = v
							}
						}
					}(w)
				}
				wg.Wait()
				close(stop)
				chaos.Wait()
				if t.Failed() {
					t.Fatalf("phase %d: worker errors above", phase)
				}
				verify(eng, phase)

				// Persistence leg: snapshot, reload, re-verify, continue the
				// next phase on the reloaded engine.
				img := filepath.Join(dir, "phase.pmfs")
				if err := eng.Snapshot(img); err != nil {
					t.Fatalf("phase %d: snapshot: %v", phase, err)
				}
				re, _, err := Load(spec, img)
				if err != nil {
					t.Fatalf("phase %d: Load: %v", phase, err)
				}
				verify(re, phase)
				eng = re
			}
		})
	}
}
