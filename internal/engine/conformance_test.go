package engine

// The engine conformance suite: one set of table-driven contract tests
// run identically against all five engines (plus the -L undo-WAL
// variants). The suite asserts the FAÇADE contract — zero-key
// rejection under the 8-byte layout, Put-upserts-Insert-duplicates,
// delete-absent leaves the count alone, NaN-free LoadFactor, snapshot
// round-trips, idempotent recovery. When a scheme disagrees, the
// scheme gets fixed, never the suite.

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"grouphash/internal/core"
	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/stats"
)

// conformanceSpecs lists every engine build the suite runs against.
func conformanceSpecs() []Spec {
	return []Spec{
		{Name: "grouphash", Capacity: 1 << 10},
		{Name: "pfht", Capacity: 1 << 10},
		{Name: "pfht", Capacity: 1 << 10, Logged: true},
		{Name: "pathhash", Capacity: 1 << 10},
		{Name: "pathhash", Capacity: 1 << 10, Logged: true},
		{Name: "chained", Capacity: 1 << 10},
		{Name: "linearprobe", Capacity: 1 << 10},
		{Name: "linearprobe", Capacity: 1 << 10, Logged: true},
	}
}

func specLabel(spec Spec) string {
	if spec.Logged {
		return spec.Name + "-l"
	}
	return spec.Name
}

// forEachEngine runs fn as a subtest per conformance spec.
func forEachEngine(t *testing.T, fn func(t *testing.T, spec Spec, e Engine)) {
	t.Helper()
	for _, spec := range conformanceSpecs() {
		spec := spec
		t.Run(specLabel(spec), func(t *testing.T) {
			e, err := New(spec)
			if err != nil {
				t.Fatalf("New(%+v): %v", spec, err)
			}
			fn(t, spec, e)
		})
	}
}

func key(i uint64) layout.Key {
	return layout.Key{Lo: i, Hi: i * 0x9e3779b97f4a7c15}
}

// requireClean fails the test if the engine's own audit finds
// violations — every conformance scenario ends with it, so any
// count/bitmap/placement damage a contract test causes is caught even
// when the observable return values look right.
func requireClean(t *testing.T, e Engine) {
	t.Helper()
	if bad := e.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("CheckConsistency: %v", bad)
	}
}

func TestConformanceNames(t *testing.T) {
	forEachEngine(t, func(t *testing.T, spec Spec, e Engine) {
		if e.Name() != spec.Name {
			t.Fatalf("Name() = %q, want %q", e.Name(), spec.Name)
		}
	})
}

func TestConformanceZeroKeyRejected(t *testing.T) {
	forEachEngine(t, func(t *testing.T, spec Spec, e Engine) {
		zero := layout.Key{}
		if err := e.Insert(zero, 7); !errors.Is(err, hashtab.ErrInvalidKey) {
			t.Errorf("Insert(zero) = %v, want ErrInvalidKey", err)
		}
		if err := e.Put(zero, 7); !errors.Is(err, hashtab.ErrInvalidKey) {
			t.Errorf("Put(zero) = %v, want ErrInvalidKey", err)
		}
		if _, ok := e.Get(zero); ok {
			t.Error("Get(zero) found an item in an empty table")
		}
		if e.Delete(zero) {
			t.Error("Delete(zero) = true in an empty table")
		}
		if e.Len() != 0 {
			t.Errorf("Len = %d after rejected zero-key ops, want 0", e.Len())
		}
		// The zero key must stay invisible even when the table has
		// items: an empty cell's key word is 0, so an accepted zero
		// key would false-positive against empty cells.
		for i := uint64(1); i <= 64; i++ {
			if err := e.Put(key(i), i); err != nil {
				t.Fatalf("Put(%d): %v", i, err)
			}
		}
		if _, ok := e.Get(zero); ok {
			t.Error("Get(zero) false-positived against a populated table")
		}
		if e.Delete(zero) {
			t.Error("Delete(zero) = true against a populated table")
		}
		if e.Len() != 64 {
			t.Errorf("Len = %d, want 64", e.Len())
		}
		requireClean(t, e)
	})
}

func TestConformancePutUpserts(t *testing.T) {
	forEachEngine(t, func(t *testing.T, spec Spec, e Engine) {
		k := key(1)
		if err := e.Put(k, 100); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if v, ok := e.Get(k); !ok || v != 100 {
			t.Fatalf("Get = (%d, %t), want (100, true)", v, ok)
		}
		if err := e.Put(k, 200); err != nil {
			t.Fatalf("Put (overwrite): %v", err)
		}
		if v, ok := e.Get(k); !ok || v != 200 {
			t.Fatalf("Get after overwrite = (%d, %t), want (200, true)", v, ok)
		}
		if e.Len() != 1 {
			t.Fatalf("Len = %d after upsert of one key, want 1", e.Len())
		}
		requireClean(t, e)
	})
}

func TestConformanceInsertAllowsDuplicates(t *testing.T) {
	forEachEngine(t, func(t *testing.T, spec Spec, e Engine) {
		// Algorithm-1 semantics: Insert does no existing-key check, so
		// a duplicate occupies a second cell and Delete removes one
		// instance at a time.
		k := key(2)
		if err := e.Insert(k, 1); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if err := e.Insert(k, 2); err != nil {
			t.Fatalf("Insert (duplicate): %v", err)
		}
		if e.Len() != 2 {
			t.Fatalf("Len = %d after duplicate Insert, want 2", e.Len())
		}
		if !e.Delete(k) {
			t.Fatal("Delete #1 = false, want true")
		}
		if e.Len() != 1 {
			t.Fatalf("Len = %d after first Delete, want 1", e.Len())
		}
		if !e.Delete(k) {
			t.Fatal("Delete #2 = false, want true")
		}
		if e.Delete(k) {
			t.Fatal("Delete #3 = true on an absent key")
		}
		if e.Len() != 0 {
			t.Fatalf("Len = %d, want 0", e.Len())
		}
		requireClean(t, e)
	})
}

func TestConformanceDeleteAbsentLeavesCount(t *testing.T) {
	forEachEngine(t, func(t *testing.T, spec Spec, e Engine) {
		for i := uint64(1); i <= 16; i++ {
			if err := e.Insert(key(i), i); err != nil {
				t.Fatalf("Insert(%d): %v", i, err)
			}
		}
		if e.Delete(key(999)) {
			t.Error("Delete(absent) = true")
		}
		if e.Len() != 16 {
			t.Errorf("Len = %d after delete-absent, want 16 (count must not move)", e.Len())
		}
		requireClean(t, e)
	})
}

func TestConformanceMGet(t *testing.T) {
	forEachEngine(t, func(t *testing.T, spec Spec, e Engine) {
		for i := uint64(1); i <= 32; i++ {
			if err := e.Put(key(i), i*10); err != nil {
				t.Fatalf("Put(%d): %v", i, err)
			}
		}
		keys := make([]layout.Key, 0, 48)
		for i := uint64(1); i <= 48; i++ {
			keys = append(keys, key(i)) // 33..48 are absent
		}
		vals := make([]uint64, len(keys))
		found := make([]bool, len(keys))
		e.MGet(keys, vals, found)
		for i := range keys {
			wantFound := uint64(i) < 32
			if found[i] != wantFound {
				t.Fatalf("MGet key %d: found = %t, want %t", i+1, found[i], wantFound)
			}
			if wantFound && vals[i] != uint64(i+1)*10 {
				t.Fatalf("MGet key %d: val = %d, want %d", i+1, vals[i], uint64(i+1)*10)
			}
		}
	})
}

func TestConformanceApplyBatch(t *testing.T) {
	forEachEngine(t, func(t *testing.T, spec Spec, e Engine) {
		if err := e.Put(key(1), 1); err != nil {
			t.Fatal(err)
		}
		ops := []core.BatchOp{
			{Kind: core.BatchPut, Key: key(1), Value: 11},    // upsert existing → Found
			{Kind: core.BatchPut, Key: key(2), Value: 22},    // fresh put
			{Kind: core.BatchInsert, Key: key(3), Value: 33}, // insert
			{Kind: core.BatchDelete, Key: key(2)},            // delete just-written (same batch)
			{Kind: core.BatchDelete, Key: key(99)},           // delete absent → NOT applied
			{Kind: core.BatchPut, Key: layout.Key{}, Value: 1}, // zero key → error
		}
		out := make([]core.BatchResult, len(ops))
		var sc core.BatchScratch
		var applied []int
		e.ApplyBatch(ops, out, &sc, func(idx []int) {
			applied = append(applied, idx...)
		})

		if !out[0].Found || out[0].Err != nil {
			t.Errorf("op0 (upsert existing) = %+v, want Found", out[0])
		}
		if out[1].Found || out[1].Err != nil {
			t.Errorf("op1 (fresh put) = %+v, want !Found", out[1])
		}
		if out[2].Err != nil {
			t.Errorf("op2 (insert) err = %v", out[2].Err)
		}
		if !out[3].Found || out[3].Err != nil {
			t.Errorf("op3 (delete present) = %+v, want Found", out[3])
		}
		if out[4].Found || out[4].Err != nil {
			t.Errorf("op4 (delete absent) = %+v, want !Found no err", out[4])
		}
		if !errors.Is(out[5].Err, hashtab.ErrInvalidKey) {
			t.Errorf("op5 (zero key) err = %v, want ErrInvalidKey", out[5].Err)
		}

		// applied carries exactly the mutating ops: 0,1,2,3 — never the
		// absent delete (4) or the failed op (5), which must not reach
		// the oplog.
		got := map[int]bool{}
		for _, i := range applied {
			if got[i] {
				t.Fatalf("op %d reported applied twice", i)
			}
			got[i] = true
		}
		for _, i := range []int{0, 1, 2, 3} {
			if !got[i] {
				t.Errorf("op %d missing from applied set %v", i, applied)
			}
		}
		if got[4] || got[5] {
			t.Errorf("non-mutating op in applied set %v", applied)
		}

		if v, ok := e.Get(key(1)); !ok || v != 11 {
			t.Errorf("Get(1) = (%d, %t), want (11, true)", v, ok)
		}
		if _, ok := e.Get(key(2)); ok {
			t.Error("Get(2) found a key deleted in the same batch")
		}
		if e.Len() != 2 { // key 1 + key 3
			t.Errorf("Len = %d, want 2", e.Len())
		}
		requireClean(t, e)
	})
}

func TestConformanceHooks(t *testing.T) {
	forEachEngine(t, func(t *testing.T, spec Spec, e Engine) {
		fired := 0
		hook := func() { fired++ }
		if err := e.PutHook(key(1), 1, hook); err != nil || fired != 1 {
			t.Fatalf("PutHook: err=%v fired=%d", err, fired)
		}
		if err := e.InsertHook(key(2), 2, hook); err != nil || fired != 2 {
			t.Fatalf("InsertHook: err=%v fired=%d", err, fired)
		}
		if !e.DeleteHook(key(2), hook) || fired != 3 {
			t.Fatalf("DeleteHook(present): fired=%d", fired)
		}
		// Non-mutations must not fire the hook: nothing to log.
		if e.DeleteHook(key(99), hook) {
			t.Fatal("DeleteHook(absent) = true")
		}
		if err := e.PutHook(layout.Key{}, 1, hook); !errors.Is(err, hashtab.ErrInvalidKey) {
			t.Fatalf("PutHook(zero) = %v, want ErrInvalidKey", err)
		}
		if fired != 3 {
			t.Fatalf("hook fired %d times, want 3 (non-mutations must not fire)", fired)
		}
		requireClean(t, e)
	})
}

func TestConformanceLoadFactorNeverNaN(t *testing.T) {
	forEachEngine(t, func(t *testing.T, spec Spec, e Engine) {
		check := func(when string) {
			lf := e.LoadFactor()
			if math.IsNaN(lf) || math.IsInf(lf, 0) || lf < 0 {
				t.Fatalf("LoadFactor %s = %v", when, lf)
			}
		}
		check("on empty table")
		if err := e.Put(key(1), 1); err != nil {
			t.Fatal(err)
		}
		check("after put")
		if e.Capacity() == 0 {
			t.Fatal("Capacity = 0")
		}
		if e.Expanding() {
			t.Fatal("Expanding = true on an idle table")
		}
	})
}

func TestConformanceSnapshotRoundTrip(t *testing.T) {
	forEachEngine(t, func(t *testing.T, spec Spec, e Engine) {
		const n = 200
		for i := uint64(1); i <= n; i++ {
			if err := e.Put(key(i), i*3); err != nil {
				t.Fatalf("Put(%d): %v", i, err)
			}
		}
		path := filepath.Join(t.TempDir(), "snap.img")

		// SnapshotWriterAt is the server's path: the cut fixes the
		// oplog mark inside the writer-exclusion window and the image
		// must carry it back out through Load.
		write, err := e.SnapshotWriterAt(func() (uint64, error) { return 42, nil })
		if err != nil {
			t.Fatalf("SnapshotWriterAt: %v", err)
		}
		if err := write(path); err != nil {
			t.Fatalf("write: %v", err)
		}

		re, mark, err := Load(spec, path)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		if mark != 42 {
			t.Fatalf("mark = %d, want 42", mark)
		}
		if re.Len() != n {
			t.Fatalf("reloaded Len = %d, want %d", re.Len(), n)
		}
		for i := uint64(1); i <= n; i++ {
			if v, ok := re.Get(key(i)); !ok || v != i*3 {
				t.Fatalf("reloaded Get(%d) = (%d, %t), want (%d, true)", i, v, ok, i*3)
			}
		}
		// The reloaded engine must be fully live, not read-only.
		if err := re.Put(key(n+1), 1); err != nil {
			t.Fatalf("Put on reloaded engine: %v", err)
		}
		if !re.Delete(key(1)) {
			t.Fatal("Delete on reloaded engine = false")
		}
		requireClean(t, re)
	})
}

// TestConformanceSnapshotSpecMismatch pins the adapter images' spec
// fingerprint: reopening with different geometry flags must fail
// loudly instead of silently misreading every cell. (The flagship's
// image is self-describing, so it is exempt.)
func TestConformanceSnapshotSpecMismatch(t *testing.T) {
	forEachEngine(t, func(t *testing.T, spec Spec, e Engine) {
		if spec.Name == "grouphash" {
			t.Skip("flagship images are self-describing")
		}
		if err := e.Put(key(1), 1); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "snap.img")
		if err := e.Snapshot(path); err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		bad := spec
		bad.Capacity = spec.Capacity * 2
		if _, _, err := Load(bad, path); err == nil {
			t.Fatal("Load with mismatched capacity succeeded, want spec-fingerprint error")
		}
		other := spec
		other.Seed = spec.Seed + 1
		if _, _, err := Load(other, path); err == nil {
			t.Fatal("Load with mismatched seed succeeded, want spec-fingerprint error")
		}
	})
}

func TestConformanceRecoveryIdempotent(t *testing.T) {
	forEachEngine(t, func(t *testing.T, spec Spec, e Engine) {
		for i := uint64(1); i <= 100; i++ {
			if err := e.Put(key(i), i); err != nil {
				t.Fatalf("Put(%d): %v", i, err)
			}
		}
		for i := uint64(1); i <= 50; i++ {
			if !e.Delete(key(i)) {
				t.Fatalf("Delete(%d) = false", i)
			}
		}
		want := e.Len()
		if _, err := e.Recover(); err != nil {
			t.Fatalf("Recover #1: %v", err)
		}
		rep, err := e.Recover()
		if err != nil {
			t.Fatalf("Recover #2: %v", err)
		}
		// Recovery of an already-consistent table must be a no-op: no
		// correction on the second pass, nothing undone, count intact.
		if rep.CountCorrected {
			t.Error("second Recover corrected the count on a consistent table")
		}
		if rep.UndoneOps != 0 {
			t.Errorf("second Recover undid %d ops on a quiesced table", rep.UndoneOps)
		}
		if e.Len() != want {
			t.Errorf("Len = %d after recovery, want %d", e.Len(), want)
		}
		for i := uint64(51); i <= 100; i++ {
			if v, ok := e.Get(key(i)); !ok || v != i {
				t.Fatalf("Get(%d) after recovery = (%d, %t), want (%d, true)", i, v, ok, i)
			}
		}
		requireClean(t, e)
	})
}

// TestConformanceFullTableDrain fills each engine to structural
// capacity (ErrTableFull) and then deletes every inserted key. This is
// the regression test for the linear-probing backward-shift walk,
// which spun forever on a 100% full table (no empty cell terminates
// the cluster scan), and generally pins that delete works at the
// occupancy extreme on every scheme.
func TestConformanceFullTableDrain(t *testing.T) {
	for _, spec := range conformanceSpecs() {
		spec := spec
		spec.Capacity = 64 // tiny: filling to ErrTableFull must be cheap
		t.Run(specLabel(spec), func(t *testing.T) {
			if spec.Name == "grouphash" {
				t.Skip("flagship expands instead of filling up")
			}
			e, err := New(spec)
			if err != nil {
				t.Fatal(err)
			}
			var stored []layout.Key
			for i := uint64(1); ; i++ {
				k := key(i)
				err := e.Insert(k, i)
				if errors.Is(err, hashtab.ErrTableFull) {
					break
				}
				if err != nil {
					t.Fatalf("Insert(%d): %v", i, err)
				}
				stored = append(stored, k)
				if uint64(len(stored)) > e.Capacity() {
					t.Fatalf("stored %d items into capacity %d without ErrTableFull", len(stored), e.Capacity())
				}
			}
			if e.Len() != uint64(len(stored)) {
				t.Fatalf("Len = %d, want %d", e.Len(), len(stored))
			}
			for i, k := range stored {
				if !e.Delete(k) {
					t.Fatalf("Delete #%d = false on a full-table drain", i)
				}
			}
			if e.Len() != 0 {
				t.Fatalf("Len = %d after drain, want 0", e.Len())
			}
			requireClean(t, e)
		})
	}
}

func TestConformanceMetricsRegistration(t *testing.T) {
	forEachEngine(t, func(t *testing.T, spec Spec, e Engine) {
		r := stats.NewRegistry()
		e.RegisterMetrics(r, "gh")
		if err := e.Put(key(1), 1); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		text := buf.String()
		for _, name := range []string{"gh_store_items", "gh_store_capacity_cells", "gh_store_load_factor"} {
			if !strings.Contains(text, name) {
				t.Errorf("rendered metrics missing %s", name)
			}
		}
		if strings.Contains(text, "NaN") {
			t.Error("rendered metrics contain NaN")
		}
	})
}

func TestEngineSpecNormalization(t *testing.T) {
	if _, err := New(Spec{Name: "nosuch"}); err == nil {
		t.Error("New(nosuch) succeeded")
	}
	if _, err := New(Spec{Name: "grouphash", Logged: true}); err == nil {
		t.Error("New(grouphash, Logged) succeeded, want error")
	}
	if _, err := New(Spec{Name: "chained-l"}); err == nil {
		t.Error("New(chained-l) succeeded, want error")
	}
	e, err := New(Spec{Name: "Linearprobe-L", Capacity: 64})
	if err != nil {
		t.Fatalf("New(Linearprobe-L): %v", err)
	}
	if e.Name() != "linearprobe" {
		t.Errorf("Name = %q, want linearprobe", e.Name())
	}
	if e2, err := New(Spec{}); err != nil || e2.Name() != "grouphash" {
		t.Errorf("New(zero spec) = %v, %v; want flagship default", e2, err)
	}
}
