// Package engine defines the storage-engine seam the serving stack is
// built on: one small interface every hash scheme in the repository
// can stand behind, so the network server, the commands and the
// end-to-end benchmarks are substrate-agnostic (ROADMAP item 5).
//
// The group-hash façade (grouphash.Store) is the flagship
// implementation — it satisfies Engine directly, with its striped
// locks, seqlock reads, stripe-grouped batching and online expansion
// intact. The paper's comparison schemes (internal/pfht,
// internal/pathhash, internal/chained, internal/linearprobe) are
// wrapped by a thin adapter (adapter.go): a single RWMutex for
// concurrency, a sequential fallback for the batch path, and snapshots
// through the same pmfs image format the flagship uses. That turns
// every serving benchmark into a scheme shoot-out — the paper's
// Fig. 2/6 comparisons end-to-end over the wire.
//
// The interface is also a CONTRACT, pinned by the conformance suite
// (conformance_test.go) running identically against all five engines:
// the zero key is rejected under the 8-byte layout, Put upserts while
// Insert allows duplicates (Algorithm-1 semantics), delete-absent
// returns false without touching the persisted count, LoadFactor never
// divides by zero, snapshots round-trip, and recovery is idempotent.
// Where a scheme historically disagreed with the façade, the scheme
// was fixed — not the suite.
package engine

import (
	"fmt"
	"strings"

	"grouphash"
	"grouphash/internal/core"
	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/stats"
)

// Engine is the storage-engine interface the serving stack programs
// against. All methods must be safe for concurrent use; the batch and
// hook methods carry the commit-hook contract the oplog depends on
// (the hook runs inside the engine's own critical section, so an
// applied mutation and its log append are atomic against Quiesce and
// the snapshot cut).
type Engine interface {
	// Name identifies the engine (the -engine flag value).
	Name() string

	// Get returns the value stored under k.
	Get(k layout.Key) (uint64, bool)
	// MGet looks up many keys, filling the parallel slices (all three
	// must have equal length).
	MGet(keys []layout.Key, vals []uint64, found []bool)
	// Put upserts: overwrite in place when k exists, insert otherwise.
	Put(k layout.Key, v uint64) error
	// Insert stores a new item with Algorithm-1 semantics: no
	// existing-key check, duplicates allowed.
	Insert(k layout.Key, v uint64) error
	// Delete removes one item stored under k, reporting whether one
	// was present. Deleting an absent key must not touch the count.
	Delete(k layout.Key) bool

	// PutHook/InsertHook/DeleteHook are the logged-mutation entry
	// points: committed (when non-nil) runs inside the engine's
	// critical section iff the mutation took effect — the server's
	// oplog append rides there.
	PutHook(k layout.Key, v uint64, committed func()) error
	InsertHook(k layout.Key, v uint64, committed func()) error
	DeleteHook(k layout.Key, committed func()) bool
	// ApplyBatch applies a burst of mutations, writing per-op outcomes
	// into out (len(out) must equal len(ops)). Same-key ops apply in
	// submission order; committed (when non-nil) runs inside the
	// engine's critical section(s) with the indices of the ops that
	// mutated cells, in apply order (the slice is scratch — consume it
	// before returning). sc may be nil.
	ApplyBatch(ops []core.BatchOp, out []core.BatchResult, sc *core.BatchScratch, committed func(applied []int))

	// Len returns the number of stored items; Capacity the structural
	// bound; LoadFactor their ratio, 0 (never NaN) on an empty or
	// zero-capacity table.
	Len() uint64
	Capacity() uint64
	LoadFactor() float64
	// Expanding/Expansions report stop-less online growth; engines
	// with fixed capacity return false/0.
	Expanding() bool
	Expansions() uint64

	// Quiesce runs fn with every writer excluded. fn must not call
	// back into the engine.
	Quiesce(fn func())
	// Recover runs the scheme's crash-recovery procedure.
	Recover() (hashtab.RecoveryReport, error)
	// CheckConsistency audits the structural invariants without
	// repairing, returning human-readable violations (empty = clean).
	CheckConsistency() []string
	// RegisterMetrics exports occupancy (and whatever else the engine
	// tracks) into r under prefix (e.g. "gh" → gh_store_items).
	RegisterMetrics(r *stats.Registry, prefix string)

	// Snapshot persists a consistent pmfs image to path;
	// SnapshotWriterAt captures the image under writer exclusion —
	// calling cut() inside the window to fix the oplog mark — and
	// returns a deferred writer, so file I/O happens after writers
	// resume. Reopen with Load.
	Snapshot(path string) error
	SnapshotWriterAt(cut func() (uint64, error)) (func(path string) error, error)
	// ReplayOplog re-applies every oplog record past `after` and
	// returns (ops applied, next LSN to continue the log from).
	ReplayOplog(base string, after uint64) (applied int, next uint64, err error)
}

// The flagship implements the interface directly — any signature
// drift between the façade and the seam is a compile error here.
var _ Engine = (*grouphash.Store)(nil)

// Spec describes an engine build. The same Spec must be used to create
// an engine and to reopen its snapshots (Load verifies this via a spec
// fingerprint stored in the image header).
type Spec struct {
	// Name selects the scheme: grouphash, pfht, pathhash, chained or
	// linearprobe. The comparison schemes also accept an "-l" suffix
	// (e.g. "linearprobe-l") attaching the paper's undo WAL.
	Name string
	// Capacity is the target item capacity. The flagship expands
	// online past it; the comparison schemes are fixed-size and are
	// allocated with ~2x headroom in cells, so the target is reachable
	// at a moderate load factor.
	Capacity uint64
	// GroupSize is the flagship's cells-per-group (0 = the paper's
	// 256); ignored by the comparison schemes.
	GroupSize uint64
	// KeyBytes is 8 or 16 (0 = 8).
	KeyBytes int
	// Seed selects the hash functions.
	Seed uint64
	// Logged attaches the undo WAL to pfht/pathhash/linearprobe (the
	// paper's -L variants); equivalent to the "-l" name suffix.
	Logged bool
}

// Names lists the engines the -engine flag accepts, flagship first.
func Names() []string {
	return []string{"grouphash", "pfht", "pathhash", "chained", "linearprobe"}
}

// normalize canonicalises spec: lower-cases the name, folds an "-l"
// suffix into Logged, and applies defaults.
func normalize(spec Spec) (Spec, error) {
	spec.Name = strings.ToLower(spec.Name)
	if base, ok := strings.CutSuffix(spec.Name, "-l"); ok {
		spec.Name = base
		spec.Logged = true
	}
	if spec.Capacity == 0 {
		spec.Capacity = 1 << 16
	}
	if spec.KeyBytes == 0 {
		spec.KeyBytes = 8
	}
	switch spec.Name {
	case "grouphash", "pfht", "pathhash", "chained", "linearprobe":
	case "":
		spec.Name = "grouphash"
	default:
		return spec, fmt.Errorf("engine: unknown engine %q (want one of %s)",
			spec.Name, strings.Join(Names(), "|"))
	}
	if spec.Logged && (spec.Name == "grouphash" || spec.Name == "chained") {
		return spec, fmt.Errorf("engine: %s has no undo-WAL variant (its commits are failure-atomic already)", spec.Name)
	}
	return spec, nil
}

// New builds an engine per spec, ready for concurrent serving.
func New(spec Spec) (Engine, error) {
	spec, err := normalize(spec)
	if err != nil {
		return nil, err
	}
	if spec.Name == "grouphash" {
		return grouphash.New(grouphash.Options{
			Capacity:   spec.Capacity,
			GroupSize:  spec.GroupSize,
			KeyBytes:   spec.KeyBytes,
			Seed:       spec.Seed,
			Concurrent: true,
		})
	}
	return newAdapter(spec)
}

// Load reopens an engine from a pmfs snapshot written by the same
// spec, returning the engine and the image's oplog mark. For the
// flagship the image is self-describing; for the comparison schemes
// the table geometry is rebuilt from spec and the image header's spec
// fingerprint guards against reopening with mismatched parameters.
func Load(spec Spec, path string) (Engine, uint64, error) {
	spec, err := normalize(spec)
	if err != nil {
		return nil, 0, err
	}
	if spec.Name == "grouphash" {
		return grouphash.LoadSnapshotMark(path, true)
	}
	return loadAdapter(spec, path)
}

// safeLoadFactor is Len/Capacity with the divide-by-zero guarded: an
// empty or zero-capacity table reports 0, never NaN (which would leak
// into /metrics gauges and benchmark JSON).
func safeLoadFactor(n, capacity uint64) float64 {
	if capacity == 0 {
		return 0
	}
	return float64(n) / float64(capacity)
}
