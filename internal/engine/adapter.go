package engine

import (
	"fmt"
	"sync"

	"grouphash/internal/chained"
	"grouphash/internal/core"
	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/linearprobe"
	"grouphash/internal/native"
	"grouphash/internal/oplog"
	"grouphash/internal/pathhash"
	"grouphash/internal/pfht"
	"grouphash/internal/pmfs"
	"grouphash/internal/stats"
)

// scheme is what the adapter needs from a comparison-scheme table:
// the base Table contract plus in-place update, crash recovery and
// the non-mutating consistency audit.
type scheme interface {
	hashtab.Table
	hashtab.Updater
	hashtab.Recoverable
	CheckConsistency() []string
}

// tableEngine adapts a sequential comparison-scheme table to the
// Engine interface: one RWMutex for concurrency (readers share,
// writers exclude — these schemes have no seqlock protocol), a
// sequential loop standing in for the flagship's stripe-grouped batch
// path, and snapshots through the pmfs image format over the native
// backend.
//
// The commit-hook contract holds trivially: hooks run between the
// mutation and the mutex release, and SnapshotWriterAt's cut() runs
// with the writer lock held, so an applied mutation and its oplog
// append are atomic against the snapshot cut exactly as on the
// flagship.
type tableEngine struct {
	mu   sync.RWMutex
	tab  scheme
	mem  *native.Memory
	l    layout.Layout
	spec Spec
	// applied is ApplyBatch's reusable committed-hook index buffer
	// (guarded by mu), so the serving loop's batch path stays
	// allocation-free at steady state on this engine too.
	applied []int
}

// newAdapter builds a comparison-scheme engine over a fresh native
// memory. The construction sequence per scheme is DETERMINISTIC — the
// same Spec always produces the same Alloc sequence — which is what
// lets loadAdapter rebuild the Go-side structure and overlay a saved
// image at the same addresses.
func newAdapter(spec Spec) (*tableEngine, error) {
	mem := native.New(0)
	tab, err := buildScheme(mem, spec)
	if err != nil {
		return nil, err
	}
	return &tableEngine{
		tab:  tab,
		mem:  mem,
		l:    layout.ForKeySize(spec.KeyBytes),
		spec: spec,
	}, nil
}

// buildScheme allocates spec's table in mem. Cell budgets give each
// fixed-size scheme ~2x headroom over the target item capacity, so
// the target is reachable at the moderate load factors these schemes
// are comfortable at (linear probing degrades sharply near full;
// path hashing's usable fraction of its ~2N total cells is similar).
func buildScheme(mem *native.Memory, spec Spec) (scheme, error) {
	switch spec.Name {
	case "pfht":
		return pfht.New(mem, pfht.Options{
			Cells:    nextPow2(2*spec.Capacity, 8),
			KeyBytes: spec.KeyBytes,
			Seed:     spec.Seed,
			Logged:   spec.Logged,
		}), nil
	case "pathhash":
		return pathhash.New(mem, pathhash.Options{
			Cells:    nextPow2(spec.Capacity, 4),
			KeyBytes: spec.KeyBytes,
			Seed:     spec.Seed,
			Logged:   spec.Logged,
		}), nil
	case "chained":
		return chained.New(mem, chained.Options{
			Buckets:  nextPow2(spec.Capacity, 4),
			KeyBytes: spec.KeyBytes,
			Seed:     spec.Seed,
		}), nil
	case "linearprobe":
		return linearprobe.New(mem, linearprobe.Options{
			Cells:    nextPow2(2*spec.Capacity, 8),
			KeyBytes: spec.KeyBytes,
			Seed:     spec.Seed,
			Logged:   spec.Logged,
		}), nil
	}
	return nil, fmt.Errorf("engine: no adapter for %q", spec.Name)
}

// nextPow2 returns the smallest power of two >= max(n, floor).
func nextPow2(n, floor uint64) uint64 {
	p := floor
	for p < n {
		p <<= 1
	}
	return p
}

// specFingerprint hashes the geometry-determining Spec fields (FNV-1a
// over a canonical string). Stored as the pmfs image's root word —
// the comparison schemes have no persistent header, so the root slot
// instead guards against reopening an image with mismatched flags,
// which would silently misread every cell.
func specFingerprint(spec Spec) uint64 {
	s := fmt.Sprintf("%s/%d/%d/%d/%t", spec.Name, spec.Capacity, spec.KeyBytes, spec.Seed, spec.Logged)
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// loadAdapter reopens a comparison-scheme snapshot: rebuild the table
// with the same deterministic allocation sequence, overlay the saved
// image (same addresses), restore the allocator watermark, and run
// the scheme's recovery pass to rebuild volatile Go-side state (the
// chained allocator's bitmap counters, stash counts, WAL rollback —
// a no-op on these quiesced images, but it makes Load self-checking).
func loadAdapter(spec Spec, path string) (*tableEngine, uint64, error) {
	img, allocated, root, mark, err := pmfs.LoadImage(path)
	if err != nil {
		return nil, 0, err
	}
	if want := specFingerprint(spec); root != want {
		return nil, 0, fmt.Errorf("engine: image %s was not written by engine %s with these parameters (spec fingerprint %#x, image has %#x)",
			path, spec.Name, want, root)
	}
	e, err := newAdapter(spec)
	if err != nil {
		return nil, 0, err
	}
	if got := e.mem.Allocated(); got != allocated {
		return nil, 0, fmt.Errorf("engine: image %s allocation watermark %d does not match a fresh %s build (%d)",
			path, allocated, spec.Name, got)
	}
	e.mem.SetImage(img)
	e.mem.SetAllocated(allocated)
	if _, err := e.tab.Recover(); err != nil {
		return nil, 0, fmt.Errorf("engine: recovering %s image %s: %w", spec.Name, path, err)
	}
	return e, mark, nil
}

func (e *tableEngine) Name() string { return e.spec.Name }

func (e *tableEngine) Get(k layout.Key) (uint64, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tab.Lookup(k)
}

func (e *tableEngine) MGet(keys []layout.Key, vals []uint64, found []bool) {
	if len(keys) != len(vals) || len(keys) != len(found) {
		panic("engine: MGet len(keys) != len(vals) or len(found)")
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	for i := range keys {
		vals[i], found[i] = e.tab.Lookup(keys[i])
	}
}

// putLocked is the upsert shared by Put, PutHook and ApplyBatch:
// update in place when the key exists, insert otherwise — the façade's
// Put semantics. The explicit ValidKey check keeps the invalid-key
// answer O(1) (and identical across schemes) instead of depending on
// each scheme's probe loop to fail to match.
func (e *tableEngine) putLocked(k layout.Key, v uint64) (existed bool, err error) {
	if !e.l.ValidKey(k) {
		return false, hashtab.ErrInvalidKey
	}
	if e.tab.Update(k, v) {
		return true, nil
	}
	return false, e.tab.Insert(k, v)
}

func (e *tableEngine) Put(k layout.Key, v uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, err := e.putLocked(k, v)
	return err
}

func (e *tableEngine) Insert(k layout.Key, v uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tab.Insert(k, v)
}

func (e *tableEngine) Delete(k layout.Key) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tab.Delete(k)
}

func (e *tableEngine) PutHook(k layout.Key, v uint64, committed func()) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.putLocked(k, v); err != nil {
		return err
	}
	if committed != nil {
		committed()
	}
	return nil
}

func (e *tableEngine) InsertHook(k layout.Key, v uint64, committed func()) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.tab.Insert(k, v); err != nil {
		return err
	}
	if committed != nil {
		committed()
	}
	return nil
}

func (e *tableEngine) DeleteHook(k layout.Key, committed func()) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.tab.Delete(k) {
		return false
	}
	if committed != nil {
		committed()
	}
	return true
}

// ApplyBatch is the sequential fallback for schemes without a striped
// batch path: one writer-lock acquisition for the whole burst, ops in
// submission order, one committed call at the end — the same outcome
// vocabulary as the flagship (Found/Err per op; delete-absent and
// failed ops are NOT in applied, so they are never logged).
func (e *tableEngine) ApplyBatch(ops []core.BatchOp, out []core.BatchResult, _ *core.BatchScratch, committed func(applied []int)) {
	if len(ops) != len(out) {
		panic("engine: ApplyBatch len(ops) != len(out)")
	}
	if len(ops) == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	applied := e.applied[:0]
	for i := range ops {
		out[i] = core.BatchResult{}
		op := &ops[i]
		switch op.Kind {
		case core.BatchPut:
			existed, err := e.putLocked(op.Key, op.Value)
			if err != nil {
				out[i].Err = err
				continue
			}
			out[i].Found = existed
			applied = append(applied, i)
		case core.BatchInsert:
			if err := e.tab.Insert(op.Key, op.Value); err != nil {
				out[i].Err = err
				continue
			}
			applied = append(applied, i)
		case core.BatchDelete:
			if e.tab.Delete(op.Key) {
				out[i].Found = true
				applied = append(applied, i)
			}
		default:
			panic("engine: ApplyBatch: unknown BatchKind")
		}
	}
	if len(applied) > 0 && committed != nil {
		committed(applied)
	}
	e.applied = applied[:0]
}

func (e *tableEngine) Len() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tab.Len()
}

func (e *tableEngine) Capacity() uint64 { return e.tab.Capacity() }

func (e *tableEngine) LoadFactor() float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return safeLoadFactor(e.tab.Len(), e.tab.Capacity())
}

func (e *tableEngine) Expanding() bool    { return false }
func (e *tableEngine) Expansions() uint64 { return 0 }

func (e *tableEngine) Quiesce(fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	fn()
}

func (e *tableEngine) Recover() (hashtab.RecoveryReport, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tab.Recover()
}

func (e *tableEngine) CheckConsistency() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tab.CheckConsistency()
}

// RegisterMetrics mirrors the flagship's occupancy gauges (same metric
// names, so dashboards work unchanged across -engine choices); the
// expansion and fingerprint series of the flagship simply don't exist
// here.
func (e *tableEngine) RegisterMetrics(r *stats.Registry, prefix string) {
	p := prefix + "_store_"
	r.RegisterGauge(p+"items", "", "Items currently stored.",
		func() float64 { return float64(e.Len()) })
	r.RegisterGauge(p+"capacity_cells", "", "Total cell count of the table.",
		func() float64 { return float64(e.Capacity()) })
	r.RegisterGauge(p+"load_factor", "", "Items / cells.", e.LoadFactor)
}

func (e *tableEngine) Snapshot(path string) error {
	write, err := e.SnapshotWriterAt(func() (uint64, error) { return 0, nil })
	if err != nil {
		return err
	}
	return write(path)
}

func (e *tableEngine) SnapshotWriterAt(cut func() (uint64, error)) (func(path string) error, error) {
	e.mu.Lock()
	mark, err := cut()
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	img, allocated := e.mem.Image(), e.mem.Allocated()
	e.mu.Unlock()
	root := specFingerprint(e.spec)
	return func(path string) error {
		return pmfs.SaveImage(path, img, allocated, root, mark)
	}, nil
}

func (e *tableEngine) ReplayOplog(base string, after uint64) (applied int, next uint64, err error) {
	next, applied, err = oplog.Scan(base, after, func(r oplog.Record) error {
		switch r.Op {
		case oplog.OpPut:
			return e.Put(r.Key, r.Value)
		case oplog.OpInsert:
			return e.Insert(r.Key, r.Value)
		case oplog.OpDelete:
			e.Delete(r.Key)
			return nil
		default:
			return fmt.Errorf("engine: oplog record %d has unknown op %d", r.LSN, r.Op)
		}
	})
	if err != nil {
		return applied, next, fmt.Errorf("engine: oplog replay: %w", err)
	}
	if next <= after {
		next = after + 1
	}
	return applied, next, nil
}
