// Package xhash provides the hash functions used by every table in this
// repository: strong 64-bit finalizers (for single-function schemes such
// as group hashing and linear probing) and a seeded multiply-xorshift
// family (for the two-function schemes, PFHT and path hashing). All
// functions are implemented from scratch over the stdlib only and are
// deterministic across platforms.
package xhash

// Mix64 is the splitmix64 finalizer: a full-avalanche bijective mixer.
// Bijectivity matters for the RandomNum trace, whose keys are already
// near-uniform — a bijection cannot introduce collisions of its own.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Hash64 hashes a 64-bit key under a seed. Different seeds give
// effectively independent functions (xor-fold the seed, then mix).
func Hash64(x, seed uint64) uint64 {
	return Mix64(x ^ (seed * 0x9e3779b97f4a7c15))
}

// Hash128 hashes a 128-bit key (lo, hi) under a seed, combining the
// halves with distinct odd multipliers before finalising.
func Hash128(lo, hi, seed uint64) uint64 {
	h := seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	h ^= Mix64(lo + 0x8cb92ba72f3d8dd7)
	h = h*0xff51afd7ed558ccd + 1
	h ^= Mix64(hi + 0xc4ceb9fe1a85ec53)
	return Mix64(h)
}

// Func is a seeded hash function mapping a (lo, hi) key to a bucket in
// [0, Buckets). Buckets must be a power of two; the high bits of the
// mixed value are used, which are the best-avalanched bits of Mix64.
type Func struct {
	seed    uint64
	mask    uint64
	shift   uint
	twoWord bool
}

// NewFunc creates a hash function onto [0, buckets) for one- or
// two-word keys. buckets must be a power of two.
func NewFunc(seed uint64, buckets uint64, twoWordKeys bool) Func {
	if buckets == 0 || buckets&(buckets-1) != 0 {
		panic("xhash: bucket count must be a power of two")
	}
	shift := uint(64)
	for b := buckets; b > 1; b >>= 1 {
		shift--
	}
	return Func{seed: seed, mask: buckets - 1, shift: shift, twoWord: twoWordKeys}
}

// Buckets returns the size of the function's range.
func (f Func) Buckets() uint64 { return f.mask + 1 }

// Index maps a key to its bucket.
func (f Func) Index(lo, hi uint64) uint64 {
	var h uint64
	if f.twoWord {
		h = Hash128(lo, hi, f.seed)
	} else {
		h = Hash64(lo, f.seed)
	}
	return h >> f.shift & f.mask
}

// Tag derives a short fingerprint of the key, independent of the bucket
// index bits, for storing in the spare bits of a cell's meta word. Never
// zero, so a zero tag field always means "no tag stored".
func Tag(lo, hi uint64, bits uint) uint64 {
	h := Hash128(lo, hi, 0x51ed270b7a2cadf5)
	t := h & (1<<bits - 1)
	if t == 0 {
		t = 1
	}
	return t
}

// Fingerprint derives a 1-byte tag of the key for the DRAM probe-filter
// sidecar: the top byte of an independent full-avalanche hash, so it is
// uncorrelated with any table's index bits (which come from a seeded
// Hash64/Hash128, not this fixed-salt one) and stays valid across
// expansions. Never zero — zero is the sidecar's empty-cell marker.
func Fingerprint(lo, hi uint64) byte {
	b := byte(Hash128(lo, hi, 0xd1b54a32d192ed03) >> 56)
	if b == 0 {
		b = 1
	}
	return b
}
