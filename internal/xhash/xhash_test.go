package xhash

import (
	"testing"
	"testing/quick"
)

func TestMix64IsBijective(t *testing.T) {
	// Spot-check injectivity on a structured sample; a full proof is
	// algebraic (each step of splitmix64 is invertible).
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 100000; i++ {
		h := Mix64(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Mix64 collision: %d and %d -> %#x", prev, i, h)
		}
		seen[h] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Mix64(0x0123456789abcdef)
	for bit := uint(0); bit < 64; bit++ {
		h := Mix64(0x0123456789abcdef ^ 1<<bit)
		diff := popcount(base ^ h)
		if diff < 12 || diff > 52 {
			t.Fatalf("bit %d: only %d output bits changed", bit, diff)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestHash64SeedsIndependent(t *testing.T) {
	same := 0
	const n = 10000
	for i := uint64(0); i < n; i++ {
		if Hash64(i, 1)&1023 == Hash64(i, 2)&1023 {
			same++
		}
	}
	// Expected collisions: n/1024 ≈ 10. Allow generous slack.
	if same > 60 {
		t.Fatalf("seeds 1 and 2 agree on %d of %d low-bit buckets", same, n)
	}
}

func TestNewFuncValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for non-power-of-two buckets")
			}
		}()
		NewFunc(1, 100, false)
	}()
}

func TestFuncRangeAndDeterminism(t *testing.T) {
	f := NewFunc(7, 1024, false)
	if f.Buckets() != 1024 {
		t.Fatalf("Buckets = %d", f.Buckets())
	}
	for i := uint64(0); i < 10000; i++ {
		idx := f.Index(i, 0)
		if idx >= 1024 {
			t.Fatalf("index %d out of range", idx)
		}
		if idx != f.Index(i, 0) {
			t.Fatal("nondeterministic index")
		}
	}
}

func TestFuncSingleBucket(t *testing.T) {
	f := NewFunc(1, 1, false)
	if f.Index(12345, 0) != 0 {
		t.Fatal("single-bucket function must map everything to 0")
	}
}

func TestFuncUniformity(t *testing.T) {
	const buckets = 256
	const n = buckets * 1000
	f := NewFunc(3, buckets, false)
	counts := make([]int, buckets)
	for i := uint64(0); i < n; i++ {
		counts[f.Index(i, 0)]++
	}
	// Each bucket expects 1000; chi-square-ish sanity bounds.
	for b, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("bucket %d has %d items, expected ~1000", b, c)
		}
	}
}

func TestTwoWordKeysUseHighWord(t *testing.T) {
	f := NewFunc(5, 4096, true)
	differ := false
	for i := uint64(0); i < 64 && !differ; i++ {
		if f.Index(42, i) != f.Index(42, i+1) {
			differ = true
		}
	}
	if !differ {
		t.Fatal("two-word hash ignores the high word")
	}
}

func TestTagNeverZero(t *testing.T) {
	for i := uint64(0); i < 100000; i++ {
		if Tag(i, i*3, 48) == 0 {
			t.Fatalf("zero tag for key %d", i)
		}
	}
	if Tag(0, 0, 48) == 0 {
		t.Fatal("zero tag for zero key")
	}
}

func TestTagFitsWidth(t *testing.T) {
	f := func(lo, hi uint64) bool {
		return Tag(lo, hi, 16) < 1<<16 && Tag(lo, hi, 48) < 1<<48
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Hash128 distinguishes lo and hi swaps.
func TestQuickHash128OrderSensitive(t *testing.T) {
	f := func(lo, hi uint64) bool {
		if lo == hi {
			return true
		}
		return Hash128(lo, hi, 9) != Hash128(hi, lo, 9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
