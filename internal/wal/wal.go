// Package wal implements the undo write-ahead log that the paper adds
// to the baseline hashing schemes (Linear-L, PFHT-L, Path-L) to give
// them the crash consistency group hashing gets for free.
//
// The log records the pre-image of every cell a mutating operation is
// about to touch. Protocol per mutation:
//
//  1. append an entry holding the target cell's old image; persist it;
//  2. atomically raise the entry count (making the entries reachable);
//     persist;
//  3. perform the actual cell mutation (with its own persists);
//  4. atomically reset the entry count to zero (commit); persist.
//
// Steps 1–2 are the paper's "duplicate copy writes": every logged
// mutation costs two extra persist barriers and a cell-image write
// before any real work happens, and one more barrier to commit. That is
// what produces the ~1.95× slowdown and ~2.16× L3-miss inflation of
// Figure 2.
//
// Recovery: a non-zero entry count means a crash interrupted a mutation;
// the recorded pre-images are written back newest-first, restoring the
// table to its state before the interrupted operation, then the count is
// cleared. Because the count is raised only after the entries are
// durable and cleared only after the mutation is durable, recovery never
// sees half-written log entries that matter.
package wal

import (
	"fmt"

	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
)

// MaxEntries is the log capacity in cell pre-images. A single logical
// operation may log several cells (linear probing's shift-delete touches
// a whole cluster), so the capacity is generous; exceeding it panics, as
// it would corrupt recovery.
const MaxEntries = 4096

// Entry words: addr, meta, keyLo, keyHi, value.
const entryWords = 5

// Log is an undo log living in the same persistent region as the table
// it protects.
type Log struct {
	mem  hashtab.Mem
	l    layout.Layout
	base uint64 // header word: active entry count
	ents uint64 // first entry address

	// appends counts entries appended since creation (statistics).
	appends uint64
	// commits counts committed operations.
	commits uint64
}

// Bytes returns the persistent footprint of a log.
func Bytes() uint64 { return (1 + MaxEntries*entryWords) * layout.WordSize }

// New allocates a log from mem for cells of the given layout.
func New(mem hashtab.Mem, l layout.Layout) *Log {
	base := mem.Alloc(Bytes(), 64)
	return &Log{mem: mem, l: l, base: base, ents: base + layout.WordSize}
}

func (g *Log) entryAddr(i uint64) uint64 { return g.ents + i*entryWords*layout.WordSize }

// count reads the active-entry counter.
func (g *Log) count() uint64 { return g.mem.Read8(g.base) }

// LogCell appends the pre-image of the cell at addr (commit word, key,
// value as currently stored) and publishes it. Must be called before
// the cell is modified. addr is the cell base address.
func (g *Log) LogCell(addr, commit uint64, k layout.Key, v uint64) {
	n := g.count()
	if n >= MaxEntries {
		panic(fmt.Sprintf("wal: log overflow (%d entries)", n))
	}
	e := g.entryAddr(n)
	g.mem.Write8(e, addr)
	g.mem.Write8(e+8, commit)
	g.mem.Write8(e+16, k.Lo)
	g.mem.Write8(e+24, k.Hi)
	g.mem.Write8(e+32, v)
	g.mem.Persist(e, entryWords*layout.WordSize)
	g.mem.AtomicWrite8(g.base, n+1)
	g.mem.Persist(g.base, layout.WordSize)
	g.appends++
}

// Commit marks the in-flight operation complete, discarding its undo
// entries.
func (g *Log) Commit() {
	g.mem.AtomicWrite8(g.base, 0)
	g.mem.Persist(g.base, layout.WordSize)
	g.commits++
}

// InFlight reports whether an uncommitted operation is recorded (i.e. a
// crash interrupted a mutation).
func (g *Log) InFlight() bool { return g.count() != 0 }

// Recover rolls back the in-flight operation, if any, restoring the
// logged pre-images newest-first, and returns the number of cells
// restored.
func (g *Log) Recover() uint64 {
	n := g.count()
	if n == 0 {
		return 0
	}
	for i := n; i > 0; i-- {
		e := g.entryAddr(i - 1)
		addr := g.mem.Read8(e)
		commit := g.mem.Read8(e + 8)
		k := layout.Key{Lo: g.mem.Read8(e + 16), Hi: g.mem.Read8(e + 24)}
		v := g.mem.Read8(e + 32)
		// Restore the payload first, then the commit word, so a crash
		// during recovery itself never exposes an occupied cell with a
		// torn payload; recovery is idempotent and re-runs from the log.
		if !g.l.Compact() {
			g.mem.Write8(g.l.KeyOff(addr, 0), k.Lo)
			g.mem.Write8(g.l.KeyOff(addr, 1), k.Hi)
		}
		g.mem.Write8(g.l.ValOff(addr), v)
		g.mem.Persist(g.l.PayloadOff(addr), g.l.PayloadLen())
		g.mem.AtomicWrite8(g.l.CommitOff(addr), commit)
		g.mem.Persist(g.l.CommitOff(addr), layout.WordSize)
	}
	g.Commit()
	return n
}

// Stats returns (entries appended, operations committed) since creation.
func (g *Log) Stats() (appends, commits uint64) { return g.appends, g.commits }
