package wal

import (
	"testing"

	"grouphash/internal/cache"
	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
)

func setup(seed int64) (*memsim.Memory, *Log, hashtab.Cells) {
	mem := memsim.New(memsim.Config{Size: 1 << 20, Seed: seed, Geoms: cache.SmallGeometry()})
	l := layout.ForKeySize(8)
	cells := hashtab.NewCells(mem, l, 64)
	g := New(mem, l)
	return mem, g, cells
}

func TestCommitClearsInFlight(t *testing.T) {
	_, g, cells := setup(1)
	if g.InFlight() {
		t.Fatal("fresh log has in-flight op")
	}
	meta, k, v := cells.Snapshot(0)
	g.LogCell(cells.Addr(0), meta, k, v)
	if !g.InFlight() {
		t.Fatal("logged entry not visible")
	}
	g.Commit()
	if g.InFlight() {
		t.Fatal("commit did not clear the log")
	}
	a, c := g.Stats()
	if a != 1 || c != 1 {
		t.Fatalf("stats = (%d, %d)", a, c)
	}
}

func TestRecoverNoopWhenClean(t *testing.T) {
	_, g, _ := setup(2)
	if n := g.Recover(); n != 0 {
		t.Fatalf("clean recover undid %d entries", n)
	}
}

func TestRecoverRestoresPreImage(t *testing.T) {
	mem, g, cells := setup(3)
	k := layout.Key{Lo: 10}
	cells.InsertAt(5, k, 111)
	mem.CleanShutdown()

	// Begin a mutation: log the pre-image, then trash the cell, then
	// crash before commit.
	meta, gk, gv := cells.Snapshot(5)
	g.LogCell(cells.Addr(5), meta, gk, gv)
	cells.WritePayload(5, layout.Key{Lo: 99}, 999)
	cells.PersistPayload(5)
	cells.CommitOccupied(5, layout.Key{Lo: 99})
	mem.Crash(0.5)

	if n := g.Recover(); n != 1 {
		t.Fatalf("recover undid %d entries, want 1", n)
	}
	if !cells.Matches(5, k) || cells.Value(5) != 111 {
		t.Fatal("pre-image not restored")
	}
	if g.InFlight() {
		t.Fatal("log still in flight after recovery")
	}
}

func TestRecoverMultiCellNewestFirst(t *testing.T) {
	mem, g, cells := setup(4)
	// A shift-style op touching cells 1 and 2.
	cells.InsertAt(1, layout.Key{Lo: 1}, 11)
	cells.InsertAt(2, layout.Key{Lo: 2}, 22)
	mem.CleanShutdown()

	m1, k1, v1 := cells.Snapshot(1)
	g.LogCell(cells.Addr(1), m1, k1, v1)
	cells.WritePayload(1, layout.Key{Lo: 7}, 77)
	cells.PersistPayload(1)
	cells.CommitOccupied(1, layout.Key{Lo: 7})

	m2, k2, v2 := cells.Snapshot(2)
	g.LogCell(cells.Addr(2), m2, k2, v2)
	cells.DeleteAt(2)

	mem.Crash(0.5)
	if n := g.Recover(); n != 2 {
		t.Fatalf("recover undid %d entries, want 2", n)
	}
	if !cells.Matches(1, layout.Key{Lo: 1}) || cells.Value(1) != 11 {
		t.Fatal("cell 1 not restored")
	}
	if !cells.Matches(2, layout.Key{Lo: 2}) || cells.Value(2) != 22 {
		t.Fatal("cell 2 not restored")
	}
}

func TestUncommittedCountWordIsRecoverable(t *testing.T) {
	// A crash BEFORE the entry-count bump must leave the log clean:
	// the mutation had not started.
	mem, g, cells := setup(5)
	meta, k, v := cells.Snapshot(0)
	_ = meta
	_ = k
	_ = v
	_ = cells
	mem.Crash(0.0)
	if g.InFlight() {
		t.Fatal("log in flight without any published entry")
	}
}

func TestLoggingCostsExtraPersists(t *testing.T) {
	// The point of the paper's Figure 2: a logged mutation performs
	// strictly more flushes than an unlogged one.
	mem, g, cells := setup(6)
	k := layout.Key{Lo: 3}

	c0 := mem.Counters()
	cells.InsertAt(10, k, 1)
	unlogged := mem.Counters().Sub(c0)

	c1 := mem.Counters()
	meta, gk, gv := cells.Snapshot(11)
	g.LogCell(cells.Addr(11), meta, gk, gv)
	cells.InsertAt(11, k, 1)
	g.Commit()
	logged := mem.Counters().Sub(c1)

	if logged.Flushes <= unlogged.Flushes {
		t.Fatalf("logged flushes (%d) not greater than unlogged (%d)", logged.Flushes, unlogged.Flushes)
	}
	if logged.Fences <= unlogged.Fences {
		t.Fatalf("logged fences (%d) not greater than unlogged (%d)", logged.Fences, unlogged.Fences)
	}
}

func TestLogOverflowPanics(t *testing.T) {
	mem, g, cells := setup(7)
	_ = mem
	defer func() {
		if recover() == nil {
			t.Fatal("expected overflow panic")
		}
	}()
	meta, k, v := cells.Snapshot(0)
	for i := 0; i <= MaxEntries; i++ {
		g.LogCell(cells.Addr(0), meta, k, v)
	}
}
