package core

import "grouphash/internal/hashtab"

// Recover rebuilds a consistent state after a crash, implementing
// Algorithm 4 of the paper:
//
//   - scan every cell of both levels;
//   - for cells whose bitmap is 0, reset (scrub) the key/value payload
//     so partially written or partially deleted items disappear;
//   - count the cells whose bitmap is 1 and rewrite the persistent
//     count with the correct value.
//
// The scan is sequential over contiguous cell arrays, which is why
// recovery costs under 1% of the corresponding load time (Table 3).
//
// As an optimisation over the literal pseudo-code, already-zero
// payloads are not rewritten (a scrub store + persist is only issued
// when the payload actually holds residue); this preserves Algorithm
// 4's post-state exactly while keeping recovery read-mostly.
func (t *Table) Recover() (hashtab.RecoveryReport, error) {
	var rep hashtab.RecoveryReport
	vw := t.cur()
	count := uint64(0)
	for _, cells := range [2]hashtab.Cells{vw.tab1, vw.tab2} {
		for i := uint64(0); i < cells.N; i++ {
			rep.CellsScanned++
			if cells.Occupied(i) {
				count++
				continue
			}
			if !cells.PayloadZero(i) {
				cells.ClearPayload(i)
				rep.CellsCleared++
			}
		}
	}
	if t.Len() != count {
		rep.CountCorrected = true
	}
	// Always rewrite the count, like Algorithm 4 (line 19): the scan
	// result is authoritative.
	t.setCount(count)
	if vw.occ != nil {
		// The crash may have changed which cells are durably occupied;
		// derived state is rebuilt from the authoritative bitmaps.
		vw.buildOcc(t.gsz)
	}
	if vw.fp != nil {
		// Same for the fingerprint sidecar: rederive the tags from the
		// cells the scan just certified.
		vw.buildFp(t.l)
	}
	return rep, nil
}

// CheckConsistency verifies the table's invariants without repairing
// anything (verification tooling; not part of the paper's algorithms):
//
//   - the persistent count equals the number of occupied cells;
//   - every empty cell has a zero payload;
//   - every occupied cell's key hashes to the group it is stored in
//     (level-1 items to their exact cell; level-2 items to the matching
//     group);
//   - every occupied cell's meta tag matches its key;
//   - when the fingerprint sidecar is on, every level-2 cell's DRAM tag
//     agrees with the cell: the key's fingerprint for occupied cells,
//     zero for empty ones.
//
// It returns a list of human-readable violations, empty when the table
// is consistent.
func (t *Table) CheckConsistency() []string {
	var bad []string
	vw := t.cur()
	count := uint64(0)
	for i := uint64(0); i < vw.tab1.N; i++ {
		commit, k, _ := vw.tab1.Snapshot(i)
		if t.l.Occupied(commit) {
			count++
			i1, i2, n := t.homesIn(vw, k)
			if i1 != i && (n != 2 || i2 != i) {
				bad = append(bad, "level-1 cell holds a key that does not hash to it")
			}
			if !t.l.CommitMatches(commit, k) {
				bad = append(bad, "level-1 commit word does not match stored key")
			}
		} else if !vw.tab1.PayloadZero(i) {
			bad = append(bad, "empty level-1 cell has a non-zero payload")
		}
	}
	for i := uint64(0); i < vw.tab2.N; i++ {
		commit, k, _ := vw.tab2.Snapshot(i)
		if vw.fp != nil {
			want := uint64(0)
			if t.l.Occupied(commit) {
				want = t.fpTag(k)
			}
			if vw.fpLoad(i) != want {
				bad = append(bad, "fingerprint sidecar disagrees with level-2 cell")
			}
		}
		if t.l.Occupied(commit) {
			count++
			i1, i2, n := t.homesIn(vw, k)
			inG1 := t.groupStart(i1) == t.groupStart(i)
			inG2 := n == 2 && t.groupStart(i2) == t.groupStart(i)
			if !inG1 && !inG2 {
				bad = append(bad, "level-2 cell holds a key outside its group")
			}
			if !t.l.CommitMatches(commit, k) {
				bad = append(bad, "level-2 commit word does not match stored key")
			}
		} else if !vw.tab2.PayloadZero(i) {
			bad = append(bad, "empty level-2 cell has a non-zero payload")
		}
	}
	if t.Len() != count {
		bad = append(bad, "persistent count does not match occupied cells")
	}
	return bad
}
