package core

// Volatile group-occupancy index, an optimisation extension beyond the
// paper. Algorithm 2 scans the whole matched level-2 group because
// deletions punch holes mid-group: an early empty cell proves nothing.
// But the NUMBER of occupied cells per group bounds the scan — once
// that many occupied cells have been seen, the rest of the group is
// provably empty. The counters are pure derived state (a function of
// the bitmaps the recovery scan already reads), so they live in DRAM,
// cost no persist barriers, and are rebuilt on open and after
// recovery — the same volatile/persistent split NV-Tree and FPTree use
// for their inner nodes.
//
// The index chiefly accelerates lookups and deletes of ABSENT keys
// (which otherwise always scan the full group) and all operations on
// lightly-filled groups.

// EnableGroupIndex builds the volatile per-group occupancy counters
// and turns on bounded group scans. Costs 4 bytes of DRAM per group
// and one O(level-2 cells) scan now.
func (t *Table) EnableGroupIndex() {
	occ := make([]uint32, t.tab1.N/t.gsz)
	for i := uint64(0); i < t.tab2.N; i++ {
		if t.tab2.Occupied(i) {
			occ[i/t.gsz]++
		}
	}
	t.occ = occ
}

// DisableGroupIndex drops the counters and reverts to the paper's
// full-group scans.
func (t *Table) DisableGroupIndex() { t.occ = nil }

// GroupIndexEnabled reports whether bounded scans are active.
func (t *Table) GroupIndexEnabled() bool { return t.occ != nil }

// occupancy returns the number of occupied cells in the level-2 group
// starting at cell j, or ^uint32(0) when the index is off.
func (t *Table) occupancy(j uint64) uint32 {
	if t.occ == nil {
		return ^uint32(0)
	}
	return t.occ[j/t.gsz]
}

// noteL2Insert / noteL2Delete keep the counters current.
func (t *Table) noteL2Insert(j uint64) {
	if t.occ != nil {
		t.occ[j/t.gsz]++
	}
}

func (t *Table) noteL2Delete(j uint64) {
	if t.occ != nil {
		t.occ[j/t.gsz]--
	}
}
