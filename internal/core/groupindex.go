package core

// Volatile group-occupancy index, an optimisation extension beyond the
// paper. Algorithm 2 scans the whole matched level-2 group because
// deletions punch holes mid-group: an early empty cell proves nothing.
// But the NUMBER of occupied cells per group bounds the scan — once
// that many occupied cells have been seen, the rest of the group is
// provably empty. The counters are pure derived state (a function of
// the bitmaps the recovery scan already reads), so they live in DRAM,
// cost no persist barriers, and are rebuilt on open and after
// recovery — the same volatile/persistent split NV-Tree and FPTree use
// for their inner nodes.
//
// The counters belong to a view: each generation of cell arrays gets
// its own, and expansion rebuilds them for the new arrays at the root
// flip (pure derived state, so the rebuild is a DRAM scan).
//
// The index chiefly accelerates lookups and deletes of ABSENT keys
// (which otherwise always scan the full group) and all operations on
// lightly-filled groups.

// EnableGroupIndex builds the volatile per-group occupancy counters
// and turns on bounded group scans. Costs 4 bytes of DRAM per group
// and one O(level-2 cells) scan now. Must not run concurrently with
// table operations.
func (t *Table) EnableGroupIndex() {
	vw := t.cur()
	vw.buildOcc(t.gsz)
}

// buildOcc (re)derives the occupancy counters of vw from its bitmaps.
func (vw *view) buildOcc(gsz uint64) {
	occ := make([]uint32, vw.tab1.N/gsz)
	for i := uint64(0); i < vw.tab2.N; i++ {
		if vw.tab2.Occupied(i) {
			occ[i/gsz]++
		}
	}
	vw.occ = occ
}

// DisableGroupIndex drops the counters and reverts to the paper's
// full-group scans.
func (t *Table) DisableGroupIndex() { t.cur().occ = nil }

// GroupIndexEnabled reports whether bounded scans are active.
func (t *Table) GroupIndexEnabled() bool { return t.cur().occ != nil }

// occupancy returns the number of occupied cells in the level-2 group
// starting at cell j, or ^uint32(0) when the index is off.
func (vw *view) occupancy(j, gsz uint64) uint32 {
	if vw.occ == nil {
		return ^uint32(0)
	}
	return vw.occ[j/gsz]
}

// noteL2Insert / noteL2Delete keep the counters current.
func (vw *view) noteL2Insert(j, gsz uint64) {
	if vw.occ != nil {
		vw.occ[j/gsz]++
	}
}

func (vw *view) noteL2Delete(j, gsz uint64) {
	if vw.occ != nil {
		vw.occ[j/gsz]--
	}
}
