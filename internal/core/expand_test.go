package core

import (
	"testing"

	"grouphash/internal/cache"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/native"
)

func TestExpandDoublesAndPreservesItems(t *testing.T) {
	mem := native.New(32 << 20)
	tab := mustCreate(t, mem, Options{Cells: 256, GroupSize: 16, Seed: 2})
	for i := uint64(1); i <= 300; i++ {
		if err := tab.InsertAutoExpand(layout.Key{Lo: i}, i*3); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tab.Cells() < 256 {
		t.Fatal("table shrank")
	}
	if tab.Len() != 300 {
		t.Fatalf("Len = %d", tab.Len())
	}
	for i := uint64(1); i <= 300; i++ {
		if v, ok := tab.Lookup(layout.Key{Lo: i}); !ok || v != i*3 {
			t.Fatalf("item %d after expansion: (%d, %v)", i, v, ok)
		}
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies: %v", bad)
	}
}

func TestExplicitExpand(t *testing.T) {
	mem := native.New(32 << 20)
	tab := mustCreate(t, mem, Options{Cells: 128, GroupSize: 16, Seed: 3})
	for i := uint64(1); i <= 100; i++ {
		tab.InsertAutoExpand(layout.Key{Lo: i}, i)
	}
	before := tab.Cells()
	if err := tab.Expand(); err != nil {
		t.Fatal(err)
	}
	if tab.Cells() != before*2 {
		t.Fatalf("cells = %d, want %d", tab.Cells(), before*2)
	}
	if tab.Len() != 100 {
		t.Fatalf("Len changed by expansion: %d", tab.Len())
	}
	for i := uint64(1); i <= 100; i++ {
		if _, ok := tab.Lookup(layout.Key{Lo: i}); !ok {
			t.Fatalf("item %d lost by explicit expansion", i)
		}
	}
}

func TestExpandFailsWhenRegionExhausted(t *testing.T) {
	// Use the fixed-size simulated region: unlike native memory it
	// cannot grow, so repeated doublings must exhaust it.
	mem := memsim.New(memsim.Config{Size: 64 << 10, Seed: 1, Geoms: cache.SmallGeometry()})
	tab := mustCreate(t, mem, Options{Cells: 256, GroupSize: 16})
	defer func() {
		if recover() == nil {
			t.Fatal("expected allocator exhaustion panic")
		}
	}()
	tab.Expand()
	tab.Expand()
	tab.Expand()
}

func TestExpandCrashBeforeFlipKeepsOldTable(t *testing.T) {
	mem := simMem(77)
	tab := mustCreate(t, mem, Options{Cells: 128, GroupSize: 16, Seed: 4})
	hdr := tab.Header()
	for i := uint64(1); i <= 60; i++ {
		tab.Insert(layout.Key{Lo: i}, i)
	}
	mem.CleanShutdown()

	// Run the expansion work but crash before the slot flip: build the
	// new view and populate it, skipping the atomic flip.
	nvw := tab.newView(tab.cur().tab1.N*2, 4)
	tab.rehashInto(tab.cur(), nvw)
	mem.Crash(0.3)

	re, err := Open(mem, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if re.Cells() != 128 {
		t.Fatalf("reopened cells = %d, want the old 128", re.Cells())
	}
	if _, err := re.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 60; i++ {
		if v, ok := re.Lookup(layout.Key{Lo: i}); !ok || v != i {
			t.Fatalf("item %d lost by aborted expansion: (%d, %v)", i, v, ok)
		}
	}
}

func TestExpandCrashAfterFlipUsesNewTable(t *testing.T) {
	mem := simMem(78)
	tab := mustCreate(t, mem, Options{Cells: 128, GroupSize: 16, Seed: 4})
	hdr := tab.Header()
	for i := uint64(1); i <= 60; i++ {
		tab.Insert(layout.Key{Lo: i}, i)
	}
	if err := tab.Expand(); err != nil {
		t.Fatal(err)
	}
	// Crash immediately after Expand returns (flip persisted inside).
	mem.Crash(0.0)

	re, err := Open(mem, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if re.Cells() != 256 {
		t.Fatalf("reopened cells = %d, want the new 256", re.Cells())
	}
	if _, err := re.Recover(); err != nil {
		t.Fatal(err)
	}
	if re.Len() != 60 {
		t.Fatalf("Len = %d", re.Len())
	}
	for i := uint64(1); i <= 60; i++ {
		if v, ok := re.Lookup(layout.Key{Lo: i}); !ok || v != i {
			t.Fatalf("item %d lost after committed expansion: (%d, %v)", i, v, ok)
		}
	}
}
