package core

import (
	"math/rand"
	"testing"

	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/native"
)

func TestTwoChoiceBasicOps(t *testing.T) {
	mem := native.New(16 << 20)
	tab := mustCreate(t, mem, Options{Cells: 1024, GroupSize: 16, Seed: 4, TwoChoice: true})
	if tab.Name() != "group-2c" || !tab.TwoChoice() {
		t.Fatalf("identity: %q / %v", tab.Name(), tab.TwoChoice())
	}
	for i := uint64(1); i <= 900; i++ {
		if err := tab.Insert(layout.Key{Lo: i}, i*5); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := uint64(1); i <= 900; i++ {
		if v, ok := tab.Lookup(layout.Key{Lo: i}); !ok || v != i*5 {
			t.Fatalf("lookup %d = (%d, %v)", i, v, ok)
		}
	}
	for i := uint64(1); i <= 900; i += 2 {
		if !tab.Delete(layout.Key{Lo: i}) {
			t.Fatalf("delete %d", i)
		}
	}
	for i := uint64(1); i <= 900; i++ {
		_, ok := tab.Lookup(layout.Key{Lo: i})
		if want := i%2 == 0; ok != want {
			t.Fatalf("key %d presence %v", i, ok)
		}
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies: %v", bad)
	}
}

func TestTwoChoiceOracleFuzz(t *testing.T) {
	mem := native.New(32 << 20)
	tab := mustCreate(t, mem, Options{Cells: 2048, GroupSize: 32, Seed: 12, TwoChoice: true})
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(77))
	for op := 0; op < 30000; op++ {
		key := uint64(rng.Intn(2500)) + 1
		k := layout.Key{Lo: key}
		switch rng.Intn(4) {
		case 0:
			if _, exists := oracle[key]; !exists {
				if tab.Insert(k, key*3) == nil {
					oracle[key] = key * 3
				}
			}
		case 1:
			v, ok := tab.Lookup(k)
			ov, ook := oracle[key]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("op %d: lookup(%d) = (%d,%v), oracle (%d,%v)", op, key, v, ok, ov, ook)
			}
		case 2:
			if ok := tab.Delete(k); ok != (func() bool { _, e := oracle[key]; return e })() {
				t.Fatalf("op %d: delete(%d) mismatch", op, key)
			}
			delete(oracle, key)
		case 3:
			nv := rng.Uint64()
			if tab.Update(k, nv) {
				if _, e := oracle[key]; !e {
					t.Fatalf("op %d: updated absent key %d", op, key)
				}
				oracle[key] = nv
			}
		}
	}
	if tab.Len() != uint64(len(oracle)) {
		t.Fatalf("Len = %d, oracle %d", tab.Len(), len(oracle))
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies: %v", bad)
	}
}

func TestTwoChoiceRaisesSpaceUtilisation(t *testing.T) {
	// The §4.4 claim: two hash functions raise utilisation. Fill both
	// variants to failure and compare.
	fill := func(two bool) float64 {
		mem := native.New(16 << 20)
		tab := mustCreate(t, mem, Options{Cells: 4096, GroupSize: 64, Seed: 9, TwoChoice: two})
		var n uint64
		for i := uint64(1); ; i++ {
			if tab.Insert(layout.Key{Lo: i * 2654435761}, i) != nil {
				break
			}
			n++
		}
		return float64(n) / float64(tab.Capacity())
	}
	one := fill(false)
	two := fill(true)
	if two <= one {
		t.Fatalf("two-choice utilisation %.3f not above single-choice %.3f", two, one)
	}
}

func TestTwoChoiceSurvivesReopen(t *testing.T) {
	mem := simMem(91)
	tab := mustCreate(t, mem, Options{Cells: 256, GroupSize: 16, Seed: 6, TwoChoice: true})
	hdr := tab.Header()
	for i := uint64(1); i <= 150; i++ {
		tab.Insert(layout.Key{Lo: i}, i)
	}
	mem.CleanShutdown()
	re, err := Open(mem, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if !re.TwoChoice() {
		t.Fatal("two-choice flag lost across reopen")
	}
	for i := uint64(1); i <= 150; i++ {
		if v, ok := re.Lookup(layout.Key{Lo: i}); !ok || v != i {
			t.Fatalf("reopened key %d = (%d, %v)", i, v, ok)
		}
	}
}

func TestTwoChoiceCrashRecovery(t *testing.T) {
	mem := simMem(92)
	tab := mustCreate(t, mem, Options{Cells: 512, GroupSize: 32, Seed: 13, TwoChoice: true})
	for i := uint64(1); i <= 300; i++ {
		if err := tab.Insert(layout.Key{Lo: i}, i); err != nil {
			t.Fatal(err)
		}
	}
	mem.Crash(0.5)
	if _, err := tab.Recover(); err != nil {
		t.Fatal(err)
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies: %v", bad)
	}
	for i := uint64(1); i <= 300; i++ {
		if v, ok := tab.Lookup(layout.Key{Lo: i}); !ok || v != i {
			t.Fatalf("committed key %d lost: (%d, %v)", i, v, ok)
		}
	}
}

func TestTwoChoiceExpand(t *testing.T) {
	mem := native.New(32 << 20)
	tab := mustCreate(t, mem, Options{Cells: 128, GroupSize: 16, Seed: 2, TwoChoice: true})
	for i := uint64(1); i <= 400; i++ {
		if err := tab.InsertAutoExpand(layout.Key{Lo: i}, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 400; i++ {
		if _, ok := tab.Lookup(layout.Key{Lo: i}); !ok {
			t.Fatalf("key %d lost across expansion", i)
		}
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies: %v", bad)
	}
}

func TestTwoChoiceConcurrentRejected(t *testing.T) {
	mem := native.New(1 << 20)
	tab := mustCreate(t, mem, Options{Cells: 128, GroupSize: 16, TwoChoice: true})
	defer func() {
		if recover() == nil {
			t.Fatal("NewConcurrent must reject two-choice tables")
		}
	}()
	NewConcurrent(tab, 0)
}

func TestInsertBatch(t *testing.T) {
	mem := native.New(8 << 20)
	tab := mustCreate(t, mem, Options{Cells: 512, GroupSize: 32, Seed: 1})
	items := make([]Item, 300)
	for i := range items {
		items[i] = Item{Key: layout.Key{Lo: uint64(i) + 1}, Value: uint64(i) * 2}
	}
	placed, err := tab.InsertBatch(items)
	if err != nil || placed != 300 {
		t.Fatalf("placed %d, err %v", placed, err)
	}
	if tab.Len() != 300 {
		t.Fatalf("Len = %d", tab.Len())
	}
	for i := range items {
		if v, ok := tab.Lookup(items[i].Key); !ok || v != items[i].Value {
			t.Fatalf("item %d = (%d, %v)", i, v, ok)
		}
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies: %v", bad)
	}
}

func TestInsertBatchZeroKeyStops(t *testing.T) {
	mem := native.New(1 << 20)
	tab := mustCreate(t, mem, Options{Cells: 64, GroupSize: 8})
	placed, err := tab.InsertBatch([]Item{
		{Key: layout.Key{Lo: 1}, Value: 1},
		{Key: layout.Key{Lo: 0}, Value: 2}, // invalid
		{Key: layout.Key{Lo: 3}, Value: 3},
	})
	if placed != 1 || err != hashtab.ErrInvalidKey {
		t.Fatalf("placed %d, err %v", placed, err)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestInsertBatchCheaperThanSingles(t *testing.T) {
	run := func(batch bool) float64 {
		mem := simMem(81)
		tab, err := Create(mem, Options{Cells: 4096, GroupSize: 64, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		items := make([]Item, 1000)
		for i := range items {
			items[i] = Item{Key: layout.Key{Lo: uint64(i) + 1}, Value: 1}
		}
		t0 := mem.Clock()
		if batch {
			if n, err := tab.InsertBatch(items); err != nil || n != 1000 {
				t.Fatalf("batch: %d, %v", n, err)
			}
		} else {
			for _, it := range items {
				if err := tab.Insert(it.Key, it.Value); err != nil {
					t.Fatal(err)
				}
			}
		}
		return mem.Clock() - t0
	}
	single := run(false)
	batched := run(true)
	if batched >= single {
		t.Fatalf("batch (%.0f ns) not cheaper than singles (%.0f ns)", batched, single)
	}
	// The saving should be roughly the count persist: ~1/3 of insert cost.
	if batched > single*0.85 {
		t.Fatalf("batch saving too small: %.0f vs %.0f", batched, single)
	}
}

func TestInsertBatchCrashRecovers(t *testing.T) {
	mem := simMem(82)
	tab := mustCreate(t, mem, Options{Cells: 512, GroupSize: 32, Seed: 5})
	items := make([]Item, 200)
	for i := range items {
		items[i] = Item{Key: layout.Key{Lo: uint64(i) + 1}, Value: 1}
	}
	// Crash mid-batch: count never updated for the committed prefix.
	mem.ScheduleShadowCrash(mem.Counters().Accesses+500, 0.5)
	tab.InsertBatch(items)
	if !mem.AdoptShadowCrash() {
		t.Skip("batch too short to reach the crash point")
	}
	if _, err := tab.Recover(); err != nil {
		t.Fatal(err)
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies: %v", bad)
	}
}

func TestGroupIndexCorrectness(t *testing.T) {
	// Identical op stream with and without the volatile index must
	// produce identical results.
	run := func(indexed bool) map[uint64]uint64 {
		mem := native.New(16 << 20)
		tab := mustCreate(t, mem, Options{Cells: 1024, GroupSize: 32, Seed: 3})
		if indexed {
			tab.EnableGroupIndex()
			if !tab.GroupIndexEnabled() {
				t.Fatal("index not enabled")
			}
		}
		rng := rand.New(rand.NewSource(55))
		state := make(map[uint64]uint64)
		for op := 0; op < 20000; op++ {
			key := uint64(rng.Intn(1200)) + 1
			k := layout.Key{Lo: key}
			switch rng.Intn(3) {
			case 0:
				if _, e := state[key]; !e {
					if tab.Insert(k, key) == nil {
						state[key] = key
					}
				}
			case 1:
				v, ok := tab.Lookup(k)
				sv, sok := state[key]
				if ok != sok || (ok && v != sv) {
					t.Fatalf("indexed=%v op %d: lookup(%d) = (%d,%v) want (%d,%v)",
						indexed, op, key, v, ok, sv, sok)
				}
			case 2:
				if got := tab.Delete(k); got != (func() bool { _, e := state[key]; return e })() {
					t.Fatalf("indexed=%v op %d: delete(%d) mismatch", indexed, op, key)
				}
				delete(state, key)
			}
		}
		if bad := tab.CheckConsistency(); len(bad) != 0 {
			t.Fatalf("indexed=%v: %v", indexed, bad)
		}
		return state
	}
	plain := run(false)
	indexed := run(true)
	if len(plain) != len(indexed) {
		t.Fatalf("final states diverge: %d vs %d items", len(plain), len(indexed))
	}
}

func TestGroupIndexSurvivesRecoveryAndExpansion(t *testing.T) {
	mem := simMem(71)
	tab := mustCreate(t, mem, Options{Cells: 256, GroupSize: 16, Seed: 4})
	tab.EnableGroupIndex()
	for i := uint64(1); i <= 150; i++ {
		tab.Insert(layout.Key{Lo: i}, i)
	}
	mem.Crash(0.5)
	if _, err := tab.Recover(); err != nil {
		t.Fatal(err)
	}
	if !tab.GroupIndexEnabled() {
		t.Fatal("index dropped by recovery")
	}
	for i := uint64(1); i <= 150; i++ {
		if v, ok := tab.Lookup(layout.Key{Lo: i}); !ok || v != i {
			t.Fatalf("key %d after recovery: (%d, %v)", i, v, ok)
		}
	}
	if err := tab.Expand(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 150; i++ {
		if _, ok := tab.Lookup(layout.Key{Lo: i}); !ok {
			t.Fatalf("key %d lost after expansion with index", i)
		}
	}
	// Absent lookups remain correct after all transitions.
	if _, ok := tab.Lookup(layout.Key{Lo: 99999}); ok {
		t.Fatal("phantom key")
	}
	tab.DisableGroupIndex()
	if tab.GroupIndexEnabled() {
		t.Fatal("index not disabled")
	}
}

func TestGroupIndexSpeedsUpAbsentLookups(t *testing.T) {
	// The point of the index: absent-key lookups at high fill stop
	// after the occupied count instead of scanning the whole group.
	run := func(indexed bool) float64 {
		mem := simMem(72)
		tab, err := Create(mem, Options{Cells: 4096, GroupSize: 256, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); tab.LoadFactor() < 0.3; i++ {
			tab.Insert(layout.Key{Lo: i * 7}, i)
		}
		if indexed {
			tab.EnableGroupIndex()
		}
		t0 := mem.Clock()
		for i := uint64(0); i < 500; i++ {
			tab.Lookup(layout.Key{Lo: 1<<40 + i}) // absent
		}
		return mem.Clock() - t0
	}
	plain := run(false)
	indexed := run(true)
	if indexed >= plain {
		t.Fatalf("index did not speed up absent lookups: %.0f vs %.0f", indexed, plain)
	}
}
