package core

import (
	"testing"

	"grouphash/internal/cache"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
)

// These tests cut a single insert or delete at EVERY internal memory
// event (using the simulator's shadow-crash scheduling) and at several
// survival probabilities, then recover and check the paper's §3.3/§3.5
// guarantees:
//
//   - the table passes every consistency invariant;
//   - items committed before the operation are intact;
//   - the interrupted operation is atomic: the new item is either fully
//     present with its exact value, or completely absent (insert); the
//     old item is either fully present or completely absent (delete).

// buildDeterministic creates a small loaded table; identical across
// calls with the same seed, so per-offset replays line up.
func buildDeterministic(seed int64) (*memsim.Memory, *Table) {
	mem := memsim.New(memsim.Config{Size: 1 << 20, Seed: seed, Geoms: cache.SmallGeometry()})
	tab, err := Create(mem, Options{Cells: 128, GroupSize: 16, Seed: 9})
	if err != nil {
		panic(err)
	}
	for i := uint64(1); i <= 30; i++ {
		if err := tab.Insert(layout.Key{Lo: i * 11}, i); err != nil {
			panic(err)
		}
	}
	mem.CleanShutdown()
	return mem, tab
}

func checkBase(t *testing.T, tab *Table, ctx string) {
	t.Helper()
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("%s: inconsistencies: %v", ctx, bad)
	}
	for i := uint64(1); i <= 30; i++ {
		if v, ok := tab.Lookup(layout.Key{Lo: i * 11}); !ok || v != i {
			t.Fatalf("%s: pre-existing item %d damaged: (%d, %v)", ctx, i, v, ok)
		}
	}
}

func TestEveryCrashPointOfInsertIsSafe(t *testing.T) {
	const newKey = 7777
	for _, p := range []float64{0, 0.5, 1} {
		for offset := uint64(1); ; offset++ {
			mem, tab := buildDeterministic(int64(offset))
			start := mem.Counters().Accesses
			mem.ScheduleShadowCrash(start+offset, p)
			if err := tab.Insert(layout.Key{Lo: newKey}, 42); err != nil {
				t.Fatal(err)
			}
			if !mem.AdoptShadowCrash() {
				break // offset beyond the operation's length: done
			}
			if _, err := tab.Recover(); err != nil {
				t.Fatal(err)
			}
			ctx := "insert"
			checkBase(t, tab, ctx)
			if v, ok := tab.Lookup(layout.Key{Lo: newKey}); ok && v != 42 {
				t.Fatalf("p=%v offset=%d: torn insert visible: value %d", p, offset, v)
			}
			if tab.Len() != 30 && tab.Len() != 31 {
				t.Fatalf("p=%v offset=%d: count %d after recovery", p, offset, tab.Len())
			}
		}
	}
}

func TestEveryCrashPointOfDeleteIsSafe(t *testing.T) {
	victim := layout.Key{Lo: 5 * 11} // one of the 30 loaded items
	for _, p := range []float64{0, 0.5, 1} {
		for offset := uint64(1); ; offset++ {
			mem, tab := buildDeterministic(int64(1000 + offset))
			start := mem.Counters().Accesses
			mem.ScheduleShadowCrash(start+offset, p)
			if !tab.Delete(victim) {
				t.Fatal("delete of loaded item failed")
			}
			if !mem.AdoptShadowCrash() {
				break
			}
			if _, err := tab.Recover(); err != nil {
				t.Fatal(err)
			}
			if bad := tab.CheckConsistency(); len(bad) != 0 {
				t.Fatalf("p=%v offset=%d: inconsistencies: %v", p, offset, bad)
			}
			// The victim is either fully there (crash before the commit
			// persisted) or fully gone; all other items intact.
			if v, ok := tab.Lookup(victim); ok && v != 5 {
				t.Fatalf("p=%v offset=%d: torn delete: value %d", p, offset, v)
			}
			for i := uint64(1); i <= 30; i++ {
				if i == 5 {
					continue
				}
				if v, ok := tab.Lookup(layout.Key{Lo: i * 11}); !ok || v != i {
					t.Fatalf("p=%v offset=%d: bystander %d damaged: (%d, %v)", p, offset, i, v, ok)
				}
			}
		}
	}
}

func TestEveryCrashPointOfUpdateIsAtomic(t *testing.T) {
	victim := layout.Key{Lo: 3 * 11}
	for offset := uint64(1); ; offset++ {
		mem, tab := buildDeterministic(int64(2000 + offset))
		start := mem.Counters().Accesses
		mem.ScheduleShadowCrash(start+offset, 0.5)
		if !tab.Update(victim, 999) {
			t.Fatal("update of loaded item failed")
		}
		if !mem.AdoptShadowCrash() {
			break
		}
		if _, err := tab.Recover(); err != nil {
			t.Fatal(err)
		}
		v, ok := tab.Lookup(victim)
		if !ok {
			t.Fatalf("offset=%d: update lost the item", offset)
		}
		if v != 3 && v != 999 {
			t.Fatalf("offset=%d: torn update value %d", offset, v)
		}
	}
}
