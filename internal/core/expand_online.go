package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
)

// Online, stop-less expansion for the concurrent wrapper: a coordinator
// goroutine owns the migration while writers and readers keep
// operating. The design piggybacks on two structural facts:
//
//   - The hash takes the TOP bits of the hash word, so doubling the
//     table appends index bits at the bottom: old group g maps onto the
//     disjoint new-group window [2g, 2g+2). Migration can therefore
//     proceed group by group with no destination conflicts.
//   - A stripe is the top log2(S) bits of the group index — invariant
//     across doublings — and covers a contiguous run of old groups. A
//     stripe is thus a self-contained migration unit: drain it under
//     its own lock and every key that hashes anywhere near it is
//     covered.
//
// Protocol. startExpansion allocates the doubled view and publishes an
// expState; workers (one per P) claim stripes off a counter and, for
// each one, take its lock, copy every live item of its old groups into
// the new view with the normal cell commit protocol, mark the stripe
// migrated, and release. From that point operations on the stripe route
// exclusively to the new arrays (routeView); unmigrated stripes keep
// using the old ones. When every stripe is migrated, finishExpansion
// takes ALL stripe locks and performs the same two-step commit as the
// sequential Expand: new roots into the inactive header slot, persist,
// then the single 8-byte slot flip — the expansion's only durable
// commit point — and the in-DRAM view swap.
//
// Writers never see ErrTableFull mid-expansion: a writer that finds its
// group full releases its stripe lock, ensures an expansion is running,
// and blocks on its stripe's drain channel — a per-stripe wait, far
// shorter than the full rehash — then retries against the new arrays.
//
// Crash semantics. Until the flip the persistent header still points at
// the old arrays, and migration only COPIES items (the old cells are
// never modified), so a crash mid-migration recovers the old table via
// the ordinary Algorithm-4 scan: every item acked before the expansion
// began is present exactly once. Writes that landed only in the new
// arrays of migrated stripes are lost, which matches the native
// backend's durability contract (durability is via explicit snapshots,
// and Quiesce waits out in-flight expansions before imaging). After the
// flip the new table is complete and recovery sees every acked item
// exactly once. The count word is maintained by writers only —
// migration copies don't touch it — so it is correct under either root.
//
// Pathological skew. If some item cannot be placed even in the doubled
// arrays, the affected stripe stays unmigrated and finishExpansion
// falls back to a stop-the-world rebuild under all stripe locks:
// collect the authoritative items of every stripe (new arrays if
// migrated, old otherwise), reclaim what the allocator allows, and
// re-place into successively doubled arrays, committing with the same
// slot flip. Only if that tripling also fails do blocked writers see
// ErrTableFull.

// expState is one in-flight online expansion.
type expState struct {
	old      *view           // the view being replaced
	nvw      *view           // the doubled view being populated
	migrated []atomic.Bool   // per stripe: drained into nvw
	stripeCh []chan struct{} // closed when the stripe is drained
	done     chan struct{}   // closed when the expansion has fully finished
	overflow atomic.Bool     // some stripe could not drain into nvw
	failed   atomic.Bool     // terminal: even the fallback rebuild failed
}

// loadFactorNum/loadFactorDen set the occupancy threshold (3/4) at
// which a successful insert proactively starts an expansion, so tables
// under steady write load grow before groups actually fill up.
const (
	loadFactorNum = 3
	loadFactorDen = 4
)

// EnableOnlineExpand arms stop-less expansion: writers that would have
// returned ErrTableFull instead trigger a background migration and
// block only until their own stripe is drained. Requires a backend
// whose word accesses are individually atomic (the migration runs
// concurrently with operations on other stripes); panics otherwise.
func (c *Concurrent) EnableOnlineExpand() {
	if _, ok := c.t.mem.(hashtab.ConcurrentReader); !ok {
		panic("core: online expansion requires a concurrent-read-safe backend")
	}
	c.expandOK = true
}

// OnlineExpandEnabled reports whether EnableOnlineExpand was called.
func (c *Concurrent) OnlineExpandEnabled() bool { return c.expandOK }

// Expanding reports whether an online expansion is currently in flight.
func (c *Concurrent) Expanding() bool { return c.exp.Load() != nil }

// Expansions returns the number of completed online expansions.
func (c *Concurrent) Expansions() uint64 { return c.expansions.Load() }

// ExpandProgress reports the in-flight expansion's migration progress
// as (stripes migrated, stripes total); (0, 0) when none is running.
func (c *Concurrent) ExpandProgress() (migrated, total int) {
	e := c.exp.Load()
	if e == nil {
		return 0, 0
	}
	for i := range e.migrated {
		if e.migrated[i].Load() {
			migrated++
		}
	}
	return migrated, len(e.migrated)
}

// StripesMigrated returns the cumulative number of stripes drained by
// online expansions over the store's lifetime.
func (c *Concurrent) StripesMigrated() uint64 { return c.stripesMig.Load() }

// WriterStallNanos returns the total wall time writers have spent
// blocked in awaitRoom waiting for an expansion to make room — the
// store-side cost of stop-less growth.
func (c *Concurrent) WriterStallNanos() uint64 { return c.stallNanos.Load() }

// Fallbacks returns the number of expansions that resorted to the
// stop-the-world rebuild.
func (c *Concurrent) Fallbacks() uint64 { return c.fallbacks.Load() }

// WaitExpansion blocks until any in-flight expansion has finished.
func (c *Concurrent) WaitExpansion() {
	if e := c.exp.Load(); e != nil {
		<-e.done
	}
}

// maybeTriggerExpand starts an expansion once the load factor crosses
// the threshold. Called after successful inserts, outside any stripe
// lock.
func (c *Concurrent) maybeTriggerExpand() {
	if !c.expandOK || c.exp.Load() != nil {
		return
	}
	if c.Len()*loadFactorDen < c.t.Capacity()*loadFactorNum {
		return
	}
	c.ensureExpansion()
}

// awaitRoom is the writer-side slow path after a failed placement:
// make sure an expansion is running, wait for this stripe's drain (or
// the whole expansion's completion, whichever is relevant), and report
// whether the caller should retry (nil) or give up (ErrTableFull).
func (c *Concurrent) awaitRoom(si int) error {
	if !c.expandOK {
		return hashtab.ErrTableFull
	}
	e := c.ensureExpansion()
	start := time.Now()
	defer func() { c.stallNanos.Add(uint64(time.Since(start))) }()
	if e.migrated[si].Load() {
		// Our stripe already drained and the NEW arrays are full too;
		// nothing more this generation can do for us. Wait it out and
		// let the retry start the next doubling.
		<-e.done
	} else {
		select {
		case <-e.stripeCh[si]:
			return nil // drained; retry against the new arrays
		case <-e.done:
		}
	}
	if e.failed.Load() {
		return hashtab.ErrTableFull
	}
	return nil
}

// ensureExpansion returns the in-flight expansion, starting one if
// none is running. Never called with a stripe lock held.
func (c *Concurrent) ensureExpansion() *expState {
	if e := c.exp.Load(); e != nil {
		return e
	}
	c.expandMu.Lock()
	defer c.expandMu.Unlock()
	if e := c.exp.Load(); e != nil {
		return e
	}
	t := c.t
	vw := t.cur()
	seed := t.mem.Read8(t.hdr + hdrSeed*layout.WordSize)
	e := &expState{
		old:      vw,
		nvw:      t.newView(vw.tab1.N*2, seed),
		migrated: make([]atomic.Bool, len(c.stripes)),
		stripeCh: make([]chan struct{}, len(c.stripes)),
		done:     make(chan struct{}),
	}
	for i := range e.stripeCh {
		e.stripeCh[i] = make(chan struct{})
	}
	c.exp.Store(e)
	go c.runExpansion(e)
	return e
}

// runExpansion is the coordinator: a worker pool (one goroutine per P,
// capped at the stripe count) claims stripes off a shared counter and
// drains them one at a time, then the commit runs.
func (c *Concurrent) runExpansion(e *expState) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(c.stripes) {
		workers = len(c.stripes)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				si := int(next.Add(1) - 1)
				if si >= len(c.stripes) {
					return
				}
				c.migrateStripe(e, si)
				if c.hookStripeDone != nil {
					c.hookStripeDone(si)
				}
			}
		}()
	}
	wg.Wait()
	c.finishExpansion(e)
}

// migrateStripe drains one stripe: under the stripe's lock, copy every
// live item of its old groups into the new view via the standard cell
// commit protocol. Destination windows of distinct old groups are
// disjoint (see expand.go), so stripes drain in parallel without
// coordinating. Items are copied, never moved — the old arrays stay
// intact for pre-flip crash recovery.
func (c *Concurrent) migrateStripe(e *expState, si int) {
	s := &c.stripes[si]
	s.lock()
	t := c.t
	groups := e.old.tab1.N / t.gsz
	per := groups / uint64(len(c.stripes))
	lo, hi := uint64(si)*per, (uint64(si)+1)*per
	ok := !(c.hookMigrateFail != nil && c.hookMigrateFail(si)) &&
		t.rehashGroups(e.old, e.nvw, lo, hi)
	if ok {
		e.migrated[si].Store(true)
		c.stripesMig.Add(1)
	} else {
		e.overflow.Store(true)
	}
	s.unlock()
	if ok {
		close(e.stripeCh[si])
	}
}

// finishExpansion commits the migration. With every stripe held (no
// operation in flight anywhere), either flip to the fully-populated new
// view, or — if some stripe overflowed even the doubled arrays — run
// the stop-the-world fallback rebuild. The expansion state is cleared
// before the stripes are released so no writer can observe a committed
// generation as still in flight.
func (c *Concurrent) finishExpansion(e *expState) {
	for i := range c.stripes {
		c.stripes[i].lock()
	}
	if e.overflow.Load() {
		c.fallbackRebuild(e)
	} else {
		if c.hookPreFlip != nil {
			c.hookPreFlip()
		}
		c.t.commitRoots(e.nvw)
	}
	c.exp.Store(nil)
	for i := range c.stripes {
		c.stripes[i].unlock()
	}
	c.expansions.Add(1)
	close(e.done)
}

// fallbackRebuild handles pathological skew: some item did not fit even
// in the doubled arrays. All stripes are held, so the authoritative
// item set is frozen — new arrays for migrated stripes (they may hold
// post-drain writes), old arrays for the rest (including partially
// drained overflow stripes, whose new-array copies are simply
// abandoned). Re-place everything into successively doubled arrays,
// reclaiming failed attempts where the allocator allows, and commit
// with the usual slot flip.
func (c *Concurrent) fallbackRebuild(e *expState) {
	c.fallbacks.Add(1)
	t := c.t
	groups := e.old.tab1.N / t.gsz
	per := groups / uint64(len(c.stripes))
	var items []Item
	for si := range c.stripes {
		vw, mul := e.old, uint64(1)
		if e.migrated[si].Load() {
			vw, mul = e.nvw, 2
		}
		lo, hi := uint64(si)*per*mul*t.gsz, (uint64(si)+1)*per*mul*t.gsz
		for _, cells := range [2]hashtab.Cells{vw.tab1, vw.tab2} {
			for i := lo; i < hi; i++ {
				if cells.Occupied(i) {
					items = append(items, Item{Key: cells.Key(i), Value: cells.Value(i)})
				}
			}
		}
	}
	seed := t.mem.Read8(t.hdr + hdrSeed*layout.WordSize)
	rec, canReclaim := t.mem.(hashtab.Reclaimer)
	newCells := e.nvw.tab1.N * 2
	for attempt := 0; attempt < 3; attempt, newCells = attempt+1, newCells*2 {
		var mark uint64
		if canReclaim {
			mark = rec.Mark()
		}
		nvw := t.newView(newCells, seed)
		ok := true
		for _, it := range items {
			if !t.placeIn(nvw, it.Key, it.Value) {
				ok = false
				break
			}
		}
		if ok {
			c.t.commitRoots(nvw)
			return
		}
		if canReclaim {
			rec.Release(mark)
		}
	}
	e.failed.Store(true)
}
