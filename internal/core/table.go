// Package core implements group hashing, the write-efficient and
// consistent hashing scheme of the paper (§3).
//
// Layout (Figure 3): storage cells are split into two equally sized
// levels. Level-1 cells are addressable by the hash function; level-2
// cells are non-addressable collision-resolution cells. Both levels are
// divided into groups of group_size contiguous cells, and level-1 group
// g shares level-2 group g: an item whose level-1 cell is occupied goes
// to the first empty cell of the matching level-2 group. Because a
// group is contiguous, collision probing walks sequential cachelines —
// the group-sharing cache-efficiency argument of §3.2.
//
// Consistency (§3.3): every cell carries a bitmap bit inside an 8-byte
// meta word. Inserts persist the payload first, then atomically set the
// meta word; deletes atomically clear the meta word first, then scrub
// the payload. A crash at any point leaves the table recoverable by the
// Algorithm-4 scan implemented in Recover; no logging or copy-on-write
// is ever needed.
//
// Beyond the paper, the package provides persistent-handle reopening
// (Open), online expansion with an atomic root switch (Expand, and its
// stop-less concurrent form in Concurrent), a concurrency wrapper with
// per-group striped locking (Concurrent), and a DRAM fingerprint
// sidecar that screens group probes with word-wide tag compares before
// any persistent cell is touched (fingerprint.go).
package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/xhash"
)

// Magic identifies a group-hash table header in a persistent region.
const Magic = 0x47524f5550480001 // "GROUPH" + format version 1

// DefaultGroupSize is the paper's default (§4.1): 256 cells per group,
// chosen in §4.5 as the knee where space utilisation exceeds 80% while
// request latency stays low.
const DefaultGroupSize = 256

// Options configures a new table.
type Options struct {
	// Cells is the number of level-1 (hash-addressable) cells; the
	// table's total capacity is twice this (level 2 is the same size).
	// Must be a power of two.
	Cells uint64
	// GroupSize is the number of cells per group (power of two,
	// ≤ Cells). 0 means DefaultGroupSize.
	GroupSize uint64
	// KeyBytes is 8 or 16 (the paper's trace item formats).
	KeyBytes int
	// Seed selects the hash function.
	Seed uint64
	// TwoChoice enables the second hash function the paper weighs in
	// §4.4: each key gets two candidate level-1 cells (and both
	// matched level-2 groups), raising space utilisation at the cost
	// of probing two non-contiguous regions — "the continuity of the
	// collision resolution cells is damaged". Off by default, as in
	// the paper.
	TwoChoice bool
}

func (o *Options) normalize() error {
	if o.GroupSize == 0 {
		o.GroupSize = DefaultGroupSize
	}
	if o.KeyBytes == 0 {
		o.KeyBytes = 8
	}
	if o.Cells == 0 || o.Cells&(o.Cells-1) != 0 {
		return fmt.Errorf("core: Cells (%d) must be a nonzero power of two", o.Cells)
	}
	if o.GroupSize&(o.GroupSize-1) != 0 {
		return fmt.Errorf("core: GroupSize (%d) must be a power of two", o.GroupSize)
	}
	if o.GroupSize > o.Cells {
		return fmt.Errorf("core: GroupSize (%d) exceeds Cells (%d)", o.GroupSize, o.Cells)
	}
	if o.KeyBytes != 8 && o.KeyBytes != 16 {
		return fmt.Errorf("core: KeyBytes must be 8 or 16, got %d", o.KeyBytes)
	}
	return nil
}

// Persistent header words, relative to the header base. The header is
// the paper's "Global info." block (Figure 4) extended with the
// two-slot root record that makes expansion failure-atomic.
const (
	hdrMagic     = 0  // Magic
	hdrKeyBytes  = 1  // 8 or 16
	hdrGroupSize = 2  // cells per group
	hdrSeed      = 3  // hash seed
	hdrCount     = 4  // number of occupied cells (the paper's count)
	hdrSlot      = 5  // which root slot is current: 0 or 1
	hdrSlot0     = 6  // slot 0: tab1 base, tab2 base, level-1 cell count
	hdrSlot1     = 9  // slot 1: same three words
	hdrFlags     = 12 // bit 0: two-choice hashing
	hdrWords     = 13 // header size in words
)

// header flag bits.
const flagTwoChoice = 1

// HeaderBytes is the persistent footprint of the table header.
const HeaderBytes = hdrWords * layout.WordSize

// view bundles one generation of the table's roots: the cell arrays
// and the hash functions addressing them, plus the volatile per-view
// derived state — the per-group occupancy index (occ, nil = off; see
// groupindex.go) and the 1-byte-per-cell fingerprint sidecar (fp,
// nil = off; see fingerprint.go). Expansion builds a complete new view
// and publishes it with a single atomic pointer swap (mirroring the
// persistent header-slot flip), so readers always see a matched
// (hash, arrays, sidecar) tuple — never a new hash over old arrays or
// vice versa.
type view struct {
	h, h2      xhash.Func
	tab1, tab2 hashtab.Cells
	occ        []uint32
	fp         []uint64
}

// Table is a group-hash table over persistent memory. Not safe for
// concurrent use; see Concurrent.
type Table struct {
	mem hashtab.Mem
	l   layout.Layout
	hdr uint64 // header base address
	two bool
	gsz uint64
	// vp is the current view. Sequential callers could use a plain
	// field, but the concurrent wrapper's optimistic readers load the
	// view with no lock held while an online expansion commits a new
	// one, so the publication itself must be atomic.
	vp atomic.Pointer[view]
	// fpOn makes newly built views carry the fingerprint sidecar
	// (fingerprint.go). Set by default on ConcurrentReader backends at
	// Create/Open, toggled by Enable/DisableFingerprints.
	fpOn bool
	// fpHits / fpSkips count cells dereferenced on a tag match and
	// cells screened out by the filter, across all filtered group
	// scans. Exposed via FingerprintStats for the stats registry.
	fpHits, fpSkips atomic.Uint64
	// rehashWorkers overrides the worker count of rehashInto's parallel
	// migration: 0 = auto (GOMAXPROCS on eligible backends), 1 = force
	// sequential, n > 1 = force an n-worker pool. See SetRehashWorkers.
	rehashWorkers int
	// expandFailures forces the first n rehash attempts of Expand to
	// report failure (test hook for the tripling-retry/reclaim path).
	expandFailures int
	// countPersists counts setCount calls — persist barriers on the
	// count word, the hottest word in the table. Batch paths amortise
	// these (one per batch/stripe-run instead of one per mutation); the
	// counter makes the amortisation measurable, since the native
	// backend's Persist is a hardware no-op the bench could not observe.
	countPersists atomic.Uint64
}

// cur returns the current view. Callers load it once per operation so
// every probe of that operation sees one coherent generation.
func (t *Table) cur() *view { return t.vp.Load() }

// secondSeed derives the second hash function's seed from the first.
func secondSeed(seed uint64) uint64 { return seed ^ 0x6a09e667f3bcc909 }

// newView allocates fresh cell arrays for the given level-1 cell count
// and builds the matching hash functions. The cells start empty, so a
// fingerprint sidecar (when armed) starts all-zero and is maintained
// incrementally by whatever populates the view.
func (t *Table) newView(cells uint64, seed uint64) *view {
	vw := &view{
		h:    xhash.NewFunc(seed, cells, t.l.KeyWords() == 2),
		h2:   xhash.NewFunc(secondSeed(seed), cells, t.l.KeyWords() == 2),
		tab1: hashtab.NewCells(t.mem, t.l, cells),
		tab2: hashtab.NewCells(t.mem, t.l, cells),
	}
	if t.fpOn {
		vw.fp = newFp(cells)
	}
	return vw
}

// defaultFpOn reports whether a fresh table on mem should arm the
// fingerprint sidecar: on for concurrent-read-safe (production)
// backends, off for the simulated machine so the paper experiments
// keep measuring the paper's exact probe sequence (the sidecar, being
// DRAM-resident, would short-circuit the charged cell reads the
// figures count). EnableFingerprints overrides either way.
func defaultFpOn(mem hashtab.Mem, gsz uint64) bool {
	_, ok := mem.(hashtab.ConcurrentReader)
	return ok && fpEligible(gsz)
}

// Create allocates and initialises a new table in mem and returns its
// handle. The header address (Header) is the table's persistent root:
// keep it (e.g. at a well-known offset) to Open the table after a
// restart.
func Create(mem hashtab.Mem, opts Options) (*Table, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	l := layout.ForKeySize(opts.KeyBytes)
	hdr := mem.Alloc(HeaderBytes, 64)
	t := &Table{
		mem: mem, l: l, hdr: hdr,
		two: opts.TwoChoice,
		gsz: opts.GroupSize,
	}
	t.fpOn = defaultFpOn(mem, t.gsz)
	vw := t.newView(opts.Cells, opts.Seed)
	t.vp.Store(vw)

	w := func(i int, v uint64) { mem.Write8(hdr+uint64(i)*layout.WordSize, v) }
	w(hdrKeyBytes, uint64(opts.KeyBytes))
	w(hdrGroupSize, opts.GroupSize)
	w(hdrSeed, opts.Seed)
	w(hdrCount, 0)
	w(hdrSlot, 0)
	w(hdrSlot0+0, vw.tab1.Base)
	w(hdrSlot0+1, vw.tab2.Base)
	w(hdrSlot0+2, opts.Cells)
	var flags uint64
	if opts.TwoChoice {
		flags |= flagTwoChoice
	}
	w(hdrFlags, flags)
	mem.Persist(hdr, HeaderBytes)
	// Magic last: a crash before this point leaves no valid table.
	mem.AtomicWrite8(hdr+hdrMagic*layout.WordSize, Magic)
	mem.Persist(hdr+hdrMagic*layout.WordSize, layout.WordSize)

	return t, nil
}

// ErrNoTable is returned by Open when the header does not carry a valid
// table magic.
var ErrNoTable = errors.New("core: no group-hash table at this address")

// Open reconstructs a handle from the persistent header at hdr, e.g.
// after a restart. It does not run recovery; call Recover next if the
// shutdown was not clean.
func Open(mem hashtab.Mem, hdr uint64) (*Table, error) {
	rd := func(i int) uint64 { return mem.Read8(hdr + uint64(i)*layout.WordSize) }
	if rd(hdrMagic) != Magic {
		return nil, ErrNoTable
	}
	keyBytes := int(rd(hdrKeyBytes))
	if keyBytes != 8 && keyBytes != 16 {
		return nil, fmt.Errorf("core: corrupt header: key size %d", keyBytes)
	}
	l := layout.ForKeySize(keyBytes)
	slot := rd(hdrSlot)
	if slot > 1 {
		return nil, fmt.Errorf("core: corrupt header: slot %d", slot)
	}
	base := hdrSlot0
	if slot == 1 {
		base = hdrSlot1
	}
	cells := rd(base + 2)
	if cells == 0 || cells&(cells-1) != 0 {
		return nil, fmt.Errorf("core: corrupt header: cell count %d", cells)
	}
	t := &Table{
		mem: mem, l: l, hdr: hdr,
		two: rd(hdrFlags)&flagTwoChoice != 0,
		gsz: rd(hdrGroupSize),
	}
	vw := &view{
		h:    xhash.NewFunc(rd(hdrSeed), cells, l.KeyWords() == 2),
		h2:   xhash.NewFunc(secondSeed(rd(hdrSeed)), cells, l.KeyWords() == 2),
		tab1: hashtab.Cells{Mem: mem, L: l, Base: rd(base + 0), N: cells},
		tab2: hashtab.Cells{Mem: mem, L: l, Base: rd(base + 1), N: cells},
	}
	if t.gsz == 0 || t.gsz&(t.gsz-1) != 0 || t.gsz > cells {
		return nil, fmt.Errorf("core: corrupt header: group size %d", t.gsz)
	}
	if t.fpOn = defaultFpOn(mem, t.gsz); t.fpOn {
		// The sidecar is derived state: rebuild it from the persistent
		// cells, exactly as the occupancy index is rebuilt on open.
		vw.buildFp(l)
	}
	t.vp.Store(vw)
	return t, nil
}

// Header returns the table's persistent root address.
func (t *Table) Header() uint64 { return t.hdr }

// Name implements hashtab.Table.
func (t *Table) Name() string {
	if t.two {
		return "group-2c"
	}
	return "group"
}

// TwoChoice reports whether the second hash function is active.
func (t *Table) TwoChoice() bool { return t.two }

// homesIn returns the candidate level-1 cells of k under vw: one under
// the paper's default, two in two-choice mode (§4.4).
func (t *Table) homesIn(vw *view, k layout.Key) (i1, i2 uint64, n int) {
	i1 = vw.h.Index(k.Lo, k.Hi)
	if !t.two {
		return i1, 0, 1
	}
	i2 = vw.h2.Index(k.Lo, k.Hi)
	if i2 == i1 {
		return i1, 0, 1
	}
	return i1, i2, 2
}

// GroupSize returns the cells-per-group parameter.
func (t *Table) GroupSize() uint64 { return t.gsz }

// Cells returns the number of level-1 cells (half the capacity).
func (t *Table) Cells() uint64 { return t.cur().tab1.N }

// Capacity returns the total number of cells across both levels.
func (t *Table) Capacity() uint64 {
	vw := t.cur()
	return vw.tab1.N + vw.tab2.N
}

// Len returns the persistent count of occupied cells.
func (t *Table) Len() uint64 { return t.mem.Read8(t.countAddr()) }

// LoadFactor returns Len / Capacity.
func (t *Table) LoadFactor() float64 { return float64(t.Len()) / float64(t.Capacity()) }

func (t *Table) countAddr() uint64 { return t.hdr + hdrCount*layout.WordSize }

// setCount atomically updates and persists the occupied-cell count —
// the "AtomicInc(group->count); Persist(group->count)" steps of
// Algorithms 1 and 3.
func (t *Table) setCount(n uint64) {
	t.mem.AtomicWrite8(t.countAddr(), n)
	t.mem.Persist(t.countAddr(), layout.WordSize)
	t.countPersists.Add(1)
}

// CountPersists returns the number of count-word persist barriers
// issued so far (setCount calls). Mutations÷CountPersists is the
// amortisation the batch paths achieve.
func (t *Table) CountPersists() uint64 { return t.countPersists.Load() }

// groupStart returns the first cell index of the group containing
// level-1 index k (the "j = k - k % group_size" of the algorithms).
func (t *Table) groupStart(k uint64) uint64 { return k &^ (t.gsz - 1) }
