package core

import (
	"errors"
	"testing"

	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/native"
)

func newBatchFixture(t *testing.T, cells, gsz uint64, stripes int) (*native.Memory, *Table, *Concurrent) {
	t.Helper()
	mem := native.New(1 << 20)
	tab, err := Create(mem, Options{Cells: cells, GroupSize: gsz, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return mem, tab, NewConcurrent(tab, stripes)
}

// TestApplyBatchBasic pins the stripe-grouped apply contract: per-op
// outcomes, same-key submission order within a stripe, one count
// persist per mutating stripe-run, and the commit hook seeing exactly
// the mutating ops in apply order.
func TestApplyBatchBasic(t *testing.T) {
	_, tab, c := newBatchFixture(t, 256, 16, 8)

	ops := []BatchOp{
		{Kind: BatchInsert, Key: layout.Key{Lo: 1}, Value: 10},
		{Kind: BatchPut, Key: layout.Key{Lo: 2}, Value: 20},
		{Kind: BatchPut, Key: layout.Key{Lo: 1}, Value: 11}, // same key as op 0: must update, not duplicate
		{Kind: BatchDelete, Key: layout.Key{Lo: 3}},         // absent: no-op
		{Kind: BatchInsert, Key: layout.Key{}, Value: 1},    // invalid zero key
		{Kind: BatchInsert, Key: layout.Key{Lo: 4}, Value: 40},
		{Kind: BatchDelete, Key: layout.Key{Lo: 4}}, // delete what op 5 inserted
	}
	out := make([]BatchResult, len(ops))
	var sc BatchScratch
	var hookCalls int
	applied := make(map[int]bool)
	persistsBefore := tab.CountPersists()
	c.ApplyBatch(ops, out, &sc, func(run []int) {
		hookCalls++
		for _, idx := range run {
			if applied[idx] {
				t.Errorf("op %d handed to the commit hook twice", idx)
			}
			applied[idx] = true
		}
	})

	if out[0].Err != nil || out[0].Found {
		t.Errorf("op 0 (fresh insert) = %+v", out[0])
	}
	if out[1].Err != nil || out[1].Found {
		t.Errorf("op 1 (fresh put) = %+v", out[1])
	}
	if out[2].Err != nil || !out[2].Found {
		t.Errorf("op 2 (same-key put) = %+v, want in-place update", out[2])
	}
	if out[3].Err != nil || out[3].Found {
		t.Errorf("op 3 (absent delete) = %+v", out[3])
	}
	if !errors.Is(out[4].Err, hashtab.ErrInvalidKey) {
		t.Errorf("op 4 (zero key) err = %v, want ErrInvalidKey", out[4].Err)
	}
	if out[5].Err != nil || !out[6].Found {
		t.Errorf("ops 5/6 (insert+delete) = %+v / %+v", out[5], out[6])
	}
	for _, want := range []int{0, 1, 2, 5, 6} {
		if !applied[want] {
			t.Errorf("mutating op %d never reached the commit hook", want)
		}
	}
	if applied[3] || applied[4] {
		t.Error("non-mutating op reached the commit hook")
	}

	if v, ok := c.Lookup(layout.Key{Lo: 1}); !ok || v != 11 {
		t.Errorf("key 1 = (%d, %v), want (11, true): same-key order violated", v, ok)
	}
	if got := c.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
	// Count persists: at most one per stripe-run that changed the count
	// (5 mutating ops across ≤ 8 stripes), never one per op.
	persists := tab.CountPersists() - persistsBefore
	if persists == 0 || persists > uint64(hookCalls) {
		t.Errorf("count persists = %d over %d runs — amortisation broken", persists, hookCalls)
	}
}

// TestApplyBatchAllocs pins the zero-steady-state-allocation contract
// with a reused scratch (no expansion in flight).
func TestApplyBatchAllocs(t *testing.T) {
	_, _, c := newBatchFixture(t, 1<<12, 16, 8)
	const n = 64
	ops := make([]BatchOp, n)
	out := make([]BatchResult, n)
	for i := range ops {
		ops[i] = BatchOp{Kind: BatchPut, Key: layout.Key{Lo: uint64(i + 1)}, Value: uint64(i)}
	}
	var sc BatchScratch
	committed := func(run []int) {}
	c.ApplyBatch(ops, out, &sc, committed) // warm the scratch
	if n := testing.AllocsPerRun(50, func() {
		c.ApplyBatch(ops, out, &sc, committed)
	}); n != 0 {
		t.Errorf("steady-state ApplyBatch allocates %.1f times per batch, want 0", n)
	}
}

// TestApplyBatchExpansionMidBatch drives a batch far past the initial
// capacity so placement fails mid-run and the run must wait out an
// online expansion and resume — the awaitRoom retry loop, amortised.
func TestApplyBatchExpansionMidBatch(t *testing.T) {
	_, tab, c := newBatchFixture(t, 64, 8, 4)
	c.EnableOnlineExpand()

	const n = 300 // initial capacity is 128 cells: forces ≥ 1 doubling mid-batch
	ops := make([]BatchOp, n)
	out := make([]BatchResult, n)
	for i := range ops {
		ops[i] = BatchOp{Kind: BatchInsert, Key: layout.Key{Lo: uint64(i + 1)}, Value: uint64(i + 1)}
	}
	c.ApplyBatch(ops, out, nil, nil)
	c.WaitExpansion()
	for i := range out {
		if out[i].Err != nil {
			t.Fatalf("op %d failed despite online expansion: %v", i, out[i].Err)
		}
	}
	if c.Expansions() == 0 {
		t.Fatal("batch fit without expanding — the test lost its point")
	}
	if got := c.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := c.Lookup(layout.Key{Lo: i}); !ok || v != i {
			t.Fatalf("key %d = (%d, %v) after mid-batch expansion", i, v, ok)
		}
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies: %v", bad)
	}
}

// TestApplyBatchCrashAtRunBoundaries is the batch crash-injection leg:
// capture the memory image at EVERY stripe-run boundary of a batch
// (the deterministic kill points), reopen each image as a restart
// would, run Recover, and verify the state is exactly the committed
// prefix of runs — every op of a committed run present exactly once,
// nothing from later runs, and the recomputed count agreeing — i.e.
// prefix-committed runs + stale count is a state recovery repairs.
func TestApplyBatchCrashAtRunBoundaries(t *testing.T) {
	mem, tab, c := newBatchFixture(t, 256, 16, 8)
	hdr := tab.Header()

	const n = 120
	ops := make([]BatchOp, n)
	out := make([]BatchResult, n)
	for i := range ops {
		ops[i] = BatchOp{Kind: BatchInsert, Key: layout.Key{Lo: uint64(i + 1)}, Value: uint64(i + 1)}
	}

	type capture struct {
		img       []byte
		allocated uint64
		byRun     [][]int // applied op indices of runs committed so far
	}
	var captures []capture
	var runs [][]int
	c.hookBatchRunCommitted = func(si int) {
		byRun := make([][]int, len(runs))
		copy(byRun, runs)
		captures = append(captures, capture{mem.Image(), mem.Allocated(), byRun})
	}
	c.ApplyBatch(ops, out, nil, func(applied []int) {
		runs = append(runs, append([]int(nil), applied...))
	})
	for i := range out {
		if out[i].Err != nil {
			t.Fatalf("op %d: %v", i, out[i].Err)
		}
	}
	if len(captures) < 2 {
		t.Fatalf("only %d stripe-runs — batch too small to exercise boundaries", len(captures))
	}

	for ci, cap := range captures {
		re := reopenImage(t, cap.img, cap.allocated, hdr)
		committed := make(map[uint64]bool)
		for _, run := range cap.byRun {
			for _, idx := range run {
				committed[ops[idx].Key.Lo] = true
			}
		}
		for i := uint64(1); i <= n; i++ {
			v, ok := re.Lookup(layout.Key{Lo: i})
			if committed[i] && (!ok || v != i) {
				t.Fatalf("capture %d: committed key %d = (%d, %v)", ci, i, v, ok)
			}
			if !committed[i] && ok {
				t.Fatalf("capture %d: uncommitted key %d present after crash", ci, i)
			}
		}
		if got := re.Len(); got != uint64(len(committed)) {
			t.Fatalf("capture %d: recovered count %d, want %d", ci, got, len(committed))
		}
		// Exactly-once: count matches and every committed key resolves, so
		// a duplicate could only hide if Range disagreed with Lookup.
		seen := make(map[uint64]int)
		re.Range(func(k layout.Key, v uint64) bool {
			seen[k.Lo]++
			return true
		})
		for k, times := range seen {
			if times != 1 {
				t.Fatalf("capture %d: key %d present %d times", ci, k, times)
			}
		}
	}
}
