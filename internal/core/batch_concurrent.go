package core

import (
	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
)

// This file extends InsertBatch's one-count-persist contract to the
// concurrent store: ApplyBatch applies a burst of mutations with one
// stripe-lock acquisition, one count persist, and one commit-hook call
// per STRIPE-RUN (a maximal run of same-stripe ops after a stable sort)
// instead of one of each per key. The server's reader funnels both
// explicit OpBatch frames and coalesced pipelined bursts through here.
//
// Crash semantics are InsertBatch's, per stripe-run: each cell commit
// is individually failure atomic, so a crash mid-run leaves a prefix of
// the run committed and the count word stale — exactly the state
// Algorithm 4's recovery (Recover) already repairs by recomputing the
// count from the bitmaps. Nothing in a run is acked before the commit
// hook has made it durable, so the committed prefix is always a prefix
// of what was logged.

// BatchKind selects the mutation a BatchOp performs.
type BatchKind uint8

const (
	// BatchPut upserts: overwrite in place if the key exists, insert
	// otherwise (Concurrent.Upsert's semantics).
	BatchPut BatchKind = iota + 1
	// BatchInsert inserts with Algorithm-1 semantics: no existing-key
	// check, duplicates allowed.
	BatchInsert
	// BatchDelete removes the key if present.
	BatchDelete
)

// BatchOp is one mutation of a batch.
type BatchOp struct {
	Kind  BatchKind
	Key   layout.Key
	Value uint64 // ignored by BatchDelete
}

// BatchResult is one op's outcome.
type BatchResult struct {
	// Err is nil, hashtab.ErrInvalidKey, or hashtab.ErrTableFull.
	Err error
	// Found reports the key already existed: a BatchPut that updated in
	// place, or a BatchDelete that removed something. An op with
	// Found=false and Err=nil inserted (Put/Insert) or found nothing to
	// remove (Delete).
	Found bool
}

// BatchScratch holds ApplyBatch's reusable working state so a serving
// loop pays zero steady-state allocations per batch. The zero value is
// ready; not safe for concurrent use.
type BatchScratch struct {
	order   []int32 // valid-key op indices, stable-grouped by stripe
	stripes []int32 // stripe per op, -1 = invalid key
	counts  []int32 // counting-sort workspace, one slot per stripe
	applied []int   // per-run op indices handed to the commit hook
}

// ApplyBatch applies ops in stripe-grouped runs, writing per-op
// outcomes into out (len(out) must equal len(ops)). Within a stripe,
// ops apply in submission order; across stripes, runs apply in stripe
// order — safe, because ops on different stripes can never touch the
// same key.
//
// Per stripe-run it takes the stripe lock once, applies every op of the
// run, bumps the count once (one persist barrier for the whole run),
// and — still inside the critical section — calls committed with the
// indices of the ops that actually mutated cells, in apply order. The
// server appends those to its oplog there, making (apply, log) one
// atomic step against Quiesce exactly like the single-op hooks. The
// applied slice is scratch: committed must consume it before returning.
//
// A full group mid-run commits the prefix (count + hook), releases the
// stripe, waits for the online expansion to make room (awaitRoom), and
// resumes the run against the grown table — the same retry loop as
// InsertHook, amortised. If expansion itself fails, the blocked op
// reports ErrTableFull and the rest of the run still applies (deletes
// and in-place puts can succeed in a full table).
//
// sc may be nil (a scratch is then allocated); committed may be nil.
func (c *Concurrent) ApplyBatch(ops []BatchOp, out []BatchResult, sc *BatchScratch, committed func(applied []int)) {
	if len(ops) != len(out) {
		panic("core: ApplyBatch len(ops) != len(out)")
	}
	if len(ops) == 0 {
		return
	}
	if sc == nil {
		sc = &BatchScratch{}
	}
	if cap(sc.stripes) < len(ops) {
		sc.stripes = make([]int32, len(ops))
	}
	sc.stripes = sc.stripes[:len(ops)]
	ns := len(c.stripes)
	if cap(sc.counts) < ns {
		sc.counts = make([]int32, ns)
	}
	counts := sc.counts[:ns]
	for s := range counts {
		counts[s] = 0
	}
	valid := 0
	for i := range ops {
		out[i] = BatchResult{}
		if !c.t.l.ValidKey(ops[i].Key) {
			out[i].Err = hashtab.ErrInvalidKey
			sc.stripes[i] = -1
			continue
		}
		_, si := c.stripeFor(ops[i].Key)
		sc.stripes[i] = int32(si)
		counts[si]++
		valid++
	}
	// Stable counting sort by stripe: O(ops + stripes) with no
	// comparator calls (a comparison sort here is ~15% of a batched
	// put's CPU). Submission order survives within a stripe — same-key
	// ops share a stripe, so program order per key is preserved.
	if cap(sc.order) < valid {
		sc.order = make([]int32, valid)
	}
	sc.order = sc.order[:valid]
	next := int32(0)
	for s := range counts {
		n := counts[s]
		counts[s] = next
		next += n
	}
	for i := range ops {
		if si := sc.stripes[i]; si >= 0 {
			sc.order[counts[si]] = int32(i)
			counts[si]++
		}
	}
	for start := 0; start < len(sc.order); {
		si := int(sc.stripes[sc.order[start]])
		end := start + 1
		for end < len(sc.order) && int(sc.stripes[sc.order[end]]) == si {
			end++
		}
		c.applyRun(ops, out, sc, si, sc.order[start:end], committed)
		start = end
	}
}

// applyRun applies one stripe-run (the op indices in run, all mapping
// to stripe si), re-locking and resuming after each expansion wait.
func (c *Concurrent) applyRun(ops []BatchOp, out []BatchResult, sc *BatchScratch, si int, run []int32, committed func(applied []int)) {
	s := &c.stripes[si]
	noRoom := false // a failed awaitRoom: full-group ops now fail for good
	i := 0
	for i < len(run) {
		s.lock()
		vw := c.routeView(si)
		sc.applied = sc.applied[:0]
		delta := int64(0)
		full := false
		for ; i < len(run); i++ {
			idx := int(run[i])
			op := &ops[idx]
			switch op.Kind {
			case BatchPut:
				if c.t.updateIn(vw, op.Key, op.Value) {
					out[idx].Found = true
					sc.applied = append(sc.applied, idx)
					continue
				}
				if c.t.placeIn(vw, op.Key, op.Value) {
					delta++
					sc.applied = append(sc.applied, idx)
					continue
				}
			case BatchInsert:
				if c.t.placeIn(vw, op.Key, op.Value) {
					delta++
					sc.applied = append(sc.applied, idx)
					continue
				}
			case BatchDelete:
				if c.t.removeIn(vw, op.Key) {
					out[idx].Found = true
					delta--
					sc.applied = append(sc.applied, idx)
				}
				continue
			default:
				panic("core: ApplyBatch: unknown BatchKind")
			}
			// Placement failed: the op's groups are full.
			if noRoom {
				out[idx].Err = hashtab.ErrTableFull
				continue
			}
			full = true
			break
		}
		if delta != 0 {
			c.bumpCount(delta)
		}
		if len(sc.applied) > 0 && committed != nil {
			committed(sc.applied)
		}
		s.unlock()
		if c.hookBatchRunCommitted != nil {
			c.hookBatchRunCommitted(si)
		}
		if full {
			// The committed prefix stays committed (exactly InsertBatch's
			// contract); wait for room and resume the run where it stopped.
			if err := c.awaitRoom(si); err != nil {
				noRoom = true
			}
		}
	}
	c.maybeTriggerExpand()
}
