package core

import (
	"sync"
	"testing"

	"grouphash/internal/layout"
	"grouphash/internal/native"
)

func TestConcurrentBasicOps(t *testing.T) {
	mem := native.New(16 << 20)
	tab := mustCreate(t, mem, Options{Cells: 4096, GroupSize: 64, Seed: 6})
	c := NewConcurrent(tab, 0)
	if c.Name() != "group-concurrent" {
		t.Fatal("name")
	}
	if err := c.Insert(layout.Key{Lo: 5}, 50); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Lookup(layout.Key{Lo: 5}); !ok || v != 50 {
		t.Fatalf("lookup = (%d, %v)", v, ok)
	}
	if !c.Update(layout.Key{Lo: 5}, 51) {
		t.Fatal("update failed")
	}
	if !c.Delete(layout.Key{Lo: 5}) {
		t.Fatal("delete failed")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Capacity() != tab.Capacity() || c.LoadFactor() != 0 {
		t.Fatal("capacity/load factor passthrough broken")
	}
}

func TestConcurrentParallelInserts(t *testing.T) {
	mem := native.New(64 << 20)
	tab := mustCreate(t, mem, Options{Cells: 1 << 15, GroupSize: 64, Seed: 7})
	c := NewConcurrent(tab, 64)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := layout.Key{Lo: uint64(w*perWorker + i + 1)}
				if err := c.Insert(k, k.Lo*2); err != nil {
					t.Errorf("worker %d insert %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := c.Len(); got != workers*perWorker {
		t.Fatalf("Len = %d, want %d", got, workers*perWorker)
	}
	for i := uint64(1); i <= workers*perWorker; i++ {
		if v, ok := c.Lookup(layout.Key{Lo: i}); !ok || v != i*2 {
			t.Fatalf("key %d = (%d, %v)", i, v, ok)
		}
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies: %v", bad)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	mem := native.New(64 << 20)
	tab := mustCreate(t, mem, Options{Cells: 1 << 14, GroupSize: 64, Seed: 8})
	c := NewConcurrent(tab, 0)
	// Pre-populate disjoint key ranges; each worker owns its range, so
	// per-key semantics stay deterministic under concurrency.
	const workers = 6
	const rangeSize = 1500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w*rangeSize + 1)
			for i := uint64(0); i < rangeSize; i++ {
				k := layout.Key{Lo: base + i}
				if err := c.Insert(k, i); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
			for i := uint64(0); i < rangeSize; i += 2 {
				if !c.Delete(layout.Key{Lo: base + i}) {
					t.Errorf("delete failed")
					return
				}
			}
			for i := uint64(0); i < rangeSize; i++ {
				_, ok := c.Lookup(layout.Key{Lo: base + i})
				if want := i%2 == 1; ok != want {
					t.Errorf("key %d presence %v, want %v", base+i, ok, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	want := uint64(workers * rangeSize / 2)
	if c.Len() != want {
		t.Fatalf("Len = %d, want %d", c.Len(), want)
	}
}

func TestConcurrentStripeRounding(t *testing.T) {
	mem := native.New(1 << 20)
	tab := mustCreate(t, mem, Options{Cells: 128, GroupSize: 16})
	c := NewConcurrent(tab, 5) // rounds up to 8
	if len(c.stripes) != 8 {
		t.Fatalf("stripes = %d, want 8", len(c.stripes))
	}
	if c.Table() != tab {
		t.Fatal("Table() passthrough broken")
	}
}
