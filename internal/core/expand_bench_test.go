package core

import (
	"testing"

	"grouphash/internal/layout"
	"grouphash/internal/native"
)

// BenchmarkExpandRehash times one full-table rehash into doubled
// arrays on the native backend. The parallel migration path keys off
// GOMAXPROCS, so running with -cpu 1,2,4 compares the sequential path
// (cpu=1) against the group-range worker pool:
//
//	go test -run XXX -bench ExpandRehash -cpu 1,2,4 ./internal/core
func BenchmarkExpandRehash(b *testing.B) {
	const l1 = 1 << 15
	mem := native.New(1 << 16)
	tab, err := Create(mem, Options{Cells: l1, GroupSize: 256, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	items := uint64(l1 * 2 * 7 / 10)
	for i := uint64(1); i <= items; i++ {
		if err := tab.Insert(layout.Key{Lo: i * 0x9e3779b97f4a7c15}, i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		mark := mem.Mark()
		nvw := tab.newView(l1*2, 11)
		b.StartTimer()
		if !tab.rehashInto(tab.cur(), nvw) {
			b.Fatal("rehash failed")
		}
		b.StopTimer()
		mem.Release(mark)
		b.StartTimer()
	}
	b.SetBytes(int64(items * tab.l.CellSize()))
}
