package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/native"
)

// TestConcurrentZeroKeyRejected is the regression test for the
// concurrent wrapper committing the compact layout's reserved zero key
// (which would corrupt the key-word-as-bitmap occupancy invariant):
// Insert and Upsert must reject it exactly as Table.Insert does.
func TestConcurrentZeroKeyRejected(t *testing.T) {
	mem := native.New(1 << 20)
	tab := mustCreate(t, mem, Options{Cells: 256, GroupSize: 16, Seed: 3})
	c := NewConcurrent(tab, 0)
	if err := c.Insert(layout.Key{}, 7); !errors.Is(err, hashtab.ErrInvalidKey) {
		t.Fatalf("Insert(zero key) = %v, want ErrInvalidKey", err)
	}
	if err := c.Upsert(layout.Key{}, 7); !errors.Is(err, hashtab.ErrInvalidKey) {
		t.Fatalf("Upsert(zero key) = %v, want ErrInvalidKey", err)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after rejected inserts, want 0", c.Len())
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies after rejected zero key: %v", bad)
	}
}

// TestConcurrentUpsertNoDuplicates races many goroutines upserting the
// SAME fresh key: the single-lock upsert must leave exactly one item,
// where a caller-composed Update-then-Insert would race into
// duplicates.
func TestConcurrentUpsertNoDuplicates(t *testing.T) {
	mem := native.New(8 << 20)
	tab := mustCreate(t, mem, Options{Cells: 1 << 12, GroupSize: 64, Seed: 9})
	c := NewConcurrent(tab, 0)
	const workers = 8
	const rounds = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := layout.Key{Lo: uint64(i%50 + 1)}
				if err := c.Upsert(k, uint64(w)); err != nil {
					t.Errorf("upsert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if c.Len() != 50 {
		t.Fatalf("Len = %d, want 50 (upserts must not duplicate)", c.Len())
	}
	seen := make(map[uint64]int)
	tab.Range(func(k layout.Key, v uint64) bool {
		seen[k.Lo]++
		return true
	})
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("key %d stored %d times", k, n)
		}
	}
}

// TestConcurrentChurn exercises the FULL wrapper API — Insert, Upsert,
// Update, Delete, Lookup, Len — under -race: each worker churns a
// disjoint key range (so per-key expectations stay deterministic)
// while a shared reader sweeps the whole space through the seqlock
// path.
func TestConcurrentChurn(t *testing.T) {
	mem := native.New(64 << 20)
	tab := mustCreate(t, mem, Options{Cells: 1 << 14, GroupSize: 64, Seed: 11})
	c := NewConcurrent(tab, 0)
	const workers = 6
	const rangeSize = 800
	const rounds = 3
	var stop atomic.Bool
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() { // shared reader across all ranges, lock-free path
		defer rwg.Done()
		for !stop.Load() {
			for i := uint64(1); i <= workers*rangeSize; i += 37 {
				c.Lookup(layout.Key{Lo: i})
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w*rangeSize + 1)
			for r := 0; r < rounds; r++ {
				for i := uint64(0); i < rangeSize; i++ {
					k := layout.Key{Lo: base + i}
					if err := c.Upsert(k, uint64(r)<<32|i); err != nil {
						t.Errorf("upsert: %v", err)
						return
					}
				}
				for i := uint64(0); i < rangeSize; i += 2 {
					if !c.Update(layout.Key{Lo: base + i}, ^uint64(0)) {
						t.Errorf("update of present key failed")
						return
					}
				}
				for i := uint64(1); i < rangeSize; i += 2 {
					if !c.Delete(layout.Key{Lo: base + i}) {
						t.Errorf("delete of present key failed")
						return
					}
				}
				for i := uint64(0); i < rangeSize; i++ {
					v, ok := c.Lookup(layout.Key{Lo: base + i})
					if want := i%2 == 0; ok != want {
						t.Errorf("round %d key %d presence %v, want %v", r, base+i, ok, want)
						return
					}
					if ok && v != ^uint64(0) {
						t.Errorf("round %d key %d value %#x", r, base+i, v)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	rwg.Wait()
	if t.Failed() {
		return
	}
	want := uint64(workers) * (rangeSize / 2)
	if c.Len() != want {
		t.Fatalf("Len = %d, want %d", c.Len(), want)
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies after churn: %v", bad)
	}
}

// TestConcurrentQuiesce verifies the snapshot hook: while writers
// hammer the table, every Quiesce window must observe a fully
// consistent table (no mid-commit state, count matching the bitmaps).
func TestConcurrentQuiesce(t *testing.T) {
	mem := native.New(32 << 20)
	tab := mustCreate(t, mem, Options{Cells: 1 << 13, GroupSize: 64, Seed: 13})
	c := NewConcurrent(tab, 8)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w*4000 + 1)
			for i := uint64(0); !stop.Load(); i++ {
				k := layout.Key{Lo: base + i%2000}
				if i%3 == 2 {
					c.Delete(k)
				} else if err := c.Upsert(k, i); err != nil {
					t.Errorf("upsert: %v", err)
					return
				}
			}
		}(w)
	}
	for round := 0; round < 20; round++ {
		c.Quiesce(func() {
			if bad := tab.CheckConsistency(); len(bad) != 0 {
				t.Errorf("round %d: table inconsistent inside quiesce: %v", round, bad)
			}
			var n uint64
			tab.Range(func(layout.Key, uint64) bool { n++; return true })
			if n != tab.Len() {
				t.Errorf("round %d: count %d != occupied cells %d", round, tab.Len(), n)
			}
		})
	}
	stop.Store(true)
	wg.Wait()
}
