package core

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
)

// Concurrent wraps a Table with per-group striped locking, an extension
// beyond the (single-threaded) paper. Group sharing gives a natural
// concurrency unit: an operation on key k touches only its level-1 cell
// and the matching level-2 group, both inside group g = h(k)/group_size,
// so operations on different groups never conflict.
//
// Writes take the stripe lock exclusively. Reads use a seqlock-style
// optimistic protocol when the backend allows it (see Lookup): each
// stripe carries a version counter that writers bump to odd on entry
// and back to even on exit, so a reader can probe with no lock held and
// retry if the version moved under it. On backends without atomic word
// reads (the simulator), reads fall back to the shared stripe lock.
//
// A stripe covers a CONTIGUOUS run of groups: stripe s owns groups
// [s·G/S, (s+1)·G/S) where G is the group count and S the stripe count
// (both powers of two, S ≤ G). Equivalently the stripe index is the TOP
// log2(S) bits of the group index — and because the hash function also
// takes the top bits of the hash word, doubling the table appends bits
// at the BOTTOM of every index and leaves the top bits untouched: a
// key's stripe is invariant across expansions. That invariance is what
// makes stop-less online expansion (see expand_online.go) race-free —
// a writer can pick its stripe from a momentarily stale view and still
// lock the same stripe the migration worker locks.
//
// The persistent count word is shared by all groups; it is protected by
// its own mutex, taken after the group lock (a fixed order, so no
// deadlock).
//
// Concurrent is intended for the native memory backend: the simulated
// backend has a single global clock and cache, which would serialise
// everything anyway.
type Concurrent struct {
	t       *Table
	stripes []stripe
	countMu sync.Mutex
	// optimistic enables the lock-free read path: the backend has
	// atomic word reads (hashtab.ConcurrentReader) and the table has no
	// volatile group-occupancy index (whose counters are written
	// without atomics). Fixed at construction.
	optimistic bool

	// Online-expansion state; see expand_online.go.
	expandOK   bool                     // EnableOnlineExpand was called
	expandMu   sync.Mutex               // serialises expansion starts
	exp        atomic.Pointer[expState] // non-nil while one is in flight
	expansions atomic.Uint64            // completed expansions
	fallbacks  atomic.Uint64            // expansions that needed the stop-the-world rebuild
	stripesMig atomic.Uint64            // stripes migrated, cumulative across expansions
	stallNanos atomic.Uint64            // total writer wall time blocked in awaitRoom

	// Test hooks. hookPreFlip runs inside finishExpansion with every
	// stripe held, just before the header-slot flip; hookStripeDone
	// runs after each stripe's migration completes; hookMigrateFail,
	// when it returns true for a stripe, makes that stripe's migration
	// report overflow (exercising the fallback rebuild). All must be
	// set before any expansion can start.
	hookPreFlip     func()
	hookStripeDone  func(si int)
	hookMigrateFail func(si int) bool
	// hookBatchRunCommitted runs after each ApplyBatch stripe-run's
	// unlock — the deterministic stripe-boundary kill point the batch
	// crash-injection tests capture at.
	hookBatchRunCommitted func(si int)
}

// stripe is one lock unit: an exclusive/shared mutex for writers and
// pessimistic readers, plus the seqlock version counter (odd = write in
// progress). Padded to a cacheline so stripes on different cores don't
// false-share.
type stripe struct {
	mu  sync.RWMutex
	seq atomic.Uint64
	_   [64 - 32]byte
}

// seqlockRetries is how many optimistic attempts a reader makes before
// falling back to the shared stripe lock. Retries only happen while a
// writer holds the same stripe, so a small budget suffices; the
// fallback guarantees progress under write storms.
const seqlockRetries = 4

// NewConcurrent wraps t. stripes is rounded up to a power of two and
// clamped to the group count; 0 means one stripe per 64 groups, capped
// at 1024.
func NewConcurrent(t *Table, stripes int) *Concurrent {
	if t.two {
		// A two-choice operation touches two groups; per-group striping
		// would need ordered two-lock acquisition. Not supported.
		panic("core: Concurrent does not support two-choice tables")
	}
	groups := int(t.Cells() / t.GroupSize())
	if stripes <= 0 {
		stripes = groups / 64
		if stripes < 1 {
			stripes = 1
		}
		if stripes > 1024 {
			stripes = 1024
		}
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	if n > groups {
		n = groups // stripe coverage must be ≥ 1 group
	}
	_, atomicMem := t.mem.(hashtab.ConcurrentReader)
	return &Concurrent{
		t:          t,
		stripes:    make([]stripe, n),
		optimistic: atomicMem && t.cur().occ == nil,
	}
}

// Table returns the wrapped table. Callers must not use it while
// concurrent operations are in flight.
func (c *Concurrent) Table() *Table { return c.t }

// OptimisticReads reports whether lookups use the lock-free seqlock
// path (true on atomic-word backends) or the shared stripe lock.
func (c *Concurrent) OptimisticReads() bool { return c.optimistic }

// stripeFor maps k to its stripe. The index is the top log2(S) bits of
// the group index, which the doubling expansion never changes (see the
// type comment), so the answer is correct even if the view flips
// between this call and the lock acquisition.
func (c *Concurrent) stripeFor(k layout.Key) (*stripe, int) {
	vw := c.t.cur()
	g := vw.h.Index(k.Lo, k.Hi) / c.t.gsz
	groups := vw.tab1.N / c.t.gsz
	si := int(g >> uint(bits.TrailingZeros64(groups/uint64(len(c.stripes)))))
	return &c.stripes[si], si
}

// routeView picks the view an operation on stripe si must address.
// Must be called with the stripe lock (or read lock) held: migration
// state for a stripe only changes under its lock, so the answer is
// stable for the critical section. Once a stripe has been migrated,
// its operations go EXCLUSIVELY to the new arrays — migration copied
// every live item, so the new arrays are authoritative and the old
// ones are dead weight awaiting the flip.
func (c *Concurrent) routeView(si int) *view {
	if e := c.exp.Load(); e != nil && e.migrated[si].Load() {
		return e.nvw
	}
	return c.t.cur()
}

// lock takes s exclusively and marks a write in progress (version goes
// odd). unlock publishes the write (version back to even) and releases.
func (s *stripe) lock() {
	s.mu.Lock()
	s.seq.Add(1)
}

func (s *stripe) unlock() {
	s.seq.Add(1)
	s.mu.Unlock()
}

// Name implements hashtab.Table.
func (c *Concurrent) Name() string { return "group-concurrent" }

// Insert stores (k, v) under the group lock. Placement delegates to
// the same placeIn helper the sequential Insert uses, so the two paths
// cannot drift; the key is validated first, exactly as in Table.Insert
// (the compact layout's reserved zero key would corrupt the
// key-word-as-bitmap occupancy invariant if committed). Count
// maintenance happens under the count mutex; the commit order (cell
// first, count second) matches the sequential protocol, so crash
// consistency is unchanged.
//
// When online expansion is enabled, a full group no longer fails the
// insert: the writer kicks off (or joins) an expansion, blocks until
// the migration has drained its stripe — a per-stripe wait, typically
// far shorter than a full rehash — and retries against the doubled
// arrays. ErrTableFull then only escapes if expansion itself fails.
func (c *Concurrent) Insert(k layout.Key, v uint64) error {
	return c.InsertHook(k, v, nil)
}

// InsertHook is Insert with a commit hook: on success, committed (if
// non-nil) runs after the cells are updated but before the stripe lock
// is released. The server logs the mutation to its oplog there, making
// (apply, append) one atomic step against Quiesce — the snapshot path
// reads its oplog mark with every stripe held, so the mark always
// equals exactly what the captured image contains. The hook must not
// touch the store (self-deadlock) and must be brief: it runs inside
// the stripe's critical section.
func (c *Concurrent) InsertHook(k layout.Key, v uint64, committed func()) error {
	if !c.t.l.ValidKey(k) {
		return hashtab.ErrInvalidKey
	}
	for {
		s, si := c.stripeFor(k)
		s.lock()
		ok := c.t.placeIn(c.routeView(si), k, v)
		if ok {
			c.bumpCount(1)
			if committed != nil {
				committed()
			}
		}
		s.unlock()
		if ok {
			c.maybeTriggerExpand()
			return nil
		}
		if err := c.awaitRoom(si); err != nil {
			return err
		}
	}
}

// Upsert stores (k, v), overwriting any existing value for k, as one
// atomic operation under the group lock. Unlike an Update-then-Insert
// sequence composed by the caller (two separate lock acquisitions,
// between which another goroutine can insert the same key), Upsert
// cannot create duplicate items under concurrency — the property a
// networked front-end's PUT needs. Full groups expand-and-retry
// exactly as in Insert.
func (c *Concurrent) Upsert(k layout.Key, v uint64) error {
	return c.UpsertHook(k, v, nil)
}

// UpsertHook is Upsert with a commit hook; see InsertHook for the
// contract. The hook runs on both outcomes (in-place update and fresh
// insert), always inside the stripe's critical section.
func (c *Concurrent) UpsertHook(k layout.Key, v uint64, committed func()) error {
	if !c.t.l.ValidKey(k) {
		return hashtab.ErrInvalidKey
	}
	for {
		s, si := c.stripeFor(k)
		s.lock()
		vw := c.routeView(si)
		if c.t.updateIn(vw, k, v) {
			if committed != nil {
				committed()
			}
			s.unlock()
			return nil
		}
		ok := c.t.placeIn(vw, k, v)
		if ok {
			c.bumpCount(1)
			if committed != nil {
				committed()
			}
		}
		s.unlock()
		if ok {
			c.maybeTriggerExpand()
			return nil
		}
		if err := c.awaitRoom(si); err != nil {
			return err
		}
	}
}

// Lookup returns the value under k. On backends with atomic word reads
// it first runs the seqlock fast path: read the stripe version (even
// means no writer), probe with no lock held, and accept the result only
// if the version is unchanged — otherwise a concurrent writer may have
// torn the multi-word cell mid-probe, so retry. After seqlockRetries
// failed attempts it degrades to the shared stripe lock, which cannot
// starve. Word reads are individually atomic, so the probe itself never
// sees a torn word; the version check is what makes the multi-word
// (commit word + payload) read consistent.
//
// During an online expansion the expansion state and the stripe's
// migrated flag are read INSIDE the seqlock window: migration drains a
// stripe under its lock and the root flip happens with every stripe
// held, so any probe that raced either one fails version validation
// and retries.
func (c *Concurrent) Lookup(k layout.Key) (uint64, bool) {
	s, si := c.stripeFor(k)
	if c.optimistic {
		for try := 0; try < seqlockRetries; try++ {
			v1 := s.seq.Load()
			if v1&1 != 0 {
				// A writer is mid-update; yield instead of spinning.
				runtime.Gosched()
				continue
			}
			v, ok := c.t.lookupIn(c.routeView(si), k)
			if s.seq.Load() == v1 {
				return v, ok
			}
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return c.t.lookupIn(c.routeView(si), k)
}

// Delete removes k under the group lock, delegating to the same
// removeIn helper as the sequential Delete.
func (c *Concurrent) Delete(k layout.Key) bool {
	return c.DeleteHook(k, nil)
}

// DeleteHook is Delete with a commit hook; see InsertHook for the
// contract. The hook runs only when the key existed and was removed.
func (c *Concurrent) DeleteHook(k layout.Key, committed func()) bool {
	s, si := c.stripeFor(k)
	s.lock()
	defer s.unlock()
	if !c.t.removeIn(c.routeView(si), k) {
		return false
	}
	c.bumpCount(-1)
	if committed != nil {
		committed()
	}
	return true
}

// Update overwrites an existing key's value under the group lock.
func (c *Concurrent) Update(k layout.Key, v uint64) bool {
	s, si := c.stripeFor(k)
	s.lock()
	defer s.unlock()
	return c.t.updateIn(c.routeView(si), k, v)
}

func (c *Concurrent) bumpCount(delta int64) {
	c.countMu.Lock()
	c.t.setCount(uint64(int64(c.t.Len()) + delta))
	c.countMu.Unlock()
}

// Len reads the count under the count mutex.
func (c *Concurrent) Len() uint64 {
	c.countMu.Lock()
	defer c.countMu.Unlock()
	return c.t.Len()
}

// Capacity returns the wrapped table's capacity.
func (c *Concurrent) Capacity() uint64 { return c.t.Capacity() }

// LoadFactor returns Len/Capacity.
func (c *Concurrent) LoadFactor() float64 {
	return float64(c.Len()) / float64(c.Capacity())
}

// Quiesce runs fn while every stripe is held exclusively: no insert,
// upsert, delete or update is in flight, optimistic readers observe an
// odd version and fall back to the (blocked) shared lock, and the
// wrapped table is momentarily as quiet as a single-threaded one.
// This is the snapshot hook: fn may read the entire backing memory
// (e.g. copy an image for a pmfs save) without racing any writer.
// Stripes are always taken in index order, so concurrent Quiesce calls
// cannot deadlock each other; fn must not call other methods of c
// (they would self-deadlock on the held stripes) but may use the
// wrapped Table directly.
//
// Quiesce also waits out any in-flight online expansion first — a
// snapshot taken mid-migration would capture new arrays that no header
// slot points to yet. The wait/lock sequence loops because a writer can
// trigger a fresh expansion between the wait and the last lock
// acquisition.
func (c *Concurrent) Quiesce(fn func()) {
	for {
		c.WaitExpansion()
		for i := range c.stripes {
			c.stripes[i].lock()
		}
		if c.exp.Load() == nil {
			break
		}
		// An expansion started while we were acquiring locks; let it
		// run to completion and retry.
		for i := range c.stripes {
			c.stripes[i].unlock()
		}
	}
	fn()
	for i := range c.stripes {
		c.stripes[i].unlock()
	}
}
