package core

import (
	"sync"

	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
)

// Concurrent wraps a Table with per-group striped locking, an extension
// beyond the (single-threaded) paper. Group sharing gives a natural
// concurrency unit: an operation on key k touches only its level-1 cell
// and the matching level-2 group, both inside group g = h(k)/group_size,
// so operations on different groups never conflict.
//
// The persistent count word is shared by all groups; it is protected by
// its own mutex, taken after the group lock (a fixed order, so no
// deadlock). Lookups take the group lock shared.
//
// Concurrent is intended for the native memory backend: the simulated
// backend has a single global clock and cache, which would serialise
// everything anyway.
type Concurrent struct {
	t       *Table
	stripes []sync.RWMutex
	countMu sync.Mutex
	mask    uint64
}

// NewConcurrent wraps t. stripes is rounded up to a power of two;
// 0 means one stripe per 64 groups, capped at 1024.
func NewConcurrent(t *Table, stripes int) *Concurrent {
	if t.two {
		// A two-choice operation touches two groups; per-group striping
		// would need ordered two-lock acquisition. Not supported.
		panic("core: Concurrent does not support two-choice tables")
	}
	if stripes <= 0 {
		groups := int(t.Cells() / t.GroupSize())
		stripes = groups / 64
		if stripes < 1 {
			stripes = 1
		}
		if stripes > 1024 {
			stripes = 1024
		}
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	return &Concurrent{t: t, stripes: make([]sync.RWMutex, n), mask: uint64(n - 1)}
}

// Table returns the wrapped table. Callers must not use it while
// concurrent operations are in flight.
func (c *Concurrent) Table() *Table { return c.t }

func (c *Concurrent) stripe(k layout.Key) *sync.RWMutex {
	g := c.t.h.Index(k.Lo, k.Hi) / c.t.gsz
	return &c.stripes[g&c.mask]
}

// Name implements hashtab.Table.
func (c *Concurrent) Name() string { return "group-concurrent" }

// Insert stores (k, v) under the group lock. Count maintenance happens
// under the count mutex; the commit order (cell first, count second)
// matches the sequential protocol, so crash consistency is unchanged.
func (c *Concurrent) Insert(k layout.Key, v uint64) error {
	mu := c.stripe(k)
	mu.Lock()
	defer mu.Unlock()
	idx := c.t.h.Index(k.Lo, k.Hi)
	if !c.t.tab1.Occupied(idx) {
		c.t.tab1.InsertAt(idx, k, v)
		c.bumpCount(1)
		return nil
	}
	j := c.t.groupStart(idx)
	for i := uint64(0); i < c.t.gsz; i++ {
		if !c.t.tab2.Occupied(j + i) {
			c.t.tab2.InsertAt(j+i, k, v)
			c.t.noteL2Insert(j)
			c.bumpCount(1)
			return nil
		}
	}
	return hashtab.ErrTableFull
}

// Lookup returns the value under a shared group lock.
func (c *Concurrent) Lookup(k layout.Key) (uint64, bool) {
	mu := c.stripe(k)
	mu.RLock()
	defer mu.RUnlock()
	return c.t.Lookup(k)
}

// Delete removes k under the group lock.
func (c *Concurrent) Delete(k layout.Key) bool {
	mu := c.stripe(k)
	mu.Lock()
	defer mu.Unlock()
	idx := c.t.h.Index(k.Lo, k.Hi)
	if c.t.tab1.Matches(idx, k) {
		c.t.tab1.DeleteAt(idx)
		c.bumpCount(-1)
		return true
	}
	j := c.t.groupStart(idx)
	for i := uint64(0); i < c.t.gsz; i++ {
		if c.t.tab2.Matches(j+i, k) {
			c.t.tab2.DeleteAt(j + i)
			c.t.noteL2Delete(j)
			c.bumpCount(-1)
			return true
		}
	}
	return false
}

// Update overwrites an existing key's value under the group lock.
func (c *Concurrent) Update(k layout.Key, v uint64) bool {
	mu := c.stripe(k)
	mu.Lock()
	defer mu.Unlock()
	return c.t.Update(k, v)
}

func (c *Concurrent) bumpCount(delta int64) {
	c.countMu.Lock()
	c.t.setCount(uint64(int64(c.t.Len()) + delta))
	c.countMu.Unlock()
}

// Len reads the count under the count mutex.
func (c *Concurrent) Len() uint64 {
	c.countMu.Lock()
	defer c.countMu.Unlock()
	return c.t.Len()
}

// Capacity returns the wrapped table's capacity.
func (c *Concurrent) Capacity() uint64 { return c.t.Capacity() }

// LoadFactor returns Len/Capacity.
func (c *Concurrent) LoadFactor() float64 {
	return float64(c.Len()) / float64(c.Capacity())
}
