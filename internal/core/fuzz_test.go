package core

import (
	"testing"

	"grouphash/internal/cache"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/native"
)

// Native Go fuzz targets. `go test` executes the seed corpus below as
// ordinary tests; `go test -fuzz=FuzzTableOps ./internal/core` explores
// further.

// FuzzTableOps drives an arbitrary operation stream (decoded from the
// fuzz input bytes) against a map oracle.
func FuzzTableOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0, 255, 255, 1, 1, 128, 64, 32, 16})
	f.Add([]byte("insert-delete-lookup-update"))
	f.Fuzz(func(t *testing.T, data []byte) {
		mem := native.New(4 << 20)
		tab, err := Create(mem, Options{Cells: 256, GroupSize: 16, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		oracle := make(map[uint64]uint64)
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i] % 4
			key := uint64(data[i+1])%200 + 1
			k := layout.Key{Lo: key}
			switch op {
			case 0:
				if _, exists := oracle[key]; !exists {
					if tab.Insert(k, key*3) == nil {
						oracle[key] = key * 3
					}
				}
			case 1:
				v, ok := tab.Lookup(k)
				ov, ook := oracle[key]
				if ok != ook || (ok && v != ov) {
					t.Fatalf("lookup(%d) = (%d,%v), oracle (%d,%v)", key, v, ok, ov, ook)
				}
			case 2:
				got := tab.Delete(k)
				if _, want := oracle[key]; got != want {
					t.Fatalf("delete(%d) = %v, oracle %v", key, got, want)
				}
				delete(oracle, key)
			case 3:
				if tab.Update(k, key+7) {
					if _, exists := oracle[key]; !exists {
						t.Fatalf("updated absent key %d", key)
					}
					oracle[key] = key + 7
				} else if _, exists := oracle[key]; exists {
					t.Fatalf("failed to update present key %d", key)
				}
			}
		}
		if tab.Len() != uint64(len(oracle)) {
			t.Fatalf("Len = %d, oracle %d", tab.Len(), len(oracle))
		}
		if bad := tab.CheckConsistency(); len(bad) != 0 {
			t.Fatalf("inconsistencies: %v", bad)
		}
	})
}

// FuzzCrashRecovery decodes (op stream, crash point, survival byte)
// from the input, injects a mid-stream shadow crash, recovers and
// checks the §3.3 invariants.
func FuzzCrashRecovery(f *testing.F) {
	f.Add([]byte{10, 1, 2, 3, 4, 5, 6, 7, 8, 9}, uint16(20), byte(128))
	f.Add([]byte{1, 1, 1, 1}, uint16(1), byte(0))
	f.Add([]byte{255, 0, 255, 0, 255, 0}, uint16(500), byte(255))
	f.Fuzz(func(t *testing.T, data []byte, crashOff uint16, survival byte) {
		mem := memsim.New(memsim.Config{Size: 4 << 20, Seed: 11, Geoms: cache.SmallGeometry()})
		tab, err := Create(mem, Options{Cells: 256, GroupSize: 16, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		committed := make(map[uint64]uint64)
		uncertain := make(map[uint64]bool)

		start := mem.Counters().Accesses
		crashAt := start + uint64(crashOff) + 1
		mem.ScheduleShadowCrash(crashAt, float64(survival)/255)

		// The op stream runs to completion; the shadow crash captures
		// the state at the trigger. An op is durably committed only if
		// it finished STRICTLY before the trigger (its final persist
		// runs after its last counted access); the op containing the
		// trigger is uncertain — legal either way.
		for i := 0; i+1 < len(data); i += 2 {
			key := uint64(data[i])%200 + 1
			k := layout.Key{Lo: key}
			_, exists := committed[key]
			var mutated bool
			opStart := mem.Counters().Accesses
			if !exists && data[i+1]%2 == 0 {
				mutated = tab.Insert(k, key) == nil
			} else if exists && data[i+1]%2 == 1 {
				mutated = tab.Delete(k)
			}
			if !mutated {
				continue
			}
			opEnd := mem.Counters().Accesses
			switch {
			case opEnd < crashAt: // fully before the cut
				if !exists {
					committed[key] = key
				} else {
					delete(committed, key)
				}
			case opStart < crashAt: // the op containing the cut
				uncertain[key] = true
			}
		}
		if !mem.AdoptShadowCrash() {
			return // stream too short to reach the crash point
		}
		if _, err := tab.Recover(); err != nil {
			t.Fatal(err)
		}
		if bad := tab.CheckConsistency(); len(bad) != 0 {
			t.Fatalf("inconsistencies after recovery: %v", bad)
		}
		for key, v := range committed {
			if uncertain[key] {
				continue
			}
			got, ok := tab.Lookup(layout.Key{Lo: key})
			if !ok || got != v {
				t.Fatalf("committed key %d lost: (%d, %v)", key, got, ok)
			}
		}
	})
}
