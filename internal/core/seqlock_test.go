package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"grouphash/internal/cache"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/native"
)

// lockedOnlyMem wraps a native.Memory WITHOUT forwarding the
// ConcurrentReadSafe marker, forcing Concurrent onto the pessimistic
// read-lock path. Used to test and benchmark both modes.
type lockedOnlyMem struct{ m *native.Memory }

func (w lockedOnlyMem) Read8(addr uint64) uint64        { return w.m.Read8(addr) }
func (w lockedOnlyMem) Write8(addr, val uint64)         { w.m.Write8(addr, val) }
func (w lockedOnlyMem) AtomicWrite8(addr, val uint64)   { w.m.AtomicWrite8(addr, val) }
func (w lockedOnlyMem) Persist(addr, n uint64)          {}
func (w lockedOnlyMem) Alloc(size, align uint64) uint64 { return w.m.Alloc(size, align) }
func (w lockedOnlyMem) Size() uint64                    { return w.m.Size() }

func TestConcurrentOptimisticModeSelection(t *testing.T) {
	// Native backend: atomic word reads, so the seqlock path is on.
	tab := mustCreate(t, native.New(1<<20), Options{Cells: 256, GroupSize: 16})
	if c := NewConcurrent(tab, 0); !c.OptimisticReads() {
		t.Fatal("native backend should enable optimistic reads")
	}

	// Group-occupancy index: its volatile counters are written without
	// atomics, so optimistic probing must be off.
	tab2 := mustCreate(t, native.New(1<<20), Options{Cells: 256, GroupSize: 16})
	tab2.EnableGroupIndex()
	if c := NewConcurrent(tab2, 0); c.OptimisticReads() {
		t.Fatal("group index must force the locked read path")
	}

	// Simulated backend: every read mutates the cache model and clock,
	// so unlocked reads are never allowed.
	mem := memsim.New(memsim.Config{Size: 1 << 20, Seed: 1, Geoms: cache.SmallGeometry()})
	tab3 := mustCreate(t, mem, Options{Cells: 256, GroupSize: 16})
	if c := NewConcurrent(tab3, 0); c.OptimisticReads() {
		t.Fatal("memsim backend must not enable optimistic reads")
	}

	// Backend without the marker interface: locked path.
	tab4 := mustCreate(t, lockedOnlyMem{native.New(1 << 20)}, Options{Cells: 256, GroupSize: 16})
	if c := NewConcurrent(tab4, 0); c.OptimisticReads() {
		t.Fatal("marker-less backend must not enable optimistic reads")
	}
}

// TestConcurrentSeqlockChurn hammers a small hot key set with
// delete/reinsert churn while unlocked readers probe the same keys.
// The invariant a correct seqlock must uphold: a successful lookup
// never returns a value from a half-applied write — every present key
// maps to key*2, inserted values only ever being key*2. Run under
// -race (the Makefile test target does) this also proves the optimistic
// read path is free of data races.
func TestConcurrentSeqlockChurn(t *testing.T) {
	mem := native.New(16 << 20)
	tab := mustCreate(t, mem, Options{Cells: 1 << 12, GroupSize: 64, Seed: 11})
	c := NewConcurrent(tab, 8)
	if !c.OptimisticReads() {
		t.Fatal("precondition: optimistic reads enabled")
	}

	const hotKeys = 64
	for i := uint64(1); i <= hotKeys; i++ {
		if err := c.Insert(layout.Key{Lo: i}, i*2); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var writers, readers sync.WaitGroup

	// Writers: churn the hot keys so readers constantly race commits.
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 4000; i++ {
				k := layout.Key{Lo: uint64((i+w*31)%hotKeys) + 1}
				if c.Delete(k) {
					if err := c.Insert(k, k.Lo*2); err != nil {
						t.Errorf("reinsert: %v", err)
						return
					}
				}
			}
		}(w)
	}

	// Readers: lock-free lookups must only ever observe committed pairs.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; !stop.Load(); i++ {
				k := layout.Key{Lo: uint64((i+r*17)%hotKeys) + 1}
				if v, ok := c.Lookup(k); ok && v != k.Lo*2 {
					t.Errorf("torn read: key %d = %d, want %d", k.Lo, v, k.Lo*2)
					return
				}
			}
		}(r)
	}

	// Writers bound the test duration; readers run until writers finish.
	writers.Wait()
	stop.Store(true)
	readers.Wait()

	// Every hot key must still be present exactly once with its value.
	for i := uint64(1); i <= hotKeys; i++ {
		if v, ok := c.Lookup(layout.Key{Lo: i}); !ok || v != i*2 {
			t.Fatalf("key %d = (%d, %v) after churn", i, v, ok)
		}
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies: %v", bad)
	}
}

// TestConcurrentLookupFallbackUnderWriteLock pins the degradation path:
// a lookup issued while a writer holds the stripe must still complete
// (via retries or the shared lock), never spin forever or return a torn
// result.
func TestConcurrentLookupFallbackUnderWriteLock(t *testing.T) {
	mem := native.New(16 << 20)
	tab := mustCreate(t, mem, Options{Cells: 1 << 12, GroupSize: 64, Seed: 12})
	c := NewConcurrent(tab, 1) // single stripe: every op contends
	for i := uint64(1); i <= 100; i++ {
		if err := c.Insert(layout.Key{Lo: i}, i*2); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			k := layout.Key{Lo: uint64(i%100) + 1}
			c.Delete(k)
			c.Insert(k, k.Lo*2)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20000; i++ {
			k := layout.Key{Lo: uint64(i%100) + 1}
			if v, ok := c.Lookup(k); ok && v != k.Lo*2 {
				t.Errorf("torn read under contention: %d -> %d", k.Lo, v)
				return
			}
		}
	}()
	wg.Wait()
}
