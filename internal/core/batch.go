package core

import (
	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
)

// Item is a key-value pair for batch operations.
type Item struct {
	Key   layout.Key
	Value uint64
}

// InsertBatch inserts items with ONE persistent count update for the
// whole batch instead of one per insert — an extension exploiting a
// property of the paper's own recovery design: Algorithm 4 recomputes
// the count from the bitmaps, so the count word is allowed to lag
// arbitrarily behind the cells without compromising consistency. The
// count is the hottest word in the table (every mutation flushes it);
// batching cuts insert cost by roughly one persist barrier in three
// and slashes that word's media wear.
//
// Crash semantics: each item's cell commit is individually failure
// atomic, exactly as in Insert; a crash mid-batch leaves a prefix of
// the batch committed and the count stale — the same post-crash state
// Algorithm 4 already handles. Run Recover after a crash, as always.
//
// Returns the number of items placed. A placement failure (a full
// group) stops the batch and returns ErrTableFull with the count of
// items placed before it; those items remain inserted.
func (t *Table) InsertBatch(items []Item) (int, error) {
	vw := t.cur()
	placed := 0
	var err error
	for _, it := range items {
		if !t.l.ValidKey(it.Key) {
			err = hashtab.ErrInvalidKey
			break
		}
		if !t.placeIn(vw, it.Key, it.Value) {
			err = hashtab.ErrTableFull
			break
		}
		placed++
	}
	if placed > 0 {
		t.setCount(t.Len() + uint64(placed))
	}
	return placed, err
}

// placeIn runs the cell commit protocol against one view, without the
// count update, reporting whether the item was placed. Every insert
// path — sequential, batch, concurrent, and the migration of an online
// expansion (which places into the new view before it is current) —
// funnels through here, so the commit protocol cannot drift between
// them.
func (t *Table) placeIn(vw *view, k layout.Key, v uint64) bool {
	i1, i2, n := t.homesIn(vw, k)
	if !vw.tab1.Occupied(i1) {
		vw.tab1.InsertAt(i1, k, v)
		return true
	}
	if n == 2 && !vw.tab1.Occupied(i2) {
		vw.tab1.InsertAt(i2, k, v)
		return true
	}
	if t.placeInGroup(vw, t.groupStart(i1), k, v) {
		return true
	}
	if n == 2 && t.groupStart(i2) != t.groupStart(i1) {
		return t.placeInGroup(vw, t.groupStart(i2), k, v)
	}
	return false
}

func (t *Table) placeInGroup(vw *view, j uint64, k layout.Key, v uint64) bool {
	if vw.fp != nil {
		return t.placeInGroupFP(vw, j, k, v)
	}
	for i := uint64(0); i < t.gsz; i++ {
		if !vw.tab2.Occupied(j + i) {
			vw.tab2.InsertAt(j+i, k, v)
			vw.noteL2Insert(j, t.gsz)
			return true
		}
	}
	return false
}
