package core

import (
	"math/rand"
	"testing"

	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/native"
)

func TestRecoverCleanTableIsNoop(t *testing.T) {
	mem := simMem(1)
	tab := mustCreate(t, mem, Options{Cells: 128, GroupSize: 16})
	for i := uint64(1); i <= 40; i++ {
		tab.Insert(layout.Key{Lo: i}, i)
	}
	mem.CleanShutdown()
	rep, err := tab.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CellsCleared != 0 || rep.CountCorrected {
		t.Fatalf("clean recovery repaired something: %+v", rep)
	}
	if rep.CellsScanned != tab.Capacity() {
		t.Fatalf("scanned %d cells, want %d", rep.CellsScanned, tab.Capacity())
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies: %v", bad)
	}
}

// interruptedInsert drives an insert up to (but not including) the meta
// commit, then crashes. The paper's inconsistency cases 1 and 3.
func TestRecoverAfterInsertTornBeforeCommit(t *testing.T) {
	mem := simMem(7)
	tab := mustCreate(t, mem, Options{Cells: 128, GroupSize: 16, KeyBytes: 16})
	for i := uint64(0); i < 20; i++ {
		tab.Insert(layout.Key{Lo: i, Hi: i}, i+1)
	}
	mem.CleanShutdown()
	committed := tab.Len()

	// Partially write a new item: payload only, no meta flip.
	k := layout.Key{Lo: 999, Hi: 999}
	idx := tab.cur().h.Index(k.Lo, k.Hi)
	cells := tab.cur().tab1
	if cells.Occupied(idx) {
		cells = tab.cur().tab2
		idx = tab.groupStart(idx)
		for cells.Occupied(idx) {
			idx++
		}
	}
	cells.WritePayload(idx, k, 42)
	// Crash with a random subset of the torn payload persisted.
	mem.Crash(0.5)

	rep, err := tab.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != committed {
		t.Fatalf("count = %d, want %d", tab.Len(), committed)
	}
	if _, ok := tab.Lookup(k); ok {
		t.Fatal("uncommitted item visible after recovery")
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies after recovery: %v (report %+v)", bad, rep)
	}
	// All previously committed items must still be there.
	for i := uint64(0); i < 20; i++ {
		if v, ok := tab.Lookup(layout.Key{Lo: i, Hi: i}); !ok || v != i+1 {
			t.Fatalf("committed item %d lost: (%d, %v)", i, v, ok)
		}
	}
}

func TestRecoverAfterCrashBetweenMetaAndCount(t *testing.T) {
	// Paper's case: bitmap committed, count not yet updated. Recovery
	// recounts (Algorithm 4) and the item is IN (commit point passed).
	mem := simMem(8)
	tab := mustCreate(t, mem, Options{Cells: 128, GroupSize: 16})
	for i := uint64(1); i <= 10; i++ {
		tab.Insert(layout.Key{Lo: i}, i)
	}
	mem.CleanShutdown()

	k := layout.Key{Lo: 555}
	idx := tab.cur().h.Index(k.Lo, 0)
	cells := tab.cur().tab1
	if cells.Occupied(idx) {
		cells = tab.cur().tab2
		idx = tab.groupStart(idx)
		for cells.Occupied(idx) {
			idx++
		}
	}
	cells.InsertAt(idx, k, 99) // payload + meta committed, count stale
	mem.Crash(0.5)

	rep, err := tab.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CountCorrected {
		t.Fatal("recovery did not notice the stale count")
	}
	if tab.Len() != 11 {
		t.Fatalf("count = %d, want 11", tab.Len())
	}
	if v, ok := tab.Lookup(k); !ok || v != 99 {
		t.Fatalf("committed item missing: (%d, %v)", v, ok)
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies: %v", bad)
	}
}

func TestRecoverAfterDeleteCrashBeforeScrub(t *testing.T) {
	// Delete protocol: meta cleared (commit) but payload not scrubbed
	// and count not decremented. After recovery the item is gone, its
	// payload is scrubbed, the count is right.
	mem := simMem(9)
	tab := mustCreate(t, mem, Options{Cells: 128, GroupSize: 16})
	k := layout.Key{Lo: 77}
	tab.Insert(k, 7)
	tab.Insert(layout.Key{Lo: 88}, 8)
	mem.CleanShutdown()

	idx := tab.cur().h.Index(k.Lo, 0)
	tab.cur().tab1.CommitEmpty(idx) // commit the delete, then "crash"
	mem.Crash(0.5)

	rep, err := tab.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tab.Lookup(k); ok {
		t.Fatal("deleted item visible after recovery")
	}
	if tab.Len() != 1 {
		t.Fatalf("count = %d, want 1 (report %+v)", tab.Len(), rep)
	}
	if !tab.cur().tab1.PayloadZero(idx) {
		t.Fatal("recovery did not scrub the deleted payload")
	}
	if v, ok := tab.Lookup(layout.Key{Lo: 88}); !ok || v != 8 {
		t.Fatalf("unrelated item damaged: (%d, %v)", v, ok)
	}
}

// TestCrashRecoveryFuzz drives random operations, crashes at a random
// point with random survival, recovers, and checks the three paper
// invariants: (1) every operation whose commit point persisted is
// visible, (2) no torn payloads behind occupied bitmaps, (3) the count
// matches the occupied cells. We track the oracle conservatively: items
// are "must-have" once their insert returned (commit persisted before
// return), "must-not-have" once their delete returned; items whose
// operation was cut mid-flight may legitimately land either way only if
// the cut happened inside Insert/Delete — here we always cut BETWEEN
// operations, so the oracle is exact for membership (the count word,
// persisted last, is also settled between ops).
func TestCrashRecoveryFuzz(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		mem := simMem(seed + 100)
		tab := mustCreate(t, mem, Options{Cells: 512, GroupSize: 32, Seed: uint64(seed)})
		rng := rand.New(rand.NewSource(seed))
		oracle := make(map[uint64]uint64)
		nops := 200 + rng.Intn(400)
		for op := 0; op < nops; op++ {
			key := uint64(rng.Intn(400)) + 1
			k := layout.Key{Lo: key}
			if _, exists := oracle[key]; !exists && rng.Intn(2) == 0 {
				if tab.Insert(k, key) == nil {
					oracle[key] = key
				}
			} else if exists {
				tab.Delete(k)
				delete(oracle, key)
			}
		}
		mem.Crash(rng.Float64())
		if _, err := tab.Recover(); err != nil {
			t.Fatal(err)
		}
		if bad := tab.CheckConsistency(); len(bad) != 0 {
			t.Fatalf("seed %d: inconsistencies after recovery: %v", seed, bad)
		}
		for key, v := range oracle {
			got, ok := tab.Lookup(layout.Key{Lo: key})
			if !ok || got != v {
				t.Fatalf("seed %d: committed key %d lost: (%d, %v)", seed, key, got, ok)
			}
		}
		if tab.Len() != uint64(len(oracle)) {
			t.Fatalf("seed %d: count %d, oracle %d", seed, tab.Len(), len(oracle))
		}
	}
}

// TestCrashMidOperationInvariants cuts crashes INSIDE operations by
// running the mutation sequence on a cloned prefix: for a sampling of
// prefixes of the memory-operation stream we cannot easily split Go
// calls, so instead we exploit the protocol directly: simulate every
// crash point of one insert and one delete explicitly.
func TestCrashMidOperationInvariants(t *testing.T) {
	type step func(tab *Table, k layout.Key)
	insertSteps := []struct {
		name string
		run  step
	}{
		{"payload-written-unpersisted", func(tab *Table, k layout.Key) {
			idx := tab.cur().h.Index(k.Lo, k.Hi)
			tab.cur().tab1.WritePayload(idx, k, 1)
		}},
		{"payload-persisted", func(tab *Table, k layout.Key) {
			idx := tab.cur().h.Index(k.Lo, k.Hi)
			tab.cur().tab1.WritePayload(idx, k, 1)
			tab.cur().tab1.PersistPayload(idx)
		}},
		{"meta-committed-count-stale", func(tab *Table, k layout.Key) {
			idx := tab.cur().h.Index(k.Lo, k.Hi)
			tab.cur().tab1.InsertAt(idx, k, 1)
		}},
	}
	for _, st := range insertSteps {
		t.Run("insert/"+st.name, func(t *testing.T) {
			mem := simMem(33)
			tab := mustCreate(t, mem, Options{Cells: 128, GroupSize: 16})
			tab.Insert(layout.Key{Lo: 1000}, 5)
			mem.CleanShutdown()
			k := layout.Key{Lo: 2000}
			if tab.cur().h.Index(k.Lo, 0) == tab.cur().h.Index(1000, 0) {
				t.Skip("collision with pre-inserted key; scenario needs a free home cell")
			}
			st.run(tab, k)
			mem.Crash(0.5)
			if _, err := tab.Recover(); err != nil {
				t.Fatal(err)
			}
			if bad := tab.CheckConsistency(); len(bad) != 0 {
				t.Fatalf("inconsistencies: %v", bad)
			}
			if v, ok := tab.Lookup(layout.Key{Lo: 1000}); !ok || v != 5 {
				t.Fatal("pre-existing committed item lost")
			}
		})
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	mem := simMem(55)
	tab := mustCreate(t, mem, Options{Cells: 128, GroupSize: 16})
	for i := uint64(1); i <= 30; i++ {
		tab.Insert(layout.Key{Lo: i}, i)
	}
	tab.cur().tab1.WritePayload(60, layout.Key{Lo: 9999}, 1) // torn garbage
	mem.Crash(0.5)
	if _, err := tab.Recover(); err != nil {
		t.Fatal(err)
	}
	first := tab.Len()
	// Crash during recovery itself, then recover again.
	mem.Crash(0.5)
	if _, err := tab.Recover(); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != first {
		t.Fatalf("second recovery changed count: %d vs %d", tab.Len(), first)
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies: %v", bad)
	}
}

func TestCheckConsistencyDetectsCorruption(t *testing.T) {
	mem := native.New(1 << 20)
	tab := mustCreate(t, mem, Options{Cells: 64, GroupSize: 8})
	tab.Insert(layout.Key{Lo: 1}, 1)
	// Corrupt: flip an empty cell's payload without meta.
	var victim uint64
	for i := uint64(0); i < tab.cur().tab1.N; i++ {
		if !tab.cur().tab1.Occupied(i) {
			victim = i
			break
		}
	}
	tab.cur().tab1.WritePayload(victim, layout.Key{Lo: 42}, 42)
	if bad := tab.CheckConsistency(); len(bad) == 0 {
		t.Fatal("CheckConsistency missed a dirty empty cell")
	}
}

func TestRecoverySimulatedTimeScalesWithTableSize(t *testing.T) {
	// Table 3's premise: recovery is a linear scan, so simulated
	// recovery time grows with table size.
	times := make([]float64, 0, 2)
	for _, cells := range []uint64{512, 2048} {
		mem := memsim.New(memsim.Config{Size: 64 << 20, Seed: 1})
		tab := mustCreate(t, mem, Options{Cells: cells, GroupSize: 64})
		for i := uint64(0); i < cells/2; i++ {
			tab.Insert(layout.Key{Lo: i * 13}, i)
		}
		mem.Crash(0.5)
		t0 := mem.Clock()
		if _, err := tab.Recover(); err != nil {
			t.Fatal(err)
		}
		times = append(times, mem.Clock()-t0)
	}
	if times[1] < 2*times[0] {
		t.Fatalf("recovery time did not scale: %v", times)
	}
}
