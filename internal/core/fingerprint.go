package core

// DRAM fingerprint sidecar, the Dash-style signature filter (Dash:
// Scalable Hashing on Persistent Memory; see PAPERS.md) adapted to the
// paper's group layout. Every level-2 cell gets a 1-byte tag — the top
// byte of an independent full-avalanche hash of the key, never zero —
// packed eight to a word in a plain DRAM slice. A group probe first
// screens the group's tags with word-wide SWAR compares (one 8-byte
// load covers eight cells) and only dereferences the persistent cells
// whose tag agrees, so an absent-key scan of a 256-cell group costs 32
// word loads instead of up to 256 commit-word reads, and a present-key
// scan jumps straight to its candidate cell.
//
// Like the group-occupancy index (groupindex.go), the sidecar is pure
// derived state: a function of the cell bitmaps and keys the recovery
// scan already reads. It therefore lives in DRAM, costs no persist
// barriers, is maintained alongside every level-2 cell commit, and is
// rebuilt from the authoritative cells on Open, after Recover, and on
// snapshot load. Level-1 cells need no tags — they are addressed
// directly by the hash, never scanned.
//
// Concurrency. Tag words are read with atomic loads and written with
// atomic stores, so the seqlock-optimistic Concurrent.Lookup can probe
// the sidecar with no lock held (a racing writer makes the seqlock
// version check fail and the probe retry, exactly as for cell words;
// the atomics keep every individual word un-torn and race-detector
// clean). Writers mutate a tag word only under their stripe lock, and
// — because the sidecar requires GroupSize ≥ 8 — a tag word never
// spans two groups, so two stripes never write the same word.
//
// The sidecar is enabled by default on backends whose word accesses
// are individually atomic (hashtab.ConcurrentReader — the native
// production backend). On the simulated-NVM backend it stays off so
// the paper's figures keep measuring the paper's exact probe sequence;
// EnableFingerprints opts in explicitly.

import (
	"math/bits"
	"sync/atomic"

	"grouphash/internal/layout"
	"grouphash/internal/xhash"
)

// fpMinGroupSize is the smallest group the sidecar supports: a tag word
// must not span two groups (see the concurrency notes above), so groups
// must cover whole 8-byte tag words.
const fpMinGroupSize = 8

// fpLow7 and fpHigh are the SWAR lane masks of the exact zero-byte
// test: for x with per-byte lanes, bit 7 of a lane in fpZeroMask(x) is
// set iff that byte of x is zero. Unlike the classic
// (x-0x01..)&^x&0x80.. trick this form has no cross-lane borrows and
// therefore no false positives, which placeInGroup's empty-slot scan
// depends on (a false "empty" would overwrite a live cell).
const (
	fpLow7 = 0x7f7f7f7f7f7f7f7f
	fpHigh = 0x8080808080808080
)

// fpZeroMask returns a mask with bit 7 of lane i set iff byte i of x is
// zero. XOR x with a broadcast tag first to turn it into an exact
// byte-equality test.
func fpZeroMask(x uint64) uint64 {
	y := (x&fpLow7 + fpLow7) | x
	return ^y & fpHigh
}

// fpBroadcast replicates a tag byte into all eight lanes.
func fpBroadcast(tag uint64) uint64 { return tag * 0x0101010101010101 }

// fpTag returns k's sidecar tag under the table's layout (canonical
// form, so a caller-populated Hi word cannot desynchronise one-word
// layouts).
func (t *Table) fpTag(k layout.Key) uint64 {
	k = t.l.Canon(k)
	return uint64(xhash.Fingerprint(k.Lo, k.Hi))
}

// fpEligible reports whether the sidecar can cover this geometry.
func fpEligible(gsz uint64) bool { return gsz >= fpMinGroupSize }

// newFp allocates an all-empty sidecar for n level-2 cells.
func newFp(n uint64) []uint64 { return make([]uint64, n/8) }

// fpStore publishes tag (0 = empty) for level-2 cell i. Callers hold
// the cell's stripe lock (or own the view exclusively); the atomic
// store is for concurrent lock-free readers, not for other writers.
func (vw *view) fpStore(i uint64, tag uint64) {
	if vw.fp == nil {
		return
	}
	w := &vw.fp[i>>3]
	shift := (i & 7) * 8
	atomic.StoreUint64(w, atomic.LoadUint64(w)&^(0xff<<shift)|tag<<shift)
}

// fpLoad returns the tag stored for level-2 cell i (0 = empty).
func (vw *view) fpLoad(i uint64) uint64 {
	return atomic.LoadUint64(&vw.fp[i>>3]) >> ((i & 7) * 8) & 0xff
}

// buildFp (re)derives the sidecar of vw from its authoritative cells:
// the occupancy bitmaps say which cells are live, the stored keys give
// the tags. Must not run concurrently with operations on vw.
func (vw *view) buildFp(l layout.Layout) {
	fp := newFp(vw.tab2.N)
	for i := uint64(0); i < vw.tab2.N; i++ {
		if vw.tab2.Occupied(i) {
			k := vw.tab2.Key(i)
			fp[i>>3] |= uint64(xhash.Fingerprint(k.Lo, k.Hi)) << ((i & 7) * 8)
		}
	}
	vw.fp = fp
}

// EnableFingerprints builds the DRAM tag sidecar for the current view
// and turns on filtered group probes, reporting whether the geometry
// supports it (GroupSize ≥ 8). Costs 1 byte of DRAM per level-2 cell
// and one O(level-2 cells) scan now; newly built views (expansion)
// inherit the setting. On ConcurrentReader backends the sidecar is on
// by default. Must not run concurrently with table operations.
func (t *Table) EnableFingerprints() bool {
	if !fpEligible(t.gsz) {
		return false
	}
	t.fpOn = true
	if vw := t.cur(); vw.fp == nil {
		vw.buildFp(t.l)
	}
	return true
}

// DisableFingerprints drops the sidecar and reverts to unfiltered
// group scans (the paper's exact probe sequence). Must not run
// concurrently with table operations.
func (t *Table) DisableFingerprints() {
	t.fpOn = false
	t.cur().fp = nil
}

// FingerprintsEnabled reports whether filtered probes are active.
func (t *Table) FingerprintsEnabled() bool { return t.cur().fp != nil }

// FingerprintStats returns the probe-filter effectiveness counters:
// hits is the number of cells dereferenced because their tag matched
// the probe key (true match or 1-in-255 false positive), skips the
// number of cells the filter screened out without touching persistent
// memory. Both accumulate across every filtered group scan — lookups,
// deletes and in-place updates.
func (t *Table) FingerprintStats() (hits, skips uint64) {
	return t.fpHits.Load(), t.fpSkips.Load()
}

// findInGroupFP is the filtered group scan: screen the group's tag
// words against k's broadcast tag and dereference only agreeing cells,
// in ascending cell order (preserving the unfiltered scan's first-match
// semantics for duplicate keys). Returns the matching cell index.
func (t *Table) findInGroupFP(vw *view, j uint64, k layout.Key) (uint64, bool) {
	if vw.occupancy(j, t.gsz) == 0 {
		// The occupancy index proves the group empty; skip the word scan
		// entirely (the one case where the unfiltered bounded scan would
		// be cheaper than 32 word loads).
		return 0, false
	}
	pat := fpBroadcast(t.fpTag(k))
	var derefs uint64
	for w, end := j>>3, (j+t.gsz)>>3; w < end; w++ {
		word := atomic.LoadUint64(&vw.fp[w])
		for m := fpZeroMask(word ^ pat); m != 0; m &= m - 1 {
			i := w<<3 + uint64(bits.TrailingZeros64(m)>>3)
			derefs++
			if vw.tab2.Matches(i, k) {
				scanned := i - j + 1
				t.fpHits.Add(derefs)
				t.fpSkips.Add(scanned - derefs)
				return i, true
			}
		}
	}
	t.fpHits.Add(derefs)
	t.fpSkips.Add(t.gsz - derefs)
	return 0, false
}

// placeInGroupFP finds the first empty cell of the group via the
// sidecar's zero-byte scan (tag 0 ⇔ cell empty, an invariant every
// level-2 commit path maintains) — the same slot the unfiltered
// first-empty scan would pick.
func (t *Table) placeInGroupFP(vw *view, j uint64, k layout.Key, v uint64) bool {
	for w, end := j>>3, (j+t.gsz)>>3; w < end; w++ {
		if m := fpZeroMask(atomic.LoadUint64(&vw.fp[w])); m != 0 {
			i := w<<3 + uint64(bits.TrailingZeros64(m)>>3)
			vw.tab2.InsertAt(i, k, v)
			vw.fpStore(i, t.fpTag(k))
			vw.noteL2Insert(j, t.gsz)
			return true
		}
	}
	return false
}
