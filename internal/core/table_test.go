package core

import (
	"math/rand"
	"testing"

	"grouphash/internal/cache"
	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/native"
)

func simMem(seed int64) *memsim.Memory {
	return memsim.New(memsim.Config{Size: 8 << 20, Seed: seed, Geoms: cache.SmallGeometry()})
}

func mustCreate(t *testing.T, mem hashtab.Mem, opts Options) *Table {
	t.Helper()
	tab, err := Create(mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestOptionsValidation(t *testing.T) {
	mem := native.New(1 << 20)
	cases := []Options{
		{Cells: 0},
		{Cells: 100},                // not a power of two
		{Cells: 64, GroupSize: 3},   // group not a power of two
		{Cells: 64, GroupSize: 128}, // group larger than table
		{Cells: 64, KeyBytes: 12},   // unsupported key size
	}
	for i, o := range cases {
		if _, err := Create(mem, o); err == nil {
			t.Errorf("case %d: options %+v accepted", i, o)
		}
	}
}

func TestDefaults(t *testing.T) {
	mem := native.New(1 << 24)
	tab := mustCreate(t, mem, Options{Cells: 1024})
	if tab.GroupSize() != DefaultGroupSize {
		t.Fatalf("group size = %d", tab.GroupSize())
	}
	if tab.Capacity() != 2048 {
		t.Fatalf("capacity = %d, want 2*cells", tab.Capacity())
	}
	if tab.Len() != 0 || tab.LoadFactor() != 0 {
		t.Fatal("fresh table not empty")
	}
}

func TestInsertLookupDelete(t *testing.T) {
	for _, keyBytes := range []int{8, 16} {
		mem := native.New(1 << 22)
		tab := mustCreate(t, mem, Options{Cells: 1024, GroupSize: 16, KeyBytes: keyBytes})
		const n = 500
		for i := uint64(0); i < n; i++ {
			k := layout.Key{Lo: i + 1, Hi: i * 7}
			if err := tab.Insert(k, i*10); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
		}
		if tab.Len() != n {
			t.Fatalf("Len = %d, want %d", tab.Len(), n)
		}
		for i := uint64(0); i < n; i++ {
			k := layout.Key{Lo: i + 1, Hi: i * 7}
			v, ok := tab.Lookup(k)
			if !ok || v != i*10 {
				t.Fatalf("lookup %d = (%d, %v)", i, v, ok)
			}
		}
		if _, ok := tab.Lookup(layout.Key{Lo: 1 << 40}); ok {
			t.Fatal("found a key never inserted")
		}
		for i := uint64(0); i < n; i += 2 {
			if !tab.Delete(layout.Key{Lo: i + 1, Hi: i * 7}) {
				t.Fatalf("delete %d failed", i)
			}
		}
		if tab.Len() != n/2 {
			t.Fatalf("Len after deletes = %d", tab.Len())
		}
		for i := uint64(0); i < n; i++ {
			k := layout.Key{Lo: i + 1, Hi: i * 7}
			_, ok := tab.Lookup(k)
			if (i%2 == 0) == ok {
				t.Fatalf("key %d presence = %v after deleting evens", i, ok)
			}
		}
	}
}

func TestDeleteAbsentKey(t *testing.T) {
	mem := native.New(1 << 20)
	tab := mustCreate(t, mem, Options{Cells: 64, GroupSize: 8})
	if tab.Delete(layout.Key{Lo: 1}) {
		t.Fatal("deleted a key from an empty table")
	}
	tab.Insert(layout.Key{Lo: 1}, 1)
	if tab.Delete(layout.Key{Lo: 2}) {
		t.Fatal("deleted an absent key")
	}
	if tab.Len() != 1 {
		t.Fatal("count changed by failed delete")
	}
}

func TestCollisionSpillsToMatchedGroup(t *testing.T) {
	mem := native.New(1 << 20)
	tab := mustCreate(t, mem, Options{Cells: 64, GroupSize: 8, Seed: 3})
	// Find two keys hashing to the same level-1 cell.
	base := layout.Key{Lo: 1}
	idx := tab.cur().h.Index(base.Lo, base.Hi)
	var other layout.Key
	for i := uint64(2); ; i++ {
		if tab.cur().h.Index(i, 0) == idx {
			other = layout.Key{Lo: i}
			break
		}
	}
	tab.Insert(base, 100)
	tab.Insert(other, 200)
	if v, ok := tab.Lookup(other); !ok || v != 200 {
		t.Fatalf("spilled key lookup = (%d, %v)", v, ok)
	}
	// The spilled item must be in the matched level-2 group.
	j := tab.groupStart(idx)
	found := false
	for i := uint64(0); i < tab.gsz; i++ {
		if tab.cur().tab2.Matches(j+i, other) {
			found = true
		}
	}
	if !found {
		t.Fatal("conflicting item not in the matched level-2 group")
	}
}

func TestLookupFindsSpilledItemAfterHomeDeleted(t *testing.T) {
	// An item in level 2 must stay reachable after its level-1 home
	// cell empties (the reason Algorithm 2 always scans the group).
	mem := native.New(1 << 20)
	tab := mustCreate(t, mem, Options{Cells: 64, GroupSize: 8, Seed: 3})
	a := layout.Key{Lo: 1}
	idx := tab.cur().h.Index(a.Lo, a.Hi)
	var b layout.Key
	for i := uint64(2); ; i++ {
		if tab.cur().h.Index(i, 0) == idx {
			b = layout.Key{Lo: i}
			break
		}
	}
	tab.Insert(a, 1)
	tab.Insert(b, 2) // spills to level 2
	if !tab.Delete(a) {
		t.Fatal("delete of home item failed")
	}
	if v, ok := tab.Lookup(b); !ok || v != 2 {
		t.Fatalf("spilled item lost after home delete: (%d, %v)", v, ok)
	}
}

func TestGroupOverflowReturnsErrTableFull(t *testing.T) {
	mem := native.New(1 << 20)
	tab := mustCreate(t, mem, Options{Cells: 16, GroupSize: 4, Seed: 1})
	// Saturate one group: find group of key 0's level-1 index and
	// insert colliding keys until full.
	k0 := layout.Key{Lo: 1}
	g := tab.groupStart(tab.cur().h.Index(k0.Lo, 0))
	inserted := 0
	var err error
	for i := uint64(1); inserted < 100; i++ {
		k := layout.Key{Lo: i}
		if tab.groupStart(tab.cur().h.Index(k.Lo, 0)) != g {
			continue
		}
		err = tab.Insert(k, i)
		if err != nil {
			break
		}
		inserted++
	}
	if err != hashtab.ErrTableFull {
		t.Fatalf("expected ErrTableFull, got %v after %d inserts", err, inserted)
	}
	// Capacity of one group's key space: group_size level-1 cells +
	// group_size level-2 cells.
	if inserted > int(2*tab.gsz) {
		t.Fatalf("placed %d items in a group of capacity %d", inserted, 2*tab.gsz)
	}
}

func TestUpdate(t *testing.T) {
	mem := native.New(1 << 20)
	tab := mustCreate(t, mem, Options{Cells: 64, GroupSize: 8})
	k := layout.Key{Lo: 9}
	if tab.Update(k, 5) {
		t.Fatal("updated an absent key")
	}
	tab.Insert(k, 5)
	if !tab.Update(k, 6) {
		t.Fatal("update of present key failed")
	}
	if v, _ := tab.Lookup(k); v != 6 {
		t.Fatalf("value after update = %d", v)
	}
	if tab.Len() != 1 {
		t.Fatal("update changed the count")
	}
}

func TestRangeVisitsEverything(t *testing.T) {
	mem := native.New(1 << 20)
	tab := mustCreate(t, mem, Options{Cells: 256, GroupSize: 16})
	want := make(map[layout.Key]uint64)
	for i := uint64(0); i < 100; i++ {
		k := layout.Key{Lo: i*3 + 1}
		want[k] = i
		tab.Insert(k, i)
	}
	got := make(map[layout.Key]uint64)
	tab.Range(func(k layout.Key, v uint64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d items, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range value for %+v = %d, want %d", k, got[k], v)
		}
	}
	// Early termination.
	n := 0
	tab.Range(func(layout.Key, uint64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range ignored false return: %d visits", n)
	}
}

func TestOpenReconstructsHandle(t *testing.T) {
	mem := simMem(1)
	tab := mustCreate(t, mem, Options{Cells: 256, GroupSize: 16, KeyBytes: 16, Seed: 5})
	hdr := tab.Header()
	for i := uint64(0); i < 50; i++ {
		tab.Insert(layout.Key{Lo: i, Hi: i + 1}, i+1)
	}
	mem.CleanShutdown()

	re, err := Open(mem, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 50 || re.GroupSize() != 16 || re.Cells() != 256 {
		t.Fatalf("reopened table: len=%d gsz=%d cells=%d", re.Len(), re.GroupSize(), re.Cells())
	}
	for i := uint64(0); i < 50; i++ {
		if v, ok := re.Lookup(layout.Key{Lo: i, Hi: i + 1}); !ok || v != i+1 {
			t.Fatalf("reopened lookup %d = (%d, %v)", i, v, ok)
		}
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	mem := native.New(1 << 16)
	if _, err := Open(mem, 0); err != ErrNoTable {
		t.Fatalf("Open of zeroed memory = %v, want ErrNoTable", err)
	}
	// Valid magic but corrupt fields.
	mem.Write8(0, Magic)
	mem.Write8(8, 12) // bad key size
	if _, err := Open(mem, 0); err == nil {
		t.Fatal("Open accepted a corrupt key size")
	}
}

func TestDuplicateKeyInsertsBothStored(t *testing.T) {
	// Algorithm 1 does not check for existing keys; two inserts of the
	// same key occupy two cells (paper semantics).
	mem := native.New(1 << 20)
	tab := mustCreate(t, mem, Options{Cells: 64, GroupSize: 8})
	k := layout.Key{Lo: 4}
	tab.Insert(k, 1)
	tab.Insert(k, 2)
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (duplicates allowed)", tab.Len())
	}
	// First delete removes one copy, second the other.
	if !tab.Delete(k) || !tab.Delete(k) {
		t.Fatal("could not delete both copies")
	}
	if tab.Delete(k) {
		t.Fatal("third delete succeeded")
	}
}

func TestOracleComparison(t *testing.T) {
	// Random op stream vs a map oracle (unique keys so semantics align).
	mem := native.New(16 << 20)
	tab := mustCreate(t, mem, Options{Cells: 4096, GroupSize: 64, Seed: 11})
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(42))
	for op := 0; op < 20000; op++ {
		key := uint64(rng.Intn(3000)) + 1
		k := layout.Key{Lo: key}
		switch rng.Intn(3) {
		case 0:
			if _, exists := oracle[key]; !exists {
				if err := tab.Insert(k, key*2); err == nil {
					oracle[key] = key * 2
				}
			}
		case 1:
			v, ok := tab.Lookup(k)
			ov, ook := oracle[key]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("op %d: lookup(%d) = (%d,%v), oracle (%d,%v)", op, key, v, ok, ov, ook)
			}
		case 2:
			ok := tab.Delete(k)
			_, ook := oracle[key]
			if ok != ook {
				t.Fatalf("op %d: delete(%d) = %v, oracle %v", op, key, ok, ook)
			}
			delete(oracle, key)
		}
	}
	if tab.Len() != uint64(len(oracle)) {
		t.Fatalf("final Len = %d, oracle %d", tab.Len(), len(oracle))
	}
}
