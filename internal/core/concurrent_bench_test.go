package core

import (
	"sync/atomic"
	"testing"

	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/native"
)

// benchConcurrent builds a concurrent table over native memory at ~50%
// load. With optimistic=false the backend is wrapped so it loses the
// ConcurrentReadSafe marker, forcing lookups onto the shared RWMutex —
// the pre-seqlock behaviour, kept as the benchmark baseline.
func benchConcurrent(b *testing.B, optimistic bool) (*Concurrent, []layout.Key) {
	b.Helper()
	nat := native.New(64 << 20)
	var mem hashtab.Mem = nat
	if !optimistic {
		mem = lockedOnlyMem{nat}
	}
	tab, err := Create(mem, Options{Cells: 1 << 16, GroupSize: 64, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	c := NewConcurrent(tab, 0)
	if c.OptimisticReads() != optimistic {
		b.Fatalf("OptimisticReads() = %v, want %v", c.OptimisticReads(), optimistic)
	}
	n := tab.Capacity() / 2
	keys := make([]layout.Key, 0, n)
	for i := uint64(1); uint64(len(keys)) < n; i++ {
		k := layout.Key{Lo: i * 2654435761}
		if err := c.Insert(k, i); err != nil {
			b.Fatal(err)
		}
		keys = append(keys, k)
	}
	return c, keys
}

// BenchmarkConcurrentLookupParallel measures read throughput of the
// concurrent table under b.RunParallel (GOMAXPROCS goroutines; vary
// with -cpu 1,2,4,8 to see scaling). The seqlock variant takes no lock
// on the read path and should scale near-linearly; the rwlock variant
// is the old behaviour, which plateaus on the shared RWMutex's atomic
// reader count.
func BenchmarkConcurrentLookupParallel(b *testing.B) {
	for _, mode := range []struct {
		name       string
		optimistic bool
	}{{"seqlock", true}, {"rwlock", false}} {
		b.Run(mode.name, func(b *testing.B) {
			c, keys := benchConcurrent(b, mode.optimistic)
			var seq atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Give each goroutine a distinct stride start so they
				// don't probe the same key in lockstep.
				i := seq.Add(1) * 7919
				for pb.Next() {
					k := keys[i%uint64(len(keys))]
					if _, ok := c.Lookup(k); !ok {
						b.Fatal("key lost")
					}
					i++
				}
			})
		})
	}
}

// BenchmarkConcurrentMixedParallel runs a 90/10 lookup/update mix, the
// regime the seqlock is designed for: rare writers bump stripe versions
// while the read majority stays lock-free.
func BenchmarkConcurrentMixedParallel(b *testing.B) {
	for _, mode := range []struct {
		name       string
		optimistic bool
	}{{"seqlock", true}, {"rwlock", false}} {
		b.Run(mode.name, func(b *testing.B) {
			c, keys := benchConcurrent(b, mode.optimistic)
			var seq atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := seq.Add(1) * 7919
				for pb.Next() {
					k := keys[i%uint64(len(keys))]
					if i%10 == 0 {
						c.Update(k, i)
					} else if _, ok := c.Lookup(k); !ok {
						b.Fatal("key lost")
					}
					i++
				}
			})
		})
	}
}
