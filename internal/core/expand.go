package core

import (
	"fmt"

	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/xhash"
)

// Expand grows the table when Insert returns ErrTableFull. The paper
// notes the condition ("the capacity of the hash table needs to be
// expanded", §3.4) but leaves the mechanism open; this implementation
// is an extension with the same consistency discipline as the rest of
// the scheme:
//
//  1. allocate fresh level-1/level-2 arrays of double the size;
//  2. re-insert every live item into the new arrays using the normal
//     cell commit protocol (payload → persist → meta → persist);
//  3. record the new roots in the inactive header slot and persist;
//  4. atomically flip the header's slot word — the 8-byte commit point
//     of the whole expansion — and persist it.
//
// A crash anywhere before step 4 leaves the old table untouched and
// current (the new arrays are garbage the allocator may reuse); a
// crash after step 4 leaves the fully-built new table current. The
// count is unchanged by expansion, so the count word needs no update.
//
// Expansion needs free region space for the new arrays; with a bump
// allocator the old arrays are not reclaimed, which mirrors how a PMFS
// file would be grown in practice (allocate-new, switch, free-old).
func (t *Table) Expand() error {
	newCells := t.tab1.N * 2
	for attempt := 0; attempt < 3; attempt, newCells = attempt+1, newCells*2 {
		nt1 := hashtab.NewCells(t.mem, t.l, newCells)
		nt2 := hashtab.NewCells(t.mem, t.l, newCells)
		seed := t.mem.Read8(t.hdr + hdrSeed*layout.WordSize)
		nh := xhash.NewFunc(seed, newCells, t.l.KeyWords() == 2)
		nh2 := xhash.NewFunc(secondSeed(seed), newCells, t.l.KeyWords() == 2)
		if t.rehashInto(nt1, nt2, nh, nh2) {
			t.commitRoots(nt1, nt2, nh, nh2)
			return nil
		}
		// Placement failed even in the bigger table (pathological
		// skew): retry with the next doubling.
	}
	return fmt.Errorf("core: expansion failed after tripling attempts: %w", hashtab.ErrTableFull)
}

// rehashInto re-inserts every live item into the new arrays, reporting
// whether all items could be placed.
func (t *Table) rehashInto(nt1, nt2 hashtab.Cells, nh, nh2 xhash.Func) bool {
	ok := true
	place := func(k layout.Key, v uint64, idx uint64) bool {
		if !nt1.Occupied(idx) {
			nt1.InsertAt(idx, k, v)
			return true
		}
		j := idx &^ (t.gsz - 1)
		for i := uint64(0); i < t.gsz; i++ {
			if !nt2.Occupied(j + i) {
				nt2.InsertAt(j+i, k, v)
				return true
			}
		}
		return false
	}
	t.Range(func(k layout.Key, v uint64) bool {
		if place(k, v, nh.Index(k.Lo, k.Hi)) {
			return true
		}
		if t.two && place(k, v, nh2.Index(k.Lo, k.Hi)) {
			return true
		}
		ok = false
		return false
	})
	return ok
}

// commitRoots publishes the new arrays via the inactive header slot and
// the atomic slot flip.
func (t *Table) commitRoots(nt1, nt2 hashtab.Cells, nh, nh2 xhash.Func) {
	slotAddr := t.hdr + hdrSlot*layout.WordSize
	cur := t.mem.Read8(slotAddr)
	next := 1 - cur
	base := uint64(hdrSlot0)
	if next == 1 {
		base = hdrSlot1
	}
	w := func(i uint64, v uint64) { t.mem.Write8(t.hdr+(base+i)*layout.WordSize, v) }
	w(0, nt1.Base)
	w(1, nt2.Base)
	w(2, nt1.N)
	t.mem.Persist(t.hdr+base*layout.WordSize, 3*layout.WordSize)
	t.mem.AtomicWrite8(slotAddr, next)
	t.mem.Persist(slotAddr, layout.WordSize)
	t.tab1, t.tab2, t.h, t.h2 = nt1, nt2, nh, nh2
	if t.occ != nil {
		t.EnableGroupIndex() // rebuild for the new arrays
	}
}

// InsertAutoExpand inserts (k, v), expanding the table as needed. It is
// the convenience entry point a key-value store would use.
func (t *Table) InsertAutoExpand(k layout.Key, v uint64) error {
	err := t.Insert(k, v)
	if err != hashtab.ErrTableFull {
		return err
	}
	if err := t.Expand(); err != nil {
		return err
	}
	return t.Insert(k, v)
}
