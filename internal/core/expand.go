package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
)

// Expand grows the table when Insert returns ErrTableFull. The paper
// notes the condition ("the capacity of the hash table needs to be
// expanded", §3.4) but leaves the mechanism open; this implementation
// is an extension with the same consistency discipline as the rest of
// the scheme:
//
//  1. allocate fresh level-1/level-2 arrays of double the size;
//  2. re-insert every live item into the new arrays using the normal
//     cell commit protocol (payload → persist → meta → persist);
//  3. record the new roots in the inactive header slot and persist;
//  4. atomically flip the header's slot word — the 8-byte commit point
//     of the whole expansion — and persist it.
//
// A crash anywhere before step 4 leaves the old table untouched and
// current (the new arrays are garbage the allocator may reuse); a
// crash after step 4 leaves the fully-built new table current. The
// count is unchanged by expansion, so the count word needs no update.
//
// On backends exposing hashtab.Reclaimer the arrays of a failed rehash
// attempt are returned to the allocator before the next doubling is
// tried, so a retried expansion's footprint is bounded by its final
// (successful) attempt rather than the sum of all attempts. Backends
// without reclaim (memsim's fixed region) keep the abandoned arrays,
// which mirrors how a PMFS file would be grown in practice
// (allocate-new, switch, free-old).
//
// The rehash itself is parallelised on concurrent-read-safe backends;
// see rehashInto.
func (t *Table) Expand() error {
	vw := t.cur()
	seed := t.mem.Read8(t.hdr + hdrSeed*layout.WordSize)
	rec, canReclaim := t.mem.(hashtab.Reclaimer)
	newCells := vw.tab1.N * 2
	for attempt := 0; attempt < 3; attempt, newCells = attempt+1, newCells*2 {
		var mark uint64
		if canReclaim {
			mark = rec.Mark()
		}
		nvw := t.newView(newCells, seed)
		if t.expandFailures > 0 {
			t.expandFailures--
		} else if t.rehashInto(vw, nvw) {
			t.commitRoots(nvw)
			return nil
		}
		// Placement failed even in the bigger table (pathological
		// skew): reclaim the attempt's arrays if the allocator can,
		// then retry with the next doubling.
		if canReclaim {
			rec.Release(mark)
		}
	}
	return fmt.Errorf("core: expansion failed after tripling attempts: %w", hashtab.ErrTableFull)
}

// rehashInto re-inserts every live item of vw into the new view,
// reporting whether all items could be placed.
//
// The hash function takes the HIGH bits of the 64-bit hash, so growing
// from N to M·N level-1 cells appends bits at the BOTTOM of every
// index: an item whose level-1 home was cell i moves to a cell in
// [M·i, M·(i+1)). Old group g therefore maps exactly onto new groups
// [M·g, M·(g+1)) — and since every item stored in old level-2 group g
// has its level-1 home inside old group g, the destination windows of
// distinct old groups are disjoint. That makes the migration
// embarrassingly parallel at group granularity: workers claim
// contiguous ranges of old groups and write non-overlapping regions of
// the new arrays, with no locks and no cross-worker conflicts. The
// parallel path is gated on backends whose word accesses are
// individually atomic (hashtab.ConcurrentReader) and on single-choice
// tables (a two-choice item's second candidate lands in an unrelated
// group, breaking disjointness); everything else takes the sequential
// path. Per-item durability is unchanged either way — each item runs
// the same cell commit protocol (payload → persist → meta → persist)
// through placeIn, and the single 8-byte header-slot flip in
// commitRoots remains the expansion's only commit point.
func (t *Table) rehashInto(vw, nvw *view) bool {
	groups := vw.tab1.N / t.gsz
	workers := 1
	if _, ok := t.mem.(hashtab.ConcurrentReader); ok && !t.two {
		workers = runtime.GOMAXPROCS(0)
		if uint64(workers) > groups {
			workers = int(groups)
		}
	}
	if workers <= 1 {
		return t.rehashGroups(vw, nvw, 0, groups)
	}
	// Dynamic chunked claiming: workers grab batches of old groups off
	// a shared counter, so a skewed region cannot leave one worker with
	// all the work.
	const chunk = 8
	var next atomic.Uint64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				lo := next.Add(chunk) - chunk
				if lo >= groups {
					return
				}
				hi := lo + chunk
				if hi > groups {
					hi = groups
				}
				if !t.rehashGroups(vw, nvw, lo, hi) {
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return !failed.Load()
}

// rehashGroups migrates the live items of old groups [gLo, gHi) from vw
// into nvw, reporting whether every item was placed.
func (t *Table) rehashGroups(vw, nvw *view, gLo, gHi uint64) bool {
	lo, hi := gLo*t.gsz, gHi*t.gsz
	for _, cells := range [2]hashtab.Cells{vw.tab1, vw.tab2} {
		for i := lo; i < hi; i++ {
			if cells.Occupied(i) {
				if !t.placeIn(nvw, cells.Key(i), cells.Value(i)) {
					return false
				}
			}
		}
	}
	return true
}

// commitRoots publishes the new view: its roots go to the inactive
// header slot (persisted), then the 8-byte slot word flips atomically —
// the durable commit point — and finally the in-DRAM view pointer is
// swapped so subsequent operations address the new arrays.
func (t *Table) commitRoots(nvw *view) {
	slotAddr := t.hdr + hdrSlot*layout.WordSize
	cur := t.mem.Read8(slotAddr)
	next := 1 - cur
	base := uint64(hdrSlot0)
	if next == 1 {
		base = hdrSlot1
	}
	w := func(i uint64, v uint64) { t.mem.Write8(t.hdr+(base+i)*layout.WordSize, v) }
	w(0, nvw.tab1.Base)
	w(1, nvw.tab2.Base)
	w(2, nvw.tab1.N)
	t.mem.Persist(t.hdr+base*layout.WordSize, 3*layout.WordSize)
	t.mem.AtomicWrite8(slotAddr, next)
	t.mem.Persist(slotAddr, layout.WordSize)
	if t.cur().occ != nil {
		nvw.buildOcc(t.gsz) // rebuild the volatile index for the new arrays
	}
	t.vp.Store(nvw)
}

// InsertAutoExpand inserts (k, v), expanding the table as needed. It is
// the convenience entry point a key-value store would use.
func (t *Table) InsertAutoExpand(k layout.Key, v uint64) error {
	err := t.Insert(k, v)
	if err != hashtab.ErrTableFull {
		return err
	}
	if err := t.Expand(); err != nil {
		return err
	}
	return t.Insert(k, v)
}
