package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
)

// Expand grows the table when Insert returns ErrTableFull. The paper
// notes the condition ("the capacity of the hash table needs to be
// expanded", §3.4) but leaves the mechanism open; this implementation
// is an extension with the same consistency discipline as the rest of
// the scheme:
//
//  1. allocate fresh level-1/level-2 arrays of double the size;
//  2. re-insert every live item into the new arrays using the normal
//     cell commit protocol (payload → persist → meta → persist);
//  3. record the new roots in the inactive header slot and persist;
//  4. atomically flip the header's slot word — the 8-byte commit point
//     of the whole expansion — and persist it.
//
// A crash anywhere before step 4 leaves the old table untouched and
// current (the new arrays are garbage the allocator may reuse); a
// crash after step 4 leaves the fully-built new table current. The
// count is unchanged by expansion, so the count word needs no update.
//
// On backends exposing hashtab.Reclaimer the arrays of a failed rehash
// attempt are returned to the allocator before the next doubling is
// tried, so a retried expansion's footprint is bounded by its final
// (successful) attempt rather than the sum of all attempts. Backends
// without reclaim (memsim's fixed region) keep the abandoned arrays,
// which mirrors how a PMFS file would be grown in practice
// (allocate-new, switch, free-old).
//
// The rehash itself is parallelised on concurrent-read-safe backends;
// see rehashInto.
func (t *Table) Expand() error {
	vw := t.cur()
	seed := t.mem.Read8(t.hdr + hdrSeed*layout.WordSize)
	rec, canReclaim := t.mem.(hashtab.Reclaimer)
	newCells := vw.tab1.N * 2
	for attempt := 0; attempt < 3; attempt, newCells = attempt+1, newCells*2 {
		var mark uint64
		if canReclaim {
			mark = rec.Mark()
		}
		nvw := t.newView(newCells, seed)
		if t.expandFailures > 0 {
			t.expandFailures--
		} else if t.rehashInto(vw, nvw) {
			t.commitRoots(nvw)
			return nil
		}
		// Placement failed even in the bigger table (pathological
		// skew): reclaim the attempt's arrays if the allocator can,
		// then retry with the next doubling.
		if canReclaim {
			rec.Release(mark)
		}
	}
	return fmt.Errorf("core: expansion failed after tripling attempts: %w", hashtab.ErrTableFull)
}

// RehashBench runs one full-table rehash into fresh doubled arrays
// WITHOUT committing them, returning the wall time of the migration
// itself (array allocation and reclamation excluded). The table is
// left unchanged, and on reclaiming backends the scratch arrays are
// returned to the allocator, so repeated calls — e.g. a worker-count
// sweep via SetRehashWorkers — reuse one built table without growing
// the footprint. Benchmark instrumentation for cmd/ghbench; not part
// of the recovery or expansion protocol.
func (t *Table) RehashBench() (time.Duration, error) {
	vw := t.cur()
	seed := t.mem.Read8(t.hdr + hdrSeed*layout.WordSize)
	rec, canReclaim := t.mem.(hashtab.Reclaimer)
	var mark uint64
	if canReclaim {
		mark = rec.Mark()
	}
	nvw := t.newView(vw.tab1.N*2, seed)
	start := time.Now()
	ok := t.rehashInto(vw, nvw)
	d := time.Since(start)
	if canReclaim {
		rec.Release(mark)
	}
	if !ok {
		return d, hashtab.ErrTableFull
	}
	return d, nil
}

// SetRehashWorkers overrides the worker count of the parallel rehash:
// 0 restores the automatic choice (GOMAXPROCS on eligible backends),
// 1 forces the sequential path, n > 1 forces an n-worker pool even
// beyond GOMAXPROCS (useful for benchmarking the pool's scheduling
// overhead in isolation — on a machine with fewer cores the extra
// workers just timeshare). Two-choice tables and backends without
// atomic word access ignore the override and stay sequential. Must not
// be called while an expansion is in flight.
func (t *Table) SetRehashWorkers(n int) {
	if n < 0 {
		n = 0
	}
	t.rehashWorkers = n
}

// rehashInto re-inserts every live item of vw into the new view,
// reporting whether all items could be placed.
//
// The hash function takes the HIGH bits of the 64-bit hash, so growing
// from N to M·N level-1 cells appends bits at the BOTTOM of every
// index: an item whose level-1 home was cell i moves to a cell in
// [M·i, M·(i+1)). Old group g therefore maps exactly onto new groups
// [M·g, M·(g+1)) — and since every item stored in old level-2 group g
// has its level-1 home inside old group g, the destination windows of
// distinct old groups are disjoint. Two consequences:
//
//   - The migration is embarrassingly parallel at group granularity:
//     workers claim contiguous ranges of old groups and write
//     non-overlapping regions of the new arrays, with no locks and no
//     cross-worker conflicts.
//   - Within one old group's window the destination level-2 groups are
//     exclusively owned and start empty, so they fill strictly left to
//     right — rehashGroups tracks each one's fill with a DRAM cursor
//     instead of re-scanning the occupied prefix per item. That turns
//     the level-2 half of the rehash from O(items · fill) commit-word
//     reads into O(items), which at high load factors is most of the
//     rehash (the old first-empty scan walked ~90 cells per spilled
//     item at 82% occupancy).
//
// The parallel path is gated on backends whose word accesses are
// individually atomic (hashtab.ConcurrentReader) and on single-choice
// tables (a two-choice item's second candidate lands in an unrelated
// group, breaking both disjointness and the left-to-right fill);
// everything else takes the sequential path, which uses the same
// cursor placement. Per-item durability is unchanged either way — each
// item runs the same cell commit protocol (payload → persist → meta →
// persist) through Cells.InsertAt, and the single 8-byte header-slot
// flip in commitRoots remains the expansion's only commit point.
func (t *Table) rehashInto(vw, nvw *view) bool {
	groups := vw.tab1.N / t.gsz
	workers := 1
	if _, ok := t.mem.(hashtab.ConcurrentReader); ok && !t.two {
		workers = t.rehashWorkers
		if workers == 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if uint64(workers) > groups {
			workers = int(groups)
		}
	}
	if workers <= 1 {
		return t.rehashGroups(vw, nvw, 0, groups)
	}
	// Dynamic chunked claiming: workers grab batches of old groups off
	// a shared counter, so a skewed region cannot leave one worker with
	// all the work.
	const chunk = 8
	var next atomic.Uint64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				lo := next.Add(chunk) - chunk
				if lo >= groups {
					return
				}
				hi := lo + chunk
				if hi > groups {
					hi = groups
				}
				if !t.rehashGroups(vw, nvw, lo, hi) {
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return !failed.Load()
}

// rehashGroups migrates the live items of old groups [gLo, gHi) from vw
// into nvw, reporting whether every item was placed. Requires nvw's
// destination windows for these groups to be empty and exclusively
// owned by this call (true for every rehash: Expand builds nvw fresh,
// and online migration drains a stripe exactly once under its lock).
// Two-choice tables take the generic placeIn path instead — their
// second candidate breaks window disjointness.
func (t *Table) rehashGroups(vw, nvw *view, gLo, gHi uint64) bool {
	if t.two {
		lo, hi := gLo*t.gsz, gHi*t.gsz
		for _, cells := range [2]hashtab.Cells{vw.tab1, vw.tab2} {
			for i := lo; i < hi; i++ {
				if cells.Occupied(i) {
					if !t.placeIn(nvw, cells.Key(i), cells.Value(i)) {
						return false
					}
				}
			}
		}
		return true
	}
	mult := nvw.tab1.N / vw.tab1.N
	cur := make([]uint64, mult)
	for g := gLo; g < gHi; g++ {
		for i := range cur {
			cur[i] = 0
		}
		winBase := g * mult // first destination group of old group g
		lo, hi := g*t.gsz, (g+1)*t.gsz
		for _, cells := range [2]hashtab.Cells{vw.tab1, vw.tab2} {
			for i := lo; i < hi; i++ {
				if cells.Occupied(i) {
					if !t.placeRehash(nvw, cells.Key(i), cells.Value(i), winBase, cur) {
						return false
					}
				}
			}
		}
	}
	return true
}

// placeRehash places one migrated item into nvw: the level-1 home if
// free, else the matching level-2 group's fill cursor — the exact cell
// the generic first-empty scan would pick, located without the scan
// (destination groups fill left to right with no deletes in between).
// cur[i] is the fill of destination group winBase+i.
func (t *Table) placeRehash(nvw *view, k layout.Key, v uint64, winBase uint64, cur []uint64) bool {
	i1 := nvw.h.Index(k.Lo, k.Hi)
	if !nvw.tab1.Occupied(i1) {
		nvw.tab1.InsertAt(i1, k, v)
		return true
	}
	g := i1/t.gsz - winBase
	c := cur[g]
	if c >= t.gsz {
		return false
	}
	j := (winBase+g)*t.gsz + c
	nvw.tab2.InsertAt(j, k, v)
	if nvw.fp != nil {
		nvw.fpStore(j, t.fpTag(k))
	}
	nvw.noteL2Insert((winBase+g)*t.gsz, t.gsz)
	cur[g] = c + 1
	return true
}

// commitRoots publishes the new view: its roots go to the inactive
// header slot (persisted), then the 8-byte slot word flips atomically —
// the durable commit point — and finally the in-DRAM view pointer is
// swapped so subsequent operations address the new arrays.
func (t *Table) commitRoots(nvw *view) {
	slotAddr := t.hdr + hdrSlot*layout.WordSize
	cur := t.mem.Read8(slotAddr)
	next := 1 - cur
	base := uint64(hdrSlot0)
	if next == 1 {
		base = hdrSlot1
	}
	w := func(i uint64, v uint64) { t.mem.Write8(t.hdr+(base+i)*layout.WordSize, v) }
	w(0, nvw.tab1.Base)
	w(1, nvw.tab2.Base)
	w(2, nvw.tab1.N)
	t.mem.Persist(t.hdr+base*layout.WordSize, 3*layout.WordSize)
	t.mem.AtomicWrite8(slotAddr, next)
	t.mem.Persist(slotAddr, layout.WordSize)
	if t.cur().occ != nil {
		nvw.buildOcc(t.gsz) // rebuild the volatile index for the new arrays
	}
	t.vp.Store(nvw)
}

// InsertAutoExpand inserts (k, v), expanding the table as needed. It is
// the convenience entry point a key-value store would use.
func (t *Table) InsertAutoExpand(k layout.Key, v uint64) error {
	err := t.Insert(k, v)
	if err != hashtab.ErrTableFull {
		return err
	}
	if err := t.Expand(); err != nil {
		return err
	}
	return t.Insert(k, v)
}
