package core

import (
	"fmt"
	"math/rand"
	"testing"

	"grouphash/internal/layout"
	"grouphash/internal/native"
)

// fpZeroMaskRef is the obvious byte-loop reference for fpZeroMask.
func fpZeroMaskRef(x uint64) uint64 {
	var m uint64
	for i := 0; i < 8; i++ {
		if x>>(i*8)&0xff == 0 {
			m |= 0x80 << (i * 8)
		}
	}
	return m
}

// TestFpZeroMaskExact proves the SWAR zero-byte test exact — no false
// positives AND no false negatives — on the adversarial shapes where
// the classic (x-0x01..)&^x&0x80.. trick produces cross-lane-borrow
// false positives, plus a random sweep. Exactness is load-bearing:
// placeInGroupFP picks "empty" slots straight from this mask, and a
// false positive would overwrite a live cell.
func TestFpZeroMaskExact(t *testing.T) {
	cases := []uint64{
		0, ^uint64(0),
		0x0101010101010101, 0x8080808080808080,
		0x0100000000000000, 0x0000000000000100,
		0x0180018001800180, // borrow bait: 0x80 lanes below 0x01 lanes
		0xff00ff00ff00ff00, 0x00ff00ff00ff00ff,
		0x0001000100010001, 0x7f7f7f7f7f7f7f7f,
	}
	// Every single byte value in every lane position.
	for lane := 0; lane < 8; lane++ {
		for v := uint64(0); v < 256; v++ {
			cases = append(cases, v<<(lane*8), ^uint64(0)&^(0xff<<(lane*8))|v<<(lane*8))
		}
	}
	for _, x := range cases {
		if got, want := fpZeroMask(x), fpZeroMaskRef(x); got != want {
			t.Fatalf("fpZeroMask(%#016x) = %#016x, want %#016x", x, got, want)
		}
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200000; i++ {
		x := rng.Uint64()
		if i%3 == 0 {
			x &= fpBroadcast(rng.Uint64() & 0x0101) // plant zero bytes
		}
		if got, want := fpZeroMask(x), fpZeroMaskRef(x); got != want {
			t.Fatalf("fpZeroMask(%#016x) = %#016x, want %#016x", x, got, want)
		}
	}
}

// TestFingerprintDefaults pins the enablement matrix: on by default on
// the native (ConcurrentReader) backend, off on the simulated machine
// (whose golden counters must keep measuring the paper's exact probe
// sequence), and unavailable below the 8-cell group floor.
func TestFingerprintDefaults(t *testing.T) {
	tab := mustCreate(t, native.New(1<<22), Options{Cells: 1 << 10, GroupSize: 16})
	if !tab.FingerprintsEnabled() {
		t.Fatal("sidecar off by default on the native backend")
	}

	small := mustCreate(t, native.New(1<<22), Options{Cells: 1 << 10, GroupSize: 4})
	if small.FingerprintsEnabled() {
		t.Fatal("sidecar on with a 4-cell group (tag words would span groups)")
	}
	if small.EnableFingerprints() {
		t.Fatal("EnableFingerprints accepted an ineligible geometry")
	}

	sim := mustCreate(t, simMem(5), Options{Cells: 1 << 10, GroupSize: 16})
	if sim.FingerprintsEnabled() {
		t.Fatal("sidecar on by default on the simulated backend")
	}
	if !sim.EnableFingerprints() {
		t.Fatal("explicit opt-in refused on an eligible simulated table")
	}
	if !sim.FingerprintsEnabled() {
		t.Fatal("opt-in did not stick")
	}
	sim.DisableFingerprints()
	if sim.FingerprintsEnabled() {
		t.Fatal("DisableFingerprints did not stick")
	}
}

// TestFingerprintEquivalence drives an identical random operation mix
// through a filtered and an unfiltered table (same seed, same keys) and
// demands bit-identical observable behaviour, then consistency on both.
// This is the drift guard for the two probe strategies sharing
// findInGroup.
func TestFingerprintEquivalence(t *testing.T) {
	for _, keyBytes := range []int{8, 16} {
		opts := Options{Cells: 1 << 10, GroupSize: 16, KeyBytes: keyBytes, Seed: 21}
		fpTab := mustCreate(t, native.New(1<<24), opts)
		plain := mustCreate(t, native.New(1<<24), opts)
		plain.DisableFingerprints()
		if !fpTab.FingerprintsEnabled() || plain.FingerprintsEnabled() {
			t.Fatal("setup: sidecar states wrong")
		}

		rng := rand.New(rand.NewSource(int64(keyBytes)))
		key := func() layout.Key {
			return layout.Key{Lo: uint64(rng.Intn(2000)) + 1, Hi: uint64(rng.Intn(3))}
		}
		for op := 0; op < 30000; op++ {
			k := key()
			switch rng.Intn(5) {
			case 0, 1:
				e1, e2 := fpTab.Insert(k, uint64(op)), plain.Insert(k, uint64(op))
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("op %d: insert diverged: %v vs %v", op, e1, e2)
				}
			case 2:
				if d1, d2 := fpTab.Delete(k), plain.Delete(k); d1 != d2 {
					t.Fatalf("op %d: delete diverged: %v vs %v", op, d1, d2)
				}
			case 3:
				if u1, u2 := fpTab.Update(k, uint64(op)), plain.Update(k, uint64(op)); u1 != u2 {
					t.Fatalf("op %d: update diverged: %v vs %v", op, u1, u2)
				}
			default:
				v1, ok1 := fpTab.Lookup(k)
				v2, ok2 := plain.Lookup(k)
				if ok1 != ok2 || v1 != v2 {
					t.Fatalf("op %d: lookup diverged: (%d,%v) vs (%d,%v)", op, v1, ok1, v2, ok2)
				}
			}
		}
		if fpTab.Len() != plain.Len() {
			t.Fatalf("lengths diverged: %d vs %d", fpTab.Len(), plain.Len())
		}
		for _, tab := range []*Table{fpTab, plain} {
			if bad := tab.CheckConsistency(); len(bad) != 0 {
				t.Fatalf("inconsistencies: %v", bad)
			}
		}
		hits, skips := fpTab.FingerprintStats()
		if hits == 0 || skips == 0 {
			t.Fatalf("filter never exercised: hits=%d skips=%d", hits, skips)
		}
		if h, s := plain.FingerprintStats(); h != 0 || s != 0 {
			t.Fatalf("unfiltered table counted filter work: hits=%d skips=%d", h, s)
		}
	}
}

// TestFingerprintCrashRecoveryCoherence crashes a filtered table on the
// simulated machine — including mid-insert, leaving a torn payload —
// and checks Recover rederives the sidecar from the certified cells:
// CheckConsistency's tag-vs-cell audit must come back clean and every
// committed key must still be found through the filter.
func TestFingerprintCrashRecoveryCoherence(t *testing.T) {
	mem := simMem(31)
	tab := mustCreate(t, mem, Options{Cells: 256, GroupSize: 16})
	if !tab.EnableFingerprints() {
		t.Fatal("opt-in refused")
	}
	rng := rand.New(rand.NewSource(8))
	live := map[uint64]uint64{}
	for i := 0; i < 400; i++ {
		k := uint64(rng.Intn(300)) + 1
		if rng.Intn(3) == 0 {
			if tab.Delete(layout.Key{Lo: k}) {
				delete(live, k)
			}
		} else if err := tab.Insert(layout.Key{Lo: k}, k*3); err == nil {
			live[k] = k * 3
		}
	}
	mem.CleanShutdown()

	// Tear an insert: payload written, commit word never flipped.
	k := layout.Key{Lo: 7777}
	idx := tab.cur().h.Index(k.Lo, k.Hi)
	cells := tab.cur().tab1
	if cells.Occupied(idx) {
		cells = tab.cur().tab2
		for idx = tab.groupStart(idx); cells.Occupied(idx); idx++ {
		}
	}
	cells.WritePayload(idx, k, 42)
	mem.Crash(0.5)

	if _, err := tab.Recover(); err != nil {
		t.Fatal(err)
	}
	if !tab.FingerprintsEnabled() {
		t.Fatal("recovery dropped the sidecar")
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("post-recovery inconsistencies: %v", bad)
	}
	for k, v := range live {
		got, ok := tab.Lookup(layout.Key{Lo: k})
		if !ok || got != v {
			t.Fatalf("committed key %d lost after recovery: (%d, %v)", k, got, ok)
		}
	}
	if _, ok := tab.Lookup(k); ok {
		t.Fatal("torn insert visible after recovery")
	}
}

// TestFingerprintExpansionCoherence grows a filtered table through
// several sequential doublings and checks the new views' sidecars —
// filled by the rehash cursor path, not buildFp — agree with the cells.
func TestFingerprintExpansionCoherence(t *testing.T) {
	tab := mustCreate(t, native.New(1<<24), Options{Cells: 64, GroupSize: 16, Seed: 9})
	if !tab.FingerprintsEnabled() {
		t.Fatal("sidecar off")
	}
	start := tab.Capacity()
	const n = 900
	for i := uint64(1); i <= n; i++ {
		if err := tab.InsertAutoExpand(layout.Key{Lo: i * 0x9e3779b97f4a7c15}, i); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tab.Capacity() <= start {
		t.Fatalf("no expansion happened (capacity %d)", tab.Capacity())
	}
	if !tab.FingerprintsEnabled() {
		t.Fatal("expansion dropped the sidecar")
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("post-expansion inconsistencies: %v", bad)
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := tab.Lookup(layout.Key{Lo: i * 0x9e3779b97f4a7c15}); !ok || v != i {
			t.Fatalf("key %d lost after expansion: (%d, %v)", i, v, ok)
		}
	}
}

// TestFingerprintDuplicateFirstMatch plants the same key twice in one
// group (possible transiently; the probe contract says the FIRST cell
// in scan order wins) and checks the filtered scan preserves the
// unfiltered scan's answer for find, delete and re-find.
func TestFingerprintDuplicateFirstMatch(t *testing.T) {
	tab := mustCreate(t, native.New(1<<22), Options{Cells: 1 << 10, GroupSize: 16, Seed: 2})
	vw := tab.cur()
	k := layout.Key{Lo: 12345}
	j := tab.groupStart(vw.h.Index(k.Lo, k.Hi))
	// Two copies with a decoy between them, all placed by the normal path.
	if !tab.placeInGroup(vw, j, k, 100) ||
		!tab.placeInGroup(vw, j, layout.Key{Lo: 54321}, 0) ||
		!tab.placeInGroup(vw, j, k, 200) {
		t.Fatal("setup placements failed")
	}

	iFP, okFP := tab.findInGroup(vw, j, k)
	tab.DisableFingerprints()
	iPlain, okPlain := tab.findInGroup(vw, j, k)
	if !okFP || !okPlain || iFP != iPlain {
		t.Fatalf("scan order diverged: fp=(%d,%v) plain=(%d,%v)", iFP, okFP, iPlain, okPlain)
	}
	if v := vw.tab2.Value(iFP); v != 100 {
		t.Fatalf("first match holds %d, want the first copy (100)", v)
	}

	tab.EnableFingerprints()
	vw = tab.cur()
	if !tab.removeInGroup(vw, j, k) {
		t.Fatal("delete missed")
	}
	i2, ok := tab.findInGroup(vw, j, k)
	if !ok || vw.tab2.Value(i2) != 200 {
		t.Fatal("second copy not found after deleting the first")
	}
	if i2 <= iFP {
		t.Fatalf("second copy at %d not after first at %d", i2, iFP)
	}
}

// benchFillTable builds a group-256 native table at (close to) the
// requested load factor. Inserts that land in a full group are skipped
// and replaced — at 82% the table is past the paper's
// insert-until-first-failure ceiling, so some keys simply do not fit —
// and the achieved load factor is logged.
func benchFillTable(b *testing.B, lfPct int, fp bool) (*Table, []layout.Key) {
	b.Helper()
	const l1 = 1 << 15
	tab, err := Create(native.New(1<<16), Options{Cells: l1, GroupSize: 256, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	if !fp {
		tab.DisableFingerprints()
	}
	target := tab.Capacity() * uint64(lfPct) / 100
	keys := make([]layout.Key, 0, target)
	fails := 0
	for i := uint64(1); uint64(len(keys)) < target && fails < 1<<17; i++ {
		k := layout.Key{Lo: i * 0x9e3779b97f4a7c15}
		if tab.Insert(k, i) != nil {
			fails++
			continue
		}
		keys = append(keys, k)
	}
	b.Logf("load factor %.1f%% (target %d%%), %d keys", tab.LoadFactor()*100, lfPct, len(keys))
	return tab, keys
}

// BenchmarkLookupHit measures present-key probes at three load factors,
// filtered vs unfiltered. Keys are looked up in insertion order, which
// mixes level-1 direct hits with level-2 group scans exactly as a real
// read-mostly workload would see them.
func BenchmarkLookupHit(b *testing.B) {
	for _, lf := range []int{50, 70, 82} {
		for _, fp := range []bool{true, false} {
			b.Run(fmt.Sprintf("lf%d/fp=%v", lf, fp), func(b *testing.B) {
				tab, keys := benchFillTable(b, lf, fp)
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if _, ok := tab.Lookup(keys[n%len(keys)]); !ok {
						b.Fatal("present key missed")
					}
				}
			})
		}
	}
}

// BenchmarkLookupMiss measures absent-key probes — the filter's best
// case: an unfiltered miss walks the whole occupied prefix of both
// candidate regions, a filtered miss screens 8 tags per word load.
func BenchmarkLookupMiss(b *testing.B) {
	for _, lf := range []int{50, 70, 82} {
		for _, fp := range []bool{true, false} {
			b.Run(fmt.Sprintf("lf%d/fp=%v", lf, fp), func(b *testing.B) {
				tab, _ := benchFillTable(b, lf, fp)
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					k := layout.Key{Lo: (uint64(n)%(1<<20) + 1<<40) * 0x9e3779b97f4a7c15}
					if _, ok := tab.Lookup(k); ok {
						b.Fatal("absent key found")
					}
				}
			})
		}
	}
}
