package core

import (
	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
)

// Insert stores (k, v), following Algorithm 1 of the paper:
//
//  1. hash to level-1 cell k; if empty, write the payload there,
//     persist it, atomically set the bitmap/meta word, persist it,
//     atomically bump count, persist it;
//  2. otherwise scan the matching level-2 group for an empty cell and
//     run the same commit protocol there;
//  3. if the group is full, the table needs expansion: ErrTableFull.
//
// In two-choice mode (§4.4 extension) the key has a second candidate
// level-1 cell and a second matched group; both are tried before the
// insert fails.
//
// A crash before the commit-word flip leaves a torn payload behind a
// zero bitmap, which Recover scrubs; a crash before the count update
// leaves a stale count, which Recover recomputes. Neither compromises
// consistency (§3.3).
func (t *Table) Insert(k layout.Key, v uint64) error {
	if !t.l.ValidKey(k) {
		return hashtab.ErrInvalidKey
	}
	if !t.placeIn(t.cur(), k, v) {
		return hashtab.ErrTableFull
	}
	t.setCount(t.Len() + 1)
	return nil
}

// Lookup returns the value stored under k, following Algorithm 2:
// check the level-1 cell, then scan the matching level-2 group. The
// level-2 scan runs even when the level-1 cell is empty, because an
// item placed in level 2 stays there if its level-1 home is later
// deleted. Two-choice mode checks both candidate cells and groups.
func (t *Table) Lookup(k layout.Key) (uint64, bool) {
	return t.lookupIn(t.cur(), k)
}

// lookupIn runs Algorithm 2 against one view. The concurrent wrapper
// uses it directly to probe the NEW arrays of an in-flight expansion
// for stripes whose migration has completed.
func (t *Table) lookupIn(vw *view, k layout.Key) (uint64, bool) {
	i1, i2, n := t.homesIn(vw, k)
	if vw.tab1.Matches(i1, k) {
		return vw.tab1.Value(i1), true
	}
	if n == 2 && vw.tab1.Matches(i2, k) {
		return vw.tab1.Value(i2), true
	}
	if v, ok := t.lookupInGroup(vw, t.groupStart(i1), k); ok {
		return v, true
	}
	if n == 2 && t.groupStart(i2) != t.groupStart(i1) {
		return t.lookupInGroup(vw, t.groupStart(i2), k)
	}
	return 0, false
}

func (t *Table) lookupInGroup(vw *view, j uint64, k layout.Key) (uint64, bool) {
	if i, ok := t.findInGroup(vw, j, k); ok {
		return vw.tab2.Value(i), true
	}
	return 0, false
}

// findInGroup locates the first cell of the level-2 group starting at j
// that holds k. With the fingerprint sidecar active it screens the
// group's tag words first and dereferences only candidate cells;
// otherwise it runs the paper's scan, bounded by the occupancy index
// when that is on. All group probes — lookup, delete, in-place update —
// funnel through here, so the two probe strategies cannot drift.
func (t *Table) findInGroup(vw *view, j uint64, k layout.Key) (uint64, bool) {
	if vw.fp != nil {
		return t.findInGroupFP(vw, j, k)
	}
	remaining := vw.occupancy(j, t.gsz)
	for i := uint64(0); i < t.gsz && remaining > 0; i++ {
		match, occupied := vw.tab2.Probe(j+i, k)
		if match {
			return j + i, true
		}
		if occupied {
			remaining--
		}
	}
	return 0, false
}

// Delete removes k, following Algorithm 3. The commit word is
// atomically cleared and persisted BEFORE the payload is scrubbed:
// once the bitmap is durably zero the delete has logically completed,
// and a crash between the two steps leaves only a stale payload behind
// a zero bitmap for Recover to scrub (§3.4's ordering argument).
func (t *Table) Delete(k layout.Key) bool {
	if !t.removeIn(t.cur(), k) {
		return false
	}
	t.setCount(t.Len() - 1)
	return true
}

// removeIn runs the cell retire protocol (clear commit word, scrub
// payload) against one view, without the count update, reporting
// whether the key was found. It is the deletion twin of placeIn and the
// single implementation both Table.Delete and Concurrent.Delete build
// on, so the sequential and concurrent paths cannot drift.
func (t *Table) removeIn(vw *view, k layout.Key) bool {
	i1, i2, n := t.homesIn(vw, k)
	if vw.tab1.Matches(i1, k) {
		vw.tab1.DeleteAt(i1)
		return true
	}
	if n == 2 && vw.tab1.Matches(i2, k) {
		vw.tab1.DeleteAt(i2)
		return true
	}
	if t.removeInGroup(vw, t.groupStart(i1), k) {
		return true
	}
	if n == 2 && t.groupStart(i2) != t.groupStart(i1) {
		return t.removeInGroup(vw, t.groupStart(i2), k)
	}
	return false
}

func (t *Table) removeInGroup(vw *view, j uint64, k layout.Key) bool {
	i, ok := t.findInGroup(vw, j, k)
	if !ok {
		return false
	}
	vw.tab2.DeleteAt(i)
	vw.fpStore(i, 0)
	vw.noteL2Delete(j, t.gsz)
	return true
}

// Update overwrites the value of an existing key in place and persists
// it. Values are a single failure-atomic word, so no further protocol
// is needed: a crash exposes either the old or the new value, both
// consistent. Returns false if the key is absent. (Extension beyond the
// paper, which only defines insert/query/delete.)
func (t *Table) Update(k layout.Key, v uint64) bool {
	return t.updateIn(t.cur(), k, v)
}

// updateIn is Update against one view.
func (t *Table) updateIn(vw *view, k layout.Key, v uint64) bool {
	if cells, idx, ok := t.locateIn(vw, k); ok {
		addr := t.l.ValOff(cells.Addr(idx))
		t.mem.AtomicWrite8(addr, v)
		t.mem.Persist(addr, layout.WordSize)
		return true
	}
	return false
}

// locateIn finds the cell currently holding k under vw.
func (t *Table) locateIn(vw *view, k layout.Key) (hashtab.Cells, uint64, bool) {
	i1, i2, n := t.homesIn(vw, k)
	if vw.tab1.Matches(i1, k) {
		return vw.tab1, i1, true
	}
	if n == 2 && vw.tab1.Matches(i2, k) {
		return vw.tab1, i2, true
	}
	for _, j := range [2]uint64{t.groupStart(i1), t.groupStart(i2)} {
		if i, ok := t.findInGroup(vw, j, k); ok {
			return vw.tab2, i, true
		}
		if n != 2 || t.groupStart(i2) == t.groupStart(i1) {
			break
		}
	}
	return hashtab.Cells{}, 0, false
}

// Range calls fn for every stored item until fn returns false. Order is
// unspecified. (Extension beyond the paper; used by expansion and the
// verification tooling.)
func (t *Table) Range(fn func(k layout.Key, v uint64) bool) {
	vw := t.cur()
	for _, cells := range [2]hashtab.Cells{vw.tab1, vw.tab2} {
		for i := uint64(0); i < cells.N; i++ {
			if cells.Occupied(i) {
				if !fn(cells.Key(i), cells.Value(i)) {
					return
				}
			}
		}
	}
}
