package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"grouphash/internal/cache"
	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/native"
)

// ---------------------------------------------------------------------
// Crash injection around the expansion commit point, sequential path:
// cut Expand at EVERY internal memory event of the simulator and verify
// the two-slot root protocol's guarantee — before the 8-byte slot flip
// the old table recovers complete, after it the new one does, and in
// both cases every item is present exactly once.

func TestEveryCrashPointOfExpandIsSafe(t *testing.T) {
	for _, p := range []float64{0, 0.5, 1} {
		for offset := uint64(1); ; offset++ {
			mem, tab := buildDeterministic(int64(3000 + offset))
			hdr := tab.Header()
			start := mem.Counters().Accesses
			mem.ScheduleShadowCrash(start+offset, p)
			if err := tab.Expand(); err != nil {
				t.Fatal(err)
			}
			if !mem.AdoptShadowCrash() {
				break // offset beyond the expansion's length: done
			}
			// The in-DRAM handle may be ahead of the crashed image;
			// reopen from the persistent header, as a restart would.
			re, err := Open(mem, hdr)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := re.Recover(); err != nil {
				t.Fatal(err)
			}
			if n := re.Cells(); n != 128 && n != 256 {
				t.Fatalf("p=%v offset=%d: reopened cells = %d, want old 128 or new 256", p, offset, n)
			}
			if bad := re.CheckConsistency(); len(bad) != 0 {
				t.Fatalf("p=%v offset=%d: inconsistencies: %v", p, offset, bad)
			}
			if re.Len() != 30 {
				t.Fatalf("p=%v offset=%d: count %d after recovery, want 30", p, offset, re.Len())
			}
			for i := uint64(1); i <= 30; i++ {
				if v, ok := re.Lookup(layout.Key{Lo: i * 11}); !ok || v != i {
					t.Fatalf("p=%v offset=%d: item %d damaged by expansion crash: (%d, %v)",
						p, offset, i, v, ok)
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Allocator reclaim: failed rehash attempts must not leak their arrays
// on backends with a rewindable bump allocator.

func TestExpandReclaimsFailedAttempts(t *testing.T) {
	mem := native.New(1 << 20)
	tab, err := Create(mem, Options{Cells: 256, GroupSize: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 100; i++ {
		if err := tab.Insert(layout.Key{Lo: i}, i); err != nil {
			t.Fatal(err)
		}
	}
	// Force the first two rehash attempts (512 and 1024 cells) to fail;
	// the third (2048 cells) succeeds. With reclaim the footprint is the
	// final attempt's arrays alone; without it the two failed attempts'
	// arrays (512+1024 cells, both levels) would leak.
	tab.expandFailures = 2
	before := mem.Allocated()
	if err := tab.Expand(); err != nil {
		t.Fatal(err)
	}
	if tab.Cells() != 2048 {
		t.Fatalf("cells = %d, want 2048 after two forced failures", tab.Cells())
	}
	finalFootprint := 2 * 2048 * tab.l.CellSize()
	grown := mem.Allocated() - before
	if grown != finalFootprint {
		t.Fatalf("allocator grew %d bytes, want exactly the final attempt's %d", grown, finalFootprint)
	}
	for i := uint64(1); i <= 100; i++ {
		if v, ok := tab.Lookup(layout.Key{Lo: i}); !ok || v != i {
			t.Fatalf("item %d lost by retried expansion: (%d, %v)", i, v, ok)
		}
	}
}

// TestExpandWithoutReclaimStillWorks pins the memsim behaviour: no
// Reclaimer, so a forced failure leaks the attempt but expansion still
// completes.
func TestExpandWithoutReclaimStillWorks(t *testing.T) {
	mem := memsim.New(memsim.Config{Size: 1 << 20, Seed: 1, Geoms: cache.SmallGeometry()})
	if _, ok := interface{}(mem).(hashtab.Reclaimer); ok {
		t.Fatal("memsim unexpectedly implements Reclaimer; this test needs updating")
	}
	tab, err := Create(mem, Options{Cells: 128, GroupSize: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 40; i++ {
		if err := tab.Insert(layout.Key{Lo: i}, i); err != nil {
			t.Fatal(err)
		}
	}
	tab.expandFailures = 1
	if err := tab.Expand(); err != nil {
		t.Fatal(err)
	}
	if tab.Cells() != 512 {
		t.Fatalf("cells = %d, want 512", tab.Cells())
	}
	for i := uint64(1); i <= 40; i++ {
		if v, ok := tab.Lookup(layout.Key{Lo: i}); !ok || v != i {
			t.Fatalf("item %d lost: (%d, %v)", i, v, ok)
		}
	}
}

// ---------------------------------------------------------------------
// Online expansion under concurrent load: writers hammer a tiny table
// across many doublings; none may ever see ErrTableFull, and the final
// table must hold every acked key exactly once. Run with -race.

func TestOnlineExpansionUnderLoad(t *testing.T) {
	mem := native.New(1 << 20)
	tab, err := Create(mem, Options{Cells: 64, GroupSize: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(tab, 0)
	c.EnableOnlineExpand()

	const workers = 4
	const perWorker = 2000
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w+1) << 32
			for i := uint64(1); i <= perWorker; i++ {
				k := layout.Key{Lo: base + i}
				if err := c.Insert(k, base+i); err != nil {
					errs[w] = fmt.Errorf("insert %d: %w", i, err)
					return
				}
				// Interleave reads and occasional deletes/updates so
				// every operation type crosses live migrations.
				if v, ok := c.Lookup(k); !ok || v != base+i {
					errs[w] = fmt.Errorf("read-own-write %d: (%d, %v)", i, v, ok)
					return
				}
				switch i % 16 {
				case 3:
					if !c.Delete(k) {
						errs[w] = fmt.Errorf("delete %d failed", i)
						return
					}
				case 7:
					if !c.Update(k, base+i+1) {
						errs[w] = fmt.Errorf("update %d failed", i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	c.WaitExpansion()
	if c.Expansions() == 0 {
		t.Fatal("no expansion despite 60x overload of the initial table")
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies after online expansions: %v", bad)
	}
	var wantLen uint64
	for w := 0; w < workers; w++ {
		base := uint64(w+1) << 32
		for i := uint64(1); i <= perWorker; i++ {
			v, ok := c.Lookup(layout.Key{Lo: base + i})
			switch i % 16 {
			case 3:
				if ok {
					t.Fatalf("worker %d item %d: deleted key resurrected", w, i)
				}
			case 7:
				wantLen++
				if !ok || v != base+i+1 {
					t.Fatalf("worker %d item %d: updated value lost: (%d, %v)", w, i, v, ok)
				}
			default:
				wantLen++
				if !ok || v != base+i {
					t.Fatalf("worker %d item %d: lost: (%d, %v)", w, i, v, ok)
				}
			}
		}
	}
	if c.Len() != wantLen {
		t.Fatalf("count = %d, want %d", c.Len(), wantLen)
	}
}

// TestOnlineExpansionQuiesceInteraction takes snapshots (Quiesce) while
// expansions are continuously being triggered; Quiesce must only ever
// observe a fully committed table.
func TestOnlineExpansionQuiesceInteraction(t *testing.T) {
	mem := native.New(1 << 20)
	tab, err := Create(mem, Options{Cells: 64, GroupSize: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(tab, 0)
	c.EnableOnlineExpand()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.Insert(layout.Key{Lo: i}, i); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
	}()
	for q := 0; q < 20; q++ {
		c.Quiesce(func() {
			if c.exp.Load() != nil {
				t.Error("Quiesce ran with an expansion still in flight")
			}
			if bad := tab.CheckConsistency(); len(bad) != 0 {
				t.Errorf("quiesced table inconsistent: %v", bad)
			}
		})
	}
	close(stop)
	wg.Wait()
}

// ---------------------------------------------------------------------
// Crash injection around the ONLINE expansion commit point: capture
// legal post-crash images (the native backend's durability unit) at
// three points — mid-migration, immediately before the header-slot
// flip, and after completion — then reopen each image cold and verify
// every key acked BEFORE the expansion began is present exactly once.

// reopenImage rebuilds a table from a captured native memory image, as
// a restart would: fresh memory, Open from the header, Recover.
func reopenImage(t *testing.T, img []byte, allocated, hdr uint64) *Table {
	t.Helper()
	mem := native.New(uint64(len(img)))
	mem.SetImage(img)
	mem.SetAllocated(allocated)
	re, err := Open(mem, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re.Recover(); err != nil {
		t.Fatal(err)
	}
	if bad := re.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("reopened image inconsistent: %v", bad)
	}
	return re
}

func verifyExactlyOnce(t *testing.T, tab *Table, n uint64, ctx string) {
	t.Helper()
	for i := uint64(1); i <= n; i++ {
		if v, ok := tab.Lookup(layout.Key{Lo: i}); !ok || v != i {
			t.Fatalf("%s: acked key %d not recovered: (%d, %v)", ctx, i, v, ok)
		}
	}
	if tab.Len() != n {
		t.Fatalf("%s: count = %d, want %d (every acked key exactly once)", ctx, tab.Len(), n)
	}
	// Lookup returning the right value plus an exact count implies no
	// duplicates; cross-check by scanning the cells directly.
	seen := make(map[uint64]int, n)
	tab.Range(func(k layout.Key, v uint64) bool {
		seen[k.Lo]++
		return true
	})
	for k, times := range seen {
		if times != 1 {
			t.Fatalf("%s: key %d present %d times", ctx, k, times)
		}
	}
}

func TestOnlineExpansionCrashPoints(t *testing.T) {
	mem := native.New(1 << 20)
	tab, err := Create(mem, Options{Cells: 256, GroupSize: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(tab, 8)
	c.EnableOnlineExpand()

	// Ack a known population first (well under both the load-factor
	// trigger and any group's capacity); these keys must survive any
	// crash.
	const n = 200
	for i := uint64(1); i <= n; i++ {
		if err := c.Insert(layout.Key{Lo: i}, i); err != nil {
			t.Fatal(err)
		}
	}
	c.WaitExpansion()
	if c.Expansions() != 0 {
		t.Fatal("expansion ran before the test armed its hooks")
	}

	type capture struct {
		img       []byte
		allocated uint64
	}
	var mid, preFlip capture
	var once sync.Once
	c.hookStripeDone = func(si int) {
		// Snapshot after the first stripe drains: a mid-migration
		// crash image (some stripes moved, most not, header unflipped).
		once.Do(func() { mid = capture{mem.Image(), mem.Allocated()} })
	}
	c.hookPreFlip = func() {
		// All stripes drained, new roots written to the inactive slot,
		// the 8-byte flip NOT yet performed.
		preFlip = capture{mem.Image(), mem.Allocated()}
	}

	c.ensureExpansion()
	c.WaitExpansion()
	post := capture{mem.Image(), mem.Allocated()}

	if mid.img == nil || preFlip.img == nil {
		t.Fatal("expansion hooks did not fire")
	}

	// Mid-migration and pre-flip crashes: the slot word still selects
	// the OLD roots, migration only copied (never modified) old cells,
	// so the old table recovers complete.
	for _, tc := range []struct {
		name string
		c    capture
	}{{"mid-migration", mid}, {"pre-flip", preFlip}} {
		re := reopenImage(t, tc.c.img, tc.c.allocated, tab.Header())
		if re.Cells() != 256 {
			t.Fatalf("%s: recovered cells = %d, want old 256", tc.name, re.Cells())
		}
		verifyExactlyOnce(t, re, n, tc.name)
	}

	// Post-flip: the new, doubled table is current and complete.
	re := reopenImage(t, post.img, post.allocated, tab.Header())
	if re.Cells() != 512 {
		t.Fatalf("post-flip: recovered cells = %d, want new 512", re.Cells())
	}
	verifyExactlyOnce(t, re, n, "post-flip")
}

// TestOnlineExpansionFallbackRebuild forces every stripe's migration to
// report overflow, driving finishExpansion into the stop-the-world
// fallback: collect the authoritative items under all stripe locks and
// re-place them into doubled-again arrays. Writers blocked on the
// expansion must then succeed against the rebuilt table.
func TestOnlineExpansionFallbackRebuild(t *testing.T) {
	mem := native.New(1 << 20)
	tab, err := Create(mem, Options{Cells: 64, GroupSize: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(tab, 4)
	c.EnableOnlineExpand()

	const n = 80
	for i := uint64(1); i <= n; i++ {
		if err := c.Insert(layout.Key{Lo: i}, i); err != nil {
			t.Fatal(err)
		}
	}
	c.WaitExpansion() // settle any load-factor-triggered expansion
	cellsBefore := tab.Cells()

	var forceFail atomic.Bool
	forceFail.Store(true)
	c.hookMigrateFail = func(si int) bool { return forceFail.Load() }
	c.ensureExpansion()
	c.WaitExpansion()
	forceFail.Store(false)

	if c.fallbacks.Load() == 0 {
		t.Fatal("fallback rebuild never ran despite forced overflow")
	}
	// The fallback starts at double the failed generation's size, i.e.
	// 4x the pre-expansion cells.
	if tab.Cells() != cellsBefore*4 {
		t.Fatalf("cells = %d, want %d after fallback", tab.Cells(), cellsBefore*4)
	}
	if bad := tab.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("inconsistencies after fallback: %v", bad)
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := c.Lookup(layout.Key{Lo: i}); !ok || v != i {
			t.Fatalf("item %d lost by fallback rebuild: (%d, %v)", i, v, ok)
		}
	}
	if err := c.Insert(layout.Key{Lo: n + 1}, n+1); err != nil {
		t.Fatalf("insert after fallback: %v", err)
	}
}

// TestOnlineExpandRequiresAtomicBackend pins the gate: the simulator's
// shared-state accesses cannot run under the migration goroutines.
func TestOnlineExpandRequiresAtomicBackend(t *testing.T) {
	mem := memsim.New(memsim.Config{Size: 1 << 20, Seed: 2, Geoms: cache.SmallGeometry()})
	tab, err := Create(mem, Options{Cells: 64, GroupSize: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(tab, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("EnableOnlineExpand on memsim did not panic")
		}
	}()
	c.EnableOnlineExpand()
}
