// Package cache implements a set-associative, write-back, write-allocate
// CPU cache simulator with true-LRU replacement, plus a multi-level
// hierarchy configured with the geometry of the Xeon E5-2620 used in the
// paper's evaluation (Table 2: 384 KB L1 / 1.5 MB L2 / 15 MB L3, 64-byte
// lines).
//
// The simulator is a timing/occupancy model, not a data store: it tracks
// tags and dirty bits only; the data itself lives in the nvm.Region. Its
// two jobs are (1) producing the L3 miss counts reported in Figures 2(b)
// and 6 of the paper, and (2) telling the latency model which level
// serviced each access. clflush invalidates the line from every level —
// the very effect the paper highlights ("clflush ... will incur a cache
// miss when reading the same memory address later").
package cache

import "fmt"

// LineSize is the cacheline size in bytes, matching x86.
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// Level identifies a cache level or memory for access classification.
type Level int

// Cache levels, ordered nearest-first. Memory means all levels missed.
const (
	L1 Level = iota
	L2
	L3
	Memory
)

// String returns the conventional name of the level.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case Memory:
		return "Memory"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Stats holds per-cache counters.
type Stats struct {
	Hits       uint64 // accesses serviced by this cache
	Misses     uint64 // accesses passed down to the next level
	Evictions  uint64 // lines displaced by fills
	WriteBacks uint64 // displaced or flushed lines that were dirty
	Flushes    uint64 // clflush invalidations that found the line here
}

// set is one associativity set. Ways are kept in LRU order:
// index 0 is most recently used, the last index is the victim.
type set struct {
	tags  []uint64
	valid []bool
	dirty []bool
}

// Cache is a single set-associative cache level.
type Cache struct {
	name     string
	sets     []set
	ways     int
	setMask  uint64
	stats    Stats
	capacity uint64
}

// New creates a cache of the given capacity in bytes and associativity.
// Capacity must be a multiple of ways*LineSize and the resulting set
// count must be a power of two.
func New(name string, capacity uint64, ways int) *Cache {
	if ways <= 0 {
		panic("cache: ways must be positive")
	}
	lines := capacity / LineSize
	nsets := lines / uint64(ways)
	if nsets == 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d is not a power of two (capacity %d, ways %d)", name, nsets, capacity, ways))
	}
	c := &Cache{name: name, ways: ways, setMask: nsets - 1, capacity: capacity}
	c.sets = make([]set, nsets)
	for i := range c.sets {
		c.sets[i] = set{
			tags:  make([]uint64, ways),
			valid: make([]bool, ways),
			dirty: make([]bool, ways),
		}
	}
	return c
}

// Name returns the label given at construction.
func (c *Cache) Name() string { return c.name }

// Capacity returns the cache capacity in bytes.
func (c *Cache) Capacity() uint64 { return c.capacity }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// lineOf returns the line-aligned address of addr.
func lineOf(addr uint64) uint64 { return addr >> LineShift }

func (c *Cache) setFor(line uint64) *set { return &c.sets[line&c.setMask] }

// promote moves way i of s to the MRU position.
func (s *set) promote(i int) {
	if i == 0 {
		return // already MRU
	}
	tag, valid, dirty := s.tags[i], s.valid[i], s.dirty[i]
	copy(s.tags[1:i+1], s.tags[:i])
	copy(s.valid[1:i+1], s.valid[:i])
	copy(s.dirty[1:i+1], s.dirty[:i])
	s.tags[0], s.valid[0], s.dirty[0] = tag, valid, dirty
}

// hitMRU services the access if the line is already in the MRU way of
// its set — the overwhelmingly common case for the word-by-word access
// streams the memsim front-end generates (several accesses per line
// before moving on). It performs exactly the state transitions the
// general path would (Hits counter, dirty bit) and no others: the line
// is already MRU, so promote would be a no-op.
func (c *Cache) hitMRU(line uint64, write bool) bool {
	s := &c.sets[line&c.setMask]
	if !s.valid[0] || s.tags[0] != line {
		return false
	}
	if write {
		s.dirty[0] = true
	}
	c.stats.Hits++
	return true
}

// Evicted describes a line displaced by a fill.
type Evicted struct {
	Line  uint64 // line number (address >> LineShift)
	Dirty bool
}

// Access looks up the line containing addr, filling it on a miss.
// write marks the line dirty on success. It reports whether the access
// hit, and, when the fill displaced a valid line, the eviction details.
func (c *Cache) Access(addr uint64, write bool) (hit bool, ev Evicted, evicted bool) {
	line := lineOf(addr)
	if c.hitMRU(line, write) {
		return true, Evicted{}, false
	}
	s := c.setFor(line)
	// Way 0 was checked by the MRU fast path; scan the rest.
	for i := 1; i < c.ways; i++ {
		if s.valid[i] && s.tags[i] == line {
			s.promote(i)
			if write {
				s.dirty[0] = true
			}
			c.stats.Hits++
			return true, Evicted{}, false
		}
	}
	c.stats.Misses++
	// Fill: victim is the LRU way (last). Prefer an invalid way.
	victim := c.ways - 1
	for i := 0; i < c.ways; i++ {
		if !s.valid[i] {
			victim = i
			break
		}
	}
	if s.valid[victim] {
		ev = Evicted{Line: s.tags[victim], Dirty: s.dirty[victim]}
		evicted = true
		c.stats.Evictions++
		if ev.Dirty {
			c.stats.WriteBacks++
		}
	}
	s.tags[victim] = line
	s.valid[victim] = true
	s.dirty[victim] = write
	s.promote(victim)
	return false, ev, evicted
}

// Flush invalidates the line containing addr if present, returning
// whether it was present and whether it was dirty. Models clflush at
// this level.
func (c *Cache) Flush(addr uint64) (present, dirty bool) {
	line := lineOf(addr)
	s := c.setFor(line)
	for i := 0; i < c.ways; i++ {
		if s.valid[i] && s.tags[i] == line {
			present, dirty = true, s.dirty[i]
			s.valid[i] = false
			s.dirty[i] = false
			c.stats.Flushes++
			if dirty {
				c.stats.WriteBacks++
			}
			return present, dirty
		}
	}
	return false, false
}

// Contains reports whether the line holding addr is resident (test hook).
func (c *Cache) Contains(addr uint64) bool {
	line := lineOf(addr)
	s := c.setFor(line)
	for i := 0; i < c.ways; i++ {
		if s.valid[i] && s.tags[i] == line {
			return true
		}
	}
	return false
}

// InvalidateAll drops every line (e.g. to model a cold start between
// measurement phases). Dirty contents are NOT written back; callers that
// need write-back semantics should use FlushAll on the hierarchy.
func (c *Cache) InvalidateAll() {
	for i := range c.sets {
		s := &c.sets[i]
		for j := 0; j < c.ways; j++ {
			s.valid[j] = false
			s.dirty[j] = false
		}
	}
}

// DirtyLines returns all currently dirty resident lines (test hook and
// FlushAll support).
func (c *Cache) DirtyLines() []uint64 {
	var out []uint64
	for i := range c.sets {
		s := &c.sets[i]
		for j := 0; j < c.ways; j++ {
			if s.valid[j] && s.dirty[j] {
				out = append(out, s.tags[j])
			}
		}
	}
	return out
}
