package cache

import (
	"testing"
	"testing/quick"
)

func TestLevelString(t *testing.T) {
	cases := map[Level]string{L1: "L1", L2: "L2", L3: "L3", Memory: "Memory", Level(9): "Level(9)"}
	for l, want := range cases {
		if l.String() != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(l), l.String(), want)
		}
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { New("x", 3*LineSize, 1) }, // 3 sets: not power of two
		func() { New("x", LineSize, 0) },   // zero ways
		func() { New("x", LineSize/2, 1) }, // zero sets
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMissThenHit(t *testing.T) {
	c := New("t", 8*LineSize, 2)
	if hit, _, _ := c.Access(0, false); hit {
		t.Fatal("cold access should miss")
	}
	if hit, _, _ := c.Access(8, false); !hit {
		t.Fatal("same-line access should hit")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 2 ways, 4 sets. Lines 0, 4, 8 map to set 0.
	c := New("t", 8*LineSize, 2)
	a0 := uint64(0)
	a4 := uint64(4 * LineSize)
	a8 := uint64(8 * LineSize)
	c.Access(a0, true) // dirty
	c.Access(a4, false)
	c.Access(a0, false) // promote line 0; line 4 is now LRU
	_, ev, evicted := c.Access(a8, false)
	if !evicted {
		t.Fatal("third distinct line in 2-way set must evict")
	}
	if ev.Line != 4 {
		t.Fatalf("evicted line %d, want 4 (the LRU)", ev.Line)
	}
	if ev.Dirty {
		t.Fatal("line 4 was never written; must be clean")
	}
	if !c.Contains(a0) || !c.Contains(a8) || c.Contains(a4) {
		t.Fatal("residency after eviction is wrong")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := New("t", 8*LineSize, 2)
	c.Access(0, true)
	c.Access(4*LineSize, true)
	_, ev, evicted := c.Access(8*LineSize, false)
	if !evicted || !ev.Dirty || ev.Line != 0 {
		t.Fatalf("eviction = %+v/%v, want dirty line 0", ev, evicted)
	}
	if c.Stats().WriteBacks != 1 {
		t.Fatalf("WriteBacks = %d, want 1", c.Stats().WriteBacks)
	}
}

func TestFlushInvalidates(t *testing.T) {
	c := New("t", 8*LineSize, 2)
	c.Access(0, true)
	present, dirty := c.Flush(32) // same line as 0
	if !present || !dirty {
		t.Fatalf("flush = %v/%v, want present dirty", present, dirty)
	}
	if c.Contains(0) {
		t.Fatal("line resident after flush")
	}
	if hit, _, _ := c.Access(0, false); hit {
		t.Fatal("access after flush must miss (the paper's clflush effect)")
	}
	if p, _ := c.Flush(7 * LineSize); p {
		t.Fatal("flush of a never-cached line should find nothing")
	}
}

func TestInvalidateAllAndDirtyLines(t *testing.T) {
	c := New("t", 16*LineSize, 4)
	c.Access(0, true)
	c.Access(LineSize, false)
	c.Access(2*LineSize, true)
	dirty := c.DirtyLines()
	if len(dirty) != 2 {
		t.Fatalf("DirtyLines = %v, want 2 entries", dirty)
	}
	c.InvalidateAll()
	if c.Contains(0) || len(c.DirtyLines()) != 0 {
		t.Fatal("InvalidateAll left residue")
	}
}

func TestHierarchyFillAndLevels(t *testing.T) {
	h := NewHierarchy(SmallGeometry())
	lvl, _ := h.Access(0, false)
	if lvl != Memory {
		t.Fatalf("cold access serviced by %v, want Memory", lvl)
	}
	lvl, _ = h.Access(0, false)
	if lvl != L1 {
		t.Fatalf("warm access serviced by %v, want L1", lvl)
	}
	if h.MissesAt(L3) != 1 {
		t.Fatalf("L3 misses = %d, want 1", h.MissesAt(L3))
	}
}

func TestHierarchyL1EvictionFallsToL2(t *testing.T) {
	h := NewHierarchy(SmallGeometry())
	l1 := h.Levels()[0] // 4KB, 2-way: 32 sets
	sets := l1.setMask + 1
	// Three lines in the same L1 set: the first gets demoted to L2.
	a := uint64(0)
	b := sets * LineSize
	c := 2 * sets * LineSize
	h.Access(a, false)
	h.Access(b, false)
	h.Access(c, false)
	// a should now hit in L2, not L1.
	lvl, _ := h.Access(a, false)
	if lvl != L2 {
		t.Fatalf("demoted line serviced by %v, want L2", lvl)
	}
}

func TestHierarchyDirtyLLCEvictionReportsWriteback(t *testing.T) {
	geoms := []Geometry{{Name: "only", Capacity: 2 * LineSize, Ways: 2}}
	h := NewHierarchy(geoms)
	h.Access(0, true)
	h.Access(LineSize, true)
	_, wbs := h.Access(2*LineSize, false)
	if len(wbs) != 1 || wbs[0] != 0 {
		t.Fatalf("writebacks = %v, want [0]", wbs)
	}
}

func TestHierarchyFlushAllLevels(t *testing.T) {
	h := NewHierarchy(SmallGeometry())
	h.Access(0, true)
	present, dirty := h.Flush(0)
	if !present || !dirty {
		t.Fatalf("flush = %v/%v", present, dirty)
	}
	lvl, _ := h.Access(0, false)
	if lvl != Memory {
		t.Fatalf("post-flush access serviced by %v, want Memory", lvl)
	}
}

func TestHierarchyFlushAllCollectsDirty(t *testing.T) {
	h := NewHierarchy(SmallGeometry())
	h.Access(0, true)
	h.Access(LineSize, false)
	h.Access(5*LineSize, true)
	dirty := h.FlushAll()
	if len(dirty) != 2 {
		t.Fatalf("FlushAll = %v, want 2 dirty lines", dirty)
	}
	if lvl, _ := h.Access(0, false); lvl != Memory {
		t.Fatal("caches not empty after FlushAll")
	}
}

// Property: hits + misses == accesses for any access pattern.
func TestQuickHitMissAccounting(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New("q", 32*LineSize, 4)
		for _, a := range addrs {
			c.Access(uint64(a)%(1<<20), a%2 == 0)
		}
		s := c.Stats()
		return s.Hits+s.Misses == uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a cache never holds more distinct lines than its capacity,
// and re-accessing a just-accessed address always hits.
func TestQuickTemporalLocalityAlwaysHits(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New("q", 16*LineSize, 2)
		for _, a := range addrs {
			addr := uint64(a) % (1 << 18)
			c.Access(addr, false)
			hit, _, _ := c.Access(addr, false)
			if !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the hierarchy reports each dirty line's writeback at most
// once (no duplicated persistence events for one store).
func TestQuickNoDuplicateWritebacks(t *testing.T) {
	f := func(addrs []uint16) bool {
		h := NewHierarchy([]Geometry{
			{Name: "L1", Capacity: 2 * LineSize, Ways: 1},
			{Name: "L2", Capacity: 4 * LineSize, Ways: 1},
		})
		seen := make(map[uint64]int)
		dirtied := make(map[uint64]int)
		for _, a := range addrs {
			addr := uint64(a) % (1 << 13)
			line := addr >> LineShift
			// Count how many times we dirty each line while it is
			// outside the hierarchy (each such episode can cause at
			// most one writeback).
			dirtied[line]++
			_, wbs := h.Access(addr, true)
			for _, wb := range wbs {
				seen[wb]++
			}
		}
		for line, n := range seen {
			if n > dirtied[line] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyPrefetchInstallsClean(t *testing.T) {
	h := NewHierarchy(SmallGeometry())
	wbs := h.Prefetch(5 * LineSize)
	if len(wbs) != 0 {
		t.Fatalf("prefetch into empty hierarchy wrote back %v", wbs)
	}
	// The prefetched line must be resident below L1 (installed in L2).
	if h.Levels()[0].Contains(5 * LineSize) {
		t.Fatal("prefetch must not pollute L1")
	}
	if !h.Levels()[1].Contains(5 * LineSize) {
		t.Fatal("prefetched line not in L2")
	}
	// A demand access then hits at L2.
	lvl, _ := h.Access(5*LineSize, false)
	if lvl != L2 {
		t.Fatalf("post-prefetch access serviced by %v, want L2", lvl)
	}
}

func TestHierarchyPrefetchEvictionsReported(t *testing.T) {
	// Tiny single-level hierarchy: prefetches displace dirty lines,
	// which must surface as writebacks.
	h := NewHierarchy([]Geometry{{Name: "only", Capacity: LineSize, Ways: 1}})
	h.Access(0, true) // dirty line 0
	wbs := h.Prefetch(LineSize)
	if len(wbs) != 1 || wbs[0] != 0 {
		t.Fatalf("writebacks = %v, want [0]", wbs)
	}
}

func TestHierarchyPrefetchExistingLinePreservesDirty(t *testing.T) {
	h := NewHierarchy(SmallGeometry())
	h.Access(0, true)
	h.Prefetch(0) // line already resident and dirty
	_, dirty := h.Flush(0)
	if !dirty {
		t.Fatal("prefetch of a resident line cleared its dirty bit")
	}
}
