package cache

// Hierarchy chains L1, L2 and L3 into an inclusive-enough model: an
// access probes nearest-first; the first level that hits services it and
// the line is filled into every nearer level. A line evicted dirty from
// L3 is reported to the owner (the memsim layer), which writes the words
// back to the NVM region — silently persisting them, exactly like real
// hardware write-back. Dirty evictions from L1/L2 are folded into the
// next level down (the line is installed there dirty).
//
// This is a simplification of a real inclusive hierarchy (no back-
// invalidation on L3 eviction), which is fine for the paper's metrics:
// L3 miss counts depend on L3 contents, and persistence correctness
// depends only on which dirty lines have left the hierarchy.
type Hierarchy struct {
	levels []*Cache // nearest first: L1, L2, L3
}

// Geometry describes one level of the hierarchy.
type Geometry struct {
	Name     string
	Capacity uint64
	Ways     int
}

// PaperGeometry returns the cache geometry of the paper's Xeon E5-2620
// (Table 2 lists socket totals: 384 KB L1 / 1.5 MB L2 / 15 MB L3). The
// workload is single-threaded, so we model the caches one core actually
// sees on that Sandy Bridge part: 32 KB 8-way L1D and 256 KB 8-way
// private L2, plus the full 15 MB shared L3 (15-way, giving a
// power-of-two set count), all with 64-byte lines.
func PaperGeometry() []Geometry {
	return []Geometry{
		{Name: "L1", Capacity: 32 << 10, Ways: 8},
		{Name: "L2", Capacity: 256 << 10, Ways: 8},
		{Name: "L3", Capacity: 15 << 20, Ways: 15},
	}
}

// SmallGeometry returns a scaled-down hierarchy for fast unit tests.
func SmallGeometry() []Geometry {
	return []Geometry{
		{Name: "L1", Capacity: 4 << 10, Ways: 2},
		{Name: "L2", Capacity: 16 << 10, Ways: 4},
		{Name: "L3", Capacity: 64 << 10, Ways: 4},
	}
}

// NewHierarchy builds a hierarchy from nearest to farthest level.
func NewHierarchy(geoms []Geometry) *Hierarchy {
	if len(geoms) == 0 {
		panic("cache: hierarchy needs at least one level")
	}
	h := &Hierarchy{}
	for _, g := range geoms {
		h.levels = append(h.levels, New(g.Name, g.Capacity, g.Ways))
	}
	return h
}

// Levels returns the underlying caches, nearest first.
func (h *Hierarchy) Levels() []*Cache { return h.levels }

// Last returns the farthest cache (the LLC).
func (h *Hierarchy) Last() *Cache { return h.levels[len(h.levels)-1] }

// Access runs addr through the hierarchy. It returns the level that
// serviced the access (Memory if every cache missed) and the set of
// dirty lines that left the hierarchy entirely (LLC dirty evictions),
// which the caller must write back to the NVM region.
func (h *Hierarchy) Access(addr uint64, write bool) (serviced Level, writebacks []uint64) {
	// Fast path: an L1 MRU hit needs no fills, no evictions and no
	// write-backs — it short-circuits the per-level loop (and its slice
	// bookkeeping) entirely. State transitions are identical to the
	// general path below.
	if h.levels[0].hitMRU(lineOf(addr), write) {
		return L1, nil
	}
	for i, c := range h.levels {
		hit, ev, evicted := c.Access(addr, write)
		if evicted {
			if i+1 < len(h.levels) {
				// Fold the displaced line into the next level down,
				// preserving its dirtiness, without counting it as a
				// demand access.
				h.install(i+1, ev.Line, ev.Dirty, &writebacks)
			} else if ev.Dirty {
				writebacks = append(writebacks, ev.Line)
			}
		}
		if hit {
			return Level(i), writebacks
		}
	}
	return Memory, writebacks
}

// install places a line into level i (and handles the ripple of
// evictions) without touching hit/miss statistics — it models the
// background movement of a displaced line, not a demand access.
func (h *Hierarchy) install(i int, line uint64, dirty bool, writebacks *[]uint64) {
	c := h.levels[i]
	s := c.setFor(line)
	for j := 0; j < c.ways; j++ {
		if s.valid[j] && s.tags[j] == line {
			s.promote(j)
			if dirty {
				s.dirty[0] = true
			}
			return
		}
	}
	victim := c.ways - 1
	for j := 0; j < c.ways; j++ {
		if !s.valid[j] {
			victim = j
			break
		}
	}
	if s.valid[victim] {
		evLine, evDirty := s.tags[victim], s.dirty[victim]
		c.stats.Evictions++
		if evDirty {
			c.stats.WriteBacks++
		}
		if i+1 < len(h.levels) {
			h.install(i+1, evLine, evDirty, writebacks)
		} else if evDirty {
			*writebacks = append(*writebacks, evLine)
		}
	}
	s.tags[victim] = line
	s.valid[victim] = true
	s.dirty[victim] = dirty
	s.promote(victim)
}

// Prefetch installs the line containing addr clean into the L2 level
// (or the only level), without touching demand hit/miss statistics —
// modelling a hardware streamer prefetch. It returns any dirty lines
// the install displaced out of the hierarchy, which the caller must
// write back.
func (h *Hierarchy) Prefetch(addr uint64) []uint64 {
	var writebacks []uint64
	i := 1
	if i >= len(h.levels) {
		i = len(h.levels) - 1
	}
	h.install(i, lineOf(addr), false, &writebacks)
	return writebacks
}

// Flush invalidates the line containing addr from every level (clflush
// semantics) and reports whether any copy anywhere was dirty, i.e.
// whether the flush implies a write of the line to NVM.
func (h *Hierarchy) Flush(addr uint64) (present, dirty bool) {
	for _, c := range h.levels {
		p, d := c.Flush(addr)
		present = present || p
		dirty = dirty || d
	}
	return present, dirty
}

// FlushAll writes back and invalidates every dirty line in the whole
// hierarchy, returning the lines that were dirty anywhere (wbinvd-like;
// used between experiment phases and at clean shutdown).
func (h *Hierarchy) FlushAll() []uint64 {
	seen := make(map[uint64]bool)
	var dirty []uint64
	for _, c := range h.levels {
		for _, line := range c.DirtyLines() {
			if !seen[line] {
				seen[line] = true
				dirty = append(dirty, line)
			}
		}
		c.InvalidateAll()
	}
	return dirty
}

// InvalidateAll drops all lines at all levels without write-back. Only
// meaningful for simulating a cold cache where the region's persistence
// state is managed separately (e.g. right after a simulated reboot).
func (h *Hierarchy) InvalidateAll() {
	for _, c := range h.levels {
		c.InvalidateAll()
	}
}

// MissesAt returns the miss count of the named level (L3 for the paper's
// figures).
func (h *Hierarchy) MissesAt(l Level) uint64 {
	return h.levels[int(l)].stats.Misses
}
