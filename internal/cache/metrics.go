package cache

import "grouphash/internal/stats"

// RegisterMetrics exports every cache level's counters into reg under
// the given metric-name prefix, labelled by level (e.g. "sim" →
// sim_cache_misses_total{level="L1"}). Per-level miss counters are how
// the paper argues cacheline-friendly group probing; exporting them on
// the same scrape as request latency makes that argument checkable on
// a live workload.
//
// The hierarchy is not safe for concurrent use; the registered load
// functions read the live counters, so scrapes must be serialised with
// cache accesses by the caller.
func (h *Hierarchy) RegisterMetrics(reg *stats.Registry, prefix string) {
	p := prefix + "_cache_"
	for _, c := range h.Levels() {
		c := c
		lbl := stats.Label("level", c.Name())
		reg.RegisterCounter(p+"hits_total", lbl, "Accesses serviced by this cache level.",
			func() uint64 { return c.stats.Hits })
		reg.RegisterCounter(p+"misses_total", lbl, "Accesses passed down to the next level.",
			func() uint64 { return c.stats.Misses })
		reg.RegisterCounter(p+"evictions_total", lbl, "Lines displaced by fills.",
			func() uint64 { return c.stats.Evictions })
		reg.RegisterCounter(p+"writebacks_total", lbl, "Displaced or flushed lines that were dirty.",
			func() uint64 { return c.stats.WriteBacks })
		reg.RegisterCounter(p+"flushes_total", lbl, "clflush invalidations that found the line here.",
			func() uint64 { return c.stats.Flushes })
	}
}
