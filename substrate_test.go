// Substrate regression tests: the simulated-machine fast paths (paged
// dirty-word tracking in internal/nvm, cache-model hit fast paths in
// internal/cache) are pure performance work and must not move a single
// counter. This file pins the full counter vector of a fixed
// insert/lookup/delete trace to golden values captured from the original
// map-based tracker, so any behavioural drift in the substrate fails
// loudly rather than silently skewing the paper's figures.
package grouphash_test

import (
	"testing"

	"grouphash/internal/cache"
	"grouphash/internal/harness"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/nvm"
	"grouphash/internal/trace"
)

// replaySubstrateTrace drives a fixed group-table workload (load to 0.6,
// then a lookup/delete/reinsert churn, then a clean shutdown) on the
// simulated machine and returns the final cumulative counters. Every
// step is deterministic, so the result is a pure function of the
// substrate's semantics.
func replaySubstrateTrace(totalCells uint64, ops int) memsim.Counters {
	cfg := harness.BuildConfig{Kind: harness.Group, TotalCells: totalCells, KeyBytes: 8, Seed: 1}
	// Small cache geometry so the table exceeds the LLC and the trace
	// exercises the silent-eviction write-back path as well as flushes.
	mem := memsim.New(memsim.Config{Size: harness.RegionBytes(cfg), Seed: 42, Geoms: cache.SmallGeometry()})
	tab := harness.Build(mem, cfg)
	tr := trace.NewRandomNum(7)
	var keys []layout.Key
	for tab.LoadFactor() < 0.6 {
		it := tr.Next()
		if tab.Insert(it.Key, it.Value) != nil {
			break
		}
		keys = append(keys, it.Key)
	}
	for i := 0; i < ops; i++ {
		k := keys[(i*7919)%len(keys)]
		switch i % 3 {
		case 0:
			tab.Lookup(k)
		case 1:
			tab.Delete(k)
		default:
			tab.Insert(k, uint64(i))
		}
	}
	// Raw un-persisted writes scattered over the region: the table's
	// protocol flushes every line it writes, so this phase is what makes
	// dirty lines age out of the small LLC and exercises the silent
	// write-back (Evict) path of the region.
	for i := 0; i < ops; i++ {
		addr := (uint64(i) * 2654435761) % mem.Size() &^ 7
		mem.Write8(addr, uint64(i))
	}
	mem.CleanShutdown()
	return mem.Counters()
}

// TestSubstrateGoldenCounters replays the fixed trace and compares every
// simulated counter — clock, per-level misses, flushes, fences, and the
// whole nvm.Stats vector — against golden values recorded from the
// pre-optimisation (map-tracker) substrate. Bit-identical equality is
// required: these counters ARE the paper's figures.
func TestSubstrateGoldenCounters(t *testing.T) {
	got := replaySubstrateTrace(1<<14, 3000)
	// Captured from the seed (map-based dirty tracker) substrate; see the
	// package comment for why these must never move.
	want := memsim.Counters{
		ClockNs:  1.67161275e+07,
		Accesses: 507694,
		L1Misses: 146465,
		L2Misses: 43502,
		L3Misses: 36346,
		Flushes:  35496,
		Fences:   35495,
		NVM: nvm.Stats{
			Stores:         38503,
			BytesStored:    308024,
			WordsDirtied:   38503,
			WordsPersisted: 35503,
			WordsEvicted:   3000,
			AtomicStores:   23663,
		},
	}
	if got != want {
		t.Errorf("substrate counters drifted from golden values:\n got: %+v\nwant: %+v", got, want)
	}
}
