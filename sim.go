package grouphash

import (
	"grouphash/internal/memsim"
	"grouphash/internal/nvm"
	"grouphash/internal/pmfs"
)

// SimOptions configures a simulated-NVM machine (see NewSimulated).
type SimOptions struct {
	// RegionBytes is the emulated NVM size. 0 derives it from the
	// store's capacity.
	RegionBytes uint64
	// Seed drives crash injection.
	Seed int64
	// WriteLatencyNs overrides the extra NVM write latency charged per
	// flushed cacheline. 0 means the paper's 300 ns.
	WriteLatencyNs float64
	// DisablePrefetch turns off the modelled next-line prefetcher.
	DisablePrefetch bool
}

// Sim couples a Store with the simulated machine it runs on, exposing
// the crash/recovery and measurement tooling of the reproduction.
type Sim struct {
	*Store
	mem *memsim.Memory
}

// Counters is the simulated machine's cumulative event counters.
type Counters = memsim.Counters

// CrashOutcome describes what a simulated power failure did.
type CrashOutcome = nvm.CrashOutcome

// NewSimulated creates a store over a freshly built simulated NVM
// machine: the paper's cache geometry (Table 2) and latency model
// (300 ns extra write latency after clflush).
func NewSimulated(opts Options, sim SimOptions) (*Sim, error) {
	if opts.Capacity == 0 {
		opts.Capacity = 1 << 16
	}
	if opts.KeyBytes == 0 {
		opts.KeyBytes = 8
	}
	size := sim.RegionBytes
	if size == 0 {
		size = opts.Capacity*32*4 + (1 << 20)
	}
	lat := memsim.DefaultLatency()
	if sim.WriteLatencyNs != 0 {
		lat.NVMWriteExtra = sim.WriteLatencyNs
	}
	mem := memsim.New(memsim.Config{
		Size:            size,
		Seed:            sim.Seed,
		Latency:         &lat,
		DisablePrefetch: sim.DisablePrefetch,
	})
	opts.Memory = mem
	st, err := New(opts)
	if err != nil {
		return nil, err
	}
	return &Sim{Store: st, mem: mem}, nil
}

// Counters snapshots the machine's cumulative counters; subtract two
// snapshots (Counters.Sub) for per-phase costs.
func (s *Sim) Counters() Counters { return s.mem.Counters() }

// ClockNs returns the simulated time in nanoseconds.
func (s *Sim) ClockNs() float64 { return s.mem.Clock() }

// Crash simulates a power failure: CPU caches are lost and each
// un-persisted dirty word independently survives with probability
// survivalProb. The store afterwards holds a legal post-failure NVM
// image; run Recover to restore consistency.
func (s *Sim) Crash(survivalProb float64) CrashOutcome {
	return s.mem.Crash(survivalProb)
}

// CleanShutdown flushes all caches and persists everything, modelling
// an orderly stop.
func (s *Sim) CleanShutdown() { s.mem.CleanShutdown() }

// ScheduleCrash arms a power failure at an exact future memory event
// (counted from the machine's cumulative access counter, see
// Counters().Accesses). Unlike Crash, this lands INSIDE whatever
// operation is running at that moment: the legal post-failure image is
// captured there, the operation finishes unharmed, and CompleteCrash
// swaps the captured image in. Use it to exercise mid-operation crash
// points.
func (s *Sim) ScheduleCrash(afterAccesses uint64, survivalProb float64) {
	s.mem.ScheduleShadowCrash(afterAccesses, survivalProb)
}

// CompleteCrash adopts a crash scheduled with ScheduleCrash, reporting
// whether the trigger had fired. Run Recover afterwards.
func (s *Sim) CompleteCrash() bool { return s.mem.AdoptShadowCrash() }

// L3Geometry reports the simulated last-level cache size in bytes.
func (s *Sim) L3Geometry() uint64 { return s.mem.Hierarchy().Last().Capacity() }

// SaveImage persists the simulated NVM contents to an image file (the
// PMFS-file analogue; see internal/pmfs). The machine is cleanly shut
// down first. LoadImage restores the store in a new process.
func (s *Sim) SaveImage(path string) error {
	return pmfs.Save(path, s.mem, s.Header())
}

// LoadImage rebuilds a simulated store from an image file written by
// SaveImage. The returned store has already been reopened from its
// persistent root; run Recover if the image could predate a crash
// (images written by SaveImage are always clean).
func LoadImage(path string, sim SimOptions, concurrent bool) (*Sim, error) {
	lat := memsim.DefaultLatency()
	if sim.WriteLatencyNs != 0 {
		lat.NVMWriteExtra = sim.WriteLatencyNs
	}
	mem, root, err := pmfs.Load(path, memsim.Config{
		Seed:            sim.Seed,
		Latency:         &lat,
		DisablePrefetch: sim.DisablePrefetch,
	})
	if err != nil {
		return nil, err
	}
	st, err := Open(mem, root, concurrent)
	if err != nil {
		return nil, err
	}
	return &Sim{Store: st, mem: mem}, nil
}
