module grouphash

go 1.22
